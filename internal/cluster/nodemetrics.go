package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// NodeMetrics is one node's operational snapshot, the unit the fleet view
// (GET /cluster/metrics) merges across peers. The type lives here — not in
// internal/service — because both sides of the peer protocol need it and
// service already imports cluster.
type NodeMetrics struct {
	// Addr is the node's advertised cluster address ("" outside a cluster).
	Addr string `json:"addr"`
	// Queued and Running are the node's job-table states right now;
	// Workers and QueueDepth are its static capacity.
	Queued     int `json:"queued"`
	Running    int `json:"running"`
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// Result-cache counters (see resultcache.Stats) plus the derived hit
	// ratio: hits+remote hits over all lookups, 0 when none yet.
	CacheHits       uint64  `json:"cache_hits"`
	CacheMisses     uint64  `json:"cache_misses"`
	CacheRemoteHits uint64  `json:"cache_remote_hits"`
	CacheEvictions  uint64  `json:"cache_evictions"`
	CacheEntries    int     `json:"cache_entries"`
	CacheHitRatio   float64 `json:"cache_hit_ratio"`
	// SimulatedCycles and CyclesPerSecond are the node's throughput: total
	// simulated time delivered, and that total over busy wall time.
	SimulatedCycles float64 `json:"simulated_cycles"`
	CyclesPerSecond float64 `json:"cycles_per_second"`
	// ProgressEvents counts progress events published on this node.
	ProgressEvents int64 `json:"progress_events"`
	// Cluster carries the node's forward/steal/failover counters; nil when
	// the node runs standalone.
	Cluster *Stats `json:"cluster,omitempty"`
}

// FetchNodeMetrics asks one peer for its NodeMetrics snapshot, bounded by
// Config.CallTimeout.
func (c *Cluster) FetchNodeMetrics(ctx context.Context, addr string) (NodeMetrics, error) {
	fctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	resp, err := c.do(fctx, http.MethodGet, addr+"/api/v1/cluster/nodemetrics", nil)
	if err != nil {
		return NodeMetrics{}, err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return NodeMetrics{}, fmt.Errorf("node metrics from %s returned %d", addr, resp.StatusCode)
	}
	var nm NodeMetrics
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxPeerBody)).Decode(&nm); err != nil {
		return NodeMetrics{}, fmt.Errorf("decoding node metrics: %w", err)
	}
	return nm, nil
}

package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/memory"
	"repro/internal/scene"
	"repro/internal/stats"
)

// fig7Procs are the machine sizes of Figure 7's six bar charts.
var fig7Procs = []int{4, 16, 64}

// RunFig7 reproduces Figure 7: speedups of every benchmark on 4-, 16- and
// 64-processor machines with 16 KB caches and a 1 texel/pixel bus, for both
// distributions and all sizes.
func RunFig7(ctx context.Context, opt Options) (*Report, error) {
	return runFig7(ctx, opt, 1, "fig7", "Speedups with a bus ratio of 1 texel/pixel")
}

// RunFig7Bus2 is the companion with the 2 texel/pixel bus, whose results the
// paper defers to its technical report [15] and summarizes in §7.
func RunFig7Bus2(ctx context.Context, opt Options) (*Report, error) {
	return runFig7(ctx, opt, 2, "fig7-bus2", "Speedups with a bus ratio of 2 texels/pixel")
}

func runFig7(ctx context.Context, opt Options, busRatio float64, id, title string) (*Report, error) {
	opt = opt.withDefaults()
	scenes, err := buildAllScenes(ctx, opt)
	if err != nil {
		return nil, err
	}
	names := scene.Names()
	bus := memory.BusConfig{TexelsPerCycle: busRatio}

	// Single-processor baselines, one per scene (tile size is irrelevant
	// with one processor).
	t1 := make(map[string]float64, len(names))
	var mu sync.Mutex
	err = forEachParallel(ctx, opt.Parallelism, len(names), func(i int) error {
		res, err := simulate(ctx, scenes[names[i]], core.Config{
			Procs: 1, CacheKind: core.CacheReal, Bus: bus,
		})
		if err != nil {
			return err
		}
		mu.Lock()
		t1[names[i]] = res.Cycles
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	type cellKey struct {
		scene string
		kind  distrib.Kind
		size  int
		procs int
	}
	type job struct {
		key cellKey
		cfg core.Config
	}
	var jobs []job
	for _, n := range names {
		for _, procs := range fig7Procs {
			for _, w := range blockWidths {
				jobs = append(jobs, job{cellKey{n, distrib.BlockKind, w, procs}, core.Config{
					Procs: procs, Distribution: distrib.BlockKind, TileSize: w,
					CacheKind: core.CacheReal, Bus: bus,
				}})
			}
			for _, l := range sliLines {
				jobs = append(jobs, job{cellKey{n, distrib.SLIKind, l, procs}, core.Config{
					Procs: procs, Distribution: distrib.SLIKind, TileSize: l,
					CacheKind: core.CacheReal, Bus: bus,
				}})
			}
		}
	}
	cells := make(map[cellKey]float64, len(jobs))
	err = forEachParallel(ctx, opt.Parallelism, len(jobs), func(i int) error {
		j := jobs[i]
		res, err := simulate(ctx, scenes[j.key.scene], j.cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		cells[j.key] = t1[j.key.scene] / res.Cycles
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	var tables []*stats.Table
	for _, spec := range []struct {
		kind  distrib.Kind
		sizes []int
		label string
	}{
		{distrib.BlockKind, blockWidths, "w"},
		{distrib.SLIKind, sliLines, "l"},
	} {
		for _, procs := range fig7Procs {
			header := []string{"scene"}
			for _, sz := range spec.sizes {
				header = append(header, fmt.Sprintf("%s%d", spec.label, sz))
			}
			header = append(header, "best")
			t := &stats.Table{
				Caption: fmt.Sprintf("%d processors / %s: speedup (16 KB caches, %s texel/pixel bus)",
					procs, spec.kind, stats.F(busRatio, 0)),
				Header: header,
			}
			for _, n := range names {
				row := []string{n}
				bestSize, bestVal := 0, 0.0
				for _, sz := range spec.sizes {
					v := cells[cellKey{n, spec.kind, sz, procs}]
					row = append(row, stats.F(v, 1))
					if v > bestVal {
						bestVal, bestSize = v, sz
					}
				}
				row = append(row, fmt.Sprintf("%s%d", spec.label, bestSize))
				t.AddRow(row...)
			}
			tables = append(tables, t)
		}
	}

	return &Report{
		ID:    id,
		Title: title,
		Notes: []string{
			scaleNote(opt),
			"expect: best block width ≈16 at every machine size; best SLI group shrinks as processors grow (≈16/8/4 lines at 4/16/64); block beats SLI at 64 processors, parity at 4–16",
		},
		Table: tables,
	}, nil
}

package texsim_test

import (
	"fmt"

	"repro/texsim"
)

// Measure a synthesized paper benchmark and read off its Table 1 row.
func ExampleMeasure() {
	sc := texsim.Benchmark("blowout775", 0.25)
	st, err := texsim.Measure(sc)
	if err != nil {
		panic(err)
	}
	fmt.Println(st.Name, st.DepthComplexity > 2.5, st.UniqueTexelFrag < 0.5)
	// Output: blowout775 true true
}

// Compare the two distributions the paper studies on one machine.
func ExampleSpeedup() {
	sc := texsim.Benchmark("massive11255", 0.25)
	for _, cfg := range []texsim.Config{
		{Procs: 16, Distribution: texsim.Block, TileSize: 16, CacheKind: texsim.CachePerfect},
		{Procs: 16, Distribution: texsim.SLI, TileSize: 4, CacheKind: texsim.CachePerfect},
	} {
		sp, _, _, err := texsim.Speedup(sc, cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: speedup in (1,16] = %v\n", cfg.Name(), sp > 1 && sp <= 16)
	}
	// Output:
	// block16/p16: speedup in (1,16] = true
	// sli4/p16: speedup in (1,16] = true
}

// Record a scene through the GL-style immediate-mode API.
func ExampleNewGL() {
	c := texsim.NewGL("demo", texsim.Rect{X1: 64, Y1: 64})
	tex := c.GenTexture(32, 32)
	c.BindTexture(tex)
	c.Begin(texsim.GLTriangles)
	c.TexCoord2f(0, 0)
	c.Vertex2f(0, 0)
	c.TexCoord2f(32, 0)
	c.Vertex2f(32, 0)
	c.TexCoord2f(0, 32)
	c.Vertex2f(0, 32)
	c.End()
	sc, err := c.Scene()
	if err != nil {
		panic(err)
	}
	fmt.Println(len(sc.Triangles), len(sc.Textures))
	// Output: 1 1
}

// Ask the advisor for the best distribution for a scene and machine.
func ExampleRecommend() {
	sc := texsim.Benchmark("truc640", 0.25)
	rec, err := texsim.Recommend(sc, texsim.Config{
		Procs:     16,
		CacheKind: texsim.CacheReal,
		Bus:       texsim.BusConfig{TexelsPerCycle: 1},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(rec.Ranked), rec.Best.Speedup > rec.Ranked[len(rec.Ranked)-1].Speedup)
	// Output: 10 true
}

// Study inter-frame texture locality with per-node L2 caches.
func ExampleMachine_RunSequence() {
	sc := texsim.Benchmark("massive11255", 0.2)
	m, err := texsim.NewMachine(sc, texsim.Config{
		Procs: 4, TileSize: 16, CacheKind: texsim.CacheReal,
		L2Config: texsim.CacheConfig{SizeBytes: 1 << 20, Ways: 8, LineBytes: 64},
	})
	if err != nil {
		panic(err)
	}
	frames := texsim.PanSequence(sc, 2, 8, 0) // pan 8 px/frame
	results, err := m.RunSequence(frames)
	if err != nil {
		panic(err)
	}
	cold, warm := uint64(0), uint64(0)
	for i := range results[0].Nodes {
		cold += results[0].Nodes[i].MainBus.LinesFetched
		warm += results[1].Nodes[i].MainBus.LinesFetched
	}
	fmt.Println("warm frame cheaper:", warm < cold)
	// Output: warm frame cheaper: true
}

// Package locks exercises the locksafe analyzer: blocking operations, I/O
// and callbacks under a held sync.Mutex must be flagged; the sanctioned
// patterns (non-blocking select, guard-clause unlock, deferred unlock) must
// not.
package locks

import (
	"os"
	"sync"
	"time"
)

type S struct {
	mu   sync.Mutex
	ch   chan int
	data map[string]int
}

func (s *S) sendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want `channel send while s.mu is held`
	s.mu.Unlock()
}

func (s *S) nonBlockingSend(v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v: // ok: select with default never blocks
		return true
	default:
		return false
	}
}

func (s *S) blockingSelect(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select without default blocks on channel operations while s.mu is held`
	case s.ch <- v:
	}
}

func (s *S) recvUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want `channel receive while s.mu is held`
}

func (s *S) ioUnderLock(path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.ReadFile(path) // want `os.ReadFile while s.mu is held performs file I/O`
}

func (s *S) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while s.mu is held`
	s.mu.Unlock()
}

func (s *S) callbackUnderLock(f func()) {
	s.mu.Lock()
	f() // want `callback f invoked while s.mu is held`
	s.mu.Unlock()
}

func (s *S) callbackAfterUnlock(f func()) {
	s.mu.Lock()
	v := s.data["x"]
	s.mu.Unlock()
	_ = v
	f() // ok: the critical section ended
}

func (s *S) noUnlock() {
	s.mu.Lock() // want `s.mu.Lock with no corresponding Unlock in this function`
	s.data["x"] = 1
}

func (s *S) guardClause(ok bool) int {
	s.mu.Lock()
	if !ok {
		s.mu.Unlock()
		return 0
	}
	v := s.data["x"] // still inside the critical section, but benign
	s.mu.Unlock()
	return v
}

func (s *S) guardThenSend(ok bool, v int) {
	s.mu.Lock()
	if !ok {
		s.mu.Unlock()
		return
	}
	s.ch <- v // want `channel send while s.mu is held`
	s.mu.Unlock()
}

func (s *S) waitUnderLock(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want `WaitGroup.Wait while s.mu is held`
	s.mu.Unlock()
}

func (s *S) deferredIsSafe() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data["x"]
}

func (s *S) closureEscapes() {
	s.mu.Lock()
	go func() {
		s.ch <- 1 // ok: runs outside the critical section
	}()
	s.mu.Unlock()
}

func (s *S) suppressedSend(v int) {
	s.mu.Lock()
	s.ch <- v //texlint:ignore locksafe testdata exercises suppression
	s.mu.Unlock()
}

// R exercises the RWMutex mode separation: RLock pairs only with
// RUnlock, blocking checks apply under read locks, and a deferred
// RUnlock discharges the read hold.
type R struct {
	mu    sync.RWMutex
	ch    chan int
	table map[string]int
}

func (r *R) readDeferred(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.table[k]
}

func (r *R) readGuardClause(k string) (int, bool) {
	r.mu.RLock()
	v, ok := r.table[k]
	if !ok {
		r.mu.RUnlock()
		return 0, false
	}
	r.mu.RUnlock()
	return v, true
}

func (r *R) readNoUnlock(k string) int {
	r.mu.RLock() // want `r.mu.RLock with no corresponding RUnlock in this function`
	return r.table[k]
}

func (r *R) readPairedWithWriteUnlock(k string) int {
	r.mu.RLock() // want `r.mu.RLock with no corresponding RUnlock in this function`
	v := r.table[k]
	r.mu.Unlock() // the wrong mode: this does not discharge the RLock
	return v
}

func (r *R) sendUnderReadLock(v int) {
	r.mu.RLock()
	r.ch <- v // want `channel send while r.mu \(read\) is held`
	r.mu.RUnlock()
}

func (r *R) sleepUnderReadLock() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	time.Sleep(time.Millisecond) // want `time.Sleep while r.mu \(read\) is held`
}

func (r *R) writeThenRead(k string) int {
	r.mu.Lock()
	r.table[k] = 1
	r.mu.Unlock()
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.table[k]
}

// Package ctxfirst locks in the context threading introduced with the
// texsimd service: every cancellable operation takes a context.Context as
// its first parameter, actually uses it, and library code never mints a
// fresh root with context.Background()/context.TODO() — roots belong to
// main functions and tests, so cancellation reaches every simulation.
//
// Three diagnostics:
//
//   - a function declares a context.Context parameter that is not first;
//   - library code calls context.Background() or context.TODO()
//     (deliberate compatibility shims carry a //texlint:ignore ctxfirst
//     comment with the justification);
//   - a named context parameter is never used in the function body — the
//     context stops propagating there (name it _ to declare that on
//     purpose).
package ctxfirst

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the context-discipline check.
var Analyzer = &framework.Analyzer{
	Name: "ctxfirst",
	Doc: "context.Context parameters must come first and be propagated; " +
		"library code must not call context.Background()/context.TODO()",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, n)
				checkUnusedCtx(pass, n)
			case *ast.CallExpr:
				checkRootContext(pass, n)
			}
			return true
		})
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ctxParams returns the declared parameter fields of context.Context type,
// along with the positional index of the first parameter name they cover.
func ctxParams(pass *framework.Pass, ft *ast.FuncType) (fields []*ast.Field, firstIndex []int) {
	if ft.Params == nil {
		return nil, nil
	}
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if t := pass.TypeOf(field.Type); t != nil && isContextType(t) {
			fields = append(fields, field)
			firstIndex = append(firstIndex, idx)
		}
		idx += n
	}
	return fields, firstIndex
}

func checkSignature(pass *framework.Pass, fn *ast.FuncDecl) {
	fields, firstIndex := ctxParams(pass, fn.Type)
	for i, field := range fields {
		if firstIndex[i] != 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter of %s", fn.Name.Name)
		}
	}
}

// checkUnusedCtx flags named context parameters the body never references:
// the chain of cancellation breaks silently at such a function.
func checkUnusedCtx(pass *framework.Pass, fn *ast.FuncDecl) {
	if fn.Body == nil || len(fn.Body.List) == 0 {
		return
	}
	fields, _ := ctxParams(pass, fn.Type)
	for _, field := range fields {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.ObjectOf(name)
			if obj == nil {
				continue
			}
			used := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if used {
					return false
				}
				if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
					used = true
				}
				return !used
			})
			if !used {
				pass.Reportf(name.Pos(), "context parameter %s is never used: the context stops propagating here (use it or name it _)", name.Name)
			}
		}
	}
}

func checkRootContext(pass *framework.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		pass.Reportf(call.Pos(), "context.%s in library code: accept a context.Context from the caller instead (roots belong to main and tests)", name)
	}
}

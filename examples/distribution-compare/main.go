// distribution-compare answers the paper's headline question for one scene:
// block or SLI, and at what size? It sweeps both distributions across their
// parameter ranges at several machine sizes and prints the speedup matrix,
// highlighting each row's best size — reproducing the paper's conclusion
// that the best block width is stable (~16) while the best SLI group size
// shrinks as the machine grows.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/texsim"
)

func main() {
	sceneName := flag.String("scene", "32massive11255", "benchmark scene")
	scale := flag.Float64("scale", 0.5, "resolution scale")
	busRatio := flag.Float64("bus", 1, "bus texels per pixel-cycle (0 = infinite)")
	flag.Parse()

	sc := texsim.Benchmark(*sceneName, *scale)
	fmt.Printf("scene %s (%d triangles), bus ratio %v\n\n",
		sc.Name, len(sc.Triangles), *busRatio)

	type sweep struct {
		kind  interface{ String() string }
		sizes []int
	}
	sweeps := []struct {
		name  string
		kind  texsim.Config
		sizes []int
	}{
		{"block (width)", texsim.Config{Distribution: texsim.Block}, []int{2, 4, 8, 16, 32, 64}},
		{"SLI (lines)", texsim.Config{Distribution: texsim.SLI}, []int{1, 2, 4, 8, 16, 32}},
	}

	for _, procs := range []int{4, 16, 64} {
		// The single-processor baseline is independent of the distribution.
		base, err := texsim.Simulate(sc, texsim.Config{
			Procs: 1, CacheKind: texsim.CacheReal,
			Bus: texsim.BusConfig{TexelsPerCycle: *busRatio},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %d processors ---\n", procs)
		for _, sw := range sweeps {
			fmt.Printf("%-14s", sw.name)
			bestSize, bestVal := 0, 0.0
			vals := make([]float64, len(sw.sizes))
			for i, size := range sw.sizes {
				cfg := sw.kind
				cfg.Procs = procs
				cfg.TileSize = size
				cfg.CacheKind = texsim.CacheReal
				cfg.Bus = texsim.BusConfig{TexelsPerCycle: *busRatio}
				res, err := texsim.Simulate(sc, cfg)
				if err != nil {
					log.Fatal(err)
				}
				vals[i] = base.Cycles / res.Cycles
				if vals[i] > bestVal {
					bestVal, bestSize = vals[i], size
				}
			}
			for i, size := range sw.sizes {
				marker := " "
				if size == bestSize {
					marker = "*"
				}
				fmt.Printf("  %3d:%5.1f%s", size, vals[i], marker)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("(* = best size; the paper: block stays best near 16, SLI's best shrinks with processors)")
}

package metrics

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden locks the full text exposition format against a
// golden file whose contents were validated against real Prometheus output
// (promtool check metrics accepts it): HELP escaping, TYPE lines, label
// rendering, cumulative histogram buckets with the +Inf bound, _sum/_count
// lines, and — critically — children in sorted label order regardless of
// first-use order.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("jobs_total", "Jobs accepted.")
	c.Add(5)

	// Registered in non-sorted order on purpose: the render must sort.
	v := r.CounterVec("jobs_completed_total", "Jobs finished, by status.", "status")
	v.With("failed").Inc()
	v.With("done").Add(7)
	v.With("canceled").Add(2)

	g := r.Gauge("queue_depth", "Jobs waiting.\nSecond help line with a \\ backslash.")
	g.Set(3.5)

	h := r.Histogram("job_seconds", "Job wall time.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	hv := r.HistogramVec("request_seconds", "Request wall time by route.", []float64{0.01, 0.1}, "route")
	hv.With("submit").Observe(0.05)
	hv.With("list").Observe(0.005)
	hv.With("submit").Observe(0.2)

	var got []byte
	{
		buf := &writerCapture{}
		if err := r.WritePrometheus(buf); err != nil {
			t.Fatal(err)
		}
		got = buf.b
	}

	golden := filepath.Join("testdata", "golden.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("exposition output differs from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}

// TestRenderOrderStable registers identical children in two different
// first-use orders and requires byte-identical scrapes.
func TestRenderOrderStable(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		v := r.CounterVec("x_total", "X.", "k")
		for _, k := range order {
			v.With(k).Inc()
		}
		buf := &writerCapture{}
		if err := r.WritePrometheus(buf); err != nil {
			t.Fatal(err)
		}
		return string(buf.b)
	}
	a := build([]string{"b", "c", "a"})
	b := build([]string{"c", "a", "b"})
	if a != b {
		t.Errorf("scrape depends on first-use order:\n%s\nvs\n%s", a, b)
	}
}

type writerCapture struct{ b []byte }

func (w *writerCapture) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

package stats

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve of a Chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart renders XY series as an ASCII line chart — the terminal counterpart
// of the paper's figures. Points are plotted with per-series marks and a
// legend; axes are linear.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height are the plot area in character cells (default 60×16).
	Width, Height int
}

var chartMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '=', '~'}

// String renders the chart.
func (c *Chart) String() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.Series {
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			points++
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "## %s\n", c.Title)
	}
	if points == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	// Zero-based y axis reads better for speedups and ratios; keep the data
	// minimum only if it is negative.
	if minY > 0 {
		minY = 0
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	plot := func(x, y float64, mark byte) {
		cx := int(math.Round((x - minX) / (maxX - minX) * float64(w-1)))
		cy := int(math.Round((y - minY) / (maxY - minY) * float64(h-1)))
		row := h - 1 - cy
		if row < 0 || row >= h || cx < 0 || cx >= w {
			return
		}
		grid[row][cx] = mark
	}
	for si, s := range c.Series {
		mark := chartMarks[si%len(chartMarks)]
		// Interpolate between consecutive points so curves read as lines.
		for i := 0; i+1 < len(s.X) && i+1 < len(s.Y); i++ {
			steps := 2 * w
			for k := 0; k <= steps; k++ {
				f := float64(k) / float64(steps)
				plot(s.X[i]+(s.X[i+1]-s.X[i])*f, s.Y[i]+(s.Y[i+1]-s.Y[i])*f, mark)
			}
		}
		for i := range s.X {
			if i < len(s.Y) {
				plot(s.X[i], s.Y[i], mark)
			}
		}
	}

	yFmtWidth := len(F(maxY, 1))
	if l := len(F(minY, 1)); l > yFmtWidth {
		yFmtWidth = l
	}
	for i, row := range grid {
		label := strings.Repeat(" ", yFmtWidth)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", yFmtWidth, F(maxY, 1))
		case h - 1:
			label = fmt.Sprintf("%*s", yFmtWidth, F(minY, 1))
		}
		fmt.Fprintf(&b, "%s |%s\n", label, strings.TrimRight(string(row), " "))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", yFmtWidth), strings.Repeat("-", w))
	lo := F(minX, 1)
	hi := F(maxX, 1)
	pad := w - len(lo) - len(hi)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s", strings.Repeat(" ", yFmtWidth), lo, strings.Repeat(" ", pad), hi)
	if c.XLabel != "" {
		fmt.Fprintf(&b, "  (%s)", c.XLabel)
	}
	b.WriteByte('\n')

	// Legend.
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", chartMarks[si%len(chartMarks)], s.Name))
	}
	if c.YLabel != "" {
		legend = append(legend, "y: "+c.YLabel)
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "   %s\n", strings.Join(legend, "   "))
	}
	return b.String()
}

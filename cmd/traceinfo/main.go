// Command traceinfo prints Table 1-style characteristics of triangle
// traces: screen size, pixels rendered, depth complexity, triangle and
// texture counts, texture footprint, and the unique texel-to-fragment
// ratio.
//
// Usage:
//
//	traceinfo file.trace [more.trace ...]
//	traceinfo -scene quake -scale 0.5     # measure a synthesized benchmark
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/texsim"
)

func main() {
	var (
		sceneName = flag.String("scene", "", "measure a synthesized benchmark instead of trace files")
		scale     = flag.Float64("scale", 1.0, "benchmark resolution scale")
	)
	flag.Parse()

	var scenes []*texsim.Scene
	if *sceneName != "" {
		b, err := texsim.LookupBenchmark(*sceneName, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
			os.Exit(1)
		}
		sc, err := b.Build()
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
			os.Exit(1)
		}
		scenes = append(scenes, sc)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
			os.Exit(1)
		}
		sc, err := texsim.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %s: %v\n", path, err)
			os.Exit(1)
		}
		scenes = append(scenes, sc)
	}
	if len(scenes) == 0 {
		fmt.Fprintln(os.Stderr, "traceinfo: pass trace files or -scene <name>")
		os.Exit(2)
	}

	fmt.Printf("%-20s %-10s %9s %7s %9s %9s %9s %8s\n",
		"scene", "screen", "Mpixels", "depth", "triangles", "textures", "tex MB", "uniq t/f")
	for _, sc := range scenes {
		st, err := texsim.Measure(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %s: %v\n", sc.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%-20s %-10s %9.2f %7.2f %9d %9d %9.1f %8.3f\n",
			st.Name, fmt.Sprintf("%dx%d", st.ScreenW, st.ScreenH),
			float64(st.PixelsRendered)/1e6, st.DepthComplexity,
			st.Triangles, st.Textures, float64(st.TextureBytes)/1e6,
			st.UniqueTexelFrag)
	}
}

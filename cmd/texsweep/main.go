// Command texsweep runs custom parameter sweeps over the simulator and
// emits one row per configuration — the open-ended counterpart of
// texbench's fixed paper experiments. Rows are the same structures the
// texsimd service returns, so a CSV sweep and an HTTP sweep job with the
// same spec agree exactly.
//
// Example: reproduce the spirit of Figure 7 for one scene, eight
// simulations at a time:
//
//	texsweep -scene truc640 -scale 0.5 -procs 4,16,64 \
//	         -dist block -sizes 4,8,16,32,64 -bus 1 -par 8 -o sweep.csv
//
// Add -json for the service's JSON document instead of CSV.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cliutil"
	"repro/internal/sweep"
)

func main() {
	var (
		sceneName = flag.String("scene", "truc640", "benchmark scene")
		scale     = flag.Float64("scale", 0.5, "resolution scale")
		procsList = flag.String("procs", "1,4,16,64", "processor counts (comma-separated)")
		dist      = flag.String("dist", "block", "distribution: block, sli or blockskewed")
		sizesList = flag.String("sizes", "4,8,16,32,64", "tile sizes (comma-separated)")
		busRatio  = flag.Float64("bus", 1, "bus texels per pixel-cycle (0 = infinite)")
		cacheKind = flag.String("cache", "real", "cache model: real, perfect or none")
		buffer    = flag.Int("buffer", 0, "triangle buffer entries (0 = paper default)")
		par       = flag.Int("par", 1, "concurrent simulations")
		asJSON    = flag.Bool("json", false, "emit the full JSON document instead of CSV")
		outPath   = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	procs, err := cliutil.ParseIntList(*procsList)
	if err != nil {
		cliutil.Fail("texsweep", fmt.Errorf("-procs: %w", err))
	}
	sizes, err := cliutil.ParseIntList(*sizesList)
	if err != nil {
		cliutil.Fail("texsweep", fmt.Errorf("-sizes: %w", err))
	}

	spec := sweep.Spec{
		Scene:  *sceneName,
		Scale:  *scale,
		Dist:   *dist,
		Procs:  procs,
		Sizes:  sizes,
		Bus:    *busRatio,
		Cache:  *cacheKind,
		Buffer: *buffer,
	}
	cliutil.Check("texsweep", spec.Validate())

	// Ctrl-C / SIGTERM abandons the remaining configurations.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := sweep.Run(ctx, spec, *par)
	cliutil.Check("texsweep", err)

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		cliutil.Check("texsweep", err)
		defer f.Close()
		out = f
	}
	if *asJSON {
		cliutil.Check("texsweep", sweep.WriteJSON(out, res))
	} else {
		cliutil.Check("texsweep", sweep.WriteCSV(out, res.Rows))
	}
}

// Package metrics is a dependency-free metrics registry exposing counters,
// gauges and histograms in the Prometheus text exposition format. It exists
// so texsimd can be scraped by standard tooling without pulling a client
// library into a repository that is otherwise stdlib-only.
//
// Concurrency: every metric type is safe for concurrent use; hot-path
// updates are single atomic operations (the histogram sum is a CAS loop).
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ContentType is the HTTP Content-Type of the Prometheus text exposition
// format WritePrometheus renders (version 0.0.4).
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by delta; negative deltas panic (a counter
// never decreases — use a Gauge).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: counter decrease")
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// SyncTo raises the counter to v when v is larger, and is a no-op otherwise.
// It mirrors an external monotonic source (e.g. resultcache.Stats) into the
// registry without counting the same event in two places: the source stays
// authoritative and the exported series can only move forward.
func (c *Counter) SyncTo(v int64) {
	for {
		cur := c.v.Load()
		if v <= cur || c.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative buckets, Prometheus-style.
type Histogram struct {
	bounds []float64 // sorted upper bounds, +Inf implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefBuckets are the default latency buckets, in seconds.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// family is one metric name with its help text and labelled children.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64 // histograms only

	mu       sync.Mutex
	children map[string]any // label-pair string -> *Counter/*Gauge/*Histogram
	order    []string       // registration order of label keys
}

// Registry holds metric families and renders them.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as a different kind", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, buckets: buckets,
		children: make(map[string]any)}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// labelString renders `name="value",...` pairs in the given order, escaping
// per the exposition format.
func labelString(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes backslashes, quotes and newlines exactly as the
		// exposition format requires.
		fmt.Fprintf(&b, "%s=%q", n, values[i])
	}
	return b.String()
}

func (f *family) child(labels string, make func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[labels]; ok {
		return c
	}
	c := make()
	f.children[labels] = c
	f.order = append(f.order, labels)
	return c
}

// Counter returns (registering on first use) the unlabelled counter `name`.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, kindCounter, nil)
	return f.child("", func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the unlabelled gauge `name`.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, kindGauge, nil)
	return f.child("", func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the unlabelled histogram `name` with the given bucket
// upper bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, kindHistogram, normBuckets(buckets))
	return f.child("", func() any { return newHistogram(f.buckets) }).(*Histogram)
}

func normBuckets(buckets []float64) []float64 {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	out := append([]float64(nil), buckets...)
	sort.Float64s(out)
	return out
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// CounterVec is a counter family with one label dimension set.
type CounterVec struct {
	f      *family
	labels []string
}

// CounterVec returns a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, kindCounter, nil), labels: labelNames}
}

// With returns the counter for the given label values (created on first use).
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", v.f.name, len(v.labels), len(values)))
	}
	ls := labelString(v.labels, values)
	return v.f.child(ls, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family with one label dimension set.
type GaugeVec struct {
	f      *family
	labels []string
}

// GaugeVec returns a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, kindGauge, nil), labels: labelNames}
}

// With returns the gauge for the given label values (created on first use).
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", v.f.name, len(v.labels), len(values)))
	}
	ls := labelString(v.labels, values)
	return v.f.child(ls, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family with one label dimension set.
type HistogramVec struct {
	f      *family
	labels []string
}

// HistogramVec returns a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, kindHistogram, normBuckets(buckets)), labels: labelNames}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", v.f.name, len(v.labels), len(values)))
	}
	ls := labelString(v.labels, values)
	return v.f.child(ls, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// escapeHelp escapes backslashes and newlines in HELP text, as the
// exposition format requires (an unescaped newline corrupts the scrape).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// fnum renders a float the way the exposition format expects; %g avoids
// trailing-zero noise in the scrape output.
func fnum(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return fmt.Sprintf("%g", v)
	}
}

// WritePrometheus renders every registered family in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		order := append([]string(nil), f.order...)
		// Stable output: children render in sorted label order, not
		// first-use order — concurrent With calls must not reshuffle the
		// scrape between renders.
		sort.Strings(order)
		children := make([]any, len(order))
		for i, ls := range order {
			children[i] = f.children[ls]
		}
		f.mu.Unlock()

		kind := map[metricKind]string{kindCounter: "counter", kindGauge: "gauge", kindHistogram: "histogram"}[f.kind]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, kind); err != nil {
			return err
		}
		for i, ls := range order {
			if err := writeChild(w, f, ls, children[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Sample is one scalar series value at snapshot time: a counter's count, a
// gauge's value, or a histogram's _count/_sum derivative (buckets are not
// sampled — the ring sampler retains scalar series only).
type Sample struct {
	Name   string
	Labels string // rendered `k="v",...` pairs, "" when unlabelled
	Value  float64
}

// Snapshot walks every registered family and returns the current value of
// each scalar series, in registration order with children in sorted label
// order — the feed for the time-series Sampler.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	for i, n := range r.order {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var out []Sample
	for _, f := range fams {
		f.mu.Lock()
		order := append([]string(nil), f.order...)
		sort.Strings(order)
		children := make([]any, len(order))
		for i, ls := range order {
			children[i] = f.children[ls]
		}
		f.mu.Unlock()
		for i, ls := range order {
			switch c := children[i].(type) {
			case *Counter:
				out = append(out, Sample{Name: f.name, Labels: ls, Value: float64(c.Value())})
			case *Gauge:
				out = append(out, Sample{Name: f.name, Labels: ls, Value: c.Value()})
			case *Histogram:
				out = append(out,
					Sample{Name: f.name + "_count", Labels: ls, Value: float64(c.Count())},
					Sample{Name: f.name + "_sum", Labels: ls, Value: c.Sum()})
			}
		}
	}
	return out
}

func writeChild(w io.Writer, f *family, labels string, child any) error {
	series := func(suffix, extraLabels string) string {
		all := labels
		if extraLabels != "" {
			if all != "" {
				all += ","
			}
			all += extraLabels
		}
		if all == "" {
			return f.name + suffix
		}
		return fmt.Sprintf("%s%s{%s}", f.name, suffix, all)
	}
	switch c := child.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s %d\n", series("", ""), c.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s %s\n", series("", ""), fnum(c.Value()))
		return err
	case *Histogram:
		var cum int64
		for i, bound := range c.bounds {
			cum += c.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s %d\n",
				series("_bucket", fmt.Sprintf("le=%q", fnum(bound))), cum); err != nil {
				return err
			}
		}
		cum += c.counts[len(c.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s %d\n", series("_bucket", `le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", series("_sum", ""), fnum(c.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", series("_count", ""), c.Count())
		return err
	}
	return fmt.Errorf("metrics: unknown child type %T", child)
}

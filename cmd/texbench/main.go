// Command texbench regenerates the paper's tables and figures. Each
// experiment sweeps the machine configurations the paper sweeps on the
// synthesized benchmark scenes and prints the corresponding rows/series.
//
// Usage:
//
//	texbench -list
//	texbench -exp fig7 [-scale 0.5] [-par 8] [-out out/]
//	texbench -exp all
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		expID  = flag.String("exp", "", "experiment id to run, or 'all'")
		scale  = flag.Float64("scale", 0.5, "scene resolution scale (1 = paper's full frames)")
		par    = flag.Int("par", 0, "max concurrent simulations (0 = NumCPU)")
		out    = flag.String("out", "out", "output directory for image-producing experiments")
		format = flag.String("format", "text", "output format: text, csv or json")
		list   = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-15s %s\n", e.ID, e.Title)
		}
		if !*list {
			fmt.Println("\nrun one with: texbench -exp <id> (or -exp all)")
			os.Exit(2)
		}
		return
	}

	opt := experiments.Options{Scale: *scale, Parallelism: *par, OutDir: *out}
	var toRun []experiments.Experiment
	if *expID == "all" {
		toRun = experiments.All()
	} else {
		e, ok := experiments.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "texbench: unknown experiment %q (use -list)\n", *expID)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	// Ctrl-C / SIGTERM cancels in-flight simulations instead of leaving a
	// long sweep running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	for _, e := range toRun {
		start := time.Now()
		report, err := e.Run(ctx, opt)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "texbench: %s: interrupted\n", e.ID)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "texbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch *format {
		case "text":
			report.Format(os.Stdout)
			fmt.Printf("\n[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		case "csv":
			err = report.WriteCSV(os.Stdout)
		case "json":
			err = report.WriteJSON(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "texbench: unknown format %q\n", *format)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "texbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}

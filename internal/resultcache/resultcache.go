// Package resultcache is a content-addressed cache for simulation results:
// the service-level analogue of the paper's texture cache. Keys are a SHA-256
// of the canonical JSON encoding of the full simulation request, so two
// requests that would simulate the same machine on the same scene share one
// entry — identical configs are served without re-simulating.
//
// The cache is an in-memory LRU with an optional write-through on-disk tier,
// so a restarted service keeps its warm set (the L2 to the in-memory L1, to
// keep the paper's framing).
package resultcache

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Key derives the canonical cache key of any JSON-encodable request value.
// encoding/json writes struct fields in declaration order and sorts map
// keys, so the encoding — and therefore the key — is deterministic. Any
// field change produces a different key.
func Key(v any) (string, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	// No HTML escaping: keys must not depend on a transport-safety detail.
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return "", fmt.Errorf("resultcache: encoding key: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// Config sizes the cache.
type Config struct {
	// MaxEntries bounds the in-memory tier (0 = DefaultMaxEntries).
	MaxEntries int
	// Dir, when non-empty, enables the write-through on-disk tier; one file
	// per entry, named by key. The directory is created if missing.
	Dir string
	// Disabled turns the cache into a no-op: every Get misses and Put
	// discards. Used to force re-simulation — the texsimd -no-cache flag
	// and the cache-soundness tests, which compare cached against freshly
	// simulated documents.
	Disabled bool
}

// DefaultMaxEntries is the in-memory entry bound when Config.MaxEntries is 0.
const DefaultMaxEntries = 256

// Stats are cumulative cache counters. This snapshot is the single source of
// truth for cache accounting: both the /metrics exposition and the /cluster
// status document render from it rather than keeping parallel counters.
type Stats struct {
	Hits       uint64 // Get served from memory or disk
	Misses     uint64 // Get found nothing
	RemoteHits uint64 // results fetched from an owning peer (PutRemote)
	Evictions  uint64 // in-memory LRU evictions
}

type entry struct {
	key string
	val []byte
}

// Cache is the two-tier result cache. All methods are safe for concurrent
// use.
type Cache struct {
	mu       sync.Mutex
	max      int
	dir      string
	disabled bool
	lru      *list.List // front = most recent; values are *entry
	byKey    map[string]*list.Element
	stats    Stats
}

// New builds a cache; with a Dir it creates the directory eagerly so
// misconfiguration fails at startup, not on the first Put.
func New(cfg Config) (*Cache, error) {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.Disabled {
		return &Cache{disabled: true}, nil
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("resultcache: %w", err)
		}
	}
	return &Cache{
		max:   cfg.MaxEntries,
		dir:   cfg.Dir,
		lru:   list.New(),
		byKey: make(map[string]*list.Element),
	}, nil
}

// Get returns the cached bytes for key. A memory miss falls back to the disk
// tier and promotes the entry on success.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c.disabled {
		c.mu.Lock()
		c.stats.Misses++
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, true
	}
	c.mu.Unlock()

	if c.dir != "" {
		if val, err := os.ReadFile(c.path(key)); err == nil {
			// Entries are JSON documents written atomically, so anything
			// else — truncated, scribbled, or empty — is disk corruption,
			// not a result. Serving it would poison every future hit (the
			// insert would promote it to the memory tier); treat it as a
			// miss and delete the file so the re-simulated result can be
			// written back cleanly.
			if !json.Valid(val) {
				os.Remove(c.path(key))
			} else {
				c.mu.Lock()
				c.stats.Hits++
				c.insertLocked(key, val)
				c.mu.Unlock()
				return val, true
			}
		}
	}

	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores val under key in memory and, when configured, on disk. The
// slice is retained; callers must not mutate it afterwards.
func (c *Cache) Put(key string, val []byte) error {
	if c.disabled {
		return nil
	}
	c.mu.Lock()
	c.insertLocked(key, val)
	c.mu.Unlock()

	if c.dir == "" {
		return nil
	}
	// Atomic publish: never leave a half-written entry for a future Get.
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	if _, err := tmp.Write(val); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	return nil
}

// PutRemote stores a result fetched from the owning peer of key — a
// federated cache hit. It counts toward Stats.RemoteHits (the local Get that
// preceded it already counted as a miss) and then stores like Put, so the
// proxied result is served locally from now on.
func (c *Cache) PutRemote(key string, val []byte) error {
	c.mu.Lock()
	c.stats.RemoteHits++
	c.mu.Unlock()
	return c.Put(key, val)
}

// Peek returns the cached bytes for key without touching the hit/miss
// counters — the lookup a peer performs on behalf of another node, which
// should not skew this node's local hit ratio. Memory entries are still
// promoted; the disk tier is consulted like Get.
func (c *Cache) Peek(key string) ([]byte, bool) {
	if c.disabled {
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, true
	}
	c.mu.Unlock()

	if c.dir != "" {
		if val, err := os.ReadFile(c.path(key)); err == nil && json.Valid(val) {
			c.mu.Lock()
			c.insertLocked(key, val)
			c.mu.Unlock()
			return val, true
		}
	}
	return nil, false
}

// insertLocked adds or refreshes the in-memory entry, evicting from the LRU
// tail past capacity. Caller holds c.mu.
func (c *Cache) insertLocked(key string, val []byte) {
	if el, ok := c.byKey[key]; ok {
		el.Value.(*entry).val = val
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(&entry{key: key, val: val})
	for c.lru.Len() > c.max {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.byKey, tail.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// NS is a namespaced view of a Cache: every key is rewritten to
// sha256(namespace NUL key) before reaching the underlying tiers, so
// entries of different namespaces can share one cache (and one disk
// directory) without colliding — even when their logical keys are equal.
// The rewritten key is again 64 lowercase hex, so it satisfies every
// consumer of the plain key shape (disk file naming, peer-protocol key
// validation). The sweep engine's row checkpoints live in such a view.
type NS struct {
	c  *Cache
	ns string
}

// Namespace returns a view of the cache whose keys live under ns. Views
// share the underlying tiers (and their stats); the same (ns, key) pair
// always maps to the same entry.
func (c *Cache) Namespace(ns string) *NS { return &NS{c: c, ns: ns} }

// key derives the namespaced cache key. The NUL separator prevents prefix
// ambiguity between namespace and key: ("a", "b") and ("ab", "") hash
// differently.
func (n *NS) key(key string) string {
	sum := sha256.Sum256([]byte(n.ns + "\x00" + key))
	return hex.EncodeToString(sum[:])
}

// Get reads the namespaced entry; see Cache.Get.
func (n *NS) Get(key string) ([]byte, bool) { return n.c.Get(n.key(key)) }

// Put stores the namespaced entry; see Cache.Put.
func (n *NS) Put(key string, val []byte) error { return n.c.Put(n.key(key), val) }

// Disabled reports whether the cache is a no-op (Config.Disabled). Cluster
// cache federation checks this so that -no-cache disables remote lookups
// too — a disabled cache must force re-simulation, not a peer fetch.
func (c *Cache) Disabled() bool { return c.disabled }

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.disabled {
		return 0
	}
	return c.lru.Len()
}

// Stats returns a snapshot of the cumulative counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// path maps a key to its disk file. Keys are hex digests, so they are safe
// path components by construction.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Package det exercises the determinism analyzer: hidden inputs (clock,
// global randomness, environment) and map-order leaks must be flagged;
// injected randomness and sorted map iteration must not.
package det

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"
)

func clock() int64 {
	t := time.Now() // want `time.Now reads the wall clock`
	return t.UnixNano()
}

func elapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want `time.Since reads the wall clock`
}

func ticker() {
	<-time.Tick(time.Second) // want `time.Tick creates a wall-clock ticker`
}

func globalRand() int {
	return rand.Intn(10) // want `math/rand.Intn uses the global random source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand.Shuffle uses the global random source`
}

func injectedRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // ok: seeded and injected
	return rng.Intn(10)
}

func env() string {
	return os.Getenv("HOME") // want `os.Getenv reads the process environment`
}

func mapOrder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `keys accumulates values in map iteration order`
	}
	return keys
}

func mapSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // ok: sorted below
	}
	sort.Strings(keys)
	return keys
}

func mapLocalAccumulator(m map[string][]int) []int {
	var all []int
	for _, vs := range m {
		sum := 0
		for _, v := range vs {
			sum += v
		}
		all = append(all, sum) // want `all accumulates values in map iteration order`
	}
	return all
}

func mapPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `output written inside range over map`
	}
}

func mapCount(m map[string]int) int {
	n := 0
	for range m {
		n++ // ok: order-insensitive
	}
	return n
}

func suppressed() int64 {
	return time.Now().UnixNano() //texlint:ignore determinism testdata exercises suppression
}

// Command tracegen synthesizes a benchmark scene (or a custom one) and
// writes it as a binary triangle trace, the equivalent of the
// Mesa-instrumented traces the paper's simulations consumed.
//
// Usage:
//
//	tracegen -scene truc640 -scale 0.5 -o truc640.trace
//	tracegen -custom -width 640 -height 480 -triangles 5000 -dc 3 \
//	         -textures 100 -texsize 64 -density 0.8 -seed 7 -o custom.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/texsim"
)

func main() {
	var (
		sceneName = flag.String("scene", "", "paper benchmark to synthesize (see -list)")
		scale     = flag.Float64("scale", 1.0, "resolution scale")
		out       = flag.String("o", "", "output trace file (required)")
		list      = flag.Bool("list", false, "list benchmark scenes and exit")

		custom    = flag.Bool("custom", false, "generate a custom scene instead of a benchmark")
		width     = flag.Int("width", 640, "custom: screen width")
		height    = flag.Int("height", 480, "custom: screen height")
		triangles = flag.Int("triangles", 5000, "custom: triangle count")
		dc        = flag.Float64("dc", 3, "custom: depth complexity")
		textures  = flag.Int("textures", 64, "custom: texture count")
		texsize   = flag.Int("texsize", 64, "custom: mean texture size (power of two)")
		density   = flag.Float64("density", 1, "custom: texels per pixel")
		fresh     = flag.Float64("fresh", 0.8, "custom: fresh-texture-region fraction")
		hotspots  = flag.Int("hotspots", 4, "custom: overdraw hot spots")
		hotshare  = flag.Float64("hotshare", 0.3, "custom: fragment share inside hot spots")
		seed      = flag.Int64("seed", 1, "custom: generator seed")
	)
	flag.Parse()

	if *list {
		for _, n := range texsim.BenchmarkNames() {
			fmt.Println(n)
		}
		return
	}
	if *out == "" {
		cliutil.Usage("tracegen", "-o output file is required")
	}

	var (
		sc  *texsim.Scene
		err error
	)
	switch {
	case *custom:
		sc, err = texsim.GenerateScene(texsim.SceneParams{
			Name: "custom", Width: *width, Height: *height,
			Triangles: *triangles, DepthComplexity: *dc,
			Textures: *textures, TexSize: *texsize,
			TexelDensity: *density, FreshFraction: *fresh,
			HotSpots: *hotspots, HotSpotShare: *hotshare,
			Seed: *seed, Scale: *scale,
		})
	case *sceneName != "":
		var b texsim.BenchmarkInfo
		b, err = texsim.LookupBenchmark(*sceneName, *scale)
		if err == nil {
			sc, err = b.Build()
		}
	default:
		cliutil.Usage("tracegen", "pass -scene <name> or -custom (use -list for names)")
	}
	cliutil.Check("tracegen", err)

	f, err := os.Create(*out)
	cliutil.Check("tracegen", err)
	defer f.Close()
	cliutil.Check("tracegen", texsim.WriteTrace(f, sc))
	cliutil.Check("tracegen", f.Close())
	fmt.Printf("wrote %s: %d triangles, %d textures, %dx%d\n",
		*out, len(sc.Triangles), len(sc.Textures), sc.Screen.Width(), sc.Screen.Height())
}

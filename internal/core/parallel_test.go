package core

import (
	"encoding/json"
	"testing"

	"repro/internal/distrib"
	"repro/internal/memory"
	"repro/internal/scene"
	"repro/internal/trace"
)

// runKernelPair simulates s under cfg on the event-driven kernel and on the
// parallel kernel and fails the test unless the results are byte-identical
// after JSON encoding (cycles, fragments, texels, cache statistics, FIFO
// peaks — everything the simulator reports). It returns the parallel machine
// so callers can inspect which kernel actually ran.
func runKernelPair(t *testing.T, s *trace.Scene, cfg Config) *Machine {
	t.Helper()
	serial, err := NewMachine(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial.SetNodeParallelism(1)
	par, err := NewMachine(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par.SetNodeParallelism(4)
	want, got := serial.Run(), par.Run()
	wantJS, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJS, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(wantJS) != string(gotJS) {
		t.Errorf("kernels disagree\nserial:   %s\nparallel: %s", wantJS, gotJS)
	}
	if serial.parallelFrames != 0 {
		t.Error("serial machine ran the parallel kernel")
	}
	return par
}

// TestParallelKernelEquivalenceMatrix pins the equivalence contract across
// every Table 1 benchmark scene, every distribution family, and every cache
// kind: the parallel kernel must be indistinguishable from the event kernel
// in everything but wall-clock.
func TestParallelKernelEquivalenceMatrix(t *testing.T) {
	dists := []struct {
		kind distrib.Kind
		tile int
	}{
		{distrib.BlockKind, 16},
		{distrib.SLIKind, 2},
		{distrib.BlockSkewedKind, 8},
	}
	caches := []CacheKind{CacheReal, CachePerfect, CacheNone}
	for _, name := range scene.Names() {
		s := benchSceneFor(t, name, 0.1)
		for _, d := range dists {
			for _, ck := range caches {
				cfg := Config{
					Procs: 8, Distribution: d.kind, TileSize: d.tile,
					CacheKind: ck,
					Bus:       memory.BusConfig{TexelsPerCycle: 2},
				}
				m := runKernelPair(t, s, cfg)
				if m.parallelFrames == 0 {
					t.Errorf("%s/%s%d/%s: parallel kernel never engaged",
						name, d.kind, d.tile, ck)
				}
			}
		}
	}
}

// TestParallelKernelRandomScenes covers geometry the benchmark builders do
// not produce (degenerate and offscreen triangles from the random generator)
// at several tile sizes and processor counts.
func TestParallelKernelRandomScenes(t *testing.T) {
	for _, seed := range []int64{3, 19} {
		s := testScene(seed, 80, 128)
		for _, procs := range []int{2, 5, 16} {
			for _, tile := range []int{2, 16, 64} {
				m := runKernelPair(t, s, Config{
					Procs: procs, TileSize: tile,
					Bus: memory.BusConfig{TexelsPerCycle: 1},
				})
				if m.parallelFrames == 0 {
					t.Errorf("seed%d/p%d/t%d: parallel kernel never engaged",
						seed, procs, tile)
				}
			}
		}
	}
}

// TestParallelKernelL2 checks equivalence with the two-level cache hierarchy
// and a finite main-memory bus.
func TestParallelKernelL2(t *testing.T) {
	s := benchSceneFor(t, "blowout775", 0.15)
	m := runKernelPair(t, s, Config{
		Procs: 4, L2Config: l2Config(),
		Bus:     memory.BusConfig{TexelsPerCycle: 2},
		MainBus: memory.BusConfig{TexelsPerCycle: 1},
	})
	if m.parallelFrames == 0 {
		t.Error("parallel kernel never engaged")
	}
}

// TestParallelKernelSequence checks frame sequences: per-frame snapshots and
// the inter-frame cache state they depend on must match the event kernel.
func TestParallelKernelSequence(t *testing.T) {
	base := benchSceneFor(t, "room3", 0.1)
	frames := scene.PanSequence(base, 4, 3, 1)
	cfg := Config{Procs: 8, TileSize: 8}

	run := func(nodePar int) ([]*Result, *Machine) {
		m, err := NewMachine(frames[0], cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.SetNodeParallelism(nodePar)
		rs, err := m.RunSequence(frames)
		if err != nil {
			t.Fatal(err)
		}
		return rs, m
	}
	want, _ := run(1)
	got, m := run(4)
	if m.parallelFrames != len(frames) {
		t.Errorf("parallel kernel ran %d of %d frames", m.parallelFrames, len(frames))
	}
	for i := range want {
		wantJS, _ := json.Marshal(want[i])
		gotJS, _ := json.Marshal(got[i])
		if string(wantJS) != string(gotJS) {
			t.Errorf("frame %d: kernels disagree\nserial:   %s\nparallel: %s",
				i, wantJS, gotJS)
		}
	}
}

// TestParallelKernelSmallBufferFallsBack pins the §8 rule: any TriangleBuffer
// below the paper default can back-pressure the distributor, so the machine
// must use the event kernel regardless of the parallelism setting.
func TestParallelKernelSmallBufferFallsBack(t *testing.T) {
	s := testScene(5, 60, 96)
	m := runKernelPair(t, s, Config{Procs: 4, TriangleBuffer: 8})
	if m.parallelFrames != 0 {
		t.Error("parallel kernel engaged despite a small triangle buffer")
	}
}

// TestParallelKernelOverfullFIFOFallsBack builds a frame with more triangles
// than one node's FIFO holds: the routing pre-pass must detect the overflow
// and hand the frame to the event kernel, which models the real stall.
func TestParallelKernelOverfullFIFOFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a >10000-triangle scene")
	}
	// ~1.5% of the random triangles land offscreen and are never routed, so
	// overshoot the FIFO capacity by enough that node 0 still overflows.
	s := testScene(9, DefaultTriangleBuffer+300, 64)
	m := runKernelPair(t, s, Config{Procs: 1, CacheKind: CachePerfect})
	if m.parallelFrames != 0 {
		t.Error("parallel kernel engaged despite FIFO overflow")
	}
}

// TestParallelKernelFlightRecorderFallsBack: the flight recorder's bucket
// grid is shared across nodes, so recorded runs must stay on the event
// kernel (and recordings therefore stay deterministic).
func TestParallelKernelFlightRecorderFallsBack(t *testing.T) {
	s := testScene(13, 40, 96)
	m, err := NewMachine(s, Config{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	m.SetNodeParallelism(4)
	m.EnableFlightRecorder(64)
	m.Run()
	if m.parallelFrames != 0 {
		t.Error("parallel kernel engaged with a flight recorder attached")
	}
}

// TestParallelKernelEmptyFrame: a frame with no routable triangles still
// reports zeroed per-node FIFO peaks on both kernels.
func TestParallelKernelEmptyFrame(t *testing.T) {
	s := testScene(1, 10, 64)
	s.Triangles = nil
	m := runKernelPair(t, s, Config{Procs: 4})
	if m.parallelFrames == 0 {
		t.Error("parallel kernel never engaged")
	}
}

// TestSetNodeParallelismDefaults pins the knob semantics: <=0 restores the
// GOMAXPROCS default and 1 forces the event kernel.
func TestSetNodeParallelismDefaults(t *testing.T) {
	s := testScene(2, 10, 64)
	m, err := NewMachine(s, Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.SetNodeParallelism(-3)
	if got := m.nodeParallelism(); got < 1 {
		t.Errorf("nodeParallelism() = %d after reset", got)
	}
	m.SetNodeParallelism(1)
	if m.parallelEligible() {
		t.Error("eligible with node parallelism forced to 1")
	}
	m.SetNodeParallelism(8)
	if !m.parallelEligible() {
		t.Error("not eligible with node parallelism 8")
	}
}

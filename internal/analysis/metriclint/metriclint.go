// Package metriclint checks metric registrations against Prometheus
// conventions, statically. It matches calls to the registration methods of
// any type named Registry — Counter, Gauge, Histogram, CounterVec,
// GaugeVec, HistogramVec, the shape of internal/metrics — and enforces:
//
//   - the metric name is a compile-time string constant (names assembled at
//     runtime defeat grepping a scrape for its source and can explode
//     cardinality);
//   - names match ^[a-z][a-z0-9_]*$ (the strict house subset of the
//     Prometheus data model);
//   - each name is registered at exactly one call site per package — two
//     sites sharing a name silently share a family or panic on a kind
//     mismatch at runtime;
//   - label names are constants matching ^[a-z_][a-z0-9_]*$, are not
//     duplicated, and number at most three per metric: every label
//     multiplies series cardinality, so label sets must stay small and
//     bounded;
//   - counters end in _total (the Prometheus counter convention), and
//     histogram base names end in none of _bucket, _sum, _count or _total —
//     the exposition renderer appends _bucket, _sum and _count to the base
//     name, so a reserved suffix collides with the rendered series.
package metriclint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the metric-conventions check.
var Analyzer = &framework.Analyzer{
	Name: "metriclint",
	Doc: "metric names are constant, match ^[a-z][a-z0-9_]*$, carry the " +
		"kind's suffix and register once; label sets are constant, valid " +
		"and bounded",
	Run: run,
}

var (
	nameRe  = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	labelRe = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
)

// maxLabels bounds label dimensions per metric; every label multiplies
// series cardinality.
const maxLabels = 3

// registrars maps method name -> index of the first label-name argument
// (-1 when the method takes no labels).
var registrars = map[string]int{
	"Counter":      -1,
	"Gauge":        -1,
	"Histogram":    -1,
	"CounterVec":   2,
	"GaugeVec":     2,
	"HistogramVec": 3,
}

func run(pass *framework.Pass) error {
	seen := make(map[string]token.Position) // metric name -> first site
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkRegistration(pass, call, seen)
			return true
		})
	}
	return nil
}

// isRegistryCall reports whether the call is a registration method on a
// value of a type named Registry.
func isRegistryCall(pass *framework.Pass, call *ast.CallExpr) (labelStart int, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return 0, false
	}
	labelStart, isReg := registrars[sel.Sel.Name]
	if !isReg {
		return 0, false
	}
	fn, isFn := pass.ObjectOf(sel.Sel).(*types.Func)
	if !isFn {
		return 0, false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return 0, false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Name() != "Registry" {
		return 0, false
	}
	return labelStart, true
}

// constString extracts the compile-time string value of an expression.
func constString(pass *framework.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func checkRegistration(pass *framework.Pass, call *ast.CallExpr, seen map[string]token.Position) {
	labelStart, ok := isRegistryCall(pass, call)
	if !ok || len(call.Args) == 0 {
		return
	}
	name, isConst := constString(pass, call.Args[0])
	if !isConst {
		pass.Reportf(call.Args[0].Pos(), "metric name must be a compile-time string constant")
		return
	}
	if !nameRe.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(), "metric name %q does not match ^[a-z][a-z0-9_]*$", name)
	} else {
		checkSuffix(pass, call, name)
	}
	if first, dup := seen[name]; dup {
		pass.Reportf(call.Args[0].Pos(), "metric %q already registered at %s; each name must have exactly one registration site", name, posString(first))
	} else {
		seen[name] = pass.Fset.Position(call.Args[0].Pos())
	}
	if labelStart < 0 || len(call.Args) <= labelStart {
		return
	}
	labels := call.Args[labelStart:]
	if len(labels) > maxLabels {
		pass.Reportf(labels[maxLabels].Pos(), "metric %q declares %d label dimensions (max %d); label sets must stay small and bounded", name, len(labels), maxLabels)
	}
	labelSeen := make(map[string]bool)
	for _, arg := range labels {
		lv, lok := constString(pass, arg)
		if !lok {
			pass.Reportf(arg.Pos(), "label name of metric %q must be a compile-time string constant", name)
			continue
		}
		if !labelRe.MatchString(lv) {
			pass.Reportf(arg.Pos(), "label name %q of metric %q does not match ^[a-z_][a-z0-9_]*$", lv, name)
		}
		if labelSeen[lv] {
			pass.Reportf(arg.Pos(), "duplicate label %q on metric %q", lv, name)
		}
		labelSeen[lv] = true
	}
}

// histogramReserved are the suffixes a histogram base name may not carry:
// the renderer appends _bucket, _sum and _count itself, and _total belongs
// to counters.
var histogramReserved = []string{"_bucket", "_sum", "_count", "_total"}

// checkSuffix enforces the per-kind naming suffix, keyed off the
// registration method's name (already known to be a registrar).
func checkSuffix(pass *framework.Pass, call *ast.CallExpr, name string) {
	switch call.Fun.(*ast.SelectorExpr).Sel.Name {
	case "Counter", "CounterVec":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(call.Args[0].Pos(), "counter %q must end in _total (the Prometheus counter convention)", name)
		}
	case "Histogram", "HistogramVec":
		for _, suf := range histogramReserved {
			if strings.HasSuffix(name, suf) {
				pass.Reportf(call.Args[0].Pos(), "histogram %q must not end in %s; the renderer appends _bucket, _sum and _count to the base name", name, suf)
			}
		}
	}
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}

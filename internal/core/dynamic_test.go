package core

import (
	"testing"

	"repro/internal/distrib"
	"repro/internal/geom"
	"repro/internal/trace"
)

func TestDynamicFragmentsMatchStatic(t *testing.T) {
	// Dynamic assignment redistributes tiles but must draw exactly the same
	// fragments as the static machine.
	scene := testScene(41, 80, 128)
	cfg := Config{Procs: 8, Distribution: distrib.BlockKind, TileSize: 16,
		CacheKind: CachePerfect}
	static, err := Simulate(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range []DynamicOrder{DynamicScreenOrder, DynamicLPT} {
		dyn, err := SimulateDynamic(scene, cfg, order)
		if err != nil {
			t.Fatal(err)
		}
		if dyn.Fragments != static.Fragments {
			t.Errorf("%v: dynamic fragments %d != static %d",
				order, dyn.Fragments, static.Fragments)
		}
	}
}

func TestDynamicRejectsSLI(t *testing.T) {
	scene := testScene(43, 10, 64)
	_, err := SimulateDynamic(scene, Config{
		Procs: 4, Distribution: distrib.SLIKind, TileSize: 2, CacheKind: CachePerfect,
	}, DynamicLPT)
	if err == nil {
		t.Error("dynamic scheduling accepted SLI")
	}
}

func TestDynamicBeatsStaticOnAliasedStrip(t *testing.T) {
	// The static interleave's worst case: a hot vertical strip whose tiles
	// all alias to the same processor. Screen 256 px, tile 16 → 16 tiles per
	// row; with 8 processors, the tiles of column 0 have ids 0, 16, 32, …
	// ≡ 0 (mod 8): the whole strip lands on processor 0. A dynamic tile
	// queue spreads the strip's 8 tiles over all processors.
	s := &trace.Scene{
		Name:     "strip",
		Screen:   geom.Rect{X0: 0, Y0: 0, X1: 256, Y1: 256},
		Textures: []trace.TexSize{{W: 64, H: 64}},
	}
	for i := 0; i < 40; i++ {
		s.Triangles = append(s.Triangles,
			geom.Triangle{V: [3]geom.Vec2{{X: 0, Y: 0}, {X: 15.5, Y: 0}, {X: 0, Y: 128}},
				Tex: geom.TexMap{DuDx: 1, DvDy: 1}},
			geom.Triangle{V: [3]geom.Vec2{{X: 15.5, Y: 0}, {X: 15.5, Y: 128}, {X: 0, Y: 128}},
				Tex: geom.TexMap{DuDx: 1, DvDy: 1}},
		)
	}
	cfg := Config{Procs: 8, Distribution: distrib.BlockKind, TileSize: 16,
		CacheKind: CachePerfect}
	static, err := Simulate(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := SimulateDynamic(s, cfg, DynamicLPT)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Fragments != static.Fragments {
		t.Fatalf("fragment mismatch: %d vs %d", dyn.Fragments, static.Fragments)
	}
	if dyn.Cycles*2 > static.Cycles {
		t.Errorf("dynamic LPT (%v cycles) not well below aliased static interleave (%v cycles)",
			dyn.Cycles, static.Cycles)
	}
}

func TestDynamicLPTNoWorseThanScreenOrder(t *testing.T) {
	scene := testScene(47, 150, 256)
	cfg := Config{Procs: 16, Distribution: distrib.BlockKind, TileSize: 32,
		CacheKind: CachePerfect}
	lpt, err := SimulateDynamic(scene, cfg, DynamicLPT)
	if err != nil {
		t.Fatal(err)
	}
	screen, err := SimulateDynamic(scene, cfg, DynamicScreenOrder)
	if err != nil {
		t.Fatal(err)
	}
	// LPT is not universally optimal, but on a many-tile workload it should
	// not lose badly to naive order.
	if lpt.Cycles > screen.Cycles*1.05 {
		t.Errorf("LPT (%v) much worse than screen order (%v)", lpt.Cycles, screen.Cycles)
	}
}

func TestDynamicDeterminism(t *testing.T) {
	scene := testScene(53, 60, 128)
	cfg := Config{Procs: 6, Distribution: distrib.BlockKind, TileSize: 16,
		CacheKind: CacheReal}
	a, err := SimulateDynamic(scene, cfg, DynamicLPT)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateDynamic(scene, cfg, DynamicLPT)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Fragments != b.Fragments {
		t.Error("dynamic simulation not deterministic")
	}
}

func TestDynamicOrderString(t *testing.T) {
	if DynamicScreenOrder.String() != "screen-order" || DynamicLPT.String() != "LPT" {
		t.Error("order names wrong")
	}
}

package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// WriteCSV emits every table of the report as RFC-4180 CSV. Tables are
// separated by a comment-style row carrying the caption (spreadsheet tools
// skip or show it harmlessly), so one file carries a whole experiment.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	for ti, t := range r.Table {
		if ti > 0 {
			if err := cw.Write([]string{""}); err != nil {
				return err
			}
		}
		if err := cw.Write([]string{fmt.Sprintf("# %s — %s", r.ID, t.Caption)}); err != nil {
			return err
		}
		if err := cw.Write(t.Header); err != nil {
			return err
		}
		for _, row := range t.Rows {
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonReport is the stable machine-readable shape of a Report.
type jsonReport struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Notes  []string    `json:"notes,omitempty"`
	Tables []jsonTable `json:"tables"`
}

type jsonTable struct {
	Caption string     `json:"caption"`
	Header  []string   `json:"header"`
	Rows    [][]string `json:"rows"`
}

// WriteJSON emits the report as one indented JSON document.
func (r *Report) WriteJSON(w io.Writer) error {
	out := jsonReport{ID: r.ID, Title: r.Title, Notes: r.Notes}
	for _, t := range r.Table {
		out.Tables = append(out.Tables, jsonTable{
			Caption: t.Caption,
			Header:  t.Header,
			Rows:    t.Rows,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

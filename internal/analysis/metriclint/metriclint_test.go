package metriclint_test

import (
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/metriclint"
)

func TestMetricLint(t *testing.T) {
	framework.RunTest(t, ".", metriclint.Analyzer, "metrics")
}

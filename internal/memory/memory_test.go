package memory

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/texture"
)

func TestLineCycles(t *testing.T) {
	if got := (BusConfig{TexelsPerCycle: 1}).LineCycles(); got != 16 {
		t.Errorf("ratio-1 line cost = %v, want 16", got)
	}
	if got := (BusConfig{TexelsPerCycle: 2}).LineCycles(); got != 8 {
		t.Errorf("ratio-2 line cost = %v, want 8", got)
	}
	if got := (BusConfig{}).LineCycles(); got != 0 {
		t.Errorf("infinite bus line cost = %v, want 0", got)
	}
	if !(BusConfig{TexelsPerCycle: math.Inf(1)}).Infinite() {
		t.Error("+Inf bandwidth not recognized as infinite")
	}
}

func TestValidate(t *testing.T) {
	if err := (BusConfig{TexelsPerCycle: -1}).Validate(); err == nil {
		t.Error("negative bandwidth validated")
	}
	if err := (BusConfig{TexelsPerCycle: 2}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestInfiniteBusNeverDelays(t *testing.T) {
	b := NewBus(BusConfig{})
	for i := 0; i < 100; i++ {
		scan := float64(i)
		if got := b.Fetch(scan, 3); got != scan {
			t.Fatalf("infinite bus delayed fetch to %v at scan %v", got, scan)
		}
	}
	if got := b.Stats().LinesFetched; got != 300 {
		t.Errorf("lines fetched = %d, want 300", got)
	}
	if got := b.Stats().TexelsFetched(); got != 300*texture.LineTexels {
		t.Errorf("texels fetched = %d", got)
	}
}

func TestSerializedFetches(t *testing.T) {
	// Ratio 1, no prefetch window: back-to-back single-line fetches at scan
	// time 0 pile up in 16-cycle steps.
	b := NewBus(BusConfig{TexelsPerCycle: 1})
	for i := 1; i <= 5; i++ {
		got := b.Fetch(0, 1)
		if got != float64(16*i) {
			t.Fatalf("fetch %d ready at %v, want %d", i, got, 16*i)
		}
	}
	if got := b.Stats().BusyCycles; got != 80 {
		t.Errorf("busy cycles = %v, want 80", got)
	}
}

func TestEarlyIssueCompletesEarly(t *testing.T) {
	// A fetch issued at time 68 on an idle ratio-1 bus completes at 84.
	b := NewBus(BusConfig{TexelsPerCycle: 1})
	if got := b.Fetch(68, 1); got != 84 {
		t.Errorf("fetch ready at %v, want 84", got)
	}
	// A later fetch issued at 100 starts after the issue time, not the
	// previous completion (bus idle in between).
	if got := b.Fetch(100, 1); got != 116 {
		t.Errorf("second fetch ready at %v, want 116", got)
	}
}

func TestFetchNeverStartsBeforeZero(t *testing.T) {
	b := NewBus(BusConfig{TexelsPerCycle: 2})
	// A negative issue time (no earlier constraint) must clamp to zero.
	if got := b.Fetch(-50, 1); got != 8 {
		t.Errorf("fetch ready at %v, want 8", got)
	}
}

func TestZeroLinesIsFree(t *testing.T) {
	b := NewBus(BusConfig{TexelsPerCycle: 1})
	if got := b.Fetch(50, 0); got != 0 {
		t.Errorf("zero-line fetch returned %v", got)
	}
	if b.Stats().LinesFetched != 0 || b.FreeAt() != 0 {
		t.Error("zero-line fetch mutated bus state")
	}
}

func TestReset(t *testing.T) {
	b := NewBus(BusConfig{TexelsPerCycle: 1})
	b.Fetch(0, 4)
	b.Reset()
	if b.FreeAt() != 0 || b.Stats().LinesFetched != 0 || b.Stats().BusyCycles != 0 {
		t.Error("reset incomplete")
	}
}

func TestMonotonicCompletionProperty(t *testing.T) {
	// Completion times are non-decreasing for non-decreasing scan times, and
	// never precede fetch issue; total busy cycles equal lines × lineCycles.
	f := func(seeds [20]uint8) bool {
		b := NewBus(BusConfig{TexelsPerCycle: 2})
		scan := 0.0
		last := 0.0
		var lines uint64
		for _, s := range seeds {
			scan += float64(s % 8)
			n := int(s % 4)
			if n == 0 {
				continue
			}
			lines += uint64(n)
			got := b.Fetch(scan, n)
			if got < last {
				return false
			}
			last = got
		}
		return b.Stats().LinesFetched == lines &&
			math.Abs(b.Stats().BusyCycles-float64(lines)*8) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestThroughputBound(t *testing.T) {
	// Saturating workload: 1 line per fragment, one fragment per cycle, on a
	// ratio-1 bus. After N fragments the bus must be ~16N cycles busy: the
	// engine would run 16x slower than its scanner, exactly the paper's
	// "cacheless machine needs ratio 8" arithmetic scaled to 16-texel lines.
	b := NewBus(BusConfig{TexelsPerCycle: 1})
	var ready float64
	const n = 1000
	for i := 0; i < n; i++ {
		ready = b.Fetch(float64(i), 1)
	}
	if ready < 16*n-64 || ready > 16*n+64 {
		t.Errorf("saturated completion = %v, want ≈ %d", ready, 16*n)
	}
}

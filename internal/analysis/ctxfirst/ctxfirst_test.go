package ctxfirst_test

import (
	"testing"

	"repro/internal/analysis/ctxfirst"
	"repro/internal/analysis/framework"
)

func TestCtxFirst(t *testing.T) {
	framework.RunTest(t, ".", ctxfirst.Analyzer, "ctx")
}

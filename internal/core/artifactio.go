// Raster-artifact serialization: a compact little-endian binary format so an
// artifact built once can be stored or shipped to another process (cluster
// peers move precomputed render work instead of redoing it). The format is
// versioned and self-describing enough to reject mismatched streams; it is
// not meant to survive format evolution silently — a version bump is a
// decode error, never a guess.
package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/distrib"
	"repro/internal/geom"
	"repro/internal/raster"
	"repro/internal/texture"
	"repro/internal/trace"
)

// artifactMagic identifies a serialized RasterArtifact stream.
var artifactMagic = [4]byte{'T', 'X', 'R', 'A'}

// artifactVersion is the current format version.
const artifactVersion = 1

// maxArtifactPrealloc caps slice preallocation from decoded counts, so a
// corrupt length prefix costs an error, not memory.
const maxArtifactPrealloc = 1 << 20

// EncodeRasterArtifact writes a to w in the versioned binary format.
func EncodeRasterArtifact(w io.Writer, a *RasterArtifact) error {
	bw := bufio.NewWriter(w)
	e := &artifactEncoder{w: bw}
	e.bytes(artifactMagic[:])
	e.uvarint(artifactVersion)
	e.string(a.Scene)
	e.varint(int64(a.Screen.X0))
	e.varint(int64(a.Screen.Y0))
	e.varint(int64(a.Screen.X1))
	e.varint(int64(a.Screen.Y1))
	e.uvarint(uint64(a.Procs))
	e.uvarint(uint64(a.Dist))
	e.uvarint(uint64(a.TileSize))
	e.uvarint(uint64(len(a.Textures)))
	for _, ts := range a.Textures {
		e.uvarint(uint64(ts.W))
		e.uvarint(uint64(ts.H))
	}
	e.bool(a.HasFootprints)
	e.uvarint(uint64(len(a.Frames)))
	for _, f := range a.Frames {
		e.string(f.Name)
		e.uvarint(uint64(f.Triangles))
		e.uvarint(uint64(len(f.Tris)))
		for i := range f.Tris {
			dests := f.Tris[i].Dests
			e.uvarint(uint64(len(dests)))
			for j := range dests {
				d := &dests[j]
				e.uvarint(uint64(d.Node))
				e.uvarint(uint64(len(d.Work.Segments)))
				for _, sp := range d.Work.Segments {
					e.varint(int64(sp.Y))
					e.varint(int64(sp.X0))
					e.varint(int64(sp.X1))
				}
				e.uvarint(uint64(len(d.Work.Reps)))
				for _, r := range d.Work.Reps {
					e.uvarint(uint64(r))
				}
				e.addrs(d.Work.Addrs)
			}
		}
	}
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// DecodeRasterArtifact reads an artifact encoded by EncodeRasterArtifact.
// The returned artifact is finalized and ready for SetRasterArtifact.
func DecodeRasterArtifact(r io.Reader) (*RasterArtifact, error) {
	d := &artifactDecoder{r: bufio.NewReader(r)}
	var magic [4]byte
	d.bytes(magic[:])
	if d.err == nil && magic != artifactMagic {
		return nil, fmt.Errorf("core: not a raster artifact stream (magic %q)", magic[:])
	}
	if v := d.uvarint(); d.err == nil && v != artifactVersion {
		return nil, fmt.Errorf("core: raster artifact version %d, this build reads %d", v, artifactVersion)
	}
	a := &RasterArtifact{}
	a.Scene = d.string()
	a.Screen = geom.Rect{
		X0: d.int(), Y0: d.int(), X1: d.int(), Y1: d.int(),
	}
	a.Procs = d.count()
	a.Dist = distrib.Kind(d.count())
	a.TileSize = d.count()
	nTex := d.count()
	a.Textures = make([]trace.TexSize, 0, min(nTex, maxArtifactPrealloc))
	for i := 0; i < nTex && d.err == nil; i++ {
		a.Textures = append(a.Textures, trace.TexSize{W: d.count(), H: d.count()})
	}
	a.HasFootprints = d.bool()
	nFrames := d.count()
	a.Frames = make([]*FrameArtifact, 0, min(nFrames, maxArtifactPrealloc))
	for i := 0; i < nFrames && d.err == nil; i++ {
		f := &FrameArtifact{Name: d.string(), Triangles: d.count()}
		nTris := d.count()
		f.Tris = make([]ArtifactTriangle, 0, min(nTris, maxArtifactPrealloc))
		for j := 0; j < nTris && d.err == nil; j++ {
			nDests := d.count()
			tri := ArtifactTriangle{Dests: make([]ArtifactDest, 0, min(nDests, maxArtifactPrealloc))}
			for k := 0; k < nDests && d.err == nil; k++ {
				dest := ArtifactDest{Node: d.count()}
				nSegs := d.count()
				if nSegs > 0 {
					dest.Work.Segments = make([]raster.Span, 0, min(nSegs, maxArtifactPrealloc))
				}
				for s := 0; s < nSegs && d.err == nil; s++ {
					dest.Work.Segments = append(dest.Work.Segments,
						raster.Span{Y: d.int(), X0: d.int(), X1: d.int()})
				}
				nReps := d.count()
				if nReps > 0 {
					dest.Work.Reps = make([]int32, 0, min(nReps, maxArtifactPrealloc))
				}
				for s := 0; s < nReps && d.err == nil; s++ {
					dest.Work.Reps = append(dest.Work.Reps, d.int32())
				}
				dest.Work.Addrs = d.addrs(nReps * 8)
				tri.Dests = append(tri.Dests, dest)
			}
			f.Tris = append(f.Tris, tri)
		}
		a.Frames = append(a.Frames, f)
	}
	if d.err != nil {
		return nil, fmt.Errorf("core: decoding raster artifact: %w", d.err)
	}
	if err := a.validateDecoded(); err != nil {
		return nil, err
	}
	a.finalize()
	return a, nil
}

// validateDecoded rejects streams whose structure is internally inconsistent,
// so a decoded artifact upholds the same invariants a built one does.
func (a *RasterArtifact) validateDecoded() error {
	if a.Procs <= 0 {
		return fmt.Errorf("core: artifact has %d processors", a.Procs)
	}
	for fi, f := range a.Frames {
		for ti := range f.Tris {
			for _, dest := range f.Tris[ti].Dests {
				if dest.Node < 0 || dest.Node >= a.Procs {
					return fmt.Errorf("core: artifact frame %d triangle %d routes to node %d of %d",
						fi, ti, dest.Node, a.Procs)
				}
				if len(dest.Work.Addrs) != 8*len(dest.Work.Reps) {
					return fmt.Errorf("core: artifact frame %d triangle %d: %d addresses for %d runs",
						fi, ti, len(dest.Work.Addrs), len(dest.Work.Reps))
				}
				if a.HasFootprints {
					frags := 0
					for _, r := range dest.Work.Reps {
						frags += int(r)
					}
					if frags != dest.Work.Frags() {
						return fmt.Errorf("core: artifact frame %d triangle %d: runs cover %d fragments, segments hold %d",
							fi, ti, frags, dest.Work.Frags())
					}
				}
			}
		}
	}
	return nil
}

// artifactEncoder wraps a writer with error-capturing primitives.
type artifactEncoder struct {
	w       *bufio.Writer
	scratch [binary.MaxVarintLen64]byte
	err     error
}

func (e *artifactEncoder) bytes(b []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

func (e *artifactEncoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.scratch[:], v)
	e.bytes(e.scratch[:n])
}

func (e *artifactEncoder) varint(v int64) {
	n := binary.PutVarint(e.scratch[:], v)
	e.bytes(e.scratch[:n])
}

func (e *artifactEncoder) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.bytes([]byte{b})
}

func (e *artifactEncoder) string(s string) {
	e.uvarint(uint64(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

// addrs writes the footprint stream as fixed-width little-endian words — the
// bulk of an artifact's bytes, kept varint-free for speed.
func (e *artifactEncoder) addrs(as []texture.Addr) {
	for _, a := range as {
		binary.LittleEndian.PutUint32(e.scratch[:4], a)
		e.bytes(e.scratch[:4])
	}
}

// artifactDecoder wraps a reader with error-capturing primitives.
type artifactDecoder struct {
	r   *bufio.Reader
	err error
}

func (d *artifactDecoder) bytes(b []byte) {
	if d.err == nil {
		_, d.err = io.ReadFull(d.r, b)
	}
}

func (d *artifactDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	d.err = err
	return v
}

func (d *artifactDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	d.err = err
	return v
}

// count reads a non-negative int-sized length or count.
func (d *artifactDecoder) count() int {
	v := d.uvarint()
	if d.err == nil && v > math.MaxInt32 {
		d.err = fmt.Errorf("count %d out of range", v)
		return 0
	}
	return int(v)
}

// int reads a signed int-sized value.
func (d *artifactDecoder) int() int {
	v := d.varint()
	if d.err == nil && (v > math.MaxInt32 || v < math.MinInt32) {
		d.err = fmt.Errorf("value %d out of range", v)
		return 0
	}
	return int(v)
}

func (d *artifactDecoder) int32() int32 {
	v := d.uvarint()
	if d.err == nil && v > math.MaxInt32 {
		d.err = fmt.Errorf("run length %d out of range", v)
		return 0
	}
	return int32(v)
}

func (d *artifactDecoder) bool() bool {
	var b [1]byte
	d.bytes(b[:])
	return b[0] != 0
}

func (d *artifactDecoder) string() string {
	n := d.count()
	if d.err != nil || n == 0 {
		return ""
	}
	if n > maxArtifactPrealloc {
		d.err = fmt.Errorf("string length %d out of range", n)
		return ""
	}
	b := make([]byte, n)
	d.bytes(b)
	return string(b)
}

func (d *artifactDecoder) addrs(n int) []texture.Addr {
	if d.err != nil || n == 0 {
		return nil
	}
	as := make([]texture.Addr, 0, min(n, maxArtifactPrealloc))
	var b [4]byte
	for i := 0; i < n && d.err == nil; i++ {
		d.bytes(b[:])
		as = append(as, binary.LittleEndian.Uint32(b[:]))
	}
	return as
}

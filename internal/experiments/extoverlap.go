package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/distrib"
	"repro/internal/overlap"
	"repro/internal/scene"
	"repro/internal/stats"
)

// extOverlapWidths are the block widths the overlap validation sweeps.
var extOverlapWidths = []int{4, 8, 16, 32, 64}

// RunExtOverlap validates the Chen et al. analytical overlap model the
// paper leans on for its small-triangle setup argument: per benchmark and
// block width, the measured mean triangle-delivery count (bounding-box
// routing, exactly what the machine's distributor does) against the
// analytical expectation, plus the predicted share of machine work that is
// triangle setup.
func RunExtOverlap(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	scenes, err := buildAllScenes(ctx, opt)
	if err != nil {
		return nil, err
	}
	names := scene.Names()
	const procs = 64

	type cell struct {
		measured float64
		pred     overlap.Prediction
	}
	type key struct {
		scene string
		width int
	}
	cells := make(map[key]cell)
	var jobs []key
	for _, n := range names {
		for _, w := range extOverlapWidths {
			jobs = append(jobs, key{n, w})
		}
	}
	var mu sync.Mutex
	err = forEachParallel(ctx, opt.Parallelism, len(jobs), func(i int) error {
		k := jobs[i]
		s := scenes[k.scene]
		d, err := distrib.NewBlock(s.Screen, procs, k.width)
		if err != nil {
			return err
		}
		_, measured := overlap.MeasureRouted(s, d)
		pred, err := overlap.Predict(s, distrib.BlockKind, procs, k.width, 25)
		if err != nil {
			return err
		}
		mu.Lock()
		cells[k] = cell{measured: measured, pred: pred}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	routedTab := &stats.Table{
		Caption: fmt.Sprintf("%d processors / block: mean processors per triangle — measured (Chen model prediction)", procs),
		Header:  append([]string{"width"}, names...),
	}
	setupTab := &stats.Table{
		Caption: "Predicted setup share of machine work (setup cycles / (setup + pixel cycles))",
		Header:  append([]string{"width"}, names...),
	}
	for _, w := range extOverlapWidths {
		routedRow := []string{fmt.Sprintf("%d", w)}
		setupRow := []string{fmt.Sprintf("%d", w)}
		for _, n := range names {
			c := cells[key{n, w}]
			routedRow = append(routedRow,
				fmt.Sprintf("%s (%s)", stats.F(c.measured, 2), stats.F(c.pred.MeanRouted, 2)))
			setupRow = append(setupRow, stats.Pct(c.pred.SetupFraction))
		}
		routedTab.AddRow(routedRow...)
		setupTab.AddRow(setupRow...)
	}

	return &Report{
		ID:    "ext-overlap",
		Title: "Validation: Chen et al. analytical primitive-overlap model vs measured routing",
		Notes: []string{
			scaleNote(opt),
			"expect: the analytical expectation tracks the measured mean within ~25 %; the setup share explains the Fig. 5/7 collapse at small tiles",
		},
		Table: []*stats.Table{routedTab, setupTab},
	}, nil
}

package scene

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func TestTranslatePreservesTexels(t *testing.T) {
	b, err := ByName("quake", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	s := b.MustBuild()
	shifted := Translate(s, 17, -5)
	if len(shifted.Triangles) != len(s.Triangles) {
		t.Fatal("triangle count changed")
	}
	// For every triangle, the texel coordinate at the (shifted) vertex must
	// equal the original one at the original vertex.
	for i := range s.Triangles {
		orig := s.Triangles[i]
		moved := shifted.Triangles[i]
		for j := range orig.V {
			a := orig.Tex.At(orig.V[j].X, orig.V[j].Y)
			b := moved.Tex.At(moved.V[j].X, moved.V[j].Y)
			if math.Abs(a.X-b.X) > 1e-9 || math.Abs(a.Y-b.Y) > 1e-9 {
				t.Fatalf("triangle %d vertex %d: texel %v moved to %v", i, j, a, b)
			}
		}
	}
	// The original scene must be untouched.
	if s.Triangles[0].V[0] == shifted.Triangles[0].V[0] {
		t.Error("Translate mutated or aliased the input")
	}
}

func TestTranslateZeroIsIdentityGeometry(t *testing.T) {
	b, _ := ByName("blowout775", 0.2)
	s := b.MustBuild()
	z := Translate(s, 0, 0)
	for i := range s.Triangles {
		if z.Triangles[i] != s.Triangles[i] {
			t.Fatalf("zero translation changed triangle %d", i)
		}
	}
}

func TestTranslatedSceneStillMeasures(t *testing.T) {
	b, _ := ByName("massive11255", 0.2)
	s := b.MustBuild()
	base, err := trace.Measure(s)
	if err != nil {
		t.Fatal(err)
	}
	// A small pan keeps nearly all geometry on screen: fragment counts stay
	// within a few percent; unique texels stay close (same texels reread).
	shifted := Translate(s, 8, 4)
	st, err := trace.Measure(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(st.PixelsRendered)-float64(base.PixelsRendered)) >
		0.1*float64(base.PixelsRendered) {
		t.Errorf("pan changed fragments too much: %d vs %d",
			st.PixelsRendered, base.PixelsRendered)
	}
	ratio := float64(st.UniqueTexels) / float64(base.UniqueTexels)
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("pan changed unique texels by %vx", ratio)
	}
}

func TestPanSequence(t *testing.T) {
	b, _ := ByName("blowout775", 0.2)
	s := b.MustBuild()
	frames := PanSequence(s, 4, 10, 0)
	if len(frames) != 4 {
		t.Fatalf("got %d frames", len(frames))
	}
	if frames[0] != s {
		t.Error("frame 0 is not the original scene")
	}
	// Frame i is translated 10*i pixels: spot-check vertex x coordinates.
	for i := 1; i < 4; i++ {
		want := s.Triangles[0].V[0].X + 10*float64(i)
		if got := frames[i].Triangles[0].V[0].X; math.Abs(got-want) > 1e-9 {
			t.Errorf("frame %d x = %v, want %v", i, got, want)
		}
	}
}

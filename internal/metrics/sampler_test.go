package metrics

import (
	"testing"
	"time"
)

// at builds the fake clock the sampler tests drive sampleAt with.
func at(sec int64) time.Time { return time.Unix(sec, 0) }

func TestSamplerRetainsHistory(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("requests_total", "requests")
	g := reg.Gauge("queue_depth", "depth")
	s := NewSampler(reg, 8)

	for i := 1; i <= 3; i++ {
		c.Inc()
		g.Set(float64(10 * i))
		s.sampleAt(at(int64(i)))
	}

	got := s.Query("requests_total", time.Time{})
	if len(got) != 1 {
		t.Fatalf("requests_total has %d series, want 1", len(got))
	}
	pts := got[0].Points
	if len(pts) != 3 {
		t.Fatalf("retained %d points, want 3", len(pts))
	}
	for i, p := range pts {
		if p.T != int64(i+1)*1000 || p.V != float64(i+1) {
			t.Fatalf("point %d = %+v, want t=%dms v=%d (oldest first)", i, p, (i+1)*1000, i+1)
		}
	}
	if g2 := s.Query("queue_depth", time.Time{}); len(g2) != 1 || g2[0].Points[2].V != 30 {
		t.Fatalf("queue_depth = %+v, want last value 30", g2)
	}
}

func TestSamplerRingWrap(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ticks_total", "ticks")
	s := NewSampler(reg, 4)
	if s.Capacity() != 4 {
		t.Fatalf("Capacity = %d, want 4", s.Capacity())
	}

	for i := 1; i <= 10; i++ {
		c.Inc()
		s.sampleAt(at(int64(i)))
	}
	pts := s.Query("ticks_total", time.Time{})[0].Points
	if len(pts) != 4 {
		t.Fatalf("retained %d points, want the ring capacity 4", len(pts))
	}
	// Only the newest 4 samples survive, oldest first.
	for i, p := range pts {
		want := float64(7 + i)
		if p.V != want {
			t.Fatalf("point %d = %+v, want v=%v after wrap", i, p, want)
		}
	}
}

func TestSamplerSinceFilter(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ticks_total", "ticks")
	s := NewSampler(reg, 8)
	for i := 1; i <= 5; i++ {
		c.Inc()
		s.sampleAt(at(int64(i)))
	}
	// since is exclusive: the point at t=3 is dropped, 4 and 5 survive.
	pts := s.Query("ticks_total", at(3))[0].Points
	if len(pts) != 2 || pts[0].V != 4 || pts[1].V != 5 {
		t.Fatalf("since t=3 returned %+v, want points at t=4,5", pts)
	}
	if pts := s.Query("ticks_total", at(99))[0].Points; len(pts) != 0 {
		t.Fatalf("future since returned %d points, want 0", len(pts))
	}
}

func TestSamplerNamesAndHistograms(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total", "b")
	h := reg.Histogram("wait_seconds", "wait", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	s := NewSampler(reg, 4)
	s.sampleAt(at(1))

	names := s.Names()
	want := []string{"b_total", "wait_seconds_count", "wait_seconds_sum"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v (sorted, histograms as _count/_sum)", names, want)
		}
	}
	if pts := s.Query("wait_seconds_count", time.Time{})[0].Points; pts[0].V != 2 {
		t.Fatalf("wait_seconds_count = %+v, want 2 observations", pts)
	}
	if pts := s.Query("wait_seconds_sum", time.Time{})[0].Points; pts[0].V != 5.5 {
		t.Fatalf("wait_seconds_sum = %+v, want 5.5", pts)
	}
}

func TestSamplerLabelledSeries(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("jobs_total", "jobs", "status")
	vec.With("done").Add(3)
	vec.With("failed").Inc()
	s := NewSampler(reg, 4)
	s.sampleAt(at(1))

	got := s.Query("jobs_total", time.Time{})
	if len(got) != 2 {
		t.Fatalf("jobs_total has %d series, want one per label set", len(got))
	}
	// Sorted by label string: done before failed.
	if got[0].Labels >= got[1].Labels {
		t.Fatalf("series not sorted by labels: %q then %q", got[0].Labels, got[1].Labels)
	}
	if got[0].Points[0].V != 3 || got[1].Points[0].V != 1 {
		t.Fatalf("labelled values = %v/%v, want 3/1", got[0].Points[0].V, got[1].Points[0].V)
	}

	if got := s.Query("no_such_series", time.Time{}); len(got) != 0 {
		t.Fatalf("unknown name returned %d series, want 0", len(got))
	}
}

func TestGaugeVec(t *testing.T) {
	reg := NewRegistry()
	vec := reg.GaugeVec("build_info", "build metadata", "version", "commit", "go")
	vec.With("v1", "abc", "go1.22").Set(1)

	samples := reg.Snapshot()
	found := false
	for _, sm := range samples {
		if sm.Name == "build_info" {
			found = true
			if sm.Value != 1 {
				t.Fatalf("build_info = %v, want 1", sm.Value)
			}
			if sm.Labels == "" {
				t.Fatal("build_info sample missing its labels")
			}
		}
	}
	if !found {
		t.Fatal("build_info not in Snapshot()")
	}

	// Same label values return the same child gauge.
	vec.With("v1", "abc", "go1.22").Set(1)
	if n := len(reg.Snapshot()); n != len(samples) {
		t.Fatalf("re-With created a new child: %d samples, want %d", n, len(samples))
	}
}

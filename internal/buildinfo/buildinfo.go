// Package buildinfo reads the binary's own build metadata from the Go
// build-info section — module version, VCS revision, toolchain — for the
// texsimd_build_info gauge and the -version flags. No linker flags needed:
// the data is what `go build` already embeds.
package buildinfo

import (
	"runtime"
	"runtime/debug"
)

// Info is the build metadata exposed on metrics and -version output.
type Info struct {
	// Version is the main module's version ("(devel)" for a plain
	// working-tree build, a semver tag for a released module build).
	Version string
	// Commit is the VCS revision the binary was built from, truncated to
	// 12 hex digits, with a "-dirty" suffix for modified working trees;
	// "unknown" when the build carried no VCS stamp (e.g. go test binaries).
	Commit string
	// Go is the toolchain version that built the binary.
	Go string
}

// Read returns the running binary's build metadata. Every field is always
// non-empty.
func Read() Info {
	info := Info{Version: "unknown", Commit: "unknown", Go: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		info.Go = bi.GoVersion
	}
	var revision string
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if revision != "" {
		if len(revision) > 12 {
			revision = revision[:12]
		}
		if dirty {
			revision += "-dirty"
		}
		info.Commit = revision
	}
	return info
}

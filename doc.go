// Package repro reproduces "The Best Distribution for a Parallel OpenGL 3D
// Engine with Texture Caches" (Vartanian, Béchennec, Drach-Temam — HPCA
// 2000): a cycle-level simulation study of sort-middle parallel texture
// mapping with per-node texture caches, comparing square-block and
// scan-line-interleaved screen distributions.
//
// The public API lives in repro/texsim; the experiment harness regenerating
// every table and figure is repro/internal/experiments, driven by
// cmd/texbench. See README.md for the layout and EXPERIMENTS.md for
// paper-vs-measured results. The benchmarks in bench_test.go regenerate one
// table or figure each.
package repro

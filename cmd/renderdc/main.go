// Command renderdc renders a scene's depth-complexity map (the per-pixel
// overdraw the paper's Figure 9 images visualize) to a PGM file, bright
// where overdraw is high.
//
// Usage:
//
//	renderdc -scene room3 -scale 0.5 -o room3.pgm
//	renderdc -trace frame.trace -o frame.pgm
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/texsim"
)

func main() {
	var (
		sceneName = flag.String("scene", "", "paper benchmark to render")
		tracePath = flag.String("trace", "", "trace file to render")
		scale     = flag.Float64("scale", 1.0, "benchmark resolution scale")
		out       = flag.String("o", "", "output PGM file (required)")
	)
	flag.Parse()
	if *out == "" || (*sceneName == "") == (*tracePath == "") {
		fmt.Fprintln(os.Stderr, "renderdc: pass exactly one of -scene/-trace, and -o out.pgm")
		os.Exit(2)
	}

	var (
		sc  *texsim.Scene
		err error
	)
	if *sceneName != "" {
		var b texsim.BenchmarkInfo
		b, err = texsim.LookupBenchmark(*sceneName, *scale)
		if err == nil {
			sc, err = b.Build()
		}
	} else {
		var f *os.File
		f, err = os.Open(*tracePath)
		if err == nil {
			sc, err = texsim.ReadTrace(f)
			f.Close()
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "renderdc: %v\n", err)
		os.Exit(1)
	}

	if err := experiments.WriteDepthPGM(*out, sc); err != nil {
		fmt.Fprintf(os.Stderr, "renderdc: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%dx%d)\n", *out, sc.Screen.Width(), sc.Screen.Height())
}

// The raster artifact: the frame path's geometry half — rasterization,
// span demultiplexing and per-fragment texel address generation — as a
// first-class, reusable value. Those stages depend only on (scene,
// resolution, distribution); the cache model, bus bandwidth and buffer depth
// they feed do not change a single span or address. A RasterArtifact is
// built once per (scene, resolution, distribution) and replayed into any
// number of machine configurations, which is what makes dense cache-axis
// sweeps cheap (internal/sweep's planner) and, being serializable
// (artifactio.go), lets cluster peers ship the geometry work instead of
// redoing it.
//
// Equivalence contract: a machine with an artifact attached produces
// byte-identical results (cycles, counters, cache statistics, FIFO peaks) to
// the same machine rasterizing from scratch, on both kernels. The builder
// runs the exact demultiplexing code path of the distributor and the exact
// u/v stepping of engine.ProcessTriangle, and the replay side
// (engine.ProcessPrecomputed) replicates the engine's floating-point
// operation order verbatim.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"repro/internal/distrib"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/par"
	"repro/internal/raster"
	"repro/internal/sim"
	"repro/internal/texture"
	"repro/internal/trace"
)

// RasterArtifact is the reusable output of rasterizing a frame sequence on
// one (scene, resolution, distribution): per frame, the routed triangles in
// submission order, each carrying its per-node owned segments and
// run-length-encoded trilinear footprint streams. Build it with
// BuildRasterArtifact, attach it with Machine.SetRasterArtifact, and ship it
// with Encode/DecodeRasterArtifact.
type RasterArtifact struct {
	// Scene is the name of the scene (frame 0) the artifact was built from.
	Scene string
	// Screen is the rendered screen rectangle — the resolution.
	Screen geom.Rect
	// Procs, Dist and TileSize identify the distribution the spans were
	// demultiplexed for; an artifact replays only on machines that match.
	Procs    int
	Dist     distrib.Kind
	TileSize int
	// Textures is the texture table of every frame (frames of a sequence
	// must share it, as Machine.RunSequenceContext requires).
	Textures []trace.TexSize
	// HasFootprints reports whether texel address streams were generated.
	// A spans-only artifact (ArtifactOpts.SpansOnly) replays only on
	// pure-scan machines: perfect cache on an infinite bus.
	HasFootprints bool
	// Frames holds one entry per frame, in sequence order.
	Frames []*FrameArtifact
}

// FrameArtifact is one frame's routed triangles.
type FrameArtifact struct {
	// Name is the source frame's scene name.
	Name string
	// Triangles is the source frame's triangle count, including off-screen
	// triangles that routed nowhere (absent from Tris).
	Triangles int
	// Tris holds the routed triangles in submission order.
	Tris []ArtifactTriangle
	// counts is each node's routed triangle count — its FIFO occupancy at
	// time zero in the event kernel. Derived by finalize.
	counts []int
	// perNode indexes each node's work in submission order. Derived by
	// finalize; shared replays only read it.
	perNode [][]*ArtifactDest
}

// ArtifactTriangle is one routed triangle: its destinations in route order.
type ArtifactTriangle struct {
	Dests []ArtifactDest
}

// ArtifactDest is one triangle's contribution to one node.
type ArtifactDest struct {
	Node int
	Work engine.PrecomputedWork
}

// Counts returns each node's routed triangle count for frame fi.
func (a *RasterArtifact) Counts(fi int) []int { return a.Frames[fi].counts }

// finalize derives every frame's per-node index and counts. Called by the
// builder and the decoder; the derived state is read-only afterwards, so a
// finalized artifact is safe for concurrent replays.
func (a *RasterArtifact) finalize() {
	for _, f := range a.Frames {
		f.counts = make([]int, a.Procs)
		f.perNode = make([][]*ArtifactDest, a.Procs)
		for i := range f.Tris {
			for j := range f.Tris[i].Dests {
				f.counts[f.Tris[i].Dests[j].Node]++
			}
		}
		for p := range f.perNode {
			f.perNode[p] = make([]*ArtifactDest, 0, f.counts[p])
		}
		for i := range f.Tris {
			for j := range f.Tris[i].Dests {
				d := &f.Tris[i].Dests[j]
				f.perNode[d.Node] = append(f.perNode[d.Node], d)
			}
		}
	}
}

// ArtifactOpts tunes how BuildRasterArtifact works, never what it produces:
// the artifact contents are byte-identical at every setting (SpansOnly only
// omits the footprint streams, it does not change the spans).
type ArtifactOpts struct {
	// Workers bounds the build's parallelism (<=0 = GOMAXPROCS).
	Workers int
	// SpansOnly skips the texel address streams. The artifact then replays
	// only on pure-scan machines (perfect cache, infinite bus), which never
	// consult addresses; building it is several times cheaper.
	SpansOnly bool
}

// BuildRasterArtifact rasterizes a frame sequence once for the given
// distribution and returns the replayable artifact. The frames must satisfy
// the same constraints Machine.RunSequenceContext enforces (shared texture
// table) and additionally share one screen rectangle. tileSize 0 means the
// Config default (16).
func BuildRasterArtifact(ctx context.Context, frames []*trace.Scene, procs int, kind distrib.Kind, tileSize int, opts ArtifactOpts) (*RasterArtifact, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("core: artifact needs at least one frame")
	}
	if tileSize == 0 {
		tileSize = 16
	}
	first := frames[0]
	for i, f := range frames {
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("core: frame %d: %w", i, err)
		}
		if f.Screen != first.Screen {
			return nil, fmt.Errorf("core: frame %d screen %v differs from frame 0's %v",
				i, f.Screen, first.Screen)
		}
		if len(f.Textures) != len(first.Textures) {
			return nil, fmt.Errorf("core: frame %d has %d textures, frame 0 has %d",
				i, len(f.Textures), len(first.Textures))
		}
		for j, ts := range f.Textures {
			if ts != first.Textures[j] {
				return nil, fmt.Errorf("core: frame %d texture %d is %v, frame 0 has %v",
					i, j, ts, first.Textures[j])
			}
		}
	}
	d, err := distrib.New(kind, first.Screen, procs, tileSize)
	if err != nil {
		return nil, err
	}
	mgr, err := first.BuildTextures()
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	a := &RasterArtifact{
		Scene:         first.Name,
		Screen:        first.Screen,
		Procs:         procs,
		Dist:          kind,
		TileSize:      tileSize,
		Textures:      append([]trace.TexSize(nil), first.Textures...),
		HasFootprints: !opts.SpansOnly,
	}
	rast := raster.New(first.Screen)
	for _, f := range frames {
		fa, err := buildFrameArtifact(ctx, f, d, rast, mgr, workers, !opts.SpansOnly)
		if err != nil {
			return nil, err
		}
		a.Frames = append(a.Frames, fa)
	}
	a.finalize()
	return a, nil
}

// buildFrameArtifact rasterizes one frame across worker goroutines. Each
// chunk writes a disjoint index range of the triangle slice, so the routed
// order — and every span and address — is independent of scheduling.
func buildFrameArtifact(ctx context.Context, f *trace.Scene, d distrib.Distribution, rast *raster.Rasterizer, mgr *texture.Manager, workers int, footprints bool) (*FrameArtifact, error) {
	fa := &FrameArtifact{Name: f.Name, Triangles: len(f.Triangles)}
	if len(f.Triangles) == 0 {
		return fa, nil
	}
	if workers > len(f.Triangles) {
		workers = len(f.Triangles)
	}
	nChunks := workers * 4
	if nChunks > len(f.Triangles) {
		nChunks = len(f.Triangles)
	}
	procs := d.NumProcs()
	all := make([]ArtifactTriangle, len(f.Triangles))
	err := par.ForEach(ctx, workers, nChunks, func(c int) error {
		w := artifactScratch{
			route: make([]int, 0, procs),
			spans: make([][]raster.Span, procs),
		}
		lo, hi := c*len(f.Triangles)/nChunks, (c+1)*len(f.Triangles)/nChunks
		for i := lo; i < hi; i++ {
			if (i-lo)%ctxPollTriangles == 0 && i > lo {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			all[i] = buildTriangle(&w, d, rast, mgr, f, i, footprints)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Compact away triangles that routed nowhere (off-screen), preserving
	// submission order — the distributor skips them without any timing
	// effect, so the replay never needs to see them.
	routed := 0
	for i := range all {
		if len(all[i].Dests) > 0 {
			routed++
		}
	}
	fa.Tris = make([]ArtifactTriangle, 0, routed)
	for i := range all {
		if len(all[i].Dests) > 0 {
			fa.Tris = append(fa.Tris, all[i])
		}
	}
	return fa, nil
}

// artifactScratch is one build worker's reusable demux buffers.
type artifactScratch struct {
	route   []int
	spanBuf []raster.Span
	spans   [][]raster.Span
}

// buildTriangle rasterizes triangle i once, demultiplexes its spans per
// owning node — the same code path as the distributor and the parallel
// kernel, so spans are identical — and, when footprints is set, generates
// each destination's texel address stream with the exact per-span u/v
// stepping of engine.ProcessTriangle.
func buildTriangle(w *artifactScratch, d distrib.Distribution, rast *raster.Rasterizer, mgr *texture.Manager, f *trace.Scene, i int, footprints bool) ArtifactTriangle {
	t := &f.Triangles[i]
	tex := mgr.Texture(t.TexID)
	lod := t.Tex.LOD()

	dests := d.Route(t.BBox(), w.route[:0])
	for _, p := range dests {
		w.spans[p] = w.spans[p][:0]
	}
	w.spanBuf = rast.AppendSpans(*t, f.Screen, w.spanBuf[:0])
	for _, sp := range w.spanBuf {
		d.ForEachOwnedSegment(sp.Y, sp.X0, sp.X1, func(proc, x0, x1 int) {
			w.spans[proc] = append(w.spans[proc], raster.Span{Y: sp.Y, X0: x0, X1: x1})
		})
	}
	total := 0
	for _, p := range dests {
		total += len(w.spans[p])
	}
	var backing []raster.Span
	if total > 0 {
		backing = make([]raster.Span, 0, total)
	}
	out := ArtifactTriangle{Dests: make([]ArtifactDest, 0, len(dests))}
	for _, p := range dests {
		segs := w.spans[p]
		var owned []raster.Span
		if len(segs) > 0 {
			start := len(backing)
			backing = append(backing, segs...)
			owned = backing[start:len(backing):len(backing)]
		}
		work := engine.PrecomputedWork{Segments: owned}
		if footprints && len(owned) > 0 {
			buildFootprints(tex, t.Tex, lod, owned, &work)
		}
		out.Dests = append(out.Dests, ArtifactDest{Node: p, Work: work})
	}
	w.route = dests[:0]
	return out
}

// buildFootprints generates the run-length-encoded footprint stream for one
// destination's segments. The u/v arithmetic — recomputed at each span
// start, stepped per pixel — mirrors engine.ProcessTriangle exactly, so the
// addresses are the ones the engine would have generated.
func buildFootprints(tex *texture.Texture, tm geom.TexMap, lod float64, segs []raster.Span, work *engine.PrecomputedWork) {
	var foot, prev [8]texture.Addr
	have := false
	for _, sp := range segs {
		yc := float64(sp.Y) + 0.5
		xc := float64(sp.X0) + 0.5
		u := tm.U0 + tm.DuDx*xc + tm.DuDy*yc
		v := tm.V0 + tm.DvDx*xc + tm.DvDy*yc
		for x := sp.X0; x < sp.X1; x++ {
			tex.TrilinearFootprint(u, v, lod, &foot)
			if have && foot == prev && work.Reps[len(work.Reps)-1] < math.MaxInt32 {
				work.Reps[len(work.Reps)-1]++
			} else {
				work.Addrs = append(work.Addrs, foot[:]...)
				work.Reps = append(work.Reps, 1)
				prev = foot
				have = true
			}
			u += tm.DuDx
			v += tm.DvDx
		}
	}
}

// SetRasterArtifact attaches a prebuilt raster artifact: subsequent runs
// replay it instead of rasterizing, with byte-identical results. The
// artifact must match the machine's scene, screen and distribution; a
// spans-only artifact additionally requires a pure-scan machine (perfect
// cache, infinite bus). The caller must run the machine on the frames the
// artifact was built from — identity is sanity-checked per run by name,
// screen and triangle count. Pass nil to detach.
func (m *Machine) SetRasterArtifact(a *RasterArtifact) error {
	if a == nil {
		m.artifact = nil
		return nil
	}
	if a.Procs != m.cfg.Procs || a.Dist != m.cfg.Distribution || a.TileSize != m.cfg.TileSize {
		return fmt.Errorf("core: artifact is for %s%d/p%d, machine is %s",
			a.Dist, a.TileSize, a.Procs, m.cfg.Name())
	}
	if a.Screen != m.scene.Screen {
		return fmt.Errorf("core: artifact screen %v, machine screen %v", a.Screen, m.scene.Screen)
	}
	if len(a.Textures) != len(m.scene.Textures) {
		return fmt.Errorf("core: artifact has %d textures, machine %d",
			len(a.Textures), len(m.scene.Textures))
	}
	for i, ts := range a.Textures {
		if ts != m.scene.Textures[i] {
			return fmt.Errorf("core: artifact texture %d is %v, machine has %v",
				i, ts, m.scene.Textures[i])
		}
	}
	if !a.HasFootprints && !m.engines[0].PureScan() {
		return fmt.Errorf("core: spans-only artifact cannot replay on a %s-cache machine (footprint streams required)",
			m.cfg.CacheKind)
	}
	m.artifact = a
	return nil
}

// checkArtifactFrames sanity-checks that the run's frames line up with the
// attached artifact.
func (m *Machine) checkArtifactFrames(frames []*trace.Scene) error {
	a := m.artifact
	if len(frames) != len(a.Frames) {
		return fmt.Errorf("core: run has %d frames, artifact %d", len(frames), len(a.Frames))
	}
	for i, f := range frames {
		if f.Name != a.Frames[i].Name || len(f.Triangles) != a.Frames[i].Triangles {
			return fmt.Errorf("core: frame %d is %q (%d triangles), artifact was built from %q (%d)",
				i, f.Name, len(f.Triangles), a.Frames[i].Name, a.Frames[i].Triangles)
		}
		if f.Screen != a.Screen {
			return fmt.Errorf("core: frame %d screen %v, artifact screen %v", i, f.Screen, a.Screen)
		}
	}
	return nil
}

// runFrameArtifact replays one frame from the attached artifact, through the
// parallel kernel when the kernel-equivalence preconditions hold and the
// coupled event kernel otherwise — the same results as rasterizing from
// scratch. Unlike runFrame's dispatch, the worker count does not gate the
// choice: the preconditions (default-or-larger triangle buffer, no flight
// recorder, every per-node FIFO count fits) are what make the two kernels
// byte-identical, and with the routing pre-pass already in the artifact the
// decoupled replay is cheaper than the event kernel even on one worker.
func (m *Machine) runFrameArtifact(ctx context.Context, fa *FrameArtifact) error {
	if m.cfg.TriangleBuffer >= DefaultTriangleBuffer && m.flight == nil {
		fits := true
		for _, n := range fa.counts {
			if n > m.cfg.TriangleBuffer {
				fits = false
				break
			}
		}
		if fits {
			return m.replayParallel(ctx, fa)
		}
	}
	return m.replayEvents(ctx, fa)
}

// replayParallel is the parallel kernel over artifact work: every node
// pipeline simulates independently with the event kernel's exact arrival
// arithmetic. The routing pre-pass and demux phases are already in the
// artifact, so this is phase 2 of runFrameParallel alone.
func (m *Machine) replayParallel(ctx context.Context, fa *FrameArtifact) error {
	procs := m.cfg.Procs
	workers := m.nodeParallelism()
	if workers > procs {
		workers = procs
	}
	err := par.ForEach(ctx, workers, procs, func(p int) error {
		e := m.engines[p]
		arrival := 0.0
		for k, d := range fa.perNode[p] {
			if k%ctxPollTriangles == 0 && k > 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			done := e.ProcessPrecomputed(arrival, &d.Work)
			arrival = float64(sim.Time(math.Ceil(done)))
		}
		return nil
	})
	if err != nil {
		return err
	}
	m.lastFIFOPeaks = append(m.lastFIFOPeaks[:0], fa.counts...)
	m.parallelFrames++
	return nil
}

// replayEvents is the coupled event kernel over artifact work: the same
// FIFO machinery, back-pressure and deadlock check as runFrameEvents, with
// the distributor's rasterization replaced by the artifact's triangle list.
func (m *Machine) replayEvents(ctx context.Context, fa *FrameArtifact) error {
	s := sim.New()
	d := &artifactDistributor{sim: s, fa: fa}
	for i := 0; i < m.cfg.Procs; i++ {
		d.fifos = append(d.fifos, sim.NewFIFO[*engine.PrecomputedWork](s, m.cfg.TriangleBuffer))
	}
	s.At(0, d.step)
	for i := 0; i < m.cfg.Procs; i++ {
		n := &artifactNode{sim: s, engine: m.engines[i], fifo: d.fifos[i]}
		s.At(0, n.step)
	}
	if err := runSim(ctx, s); err != nil {
		return err
	}
	if !d.done || d.next != len(fa.Tris) {
		panic(fmt.Sprintf("core: artifact replay deadlock: distributed %d of %d triangles",
			d.next, len(fa.Tris)))
	}
	m.lastFIFOPeaks = m.lastFIFOPeaks[:0]
	for _, fifo := range d.fifos {
		m.lastFIFOPeaks = append(m.lastFIFOPeaks, fifo.Peak)
	}
	return nil
}

// artifactDistributor feeds artifact triangles in submission order to the
// routed nodes' FIFOs, blocking while any destination FIFO is full —
// distributor.step without the rasterization.
type artifactDistributor struct {
	sim   *sim.Simulator
	fa    *FrameArtifact
	fifos []*sim.FIFO[*engine.PrecomputedWork]

	next    int
	pending []*ArtifactDest
	done    bool
}

func (d *artifactDistributor) step(now sim.Time) {
	for {
		if len(d.pending) == 0 {
			if d.next == len(d.fa.Tris) {
				d.done = true
				return
			}
			tri := &d.fa.Tris[d.next]
			d.next++
			d.pending = d.pending[:0]
			for j := range tri.Dests {
				d.pending = append(d.pending, &tri.Dests[j])
			}
		}
		for len(d.pending) > 0 {
			dst := d.pending[0]
			if !d.fifos[dst.Node].TryPush(&dst.Work) {
				d.fifos[dst.Node].WaitSpace(d.step)
				return
			}
			d.pending = d.pending[1:]
		}
	}
}

// artifactNode is one node's consumer loop over precomputed work.
type artifactNode struct {
	sim    *sim.Simulator
	engine *engine.Engine
	fifo   *sim.FIFO[*engine.PrecomputedWork]
}

func (n *artifactNode) step(now sim.Time) {
	w, ok := n.fifo.TryPop()
	if !ok {
		n.fifo.WaitItem(n.step)
		return
	}
	done := n.engine.ProcessPrecomputed(float64(now), w)
	n.sim.At(sim.Time(math.Ceil(done)), n.step)
}

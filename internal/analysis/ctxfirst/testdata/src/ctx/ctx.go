// Package ctxpkg exercises the ctxfirst analyzer: contexts must come
// first, must be used, and library code must not mint roots.
package ctxpkg

import "context"

func work(ctx context.Context, n int) error {
	if n < 0 {
		return nil
	}
	<-ctx.Done()
	return ctx.Err()
}

func goodFirst(ctx context.Context, n int) error {
	return work(ctx, n)
}

func badOrder(n int, ctx context.Context) error { // want `context.Context must be the first parameter of badOrder`
	return work(ctx, n)
}

func mintsRoot(n int) error {
	return work(context.Background(), n) // want `context.Background in library code`
}

func mintsTODO(n int) error {
	return work(context.TODO(), n) // want `context.TODO in library code`
}

func dropsCtx(ctx context.Context, n int) int { // want `context parameter ctx is never used`
	return n * 2
}

func declaredUnused(_ context.Context, n int) int {
	return n * 2
}

func suppressedRoot(n int) error {
	return work(context.Background(), n) //texlint:ignore ctxfirst deliberate compatibility shim
}

type runner struct{}

// methods get the same treatment; the receiver does not count as a
// parameter.
func (runner) Run(ctx context.Context, n int) error {
	return work(ctx, n)
}

func (runner) Bad(n int, ctx context.Context) error { // want `context.Context must be the first parameter of Bad`
	return work(ctx, n)
}

package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/scene"
	"repro/internal/stats"
)

// extInterleaveWidths are the block widths the interleave ablation sweeps.
var extInterleaveWidths = []int{16, 32, 64}

// RunExtInterleave ablates a design choice the paper fixes silently: *which*
// static interleave assigns tiles to processors. The paper's row-major
// round-robin aliases badly when the tile-row length divides evenly by the
// processor count (a vertical feature lands on one processor); a skewed
// interleave rotates each tile row by one processor. The experiment compares
// pixel-work imbalance of the two patterns at 64 processors.
func RunExtInterleave(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	scenes, err := buildAllScenes(ctx, opt)
	if err != nil {
		return nil, err
	}
	names := scene.Names()
	const procs = 64

	type key struct {
		scene string
		kind  distrib.Kind
		width int
	}
	cells := make(map[key]float64)
	var jobs []key
	for _, n := range names {
		for _, w := range extInterleaveWidths {
			jobs = append(jobs, key{n, distrib.BlockKind, w},
				key{n, distrib.BlockSkewedKind, w})
		}
	}
	var mu sync.Mutex
	err = forEachParallel(ctx, opt.Parallelism, len(jobs), func(i int) error {
		k := jobs[i]
		res, err := simulate(ctx, scenes[k.scene], core.Config{
			Procs: procs, Distribution: k.kind, TileSize: k.width,
			CacheKind: core.CachePerfect,
		})
		if err != nil {
			return err
		}
		mu.Lock()
		cells[k] = res.PixelImbalance()
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	tab := &stats.Table{
		Caption: fmt.Sprintf("%d processors, perfect cache: pixel imbalance, row-major vs skewed block interleave", procs),
		Header:  []string{"scene"},
	}
	for _, w := range extInterleaveWidths {
		tab.Header = append(tab.Header,
			fmt.Sprintf("w%d plain", w), fmt.Sprintf("w%d skewed", w))
	}
	for _, n := range names {
		row := []string{n}
		for _, w := range extInterleaveWidths {
			row = append(row,
				stats.Pct(cells[key{n, distrib.BlockKind, w}]),
				stats.Pct(cells[key{n, distrib.BlockSkewedKind, w}]))
		}
		tab.AddRow(row...)
	}

	return &Report{
		ID:    "ext-interleave",
		Title: "Ablation: tile-to-processor interleave pattern",
		Notes: []string{
			scaleNote(opt),
			"expect: similar imbalance on the organic benchmarks (their hot spots are compact, not axis-aligned); the skew's worst-case protection shows on synthetic vertical features (see TestSkewedBreaksColumnAliasing)",
		},
		Table: []*stats.Table{tab},
	}, nil
}

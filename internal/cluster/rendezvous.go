package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Rendezvous (highest-random-weight) hashing maps every result-cache key
// to exactly one alive member, with the property the cluster needs for
// cache federation: when a member dies, only the keys it owned move, and
// they move deterministically to the same new owner on every node that
// shares the alive set. Unlike a ring, there is no token state to agree
// on — the owner is a pure function of (key, member set).

// rendezvousScore is the weight of member for key: the first 8 bytes of
// sha256(key NUL member), big-endian. The NUL separator keeps
// ("ab","c") and ("a","bc") from colliding.
func rendezvousScore(key, member string) uint64 {
	h := sha256.New()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(member))
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}

// OwnerOf returns the member with the highest rendezvous score for key
// (ties break toward the lexicographically smaller address, though with a
// 64-bit score they are effectively unreachable). Empty members returns "".
func OwnerOf(key string, members []string) string {
	var (
		best      string
		bestScore uint64
		found     bool
	)
	for _, m := range members {
		s := rendezvousScore(key, m)
		if !found || s > bestScore || (s == bestScore && m < best) {
			best, bestScore, found = m, s, true
		}
	}
	return best
}

// Owner maps key to its owning member among the currently alive set and
// reports whether that member is this node. With no peers (or all peers
// down) the owner is always self.
func (c *Cluster) Owner(key string) (addr string, self bool) {
	alive := c.Alive()
	owner := OwnerOf(key, alive)
	return owner, owner == c.Self()
}

// Ownership samples n synthetic keys (default 256 when n <= 0) against
// the alive set and returns each member's share — the "ownership ranges"
// view of the /cluster document. Shares sum to 1 when any member is alive.
func (c *Cluster) Ownership(n int) map[string]float64 {
	if n <= 0 {
		n = 256
	}
	alive := c.Alive()
	out := make(map[string]float64, len(alive))
	if len(alive) == 0 {
		return out
	}
	for i := 0; i < n; i++ {
		out[OwnerOf(fmt.Sprintf("probe-%d", i), alive)]++
	}
	for a := range out {
		out[a] /= float64(n)
	}
	return out
}

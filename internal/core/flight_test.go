package core

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry/flight"
)

var updateFlightGolden = flag.Bool("update", false, "rewrite golden files")

// flightMachine builds the 4-node machine used by the flight tests: a small
// deterministic scene in the Fig. 5 configuration (block distribution,
// default tile size) so the recorded timeline shows real load imbalance.
func flightMachine(t *testing.T, interval float64) (*Machine, *flight.Recorder) {
	t.Helper()
	scene := testScene(5, 60, 96)
	m, err := NewMachine(scene, Config{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	return m, m.EnableFlightRecorder(interval)
}

// TestFlightPhaseSumsMatchMachine is the recorder's soundness contract: for
// every node, setup+scan+stall+idle must equal the machine's completion
// time exactly — the flight recording is a lossless decomposition of the
// run, not a sampled approximation.
func TestFlightPhaseSumsMatchMachine(t *testing.T) {
	m, rec := flightMachine(t, 0)
	res := m.Run()
	if res.Cycles <= 0 {
		t.Fatalf("machine ran for %v cycles", res.Cycles)
	}
	for _, s := range rec.Summary() {
		sum := s.SetupCycles + s.ScanCycles + s.StallCycles + s.IdleCycles
		if math.Abs(sum-s.TotalCycles) > 1e-6 {
			t.Errorf("node %d: phases sum to %v, node total is %v", s.Node, sum, s.TotalCycles)
		}
		if math.Abs(s.TotalCycles-res.Cycles) > 1e-6 {
			t.Errorf("node %d: total %v cycles, machine finished at %v (barrier padding missing?)",
				s.Node, s.TotalCycles, res.Cycles)
		}
	}
	// Cross-check against the machine's own counters: recorded stall and
	// busy (scan+stall+setup) must agree with the engines' statistics.
	for i, s := range rec.Summary() {
		n := res.Nodes[i]
		if math.Abs(s.StallCycles-n.StallCycles) > 1e-6 {
			t.Errorf("node %d: recorded stall %v, engine counted %v", i, s.StallCycles, n.StallCycles)
		}
		busy := s.SetupCycles + s.ScanCycles + s.StallCycles
		if math.Abs(busy-n.BusyCycles) > 1e-6 {
			t.Errorf("node %d: recorded busy %v, engine counted %v", i, busy, n.BusyCycles)
		}
	}
}

// TestFlightRecorderReset runs the same machine twice and requires identical
// recordings — the recorder must reset with the engines.
func TestFlightRecorderReset(t *testing.T) {
	m, rec := flightMachine(t, 0)
	m.Run()
	first, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	second, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Error("second run's trace differs from the first: recorder state leaked across runs")
	}
}

// TestFlightTraceGolden locks the Chrome trace-event output for the 4-node
// scene against a golden file. A fixed bucket interval keeps the output
// stable; the golden file loads as-is in Perfetto (ui.perfetto.dev).
func TestFlightTraceGolden(t *testing.T) {
	m, rec := flightMachine(t, 2048)
	m.Run()
	got, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	// Golden or not, the trace must be valid JSON with events.
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 10 {
		t.Fatalf("only %d trace events", len(doc.TraceEvents))
	}

	golden := filepath.Join("testdata", "flight_trace.golden.json")
	if *updateFlightGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("flight trace differs from %s (%d vs %d bytes); run with -update after intentional changes",
			golden, len(got), len(want))
	}
}

// TestFlightDisabledUnchanged guards the zero-cost contract from the results
// side: a machine with the recorder attached must simulate the exact same
// cycle counts as one without.
func TestFlightDisabledUnchanged(t *testing.T) {
	scene := testScene(5, 60, 96)
	plain, err := NewMachine(scene, Config{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	recorded, err := NewMachine(scene, Config{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	recorded.EnableFlightRecorder(0)
	a, b := plain.Run(), recorded.Run()
	if a.Cycles != b.Cycles || a.Fragments != b.Fragments {
		t.Errorf("recorder changed the simulation: %v/%v cycles, %d/%d fragments",
			a.Cycles, b.Cycles, a.Fragments, b.Fragments)
	}
}

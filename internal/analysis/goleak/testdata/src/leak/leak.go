// Package leak exercises the goleak analyzer: goroutines must be tied to a
// lifecycle (ctx.Done, WaitGroup, or channel range).
package leak

import (
	"context"
	"sync"
)

func work() {}

// spinForever never checks any lifecycle signal.
func spinForever() {
	for {
		work()
	}
}

// ctxLoop is a well-behaved cancellable loop.
func ctxLoop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
			work()
		}
	}
}

// helperWithCtx hides the ctx.Done check one call level down.
func helperWithCtx(ctx context.Context) {
	<-ctx.Done()
}

// viaHelper only reaches a lifecycle anchor transitively.
func viaHelper(ctx context.Context) {
	work()
	helperWithCtx(ctx)
}

func bareLit() {
	go func() { // want `goroutine is not tied to a lifecycle`
		for {
			work()
		}
	}()
}

func namedLeak() {
	go spinForever() // want `goroutine is not tied to a lifecycle`
}

func funcValue() {
	fn := spinForever
	go fn() // want `cannot see into`
}

func wgTracked(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

func ctxTracked(ctx context.Context) {
	go ctxLoop(ctx)
}

func transitively(ctx context.Context) {
	go viaHelper(ctx)
}

func channelRange(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// waiter is itself the WaitGroup's consumer: it exits when the group
// drains, which is a lifecycle too (the drain path uses this shape).
func waiter(wg *sync.WaitGroup) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	return done
}

// suppressedLeak shows a justified suppression: the directive absorbs the
// diagnostic, so it is used and not reported as stale.
func suppressedLeak() {
	go spinForever() //texlint:ignore goleak process-lifetime metronome, exits with the binary
}

// The next directive suppresses nothing: the suppression checker flags it.
func staleDirective(ctx context.Context) {
	//texlint:ignore goleak nothing fires below, so this directive is stale // want `unused //texlint:ignore goleak`
	go ctxLoop(ctx)
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/sweep"
)

// bulkSweep is a request big enough (8 points > InteractiveMaxPoints) to
// land on the bulk scheduling band. n varies the spec so submissions get
// distinct cache keys.
func bulkSweep(n int) *Request {
	return &Request{Type: "sweep", Sweep: &sweep.Spec{
		Scene: "truc640", Scale: 0.2, Procs: []int{1, 2, 4, 8},
		Sizes: []int{8, 16}, Cache: "perfect", Buffer: n + 1,
	}}
}

// postJobTenant submits with an X-Tenant header and returns the response.
func postJobTenant(t *testing.T, ts *httptest.Server, req *Request, tenant string) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set(TenantHeader, tenant)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// The queued gauges are exact counters now, not len(queue) samples: with
// the worker pinned, N accepted jobs must show exactly N-1 queued (one
// running), and 0 after everything drains — whatever the submit
// concurrency. The old sampling could drift under concurrent
// submit+dequeue and never correct itself.
func TestQueuedGaugeExactUnderConcurrency(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 64,
		runOverride: func(ctx context.Context, req *Request) ([]byte, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return []byte(`{}`), nil
		},
	})

	const n = 24
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := tinySweep()
			req.Sweep.Buffer = i + 1 // distinct cache keys
			v, code := postJob(t, ts, req)
			if code != http.StatusAccepted {
				t.Errorf("submit %d returned %d", i, code)
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()

	// Exactly one job is running (the pinned worker's); the rest are queued.
	waitFor(t, func() bool {
		return metricValue(t, ts, "texsimd_jobs_queued") == n-1
	}, "queued gauge to reach n-1")
	if got := metricValue(t, ts, `texsimd_tenant_queued{tenant="default"}`); got != n-1 {
		t.Fatalf("tenant queued gauge = %v, want %d", got, n-1)
	}

	close(release)
	for _, id := range ids {
		if id != "" {
			waitDone(t, ts, id)
		}
	}
	if got := metricValue(t, ts, "texsimd_jobs_queued"); got != 0 {
		t.Fatalf("queued gauge = %v after drain, want exactly 0", got)
	}
	if got := metricValue(t, ts, `texsimd_tenant_queued{tenant="default"}`); got != 0 {
		t.Fatalf("tenant queued gauge = %v after drain, want exactly 0", got)
	}
	if got := metricValue(t, ts, `texsimd_tenant_running{tenant="default"}`); got != 0 {
		t.Fatalf("tenant running gauge = %v after drain, want exactly 0", got)
	}
}

// Tenant quota exhaustion answers 429 with the quota_exhausted code and a
// real Retry-After, charges the right rejection counter, and does not
// bleed into other tenants.
func TestTenantQuotaExhaustion(t *testing.T) {
	_, ts := newTestServer(t, Config{
		QueueDepth:  16,
		TenantRate:  0.01, // ~100s per token: no refill within the test
		TenantBurst: 1,
		runOverride: func(ctx context.Context, req *Request) ([]byte, error) {
			return []byte(`{}`), nil
		},
	})

	resp := postJobTenant(t, ts, tinySweep(), "alice")
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first alice submit returned %d", resp.StatusCode)
	}

	req := tinySweep()
	req.Sweep.Buffer = 2
	resp = postJobTenant(t, ts, req, "alice")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second alice submit returned %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive hint", ra)
	}
	body := decodeAPIError(t, resp.Body)
	if body.Code != "quota_exhausted" {
		t.Errorf("429 code = %q, want quota_exhausted", body.Code)
	}
	if body.RetryAfterSeconds < 1 {
		t.Errorf("retry_after_seconds = %d, want >= 1", body.RetryAfterSeconds)
	}

	// An untouched tenant still gets in.
	resp = postJobTenant(t, ts, tinySweep(), "bob")
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bob submit returned %d, want 202", resp.StatusCode)
	}

	if got := metricValue(t, ts, `texsimd_tenant_rejected_total{tenant="alice",reason="quota"}`); got != 1 {
		t.Fatalf("alice quota rejections = %v, want 1", got)
	}
}

// The tenant name must not change the cache key: bob's identical request
// is served from alice's cached result.
func TestTenantExcludedFromCacheKey(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 16})

	resp := postJobTenant(t, ts, tinySweep(), "alice")
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitDone(t, ts, v.ID)

	resp = postJobTenant(t, ts, tinySweep(), "bob")
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	done := waitDone(t, ts, v.ID)
	if !done.FromCache {
		t.Fatal("bob's identical request re-simulated; want cache hit across tenants")
	}
}

// TestMixedTenantFairness pins the scheduling contract under a bulk flood:
// with the single worker pinned and the queue stuffed with one tenant's
// bulk sweeps, later interactive submissions from other tenants must all
// dequeue before any bulk job. CI runs this under -race as the
// mixed-tenant hammer.
func TestMixedTenantFairness(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	var started []string // tenant of each job as a worker picks it up

	_, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 64,
		runOverride: func(ctx context.Context, req *Request) ([]byte, error) {
			if req.Tenant == "pin" {
				select {
				case <-release:
				case <-ctx.Done():
				}
				return []byte(`{}`), nil
			}
			mu.Lock()
			started = append(started, tenantOrDefault(req.Tenant))
			mu.Unlock()
			return []byte(`{}`), nil
		},
	})

	// Pin the worker so everything below queues up behind it.
	resp := postJobTenant(t, ts, tinySweep(), "pin")
	var pin jobView
	if err := json.NewDecoder(resp.Body).Decode(&pin); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitStatus(t, ts, pin.ID, StatusRunning)

	// A concurrent bulk flood...
	const bulk = 16
	var wg sync.WaitGroup
	ids := make(chan string, bulk+4)
	for i := 0; i < bulk; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJobTenant(t, ts, bulkSweep(i), "batch")
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("bulk submit %d returned %d", i, resp.StatusCode)
				return
			}
			var v jobView
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				t.Error(err)
				return
			}
			if v.Class != "bulk" {
				t.Errorf("bulk submission classified %q", v.Class)
			}
			ids <- v.ID
		}(i)
	}
	wg.Wait()

	// ...then interactive jobs arrive LAST, behind the whole bulk backlog.
	for i := 0; i < 4; i++ {
		req := tinySweep()
		req.Sweep.Buffer = 100 + i
		resp := postJobTenant(t, ts, req, fmt.Sprintf("user%d", i))
		var v jobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("interactive submit %d returned %d", i, resp.StatusCode)
		}
		if v.Class != "interactive" {
			t.Fatalf("interactive submission classified %q", v.Class)
		}
		ids <- v.ID
	}
	close(ids)

	close(release)
	for id := range ids {
		waitDone(t, ts, id)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(started) != bulk+4 {
		t.Fatalf("%d jobs executed, want %d", len(started), bulk+4)
	}
	for i, tenant := range started[:4] {
		if tenant == "batch" {
			t.Fatalf("bulk job executed at position %d before the interactive backlog: %v",
				i, started[:5])
		}
	}
}

// A server with CheckpointDir journals accepted jobs; a second server on
// the same directory with Resume picks up the unfinished ones under fresh
// IDs and completes them.
func TestJournalResume(t *testing.T) {
	dir := t.TempDir()
	block := make(chan struct{})
	srvA, err := New(context.Background(), Config{
		Workers:       1,
		QueueDepth:    8,
		CheckpointDir: dir,
		runOverride: func(ctx context.Context, req *Request) ([]byte, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return []byte(`{}`), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(block)
		srvA.Close()
	}()

	// One job runs (still journaled — not terminal), one stays queued.
	for i := 0; i < 2; i++ {
		req := tinySweep()
		req.Sweep.Buffer = i + 1
		req.Tenant = "alice"
		if _, err := srvA.Submit(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(filepath.Join(dir, "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("journal holds %d entries, want 2", len(entries))
	}

	srvB, err := New(context.Background(), Config{
		Workers:       1,
		QueueDepth:    8,
		CheckpointDir: dir,
		Resume:        true,
		runOverride: func(ctx context.Context, req *Request) ([]byte, error) {
			if req.Tenant != "alice" {
				return nil, fmt.Errorf("recovered job lost its tenant: %q", req.Tenant)
			}
			return []byte(`{}`), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	waitFor(t, func() bool {
		jobs := srvB.list()
		if len(jobs) != 2 {
			return false
		}
		for i := range jobs {
			if jobs[i].status != StatusDone {
				return false
			}
		}
		return true
	}, "recovered jobs to finish on the second server")

	// At-most-once: the entries were consumed at recovery.
	entries, err = os.ReadDir(filepath.Join(dir, "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("journal still holds %d entries after recovery", len(entries))
	}
}

// A server without Resume must leave the journal alone (rows checkpoints
// still work), so an operator can opt out of replay without losing the
// entries.
func TestJournalNotReplayedWithoutResume(t *testing.T) {
	dir := t.TempDir()
	block := make(chan struct{})
	srvA, err := New(context.Background(), Config{
		Workers:       1,
		CheckpointDir: dir,
		runOverride: func(ctx context.Context, req *Request) ([]byte, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return []byte(`{}`), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(block)
		srvA.Close()
	}()
	if _, err := srvA.Submit(context.Background(), tinySweep()); err != nil {
		t.Fatal(err)
	}

	srvB, err := New(context.Background(), Config{
		Workers:       1,
		CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	// Give any (buggy) replay a moment to surface, then check nothing ran.
	time.Sleep(50 * time.Millisecond)
	if jobs := srvB.list(); len(jobs) != 0 {
		t.Fatalf("server without Resume recovered %d jobs", len(jobs))
	}
}

// Package distrib implements the static screen distributions the paper
// compares: square-block interleaving and scan-line interleaving (SLI). A
// distribution assigns every screen pixel to exactly one texture-mapping
// processor; assignments are static and "hard-coded in the chip", so tiles
// are interleaved round-robin to spread the depth-complexity hot spots.
package distrib

import (
	"fmt"

	"repro/internal/geom"
)

// Distribution is a static partition of the screen over NumProcs processors.
type Distribution interface {
	// Name identifies the scheme and its size parameter, e.g. "block16".
	Name() string
	// NumProcs returns the processor count.
	NumProcs() int
	// Screen returns the partitioned screen rectangle.
	Screen() geom.Rect
	// Owner returns the processor that draws pixel (x, y), which must lie
	// inside Screen.
	Owner(x, y int) int
	// Route appends to dst the processors owning at least one tile that
	// intersects bbox (the triangle-routing rule: a processor receives a
	// triangle when the triangle's bounding box touches its region, and pays
	// at least the setup cost for it).
	Route(bbox geom.Rect, dst []int) []int
	// ForEachOwnedSegment splits the pixel row segment [x0, x1) on row y into
	// maximal runs with a single owner, calling fn for each in left-to-right
	// order. This is the demultiplexing step between the shared rasterizer
	// and the per-processor scan loops.
	ForEachOwnedSegment(y, x0, x1 int, fn func(proc, x0, x1 int))
}

// Block is the square-block-interleaved distribution: the screen is cut into
// Width×Width tiles assigned round-robin in row-major tile order. The
// optional skew shifts each tile row's assignment by one extra processor,
// which breaks the column aliasing the plain row-major interleave suffers
// when the tile-row length is a multiple of the processor count (a vertical
// feature then lands entirely on one processor).
type Block struct {
	screen    geom.Rect
	width     int
	procs     int
	tilesX    int
	rowStride int
	skewed    bool
}

// NewBlock returns a block distribution of screen over procs processors with
// square tiles of the given width.
func NewBlock(screen geom.Rect, procs, width int) (*Block, error) {
	return newBlock(screen, procs, width, false)
}

// NewBlockSkewed returns a block distribution whose tile rows are offset by
// one processor each (a skewed/rotated interleave).
func NewBlockSkewed(screen geom.Rect, procs, width int) (*Block, error) {
	return newBlock(screen, procs, width, true)
}

func newBlock(screen geom.Rect, procs, width int, skewed bool) (*Block, error) {
	if err := checkArgs(screen, procs); err != nil {
		return nil, err
	}
	if width <= 0 {
		return nil, fmt.Errorf("distrib: block width %d must be positive", width)
	}
	tilesX := (screen.Width() + width - 1) / width
	rowStride := tilesX
	if skewed {
		rowStride = tilesX + 1
	}
	return &Block{screen: screen, width: width, procs: procs,
		tilesX: tilesX, rowStride: rowStride, skewed: skewed}, nil
}

// Name implements Distribution.
func (b *Block) Name() string {
	if b.skewed {
		return fmt.Sprintf("blockskew%d", b.width)
	}
	return fmt.Sprintf("block%d", b.width)
}

// NumProcs implements Distribution.
func (b *Block) NumProcs() int { return b.procs }

// Screen implements Distribution.
func (b *Block) Screen() geom.Rect { return b.screen }

// Width returns the tile width in pixels.
func (b *Block) Width() int { return b.width }

// Owner implements Distribution.
func (b *Block) Owner(x, y int) int {
	tx := (x - b.screen.X0) / b.width
	ty := (y - b.screen.Y0) / b.width
	return (ty*b.rowStride + tx) % b.procs
}

// Route implements Distribution.
func (b *Block) Route(bbox geom.Rect, dst []int) []int {
	r := bbox.Intersect(b.screen)
	if r.Empty() {
		return dst
	}
	tx0 := (r.X0 - b.screen.X0) / b.width
	tx1 := (r.X1 - 1 - b.screen.X0) / b.width
	ty0 := (r.Y0 - b.screen.Y0) / b.width
	ty1 := (r.Y1 - 1 - b.screen.Y0) / b.width
	nTiles := (tx1 - tx0 + 1) * (ty1 - ty0 + 1)
	if nTiles >= b.procs && (tx1-tx0+1) >= b.procs {
		// A full row of ≥procs consecutive tiles covers every processor.
		for p := 0; p < b.procs; p++ {
			dst = append(dst, p)
		}
		return dst
	}
	return routeByTiles(dst, b.procs, tx0, tx1, ty0, ty1, func(tx, ty int) int {
		return (ty*b.rowStride + tx) % b.procs
	})
}

// ForEachOwnedSegment implements Distribution.
func (b *Block) ForEachOwnedSegment(y, x0, x1 int, fn func(proc, x0, x1 int)) {
	ty := (y - b.screen.Y0) / b.width
	rowBase := ty * b.rowStride
	for x := x0; x < x1; {
		tx := (x - b.screen.X0) / b.width
		end := b.screen.X0 + (tx+1)*b.width
		if end > x1 {
			end = x1
		}
		fn((rowBase+tx)%b.procs, x, end)
		x = end
	}
}

// SLI is the scan-line-interleaved distribution: groups of Lines adjacent
// rows assigned round-robin, as in the Voodoo2 (1 line) and 3DLabs JetStream
// (4 lines) products the paper cites.
type SLI struct {
	screen geom.Rect
	lines  int
	procs  int
}

// NewSLI returns an SLI distribution of screen over procs processors with
// groups of the given number of adjacent lines.
func NewSLI(screen geom.Rect, procs, lines int) (*SLI, error) {
	if err := checkArgs(screen, procs); err != nil {
		return nil, err
	}
	if lines <= 0 {
		return nil, fmt.Errorf("distrib: SLI group of %d lines must be positive", lines)
	}
	return &SLI{screen: screen, lines: lines, procs: procs}, nil
}

// Name implements Distribution.
func (s *SLI) Name() string { return fmt.Sprintf("sli%d", s.lines) }

// NumProcs implements Distribution.
func (s *SLI) NumProcs() int { return s.procs }

// Screen implements Distribution.
func (s *SLI) Screen() geom.Rect { return s.screen }

// Lines returns the group height in rows.
func (s *SLI) Lines() int { return s.lines }

// Owner implements Distribution.
func (s *SLI) Owner(x, y int) int {
	return ((y - s.screen.Y0) / s.lines) % s.procs
}

// Route implements Distribution.
func (s *SLI) Route(bbox geom.Rect, dst []int) []int {
	r := bbox.Intersect(s.screen)
	if r.Empty() {
		return dst
	}
	g0 := (r.Y0 - s.screen.Y0) / s.lines
	g1 := (r.Y1 - 1 - s.screen.Y0) / s.lines
	n := g1 - g0 + 1
	if n >= s.procs {
		for p := 0; p < s.procs; p++ {
			dst = append(dst, p)
		}
		return dst
	}
	for g := g0; g <= g1; g++ {
		dst = append(dst, g%s.procs)
	}
	return dst
}

// ForEachOwnedSegment implements Distribution: a row has one owner.
func (s *SLI) ForEachOwnedSegment(y, x0, x1 int, fn func(proc, x0, x1 int)) {
	if x0 < x1 {
		fn(s.Owner(x0, y), x0, x1)
	}
}

func checkArgs(screen geom.Rect, procs int) error {
	if screen.Empty() {
		return fmt.Errorf("distrib: empty screen %v", screen)
	}
	if procs <= 0 {
		return fmt.Errorf("distrib: processor count %d must be positive", procs)
	}
	return nil
}

// routeByTiles enumerates the tile rectangle, deduplicating owners. Used for
// small routings only; the all-processors fast path handles big triangles.
// For the common machine sizes (≤ 64 processors) the dedup set is a stack
// bitmask, keeping triangle routing allocation-free on the hot path.
func routeByTiles(dst []int, procs, tx0, tx1, ty0, ty1 int, owner func(tx, ty int) int) []int {
	if procs <= 64 {
		var seen uint64
		n := 0
		for ty := ty0; ty <= ty1; ty++ {
			for tx := tx0; tx <= tx1; tx++ {
				p := owner(tx, ty)
				if seen&(1<<uint(p)) == 0 {
					seen |= 1 << uint(p)
					dst = append(dst, p)
					n++
					if n == procs {
						return dst
					}
				}
			}
		}
		return dst
	}
	seen := make(map[int]bool, 8)
	for ty := ty0; ty <= ty1; ty++ {
		for tx := tx0; tx <= tx1; tx++ {
			p := owner(tx, ty)
			if !seen[p] {
				seen[p] = true
				dst = append(dst, p)
				if len(seen) == procs {
					return dst
				}
			}
		}
	}
	return dst
}

// Kind selects a distribution family in configuration structs.
type Kind int

const (
	// BlockKind is square-block interleaving; the size parameter is the
	// block width in pixels.
	BlockKind Kind = iota
	// SLIKind is scan-line interleaving; the size parameter is the number of
	// adjacent lines per group.
	SLIKind
	// BlockSkewedKind is square-block interleaving with each tile row's
	// assignment offset by one processor (ablation of the interleave
	// pattern).
	BlockSkewedKind
)

// String returns "block" or "sli".
func (k Kind) String() string {
	switch k {
	case BlockKind:
		return "block"
	case SLIKind:
		return "sli"
	case BlockSkewedKind:
		return "blockskew"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// New builds a distribution of the given kind and size parameter.
func New(kind Kind, screen geom.Rect, procs, size int) (Distribution, error) {
	switch kind {
	case BlockKind:
		return NewBlock(screen, procs, size)
	case SLIKind:
		return NewSLI(screen, procs, size)
	case BlockSkewedKind:
		return NewBlockSkewed(screen, procs, size)
	default:
		return nil, fmt.Errorf("distrib: unknown kind %d", int(kind))
	}
}

package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// tinySpec keeps test sweeps fast: one small scene, four configurations.
var tinySpec = Spec{
	Scene: "truc640",
	Scale: 0.2,
	Procs: []int{1, 4},
	Sizes: []int{8, 16},
	Cache: "perfect",
}

func TestValidate(t *testing.T) {
	bad := []Spec{
		{Scene: "nope"},
		{Scene: "truc640", Dist: "diagonal"},
		{Scene: "truc640", Cache: "huge"},
		{Scene: "truc640", Procs: []int{0}},
		{Scene: "truc640", Sizes: []int{-4}},
		{Scene: "truc640", Bus: -1},
		{Scene: "truc640", Buffer: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
	if err := (Spec{Scene: "truc640"}).Validate(); err != nil {
		t.Errorf("minimal spec rejected: %v", err)
	}
}

func TestRunRowShape(t *testing.T) {
	res, err := Run(context.Background(), tinySpec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	// Deterministic procs-major order.
	wantOrder := [][2]int{{1, 8}, {1, 16}, {4, 8}, {4, 16}}
	for i, r := range res.Rows {
		if r.Procs != wantOrder[i][0] || r.Size != wantOrder[i][1] {
			t.Errorf("row %d = p%d/w%d, want p%d/w%d", i, r.Procs, r.Size,
				wantOrder[i][0], wantOrder[i][1])
		}
		if r.Cycles <= 0 || r.Speedup <= 0 {
			t.Errorf("row %d has non-positive cycles/speedup: %+v", i, r)
		}
	}
	// The 1-processor row against the baseline is speedup 1 by definition.
	if res.Rows[0].Speedup != 1 {
		t.Errorf("1-proc speedup = %v, want 1", res.Rows[0].Speedup)
	}
	if res.SimulatedCycles <= 0 {
		t.Error("SimulatedCycles not accumulated")
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	seq, err := Run(context.Background(), tinySpec, 1)
	if err != nil {
		t.Fatal(err)
	}
	parl, err := Run(context.Background(), tinySpec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Rows, parl.Rows) {
		t.Fatalf("parallel rows diverge:\nseq: %+v\npar: %+v", seq.Rows, parl.Rows)
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, tinySpec, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestWriteCSV(t *testing.T) {
	res, err := Run(context.Background(), tinySpec, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, res.Rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d CSV lines, want header + 4 rows:\n%s", len(lines), buf.String())
	}
	if lines[0] != strings.Join(CSVHeader, ",") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "truc640,block,1,8,") {
		t.Errorf("first row = %q", lines[1])
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	res, err := Run(context.Background(), tinySpec, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows, back.Rows) {
		t.Fatal("rows did not survive the JSON round trip")
	}
	if back.Spec.Scene != "truc640" || back.Spec.Dist != "block" {
		t.Errorf("spec not embedded: %+v", back.Spec)
	}
}

func TestRunOptsNodeParallelism(t *testing.T) {
	cases := []struct {
		opts  RunOpts
		nJobs int
		want  int
	}{
		{RunOpts{}, 20, 0},                                   // sequential: machine default
		{RunOpts{Parallelism: 1}, 20, 0},                     // one worker: machine default
		{RunOpts{Parallelism: 8}, 20, 1},                     // jobs soak the budget
		{RunOpts{Parallelism: 8}, 2, 4},                      // spare budget goes to nodes
		{RunOpts{Parallelism: 16}, 1, 16},                    // one big config gets it all
		{RunOpts{Parallelism: 8, NodeParallelism: 1}, 2, 1},  // explicit force-serial
		{RunOpts{Parallelism: 8, NodeParallelism: 3}, 20, 3}, // explicit bound wins
	}
	for i, c := range cases {
		if got := c.opts.nodeParallelism(c.nJobs); got != c.want {
			t.Errorf("case %d: nodeParallelism(%d) = %d, want %d", i, c.nJobs, got, c.want)
		}
	}
}

func TestRunWithNodeParallelismMatchesRun(t *testing.T) {
	// The node-parallel kernel must not change a single row: RunWith at any
	// NodeParallelism is byte-identical to the sequential Run.
	want, err := Run(context.Background(), tinySpec, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, nodePar := range []int{1, 4} {
		got, err := RunWith(context.Background(), tinySpec,
			RunOpts{Parallelism: 2, NodeParallelism: nodePar})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Rows, got.Rows) {
			t.Errorf("node-par %d: rows differ\nwant %+v\ngot  %+v",
				nodePar, want.Rows, got.Rows)
		}
	}
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sweep"
)

// tinySweep is a fast real simulation: one small scene, two configurations.
func tinySweep() *Request {
	return &Request{Type: "sweep", Sweep: &sweep.Spec{
		Scene: "truc640", Scale: 0.2, Procs: []int{1, 4}, Sizes: []int{16},
		Cache: "perfect",
	}}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	srv, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJob(t *testing.T, ts *httptest.Server, req *Request) (jobView, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// waitDone polls the status endpoint until the job reaches a terminal state.
func waitDone(t *testing.T, ts *httptest.Server, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var v jobView
		if code := getJSON(t, ts.URL+"/api/v1/jobs/"+id, &v); code != http.StatusOK {
			t.Fatalf("status %s returned %d", id, code)
		}
		switch v.Status {
		case StatusDone, StatusFailed, StatusCanceled:
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return jobView{}
}

// metricValue scrapes /metrics and returns the value of the given series.
func metricValue(t *testing.T, ts *httptest.Server, series string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(series) + " (.*)$")
	m := re.FindSubmatch(body)
	if m == nil {
		t.Fatalf("series %q not in /metrics:\n%s", series, body)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestJobLifecycleEndToEnd is the acceptance flow: submit → poll → result →
// resubmit hits the cache, observed through the /metrics counters.
func TestJobLifecycleEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	v, code := postJob(t, ts, tinySweep())
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	if v.ID == "" || v.Type != "sweep" {
		t.Fatalf("bad submit view: %+v", v)
	}

	final := waitDone(t, ts, v.ID)
	if final.Status != StatusDone {
		t.Fatalf("job finished %s (%s)", final.Status, final.Error)
	}
	if final.FromCache {
		t.Fatal("first run claims a cache hit")
	}

	// Result is a full sweep.Result document.
	resp, err := http.Get(ts.URL + final.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	var res sweep.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(res.Rows) != 2 || res.Rows[0].Scene != "truc640" {
		t.Fatalf("unexpected result rows: %+v", res.Rows)
	}

	if hits := metricValue(t, ts, "texsimd_result_cache_hits_total"); hits != 0 {
		t.Fatalf("cache hits = %v before resubmission", hits)
	}

	// Identical resubmission: a new job, served from the result cache.
	v2, code := postJob(t, ts, tinySweep())
	if code != http.StatusAccepted {
		t.Fatalf("resubmit returned %d", code)
	}
	if v2.ID == v.ID {
		t.Fatal("resubmission reused the job ID")
	}
	final2 := waitDone(t, ts, v2.ID)
	if final2.Status != StatusDone || !final2.FromCache {
		t.Fatalf("resubmission not served from cache: %+v", final2)
	}
	if hits := metricValue(t, ts, "texsimd_result_cache_hits_total"); hits != 1 {
		t.Fatalf("cache hits = %v after resubmission, want 1", hits)
	}

	// Byte-identical payloads.
	var res2 sweep.Result
	if code := getJSON(t, ts.URL+final2.ResultURL, &res2); code != http.StatusOK {
		t.Fatalf("cached result returned %d", code)
	}
	if fmt.Sprint(res.Rows) != fmt.Sprint(res2.Rows) {
		t.Fatal("cached rows differ from computed rows")
	}

	// Throughput metrics moved.
	if cyc := metricValue(t, ts, "texsimd_simulated_cycles_total"); cyc <= 0 {
		t.Fatalf("simulated cycles total = %v", cyc)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	bad := []*Request{
		{Type: "sweep"},      // missing spec
		{Type: "experiment"}, // missing spec
		{Type: "mystery"},    // unknown type
		{Type: "sweep", Sweep: &sweep.Spec{Scene: "nope"}},           // unknown scene
		{Type: "experiment", Experiment: &ExperimentSpec{ID: "zzz"}}, // unknown experiment
		{Type: "sweep", Sweep: &sweep.Spec{Scene: "truc640"},
			Experiment: &ExperimentSpec{ID: "table1"}}, // both specs
	}
	for i, req := range bad {
		if _, code := postJob(t, ts, req); code != http.StatusBadRequest {
			t.Errorf("bad request %d returned %d, want 400", i, code)
		}
	}
}

// TestQueueFullReturns429 uses a run override that blocks, so one job
// occupies the worker and the rest fill the queue deterministically.
func TestQueueFullReturns429(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	defer func() { once.Do(func() { close(release) }) }()
	_, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 2,
		runOverride: func(ctx context.Context, req *Request) ([]byte, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return []byte(`{}`), nil
		},
	})

	// Worker grabs the first job; the next two fill the queue. Distinct
	// specs keep the cache out of the picture.
	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		req := tinySweep()
		req.Sweep.Procs = []int{1, 2 + i}
		v, code := postJob(t, ts, req)
		if code != http.StatusAccepted {
			t.Fatalf("job %d returned %d", i, code)
		}
		ids = append(ids, v.ID)
		if i == 0 {
			// Give the worker time to dequeue so the queue is empty again.
			waitStatus(t, ts, v.ID, StatusRunning)
		}
	}

	req := tinySweep()
	req.Sweep.Procs = []int{64}
	_, code := postJob(t, ts, req)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit returned %d, want 429", code)
	}
	if rej := metricValue(t, ts, "texsimd_jobs_rejected_total"); rej != 1 {
		t.Fatalf("rejected counter = %v, want 1", rej)
	}

	// Backpressure clears once the pool drains.
	once.Do(func() { close(release) })
	for _, id := range ids {
		waitDone(t, ts, id)
	}
	if _, code := postJob(t, ts, req); code != http.StatusAccepted {
		t.Fatalf("post-drain submit returned %d, want 202", code)
	}
}

func waitStatus(t *testing.T, ts *httptest.Server, id string, want Status) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var v jobView
		getJSON(t, ts.URL+"/api/v1/jobs/"+id, &v)
		if v.Status == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

// TestConcurrentHammer fires submissions from 32 goroutines against a small
// queue: every response must be either 202 or a clean 429, and every
// accepted job must reach a terminal state.
func TestConcurrentHammer(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:    4,
		QueueDepth: 8,
		runOverride: func(ctx context.Context, req *Request) ([]byte, error) {
			return []byte(`{"rows":[]}`), nil
		},
	})

	const goroutines = 32
	const perG = 8
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		accepted []string
		rejected int
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				req := tinySweep()
				req.Sweep.Procs = []int{1 + g, 1 + i} // vary the cache key
				body, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				var v jobView
				switch resp.StatusCode {
				case http.StatusAccepted:
					json.NewDecoder(resp.Body).Decode(&v)
					mu.Lock()
					accepted = append(accepted, v.ID)
					mu.Unlock()
				case http.StatusTooManyRequests:
					mu.Lock()
					rejected++
					mu.Unlock()
				default:
					t.Errorf("unexpected status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()

	for _, id := range accepted {
		if v := waitDone(t, ts, id); v.Status != StatusDone {
			t.Errorf("job %s finished %s (%s)", id, v.Status, v.Error)
		}
	}
	total := metricValue(t, ts, `texsimd_jobs_submitted_total{type="sweep"}`)
	if int(total) != len(accepted) {
		t.Errorf("submitted counter %v != accepted %d", total, len(accepted))
	}
	if len(accepted)+rejected != goroutines*perG {
		t.Errorf("accepted %d + rejected %d != %d", len(accepted), rejected, goroutines*perG)
	}
}

// TestDrainCompletesRunningJobs is the graceful-shutdown acceptance: after
// Drain begins, running and queued jobs still finish, and new submissions
// are refused with 503.
func TestDrainCompletesRunningJobs(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	srv, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 4,
		runOverride: func(ctx context.Context, req *Request) ([]byte, error) {
			started <- struct{}{}
			select {
			case <-release:
				return []byte(`{"drained":true}`), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})

	running, _ := postJob(t, ts, tinySweep())
	<-started // the worker is now inside the job

	queued := tinySweep()
	queued.Sweep.Procs = []int{1, 2}
	queuedView, code := postJob(t, ts, queued)
	if code != http.StatusAccepted {
		t.Fatalf("queued submit returned %d", code)
	}

	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Drain(context.Background()) }()

	// Draining: new submissions refused, in-flight work keeps going.
	waitFor(t, func() bool {
		_, code := postJob(t, ts, tinySweep())
		return code == http.StatusServiceUnavailable
	}, "503 while draining")

	close(release)
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range []string{running.ID, queuedView.ID} {
		v, _ := srv.snapshot(id)
		if v.status != StatusDone {
			t.Errorf("after drain, job %s is %s (%s)", id, v.status, v.errMsg)
		}
	}
}

// TestDrainTimeoutCancelsJobs: a drain whose context expires cancels the
// running job instead of hanging forever.
func TestDrainTimeoutCancelsJobs(t *testing.T) {
	started := make(chan struct{}, 1)
	srv, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 2,
		runOverride: func(ctx context.Context, req *Request) ([]byte, error) {
			started <- struct{}{}
			<-ctx.Done() // never finishes voluntarily
			return nil, ctx.Err()
		},
	})
	v, _ := postJob(t, ts, tinySweep())
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err == nil {
		t.Fatal("drain reported success despite the stuck job")
	}
	snap, _ := srv.snapshot(v.ID)
	if snap.status != StatusCanceled {
		t.Fatalf("stuck job is %s, want canceled", snap.status)
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{}, 1)
	_, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 2,
		runOverride: func(ctx context.Context, req *Request) ([]byte, error) {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	v, _ := postJob(t, ts, tinySweep())
	<-started

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel returned %d", resp.StatusCode)
	}
	if final := waitDone(t, ts, v.ID); final.Status != StatusCanceled {
		t.Fatalf("job finished %s, want canceled", final.Status)
	}
}

func TestWorkerPanicIsolated(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 2,
		runOverride: func(ctx context.Context, req *Request) ([]byte, error) {
			if req.Sweep.Procs[0] == 13 {
				panic("unlucky")
			}
			return []byte(`{}`), nil
		},
	})
	bad := tinySweep()
	bad.Sweep.Procs = []int{13}
	v, _ := postJob(t, ts, bad)
	if final := waitDone(t, ts, v.ID); final.Status != StatusFailed {
		t.Fatalf("panicking job finished %s, want failed", final.Status)
	}
	// The worker survived: the next job still runs.
	good := tinySweep()
	v2, _ := postJob(t, ts, good)
	if final := waitDone(t, ts, v2.ID); final.Status != StatusDone {
		t.Fatalf("follow-up job finished %s", final.Status)
	}
	if p := metricValue(t, ts, "texsimd_worker_panics_total"); p != 1 {
		t.Fatalf("panic counter = %v, want 1", p)
	}
}

func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 2,
		JobTimeout: 30 * time.Millisecond,
		runOverride: func(ctx context.Context, req *Request) ([]byte, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	v, _ := postJob(t, ts, tinySweep())
	if final := waitDone(t, ts, v.ID); final.Status != StatusCanceled {
		t.Fatalf("timed-out job finished %s, want canceled", final.Status)
	}
}

func TestExperimentJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	_, ts := newTestServer(t, Config{OutDir: t.TempDir()})
	req := &Request{Type: "experiment", Experiment: &ExperimentSpec{ID: "table1", Scale: 0.2}}
	v, code := postJob(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	final := waitDone(t, ts, v.ID)
	if final.Status != StatusDone {
		t.Fatalf("experiment job %s: %s", final.Status, final.Error)
	}
	var rep struct {
		ID     string `json:"id"`
		Tables []any  `json:"tables"`
	}
	if code := getJSON(t, ts.URL+final.ResultURL, &rep); code != http.StatusOK {
		t.Fatalf("result returned %d", code)
	}
	if rep.ID != "table1" || len(rep.Tables) == 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// postJobRaw submits a job and returns the full HTTP response for header
// and body inspection; the caller owns closing the body.
func postJobRaw(t *testing.T, ts *httptest.Server, req *Request) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestBackpressureResponseShape pins the contract of a 429: well-behaved
// clients need a Retry-After header to pace retries and a JSON error body
// to report — a bare status line is not enough.
func TestBackpressureResponseShape(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	_, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		runOverride: func(ctx context.Context, req *Request) ([]byte, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return []byte(`{}`), nil
		},
	})

	// One job occupies the worker, one fills the queue.
	for i := 0; i < 2; i++ {
		req := tinySweep()
		req.Sweep.Procs = []int{1, 2 + i}
		v, code := postJob(t, ts, req)
		if code != http.StatusAccepted {
			t.Fatalf("job %d returned %d", i, code)
		}
		if i == 0 {
			waitStatus(t, ts, v.ID, StatusRunning)
		}
	}

	req := tinySweep()
	req.Sweep.Procs = []int{64}
	resp := postJobRaw(t, ts, req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit returned %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	body := decodeAPIError(t, resp.Body)
	if body.Code != "queue_full" {
		t.Errorf("429 code = %q, want queue_full", body.Code)
	}
	// The message reports occupancy AND capacity — it used to print the
	// capacity as the queued count.
	if want := "job queue full (1 queued, capacity 1)"; body.Message != want {
		t.Errorf("429 message = %q, want %q", body.Message, want)
	}
	if body.RetryAfterSeconds != 1 {
		t.Errorf("429 retry_after_seconds = %d, want 1", body.RetryAfterSeconds)
	}
}

// decodeAPIError decodes the uniform non-2xx envelope
// {"error": {"code", "message", "retry_after_seconds?"}} and fails the test
// on any other body shape.
func decodeAPIError(t *testing.T, r io.Reader) APIError {
	t.Helper()
	var body struct {
		Error *APIError `json:"error"`
	}
	if err := json.NewDecoder(r).Decode(&body); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	if body.Error == nil {
		t.Fatal("error body lacks the envelope object")
	}
	return *body.Error
}

// TestDrainingResponseShape: a 503 while draining carries the same
// retry metadata as a 429 — the client's recovery is identical.
func TestDrainingResponseShape(t *testing.T) {
	release := make(chan struct{})
	srv, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 4,
		runOverride: func(ctx context.Context, req *Request) ([]byte, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return []byte(`{}`), nil
		},
	})
	if _, code := postJob(t, ts, tinySweep()); code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Drain(context.Background()) }()

	var resp *http.Response
	waitFor(t, func() bool {
		if resp != nil {
			resp.Body.Close()
		}
		resp = postJobRaw(t, ts, tinySweep())
		return resp.StatusCode == http.StatusServiceUnavailable
	}, "503 while draining")
	defer resp.Body.Close()
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	body := decodeAPIError(t, resp.Body)
	if body.Code != "draining" {
		t.Errorf("503 code = %q, want draining", body.Code)
	}
	if body.Message == "" {
		t.Error("503 body has no error message")
	}
	if body.RetryAfterSeconds != 1 {
		t.Errorf("503 retry_after_seconds = %d, want 1", body.RetryAfterSeconds)
	}
	close(release)
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestErrorEnvelopeShapes pins the envelope on the remaining non-2xx
// routes: 404 (unknown job), 400 (malformed submit), 409 (result not
// ready) and 410 (result of a canceled job).
func TestErrorEnvelopeShapes(t *testing.T) {
	release := make(chan struct{})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	_, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 4,
		runOverride: func(ctx context.Context, req *Request) ([]byte, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return []byte(`{}`), nil
		},
	})

	check := func(resp *http.Response, status int, code string, retry int) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != status {
			t.Fatalf("status = %d, want %d", resp.StatusCode, status)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("Content-Type = %q, want application/json", ct)
		}
		body := decodeAPIError(t, resp.Body)
		if body.Code != code {
			t.Errorf("code = %q, want %q", body.Code, code)
		}
		if body.Message == "" {
			t.Error("empty message")
		}
		if body.RetryAfterSeconds != retry {
			t.Errorf("retry_after_seconds = %d, want %d", body.RetryAfterSeconds, retry)
		}
	}

	resp, err := http.Get(ts.URL + "/api/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	check(resp, http.StatusNotFound, "not_found", 0)

	resp, err = http.Post(ts.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"type": 42}`))
	if err != nil {
		t.Fatal(err)
	}
	check(resp, http.StatusBadRequest, "bad_request", 0)

	// A running job's result is not ready: 409 not_ready with a retry hint.
	v, code := postJob(t, ts, tinySweep())
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	waitStatus(t, ts, v.ID, StatusRunning)
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	check(resp, http.StatusConflict, "not_ready", 1)
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("409 Retry-After = %q, want \"1\"", got)
	}

	// Cancel it: the result is gone for good.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitStatus(t, ts, v.ID, StatusCanceled)
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	check(resp, http.StatusGone, "job_gone", 0)
}

package overlap

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/distrib"
	"repro/internal/geom"
	"repro/internal/scene"
	"repro/internal/trace"
)

func TestTilesTouchedFormula(t *testing.T) {
	// A point triangle touches 1 tile in expectation; a tile-sized box
	// touches 4 (2×2, from straddling both boundaries half the time... the
	// Chen expectation is exactly (1+1)(1+1)).
	if got := TilesTouched(0.0001, 0.0001, 16, 16); math.Abs(got-1) > 0.01 {
		t.Errorf("point overlap = %v, want ≈1", got)
	}
	if got := TilesTouched(16, 16, 16, 16); got != 4 {
		t.Errorf("tile-sized overlap = %v, want 4", got)
	}
	if got := TilesTouched(32, 8, 16, 16); got != 3*1.5 {
		t.Errorf("2x0.5-tile overlap = %v, want 4.5", got)
	}
	if got := TilesTouched(-1, 4, 16, 16); got != 0 {
		t.Errorf("negative box overlap = %v, want 0", got)
	}
}

func TestTilesTouchedMatchesMonteCarlo(t *testing.T) {
	// The formula is an expectation over uniform placements: verify by
	// Monte Carlo for a few box/tile combinations.
	rng := rand.New(rand.NewSource(5))
	cases := []struct{ bw, bh, tw, th float64 }{
		{10, 10, 16, 16},
		{40, 7, 16, 16},
		{3, 60, 32, 8},
	}
	for _, c := range cases {
		const trials = 20000
		sum := 0.0
		for i := 0; i < trials; i++ {
			x0 := rng.Float64() * c.tw
			y0 := rng.Float64() * c.th
			tilesX := math.Floor((x0+c.bw)/c.tw) - math.Floor(x0/c.tw) + 1
			tilesY := math.Floor((y0+c.bh)/c.th) - math.Floor(y0/c.th) + 1
			sum += tilesX * tilesY
		}
		got := sum / trials
		want := TilesTouched(c.bw, c.bh, c.tw, c.th)
		if math.Abs(got-want) > 0.05*want {
			t.Errorf("case %+v: Monte Carlo %v vs formula %v", c, got, want)
		}
	}
}

func TestPredictValidation(t *testing.T) {
	s := &trace.Scene{
		Name:     "x",
		Screen:   geom.Rect{X1: 64, Y1: 64},
		Textures: []trace.TexSize{{W: 16, H: 16}},
		Triangles: []geom.Triangle{{
			V:   [3]geom.Vec2{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10}},
			Tex: geom.TexMap{DuDx: 1, DvDy: 1},
		}},
	}
	if _, err := Predict(s, distrib.BlockKind, 0, 16, 25); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := Predict(s, distrib.Kind(9), 4, 16, 25); err == nil {
		t.Error("unknown kind accepted")
	}
	p, err := Predict(s, distrib.BlockKind, 4, 16, 25)
	if err != nil {
		t.Fatal(err)
	}
	if p.MeanOverlap < 1 || p.SetupFraction <= 0 || p.SetupFraction >= 1 {
		t.Errorf("prediction = %+v", p)
	}
}

func TestPredictTracksMeasured(t *testing.T) {
	// On a real benchmark scene the analytical mean routed count must track
	// the measured one within ~25 % across tile sizes, and both must grow as
	// tiles shrink.
	b, err := scene.ByName("massive11255", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	s := b.MustBuild()
	const procs = 64
	var lastMeasured float64
	for _, size := range []int{64, 16, 4} {
		d, err := distrib.NewBlock(s.Screen, procs, size)
		if err != nil {
			t.Fatal(err)
		}
		_, measured := MeasureRouted(s, d)
		pred, err := Predict(s, distrib.BlockKind, procs, size, 25)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(pred.MeanRouted-measured) / measured; rel > 0.25 {
			t.Errorf("block-%d: predicted %v vs measured %v (%.0f%% off)",
				size, pred.MeanRouted, measured, rel*100)
		}
		if lastMeasured != 0 && measured <= lastMeasured {
			t.Errorf("block-%d: overlap did not grow as tiles shrank", size)
		}
		lastMeasured = measured
	}
}

func TestPredictSLI(t *testing.T) {
	b, err := scene.ByName("truc640", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	s := b.MustBuild()
	const procs = 16
	for _, lines := range []int{1, 8} {
		d, err := distrib.NewSLI(s.Screen, procs, lines)
		if err != nil {
			t.Fatal(err)
		}
		_, measured := MeasureRouted(s, d)
		pred, err := Predict(s, distrib.SLIKind, procs, lines, 25)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(pred.MeanRouted-measured) / measured; rel > 0.25 {
			t.Errorf("sli-%d: predicted %v vs measured %v", lines, pred.MeanRouted, measured)
		}
	}
}

func TestSetupFractionGrowsWithSmallTiles(t *testing.T) {
	b, err := scene.ByName("32massive11255", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	s := b.MustBuild()
	p1, err := Predict(s, distrib.BlockKind, 64, 1, 25)
	if err != nil {
		t.Fatal(err)
	}
	p64, err := Predict(s, distrib.BlockKind, 64, 64, 25)
	if err != nil {
		t.Fatal(err)
	}
	if p1.SetupFraction <= p64.SetupFraction {
		t.Errorf("setup fraction did not grow: w1 %v vs w64 %v",
			p1.SetupFraction, p64.SetupFraction)
	}
	if p1.SetupFraction < 0.3 {
		t.Errorf("w1 setup fraction %v suspiciously low", p1.SetupFraction)
	}
}

// Quickstart: simulate one of the paper's benchmark frames on a 16-processor
// sort-middle machine with 16 KB texture caches and a 1 texel/pixel bus, and
// print the numbers the paper's evaluation revolves around.
package main

import (
	"fmt"
	"log"

	"repro/texsim"
)

func main() {
	// Synthesize the paper's truc640 Half-Life frame at half resolution
	// (scale 1 = the full 1600x1200 frame).
	sc := texsim.Benchmark("truc640", 0.5)

	cfg := texsim.Config{
		Procs:        16,
		Distribution: texsim.Block, // square tiles, interleaved
		TileSize:     16,           // the paper's sweet-spot width
		CacheKind:    texsim.CacheReal,
		Bus:          texsim.BusConfig{TexelsPerCycle: 1},
	}

	speedup, single, parallel, err := texsim.Speedup(sc, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scene %s: %d triangles, %d fragments\n",
		sc.Name, len(sc.Triangles), parallel.Fragments)
	fmt.Printf("1 processor:   %.0f cycles\n", single.Cycles)
	fmt.Printf("%d processors: %.0f cycles → speedup %.1fx\n",
		cfg.Procs, parallel.Cycles, speedup)
	fmt.Printf("texel-to-fragment ratio: %.2f (single: %.2f)\n",
		parallel.TexelToFragment(), single.TexelToFragment())
	fmt.Printf("pixel load imbalance: %.1f%%\n", parallel.PixelImbalance()*100)

	// Per-node view: who was the bottleneck?
	worst := 0
	for i, n := range parallel.Nodes {
		if n.FinishTime > parallel.Nodes[worst].FinishTime {
			worst = i
		}
	}
	n := parallel.Nodes[worst]
	fmt.Printf("slowest node %d: %d fragments, %.0f stall cycles, %.1f%% cache miss rate\n",
		worst, n.Fragments, n.StallCycles, n.Cache.MissRate()*100)
}

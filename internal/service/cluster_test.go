package service

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/resultcache"
	"repro/internal/sweep"
)

// clusterNode is one in-process cluster member: a full Server behind a
// real HTTP listener, with its own cache, registry and peer table.
type clusterNode struct {
	srv *Server
	ts  *httptest.Server
	cl  *cluster.Cluster
}

// newClusterNodes boots n peer-aware servers and joins them into one
// cluster (every node lists every other). mod customises node i's config
// before the server is built; the Cluster, Metrics and defaults are
// already filled in. Nodes are cleaned up newest-first.
func newClusterNodes(t *testing.T, n int, mod func(i int, cfg *Config)) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	for i := 0; i < n; i++ {
		reg := metrics.NewRegistry()
		cl := cluster.New(cluster.Config{
			Metrics:       reg,
			ProbeTimeout:  time.Second,
			FailThreshold: 2,
		})
		cache, err := resultcache.New(resultcache.Config{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Workers:      2,
			Cache:        cache,
			Metrics:      reg,
			Cluster:      cl,
			PollInterval: 20 * time.Millisecond,
		}
		if mod != nil {
			mod(i, &cfg)
		}
		srv, err := New(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		nodes[i] = &clusterNode{srv: srv, ts: ts, cl: cl}
		t.Cleanup(func() {
			ts.Close()
			srv.Close()
		})
	}
	urls := make([]string, n)
	for i, nd := range nodes {
		urls[i] = nd.ts.URL
	}
	for i, nd := range nodes {
		peers := make([]string, 0, n-1)
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		nd.cl.SetPeers(urls[i], peers)
	}
	return nodes
}

// specOwnedBy searches sweep specs (varying the scale) until one's cache
// key is rendezvous-owned by nodes[want], as seen from the full member
// set. The spec is returned un-normalized, ready to submit.
func specOwnedBy(t *testing.T, nodes []*clusterNode, want int, seen map[string]bool) *Request {
	t.Helper()
	members := make([]string, len(nodes))
	for i, nd := range nodes {
		members[i] = nd.ts.URL
	}
	// Scales stay in [0.10, 0.40]: small enough to simulate fast, large
	// enough that scene generation stays tractable.
	for _, size := range []int{8, 16, 32, 64} {
		for k := 10; k <= 40; k++ {
			scale := float64(k) / 100
			probe := &Request{Type: "sweep", Sweep: &sweep.Spec{
				Scene: "truc640", Scale: scale, Procs: []int{1}, Sizes: []int{size},
				Cache: "perfect",
			}}
			if err := probe.normalize(); err != nil {
				t.Fatal(err)
			}
			key, err := resultcache.Key(probe)
			if err != nil {
				t.Fatal(err)
			}
			if seen[key] || cluster.OwnerOf(key, members) != members[want] {
				continue
			}
			seen[key] = true
			return &Request{Type: "sweep", Sweep: &sweep.Spec{
				Scene: "truc640", Scale: scale, Procs: []int{1}, Sizes: []int{size},
				Cache: "perfect",
			}}
		}
	}
	t.Fatalf("no unused spec owned by node %d", want)
	return nil
}

// keyOf computes the cache key the service would use for req.
func keyOf(t *testing.T, req *Request) string {
	t.Helper()
	c := &Request{Type: req.Type}
	if req.Sweep != nil {
		sp := *req.Sweep
		c.Sweep = &sp
	}
	if req.Experiment != nil {
		e := *req.Experiment
		c.Experiment = &e
	}
	if err := c.normalize(); err != nil {
		t.Fatal(err)
	}
	key, err := resultcache.Key(c)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// echoPayload is the runOverride payload: valid JSON, unique per key.
func echoPayload(t *testing.T, req *Request) []byte {
	key, err := resultcache.Key(req) // req is normalized inside the server
	if err != nil {
		t.Fatal(err)
	}
	return []byte(fmt.Sprintf(`{"key":%q}`, key))
}

// postJobWith submits req to ts with extra headers.
func postJobWith(t *testing.T, ts *httptest.Server, req *Request, hdr map[string]string) (jobView, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

func getResultBytes(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s returned %d", id, resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestClusterRoutesToOwner: a submission whose key a peer owns is
// forwarded there, executed there, and the result lands back on the
// submitting node — with the trace surviving the hop.
func TestClusterRoutesToOwner(t *testing.T) {
	var ranOn [2]atomic.Int64
	nodes := newClusterNodes(t, 2, func(i int, cfg *Config) {
		cfg.runOverride = func(ctx context.Context, req *Request) ([]byte, error) {
			ranOn[i].Add(1)
			return echoPayload(t, req), nil
		}
	})
	spec := specOwnedBy(t, nodes, 1, map[string]bool{})

	// A fixed traceparent lets us find the job's spans on the peer.
	var tid [16]byte
	rand.Read(tid[:])
	traceID := hex.EncodeToString(tid[:])
	tp := fmt.Sprintf("00-%s-00f067aa0ba902b7-01", traceID)

	v, code := postJobWith(t, nodes[0].ts, spec, map[string]string{"traceparent": tp})
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	done := waitDone(t, nodes[0].ts, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("job ended %s: %s", done.Status, done.Error)
	}
	if done.Peer != nodes[1].ts.URL {
		t.Fatalf("job peer = %q, want %q", done.Peer, nodes[1].ts.URL)
	}
	if ranOn[0].Load() != 0 || ranOn[1].Load() != 1 {
		t.Fatalf("executions = [%d %d], want [0 1]", ranOn[0].Load(), ranOn[1].Load())
	}
	if got, want := string(getResultBytes(t, nodes[0].ts, v.ID)),
		fmt.Sprintf(`{"key":%q}`, keyOf(t, spec)); got != want {
		t.Fatalf("result = %s, want %s", got, want)
	}
	if st := nodes[0].cl.Stats(); st.ForwardsRoute != 1 {
		t.Fatalf("forwards_route = %d, want 1", st.ForwardsRoute)
	}
	// The peer's spans joined the submitter's trace across the hop.
	if spans := nodes[1].srv.Tracer().Snapshot(0, traceID); len(spans) == 0 {
		t.Fatalf("no spans with trace %s on the executing peer", traceID)
	}
}

// TestClusterProxyCacheHit: a local miss on a key a peer owns is served
// from that peer's cache without simulating — and is cached locally so
// the next lookup stays local.
func TestClusterProxyCacheHit(t *testing.T) {
	var ranOn [2]atomic.Int64
	nodes := newClusterNodes(t, 2, func(i int, cfg *Config) {
		cfg.runOverride = func(ctx context.Context, req *Request) ([]byte, error) {
			ranOn[i].Add(1)
			return echoPayload(t, req), nil
		}
	})
	spec := specOwnedBy(t, nodes, 1, map[string]bool{})
	routed := map[string]string{cluster.RoutedHeader: "1"}

	// Seed the owner's cache: a routed submission executes locally there.
	v1, code := postJobWith(t, nodes[1].ts, spec, routed)
	if code != http.StatusAccepted {
		t.Fatalf("seed submit returned %d", code)
	}
	if d := waitDone(t, nodes[1].ts, v1.ID); d.Status != StatusDone {
		t.Fatalf("seed job ended %s: %s", d.Status, d.Error)
	}

	// A routed submission on the non-owner cannot be forwarded; its local
	// miss must federate to the owner and come back a proxied hit.
	v0, code := postJobWith(t, nodes[0].ts, spec, routed)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	d := waitDone(t, nodes[0].ts, v0.ID)
	if d.Status != StatusDone || !d.FromCache {
		t.Fatalf("job = %s fromCache=%v, want done from cache", d.Status, d.FromCache)
	}
	if ranOn[0].Load() != 0 {
		t.Fatalf("non-owner simulated %d times, want 0", ranOn[0].Load())
	}
	if !bytes.Equal(getResultBytes(t, nodes[0].ts, v0.ID), getResultBytes(t, nodes[1].ts, v1.ID)) {
		t.Fatal("proxied result differs from the owner's result")
	}
	if st := nodes[0].cl.Stats(); st.ProxyCacheHits != 1 {
		t.Fatalf("proxy_cache_hits = %d, want 1", st.ProxyCacheHits)
	}
	if st := nodes[0].srv.cache.Stats(); st.RemoteHits != 1 {
		t.Fatalf("cache remote hits = %d, want 1", st.RemoteHits)
	}
	// The mirrored metric agrees with the cache stats.
	if got := metricValue(t, nodes[0].ts, "texsimd_result_cache_remote_hits_total"); got != 1 {
		t.Fatalf("remote-hits metric = %v, want 1", got)
	}
}

// TestClusterSpillOnFullQueue: a full local queue forwards to a peer with
// capacity instead of answering 429 — and only 429s once every peer is
// saturated too.
func TestClusterSpillOnFullQueue(t *testing.T) {
	release := [2]chan struct{}{make(chan struct{}), make(chan struct{})}
	nodes := newClusterNodes(t, 2, func(i int, cfg *Config) {
		cfg.Workers = 1
		cfg.QueueDepth = 1
		cfg.runOverride = func(ctx context.Context, req *Request) ([]byte, error) {
			select {
			case <-release[i]:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return echoPayload(t, req), nil
		}
	})
	seen := map[string]bool{}
	// All specs owned by node 0 so routing never kicks in; only spill does.
	blocker := specOwnedBy(t, nodes, 0, seen)
	filler := specOwnedBy(t, nodes, 0, seen)
	spilled := specOwnedBy(t, nodes, 0, seen)
	filler1 := specOwnedBy(t, nodes, 0, seen)
	rejected := specOwnedBy(t, nodes, 0, seen)

	vBlock, code := postJobWith(t, nodes[0].ts, blocker, nil)
	if code != http.StatusAccepted {
		t.Fatalf("blocker returned %d", code)
	}
	waitRunning(t, nodes[0].ts, vBlock.ID)
	vFill, code := postJobWith(t, nodes[0].ts, filler, nil)
	if code != http.StatusAccepted {
		t.Fatalf("filler returned %d", code)
	}

	// Queue full on node 0: the next job spills to node 1.
	vSpill, code := postJobWith(t, nodes[0].ts, spilled, nil)
	if code != http.StatusAccepted {
		t.Fatalf("spill submit returned %d, want 202", code)
	}
	waitRunning(t, nodes[0].ts, vSpill.ID)
	if st := nodes[0].cl.Stats(); st.ForwardsSpill != 1 {
		t.Fatalf("forwards_spill = %d, want 1", st.ForwardsSpill)
	}
	// Node 1's worker is now blocked on the spilled job; one more fills
	// node 1's queue through a second spill...
	if _, code := postJobWith(t, nodes[0].ts, filler1, nil); code != http.StatusAccepted {
		t.Fatalf("second spill returned %d, want 202", code)
	}
	// ...and with every node saturated the caller finally sees the 429.
	if _, code := postJobWith(t, nodes[0].ts, rejected, nil); code != http.StatusTooManyRequests {
		t.Fatalf("submit with all peers saturated returned %d, want 429", code)
	}

	close(release[0])
	close(release[1])
	for _, v := range []jobView{vBlock, vFill, vSpill} {
		if d := waitDone(t, nodes[0].ts, v.ID); d.Status != StatusDone {
			t.Fatalf("job %s ended %s: %s", v.ID, d.Status, d.Error)
		}
	}
	if d := waitDone(t, nodes[0].ts, vSpill.ID); d.Peer != nodes[1].ts.URL {
		t.Fatalf("spilled job peer = %q, want %q", d.Peer, nodes[1].ts.URL)
	}
}

// waitRunning polls until the job leaves the queued state.
func waitRunning(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var v jobView
		if code := getJSON(t, ts.URL+"/api/v1/jobs/"+id, &v); code != http.StatusOK {
			t.Fatalf("status %s returned %d", id, code)
		}
		if v.Status != StatusQueued {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never started", id)
}

// TestClusterWorkStealing: an idle peer pulls queued jobs from an
// overloaded node, runs them, and hands the results back — each job
// simulated exactly once.
func TestClusterWorkStealing(t *testing.T) {
	release := make(chan struct{})
	var execs sync.Map // key -> *atomic.Int64
	countExec := func(req *Request) {
		key, _ := resultcache.Key(req)
		n, _ := execs.LoadOrStore(key, new(atomic.Int64))
		n.(*atomic.Int64).Add(1)
	}
	blockerKey := new(atomic.Value)
	blockerKey.Store("")
	nodes := newClusterNodes(t, 2, func(i int, cfg *Config) {
		if i == 0 {
			cfg.Workers = 1
			cfg.QueueDepth = 8
		} else {
			cfg.StealInterval = 10 * time.Millisecond
		}
		cfg.runOverride = func(ctx context.Context, req *Request) ([]byte, error) {
			key, _ := resultcache.Key(req)
			if key == blockerKey.Load().(string) {
				select {
				case <-release:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			countExec(req)
			return echoPayload(t, req), nil
		}
	})
	seen := map[string]bool{}
	blocker := specOwnedBy(t, nodes, 0, seen)
	blockerKey.Store(keyOf(t, blocker))

	vBlock, code := postJobWith(t, nodes[0].ts, blocker, nil)
	if code != http.StatusAccepted {
		t.Fatalf("blocker returned %d", code)
	}
	waitRunning(t, nodes[0].ts, vBlock.ID)

	// Two node-0-owned jobs queue behind the blocked worker; node 1's
	// steal loop should pull and run them while node 0 is stuck.
	var queued []jobView
	for i := 0; i < 2; i++ {
		spec := specOwnedBy(t, nodes, 0, seen)
		v, code := postJobWith(t, nodes[0].ts, spec, nil)
		if code != http.StatusAccepted {
			t.Fatalf("queued job returned %d", code)
		}
		queued = append(queued, v)
	}
	for _, v := range queued {
		d := waitDone(t, nodes[0].ts, v.ID)
		if d.Status != StatusDone {
			t.Fatalf("stolen job %s ended %s: %s", v.ID, d.Status, d.Error)
		}
		if d.Peer != nodes[1].ts.URL {
			t.Fatalf("stolen job peer = %q, want the thief %q", d.Peer, nodes[1].ts.URL)
		}
	}
	if st := nodes[0].cl.Stats(); st.StealsGiven != 2 {
		t.Fatalf("steals_given = %d, want 2", st.StealsGiven)
	}
	if st := nodes[1].cl.Stats(); st.StealsTaken != 2 {
		t.Fatalf("steals_taken = %d, want 2", st.StealsTaken)
	}
	close(release)
	if d := waitDone(t, nodes[0].ts, vBlock.ID); d.Status != StatusDone {
		t.Fatalf("blocker ended %s: %s", d.Status, d.Error)
	}
	execs.Range(func(_, v any) bool {
		if n := v.(*atomic.Int64).Load(); n != 1 {
			t.Fatalf("a job was simulated %d times, want exactly 1", n)
		}
		return true
	})
}

// TestStealLeaseExpiryAndStaleCompletion: a thief that never completes
// loses its lease — the job re-queues locally — and its late completion
// is discarded as stale rather than finishing the job twice.
func TestStealLeaseExpiryAndStaleCompletion(t *testing.T) {
	release := make(chan struct{})
	blockerKey := new(atomic.Value)
	blockerKey.Store("")
	nodes := newClusterNodes(t, 2, func(i int, cfg *Config) {
		if i == 0 {
			cfg.Workers = 1
			cfg.QueueDepth = 8
			cfg.LeaseTimeout = 100 * time.Millisecond
		}
		cfg.runOverride = func(ctx context.Context, req *Request) ([]byte, error) {
			key, _ := resultcache.Key(req)
			if key == blockerKey.Load().(string) {
				select {
				case <-release:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return echoPayload(t, req), nil
		}
	})
	seen := map[string]bool{}
	blocker := specOwnedBy(t, nodes, 0, seen)
	blockerKey.Store(keyOf(t, blocker))
	victim := specOwnedBy(t, nodes, 0, seen)

	// An idle node gives nothing away.
	resp := postSteal(t, nodes[0].ts, "http://fake-thief:1")
	if resp.code != http.StatusNoContent {
		t.Fatalf("steal from idle node returned %d, want 204", resp.code)
	}

	vBlock, code := postJobWith(t, nodes[0].ts, blocker, nil)
	if code != http.StatusAccepted {
		t.Fatalf("blocker returned %d", code)
	}
	waitRunning(t, nodes[0].ts, vBlock.ID)
	vVictim, code := postJobWith(t, nodes[0].ts, victim, nil)
	if code != http.StatusAccepted {
		t.Fatalf("victim returned %d", code)
	}

	// Pose as a thief, take the job, and go silent.
	resp = postSteal(t, nodes[0].ts, "http://fake-thief:1")
	if resp.code != http.StatusOK {
		t.Fatalf("steal returned %d, want 200", resp.code)
	}
	if resp.job.JobID != vVictim.ID {
		t.Fatalf("stole %q, want %q", resp.job.JobID, vVictim.ID)
	}

	// The lease expires, the job re-queues, and the released local worker
	// finishes it.
	close(release)
	d := waitDone(t, nodes[0].ts, vVictim.ID)
	if d.Status != StatusDone {
		t.Fatalf("victim ended %s: %s", d.Status, d.Error)
	}
	localResult := getResultBytes(t, nodes[0].ts, vVictim.ID)

	// The thief finally answers — with a nonce the lease no longer matches.
	comp := cluster.Completion{
		JobID:      resp.job.JobID,
		LeaseNonce: resp.job.LeaseNonce,
		Payload:    json.RawMessage(`{"forged":true}`),
	}
	body, _ := json.Marshal(comp)
	hres, err := http.Post(nodes[0].ts.URL+"/api/v1/cluster/complete", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusConflict {
		t.Fatalf("stale completion returned %d, want 409", hres.StatusCode)
	}
	if st := nodes[0].cl.Stats(); st.StaleCompletions != 1 {
		t.Fatalf("stale_completions = %d, want 1", st.StaleCompletions)
	}
	// The stale payload must not have replaced the real result.
	if got := getResultBytes(t, nodes[0].ts, vVictim.ID); !bytes.Equal(got, localResult) {
		t.Fatalf("result changed after stale completion: %s", got)
	}
}

type stealResp struct {
	code int
	job  cluster.StolenJob
}

func postSteal(t *testing.T, ts *httptest.Server, thief string) stealResp {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/cluster/steal", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.PeerHeader, thief)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := stealResp{code: resp.StatusCode}
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out.job); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestClusterHammerMixedJobs floods a 3-node cluster with distinct jobs
// from every direction under the race detector: every job must complete
// with the right payload, be simulated exactly once cluster-wide, and
// routed jobs must keep their trace across the hop.
func TestClusterHammerMixedJobs(t *testing.T) {
	var execs sync.Map // key -> *atomic.Int64
	nodes := newClusterNodes(t, 3, func(i int, cfg *Config) {
		cfg.Workers = 2
		cfg.QueueDepth = 32
		cfg.runOverride = func(ctx context.Context, req *Request) ([]byte, error) {
			key, _ := resultcache.Key(req)
			n, _ := execs.LoadOrStore(key, new(atomic.Int64))
			n.(*atomic.Int64).Add(1)
			return echoPayload(t, req), nil
		}
	})

	type submitted struct {
		node    int
		view    jobView
		key     string
		traceID string
	}
	const jobs = 24
	seen := map[string]bool{}
	specs := make([]*Request, jobs)
	for i := range specs {
		specs[i] = specOwnedBy(t, nodes, i%len(nodes), seen)
	}

	results := make([]submitted, jobs)
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Spec i is owned by node i%3; submitting to node 2i%3 makes
			// two thirds of the jobs routed and one third local.
			node := (i * 2) % len(nodes)
			var tid [16]byte
			rand.Read(tid[:])
			traceID := hex.EncodeToString(tid[:])
			tp := fmt.Sprintf("00-%s-00f067aa0ba902b7-01", traceID)
			v, code := postJobWith(t, nodes[node].ts, specs[i], map[string]string{"traceparent": tp})
			if code != http.StatusAccepted {
				t.Errorf("job %d returned %d", i, code)
				return
			}
			results[i] = submitted{node: node, view: v, key: keyOf(t, specs[i]), traceID: traceID}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i, r := range results {
		d := waitDone(t, nodes[r.node].ts, r.view.ID)
		if d.Status != StatusDone {
			t.Fatalf("job %d ended %s: %s", i, d.Status, d.Error)
		}
		want := fmt.Sprintf(`{"key":%q}`, r.key)
		if got := string(getResultBytes(t, nodes[r.node].ts, r.view.ID)); got != want {
			t.Fatalf("job %d result = %s, want %s", i, got, want)
		}
		if d.Peer != "" {
			// Routed: some other node must hold spans of this trace.
			found := false
			for j, nd := range nodes {
				if j != r.node && len(nd.srv.Tracer().Snapshot(0, r.traceID)) > 0 {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("job %d routed to %s but no peer has trace %s", i, d.Peer, r.traceID)
			}
		}
	}
	execs.Range(func(k, v any) bool {
		if n := v.(*atomic.Int64).Load(); n != 1 {
			t.Fatalf("key %v simulated %d times, want exactly 1", k, n)
		}
		return true
	})
	var forwards int64
	for _, nd := range nodes {
		st := nd.cl.Stats()
		forwards += st.ForwardsRoute
	}
	if forwards == 0 {
		t.Fatal("hammer produced no routed jobs; the mix is not exercising forwarding")
	}
}

// TestClusterE2EKillPeerMidSweep is the capstone: three peers, a real
// sweep routed to its owner, the owner killed mid-run — and the job still
// completes, byte-identical to a single-node reference run, while
// /cluster reports the dead peer.
func TestClusterE2EKillPeerMidSweep(t *testing.T) {
	started := make(chan struct{})
	var startedOnce sync.Once
	nodes := newClusterNodes(t, 3, func(i int, cfg *Config) {
		cfg.Workers = 2
		if i == 1 {
			// The victim: starts the job for real, then hangs until killed —
			// a stand-in for a long sweep that never finishes.
			cfg.runOverride = func(ctx context.Context, req *Request) ([]byte, error) {
				startedOnce.Do(func() { close(started) })
				<-ctx.Done()
				return nil, ctx.Err()
			}
		}
	})
	spec := specOwnedBy(t, nodes, 1, map[string]bool{})

	// Reference: the same spec simulated directly, no cluster involved.
	norm := &Request{Type: "sweep", Sweep: spec.Sweep}
	if err := norm.normalize(); err != nil {
		t.Fatal(err)
	}
	res, err := sweep.RunWith(context.Background(), *norm.Sweep, sweep.RunOpts{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}

	v, code := postJobWith(t, nodes[0].ts, spec, nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started on the owner")
	}

	// Kill the owner mid-run: listener gone, server gone.
	nodes[1].ts.Close()
	nodes[1].srv.Close()

	// The supervisor on node 0 fails over and runs the sweep locally.
	d := waitDone(t, nodes[0].ts, v.ID)
	if d.Status != StatusDone {
		t.Fatalf("job after peer kill ended %s: %s", d.Status, d.Error)
	}
	got := getResultBytes(t, nodes[0].ts, v.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("failover result is not byte-identical to the reference\n got: %.200s\nwant: %.200s", got, want)
	}
	if st := nodes[0].cl.Stats(); st.Failovers == 0 {
		t.Fatal("failover counter is zero after a peer kill")
	}

	// /cluster on a survivor reports the dead peer once probes confirm it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		nodes[0].cl.ProbeNow(context.Background())
		var doc struct {
			Enabled bool                 `json:"enabled"`
			Peers   []cluster.PeerStatus `json:"peers"`
		}
		if code := getJSON(t, nodes[0].ts.URL+"/cluster", &doc); code != http.StatusOK {
			t.Fatalf("/cluster returned %d", code)
		}
		if !doc.Enabled {
			t.Fatal("/cluster reports cluster mode disabled")
		}
		down := false
		for _, p := range doc.Peers {
			if p.Addr == nodes[1].ts.URL && !p.Up {
				down = true
			}
		}
		if down {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/cluster never reported %s down: %+v", nodes[1].ts.URL, doc.Peers)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterStatusSingleNode: /cluster stays useful without a cluster —
// it reports disabled plus the local cache and queue numbers.
func TestClusterStatusSingleNode(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var doc struct {
		Enabled bool           `json:"enabled"`
		Cache   map[string]any `json:"cache"`
		Queue   map[string]any `json:"queue"`
	}
	if code := getJSON(t, ts.URL+"/cluster", &doc); code != http.StatusOK {
		t.Fatalf("/cluster returned %d", code)
	}
	if doc.Enabled {
		t.Fatal("single-node /cluster reports enabled")
	}
	if doc.Cache == nil || doc.Queue == nil {
		t.Fatalf("/cluster missing cache or queue sections: %+v", doc)
	}
	// The peer-protocol endpoints are not mounted without a cluster.
	resp, err := http.Post(ts.URL+"/api/v1/cluster/steal", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("steal endpoint on single node returned %d, want 404", resp.StatusCode)
	}
}

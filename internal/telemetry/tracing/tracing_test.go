package tracing

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const (
	testTraceHex = "4bf92f3577b34da6a3ce929d0e0e4736"
	testSpanHex  = "00f067aa0ba902b7"
)

func TestTraceparentRoundTrip(t *testing.T) {
	h := fmt.Sprintf("00-%s-%s-01", testTraceHex, testSpanHex)
	tid, sid, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected", h)
	}
	if tid.String() != testTraceHex || sid.String() != testSpanHex {
		t.Errorf("parsed %s/%s", tid, sid)
	}
	if got := Traceparent(tid, sid); got != h {
		t.Errorf("Traceparent = %q, want %q", got, h)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-short-short-01",
		"ff-" + testTraceHex + "-" + testSpanHex + "-01",             // forbidden version
		"00-00000000000000000000000000000000-" + testSpanHex + "-01", // zero trace
		"00-" + testTraceHex + "-0000000000000000-01",                // zero span
		"00_" + testTraceHex + "-" + testSpanHex + "-01",             // bad separator
		"00-" + strings.Repeat("g", 32) + "-" + testSpanHex + "-01",  // non-hex
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
}

func TestSpanParenting(t *testing.T) {
	tr := NewTracer(16)

	// Root span mints a fresh trace.
	ctx, root := tr.StartSpan(context.Background(), "root")
	if root.TraceID().IsZero() || root.SpanID().IsZero() {
		t.Fatal("root span has zero IDs")
	}
	// Child inherits the trace and points at the root.
	_, child := tr.StartSpan(ctx, "child")
	if child.TraceID() != root.TraceID() {
		t.Error("child has a different trace ID")
	}
	child.End()
	root.End()

	// Remote parent continues an extracted trace.
	tid, sid, _ := ParseTraceparent(fmt.Sprintf("00-%s-%s-01", testTraceHex, testSpanHex))
	rctx := ContextWithRemoteParent(context.Background(), tid, sid)
	_, remote := tr.StartSpan(rctx, "continued")
	if remote.TraceID() != tid {
		t.Error("remote child did not adopt the carrier trace ID")
	}
	remote.End()

	views := tr.Snapshot(0, "")
	if len(views) != 3 {
		t.Fatalf("snapshot holds %d spans, want 3", len(views))
	}
	// Newest first: continued, root, child.
	if views[0].Name != "continued" || views[0].ParentID != testSpanHex {
		t.Errorf("newest span = %+v", views[0])
	}
	byName := map[string]SpanView{}
	for _, v := range views {
		byName[v.Name] = v
	}
	if byName["child"].ParentID != byName["root"].SpanID {
		t.Error("child's parent_id is not root's span_id")
	}
	if byName["root"].ParentID != "" {
		t.Error("root span has a parent")
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		_, s := tr.StartSpan(context.Background(), fmt.Sprintf("span-%d", i))
		s.End()
	}
	if tr.Count() != 10 {
		t.Errorf("Count = %d", tr.Count())
	}
	views := tr.Snapshot(0, "")
	if len(views) != 4 {
		t.Fatalf("ring holds %d, want 4", len(views))
	}
	if views[0].Name != "span-9" || views[3].Name != "span-6" {
		t.Errorf("ring contents: %s..%s", views[0].Name, views[3].Name)
	}
	if limited := tr.Snapshot(2, ""); len(limited) != 2 || limited[0].Name != "span-9" {
		t.Errorf("limited snapshot = %+v", limited)
	}
}

func TestSnapshotTraceFilter(t *testing.T) {
	tr := NewTracer(16)
	ctx, a := tr.StartSpan(context.Background(), "a")
	_, a2 := tr.StartSpan(ctx, "a-child")
	_, b := tr.StartSpan(context.Background(), "b")
	a2.End()
	a.End()
	b.End()
	got := tr.Snapshot(0, a.TraceID().String())
	if len(got) != 2 {
		t.Fatalf("filter returned %d spans, want 2", len(got))
	}
	for _, v := range got {
		if v.TraceID != a.TraceID().String() {
			t.Errorf("foreign span in filtered snapshot: %+v", v)
		}
	}
}

func TestMiddlewareAndDebugHandler(t *testing.T) {
	tr := NewTracer(16)
	var innerTrace string
	h := Middleware(tr, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s := FromContext(r.Context()); s != nil {
			innerTrace = s.TraceID().String()
		}
		w.WriteHeader(http.StatusTeapot)
	}))

	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(TraceparentHeader, fmt.Sprintf("00-%s-%s-01", testTraceHex, testSpanHex))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)

	if innerTrace != testTraceHex {
		t.Errorf("handler saw trace %q, want %q", innerTrace, testTraceHex)
	}
	if got := rw.Header().Get(TraceparentHeader); !strings.HasPrefix(got, "00-"+testTraceHex+"-") {
		t.Errorf("response traceparent = %q", got)
	}

	// The finished server span is in the debug view with the status attr.
	drw := httptest.NewRecorder()
	tr.DebugHandler().ServeHTTP(drw, httptest.NewRequest("GET", "/debug/traces?trace="+testTraceHex, nil))
	var body struct {
		Spans []SpanView `json:"spans"`
	}
	if err := json.NewDecoder(drw.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Spans) != 1 || body.Spans[0].Name != "GET /x" {
		t.Fatalf("debug spans = %+v", body.Spans)
	}
	var status string
	for _, a := range body.Spans[0].Attrs {
		if a.Key == "http.status" {
			status = a.Value
		}
	}
	if status != "418" {
		t.Errorf("http.status attr = %q", status)
	}
}

func TestNilSpanSafe(t *testing.T) {
	var s *Span
	s.SetAttr("k", "v")
	s.SetError(fmt.Errorf("x"))
	s.End() // must not panic
}

package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/telemetry/tracing"
)

// Handler returns the service's HTTP API:
//
//	POST   /api/v1/jobs             submit a job (202; 429 queue full; 503 draining)
//	GET    /api/v1/jobs             list jobs in submission order
//	GET    /api/v1/jobs/{id}        job status
//	GET    /api/v1/jobs/{id}/result result payload of a done job
//	GET    /api/v1/jobs/{id}/events live job progress (SSE; Last-Event-ID replays)
//	DELETE /api/v1/jobs/{id}        cancel a queued or running job
//	GET    /metrics                 Prometheus text exposition
//	GET    /api/v1/metrics/query    sampled time series (?name=...&since=...)
//	GET    /debug/traces            recent request/job spans (JSON)
//	GET    /debug/dash              embedded live ops dashboard (HTML)
//	GET    /healthz                 liveness probe
//	GET    /cluster                 cluster status (peers, ownership, counters)
//	GET    /cluster/metrics         fleet-wide metrics merged across live peers
//
// In cluster mode (Config.Cluster set) the peer protocol is also served:
//
//	GET    /api/v1/cluster/cache/{key}  federated cache read (owner side)
//	PUT    /api/v1/cluster/cache/{key}  ownership-handoff cache write
//	POST   /api/v1/cluster/steal        hand one queued job to an idle peer
//	POST   /api/v1/cluster/complete     accept a stolen job's result
//
// Every request runs inside a server span (incoming W3C traceparent headers
// are honoured, responses carry one back) and is counted in the per-route
// request and latency metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(route, h))
	}
	handle("POST /api/v1/jobs", "submit", s.handleSubmit)
	handle("GET /api/v1/jobs", "list", s.handleList)
	handle("GET /api/v1/jobs/{id}", "status", s.handleStatus)
	handle("GET /api/v1/jobs/{id}/result", "result", s.handleResult)
	handle("GET /api/v1/jobs/{id}/events", "events", s.handleEvents)
	handle("DELETE /api/v1/jobs/{id}", "cancel", s.handleCancel)
	handle("GET /metrics", "metrics", s.handleMetrics)
	handle("GET /api/v1/metrics/query", "metrics_query", s.handleMetricsQuery)
	handle("GET /debug/traces", "traces", s.tracer.DebugHandler().ServeHTTP)
	handle("GET /debug/dash", "dash", s.handleDash)
	handle("GET /healthz", "healthz", s.handleHealthz)
	handle("GET /cluster", "cluster", s.handleClusterStatus)
	handle("GET /cluster/metrics", "cluster_metrics", s.handleClusterMetrics)
	if s.cfg.Cluster != nil {
		handle("GET /api/v1/cluster/cache/{key}", "cache_get", s.handleCacheGet)
		handle("PUT /api/v1/cluster/cache/{key}", "cache_put", s.handleCachePut)
		handle("POST /api/v1/cluster/steal", "steal", s.handleSteal)
		handle("POST /api/v1/cluster/complete", "complete", s.handleComplete)
		handle("GET /api/v1/cluster/nodemetrics", "nodemetrics", s.handleNodeMetrics)
	}
	return tracing.Middleware(s.tracer, mux)
}

// statusRecorder captures the response code for the route metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying connection's
// Flusher — the SSE endpoint streams through this wrapper.
func (w *statusRecorder) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps one route with request-count and latency metrics. The
// route label is a fixed name per pattern, never the raw path, so metric
// cardinality stays bounded.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(sr, r)
		s.mHTTPReqs.With(route, strconv.Itoa(sr.code)).Inc()
		s.mHTTPDur.With(route).Observe(time.Since(start).Seconds())
	})
}

// TenantHeader attributes a submission to a tenant for admission control,
// fair scheduling and the per-tenant metrics. It overrides the request
// body's tenant field, so a fronting proxy that injects tenant identity
// cannot be fooled by the payload.
const TenantHeader = "X-Tenant"

// jobView is the wire shape of a job record.
type jobView struct {
	ID          string  `json:"id"`
	Type        string  `json:"type"`
	Tenant      string  `json:"tenant,omitempty"`
	Class       string  `json:"class,omitempty"`
	Status      Status  `json:"status"`
	FromCache   bool    `json:"from_cache,omitempty"`
	Error       string  `json:"error,omitempty"`
	SubmittedAt string  `json:"submitted_at"`
	StartedAt   string  `json:"started_at,omitempty"`
	FinishedAt  string  `json:"finished_at,omitempty"`
	DurationSec float64 `json:"duration_seconds,omitempty"`
	ResultURL   string  `json:"result_url,omitempty"`
	// Peer is the cluster member executing (or having executed) the job
	// when it did not run on this node: the forward target, spill target
	// or thief.
	Peer string `json:"peer,omitempty"`
}

func viewOf(j *job) jobView {
	v := jobView{
		ID:          j.id,
		Type:        j.req.Type,
		Tenant:      j.tenant,
		Class:       j.class.String(),
		Status:      j.status,
		FromCache:   j.fromCache,
		Error:       j.errMsg,
		SubmittedAt: j.submitted.Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.Format(time.RFC3339Nano)
		if !j.started.IsZero() {
			v.DurationSec = j.finished.Sub(j.started).Seconds()
		}
	}
	if j.status == StatusDone {
		v.ResultURL = fmt.Sprintf("/api/v1/jobs/%s/result", j.id)
	}
	v.Peer = j.remoteAddr
	return v
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // nothing useful to do with a write error mid-response
}

// APIError is the uniform error body of every non-2xx JSON response on the
// /api/v1 surface (and the cluster peer protocol): a stable machine-readable
// code, a human-readable message, and — on back-pressure responses that also
// carry a Retry-After header — the retry hint echoed as a field.
type APIError struct {
	Code              string `json:"code"`
	Message           string `json:"message"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
}

// defaultErrorCode maps an HTTP status to the envelope code used when the
// handler has no more specific one.
func defaultErrorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusTooManyRequests:
		return "queue_full"
	case http.StatusServiceUnavailable:
		return "draining"
	case http.StatusConflict:
		return "conflict"
	case http.StatusGone:
		return "job_gone"
	default:
		return "internal"
	}
}

// writeAPIError writes the error envelope. A positive retryAfterSeconds also
// sets the Retry-After header, so the header and the body hint never drift.
func writeAPIError(w http.ResponseWriter, status int, code string, retryAfterSeconds int, err error) {
	if retryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	}
	writeJSON(w, status, map[string]APIError{"error": {
		Code: code, Message: err.Error(), RetryAfterSeconds: retryAfterSeconds,
	}})
}

// writeError is writeAPIError with the status-derived default code and no
// retry hint.
func writeError(w http.ResponseWriter, status int, err error) {
	writeAPIError(w, status, defaultErrorCode(status), 0, err)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	// The header wins over the body field: proxies injecting tenant
	// identity must not be overridden by the payload.
	if t := r.Header.Get(TenantHeader); t != "" {
		req.Tenant = t
	}
	// A submission a peer already routed here must run here: re-forwarding
	// it could loop. Plain client submissions are free to be routed.
	routed := r.Header.Get(cluster.RoutedHeader) != ""
	j, err := s.submit(r.Context(), &req, routed, false)
	if err != nil {
		var se *submitError
		if errors.As(err, &se) {
			code := defaultErrorCode(se.code)
			if se.apiCode != "" {
				code = se.apiCode
			}
			retry := se.retryAfter
			if retry == 0 && (se.code == http.StatusTooManyRequests ||
				se.code == http.StatusServiceUnavailable) {
				// Back-pressure: tell well-behaved clients when to retry.
				retry = 1
			}
			writeAPIError(w, se.code, code, retry, se.err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	v, _ := s.snapshot(j.id)
	writeJSON(w, http.StatusAccepted, viewOf(&v))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.list()
	views := make([]jobView, len(jobs))
	for i := range jobs {
		views[i] = viewOf(&jobs[i])
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.snapshot(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, viewOf(&j))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.snapshot(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	switch j.status {
	case StatusDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(j.result)
	case StatusFailed, StatusCanceled:
		writeError(w, http.StatusGone, fmt.Errorf("job %s %s: %s", j.id, j.status, j.errMsg))
	default:
		// Not ready yet; point the client back at the status endpoint.
		writeAPIError(w, http.StatusConflict, "not_ready", 1,
			fmt.Errorf("job %s is %s", j.id, j.status))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Cancel(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", id))
		return
	}
	j, _ := s.snapshot(id)
	writeJSON(w, http.StatusOK, map[string]any{
		"id": id, "status_at_cancel": st, "job": viewOf(&j),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Mirror counters (cache, progress) track external sources; raise them
	// to the authoritative values before rendering so a scrape is never
	// stale.
	s.syncMirroredMetrics()
	w.Header().Set("Content-Type", metrics.ContentType)
	s.reg.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	n := len(s.jobs)
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"status": status, "jobs": n})
}

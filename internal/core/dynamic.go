package core

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/distrib"
	"repro/internal/engine"
	"repro/internal/memory"
	"repro/internal/raster"
	"repro/internal/trace"
)

// DynamicOrder selects how the dynamic scheduler hands out tiles.
type DynamicOrder int

const (
	// DynamicScreenOrder dispenses tiles in row-major screen order (what a
	// simple hardware tile queue would do).
	DynamicScreenOrder DynamicOrder = iota
	// DynamicLPT dispenses tiles longest-estimated-work first, the classic
	// list-scheduling heuristic; an upper bound on what a smarter queue
	// could achieve.
	DynamicLPT
)

// String names the order.
func (o DynamicOrder) String() string {
	switch o {
	case DynamicScreenOrder:
		return "screen-order"
	case DynamicLPT:
		return "LPT"
	default:
		return fmt.Sprintf("DynamicOrder(%d)", int(o))
	}
}

// SimulateDynamic evaluates the paper's §9 future-work question: how much
// would *dynamic* tile assignment buy over static interleaving? The screen
// is cut into the same square tiles as the block distribution, but instead
// of a hard-coded interleave, idle processors pull whole tiles from a shared
// queue. Each tile's triangle order is preserved, and tiles are disjoint
// screen regions, so strict per-pixel OpenGL ordering still holds.
//
// The model assumes the whole frame is buffered before scheduling (the
// upper bound the paper asks about — a real PC accelerator cannot do this,
// which is exactly why the paper's machines are static). Only block tiles
// are supported; cfg.Distribution must be BlockKind.
func SimulateDynamic(scene *trace.Scene, cfg Config, order DynamicOrder) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Distribution != distrib.BlockKind {
		return nil, fmt.Errorf("core: dynamic scheduling supports block tiles only")
	}
	if err := scene.Validate(); err != nil {
		return nil, err
	}
	mgr, err := scene.BuildTextures()
	if err != nil {
		return nil, err
	}

	// Bin the frame into tiles: per tile, the triangle work in submission
	// order plus a work estimate for LPT.
	w := cfg.TileSize
	tilesX := (scene.Screen.Width() + w - 1) / w
	tilesY := (scene.Screen.Height() + w - 1) / w
	nTiles := tilesX * tilesY
	type tileBin struct {
		id    int
		work  []engine.TriangleWork
		est   float64
		first int // submission index of first triangle, for stable ties
	}
	bins := make([]tileBin, nTiles)
	for i := range bins {
		bins[i] = tileBin{id: i, first: len(scene.Triangles)}
	}
	rast := raster.New(scene.Screen)
	segs := make(map[int][]raster.Span) // per-tile scratch for one triangle
	for ti := range scene.Triangles {
		t := &scene.Triangles[ti]
		bb := t.BBox().Intersect(scene.Screen)
		if bb.Empty() {
			continue
		}
		for k := range segs {
			delete(segs, k)
		}
		rast.ForEachSpan(*t, scene.Screen, func(sp raster.Span) {
			ty := (sp.Y - scene.Screen.Y0) / w
			for x := sp.X0; x < sp.X1; {
				tx := (x - scene.Screen.X0) / w
				end := scene.Screen.X0 + (tx+1)*w
				if end > sp.X1 {
					end = sp.X1
				}
				id := ty*tilesX + tx
				segs[id] = append(segs[id], raster.Span{Y: sp.Y, X0: x, X1: end})
				x = end
			}
		})
		// Route by bbox: tiles the bbox touches receive the triangle even
		// with zero owned pixels (setup cost), as in the static machine.
		tx0 := (bb.X0 - scene.Screen.X0) / w
		tx1 := (bb.X1 - 1 - scene.Screen.X0) / w
		ty0 := (bb.Y0 - scene.Screen.Y0) / w
		ty1 := (bb.Y1 - 1 - scene.Screen.Y0) / w
		tex := mgr.Texture(t.TexID)
		lod := t.Tex.LOD()
		for ty := ty0; ty <= ty1; ty++ {
			for tx := tx0; tx <= tx1; tx++ {
				id := ty*tilesX + tx
				var owned []raster.Span
				if s := segs[id]; len(s) > 0 {
					owned = append(owned, s...)
				}
				b := &bins[id]
				b.work = append(b.work, engine.TriangleWork{
					Tex: tex, Map: t.Tex, LOD: lod, Segments: owned,
				})
				px := 0
				for _, sp := range owned {
					px += sp.Width()
				}
				est := float64(px)
				if est < float64(cfg.SetupCycles) {
					est = float64(cfg.SetupCycles)
				}
				b.est += est
				if ti < b.first {
					b.first = ti
				}
			}
		}
	}

	// Queue order.
	queue := make([]*tileBin, 0, nTiles)
	for i := range bins {
		if len(bins[i].work) > 0 {
			queue = append(queue, &bins[i])
		}
	}
	if order == DynamicLPT {
		sort.SliceStable(queue, func(i, j int) bool { return queue[i].est > queue[j].est })
	}

	// Greedy dispatch: each tile goes to the processor that frees first.
	engines := make([]*engine.Engine, cfg.Procs)
	for i := range engines {
		var c cache.Model
		switch cfg.CacheKind {
		case CachePerfect:
			c = cache.NewPerfect()
		case CacheNone:
			c = cache.NewNone()
		default:
			c = cache.New(cfg.CacheConfig)
		}
		e := engine.NewWithPrefetch(i, cfg.SetupCycles, cfg.PrefetchDepth, c, memory.NewBus(cfg.Bus))
		if cfg.HasL2() {
			e.AttachL2(cache.New(cfg.L2Config), memory.NewBus(cfg.MainBus))
		}
		engines[i] = e
	}
	for _, tb := range queue {
		best := 0
		for i := 1; i < len(engines); i++ {
			if engines[i].Time() < engines[best].Time() {
				best = i
			}
		}
		e := engines[best]
		for k := range tb.work {
			e.ProcessTriangle(e.Time(), &tb.work[k])
		}
	}

	res := &Result{Config: cfg, Scene: scene.Name}
	for _, e := range engines {
		st := e.Stats()
		nr := NodeResult{
			Fragments:   st.Fragments,
			Triangles:   st.Triangles,
			SetupBound:  st.SetupBound,
			StallCycles: st.StallCycles,
			BusyCycles:  st.BusyCycles,
			FinishTime:  e.Time(),
			Cache:       e.CacheStats(),
			Bus:         e.BusStats(),
			L2:          e.L2Stats(),
			MainBus:     e.MainBusStats(),
		}
		res.Nodes = append(res.Nodes, nr)
		res.Fragments += st.Fragments
		res.TrianglesRouted += st.Triangles
		if e.Time() > res.Cycles {
			res.Cycles = e.Time()
		}
	}
	return res, nil
}

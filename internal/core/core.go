// Package core implements the paper's parallel sort-middle texture-mapping
// machine: N commodity-accelerator nodes, each with a private texture cache
// and texture memory, fed triangles in strict OpenGL order by an ideal
// geometry stage through bounded per-node triangle FIFOs.
//
// The screen is statically partitioned by a distrib.Distribution (square
// blocks or SLI, interleaved). Each triangle is rasterized once and its
// fragments demultiplexed to the owning nodes; a node whose tiles intersect
// the triangle's bounding box receives the triangle even if it ends up
// owning no fragment, and pays at least the triangle setup cost — the
// small-triangle overhead of the paper's section 2.3.
//
// The simulation is event-driven on the sim kernel: one event per
// (triangle, node), with the node-internal pixel pipeline timed by
// internal/engine. The distributor back-pressures on full FIFOs, which is
// what couples nodes together and makes the triangle-buffer-size experiment
// (paper §8) meaningful.
package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/distrib"
	"repro/internal/engine"
	"repro/internal/memory"
	"repro/internal/raster"
	"repro/internal/sim"
	"repro/internal/telemetry/flight"
	"repro/internal/texture"
	"repro/internal/trace"
)

// CacheKind selects the per-node texture cache model.
type CacheKind int

const (
	// CacheReal is a set-associative cache (paper default: 16 KB 4-way).
	CacheReal CacheKind = iota
	// CachePerfect always hits; the paper's perfect cache for isolating
	// load balancing.
	CachePerfect
	// CacheNone always misses (line-granularity traffic).
	CacheNone
)

// String returns a short identifier for the cache kind.
func (k CacheKind) String() string {
	switch k {
	case CacheReal:
		return "real"
	case CachePerfect:
		return "perfect"
	case CacheNone:
		return "none"
	default:
		return fmt.Sprintf("CacheKind(%d)", int(k))
	}
}

// DefaultTriangleBuffer is the "big enough" triangle FIFO the paper assumes
// everywhere except its buffering study (§8).
const DefaultTriangleBuffer = 10000

// Config describes one machine configuration.
type Config struct {
	// Procs is the number of texture-mapping nodes.
	Procs int
	// Distribution selects block or SLI screen partitioning.
	Distribution distrib.Kind
	// TileSize is the block width in pixels (block) or the number of
	// adjacent lines per group (SLI).
	TileSize int
	// CacheKind selects the per-node cache model; CacheConfig applies only
	// to CacheReal and defaults to the paper's 16 KB 4-way when zero.
	CacheKind   CacheKind
	CacheConfig cache.Config
	// Bus is the per-node texture bus; zero TexelsPerCycle means infinite.
	Bus memory.BusConfig
	// TriangleBuffer is the per-node triangle FIFO depth; 0 means
	// DefaultTriangleBuffer.
	TriangleBuffer int
	// SetupCycles is the triangle setup cost; 0 means the paper's 25.
	SetupCycles int
	// PrefetchDepth is the fragment-FIFO depth hiding memory latency; 0
	// means engine.DefaultPrefetchDepth.
	PrefetchDepth int

	// L2Config, when non-zero, adds a second-level texture cache per node
	// (the graphics-card memory, per the paper's §9 future work and Cox's
	// multi-level caching study). MainBus is then the bandwidth from main
	// memory into the L2 (zero TexelsPerCycle = infinite).
	L2Config cache.Config
	MainBus  memory.BusConfig
}

// withDefaults returns cfg with zero fields replaced by paper defaults.
func (c Config) withDefaults() Config {
	if c.TileSize == 0 {
		c.TileSize = 16
	}
	if c.CacheKind == CacheReal && c.CacheConfig == (cache.Config{}) {
		c.CacheConfig = cache.PaperConfig()
	}
	if c.TriangleBuffer == 0 {
		c.TriangleBuffer = DefaultTriangleBuffer
	}
	if c.SetupCycles == 0 {
		c.SetupCycles = engine.DefaultSetupCycles
	}
	if c.PrefetchDepth == 0 {
		c.PrefetchDepth = engine.DefaultPrefetchDepth
	}
	return c
}

// Validate rejects impossible configurations (after defaulting).
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Procs <= 0 {
		return fmt.Errorf("core: processor count %d must be positive", c.Procs)
	}
	if c.TileSize <= 0 {
		return fmt.Errorf("core: tile size %d must be positive", c.TileSize)
	}
	if c.TriangleBuffer <= 0 {
		return fmt.Errorf("core: triangle buffer %d must be positive", c.TriangleBuffer)
	}
	if c.CacheKind == CacheReal {
		if err := c.CacheConfig.Validate(); err != nil {
			return err
		}
	}
	if c.HasL2() {
		if err := c.L2Config.Validate(); err != nil {
			return err
		}
		if err := c.MainBus.Validate(); err != nil {
			return err
		}
	}
	return c.Bus.Validate()
}

// HasL2 reports whether the configuration includes a second-level cache.
func (c Config) HasL2() bool { return c.L2Config != (cache.Config{}) }

// Name returns a compact identifier like "block16/p64".
func (c Config) Name() string {
	c = c.withDefaults()
	return fmt.Sprintf("%s%d/p%d", c.Distribution, c.TileSize, c.Procs)
}

// NodeResult reports one node's counters after a run (for frame sequences,
// the counters are per frame).
type NodeResult struct {
	Fragments   uint64
	Triangles   uint64
	SetupBound  uint64
	StallCycles float64
	BusyCycles  float64
	FinishTime  float64
	Cache       cache.Stats
	Bus         memory.BusStats
	L2          cache.Stats     // zero without an L2
	MainBus     memory.BusStats // zero without an L2
	FIFOPeak    int
}

// sub returns the per-frame delta between two cumulative snapshots.
func (n NodeResult) sub(prev NodeResult) NodeResult {
	return NodeResult{
		Fragments:   n.Fragments - prev.Fragments,
		Triangles:   n.Triangles - prev.Triangles,
		SetupBound:  n.SetupBound - prev.SetupBound,
		StallCycles: n.StallCycles - prev.StallCycles,
		BusyCycles:  n.BusyCycles - prev.BusyCycles,
		FinishTime:  n.FinishTime,
		Cache: cache.Stats{Accesses: n.Cache.Accesses - prev.Cache.Accesses,
			Misses: n.Cache.Misses - prev.Cache.Misses},
		Bus: memory.BusStats{LinesFetched: n.Bus.LinesFetched - prev.Bus.LinesFetched,
			BusyCycles: n.Bus.BusyCycles - prev.Bus.BusyCycles},
		L2: cache.Stats{Accesses: n.L2.Accesses - prev.L2.Accesses,
			Misses: n.L2.Misses - prev.L2.Misses},
		MainBus: memory.BusStats{LinesFetched: n.MainBus.LinesFetched - prev.MainBus.LinesFetched,
			BusyCycles: n.MainBus.BusyCycles - prev.MainBus.BusyCycles},
		FIFOPeak: n.FIFOPeak,
	}
}

// Result is the outcome of simulating one scene on one configuration.
type Result struct {
	Config Config
	Scene  string
	// Cycles is the machine completion time: when the slowest node finishes.
	Cycles float64
	// Fragments is the total pixels drawn across nodes.
	Fragments uint64
	// TrianglesRouted counts (triangle, node) deliveries, including
	// zero-pixel routings.
	TrianglesRouted uint64
	Nodes           []NodeResult
}

// TexelToFragment returns the machine-wide external-bandwidth metric:
// texels fetched across all nodes per fragment drawn. For a single node this
// matches the paper's per-engine ratio; for N nodes it is the average demand
// each private bus must sustain relative to the work done.
func (r *Result) TexelToFragment() float64 {
	if r.Fragments == 0 {
		return 0
	}
	var texels uint64
	for i := range r.Nodes {
		texels += r.Nodes[i].Bus.TexelsFetched()
	}
	return float64(texels) / float64(r.Fragments)
}

// PixelImbalance returns (busiest − average)/average of per-node fragment
// counts, the paper's Figure 5 load-balancing metric, as a fraction (0.5 =
// 50 % imbalance).
func (r *Result) PixelImbalance() float64 {
	return imbalance(r.Nodes, func(n *NodeResult) float64 { return float64(n.Fragments) })
}

// WorkImbalance returns the same metric over pipeline busy cycles, which
// additionally captures setup overhead and cache stalls.
func (r *Result) WorkImbalance() float64 {
	return imbalance(r.Nodes, func(n *NodeResult) float64 { return n.BusyCycles })
}

func imbalance(nodes []NodeResult, metric func(*NodeResult) float64) float64 {
	if len(nodes) == 0 {
		return 0
	}
	maxV, sum := 0.0, 0.0
	for i := range nodes {
		v := metric(&nodes[i])
		sum += v
		if v > maxV {
			maxV = v
		}
	}
	if sum == 0 {
		return 0
	}
	avg := sum / float64(len(nodes))
	return maxV/avg - 1
}

// Machine is a configured parallel engine ready to render scenes.
type Machine struct {
	cfg     Config
	scene   *trace.Scene
	dist    distrib.Distribution
	rast    *raster.Rasterizer
	mgr     *texture.Manager
	engines []*engine.Engine
	// lastFIFOPeaks holds the per-node triangle-FIFO peak occupancy of the
	// most recent frame.
	lastFIFOPeaks []int
	// flight, when non-nil, records every node's per-phase cycle timeline.
	flight *flight.Recorder
	// nodePar bounds the parallel kernel's workers (see SetNodeParallelism);
	// 0 means runtime.GOMAXPROCS(0), 1 forces the event-driven kernel.
	nodePar int
	// artifact, when non-nil, replaces rasterization with replay of a
	// prebuilt raster artifact (see SetRasterArtifact).
	artifact *RasterArtifact
	// parallelFrames counts frames simulated by the parallel kernel, so
	// tests can assert which kernel actually ran.
	parallelFrames int
}

// NewMachine builds a machine for the scene. The scene's texture table is
// replicated into every node's private texture memory (the paper's model:
// each node holds all textures).
func NewMachine(scene *trace.Scene, cfg Config) (*Machine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := scene.Validate(); err != nil {
		return nil, err
	}
	d, err := distrib.New(cfg.Distribution, scene.Screen, cfg.Procs, cfg.TileSize)
	if err != nil {
		return nil, err
	}
	mgr, err := scene.BuildTextures()
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:   cfg,
		scene: scene,
		dist:  d,
		rast:  raster.New(scene.Screen),
		mgr:   mgr,
	}
	for i := 0; i < cfg.Procs; i++ {
		var c cache.Model
		switch cfg.CacheKind {
		case CachePerfect:
			c = cache.NewPerfect()
		case CacheNone:
			c = cache.NewNone()
		default:
			c = cache.New(cfg.CacheConfig)
		}
		bus := memory.NewBus(cfg.Bus)
		e := engine.NewWithPrefetch(i, cfg.SetupCycles, cfg.PrefetchDepth, c, bus)
		if cfg.HasL2() {
			e.AttachL2(cache.New(cfg.L2Config), memory.NewBus(cfg.MainBus))
		}
		m.engines = append(m.engines, e)
	}
	return m, nil
}

// EnableFlightRecorder attaches a flight recorder to every node and returns
// it: subsequent runs record each node's cycles as setup/scan/stall/idle
// phase timelines (see internal/telemetry/flight). interval is the bucket
// width in cycles (0 = auto). The recorder is reset at the start of every
// run, so it always holds the most recent run's timeline.
func (m *Machine) EnableFlightRecorder(interval float64) *flight.Recorder {
	m.flight = flight.New(m.cfg.Procs, interval)
	for i, e := range m.engines {
		e.SetRecorder(m.flight.Node(i))
	}
	return m.flight
}

// Run simulates the whole scene and returns the result. Run is
// deterministic; calling it again re-runs from a cold machine.
func (m *Machine) Run() *Result {
	res, err := m.RunContext(context.Background()) //texlint:ignore ctxfirst Run is the documented uncancellable shim over RunContext
	if err != nil {
		// The machine's own scene always passes the sequence checks, and a
		// background context is never cancelled.
		panic(err)
	}
	return res
}

// RunContext is Run with cancellation: the simulation polls ctx between
// event batches and returns ctx.Err() mid-frame when it fires.
func (m *Machine) RunContext(ctx context.Context) (*Result, error) {
	results, err := m.RunSequenceContext(ctx, []*trace.Scene{m.scene})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// RunSequence simulates consecutive frames that share the machine's texture
// table, WITHOUT resetting the caches between frames — the inter-frame
// locality setting of the paper's §9 future-work discussion. Frames are
// separated by an end-of-frame barrier (buffer swap): every node idles
// until the slowest finishes before the next frame's triangles flow.
// Returned results hold per-frame counters and cycles.
func (m *Machine) RunSequence(frames []*trace.Scene) ([]*Result, error) {
	return m.RunSequenceContext(context.Background(), frames) //texlint:ignore ctxfirst RunSequence is the documented uncancellable shim over RunSequenceContext
}

// RunSequenceContext is RunSequence with cancellation; see RunContext.
func (m *Machine) RunSequenceContext(ctx context.Context, frames []*trace.Scene) ([]*Result, error) {
	for i, f := range frames {
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("core: frame %d: %w", i, err)
		}
		if len(f.Textures) != len(m.scene.Textures) {
			return nil, fmt.Errorf("core: frame %d has %d textures, machine was built with %d",
				i, len(f.Textures), len(m.scene.Textures))
		}
		for j, ts := range f.Textures {
			if ts != m.scene.Textures[j] {
				return nil, fmt.Errorf("core: frame %d texture %d is %v, machine has %v",
					i, j, ts, m.scene.Textures[j])
			}
		}
	}
	if m.artifact != nil {
		if err := m.checkArtifactFrames(frames); err != nil {
			return nil, err
		}
	}
	for _, e := range m.engines {
		e.Reset()
	}
	if m.flight != nil {
		m.flight.Reset()
	}
	prev := make([]NodeResult, m.cfg.Procs)
	frameStart := 0.0
	var results []*Result
	for fi, f := range frames {
		if err := m.runFrame(ctx, fi, f); err != nil {
			return nil, err
		}
		res := &Result{Config: m.cfg, Scene: f.Name}
		frameEnd := frameStart
		for i, e := range m.engines {
			cum := m.snapshot(i)
			nr := cum.sub(prev[i])
			prev[i] = cum
			res.Nodes = append(res.Nodes, nr)
			res.Fragments += nr.Fragments
			res.TrianglesRouted += nr.Triangles
			if e.Time() > frameEnd {
				frameEnd = e.Time()
			}
		}
		res.Cycles = frameEnd - frameStart
		results = append(results, res)
		// End-of-frame barrier: all nodes wait for the buffer swap.
		for i, e := range m.engines {
			e.AdvanceTo(frameEnd)
			if m.flight != nil {
				// The barrier wait is idle time: pad every node to the
				// frame end so phase totals sum to the machine cycles.
				m.flight.Node(i).AdvanceIdle(frameEnd)
			}
		}
		frameStart = frameEnd
	}
	return results, nil
}

// cancelCheckEvents is how many simulation events fire between context
// polls: frequent enough that cancellation lands within microseconds of real
// time, rare enough to stay invisible in profiles.
const cancelCheckEvents = 1 << 14

// runFrame simulates frame fi's triangle stream, dispatching to the
// parallel kernel (parallel.go) when the triangle FIFOs provably never
// back-pressure, and to the coupled event-driven kernel otherwise. Both
// kernels produce byte-identical results; the event kernel is the reference.
// With a raster artifact attached, the same dispatch replays the artifact's
// frame instead of rasterizing (artifact.go), again byte-identically.
func (m *Machine) runFrame(ctx context.Context, fi int, f *trace.Scene) error {
	if m.artifact != nil {
		return m.runFrameArtifact(ctx, m.artifact.Frames[fi])
	}
	if m.parallelEligible() {
		ran, err := m.runFrameParallel(ctx, f)
		if ran || err != nil {
			return err
		}
	}
	return m.runFrameEvents(ctx, f)
}

// runSim drives an event simulation to completion, polling ctx between
// batches of cancelCheckEvents events; an uncancellable context runs the
// tight loop.
func runSim(ctx context.Context, s *sim.Simulator) error {
	if ctx.Done() == nil {
		s.Run()
		return nil
	}
	for {
		ran := false
		for i := 0; i < cancelCheckEvents; i++ {
			if !s.Step() {
				break
			}
			ran = true
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if !ran {
			return nil
		}
	}
}

// runFrameEvents drives the event simulation of one frame's triangle stream.
// A cancelled context abandons the frame mid-flight and leaves the machine in
// an undefined (but safely reusable-after-Reset) state.
func (m *Machine) runFrameEvents(ctx context.Context, f *trace.Scene) error {
	s := sim.New()
	d := newDistributor(s, m, f)
	nodes := make([]*nodeProc, m.cfg.Procs)
	for i := range nodes {
		nodes[i] = &nodeProc{sim: s, engine: m.engines[i], fifo: d.fifos[i]}
	}
	s.At(0, d.step)
	for _, n := range nodes {
		s.At(0, n.step)
	}
	if err := runSim(ctx, s); err != nil {
		return err
	}
	if !d.done || d.next != len(f.Triangles) {
		panic(fmt.Sprintf("core: simulation deadlock: distributed %d of %d triangles",
			d.next, len(f.Triangles)))
	}
	m.lastFIFOPeaks = m.lastFIFOPeaks[:0]
	for _, fifo := range d.fifos {
		m.lastFIFOPeaks = append(m.lastFIFOPeaks, fifo.Peak)
	}
	return nil
}

// snapshot captures node i's cumulative counters.
func (m *Machine) snapshot(i int) NodeResult {
	e := m.engines[i]
	st := e.Stats()
	peak := 0
	if i < len(m.lastFIFOPeaks) {
		peak = m.lastFIFOPeaks[i]
	}
	return NodeResult{
		Fragments:   st.Fragments,
		Triangles:   st.Triangles,
		SetupBound:  st.SetupBound,
		StallCycles: st.StallCycles,
		BusyCycles:  st.BusyCycles,
		FinishTime:  e.Time(),
		Cache:       e.CacheStats(),
		Bus:         e.BusStats(),
		L2:          e.L2Stats(),
		MainBus:     e.MainBusStats(),
		FIFOPeak:    peak,
	}
}

// Simulate is the one-call convenience: build a machine and run the scene.
func Simulate(scene *trace.Scene, cfg Config) (*Result, error) {
	return SimulateContext(context.Background(), scene, cfg) //texlint:ignore ctxfirst Simulate is the documented uncancellable shim over SimulateContext
}

// SimulateContext is Simulate with cancellation: long simulations return
// ctx.Err() mid-run when the context fires.
func SimulateContext(ctx context.Context, scene *trace.Scene, cfg Config) (*Result, error) {
	m, err := NewMachine(scene, cfg)
	if err != nil {
		return nil, err
	}
	return m.RunContext(ctx)
}

// Speedup runs the scene on 1 processor and on cfg, returning T1/TN along
// with both results. The single-processor baseline keeps every other
// parameter of cfg (cache, bus, buffer) identical, as the paper does.
func Speedup(scene *trace.Scene, cfg Config) (speedup float64, single, parallel *Result, err error) {
	return SpeedupContext(context.Background(), scene, cfg) //texlint:ignore ctxfirst Speedup is the documented uncancellable shim over SpeedupContext
}

// SpeedupContext is Speedup with cancellation.
func SpeedupContext(ctx context.Context, scene *trace.Scene, cfg Config) (speedup float64, single, parallel *Result, err error) {
	base := cfg
	base.Procs = 1
	single, err = SimulateContext(ctx, scene, base)
	if err != nil {
		return 0, nil, nil, err
	}
	parallel, err = SimulateContext(ctx, scene, cfg)
	if err != nil {
		return 0, nil, nil, err
	}
	if parallel.Cycles == 0 {
		return 0, single, parallel, nil
	}
	return single.Cycles / parallel.Cycles, single, parallel, nil
}

// distributor feeds triangles in strict submission order to the routed
// nodes' FIFOs, blocking while any destination FIFO is full.
type distributor struct {
	sim   *sim.Simulator
	m     *Machine
	frame *trace.Scene
	fifos []*sim.FIFO[engine.TriangleWork]

	next    int   // next triangle index to distribute
	pending []int // remaining destinations of triangle `next`
	work    []engine.TriangleWork
	done    bool

	routeScratch []int
	spanScratch  [][]raster.Span
}

func newDistributor(s *sim.Simulator, m *Machine, frame *trace.Scene) *distributor {
	d := &distributor{
		sim:          s,
		m:            m,
		frame:        frame,
		routeScratch: make([]int, 0, m.cfg.Procs),
		spanScratch:  make([][]raster.Span, m.cfg.Procs),
		work:         make([]engine.TriangleWork, m.cfg.Procs),
	}
	for i := 0; i < m.cfg.Procs; i++ {
		d.fifos = append(d.fifos, sim.NewFIFO[engine.TriangleWork](s, m.cfg.TriangleBuffer))
	}
	return d
}

// step distributes triangles until a FIFO back-pressures, then re-arms on
// that FIFO's space event. Distribution is instantaneous in simulated time
// (ideal geometry stage and network), so all pushes happen at the stall-free
// front of the machine.
func (d *distributor) step(now sim.Time) {
	for {
		if len(d.pending) == 0 {
			if d.next == len(d.frame.Triangles) {
				d.done = true
				return
			}
			d.prepare(d.next)
			d.next++
			if len(d.pending) == 0 {
				continue // off-screen triangle: routed nowhere
			}
		}
		for len(d.pending) > 0 {
			dst := d.pending[0]
			if !d.fifos[dst].TryPush(d.work[dst]) {
				d.fifos[dst].WaitSpace(d.step)
				return
			}
			d.pending = d.pending[1:]
		}
	}
}

// prepare rasterizes triangle i once, demultiplexes its spans per owning
// node, and sets up the pending destination list.
func (d *distributor) prepare(i int) {
	t := &d.frame.Triangles[i]
	tex := d.m.mgr.Texture(t.TexID)
	lod := t.Tex.LOD()

	dests := d.m.dist.Route(t.BBox(), d.routeScratch[:0])
	for _, p := range dests {
		d.spanScratch[p] = d.spanScratch[p][:0]
	}
	d.m.rast.ForEachSpan(*t, d.frame.Screen, func(sp raster.Span) {
		d.m.dist.ForEachOwnedSegment(sp.Y, sp.X0, sp.X1, func(proc, x0, x1 int) {
			d.spanScratch[proc] = append(d.spanScratch[proc], raster.Span{Y: sp.Y, X0: x0, X1: x1})
		})
	})
	// One backing array holds every destination's segments for this
	// triangle, so a triangle costs one allocation however many nodes it
	// fans out to.
	total := 0
	for _, p := range dests {
		total += len(d.spanScratch[p])
	}
	var backing []raster.Span
	if total > 0 {
		backing = make([]raster.Span, 0, total)
	}
	d.pending = d.pending[:0]
	for _, p := range dests {
		segs := d.spanScratch[p]
		var owned []raster.Span
		if len(segs) > 0 {
			start := len(backing)
			backing = append(backing, segs...)
			owned = backing[start:len(backing):len(backing)]
		}
		d.work[p] = engine.TriangleWork{Tex: tex, Map: t.Tex, LOD: lod, Segments: owned}
		d.pending = append(d.pending, p)
	}
	d.routeScratch = dests[:0]
}

// nodeProc is one node's consumer loop on the sim kernel.
type nodeProc struct {
	sim    *sim.Simulator
	engine *engine.Engine
	fifo   *sim.FIFO[engine.TriangleWork]
}

func (n *nodeProc) step(now sim.Time) {
	w, ok := n.fifo.TryPop()
	if !ok {
		n.fifo.WaitItem(n.step)
		return
	}
	done := n.engine.ProcessTriangle(float64(now), &w)
	n.sim.At(sim.Time(math.Ceil(done)), n.step)
}

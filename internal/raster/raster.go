// Package raster implements the scanline triangle rasterizer of the simulated
// texture-mapping engine. Triangles are scanned row by row; each row yields a
// half-open span of covered pixels. Pixel (x, y) is covered when its center
// (x+0.5, y+0.5) lies inside the triangle, with a top-left fill rule so that
// triangles sharing an edge never draw the same pixel twice.
//
// The simulator rasterizes each triangle once and demultiplexes the spans to
// the processors that own the pixels, exactly mirroring the paper's
// hardware, in which every routed processor scans the triangle but clips away
// pixels outside its own tiles.
package raster

import (
	"math"

	"repro/internal/geom"
)

// Span is one rasterized row: pixels [X0, X1) on row Y.
type Span struct {
	Y      int
	X0, X1 int
}

// Width returns the number of pixels in the span.
func (s Span) Width() int { return s.X1 - s.X0 }

type edge struct {
	// Half-plane a*x + b*y + c ≥ 0 (CCW interior), with the top-left rule
	// deciding whether the boundary itself counts as inside.
	a, b, c   float64
	inclusive bool
}

// Rasterizer scans triangles clipped against a screen rectangle. The zero
// value is not usable; construct with New.
type Rasterizer struct {
	screen geom.Rect
}

// New returns a rasterizer clipping to the given screen rectangle.
func New(screen geom.Rect) *Rasterizer {
	return &Rasterizer{screen: screen}
}

// Screen returns the clip rectangle the rasterizer was built with.
func (r *Rasterizer) Screen() geom.Rect { return r.screen }

// makeEdges builds the three CCW half-planes of t, flipping winding if
// needed. It returns false for degenerate triangles.
func makeEdges(t geom.Triangle) ([3]edge, bool) {
	var e [3]edge
	if t.Degenerate() {
		return e, false
	}
	v := t.V
	if t.SignedArea() < 0 {
		v[1], v[2] = v[2], v[1]
	}
	for i := 0; i < 3; i++ {
		p, q := v[i], v[(i+1)%3]
		// With positive signed area, interior points s satisfy
		// (q-p) × (s-p) ≥ 0, i.e. a*x + b*y + c ≥ 0 with
		// a = -(q.Y - p.Y), b = (q.X - p.X).
		a := p.Y - q.Y
		b := q.X - p.X
		c := -(a*p.X + b*p.Y)
		// Top-left rule: an edge is "top" when it is horizontal and the
		// interior is below it (b > 0 after our sign convention means moving
		// down increases the function, so the interior is below); it is
		// "left" when a > 0 (interior to the right). Top and left edges own
		// their boundary pixels.
		inclusive := a > 0 || (a == 0 && b > 0)
		e[i] = edge{a: a, b: b, c: c, inclusive: inclusive}
	}
	return e, true
}

// ForEachSpan calls fn for every covered span of t inside clip (which is
// additionally intersected with the screen rectangle). Spans are emitted in
// scan order: increasing y, and each row at most once.
func (r *Rasterizer) ForEachSpan(t geom.Triangle, clip geom.Rect, fn func(Span)) {
	region := r.screen.Intersect(clip).Intersect(t.BBox())
	if region.Empty() {
		return
	}
	edges, ok := makeEdges(t)
	if !ok {
		return
	}
	for y := region.Y0; y < region.Y1; y++ {
		yc := float64(y) + 0.5
		// Intersect the three half-planes with the row line to get the real
		// interval of x pixel centers inside the triangle.
		lo := float64(region.X0) + 0.5
		hi := float64(region.X1-1) + 0.5
		empty := false
		for _, e := range edges {
			rhs := -(e.b*yc + e.c)
			switch {
			case e.a > 0:
				x := rhs / e.a
				if !e.inclusive {
					x = math.Nextafter(x, math.Inf(1))
				}
				if x > lo {
					lo = x
				}
			case e.a < 0:
				x := rhs / e.a
				if !e.inclusive {
					x = math.Nextafter(x, math.Inf(-1))
				}
				if x < hi {
					hi = x
				}
			default:
				// Horizontal boundary: the whole row is in or out.
				val := e.b*yc + e.c
				if val < 0 || (val == 0 && !e.inclusive) {
					empty = true
				}
			}
			if empty {
				break
			}
		}
		if empty || lo > hi {
			continue
		}
		x0 := int(math.Ceil(lo - 0.5))
		x1 := int(math.Floor(hi-0.5)) + 1
		if x0 < region.X0 {
			x0 = region.X0
		}
		if x1 > region.X1 {
			x1 = region.X1
		}
		if x0 < x1 {
			fn(Span{Y: y, X0: x0, X1: x1})
		}
	}
}

// AppendSpans appends every covered span of t inside clip to dst and returns
// the extended slice, in the same scan order as ForEachSpan. Passing a
// buffer truncated to zero length (dst[:0]) makes repeated rasterization
// allocation-free once the buffer has grown to the working-set size — the
// reusable span buffer of the simulator's per-triangle hot path.
func (r *Rasterizer) AppendSpans(t geom.Triangle, clip geom.Rect, dst []Span) []Span {
	r.ForEachSpan(t, clip, func(s Span) {
		dst = append(dst, s)
	})
	return dst
}

// PixelCount returns the number of pixels of t covered inside clip.
func (r *Rasterizer) PixelCount(t geom.Triangle, clip geom.Rect) int {
	n := 0
	r.ForEachSpan(t, clip, func(s Span) { n += s.Width() })
	return n
}

// CoverageMask returns the covered pixels of t inside clip as a set keyed by
// (x, y). Intended for tests and validation, not the hot path.
func (r *Rasterizer) CoverageMask(t geom.Triangle, clip geom.Rect) map[[2]int]bool {
	m := make(map[[2]int]bool)
	r.ForEachSpan(t, clip, func(s Span) {
		for x := s.X0; x < s.X1; x++ {
			m[[2]int{x, s.Y}] = true
		}
	})
	return m
}

// Command texsweep runs custom parameter sweeps over the simulator and
// emits one row per configuration — the open-ended counterpart of
// texbench's fixed paper experiments. Rows are the same structures the
// texsimd service returns, so a CSV sweep and an HTTP sweep job with the
// same spec agree exactly.
//
// Example: reproduce the spirit of Figure 7 for one scene, eight
// simulations at a time:
//
//	texsweep -scene truc640 -scale 0.5 -procs 4,16,64 \
//	         -dist block -sizes 4,8,16,32,64 -bus 1 -par 8 -o sweep.csv
//
// Add -json for the service's JSON document instead of CSV.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro/internal/cliutil"
	"repro/internal/resultcache"
	"repro/internal/sweep"
	"repro/internal/telemetry/progress"
)

// cacheMark annotates a -progress line for a row served without simulating.
func cacheMark(hit bool) string {
	if hit {
		return " (cache)"
	}
	return ""
}

// writeOnlyRows wraps a checkpoint store so every read misses: rows are
// persisted for a later -resume run without this run reading any back.
type writeOnlyRows struct {
	sweep.RowStore
}

func (writeOnlyRows) Get(string) ([]byte, bool) { return nil, false }

func main() {
	var (
		sceneName = flag.String("scene", "truc640", "benchmark scene")
		scale     = flag.Float64("scale", 0.5, "resolution scale")
		procsList = flag.String("procs", "1,4,16,64", "processor counts (comma-separated)")
		dist      = flag.String("dist", "block", "distribution: block, sli or blockskewed")
		sizesList = flag.String("sizes", "4,8,16,32,64", "tile sizes (comma-separated)")
		busRatio  = flag.Float64("bus", 1, "bus texels per pixel-cycle (0 = infinite)")
		cacheKind = flag.String("cache", "real", "cache model: real, perfect or none")
		buffer    = flag.Int("buffer", 0, "triangle buffer entries (0 = paper default)")
		cacheList = flag.String("caches", "", "cache sizes in KB to sweep (comma-separated; requires the real cache model)")
		busList   = flag.String("buses", "", "bus ratios to sweep (comma-separated; replaces -bus)")
		bufList   = flag.String("buffers", "", "triangle buffer sizes to sweep (comma-separated; replaces -buffer)")
		noMemo    = flag.Bool("no-memo", false, "disable cross-configuration raster memoization (identical output, more rasterization work)")
		par       = flag.Int("par", 1, "concurrent simulations")
		nodePar   = flag.Int("node-par", 0, "worker bound for each simulation's parallel node kernel (0 = share -par budget, 1 = force the event-driven kernel)")
		asJSON    = flag.Bool("json", false, "emit the full JSON document instead of CSV")
		outPath   = flag.String("o", "", "output file (default stdout)")
		flightDir = flag.String("flight", "", "record per-node phase timelines and write one Chrome trace-event JSON file per configuration into this directory (load in Perfetto)")
		flightInt = flag.Float64("flight-interval", 0, "flight recorder bucket width in cycles (0 = auto)")
		progFlag  = flag.Bool("progress", false, "print each configuration's completion to stderr as the sweep runs")
		ckptDir   = flag.String("checkpoint-dir", "", "persist each completed row here as it lands (a killed sweep can be resumed with -resume)")
		resume    = flag.Bool("resume", false, "restore completed rows from -checkpoint-dir instead of re-simulating them")
	)
	flag.Parse()

	procs, err := cliutil.ParsePositiveIntList(*procsList)
	if err != nil {
		cliutil.Fail("texsweep", fmt.Errorf("-procs: %w", err))
	}
	sizes, err := cliutil.ParsePositiveIntList(*sizesList)
	if err != nil {
		cliutil.Fail("texsweep", fmt.Errorf("-sizes: %w", err))
	}
	if *par < 0 {
		cliutil.Usage("texsweep", fmt.Sprintf("-par %d must be non-negative", *par))
	}
	if *nodePar < 0 {
		cliutil.Usage("texsweep", fmt.Sprintf("-node-par %d must be non-negative", *nodePar))
	}
	// 0 is the auto default, so explicitly asking for <= 0 is always a
	// mistake (a typo'd unit, usually) rather than a request for auto.
	// An axis flag replaces its scalar twin; naming both is ambiguous.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) {
		set[f.Name] = true
		if f.Name == "flight-interval" && *flightInt <= 0 {
			cliutil.Usage("texsweep", fmt.Sprintf("-flight-interval %v must be positive", *flightInt))
		}
	})
	if set["buses"] && set["bus"] {
		cliutil.Usage("texsweep", "-buses and -bus are mutually exclusive")
	}
	if set["buffers"] && set["buffer"] {
		cliutil.Usage("texsweep", "-buffers and -buffer are mutually exclusive")
	}
	if *resume && *ckptDir == "" {
		cliutil.Usage("texsweep", "-resume requires -checkpoint-dir")
	}

	spec := sweep.Spec{
		Scene:  *sceneName,
		Scale:  *scale,
		Dist:   *dist,
		Procs:  procs,
		Sizes:  sizes,
		Bus:    *busRatio,
		Cache:  *cacheKind,
		Buffer: *buffer,
	}
	if *cacheList != "" {
		spec.Caches, err = cliutil.ParsePositiveIntList(*cacheList)
		if err != nil {
			cliutil.Fail("texsweep", fmt.Errorf("-caches: %w", err))
		}
	}
	if *busList != "" {
		spec.Buses, err = cliutil.ParseNonNegativeFloatList(*busList)
		if err != nil {
			cliutil.Fail("texsweep", fmt.Errorf("-buses: %w", err))
		}
		spec.Bus = 0 // the axis replaces the unset scalar default
	}
	if *bufList != "" {
		spec.Buffers, err = cliutil.ParsePositiveIntList(*bufList)
		if err != nil {
			cliutil.Fail("texsweep", fmt.Errorf("-buffers: %w", err))
		}
	}
	if *flightDir != "" {
		spec.Flight = true
		spec.FlightInterval = *flightInt
	}
	cliutil.Check("texsweep", spec.Validate())

	// Ctrl-C / SIGTERM abandons the remaining configurations.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var plan sweep.PlanStats
	opts := sweep.RunOpts{
		Parallelism:     *par,
		NodeParallelism: *nodePar,
		NoMemo:          *noMemo,
		Plan:            &plan,
	}
	if *ckptDir != "" {
		rc, err := resultcache.New(resultcache.Config{Dir: *ckptDir, MaxEntries: 4096})
		cliutil.Check("texsweep", err)
		var store sweep.RowStore = rc.Namespace("sweeprow")
		if !*resume {
			// Without -resume the checkpoint directory is write-only: rows
			// still land for a later -resume run, but nothing previously
			// checkpointed feeds this one.
			store = writeOnlyRows{store}
		}
		opts.Rows = store
	}

	// -progress rides the same broker the texsimd SSE endpoint uses: the
	// engine publishes once, and a local goroutine prints each row event to
	// stderr as it lands.
	finishProgress := func(error) {}
	if *progFlag {
		b := progress.NewBroker()
		opts.Progress = progress.NewSink(b, "sweep")
		sub := b.Subscribe("sweep", 0)
		printed := make(chan struct{})
		go func() {
			defer close(printed)
			for {
				ev, ok := sub.Next(context.Background())
				if !ok || ev.Terminal() {
					return
				}
				fmt.Fprintf(os.Stderr, "texsweep: row %d/%d %s w%d p%d cycles=%.0f frags=%d%s %.2fs\n",
					ev.Row+1, ev.Total, spec.Dist, ev.Size, ev.Procs,
					ev.Cycles, ev.Frags, cacheMark(ev.CacheHit), ev.WallSeconds)
			}
		}()
		// Terminate the stream before cliutil.Check can exit, and wait for
		// the printer so no row line is lost.
		finishProgress = func(err error) {
			if err != nil {
				b.End("sweep", "failed", err.Error())
			} else {
				b.End("sweep", "done", "")
			}
			<-printed
		}
	}

	res, err := sweep.RunWith(ctx, spec, opts)
	finishProgress(err)
	cliutil.Check("texsweep", err)

	// One machine-parseable planner line per run: CI greps it to assert the
	// memoized path really rasterized less.
	fmt.Fprintf(os.Stderr, "texsweep: plan points=%d baselines=%d classes=%d rasterized=%d saved=%d checkpointed=%d memoized=%t\n",
		plan.Points, plan.Baselines, plan.Classes, plan.Rasterizations, plan.Saved, plan.Checkpointed, plan.Memoized)
	if *asJSON {
		res.Plan = &plan
	}

	if *flightDir != "" {
		cliutil.Check("texsweep", os.MkdirAll(*flightDir, 0o755))
		for _, f := range res.Flights {
			name := fmt.Sprintf("%s_%s%d_p%d.trace.json", spec.Scene, spec.Dist, f.Size, f.Procs)
			path := filepath.Join(*flightDir, name)
			cliutil.Check("texsweep", os.WriteFile(path, f.Trace, 0o644))
			var busy float64
			for _, n := range f.Summary {
				busy += n.Utilization
			}
			fmt.Fprintf(os.Stderr, "texsweep: wrote %s (%d nodes, mean utilization %.1f%%)\n",
				path, len(f.Summary), 100*busy/float64(len(f.Summary)))
		}
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		cliutil.Check("texsweep", err)
		defer f.Close()
		out = f
	}
	if *asJSON {
		cliutil.Check("texsweep", sweep.WriteJSON(out, res))
	} else {
		cliutil.Check("texsweep", sweep.WriteCSV(out, res.Rows))
	}
}

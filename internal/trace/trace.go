// Package trace defines the triangle-trace representation the simulator
// consumes. The paper drove its simulations with triangle traces captured
// from an instrumented Mesa library (screen-space triangles with their
// texture bindings, in strict OpenGL submission order); this package is the
// equivalent: an in-memory Scene plus a versioned binary file format so
// synthetic traces can be generated once and replayed, and the scene
// statistics of the paper's Table 1.
package trace

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/texture"
)

// TexSize records the base-level dimensions of one texture in a scene.
type TexSize struct {
	W, H int
}

// Scene is one frame's triangle trace: the screen it renders to, the texture
// table, and the textured triangles in submission order. Triangles reference
// textures by index into Textures.
type Scene struct {
	Name      string
	Screen    geom.Rect
	Textures  []TexSize
	Triangles []geom.Triangle
}

// Validate checks referential integrity: every triangle must reference an
// existing texture and the screen must be non-empty.
func (s *Scene) Validate() error {
	if s.Screen.Empty() {
		return fmt.Errorf("trace: scene %q has empty screen", s.Name)
	}
	if len(s.Textures) == 0 {
		return fmt.Errorf("trace: scene %q has no textures", s.Name)
	}
	for i, ts := range s.Textures {
		if ts.W <= 0 || ts.H <= 0 || ts.W&(ts.W-1) != 0 || ts.H&(ts.H-1) != 0 {
			return fmt.Errorf("trace: scene %q texture %d has bad dims %dx%d", s.Name, i, ts.W, ts.H)
		}
	}
	for i, t := range s.Triangles {
		if t.TexID < 0 || int(t.TexID) >= len(s.Textures) {
			return fmt.Errorf("trace: scene %q triangle %d references texture %d of %d",
				s.Name, i, t.TexID, len(s.Textures))
		}
	}
	return nil
}

// BuildTextures allocates the scene's texture table in a fresh texture
// memory, preserving indices, so triangle TexIDs address it directly.
func (s *Scene) BuildTextures() (*texture.Manager, error) {
	m := texture.NewManager()
	for i, ts := range s.Textures {
		if _, err := m.Add(ts.W, ts.H); err != nil {
			return nil, fmt.Errorf("trace: scene %q texture %d: %w", s.Name, i, err)
		}
	}
	return m, nil
}

// TextureBytes returns the total texture memory footprint of the scene,
// mipmap levels included (the paper's "Texture Used (MB)" column).
func (s *Scene) TextureBytes() (int, error) {
	m, err := s.BuildTextures()
	if err != nil {
		return 0, err
	}
	return m.TotalBytes(), nil
}

package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/scene"
	"repro/internal/stats"
)

// extL2Pans are the viewpoint pan distances (pixels per frame) swept by the
// inter-frame locality experiment.
// Pans are small relative to the screen so the scene stays on-screen over
// the whole sequence.
var extL2Pans = []float64{0, 4, 8, 16, 32, 64}

// extL2Tiles are the block widths compared: the paper's §9 argument is that
// the L2's usefulness depends on the pan distance *relative to the tile
// size*.
var extL2Tiles = []int{16, 64}

// RunExtL2 is the paper's §9 future work made concrete: per-node L2 texture
// caches (the graphics-card memory, after Cox) under viewpoint panning. A
// pan smaller than the tile keeps each node's next-frame texels in its own
// L2; a pan larger than the tile hands them to other nodes, whose L2s must
// reload them from main memory.
func RunExtL2(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	const sceneName = "massive11255"
	const procs = 16
	const frames = 3
	s, err := buildScene(ctx, sceneName, opt)
	if err != nil {
		return nil, err
	}

	// L2 sized to hold the scene's full working set comfortably: the effect
	// under study is redistribution across nodes, not L2 capacity.
	texBytes, err := s.TextureBytes()
	if err != nil {
		return nil, err
	}
	l2Bytes := 1 << 20
	for l2Bytes < 2*texBytes {
		l2Bytes <<= 1
	}
	l2 := cache.Config{SizeBytes: l2Bytes, Ways: 8, LineBytes: 64}

	type key struct {
		tile int
		pan  float64
	}
	type outcome struct {
		coldMain uint64  // frame-1 main-memory lines (compulsory)
		warmMain uint64  // mean frames-2+ main-memory lines
		l2Miss   float64 // warm-frame L2 miss rate
	}
	cells := make(map[key]outcome)
	var mu sync.Mutex
	var jobs []key
	for _, tile := range extL2Tiles {
		for _, pan := range extL2Pans {
			jobs = append(jobs, key{tile, pan})
		}
	}
	err = forEachParallel(ctx, opt.Parallelism, len(jobs), func(i int) error {
		k := jobs[i]
		m, err := core.NewMachine(s, core.Config{
			Procs: procs, Distribution: distrib.BlockKind, TileSize: k.tile,
			CacheKind: core.CacheReal, L2Config: l2,
		})
		if err != nil {
			return err
		}
		seq := scene.PanSequence(s, frames, k.pan, 0)
		results, err := m.RunSequenceContext(ctx, seq)
		if err != nil {
			return err
		}
		var out outcome
		var warmAcc, warmMiss uint64
		for fi, r := range results {
			var main uint64
			for ni := range r.Nodes {
				main += r.Nodes[ni].MainBus.LinesFetched
				if fi > 0 {
					warmAcc += r.Nodes[ni].L2.Accesses
					warmMiss += r.Nodes[ni].L2.Misses
				}
			}
			if fi == 0 {
				out.coldMain = main
			} else {
				out.warmMain += main
			}
		}
		out.warmMain /= uint64(frames - 1)
		if warmAcc > 0 {
			out.l2Miss = float64(warmMiss) / float64(warmAcc)
		}
		mu.Lock()
		cells[k] = out
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	var tables []*stats.Table
	for _, tile := range extL2Tiles {
		t := &stats.Table{
			Caption: fmt.Sprintf("%s, %d processors, block-%d, per-node L2 (%d KB): main-memory traffic under viewpoint panning",
				sceneName, procs, tile, l2Bytes/1024),
			Header: []string{"pan px/frame", "cold main lines", "warm main lines",
				"warm/cold", "warm L2 miss rate"},
		}
		for _, pan := range extL2Pans {
			o := cells[key{tile, pan}]
			ratio := 0.0
			if o.coldMain > 0 {
				ratio = float64(o.warmMain) / float64(o.coldMain)
			}
			t.AddRow(stats.F(pan, 0),
				fmt.Sprintf("%d", o.coldMain),
				fmt.Sprintf("%d", o.warmMain),
				stats.Pct(ratio),
				stats.Pct(o.l2Miss))
		}
		tables = append(tables, t)
	}

	return &Report{
		ID:    "ext-l2",
		Title: "Extension (§9 future work): inter-frame L2 texture locality vs viewpoint translation",
		Notes: []string{
			scaleNote(opt),
			"expect: warm-frame main traffic stays near zero while the pan is below the tile size, then grows — the larger the tile, the larger the pan it tolerates",
		},
		Table: tables,
	}, nil
}

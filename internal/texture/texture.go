// Package texture models the texture memory layout of the simulated 3D
// accelerator: mipmapped textures stored in a blocked ("texture blocking")
// layout where each 64-byte cache line holds a 4×4 block of 4-byte texels,
// the configuration Hakura and Gupta showed to work best with a 16 KB texture
// cache and which the paper adopts unchanged.
//
// Textures must have power-of-two dimensions (the universal constraint of
// late-90s mipmapped hardware); texel coordinates wrap (GL_REPEAT), matching
// how the game scenes the paper traces tile their wall and floor textures.
package texture

import (
	"fmt"
	"math"
)

const (
	// TexelBytes is the size of one texel (32-bit RGBA).
	TexelBytes = 4
	// LineBytes is the size of one cache line / memory burst.
	LineBytes = 64
	// BlockW is the width and height in texels of one blocked tile; a 4×4
	// block of 4-byte texels fills exactly one 64-byte line.
	BlockW = 4
	// LineTexels is the number of texels in one cache line.
	LineTexels = LineBytes / TexelBytes
)

// Addr is a byte address in the simulated texture memory. Texture memory per
// node is a few megabytes, so 32 bits are ample.
type Addr = uint32

type level struct {
	base      Addr
	w, h      uint32 // texel dimensions (powers of two)
	maskU     uint32 // w-1, for wrap
	maskV     uint32 // h-1
	blockRowW uint32 // blocks per row
}

// Texture is one mipmapped texture resident in texture memory.
type Texture struct {
	id     int32
	levels []level
	bytes  uint32 // total footprint including all mip levels
}

// ID returns the texture's identifier within its Manager.
func (t *Texture) ID() int32 { return t.id }

// Width returns the base-level width in texels.
func (t *Texture) Width() int { return int(t.levels[0].w) }

// Height returns the base-level height in texels.
func (t *Texture) Height() int { return int(t.levels[0].h) }

// NumLevels returns the number of mipmap levels (down to 1×1).
func (t *Texture) NumLevels() int { return len(t.levels) }

// Bytes returns the texture's total memory footprint, all levels included.
func (t *Texture) Bytes() int { return int(t.bytes) }

// LevelSize returns the texel dimensions of mip level l.
func (t *Texture) LevelSize(l int) (w, h int) {
	lv := t.levels[l]
	return int(lv.w), int(lv.h)
}

// AddressOf returns the byte address of texel (u, v) at mip level l, with
// wrap-around addressing. Addresses are stable for the lifetime of the
// Manager, so they can be fed directly to the cache simulator.
func (t *Texture) AddressOf(l int, u, v int32) Addr {
	lv := &t.levels[l]
	uu := uint32(u) & lv.maskU
	vv := uint32(v) & lv.maskV
	block := (vv/BlockW)*lv.blockRowW + uu/BlockW
	within := (vv%BlockW)*BlockW + uu%BlockW
	return lv.base + block*LineBytes + within*TexelBytes
}

// clampLevel limits l to the texture's mip chain.
func (t *Texture) clampLevel(l int) int {
	if l < 0 {
		return 0
	}
	if l >= len(t.levels) {
		return len(t.levels) - 1
	}
	return l
}

// BilinearFootprint writes the 4 texel addresses of a bilinear sample of
// (u, v) — base-level texel coordinates — at mip level l into out.
func (t *Texture) BilinearFootprint(l int, u, v float64, out []Addr) {
	l = t.clampLevel(l)
	// Convert base-level coordinates to this level's grid, sampling at texel
	// centers: the 2×2 neighborhood around (u/2^l - 0.5, v/2^l - 0.5).
	inv := 1.0 / float64(uint32(1)<<uint(l))
	lu := u*inv - 0.5
	lvv := v*inv - 0.5
	u0 := int32(math.Floor(lu))
	v0 := int32(math.Floor(lvv))
	out[0] = t.AddressOf(l, u0, v0)
	out[1] = t.AddressOf(l, u0+1, v0)
	out[2] = t.AddressOf(l, u0, v0+1)
	out[3] = t.AddressOf(l, u0+1, v0+1)
}

// TrilinearFootprint writes the 8 texel addresses a trilinear filter touches
// for base-level coordinates (u, v) at level-of-detail lod: a 2×2 bilinear
// footprint in each of the two bracketing mip levels. This is the "8 texels
// per pixel" cost the paper's bandwidth analysis is built on.
func (t *Texture) TrilinearFootprint(u, v, lod float64, out *[8]Addr) {
	l0 := int(lod)
	if lod < 0 {
		l0 = 0
	}
	l0 = t.clampLevel(l0)
	l1 := t.clampLevel(l0 + 1)
	t.BilinearFootprint(l0, u, v, out[0:4])
	t.BilinearFootprint(l1, u, v, out[4:8])
}

// Manager allocates textures in a single flat texture-memory address space,
// mirroring the paper's private per-node texture memory that holds all the
// scene's textures.
type Manager struct {
	textures []*Texture
	next     Addr
}

// NewManager returns an empty texture memory.
func NewManager() *Manager {
	return &Manager{}
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Add allocates a mipmapped texture of the given base dimensions and returns
// it. Dimensions must be powers of two.
func (m *Manager) Add(w, h int) (*Texture, error) {
	if !isPow2(w) || !isPow2(h) {
		return nil, fmt.Errorf("texture: dimensions %dx%d are not powers of two", w, h)
	}
	t := &Texture{id: int32(len(m.textures))}
	base := m.next
	lw, lh := uint32(w), uint32(h)
	for {
		blocksX := (lw + BlockW - 1) / BlockW
		blocksY := (lh + BlockW - 1) / BlockW
		t.levels = append(t.levels, level{
			base:      base,
			w:         lw,
			h:         lh,
			maskU:     lw - 1,
			maskV:     lh - 1,
			blockRowW: blocksX,
		})
		base += blocksX * blocksY * LineBytes
		if lw == 1 && lh == 1 {
			break
		}
		if lw > 1 {
			lw >>= 1
		}
		if lh > 1 {
			lh >>= 1
		}
	}
	t.bytes = base - m.next
	m.next = base
	m.textures = append(m.textures, t)
	return t, nil
}

// MustAdd is Add for statically-known-valid dimensions.
func (m *Manager) MustAdd(w, h int) *Texture {
	t, err := m.Add(w, h)
	if err != nil {
		panic(err)
	}
	return t
}

// Texture returns the texture with the given id.
func (m *Manager) Texture(id int32) *Texture { return m.textures[id] }

// Count returns the number of allocated textures.
func (m *Manager) Count() int { return len(m.textures) }

// TotalBytes returns the total texture memory footprint.
func (m *Manager) TotalBytes() int { return int(m.next) }

// TotalTexels returns the number of texels in the address space, all levels
// of all textures included (the denominator for unique-texel bitmaps).
func (m *Manager) TotalTexels() int { return int(m.next) / TexelBytes }

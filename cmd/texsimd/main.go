// Command texsimd serves the simulator over HTTP: clients submit sweep or
// experiment jobs, poll their status, and fetch results; identical
// submissions are answered from a content-addressed result cache without
// re-simulating. Metrics are exposed at /metrics in Prometheus text format,
// recent request/job spans at /debug/traces, and logs are structured JSON
// on stderr (request IDs and trace IDs on every job line).
//
// Usage:
//
//	texsimd -addr :8080 -workers 4 -queue 64 -cache-dir /var/cache/texsimd \
//	        -log-level info -debug-addr localhost:6060
//
// Submit a sweep and read it back (the traceparent header is optional —
// requests without one root a fresh trace):
//
//	curl -s -X POST localhost:8080/api/v1/jobs \
//	     -H 'traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01' \
//	     -d '{"type":"sweep","sweep":{"scene":"truc640"}}'
//	curl -s localhost:8080/api/v1/jobs/job-000001
//	curl -s localhost:8080/api/v1/jobs/job-000001/result
//	curl -s localhost:8080/debug/traces
//
// -debug-addr starts a second listener (keep it private) with net/http/pprof
// profiling endpoints under /debug/pprof/ and the same /debug/traces view.
//
// Cluster mode joins several texsimd processes into one logical service
// (see README "Running a cluster"): -peers lists the other members and
// -self is this node's address as the others reach it. Jobs are routed to
// the rendezvous owner of their cache key, caches federate across nodes,
// idle nodes steal queued work (-steal-interval), and GET /cluster reports
// the peer table and the routing counters:
//
//	texsimd -addr :8080 -self host1:8080 -peers host2:8080,host3:8080
//
// SIGINT/SIGTERM stop accepting new jobs and drain queued and running ones
// (bounded by -drain-timeout) before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/resultcache"
	"repro/internal/service"
	"repro/internal/telemetry/logging"
	"repro/internal/telemetry/tracing"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
		queue        = flag.Int("queue", 64, "job queue depth (full queue returns 429)")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job timeout (0 = unlimited)")
		parallelism  = flag.Int("job-par", 1, "concurrent simulations inside one job")
		nodePar      = flag.Int("node-par", 0, "worker bound for each simulation's parallel node kernel (0 = share the -job-par budget, 1 = force the event-driven kernel)")
		noMemo       = flag.Bool("no-memo", false, "disable cross-configuration raster memoization in sweep jobs (identical output, more rasterization work)")
		cacheEntries = flag.Int("cache-entries", resultcache.DefaultMaxEntries, "in-memory result cache entries")
		cacheDir     = flag.String("cache-dir", "", "on-disk result cache directory (empty = memory only)")
		noCache      = flag.Bool("no-cache", false, "disable the result cache (every job re-simulates)")
		outDir       = flag.String("out", "out", "output directory for image-producing experiment jobs")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to drain jobs on shutdown")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat    = flag.String("log-format", "json", "log format: json or text")
		debugAddr    = flag.String("debug-addr", "", "private listen address for pprof and trace debugging (empty = disabled)")
		spanCap      = flag.Int("trace-spans", 0, "finished spans retained for /debug/traces (0 = default)")
		sampleEvery  = flag.Duration("sample-interval", 0, "metrics time-series sampling period for /api/v1/metrics/query (0 = default 5s, negative = off)")
		samplePoints = flag.Int("sample-points", 0, "ring capacity per sampled series (0 = default 512)")
		version      = flag.Bool("version", false, "print version information and exit")

		checkpointDir = flag.String("checkpoint-dir", "", "durability directory: sweep row checkpoints and the job journal (empty = off)")
		resume        = flag.Bool("resume", true, "replay the job journal on boot (requires -checkpoint-dir)")
		tenantRate    = flag.Float64("tenant-rate", 0, "per-tenant admitted jobs per second (0 = unlimited)")
		tenantBurst   = flag.Int("tenant-burst", 8, "per-tenant token-bucket burst size")

		peers          = flag.String("peers", "", "comma-separated peer addresses (host:port or URL); empty = single-node")
		self           = flag.String("self", "", "this node's address as peers reach it (required with -peers)")
		healthInterval = flag.Duration("health-interval", 5*time.Second, "peer health probe period")
		stealInterval  = flag.Duration("steal-interval", 2*time.Second, "idle-node work-stealing poll period (0 = stealing off)")
		leaseTimeout   = flag.Duration("lease-timeout", 60*time.Second, "stolen-job lease before the origin re-queues it")
	)
	flag.Parse()

	if *version {
		bi := buildinfo.Read()
		fmt.Printf("texsimd %s (commit %s, %s)\n", bi.Version, bi.Commit, bi.Go)
		return
	}

	if *workers < 0 {
		cliutil.Usage("texsimd", fmt.Sprintf("-workers %d must be non-negative", *workers))
	}
	if *queue < 0 {
		cliutil.Usage("texsimd", fmt.Sprintf("-queue %d must be non-negative", *queue))
	}
	if *parallelism < 0 {
		cliutil.Usage("texsimd", fmt.Sprintf("-job-par %d must be non-negative", *parallelism))
	}
	if *nodePar < 0 {
		cliutil.Usage("texsimd", fmt.Sprintf("-node-par %d must be non-negative", *nodePar))
	}
	if *cacheEntries < 0 {
		cliutil.Usage("texsimd", fmt.Sprintf("-cache-entries %d must be non-negative", *cacheEntries))
	}
	if *drainTimeout < 0 {
		cliutil.Usage("texsimd", fmt.Sprintf("-drain-timeout %v must be non-negative", *drainTimeout))
	}
	if *peers != "" && *self == "" {
		cliutil.Usage("texsimd", "-peers requires -self (this node's address as peers reach it)")
	}
	if *healthInterval <= 0 {
		cliutil.Usage("texsimd", fmt.Sprintf("-health-interval %v must be positive", *healthInterval))
	}
	if *stealInterval < 0 {
		cliutil.Usage("texsimd", fmt.Sprintf("-steal-interval %v must be non-negative", *stealInterval))
	}
	if *leaseTimeout <= 0 {
		cliutil.Usage("texsimd", fmt.Sprintf("-lease-timeout %v must be positive", *leaseTimeout))
	}
	if *samplePoints < 0 {
		cliutil.Usage("texsimd", fmt.Sprintf("-sample-points %d must be non-negative", *samplePoints))
	}
	if *tenantRate < 0 {
		cliutil.Usage("texsimd", fmt.Sprintf("-tenant-rate %v must be non-negative", *tenantRate))
	}
	if *tenantBurst <= 0 {
		cliutil.Usage("texsimd", fmt.Sprintf("-tenant-burst %d must be positive", *tenantBurst))
	}

	level, err := logging.ParseLevel(*logLevel)
	cliutil.Check("texsimd", err)
	logger := logging.New(os.Stderr, level, *logFormat)

	cache, err := resultcache.New(resultcache.Config{
		MaxEntries: *cacheEntries,
		Dir:        *cacheDir,
		Disabled:   *noCache,
	})
	cliutil.Check("texsimd", err)

	tracer := tracing.NewTracer(*spanCap)

	// One registry for service and cluster metrics, so /metrics exposes both.
	reg := metrics.NewRegistry()
	var cl *cluster.Cluster
	if *peers != "" {
		cl = cluster.New(cluster.Config{
			Metrics:        reg,
			HealthInterval: *healthInterval,
			Logger:         logger,
		})
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		cl.SetPeers(*self, peerList)
	}

	// The service gets its own root context rather than the signal context:
	// SIGTERM must stop intake and drain, not cancel running jobs.
	srv, err := service.New(context.Background(), service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		JobTimeout:      *jobTimeout,
		Parallelism:     *parallelism,
		NodeParallelism: *nodePar,
		NoMemo:          *noMemo,
		Cache:           cache,
		Metrics:         reg,
		OutDir:          *outDir,
		Logger:          logger,
		Tracer:          tracer,
		Cluster:         cl,
		LeaseTimeout:    *leaseTimeout,
		StealInterval:   *stealInterval,
		SampleInterval:  *sampleEvery,
		SamplePoints:    *samplePoints,
		CheckpointDir:   *checkpointDir,
		Resume:          *resume,
		TenantRate:      *tenantRate,
		TenantBurst:     *tenantBurst,
	})
	cliutil.Check("texsimd", err)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/traces", tracer.DebugHandler())
		debugSrv = &http.Server{Addr: *debugAddr, Handler: mux,
			ReadHeaderTimeout: 10 * time.Second}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if cl != nil {
		cl.Start(ctx) // active health probing until shutdown
		logger.Info("cluster mode", "self", cl.Self(), "members", len(cl.Members()))
	}

	errCh := make(chan error, 2)
	go func() {
		logger.Info("listening", "addr", *addr, "workers", *workers, "queue", *queue)
		errCh <- httpSrv.ListenAndServe()
	}()
	if debugSrv != nil {
		go func() {
			logger.Info("debug listener up", "addr", *debugAddr)
			errCh <- debugSrv.ListenAndServe()
		}()
	}

	select {
	case err := <-errCh:
		cliutil.Fail("texsimd", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	logger.Info("shutting down, draining jobs", "drain_timeout", drainTimeout.String())

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop taking connections first, then drain the pool.
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("http shutdown", "error", err.Error())
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("debug shutdown", "error", err.Error())
		}
	}
	if err := srv.Drain(drainCtx); err != nil {
		cliutil.Fail("texsimd", fmt.Errorf("drain incomplete: %w", err))
	}
	logger.Info("drained cleanly")
}

// Package cache simulates the on-chip texture cache of one node. The paper
// uses the Hakura–Gupta configuration unchanged: 16 KB, 4-way set
// associative, 64-byte lines holding a 4×4 texel block, LRU replacement.
//
// The cache is modelled functionally (hit or miss per access); timing is the
// memory bus's job. A perfect-cache model (always hits — the paper's
// "perfect cache" that ignores even compulsory misses) and a cacheless model
// are provided for the load-balancing-only experiments and the ratio-8
// baseline respectively.
package cache

import (
	"fmt"

	"repro/internal/texture"
)

// Stats accumulates access counts for one cache.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns Misses/Accesses (0 for an idle cache).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Model is the cache contract the engine drives: one call per texel access,
// returning whether the texel was already resident. A miss implies the
// containing line is fetched (and inserted, for a real cache).
type Model interface {
	// Access looks up the texel at byte address addr, updating replacement
	// state, and reports a hit.
	Access(addr texture.Addr) bool
	// RepeatHits reports whether re-accessing a trilinear footprint (at most
	// 8 addresses, at most 2 distinct lines per set and mip level) that the
	// immediately preceding accesses fully touched is guaranteed to hit on
	// every address AND to leave the replacement state exactly as a real
	// re-access would. When true, a caller replaying a run of fragments with
	// identical footprints may account the repeats via AddHits instead of
	// calling Access — the engine's precomputed-replay fast path.
	RepeatHits() bool
	// AddHits accounts n accesses that are known to hit without looking
	// them up. Only meaningful when RepeatHits reports true.
	AddHits(n uint64)
	// Stats returns the accumulated counters.
	Stats() Stats
	// Reset clears contents and counters.
	Reset()
}

// Config describes a set-associative cache.
type Config struct {
	SizeBytes int // total capacity
	Ways      int // associativity
	LineBytes int // line size (must match the texture blocking: 64)
}

// PaperConfig is the 16 KB 4-way 64 B-line configuration used throughout the
// paper's evaluation.
func PaperConfig() Config {
	return Config{SizeBytes: 16 * 1024, Ways: 4, LineBytes: texture.LineBytes}
}

// Validate checks structural consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache: size %d not a multiple of line %d", c.SizeBytes, c.LineBytes)
	}
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache: %d lines not divisible by %d ways", lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / c.LineBytes / c.Ways }

// SetAssoc is an LRU set-associative cache. Each set keeps its lines ordered
// most-recently-used first, so a lookup is a short scan and a hit is a small
// rotate — fast enough for the hundreds of millions of accesses a full-frame
// simulation performs.
type SetAssoc struct {
	cfg      Config
	ways     int
	setMask  uint32
	lineBits uint
	// tags[set*ways : (set+1)*ways], MRU first. The sentinel invalidTag marks
	// an empty way.
	tags  []uint32
	stats Stats
}

const invalidTag = ^uint32(0)

// New returns an empty set-associative cache for cfg. It panics on an
// invalid configuration; callers validate user-supplied configs first.
func New(cfg Config) *SetAssoc {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineBytes {
		lineBits++
	}
	c := &SetAssoc{
		cfg:      cfg,
		ways:     cfg.Ways,
		setMask:  uint32(cfg.Sets() - 1),
		lineBits: lineBits,
		tags:     make([]uint32, cfg.Sets()*cfg.Ways),
	}
	c.Reset()
	return c
}

// Config returns the cache geometry.
func (c *SetAssoc) Config() Config { return c.cfg }

// Access implements Model.
func (c *SetAssoc) Access(addr texture.Addr) bool {
	c.stats.Accesses++
	line := uint32(addr) >> c.lineBits
	set := line & c.setMask
	base := int(set) * c.ways
	ways := c.tags[base : base+c.ways]
	if ways[0] == line { // fast path: repeated texel
		return true
	}
	for i := 1; i < len(ways); i++ {
		if ways[i] == line {
			// Hit: rotate to MRU position.
			copy(ways[1:i+1], ways[:i])
			ways[0] = line
			return true
		}
	}
	// Miss: evict LRU (last), insert at MRU.
	c.stats.Misses++
	copy(ways[1:], ways[:len(ways)-1])
	ways[0] = line
	return false
}

// Stats implements Model.
func (c *SetAssoc) Stats() Stats { return c.stats }

// RepeatHits implements Model. A trilinear footprint touches a 2×2 texel
// block neighborhood per mip level; x-adjacent blocks differ by one in line
// index, so with at least 2 sets each set receives at most 2 of a level's
// lines — at most 4 lines per set across both levels. With 4 or more ways
// the footprint's own insertions evict none of its lines, so an immediate
// re-access hits everywhere and the MRU rotation reproduces the same final
// order. A single-set cache can see all 8 lines collide, so it needs 8 ways.
func (c *SetAssoc) RepeatHits() bool {
	return c.ways >= 8 || (c.ways >= 4 && c.setMask >= 1)
}

// AddHits implements Model.
func (c *SetAssoc) AddHits(n uint64) { c.stats.Accesses += n }

// Reset implements Model.
func (c *SetAssoc) Reset() {
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	c.stats = Stats{}
}

// Perfect is the paper's "perfect cache": every access hits, including the
// first touch of a line (compulsory misses are ignored too). Used to isolate
// load balancing from texture locality.
type Perfect struct {
	stats Stats
}

// NewPerfect returns a perfect cache.
func NewPerfect() *Perfect { return &Perfect{} }

// Access implements Model: always a hit.
func (c *Perfect) Access(texture.Addr) bool {
	c.stats.Accesses++
	return true
}

// Stats implements Model.
func (c *Perfect) Stats() Stats { return c.stats }

// RepeatHits implements Model: everything hits, so repeats trivially do.
func (c *Perfect) RepeatHits() bool { return true }

// AddHits implements Model.
func (c *Perfect) AddHits(n uint64) { c.stats.Accesses += n }

// Reset implements Model.
func (c *Perfect) Reset() { c.stats = Stats{} }

// None is a cacheless node: every access misses, giving the 8-texels-per-
// fragment external bandwidth of the paper's "machine without a cache".
type None struct {
	stats Stats
}

// NewNone returns a cacheless model.
func NewNone() *None { return &None{} }

// Access implements Model: always a miss.
func (c *None) Access(texture.Addr) bool {
	c.stats.Accesses++
	c.stats.Misses++
	return false
}

// Stats implements Model.
func (c *None) Stats() Stats { return c.stats }

// RepeatHits implements Model: nothing ever hits, so repeated footprints
// must be replayed as real (missing) accesses.
func (c *None) RepeatHits() bool { return false }

// AddHits implements Model. Never reached through the engine (RepeatHits is
// false); counts plain accesses for interface completeness.
func (c *None) AddHits(n uint64) { c.stats.Accesses += n }

// Reset implements Model.
func (c *None) Reset() { c.stats = Stats{} }

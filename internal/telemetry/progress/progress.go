// Package progress is the live job-progress plane: a broker of per-job
// event streams fed by the sweep engine and consumed by the texsimd SSE
// endpoint (GET /api/v1/jobs/{id}/events) and texsweep's -progress printer
// — one event source, any number of sinks.
//
// Design: the broker owns an append-only event log per job. Sequence
// numbers are dense (0, 1, 2, ...), so a consumer that reconnects with the
// last sequence it saw replays the gap losslessly — the SSE Last-Event-ID
// contract. Subscriptions are cursors over the log, not goroutines or
// channels: Next blocks on a broadcast signal until the log grows, the
// stream closes, or the caller's context dies. The broker therefore spawns
// nothing and leaks nothing; every blocked consumer is anchored on its own
// ctx.Done.
//
// Memory: a job's log holds one Event per sweep row plus one terminal
// event, and the stream map parallels the service's job table (which
// likewise retains every job for status queries). Bounding one means
// bounding the other; neither is bounded today.
package progress

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sweep"
)

// Event is one progress notification. Row completions carry the simulation
// columns; terminal events (Terminal() true) carry only the job outcome.
type Event struct {
	// Seq is the event's dense per-job sequence number, assigned by the
	// broker at publish time — the SSE event ID.
	Seq int64 `json:"seq"`
	// Type is "row" for a row completion, or a terminal outcome: "done",
	// "failed", "canceled" or "shutdown" (the broker was shut down under
	// the stream).
	Type string `json:"type"`
	// Row is the completed row's index in the sweep's deterministic
	// (procs-major) order; -1 on terminal events.
	Row int `json:"row"`
	// Total is the number of rows in the job (0 when unknown, e.g. on
	// terminal events published outside a sweep).
	Total int `json:"total,omitempty"`
	// ConfigHash identifies the row's configuration: sha256 of the sweep
	// spec narrowed to this row's (procs, size) point.
	ConfigHash string `json:"config_hash,omitempty"`
	Procs      int    `json:"procs,omitempty"`
	Size       int    `json:"size,omitempty"`
	// Cycles is the row's simulated machine completion time.
	Cycles float64 `json:"cycles,omitempty"`
	// Frags is the row's total fragments drawn.
	Frags uint64 `json:"frags,omitempty"`
	// CacheHit marks a row that was not simulated for this event: replayed
	// from the result cache or from a result computed on another node.
	CacheHit bool `json:"cache_hit,omitempty"`
	// WallSeconds is the row's wall-clock simulation time on this node
	// (0 for replayed rows).
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// Error carries the failure message on "failed" terminal events.
	Error string `json:"error,omitempty"`
	// Time is the publish timestamp (RFC3339Nano, UTC).
	Time string `json:"time,omitempty"`
}

// Terminal reports whether the event ends its stream.
func (e Event) Terminal() bool { return e.Type != "row" }

// stream is one job's append-only event log plus its broadcast signal.
type stream struct {
	mu     sync.Mutex
	events []Event
	closed bool
	notify chan struct{} // closed and replaced on every append
}

// Broker fans per-job progress events out to any number of subscribers.
// The zero value is not usable; create with NewBroker.
type Broker struct {
	mu      sync.Mutex
	streams map[string]*stream
	total   atomic.Int64
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{streams: make(map[string]*stream)}
}

// stream returns (creating if needed) the stream for jobID. Creation is
// lazy on both publish and subscribe, so subscribing before the first
// event is well-defined.
func (b *Broker) stream(jobID string) *stream {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.streams[jobID]
	if !ok {
		st = &stream{notify: make(chan struct{})}
		b.streams[jobID] = st
	}
	return st
}

// Publish appends one event to the job's log, stamping its sequence number
// and timestamp. Events published after the stream closed are dropped —
// the terminal event is by definition the last one.
func (b *Broker) Publish(jobID string, ev Event) {
	st := b.stream(jobID)
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	ev.Seq = int64(len(st.events))
	ev.Time = time.Now().UTC().Format(time.RFC3339Nano)
	st.events = append(st.events, ev)
	close(st.notify)
	st.notify = make(chan struct{})
	st.mu.Unlock()
	b.total.Add(1)
}

// End closes the job's stream with a terminal event of the given type
// ("done", "failed", "canceled" or "shutdown"). Idempotent: only the first
// End lands; later calls (and later Publishes) are dropped.
func (b *Broker) End(jobID, typ, errMsg string) {
	st := b.stream(jobID)
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	ev := Event{
		Seq:   int64(len(st.events)),
		Type:  typ,
		Row:   -1,
		Error: errMsg,
		Time:  time.Now().UTC().Format(time.RFC3339Nano),
	}
	st.events = append(st.events, ev)
	st.closed = true
	close(st.notify)
	st.notify = make(chan struct{})
	st.mu.Unlock()
	b.total.Add(1)
}

// Shutdown closes every still-open stream with a "shutdown" terminal
// event, releasing all blocked subscribers. Streams already ended are
// untouched. Safe to call more than once.
func (b *Broker) Shutdown() {
	b.mu.Lock()
	open := make([]string, 0, len(b.streams))
	for id, st := range b.streams {
		st.mu.Lock()
		closed := st.closed
		st.mu.Unlock()
		if !closed {
			open = append(open, id)
		}
	}
	b.mu.Unlock()
	for _, id := range open {
		b.End(id, "shutdown", "server shutting down")
	}
}

// TotalEvents returns the number of events published across all jobs —
// the source the texsimd_progress_events_total counter mirrors.
func (b *Broker) TotalEvents() int64 { return b.total.Load() }

// Events returns a snapshot of a job's log from sequence `from` on.
func (b *Broker) Events(jobID string, from int64) []Event {
	st := b.stream(jobID)
	st.mu.Lock()
	defer st.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from >= int64(len(st.events)) {
		return nil
	}
	out := make([]Event, int64(len(st.events))-from)
	copy(out, st.events[from:])
	return out
}

// Subscription is a cursor over one job's event log. It holds no broker
// resources: dropping it (or cancelling the context passed to Next) is the
// whole cleanup.
type Subscription struct {
	st     *stream
	cursor int64
}

// Subscribe returns a subscription replaying the job's log from sequence
// `from` (0 = the beginning) and then following it live.
func (b *Broker) Subscribe(jobID string, from int64) *Subscription {
	if from < 0 {
		from = 0
	}
	return &Subscription{st: b.stream(jobID), cursor: from}
}

// Next returns the next event, blocking until one is available. ok is
// false when ctx is done or when the stream has closed and the cursor has
// drained it — after the terminal event has been returned.
func (s *Subscription) Next(ctx context.Context) (ev Event, ok bool) {
	for {
		s.st.mu.Lock()
		if s.cursor < int64(len(s.st.events)) {
			ev = s.st.events[s.cursor]
			s.cursor++
			s.st.mu.Unlock()
			return ev, true
		}
		if s.st.closed {
			s.st.mu.Unlock()
			return Event{}, false
		}
		notify := s.st.notify
		s.st.mu.Unlock()
		select {
		case <-ctx.Done():
			return Event{}, false
		case <-notify:
		}
	}
}

// Sink adapts a Broker to sweep.ProgressSink for one job: RowStarted
// records the row's start on the wall clock, RowDone publishes the
// completion event with the measured wall time. Safe for concurrent use —
// sweep rows complete on parallel workers.
type Sink struct {
	b     *Broker
	jobID string

	mu      sync.Mutex
	started map[int]time.Time
}

// NewSink returns a sink publishing one job's sweep progress to b.
func NewSink(b *Broker, jobID string) *Sink {
	return &Sink{b: b, jobID: jobID, started: make(map[int]time.Time)}
}

// RowStarted implements sweep.ProgressSink.
func (s *Sink) RowStarted(index, total, procs, size int, configHash string) {
	now := time.Now()
	s.mu.Lock()
	s.started[index] = now
	s.mu.Unlock()
}

// RowDone implements sweep.ProgressSink.
func (s *Sink) RowDone(index, total int, row sweep.Row, configHash string) {
	var wall float64
	s.mu.Lock()
	if t0, ok := s.started[index]; ok {
		wall = time.Since(t0).Seconds()
		delete(s.started, index)
	}
	s.mu.Unlock()
	s.b.Publish(s.jobID, Event{
		Type:        "row",
		Row:         index,
		Total:       total,
		ConfigHash:  configHash,
		Procs:       row.Procs,
		Size:        row.Size,
		Cycles:      row.Cycles,
		Frags:       row.Frags,
		WallSeconds: wall,
	})
}

// RowCached implements sweep.RowCachedSink: rows restored from a sweep
// checkpoint store publish as completed rows flagged CacheHit, with no wall
// time — nothing simulated.
func (s *Sink) RowCached(index, total int, row sweep.Row, configHash string) {
	s.b.Publish(s.jobID, Event{
		Type:       "row",
		Row:        index,
		Total:      total,
		ConfigHash: configHash,
		Procs:      row.Procs,
		Size:       row.Size,
		Cycles:     row.Cycles,
		Frags:      row.Frags,
		CacheHit:   true,
	})
}

// ReplaySweep publishes one completion event per row of an
// already-computed sweep result document — the path for results served
// from the cache or computed on another node, where the rows exist but
// were never simulated under this broker. cacheHit marks whether the rows
// came from a cache (true) or a remote simulation (false).
func ReplaySweep(b *Broker, jobID string, payload []byte, cacheHit bool) {
	var res sweep.Result
	if err := json.Unmarshal(payload, &res); err != nil {
		return // not a sweep document; nothing to replay
	}
	total := len(res.Rows)
	for i, row := range res.Rows {
		b.Publish(jobID, Event{
			Type:       "row",
			Row:        i,
			Total:      total,
			ConfigHash: res.Spec.RowHash(row.Procs, row.Size),
			Procs:      row.Procs,
			Size:       row.Size,
			Cycles:     row.Cycles,
			Frags:      row.Frags,
			CacheHit:   cacheHit,
		})
	}
}

// The time-series half of the metrics package: a fixed-memory ring sampler
// that periodically snapshots every scalar series in a Registry so the
// query endpoint (/api/v1/metrics/query) and the /debug/dash sparklines can
// show recent history without an external TSDB.

package metrics

import (
	"sort"
	"sync"
	"time"
)

// Point is one sampled value: unix-millisecond timestamp and value.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// Series is one scalar series' retained window, oldest point first.
type Series struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Points []Point `json:"points"`
}

// ring is a fixed-capacity circular buffer of points.
type ring struct {
	name, labels string
	pts          []Point
	head         int // next write slot
	n            int // points stored (≤ cap)
}

func (r *ring) push(p Point) {
	r.pts[r.head] = p
	r.head = (r.head + 1) % len(r.pts)
	if r.n < len(r.pts) {
		r.n++
	}
}

// window returns the stored points oldest-first, dropping those at or
// before `since` (zero = everything).
func (r *ring) window(since int64) []Point {
	out := make([]Point, 0, r.n)
	start := r.head - r.n
	if start < 0 {
		start += len(r.pts)
	}
	for i := 0; i < r.n; i++ {
		p := r.pts[(start+i)%len(r.pts)]
		if since != 0 && p.T <= since {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Sampler retains a bounded history of every scalar series in a Registry.
//
// Memory bound: one ring of `capacity` Points (16 bytes each) per distinct
// series, and series cardinality is itself bounded by metriclint's label
// rules — so total retention is O(series × capacity) and independent of
// uptime. Series are never evicted: a series that stops being reported
// keeps its last window (its staleness is visible in the timestamps).
type Sampler struct {
	reg *Registry
	cap int

	mu    sync.Mutex
	rings map[string]*ring // name + "\xff" + labels
}

// NewSampler returns a sampler retaining `capacity` points per series
// (minimum 2 — a sparkline needs a segment).
func NewSampler(reg *Registry, capacity int) *Sampler {
	if capacity < 2 {
		capacity = 2
	}
	return &Sampler{reg: reg, cap: capacity, rings: make(map[string]*ring)}
}

// Sample snapshots every registered scalar series now. The caller owns the
// cadence (the service runs it on a ticker goroutine anchored on its
// lifecycle context).
func (s *Sampler) Sample() { s.sampleAt(time.Now()) }

func (s *Sampler) sampleAt(now time.Time) {
	samples := s.reg.Snapshot()
	t := now.UnixMilli()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sm := range samples {
		k := sm.Name + "\xff" + sm.Labels
		rg, ok := s.rings[k]
		if !ok {
			rg = &ring{name: sm.Name, labels: sm.Labels, pts: make([]Point, s.cap)}
			s.rings[k] = rg
		}
		rg.push(Point{T: t, V: sm.Value})
	}
}

// Capacity returns the per-series point bound.
func (s *Sampler) Capacity() int { return s.cap }

// Names returns the distinct sampled series names, sorted.
func (s *Sampler) Names() []string {
	s.mu.Lock()
	set := make(map[string]bool, len(s.rings))
	for _, rg := range s.rings {
		set[rg.name] = true
	}
	s.mu.Unlock()
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Query returns every labelled series under `name` with points strictly
// after `since` (zero time = the whole retained window), sorted by label
// string. An unknown name yields an empty slice.
func (s *Sampler) Query(name string, since time.Time) []Series {
	var cutoff int64
	if !since.IsZero() {
		cutoff = since.UnixMilli()
	}
	s.mu.Lock()
	matched := make([]*ring, 0, 4)
	for _, rg := range s.rings {
		if rg.name == name {
			matched = append(matched, rg)
		}
	}
	out := make([]Series, 0, len(matched))
	for _, rg := range matched {
		out = append(out, Series{Name: rg.name, Labels: rg.labels, Points: rg.window(cutoff)})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Labels < out[j].Labels })
	return out
}

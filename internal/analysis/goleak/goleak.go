// Package goleak checks that every goroutine launched in the service,
// cluster and sweep layers is tied to a lifecycle, so SIGTERM drain and
// peer death cannot strand goroutines behind a dead listener.
//
// A `go` statement passes when the launched function — its literal body or
// its package-local declaration, plus everything transitively reachable
// from it through the intra-package call graph — contains at least one
// lifecycle anchor:
//
//   - a context cancellation check (ctx.Done()),
//   - a sync.WaitGroup interaction (wg.Done() marking completion for a
//     waiter, or wg.Wait() making the goroutine itself the waiter), or
//   - a `for ... range ch` loop over a channel, which exits when the
//     channel is closed.
//
// Goroutines launched through bare function values or functions declared
// in other packages cannot be proven safe and are reported; route them
// through a package-local named function instead.
package goleak

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the goroutine-lifecycle check.
var Analyzer = &framework.Analyzer{
	Name: "goleak",
	Doc:  "every go statement must reach a lifecycle anchor: ctx.Done, a WaitGroup, or a channel range",
	Run:  run,
}

func run(pass *framework.Pass) error {
	graph := framework.NewCallGraph(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGo(pass, graph, g)
			return true
		})
	}
	return nil
}

func checkGo(pass *framework.Pass, graph *framework.CallGraph, g *ast.GoStmt) {
	var root ast.Node
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		root = fun.Body
	default:
		decl := graph.Decl(graph.StaticCallee(g.Call))
		if decl == nil {
			pass.Reportf(g.Pos(), "goroutine launched through a function texlint cannot see into (value or other package); launch a package-local named function so its lifecycle is checkable")
			return
		}
		root = decl.Body
	}
	if hasAnchor(pass, root) {
		return
	}
	for _, decl := range graph.Reachable(root) {
		if hasAnchor(pass, decl.Body) {
			return
		}
	}
	pass.Reportf(g.Pos(), "goroutine is not tied to a lifecycle: nothing reachable from it checks ctx.Done, touches a sync.WaitGroup, or ranges over a channel")
}

// hasAnchor scans one function body for a lifecycle anchor.
func hasAnchor(pass *framework.Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
					return false
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "context":
				if fn.Name() == "Done" {
					found = true
					return false
				}
			case "sync":
				if (fn.Name() == "Done" || fn.Name() == "Wait") && recvNamed(fn) == "WaitGroup" {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// recvNamed returns the name of the method's receiver type, or "".
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

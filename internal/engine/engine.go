// Package engine models one node of the parallel machine: the fixed-function
// texture-mapping pipeline of a commodity PC 3D accelerator as the paper
// abstracts it.
//
// The node contract (paper §3.1):
//
//   - a setup engine that needs the equivalent of 25 pixels per triangle, so
//     a triangle costs max(25, scan cycles) — small clipped triangles are
//     setup-bound;
//   - a pixel scanner retiring one fragment per cycle when texels are
//     resident;
//   - a trilinear filter performing 8 texel lookups per fragment in the
//     node's private texture cache;
//   - an external texture bus delivering a bounded number of texels per
//     cycle (memory.Bus), hidden behind the Igehy prefetching architecture:
//     a fragment FIFO of PrefetchDepth entries lets line fetches for
//     fragment i start as soon as fragment i−depth retires, so sustained
//     throughput is max(scan rate, bandwidth) and only miss *bursts* deeper
//     than the FIFO stall the scanner — exactly the zero-latency-but-
//     bandwidth-bound behaviour the paper adopts from [Igehy et al. 98].
//
// The engine is a pure timing model: the parallel machine (internal/core)
// owns event scheduling and feeds the engine one triangle's worth of owned
// pixel segments at a time.
package engine

import (
	"repro/internal/cache"
	"repro/internal/geom"
	"repro/internal/memory"
	"repro/internal/raster"
	"repro/internal/texture"
)

// DefaultSetupCycles is the paper's triangle setup cost: one triangle per 25
// pixels, the value [Chen et al. 98] considers representative.
const DefaultSetupCycles = 25

// DefaultPrefetchDepth is the depth of the prefetch fragment FIFO, sized
// after the Igehy et al. prefetching texture architecture the paper's node
// assumes.
const DefaultPrefetchDepth = 32

// TriangleWork is one triangle's contribution to one node: the texture it
// binds, its texture mapping, and the pixel segments of the triangle that
// the node owns (already clipped to the node's tiles by the distributor).
type TriangleWork struct {
	Tex      *texture.Texture
	Map      geom.TexMap
	LOD      float64
	Segments []raster.Span
}

// PhaseRecorder receives per-triangle phase attributions from the engine —
// the flight-recorder hook (internal/telemetry/flight). The engine reports
// where each triangle's cycles went; the recorder derives idle time from
// the gap between start and the end of the previous triangle it saw.
//
// The hook fires once per triangle, never per fragment, and only when a
// recorder is attached: the disabled path is a single always-false nil
// check, so recording costs nothing when off.
type PhaseRecorder interface {
	// RecordTriangle attributes one triangle beginning at start: scan
	// cycles retiring fragments, stall cycles waiting on the texture bus,
	// and setup cycles where the per-triangle setup floor exceeded the
	// scan+stall work.
	RecordTriangle(start, scan, stall, setup float64)
}

// Stats accumulates one node's counters across a run.
type Stats struct {
	Triangles   uint64  // triangles routed to this node (incl. zero-pixel)
	Fragments   uint64  // pixels drawn
	SetupBound  uint64  // triangles whose cost was the setup minimum
	StallCycles float64 // scanner cycles lost waiting on the texture bus
	BusyCycles  float64 // total pipeline time consumed
}

// Engine is one node's pipeline timing model.
type Engine struct {
	id          int
	setupCycles float64
	cache       cache.Model
	bus         *memory.Bus
	// Optional second level (the paper's §9 future work, after Cox): the
	// graphics-card memory acting as an L2 texture cache in front of main
	// memory. An L1 miss that hits in L2 costs only the L1 bus; an L2 miss
	// additionally occupies the main-memory bus.
	l2      cache.Model
	mainBus *memory.Bus

	time     float64 // local pipeline clock: when the node goes idle
	stats    Stats
	foot     [8]texture.Addr
	pureScan bool // perfect cache + infinite bus: skip texel generation
	// ring holds the retire times of the last len(ring) fragments: the
	// prefetch fragment FIFO. A fragment's line fetches are issued when the
	// fragment PrefetchDepth slots earlier retires (when it enters the FIFO).
	ring    []float64
	ringPos int
	// rec, when non-nil, receives one phase attribution per triangle.
	rec PhaseRecorder
}

// New returns an idle engine with the given cache model and bus and the
// default prefetch depth.
func New(id int, setupCycles int, c cache.Model, bus *memory.Bus) *Engine {
	return NewWithPrefetch(id, setupCycles, DefaultPrefetchDepth, c, bus)
}

// NewWithPrefetch returns an idle engine with an explicit prefetch fragment
// FIFO depth (≥1; 1 means no overlap between fetch and scan).
func NewWithPrefetch(id, setupCycles, prefetchDepth int, c cache.Model, bus *memory.Bus) *Engine {
	if setupCycles < 0 {
		setupCycles = 0
	}
	if prefetchDepth < 1 {
		prefetchDepth = 1
	}
	e := &Engine{
		id:          id,
		setupCycles: float64(setupCycles),
		cache:       c,
		bus:         bus,
		ring:        make([]float64, prefetchDepth),
	}
	// A perfect cache on an infinite bus never stalls and fetches nothing:
	// scanning is then pure pixel counting, so skip texel address generation
	// entirely. This is the configuration of every load-balancing-only
	// experiment (paper §5), where it is ~8× faster.
	if _, perfect := c.(*cache.Perfect); perfect && bus.Config().Infinite() {
		e.pureScan = true
	}
	return e
}

// SetRecorder attaches (or, with nil, detaches) the flight-recorder hook.
func (e *Engine) SetRecorder(r PhaseRecorder) { e.rec = r }

// AttachL2 adds a second-level texture cache backed by a main-memory bus.
// Must be called before the first triangle is processed.
func (e *Engine) AttachL2(l2 cache.Model, mainBus *memory.Bus) {
	e.l2 = l2
	e.mainBus = mainBus
}

// L2Stats returns the second-level cache counters (zero Stats without an L2).
func (e *Engine) L2Stats() cache.Stats {
	if e.l2 == nil {
		return cache.Stats{}
	}
	return e.l2.Stats()
}

// MainBusStats returns the main-memory bus counters (zero without an L2).
func (e *Engine) MainBusStats() memory.BusStats {
	if e.mainBus == nil {
		return memory.BusStats{}
	}
	return e.mainBus.Stats()
}

// AdvanceTo forces the node clock forward to t if it is idle earlier — the
// end-of-frame barrier (buffer swap) between frames of a sequence.
func (e *Engine) AdvanceTo(t float64) {
	if t > e.time {
		e.time = t
	}
}

// ID returns the node index.
func (e *Engine) ID() int { return e.id }

// Time returns the node's local clock: the cycle at which all accepted work
// completes.
func (e *Engine) Time() float64 { return e.time }

// Stats returns the node's counters.
func (e *Engine) Stats() Stats { return e.stats }

// CacheStats returns the node's texture-cache counters.
func (e *Engine) CacheStats() cache.Stats { return e.cache.Stats() }

// BusStats returns the node's texture-bus counters.
func (e *Engine) BusStats() memory.BusStats { return e.bus.Stats() }

// TexelToFragment returns the external-bandwidth metric the paper uses
// throughout: texels fetched from texture memory per fragment drawn.
func (e *Engine) TexelToFragment() float64 {
	if e.stats.Fragments == 0 {
		return 0
	}
	return float64(e.bus.Stats().TexelsFetched()) / float64(e.stats.Fragments)
}

// Reset returns the engine, its cache and its bus to the idle initial state.
func (e *Engine) Reset() {
	e.time = 0
	e.stats = Stats{}
	e.cache.Reset()
	e.bus.Reset()
	if e.l2 != nil {
		e.l2.Reset()
		e.mainBus.Reset()
	}
	for i := range e.ring {
		e.ring[i] = 0
	}
	e.ringPos = 0
}

// StartTriangle returns the cycle at which the engine would begin a triangle
// arriving at the given time: it cannot start before its pending work drains.
func (e *Engine) StartTriangle(arrival float64) float64 {
	if arrival > e.time {
		return arrival
	}
	return e.time
}

// ProcessTriangle runs one triangle through the pipeline, beginning no
// earlier than arrival, and returns the absolute completion time. The
// triangle holds the pipeline for max(setup, scan) cycles (setup overlaps
// scanning; a clipped sliver still costs the full setup time).
func (e *Engine) ProcessTriangle(arrival float64, w *TriangleWork) float64 {
	start := e.StartTriangle(arrival)
	stall0 := e.stats.StallCycles
	s := start
	if e.pureScan {
		for _, sp := range w.Segments {
			n := sp.Width()
			s += float64(n)
			e.stats.Fragments += uint64(n)
		}
		return e.finishTriangle(start, stall0, s)
	}
	for _, sp := range w.Segments {
		yc := float64(sp.Y) + 0.5
		xc := float64(sp.X0) + 0.5
		u := w.Map.U0 + w.Map.DuDx*xc + w.Map.DuDy*yc
		v := w.Map.V0 + w.Map.DvDx*xc + w.Map.DvDy*yc
		for x := sp.X0; x < sp.X1; x++ {
			s++ // one scan cycle per fragment
			w.Tex.TrilinearFootprint(u, v, w.LOD, &e.foot)
			misses, mainMisses := 0, 0
			for _, a := range e.foot {
				if !e.cache.Access(a) {
					misses++
					if e.l2 != nil && !e.l2.Access(a) {
						mainMisses++
					}
				}
			}
			if misses > 0 {
				// Fetches were issued when this fragment entered the
				// prefetch FIFO, i.e. when the fragment PrefetchDepth slots
				// earlier retired — but never before the triangle itself
				// arrived, since its addresses were unknown until then.
				issue := e.ring[e.ringPos]
				if issue < start {
					issue = start
				}
				ready := e.bus.Fetch(issue, misses)
				if mainMisses > 0 {
					// L2-missing lines must first cross the main-memory
					// bus; the fragment waits for the slower of the two.
					if mainReady := e.mainBus.Fetch(issue, mainMisses); mainReady > ready {
						ready = mainReady
					}
				}
				if ready > s {
					e.stats.StallCycles += ready - s
					s = ready
				}
			}
			e.ring[e.ringPos] = s
			e.ringPos++
			if e.ringPos == len(e.ring) {
				e.ringPos = 0
			}
			u += w.Map.DuDx
			v += w.Map.DvDx
			e.stats.Fragments++
		}
	}
	return e.finishTriangle(start, stall0, s)
}

// finishTriangle applies the setup-cost floor and advances the node clock.
// stall0 is the stall counter at triangle start, so the attached recorder
// (if any) sees only this triangle's stall cycles.
func (e *Engine) finishTriangle(start, stall0, s float64) float64 {
	cost := s - start
	setupPad := 0.0
	if cost < e.setupCycles {
		setupPad = e.setupCycles - cost
		cost = e.setupCycles
		e.stats.SetupBound++
	}
	e.stats.Triangles++
	e.stats.BusyCycles += cost
	e.time = start + cost
	if e.rec != nil {
		stall := e.stats.StallCycles - stall0
		e.rec.RecordTriangle(start, s-start-stall, stall, setupPad)
	}
	return e.time
}

package goleak_test

import (
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/goleak"
)

func TestGoleak(t *testing.T) {
	framework.RunTest(t, ".", goleak.Analyzer, "leak")
}

package resultcache

import (
	"bytes"
	"testing"
)

// Two namespaces must keep equal logical keys apart, and a namespaced view
// must round-trip through the shared tiers.
func TestNamespaceIsolation(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := c.Namespace("rows")
	b := c.Namespace("other")

	if err := a.Put("k", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Get("k"); ok {
		t.Fatal("namespace other sees namespace rows entry")
	}
	got, ok := a.Get("k")
	if !ok || !bytes.Equal(got, []byte(`{"v":1}`)) {
		t.Fatalf("rows/k = %q, %v; want original bytes", got, ok)
	}

	// The raw key must not resolve either: the view rewrites keys.
	if _, ok := c.Get("k"); ok {
		t.Fatal("raw key resolves a namespaced entry")
	}
}

// The NUL separator prevents ("a", "bk") from aliasing ("ab", "k").
func TestNamespaceNoPrefixAliasing(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Namespace("a").Put("bk", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Namespace("ab").Get("k"); ok {
		t.Fatal(`("ab", "k") aliases ("a", "bk")`)
	}
}

// A namespaced entry must survive the disk tier like a plain one: the
// rewritten keys are ordinary 64-hex names.
func TestNamespaceDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Namespace("rows").Put("k", []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}

	c2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Namespace("rows").Get("k")
	if !ok || !bytes.Equal(got, []byte(`{"v":2}`)) {
		t.Fatalf("after reopen: rows/k = %q, %v; want original bytes", got, ok)
	}
}

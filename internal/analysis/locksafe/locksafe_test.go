package locksafe_test

import (
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/locksafe"
)

func TestLockSafe(t *testing.T) {
	framework.RunTest(t, ".", locksafe.Analyzer, "locks")
}

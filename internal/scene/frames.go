package scene

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/trace"
)

// Translate returns a copy of the scene with every surface shifted by
// (dx, dy) pixels on screen, as a camera pan of that many pixels would do.
// Texture coordinates travel with the surfaces (the texels under a wall do
// not change when the viewpoint moves), which is exactly what makes
// inter-frame texture locality: the next frame re-reads almost the same
// texels, just through different screen tiles.
func Translate(s *trace.Scene, dx, dy float64) *trace.Scene {
	out := &trace.Scene{
		Name:      fmt.Sprintf("%s+%g,%g", s.Name, dx, dy),
		Screen:    s.Screen,
		Textures:  append([]trace.TexSize(nil), s.Textures...),
		Triangles: make([]geom.Triangle, len(s.Triangles)),
	}
	for i, t := range s.Triangles {
		for j := range t.V {
			t.V[j].X += dx
			t.V[j].Y += dy
		}
		// u(x+dx, y+dy) must equal the old u(x, y): shift the plane offsets.
		t.Tex.U0 -= t.Tex.DuDx*dx + t.Tex.DuDy*dy
		t.Tex.V0 -= t.Tex.DvDx*dx + t.Tex.DvDy*dy
		out.Triangles[i] = t
	}
	return out
}

// PanSequence builds n frames, each translated stepX/stepY pixels further
// than the last (frame 0 is the unmodified scene). It models the paper's
// §9 scenario: "the user often translates the viewpoint between frames".
func PanSequence(s *trace.Scene, n int, stepX, stepY float64) []*trace.Scene {
	frames := make([]*trace.Scene, n)
	for i := range frames {
		if i == 0 {
			frames[i] = s
			continue
		}
		frames[i] = Translate(s, stepX*float64(i), stepY*float64(i))
	}
	return frames
}

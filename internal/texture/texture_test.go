package texture

import (
	"testing"
	"testing/quick"
)

func TestAddRejectsNonPow2(t *testing.T) {
	m := NewManager()
	for _, dims := range [][2]int{{3, 4}, {4, 3}, {0, 4}, {4, 0}, {-4, 4}, {5, 5}} {
		if _, err := m.Add(dims[0], dims[1]); err == nil {
			t.Errorf("Add(%d, %d) succeeded, want error", dims[0], dims[1])
		}
	}
}

func TestMipChainLevels(t *testing.T) {
	m := NewManager()
	tex := m.MustAdd(64, 16)
	// 64x16 → 32x8 → 16x4 → 8x2 → 4x1 → 2x1 → 1x1 = 7 levels.
	if got := tex.NumLevels(); got != 7 {
		t.Fatalf("NumLevels = %d, want 7", got)
	}
	wantDims := [][2]int{{64, 16}, {32, 8}, {16, 4}, {8, 2}, {4, 1}, {2, 1}, {1, 1}}
	for l, want := range wantDims {
		w, h := tex.LevelSize(l)
		if w != want[0] || h != want[1] {
			t.Errorf("level %d = %dx%d, want %dx%d", l, w, h, want[0], want[1])
		}
	}
}

func TestFootprintBytes(t *testing.T) {
	m := NewManager()
	tex := m.MustAdd(16, 16)
	// Level byte sizes with 4x4 blocking: 16x16 → 16 blocks (1024 B),
	// 8x8 → 4 blocks (256 B), 4x4 → 1, 2x2 → 1, 1x1 → 1 (64 B each).
	want := 1024 + 256 + 64 + 64 + 64
	if got := tex.Bytes(); got != want {
		t.Errorf("Bytes = %d, want %d", got, want)
	}
	if m.TotalBytes() != want {
		t.Errorf("TotalBytes = %d, want %d", m.TotalBytes(), want)
	}
}

func TestAddressesLineAligned4x4(t *testing.T) {
	m := NewManager()
	tex := m.MustAdd(32, 32)
	// All 16 texels of one 4x4 block must fall in the same 64-byte line.
	line := tex.AddressOf(0, 8, 4) / LineBytes
	for du := int32(0); du < 4; du++ {
		for dv := int32(0); dv < 4; dv++ {
			a := tex.AddressOf(0, 8+du, 4+dv)
			if a/LineBytes != line {
				t.Errorf("texel (+%d,+%d) in line %d, want %d", du, dv, a/LineBytes, line)
			}
		}
	}
	// The adjacent block must be in a different line.
	if tex.AddressOf(0, 12, 4)/LineBytes == line {
		t.Error("adjacent 4x4 block shares the cache line")
	}
}

func TestAddressBijectionPerLevel(t *testing.T) {
	m := NewManager()
	tex := m.MustAdd(16, 8)
	seen := make(map[Addr][2]int32)
	for v := int32(0); v < 8; v++ {
		for u := int32(0); u < 16; u++ {
			a := tex.AddressOf(0, u, v)
			if prev, dup := seen[a]; dup {
				t.Fatalf("texels (%d,%d) and %v share address %d", u, v, prev, a)
			}
			seen[a] = [2]int32{u, v}
			if a%TexelBytes != 0 {
				t.Fatalf("address %d not texel-aligned", a)
			}
		}
	}
}

func TestWrapAddressing(t *testing.T) {
	m := NewManager()
	tex := m.MustAdd(8, 8)
	if tex.AddressOf(0, 8, 0) != tex.AddressOf(0, 0, 0) {
		t.Error("u wrap failed")
	}
	if tex.AddressOf(0, 0, 11) != tex.AddressOf(0, 0, 3) {
		t.Error("v wrap failed")
	}
	if tex.AddressOf(0, -1, 0) != tex.AddressOf(0, 7, 0) {
		t.Error("negative u wrap failed")
	}
}

func TestTexturesDisjoint(t *testing.T) {
	m := NewManager()
	a := m.MustAdd(16, 16)
	b := m.MustAdd(32, 8)
	// Address ranges must not overlap: highest address of a < base of b.
	maxA := Addr(0)
	for l := 0; l < a.NumLevels(); l++ {
		w, h := a.LevelSize(l)
		for v := 0; v < h; v++ {
			for u := 0; u < w; u++ {
				if addr := a.AddressOf(l, int32(u), int32(v)); addr > maxA {
					maxA = addr
				}
			}
		}
	}
	minB := b.AddressOf(0, 0, 0)
	for l := 0; l < b.NumLevels(); l++ {
		w, h := b.LevelSize(l)
		for v := 0; v < h; v++ {
			for u := 0; u < w; u++ {
				if addr := b.AddressOf(l, int32(u), int32(v)); addr < minB {
					minB = addr
				}
			}
		}
	}
	if maxA >= minB {
		t.Errorf("textures overlap: maxA=%d minB=%d", maxA, minB)
	}
	if m.Count() != 2 || m.Texture(0) != a || m.Texture(1) != b {
		t.Error("manager bookkeeping wrong")
	}
}

func TestBilinearFootprintNeighborhood(t *testing.T) {
	m := NewManager()
	tex := m.MustAdd(16, 16)
	var out [4]Addr
	// Sampling exactly at texel center (2.5, 3.5) — lu = 2.0 → texels 2,3.
	tex.BilinearFootprint(0, 2.5, 3.5, out[:])
	want := [4]Addr{
		tex.AddressOf(0, 2, 3),
		tex.AddressOf(0, 3, 3),
		tex.AddressOf(0, 2, 4),
		tex.AddressOf(0, 3, 4),
	}
	if out != want {
		t.Errorf("footprint = %v, want %v", out, want)
	}
}

func TestTrilinearFootprintLevels(t *testing.T) {
	m := NewManager()
	tex := m.MustAdd(64, 64)
	var out [8]Addr
	tex.TrilinearFootprint(20, 20, 1.3, &out)
	// First four addresses must be in level 1's range, next four in level 2's.
	l1lo, l1hi := levelRange(tex, 1)
	l2lo, l2hi := levelRange(tex, 2)
	for i := 0; i < 4; i++ {
		if out[i] < l1lo || out[i] >= l1hi {
			t.Errorf("addr[%d]=%d not in level 1 range [%d,%d)", i, out[i], l1lo, l1hi)
		}
	}
	for i := 4; i < 8; i++ {
		if out[i] < l2lo || out[i] >= l2hi {
			t.Errorf("addr[%d]=%d not in level 2 range [%d,%d)", i, out[i], l2lo, l2hi)
		}
	}
}

func TestTrilinearFootprintClampsAtChainEnd(t *testing.T) {
	m := NewManager()
	tex := m.MustAdd(4, 4)
	var out [8]Addr
	// LOD far beyond the chain: both halves must sample the 1x1 tail level
	// without panicking.
	tex.TrilinearFootprint(1, 1, 20, &out)
	lo, hi := levelRange(tex, tex.NumLevels()-1)
	for i, a := range out {
		if a < lo || a >= hi {
			t.Errorf("addr[%d]=%d outside tail level [%d,%d)", i, a, lo, hi)
		}
	}
	// Negative LOD (magnification) must sample the base level.
	tex.TrilinearFootprint(1, 1, -3, &out)
	lo0, hi0 := levelRange(tex, 0)
	for i := 0; i < 4; i++ {
		if out[i] < lo0 || out[i] >= hi0 {
			t.Errorf("magnified addr[%d]=%d outside base level", i, out[i])
		}
	}
}

// levelRange returns the [lo, hi) address range of level l by scanning it.
func levelRange(tex *Texture, l int) (lo, hi Addr) {
	w, h := tex.LevelSize(l)
	lo = tex.AddressOf(l, 0, 0)
	hi = lo
	for v := 0; v < h; v++ {
		for u := 0; u < w; u++ {
			a := tex.AddressOf(l, int32(u), int32(v))
			if a < lo {
				lo = a
			}
			if a > hi {
				hi = a
			}
		}
	}
	return lo, hi + TexelBytes
}

func TestAddressInBoundsProperty(t *testing.T) {
	m := NewManager()
	tex := m.MustAdd(128, 32)
	total := Addr(m.TotalBytes())
	f := func(l uint8, u, v int32) bool {
		lv := int(l) % tex.NumLevels()
		a := tex.AddressOf(lv, u, v)
		return a < total && a%TexelBytes == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestSpatialLocalityOfBlocking(t *testing.T) {
	// Walking a 4-texel-wide scan across the texture must touch far fewer
	// lines than texels — the whole premise of texture blocking.
	m := NewManager()
	tex := m.MustAdd(64, 64)
	lines := make(map[Addr]bool)
	texels := 0
	for v := int32(0); v < 16; v++ {
		for u := int32(0); u < 64; u++ {
			lines[tex.AddressOf(0, u, v)/LineBytes] = true
			texels++
		}
	}
	// 16 rows x 64 cols = 1024 texels = exactly 64 blocks.
	if len(lines) != 64 {
		t.Errorf("touched %d lines, want 64", len(lines))
	}
	_ = texels
}

func BenchmarkTrilinearFootprint(b *testing.B) {
	m := NewManager()
	tex := m.MustAdd(256, 256)
	var out [8]Addr
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tex.TrilinearFootprint(float64(i%256), float64((i*7)%256), 0.5, &out)
	}
}

package progress

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/sweep"
)

func rowEvent(row int) Event {
	return Event{Type: "row", Row: row, Total: 3, Procs: 4, Size: 16, Cycles: 100, Frags: 7}
}

func TestPublishSubscribeReplay(t *testing.T) {
	b := NewBroker()
	for i := 0; i < 3; i++ {
		b.Publish("job", rowEvent(i))
	}
	b.End("job", "done", "")

	// A subscription from 0 replays the whole log and then drains.
	sub := b.Subscribe("job", 0)
	ctx := context.Background()
	for want := 0; want < 4; want++ {
		ev, ok := sub.Next(ctx)
		if !ok {
			t.Fatalf("Next returned !ok at seq %d", want)
		}
		if ev.Seq != int64(want) {
			t.Fatalf("seq = %d, want %d (dense sequence numbers)", ev.Seq, want)
		}
		if want < 3 {
			if ev.Type != "row" || ev.Row != want {
				t.Fatalf("event %d = %+v, want row %d", want, ev, want)
			}
			if ev.Time == "" {
				t.Fatalf("event %d missing publish timestamp", want)
			}
		} else if !ev.Terminal() || ev.Type != "done" || ev.Row != -1 {
			t.Fatalf("last event = %+v, want terminal done with Row=-1", ev)
		}
	}
	if _, ok := sub.Next(ctx); ok {
		t.Fatal("Next after the terminal event must report !ok")
	}

	// Resuming mid-log (the Last-Event-ID path) is gapless.
	sub = b.Subscribe("job", 2)
	ev, ok := sub.Next(ctx)
	if !ok || ev.Seq != 2 {
		t.Fatalf("resume from 2: got %+v ok=%v, want seq 2", ev, ok)
	}
}

func TestNextBlocksUntilPublish(t *testing.T) {
	b := NewBroker()
	sub := b.Subscribe("job", 0) // subscribing before any event is fine
	got := make(chan Event, 1)
	go func() {
		ev, ok := sub.Next(context.Background())
		if ok {
			got <- ev
		}
		close(got)
	}()
	// Give the subscriber a moment to block, then publish.
	time.Sleep(10 * time.Millisecond)
	b.Publish("job", rowEvent(0))
	select {
	case ev := <-got:
		if ev.Row != 0 {
			t.Fatalf("got %+v, want row 0", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Next never observed the publish")
	}
}

func TestNextContextCancel(t *testing.T) {
	b := NewBroker()
	sub := b.Subscribe("job", 0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := sub.Next(ctx)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next must report !ok when its context dies")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not unblock on context cancellation")
	}
}

func TestEndIdempotentAndLatePublishDropped(t *testing.T) {
	b := NewBroker()
	b.Publish("job", rowEvent(0))
	b.End("job", "failed", "boom")
	b.End("job", "done", "")      // second End must not land
	b.Publish("job", rowEvent(1)) // nor a publish after close

	evs := b.Events("job", 0)
	if len(evs) != 2 {
		t.Fatalf("log has %d events, want 2 (row + first terminal): %+v", len(evs), evs)
	}
	if evs[1].Type != "failed" || evs[1].Error != "boom" {
		t.Fatalf("terminal = %+v, want the first End (failed/boom)", evs[1])
	}
	if b.TotalEvents() != 2 {
		t.Fatalf("TotalEvents = %d, want 2 (dropped events must not count)", b.TotalEvents())
	}
}

func TestShutdownClosesOpenStreamsOnly(t *testing.T) {
	b := NewBroker()
	b.Publish("open", rowEvent(0))
	b.Publish("finished", rowEvent(0))
	b.End("finished", "done", "")

	b.Shutdown()
	b.Shutdown() // safe to repeat

	open := b.Events("open", 0)
	if len(open) != 2 || open[1].Type != "shutdown" {
		t.Fatalf("open stream = %+v, want a shutdown terminal appended", open)
	}
	fin := b.Events("finished", 0)
	if len(fin) != 2 || fin[1].Type != "done" {
		t.Fatalf("finished stream = %+v, want its done terminal untouched", fin)
	}

	// Shutdown releases blocked subscribers.
	sub := b.Subscribe("open", 2)
	if _, ok := sub.Next(context.Background()); ok {
		t.Fatal("subscriber past the terminal must drain with !ok")
	}
}

func TestConcurrentPublishersDenseSeqs(t *testing.T) {
	b := NewBroker()
	const publishers, perPublisher = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				b.Publish("job", rowEvent(p))
			}
		}(p)
	}
	wg.Wait()
	b.End("job", "done", "")

	evs := b.Events("job", 0)
	if len(evs) != publishers*perPublisher+1 {
		t.Fatalf("log has %d events, want %d", len(evs), publishers*perPublisher+1)
	}
	for i, ev := range evs {
		if ev.Seq != int64(i) {
			t.Fatalf("evs[%d].Seq = %d; sequence numbers must stay dense under contention", i, ev.Seq)
		}
	}
	if b.TotalEvents() != int64(len(evs)) {
		t.Fatalf("TotalEvents = %d, want %d", b.TotalEvents(), len(evs))
	}
}

func TestSinkMeasuresWallTime(t *testing.T) {
	b := NewBroker()
	s := NewSink(b, "job")
	s.RowStarted(0, 2, 4, 16, "hash0")
	time.Sleep(5 * time.Millisecond)
	s.RowDone(0, 2, sweep.Row{Procs: 4, Size: 16, Cycles: 123, Frags: 9}, "hash0")
	// A row the sink never saw start still publishes, with zero wall time.
	s.RowDone(1, 2, sweep.Row{Procs: 8, Size: 16}, "hash1")

	evs := b.Events("job", 0)
	if len(evs) != 2 {
		t.Fatalf("log has %d events, want 2", len(evs))
	}
	e0 := evs[0]
	if e0.Row != 0 || e0.Procs != 4 || e0.Size != 16 || e0.Cycles != 123 || e0.Frags != 9 ||
		e0.ConfigHash != "hash0" || e0.Total != 2 {
		t.Fatalf("row event = %+v, want the Row's columns carried through", e0)
	}
	if e0.WallSeconds <= 0 {
		t.Fatalf("WallSeconds = %v, want > 0 for a started row", e0.WallSeconds)
	}
	if evs[1].WallSeconds != 0 {
		t.Fatalf("unstarted row WallSeconds = %v, want 0", evs[1].WallSeconds)
	}
}

func TestReplaySweep(t *testing.T) {
	spec := sweep.Spec{Scene: "truc640", Scale: 0.2, Procs: []int{1, 4}, Sizes: []int{16}, Cache: "perfect"}
	ctx := context.Background()
	res, err := sweep.RunWith(ctx, spec, sweep.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}

	b := NewBroker()
	ReplaySweep(b, "job", payload, true)
	evs := b.Events("job", 0)
	if len(evs) != len(res.Rows) {
		t.Fatalf("replayed %d events, want one per row (%d)", len(evs), len(res.Rows))
	}
	for i, ev := range evs {
		row := res.Rows[i]
		if ev.Row != i || ev.Procs != row.Procs || ev.Size != row.Size ||
			ev.Cycles != row.Cycles || ev.Frags != row.Frags {
			t.Fatalf("event %d = %+v does not match row %+v", i, ev, row)
		}
		if !ev.CacheHit {
			t.Fatalf("event %d: replayed rows must carry CacheHit", i)
		}
		if ev.ConfigHash == "" {
			t.Fatalf("event %d missing config hash", i)
		}
	}

	// Garbage payloads replay nothing rather than failing.
	ReplaySweep(b, "other", []byte("not json"), false)
	if got := b.Events("other", 0); len(got) != 0 {
		t.Fatalf("garbage payload replayed %d events, want 0", len(got))
	}
}

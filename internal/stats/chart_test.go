package stats

import (
	"strings"
	"testing"
)

func TestChartEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	out := c.String()
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart output:\n%s", out)
	}
}

func TestChartRendersSeries(t *testing.T) {
	c := &Chart{
		Title:  "speedup",
		XLabel: "processors",
		YLabel: "speedup",
		Series: []Series{
			{Name: "block16", X: []float64{1, 16, 64}, Y: []float64{1, 14, 50}},
			{Name: "sli4", X: []float64{1, 16, 64}, Y: []float64{1, 14, 40}},
		},
		Width:  40,
		Height: 10,
	}
	out := c.String()
	for _, want := range []string{"## speedup", "block16", "sli4", "(processors)", "y: speedup", "50", "0"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Both series marks must appear in the plot area.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("series marks missing:\n%s", out)
	}
	// Plot area must have exactly Height rows of "|" plus axis line.
	bars := strings.Count(out, "|")
	if bars != 10 {
		t.Errorf("got %d plot rows, want 10:\n%s", bars, out)
	}
}

func TestChartMonotoneCurvePlacement(t *testing.T) {
	// An increasing curve must place its marks higher (earlier rows) as x
	// grows: the last column's mark must be on the first row, the first
	// column's near the bottom.
	c := &Chart{
		Series: []Series{{Name: "up", X: []float64{0, 1}, Y: []float64{0, 100}}},
		Width:  20, Height: 5,
	}
	lines := strings.Split(c.String(), "\n")
	top := lines[0]
	if !strings.Contains(top, "*") {
		t.Errorf("max point not on top row:\n%s", c.String())
	}
	if !strings.HasSuffix(strings.TrimRight(top, " "), "*") {
		t.Errorf("max point not at right edge:\n%s", c.String())
	}
}

func TestChartDefaultsAndDegenerate(t *testing.T) {
	// Single point, zero ranges: must not panic or divide by zero.
	c := &Chart{Series: []Series{{Name: "pt", X: []float64{5}, Y: []float64{5}}}}
	out := c.String()
	if !strings.Contains(out, "*") {
		t.Errorf("single point not plotted:\n%s", out)
	}
}

func TestChartNegativeValues(t *testing.T) {
	c := &Chart{
		Series: []Series{{Name: "n", X: []float64{0, 1}, Y: []float64{-10, 10}}},
		Width:  20, Height: 6,
	}
	out := c.String()
	if !strings.Contains(out, "-10") {
		t.Errorf("negative minimum not labeled:\n%s", out)
	}
}

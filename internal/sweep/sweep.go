// Package sweep runs parameter sweeps over the simulator: the cross product
// of processor counts and tile sizes for one scene and distribution, each
// configuration reported as one Row. It is the shared engine behind the
// texsweep CLI (CSV/JSON output) and the texsimd service (sweep jobs), so
// both produce identical rows for identical specs.
package sweep

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/memory"
	"repro/internal/par"
	"repro/internal/resultcache"
	"repro/internal/scene"
	"repro/internal/telemetry/flight"
	"repro/internal/texture"
)

// Spec describes one sweep: a scene plus the machine axes. The zero values
// of optional fields mean paper defaults (see WithDefaults). Spec is the
// canonical cache identity of a sweep — every field participates in the
// result-cache key, so any change re-simulates.
type Spec struct {
	// Scene is a paper benchmark name (see texsim.BenchmarkNames).
	Scene string `json:"scene"`
	// Scale is the scene resolution scale (0 = 0.5, the experiments default).
	Scale float64 `json:"scale,omitempty"`
	// Dist is "block", "sli" or "blockskewed" ("" = "block").
	Dist string `json:"dist,omitempty"`
	// Procs are the processor counts to sweep (empty = 1,4,16,64).
	Procs []int `json:"procs,omitempty"`
	// Sizes are the tile sizes to sweep (empty = 4,8,16,32,64).
	Sizes []int `json:"sizes,omitempty"`
	// Bus is the texture-bus bandwidth in texels per pixel-cycle (0 keeps
	// the zero meaning of BusConfig: infinite).
	Bus float64 `json:"bus,omitempty"`
	// Cache is "real", "perfect" or "none" ("" = "real").
	Cache string `json:"cache,omitempty"`
	// Buffer is the triangle-buffer depth (0 = paper default).
	Buffer int `json:"buffer,omitempty"`
	// Caches sweeps the real-cache capacity axis: per-node cache sizes in
	// KB, each with the paper's geometry (4-way, 64-byte lines). Requires
	// the "real" cache model; empty means the single configured cache.
	Caches []int `json:"caches,omitempty"`
	// Buses sweeps the texture-bus bandwidth axis (texels per pixel-cycle,
	// 0 = infinite). Mutually exclusive with Bus.
	Buses []float64 `json:"buses,omitempty"`
	// Buffers sweeps the triangle-buffer depth axis. Mutually exclusive
	// with Buffer.
	Buffers []int `json:"buffers,omitempty"`
	// Flight enables the simulation flight recorder: every configuration's
	// run is recorded as per-node setup/scan/stall/idle phase timelines and
	// the Result gains one Flight entry (summary + Chrome trace-event JSON)
	// per row. Part of the cache key: a flight sweep is a different result
	// document than a plain one.
	Flight bool `json:"flight,omitempty"`
	// FlightInterval is the recorder bucket width in cycles (0 = auto).
	FlightInterval float64 `json:"flight_interval,omitempty"`
}

// WithDefaults returns the spec with unset axes replaced by the defaults
// documented on Spec.
func (s Spec) WithDefaults() Spec {
	if s.Scale == 0 {
		s.Scale = 0.5
	}
	if s.Dist == "" {
		s.Dist = "block"
	}
	if len(s.Procs) == 0 {
		s.Procs = []int{1, 4, 16, 64}
	}
	if len(s.Sizes) == 0 {
		s.Sizes = []int{4, 8, 16, 32, 64}
	}
	if s.Cache == "" {
		s.Cache = "real"
	}
	return s
}

// Validate rejects specs the simulator would reject, with CLI/API-friendly
// messages. It validates the defaulted form.
func (s Spec) Validate() error {
	s = s.WithDefaults()
	if _, err := scene.ByName(s.Scene, s.Scale); err != nil {
		return fmt.Errorf("%w (known: %v)", err, scene.Names())
	}
	if _, err := distKind(s.Dist); err != nil {
		return err
	}
	if _, err := cacheKind(s.Cache); err != nil {
		return err
	}
	for _, p := range s.Procs {
		if p <= 0 {
			return fmt.Errorf("procs: %d must be positive", p)
		}
	}
	for _, w := range s.Sizes {
		if w <= 0 {
			return fmt.Errorf("sizes: %d must be positive", w)
		}
	}
	if s.Bus < 0 {
		return fmt.Errorf("bus: %v must be non-negative", s.Bus)
	}
	if s.Buffer < 0 {
		return fmt.Errorf("buffer: %d must be non-negative", s.Buffer)
	}
	if s.FlightInterval < 0 {
		return fmt.Errorf("flight_interval: %v must be non-negative", s.FlightInterval)
	}
	if s.FlightInterval > 0 && !s.Flight {
		return fmt.Errorf("flight_interval set without flight")
	}
	if len(s.Caches) > 0 && s.Cache != "real" {
		return fmt.Errorf("caches: cache-size axis requires the real cache model, not %q", s.Cache)
	}
	for _, kb := range s.Caches {
		if kb <= 0 {
			return fmt.Errorf("caches: %d KB must be positive", kb)
		}
		if err := cacheConfigKB(kb).Validate(); err != nil {
			return fmt.Errorf("caches: %d KB: %w", kb, err)
		}
	}
	if len(s.Buses) > 0 && s.Bus != 0 {
		return fmt.Errorf("bus and buses are mutually exclusive")
	}
	for _, b := range s.Buses {
		if b < 0 {
			return fmt.Errorf("buses: %v must be non-negative", b)
		}
	}
	if len(s.Buffers) > 0 && s.Buffer != 0 {
		return fmt.Errorf("buffer and buffers are mutually exclusive")
	}
	for _, b := range s.Buffers {
		if b <= 0 {
			return fmt.Errorf("buffers: %d must be positive", b)
		}
	}
	return nil
}

// cacheConfigKB is the paper's cache geometry at a swept capacity: kb KB,
// 4-way, 64-byte lines.
func cacheConfigKB(kb int) cache.Config {
	return cache.Config{SizeBytes: kb * 1024, Ways: 4, LineBytes: texture.LineBytes}
}

func distKind(name string) (distrib.Kind, error) {
	switch name {
	case "block":
		return distrib.BlockKind, nil
	case "sli":
		return distrib.SLIKind, nil
	case "blockskewed":
		return distrib.BlockSkewedKind, nil
	default:
		return 0, fmt.Errorf("unknown distribution %q (block, sli or blockskewed)", name)
	}
}

// RowHash is the content hash identifying one (procs, size) configuration
// point of this sweep: the result-cache hash (sha256 of canonical JSON) of
// the defaulted spec narrowed to that single point. Progress events carry
// it so a consumer can correlate a streamed row with the cached result the
// equivalent single-point sweep would produce.
func (s Spec) RowHash(procs, size int) string {
	p := s.WithDefaults()
	p.Procs = []int{procs}
	p.Sizes = []int{size}
	key, err := resultcache.Key(p)
	if err != nil {
		return "" // unreachable for a Spec: plain struct, always encodable
	}
	return key
}

// rasterClassProjection is the raster-relevant slice of a Spec: the fields
// that determine rasterization and span demultiplexing, and nothing else.
// Cache, bus, buffer and flight settings deliberately do not appear — sweep
// points differing only there share their raster work.
type rasterClassProjection struct {
	Scene string  `json:"scene"`
	Scale float64 `json:"scale"`
	Dist  string  `json:"dist"`
	Procs int     `json:"procs"`
	Size  int     `json:"size"`
}

// RasterClassKey is the raster-equivalence class of one (procs, size)
// configuration point: the sub-hash of the config hash covering only the
// raster-relevant fields (scene, resolution scale, distribution, processor
// count, tile size). Two points with equal keys are guaranteed to produce
// identical raster+demux output, so the sweep planner rasterizes each class
// once and replays the artifact into every member.
func (s Spec) RasterClassKey(procs, size int) string {
	p := s.WithDefaults()
	key, err := resultcache.Key(rasterClassProjection{
		Scene: p.Scene, Scale: p.Scale, Dist: p.Dist, Procs: procs, Size: size,
	})
	if err != nil {
		return "" // unreachable: plain struct, always encodable
	}
	return key
}

// pointHash is RowHash extended to the optional cache/bus/buffer axes: the
// cache hash of the spec narrowed to one sweep point. For a spec without
// those axes it equals RowHash(procs, size).
func (s Spec) pointHash(pt point) string {
	p := s.WithDefaults()
	p.Procs = []int{pt.procs}
	p.Sizes = []int{pt.size}
	if len(p.Caches) > 0 {
		p.Caches = []int{pt.cacheKB}
	}
	if len(p.Buses) > 0 {
		p.Buses = []float64{pt.bus}
	}
	if len(p.Buffers) > 0 {
		p.Buffers = []int{pt.buffer}
	}
	key, err := resultcache.Key(p)
	if err != nil {
		return "" // unreachable for a Spec: plain struct, always encodable
	}
	return key
}

// Points returns the number of sweep points the defaulted spec expands to
// — the row count of its result. The service's admission control uses it
// to tell small interactive sweeps from bulk ones.
func (s Spec) Points() int {
	s = s.WithDefaults()
	n := len(s.Procs) * len(s.Sizes)
	if len(s.Caches) > 0 {
		n *= len(s.Caches)
	}
	if len(s.Buses) > 0 {
		n *= len(s.Buses)
	}
	if len(s.Buffers) > 0 {
		n *= len(s.Buffers)
	}
	return n
}

// rowCheckpointID is the identity a checkpointed row is stored under. The
// point hash alone is not enough: the speedup column divides by the
// (1-processor, Sizes[0]) baseline, so two sweeps sharing a point but
// leading with different tile sizes would produce different row bytes.
// Keying on (point, baseline) makes a checkpointed row interchangeable
// exactly between sweeps where it is byte-identical.
type rowCheckpointID struct {
	Point    string `json:"point"`
	Baseline string `json:"baseline"`
}

// baselinePoint is the baseline configuration a point's speedup compares
// against: one processor, the sweep's leading tile size, the point's
// cache/bus/buffer combination.
func (s Spec) baselinePoint(pt point) point {
	return point{procs: 1, size: s.WithDefaults().Sizes[0],
		cacheKB: pt.cacheKB, bus: pt.bus, buffer: pt.buffer}
}

// rowCheckpointKey is the checkpoint-store key of one sweep point's row.
func (s Spec) rowCheckpointKey(pt point) string {
	key, err := resultcache.Key(rowCheckpointID{
		Point:    s.pointHash(pt),
		Baseline: s.pointHash(s.baselinePoint(pt)),
	})
	if err != nil {
		return "" // unreachable: plain struct, always encodable
	}
	return key
}

// baselineCheckpointKey is the checkpoint-store key of one baseline's
// cycles. The "baseline:" prefix keeps it apart from row keys (which are
// bare hex).
func (s Spec) baselineCheckpointKey(pt point) string {
	return "baseline:" + s.pointHash(s.baselinePoint(pt))
}

// baselineCheckpoint is the persisted slice of a baseline simulation: only
// its completion time participates in any row (the speedup denominator).
type baselineCheckpoint struct {
	Cycles float64 `json:"cycles"`
}

func cacheKind(name string) (core.CacheKind, error) {
	switch name {
	case "real":
		return core.CacheReal, nil
	case "perfect":
		return core.CachePerfect, nil
	case "none":
		return core.CacheNone, nil
	default:
		return 0, fmt.Errorf("unknown cache model %q (real, perfect or none)", name)
	}
}

// Row is one configuration's results: the texsweep CSV columns, and the row
// shape texsimd sweep jobs return as JSON.
type Row struct {
	Scene          string  `json:"scene"`
	Dist           string  `json:"dist"`
	Procs          int     `json:"procs"`
	Size           int     `json:"size"`
	Cycles         float64 `json:"cycles"`
	Speedup        float64 `json:"speedup"`
	TexelPerFrag   float64 `json:"texel_per_frag"`
	PixelImbalance float64 `json:"pixel_imbalance"`
	StallCycles    float64 `json:"stall_cycles"`
	// Frags is the total fragments (pixels) drawn across nodes.
	Frags uint64 `json:"frags"`
	// CacheKB, Bus and Buffer echo the row's position on the optional
	// cache/bus/buffer axes. Zero — and absent from JSON and CSV — when the
	// sweep does not use the corresponding axis, so rows of axis-free specs
	// are byte-identical to what they were before the axes existed.
	CacheKB int     `json:"cache_kb,omitempty"`
	Bus     float64 `json:"bus,omitempty"`
	Buffer  int     `json:"buffer,omitempty"`
}

// Flight is one configuration's flight recording: the per-node phase
// summary and the Chrome trace-event JSON document (Perfetto-loadable),
// in the same order as the Rows it parallels.
type Flight struct {
	Procs   int                  `json:"procs"`
	Size    int                  `json:"size"`
	Summary []flight.NodeSummary `json:"summary"`
	Trace   json.RawMessage      `json:"trace"`
}

// Result is a completed sweep: the defaulted spec it ran plus its rows in
// deterministic (procs-major, then size) order.
type Result struct {
	Spec Spec  `json:"spec"`
	Rows []Row `json:"rows"`
	// Flights holds one flight recording per row when Spec.Flight is set,
	// in row order.
	Flights []Flight `json:"flights,omitempty"`
	// SimulatedCycles is the total simulated time across all
	// configurations, the numerator of the service's cycles-per-wall-second
	// throughput metric.
	SimulatedCycles float64 `json:"simulated_cycles"`
	// Plan, when set by the caller (texsweep -json does), echoes the
	// planner statistics of the run that produced the result. RunWith never
	// sets it: plan stats depend on RunOpts.NoMemo, which is outside the
	// spec's cache identity, so cacheable result documents must not carry
	// them.
	Plan *PlanStats `json:"plan,omitempty"`
}

// RunOpts tunes how a sweep executes without changing what it computes:
// rows are byte-identical at every setting, so none of these fields
// participate in Spec's result-cache identity.
type RunOpts struct {
	// Parallelism bounds how many configurations simulate concurrently
	// (<=0 = sequential). It is also the sweep's total worker budget.
	Parallelism int
	// NodeParallelism bounds each simulation's parallel node kernel (see
	// core.Machine.SetNodeParallelism): 1 forces the event-driven kernel,
	// 0 shares the worker budget — when fewer configurations than budget
	// run concurrently, the spare workers go to each machine's node kernel
	// (budget / concurrent configurations, at least 1). A sweep of many
	// configurations therefore parallelizes across configurations; a sweep
	// of one big configuration parallelizes across its nodes.
	NodeParallelism int
	// Progress, when non-nil, observes each configuration's lifecycle (see
	// ProgressSink). Off costs one nil check per row; rows and results are
	// byte-identical either way.
	Progress ProgressSink
	// NoMemo disables cross-configuration raster memoization: every
	// simulation rasterizes from scratch, as sweeps always did before the
	// planner. Rows are byte-identical either way (the planner's replay
	// contract); the knob exists as an escape hatch and for benchmarking
	// the planner itself.
	NoMemo bool
	// Plan, when non-nil, receives the planner's statistics for the run.
	Plan *PlanStats
	// Rows, when non-nil, is the row-level checkpoint store: every completed
	// row (and speedup baseline) is persisted under its content key, and a
	// later run of a sweep containing the same point restores the row
	// instead of simulating it. Restored rows are byte-identical to
	// simulated ones (rows round-trip exactly through JSON), so a resumed
	// sweep's final output matches an uninterrupted run byte for byte.
	// Checkpoint keys are opaque strings; pass a resultcache namespace view
	// (Cache.Namespace) to keep them apart from full-result entries.
	// Ignored when Spec.Flight is set — flight recordings are not
	// checkpointed, and a partial restore would break the rows/flights
	// parallelism.
	Rows RowStore
}

// RowStore persists per-row sweep checkpoints. Both methods must be safe
// for concurrent use (rows complete on parallel workers); Put failures are
// an availability loss, never a sweep failure. *resultcache.Cache and its
// namespace views satisfy the interface.
type RowStore interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte) error
}

// ProgressSink observes a sweep's per-row lifecycle. Rows complete on
// parallel workers, so implementations must be safe for concurrent use.
// Callbacks run on the simulation hot path's row granularity — they should
// not block.
type ProgressSink interface {
	// RowStarted fires when row `index` of `total` begins simulating.
	RowStarted(index, total, procs, size int, configHash string)
	// RowDone fires when the row's results are final.
	RowDone(index, total int, row Row, configHash string)
}

// RowCachedSink is optionally implemented by a ProgressSink to distinguish
// rows restored from a checkpoint store (RunOpts.Rows) from freshly
// simulated ones. A sink without it sees the restored rows as an
// instantaneous RowStarted/RowDone pair instead. Restored rows are
// reported in index order before any simulation starts.
type RowCachedSink interface {
	RowCached(index, total int, row Row, configHash string)
}

// nodeParallelism resolves the per-machine worker bound for a sweep of
// nJobs configurations under the shared-budget rule documented on RunOpts.
func (o RunOpts) nodeParallelism(nJobs int) int {
	if o.NodeParallelism != 0 {
		return o.NodeParallelism
	}
	budget := o.Parallelism
	if budget <= 1 {
		// Sequential sweep: the whole budget concept is moot; let each
		// machine use its own default (GOMAXPROCS).
		return 0
	}
	configPar := budget
	if nJobs < configPar {
		configPar = nJobs
	}
	if configPar < 1 {
		configPar = 1
	}
	nodePar := budget / configPar
	if nodePar < 1 {
		nodePar = 1
	}
	return nodePar
}

// Run executes the sweep on up to parallelism concurrent simulations
// (<=0 = sequential).
//
// Deprecated: Run is a thin compatibility wrapper. New code should call
// RunWith, the single sweep runner, which exposes the full execution
// options (worker budget sharing, progress, planner knobs) on RunOpts.
func Run(ctx context.Context, spec Spec, parallelism int) (*Result, error) {
	return RunWith(ctx, spec, RunOpts{Parallelism: parallelism})
}

// point is one sweep point: a (procs, size) configuration at one position
// on the optional cache/bus/buffer axes. combo indexes the speedup baseline
// it compares against.
type point struct {
	procs, size     int
	cacheKB, buffer int
	bus             float64
	combo           int
}

// RunWith is the sweep runner: it expands the spec's axes into points,
// partitions points and baselines into raster-equivalence classes (the
// planner, planner.go), and simulates everything under one worker budget.
// Row order is independent of parallelism and memoization; cancelling ctx
// abandons unstarted configurations and returns ctx.Err().
func RunWith(ctx context.Context, spec Spec, opts RunOpts) (*Result, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	dk, _ := distKind(spec.Dist)
	ck, _ := cacheKind(spec.Cache)

	b, err := scene.ByName(spec.Scene, spec.Scale)
	if err != nil {
		return nil, err
	}
	sc, err := b.Build()
	if err != nil {
		return nil, err
	}

	// Axis singletons: a scalar spec is a one-entry axis, so the axis-free
	// sweep is the degenerate case of the same code path.
	cachesAxis := spec.Caches
	if len(cachesAxis) == 0 {
		cachesAxis = []int{0}
	}
	busesAxis := spec.Buses
	if len(busesAxis) == 0 {
		busesAxis = []float64{spec.Bus}
	}
	buffersAxis := spec.Buffers
	if len(buffersAxis) == 0 {
		buffersAxis = []int{spec.Buffer}
	}

	// Baseline combos: the speedup column compares each row against the
	// one-processor machine with every non-raster parameter identical, so
	// each distinct (cache, bus, buffer) combination needs its own baseline.
	type combo struct {
		cacheKB, buffer int
		bus             float64
	}
	var combos []combo
	comboIdx := make(map[combo]int)
	for _, kb := range cachesAxis {
		for _, bus := range busesAxis {
			for _, buf := range buffersAxis {
				c := combo{cacheKB: kb, buffer: buf, bus: bus}
				if _, ok := comboIdx[c]; !ok {
					comboIdx[c] = len(combos)
					combos = append(combos, c)
				}
			}
		}
	}

	var points []point
	for _, p := range spec.Procs {
		for _, w := range spec.Sizes {
			for _, kb := range cachesAxis {
				for _, bus := range busesAxis {
					for _, buf := range buffersAxis {
						points = append(points, point{
							procs: p, size: w, cacheKB: kb, bus: bus, buffer: buf,
							combo: comboIdx[combo{cacheKB: kb, buffer: buf, bus: bus}],
						})
					}
				}
			}
		}
	}

	mkConfig := func(procs, size int, c combo) core.Config {
		cfg := core.Config{
			Procs:          procs,
			Distribution:   dk,
			TileSize:       size,
			CacheKind:      ck,
			Bus:            memory.BusConfig{TexelsPerCycle: c.bus},
			TriangleBuffer: c.buffer,
		}
		if c.cacheKB > 0 {
			cfg.CacheConfig = cacheConfigKB(c.cacheKB)
		}
		return cfg
	}

	// Row-level checkpoint restore. Before anything simulates (or even
	// enters the planner's class partition), every point and baseline is
	// looked up in the checkpoint store; restored work is excluded from the
	// partition so classes are sized — and memoization decided — by what
	// actually still runs. Rows round-trip exactly through JSON (Go floats
	// encode shortest-round-trip), so a resumed sweep's output is
	// byte-identical to an uninterrupted run. Flight sweeps never
	// checkpoint: recordings are not persisted, and a partially restored
	// flights slice would desynchronize from the rows.
	useRows := opts.Rows != nil && !spec.Flight
	rows := make([]Row, len(points))
	done := make([]bool, len(points))
	checkpointed := 0
	if useRows {
		for i, pt := range points {
			data, ok := opts.Rows.Get(spec.rowCheckpointKey(pt))
			if !ok {
				continue
			}
			var r Row
			if json.Unmarshal(data, &r) != nil || r.Procs != pt.procs || r.Size != pt.size {
				continue // corrupt or stale entry: re-simulate
			}
			rows[i] = r
			done[i] = true
			checkpointed++
		}
	}

	// A baseline only runs when some surviving point still divides by it,
	// and even then its cycles may be checkpointed from an earlier run.
	needBase := make([]bool, len(combos))
	for i, pt := range points {
		if !done[i] {
			needBase[pt.combo] = true
		}
	}
	baseCycles := make([]float64, len(combos))
	haveBase := make([]bool, len(combos))
	comboPoint := func(ci int) point {
		return point{cacheKB: combos[ci].cacheKB, bus: combos[ci].bus, buffer: combos[ci].buffer}
	}
	if useRows {
		for ci := range combos {
			if !needBase[ci] {
				continue
			}
			data, ok := opts.Rows.Get(spec.baselineCheckpointKey(comboPoint(ci)))
			if !ok {
				continue
			}
			var bc baselineCheckpoint
			if json.Unmarshal(data, &bc) == nil && bc.Cycles > 0 {
				baseCycles[ci] = bc.Cycles
				haveBase[ci] = true
				checkpointed++
			}
		}
	}

	// Partition every surviving simulation — baselines first, then points —
	// into raster-equivalence classes. With one processor every tile maps to
	// node 0, so one (1, Sizes[0]) class serves all baselines.
	pl := newPlan(!opts.NoMemo)
	baseClass := make([]*classState, len(combos))
	for ci := range combos {
		if needBase[ci] && !haveBase[ci] {
			baseClass[ci] = pl.add(spec, 1, spec.Sizes[0], ck, combos[ci].bus)
		}
	}
	pointClass := make([]*classState, len(points))
	for i, pt := range points {
		if !done[i] {
			pointClass[i] = pl.add(spec, pt.procs, pt.size, ck, pt.bus)
		}
	}
	pl.seal(len(points), len(combos))
	pl.stats.Checkpointed = checkpointed

	// Restored rows replay into the progress stream in index order before
	// any simulation starts, so a resumed job's consumers see the completed
	// prefix immediately (marked as cache hits by sinks that distinguish).
	if opts.Progress != nil {
		for i, pt := range points {
			if !done[i] {
				continue
			}
			hash := spec.pointHash(pt)
			if cs, ok := opts.Progress.(RowCachedSink); ok {
				cs.RowCached(i, len(points), rows[i], hash)
			} else {
				opts.Progress.RowStarted(i, len(points), pt.procs, pt.size, hash)
				opts.Progress.RowDone(i, len(points), rows[i], hash)
			}
		}
	}

	// runOne simulates one configuration, replaying the class artifact when
	// the planner memoized the class.
	runOne := func(cfg core.Config, cs *classState, nodePar int, flightInterval float64, wantFlight bool) (*core.Result, *flight.Recorder, error) {
		m, err := core.NewMachine(sc, cfg)
		if err != nil {
			return nil, nil, err
		}
		m.SetNodeParallelism(nodePar)
		if cs.memoized {
			art, err := cs.acquire(ctx, sc, dk, nodePar)
			if err != nil {
				return nil, nil, err
			}
			defer cs.release()
			if err := m.SetRasterArtifact(art); err != nil {
				return nil, nil, err
			}
		}
		var rec *flight.Recorder
		if wantFlight {
			rec = m.EnableFlightRecorder(flightInterval)
		}
		res, err := m.RunContext(ctx)
		if err != nil {
			return nil, nil, err
		}
		return res, rec, nil
	}

	// Baselines share the worker budget the same way points do: with one
	// combo (the axis-free sweep) the single baseline gets the whole budget.
	// Checkpointed or unneeded baselines are skipped (baseCycles already
	// holds their denominator, or no surviving row divides by them).
	basePar := opts.nodeParallelism(len(combos))
	err = par.ForEach(ctx, opts.Parallelism, len(combos), func(ci int) error {
		if !needBase[ci] || haveBase[ci] {
			return nil
		}
		res, _, err := runOne(mkConfig(1, spec.Sizes[0], combos[ci]), baseClass[ci], basePar, 0, false)
		if err != nil {
			return err
		}
		baseCycles[ci] = res.Cycles
		if useRows {
			if data, err := json.Marshal(baselineCheckpoint{Cycles: res.Cycles}); err == nil {
				// Best effort: a failed checkpoint write costs a future
				// resume nothing but this baseline's re-simulation.
				_ = opts.Rows.Put(spec.baselineCheckpointKey(comboPoint(ci)), data)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	nodePar := opts.nodeParallelism(len(points))
	var flights []Flight
	if spec.Flight {
		flights = make([]Flight, len(points))
	}
	err = par.ForEach(ctx, opts.Parallelism, len(points), func(i int) error {
		if done[i] {
			return nil // restored from checkpoint; already replayed to Progress
		}
		pt := points[i]
		var rowHash string
		if opts.Progress != nil {
			rowHash = spec.pointHash(pt)
			opts.Progress.RowStarted(i, len(points), pt.procs, pt.size, rowHash)
		}
		cfg := mkConfig(pt.procs, pt.size, combos[pt.combo])
		res, rec, err := runOne(cfg, pointClass[i], nodePar, spec.FlightInterval, spec.Flight)
		if err != nil {
			return fmt.Errorf("%s: %w", cfg.Name(), err)
		}
		if rec != nil {
			tr, err := rec.Trace()
			if err != nil {
				return fmt.Errorf("%s: rendering flight trace: %w", cfg.Name(), err)
			}
			flights[i] = Flight{Procs: pt.procs, Size: pt.size,
				Summary: rec.Summary(), Trace: tr}
		}
		var stall float64
		for n := range res.Nodes {
			stall += res.Nodes[n].StallCycles
		}
		rows[i] = Row{
			Scene:          sc.Name,
			Dist:           spec.Dist,
			Procs:          pt.procs,
			Size:           pt.size,
			Cycles:         res.Cycles,
			Speedup:        baseCycles[pt.combo] / res.Cycles,
			TexelPerFrag:   res.TexelToFragment(),
			PixelImbalance: res.PixelImbalance(),
			StallCycles:    stall,
			Frags:          res.Fragments,
		}
		// Axis echo columns appear only when the axis itself is in use, so
		// axis-free rows keep their historical bytes.
		if len(spec.Caches) > 0 {
			rows[i].CacheKB = pt.cacheKB
		}
		if len(spec.Buses) > 0 {
			rows[i].Bus = pt.bus
		}
		if len(spec.Buffers) > 0 {
			rows[i].Buffer = pt.buffer
		}
		if useRows {
			if data, err := json.Marshal(rows[i]); err == nil {
				// Best effort, like the baseline checkpoint above.
				_ = opts.Rows.Put(spec.rowCheckpointKey(pt), data)
			}
		}
		if opts.Progress != nil {
			opts.Progress.RowDone(i, len(points), rows[i], rowHash)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if opts.Plan != nil {
		*opts.Plan = pl.stats
	}
	out := &Result{Spec: spec, Rows: rows, Flights: flights}
	for i := range rows {
		out.SimulatedCycles += rows[i].Cycles
	}
	return out, nil
}

// CSVHeader is the column order of WriteCSV, matching Row's fields. Sweeps
// using the cache/bus/buffer axes gain three trailing columns (cache_kb,
// bus, buffer); axis-free sweeps keep exactly these.
var CSVHeader = []string{"scene", "dist", "procs", "size", "cycles",
	"speedup", "texel_per_frag", "pixel_imbalance", "stall_cycles", "frags"}

// csvAxisColumns are the trailing columns added when any row carries axis
// echo fields.
var csvAxisColumns = []string{"cache_kb", "bus", "buffer"}

// WriteCSV writes the rows as RFC-4180 CSV with a header line — the
// texsweep output format.
func WriteCSV(w io.Writer, rows []Row) error {
	axes := false
	for i := range rows {
		if rows[i].CacheKB != 0 || rows[i].Bus != 0 || rows[i].Buffer != 0 {
			axes = true
			break
		}
	}
	header := CSVHeader
	if axes {
		header = append(append([]string(nil), CSVHeader...), csvAxisColumns...)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Scene, r.Dist,
			strconv.Itoa(r.Procs), strconv.Itoa(r.Size),
			strconv.FormatFloat(r.Cycles, 'f', 0, 64),
			strconv.FormatFloat(r.Speedup, 'f', 2, 64),
			strconv.FormatFloat(r.TexelPerFrag, 'f', 3, 64),
			strconv.FormatFloat(r.PixelImbalance, 'f', 4, 64),
			strconv.FormatFloat(r.StallCycles, 'f', 0, 64),
			strconv.FormatUint(r.Frags, 10),
		}
		if axes {
			rec = append(rec,
				strconv.Itoa(r.CacheKB),
				strconv.FormatFloat(r.Bus, 'f', -1, 64),
				strconv.Itoa(r.Buffer),
			)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the full result (spec + rows) as one indented JSON
// document, byte-identical to what the texsimd result endpoint serves.
func WriteJSON(w io.Writer, res *Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// Command texsimd serves the simulator over HTTP: clients submit sweep or
// experiment jobs, poll their status, and fetch results; identical
// submissions are answered from a content-addressed result cache without
// re-simulating. Metrics are exposed at /metrics in Prometheus text format.
//
// Usage:
//
//	texsimd -addr :8080 -workers 4 -queue 64 -cache-dir /var/cache/texsimd
//
// Submit a sweep and read it back:
//
//	curl -s -X POST localhost:8080/api/v1/jobs -d '{"type":"sweep","sweep":{"scene":"truc640"}}'
//	curl -s localhost:8080/api/v1/jobs/job-000001
//	curl -s localhost:8080/api/v1/jobs/job-000001/result
//
// SIGINT/SIGTERM stop accepting new jobs and drain queued and running ones
// (bounded by -drain-timeout) before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/resultcache"
	"repro/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
		queue        = flag.Int("queue", 64, "job queue depth (full queue returns 429)")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job timeout (0 = unlimited)")
		parallelism  = flag.Int("job-par", 1, "concurrent simulations inside one job")
		cacheEntries = flag.Int("cache-entries", resultcache.DefaultMaxEntries, "in-memory result cache entries")
		cacheDir     = flag.String("cache-dir", "", "on-disk result cache directory (empty = memory only)")
		noCache      = flag.Bool("no-cache", false, "disable the result cache (every job re-simulates)")
		outDir       = flag.String("out", "out", "output directory for image-producing experiment jobs")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to drain jobs on shutdown")
	)
	flag.Parse()

	cache, err := resultcache.New(resultcache.Config{
		MaxEntries: *cacheEntries,
		Dir:        *cacheDir,
		Disabled:   *noCache,
	})
	cliutil.Check("texsimd", err)

	// The service gets its own root context rather than the signal context:
	// SIGTERM must stop intake and drain, not cancel running jobs.
	srv, err := service.New(context.Background(), service.Config{
		Workers:     *workers,
		QueueDepth:  *queue,
		JobTimeout:  *jobTimeout,
		Parallelism: *parallelism,
		Cache:       cache,
		OutDir:      *outDir,
		Logf:        log.Printf,
	})
	cliutil.Check("texsimd", err)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("texsimd: listening on %s (workers %d, queue %d)", *addr, *workers, *queue)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		cliutil.Fail("texsimd", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	log.Printf("texsimd: shutting down, draining jobs (up to %v)", *drainTimeout)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop taking connections first, then drain the pool.
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("texsimd: http shutdown: %v", err)
	}
	if err := srv.Drain(drainCtx); err != nil {
		cliutil.Fail("texsimd", fmt.Errorf("drain incomplete: %w", err))
	}
	log.Printf("texsimd: drained cleanly")
}

package experiments

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/memory"
	"repro/internal/scene"
	"repro/internal/stats"
)

// RunExtSortLast contrasts the paper's sort-middle machine with the
// sort-last alternative of its references [13]/[14]: object distribution
// with full-screen rendering per node and ideal composition. Sort-last
// keeps each object's texture on one node (better locality) but ties load
// balance to object sizes and gives up strict OpenGL ordering — the paper's
// §1 reason to build sort-middle anyway.
func RunExtSortLast(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	scenes, err := buildAllScenes(ctx, opt)
	if err != nil {
		return nil, err
	}
	names := scene.Names()
	const procs = 16
	bus := memory.BusConfig{TexelsPerCycle: 1}

	type row struct {
		middleSpeedup, lastSpeedup   float64
		middleRatio, lastRatio       float64
		middleRouted, lastRouted     uint64
		middleImbalance, lastImbalan float64
	}
	rows := make(map[string]row, len(names))
	var mu sync.Mutex
	err = forEachParallel(ctx, opt.Parallelism, len(names), func(i int) error {
		s := scenes[names[i]]
		base, err := simulate(ctx, s, core.Config{Procs: 1, CacheKind: core.CacheReal, Bus: bus})
		if err != nil {
			return err
		}
		middle, err := simulate(ctx, s, core.Config{
			Procs: procs, Distribution: distrib.BlockKind, TileSize: 16,
			CacheKind: core.CacheReal, Bus: bus,
		})
		if err != nil {
			return err
		}
		last, err := core.SimulateSortLast(s, core.Config{
			Procs: procs, CacheKind: core.CacheReal, Bus: bus,
		}, core.SortLastChunked)
		if err != nil {
			return err
		}
		mu.Lock()
		rows[names[i]] = row{
			middleSpeedup:   base.Cycles / middle.Cycles,
			lastSpeedup:     base.Cycles / last.Cycles,
			middleRatio:     middle.TexelToFragment(),
			lastRatio:       last.TexelToFragment(),
			middleRouted:    middle.TrianglesRouted,
			lastRouted:      last.TrianglesRouted,
			middleImbalance: middle.PixelImbalance(),
			lastImbalan:     last.PixelImbalance(),
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	speedTab := &stats.Table{
		Caption: "16 processors, 1 texel/pixel bus: sort-middle (block-16) vs sort-last (chunked objects)",
		Header: []string{"scene", "middle speedup", "last speedup",
			"middle texel/frag", "last texel/frag",
			"middle imbalance", "last imbalance"},
	}
	routeTab := &stats.Table{
		Caption: "Triangle deliveries (the sort-middle overlap cost vs one-node-per-triangle sort-last)",
		Header:  []string{"scene", "triangles", "middle routed", "last routed"},
	}
	for _, n := range names {
		r := rows[n]
		speedTab.AddRow(n,
			stats.F(r.middleSpeedup, 1), stats.F(r.lastSpeedup, 1),
			stats.F(r.middleRatio, 2), stats.F(r.lastRatio, 2),
			stats.Pct(r.middleImbalance), stats.Pct(r.lastImbalan))
		routeTab.AddRow(n,
			stats.F(float64(len(scenes[n].Triangles)), 0),
			stats.F(float64(r.middleRouted), 0),
			stats.F(float64(r.lastRouted), 0))
	}

	return &Report{
		ID:    "ext-sortlast",
		Title: "Extension: sort-middle vs sort-last texture locality and balance",
		Notes: []string{
			scaleNote(opt),
			"expect: sort-last fetches fewer texels (objects keep their textures local) and never duplicates triangles, but its pixel balance follows object sizes; sort-middle pays overlap and line-splitting for strict ordering and screen-even balance",
		},
		Table: []*stats.Table{speedTab, routeTab},
	}, nil
}

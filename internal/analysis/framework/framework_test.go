package framework_test

import (
	"go/ast"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
)

// TestLoadTypeChecks loads a real module package through the go list +
// export-data path and verifies types resolve.
func TestLoadTypeChecks(t *testing.T) {
	pkgs, err := framework.Load(".", "repro/internal/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.ImportPath != "repro/internal/metrics" {
		t.Fatalf("ImportPath = %q", pkg.ImportPath)
	}
	if pkg.Types == nil || pkg.Types.Scope().Lookup("Registry") == nil {
		t.Fatal("type information missing: Registry not found in package scope")
	}
	if len(pkg.Files) == 0 {
		t.Fatal("no files loaded")
	}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("test file %s loaded; loader must skip test files", name)
		}
	}
}

// TestSuppression verifies //texlint:ignore comments drop diagnostics on
// their own line and the next.
func TestSuppression(t *testing.T) {
	pkgs, err := framework.Load(".", "repro/internal/analysis/framework")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]

	reportAll := &framework.Analyzer{
		Name: "everyline",
		Doc:  "reports every function declaration (test helper)",
		Run: func(pass *framework.Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fn, ok := d.(*ast.FuncDecl); ok {
						pass.Reportf(fn.Pos(), "func %s", fn.Name.Name)
					}
				}
			}
			return nil
		},
	}
	diags, err := framework.RunAnalyzers(pkg, []*framework.Analyzer{reportAll})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("helper analyzer reported nothing")
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Pos, diags[i].Pos
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Fatalf("diagnostics not sorted: %v before %v", a, b)
		}
	}
}

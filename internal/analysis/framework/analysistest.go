package framework

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// RunTest is the analysistest analogue: it loads the package in
// testdata/src/<pkg> under dir, runs the analyzer, and checks the
// diagnostics against `// want "regexp"` comments. A want comment names
// every diagnostic expected on its line (several quoted regexps for several
// diagnostics); lines without a want comment must produce none.
//
// Testdata packages are type-checked from source (they sit under testdata/
// where go list cannot see them), so they may import the standard library
// but not this module.
func RunTest(t *testing.T, dir string, a *Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runTestPkg(t, filepath.Join(dir, "testdata", "src", pkg), a)
	}
}

// srcImporter type-checks stdlib imports from $GOROOT source; one shared
// instance caches packages across testdata packages in a test binary.
var (
	testFset    = token.NewFileSet()
	srcImporter = importer.ForCompiler(testFset, "source", nil)
)

func runTestPkg(t *testing.T, dir string, a *Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(testFset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("%s: no Go files in %s", a.Name, dir)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: srcImporter,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check("testdata/"+filepath.Base(dir), testFset, files, info)
	if err != nil {
		t.Fatalf("%s: type-checking %s: %v", a.Name, dir, err)
	}
	pkg := &Package{
		ImportPath: tpkg.Path(),
		Dir:        dir,
		Fset:       testFset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	checkWants(t, a.Name, testFset, files, diags)
}

// wantKey addresses one source line.
type wantKey struct {
	file string
	line int
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts the expected-diagnostic regexps per line.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := wantKey{pos.Filename, pos.Line}
				for _, lit := range splitQuoted(m[1]) {
					s, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, lit, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, s, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// splitQuoted splits `"a" "b"` (double-quoted or backquoted Go string
// literals separated by spaces) into raw literal tokens.
func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var end int
		switch s[0] {
		case '"':
			end = 1
			for end < len(s) && s[end] != '"' {
				if s[end] == '\\' {
					end++
				}
				end++
			}
		case '`':
			end = 1
			for end < len(s) && s[end] != '`' {
				end++
			}
		default:
			return out // trailing prose after the patterns
		}
		if end >= len(s) {
			return out
		}
		out = append(out, s[:end+1])
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

// checkWants matches diagnostics against expectations both ways.
func checkWants(t *testing.T, name string, fset *token.FileSet, files []*ast.File, diags []Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, files)
	unmatched := make(map[wantKey][]*regexp.Regexp, len(wants))
	for k, v := range wants {
		unmatched[k] = append([]*regexp.Regexp(nil), v...)
	}
	for _, d := range diags {
		key := wantKey{d.Pos.Filename, d.Pos.Line}
		res := unmatched[key]
		hit := -1
		for i, re := range res {
			if re.MatchString(d.Message) {
				hit = i
				break
			}
		}
		if hit < 0 {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", name, d.Pos.Filename, d.Pos.Line, d.Message)
			continue
		}
		unmatched[key] = append(res[:hit], res[hit+1:]...)
	}
	var keys []wantKey
	for k, res := range unmatched {
		if len(res) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, re := range unmatched[k] {
			t.Errorf("%s: missing diagnostic matching %q at %s:%d", name, re, k.file, k.line)
		}
	}
}

// Package tracing is span-based request tracing for the texsimd service:
// W3C traceparent propagation, an in-memory ring buffer of finished spans,
// and HTTP middleware. It is deliberately tiny — enough to follow one
// request from its HTTP arrival through the job queue into the simulation
// and correlate it with logs and metrics, without pulling an OpenTelemetry
// SDK into a stdlib-only repository.
//
// Identifiers follow the W3C Trace Context model: a 16-byte trace ID shared
// by every span of one request tree, an 8-byte span ID per operation, and a
// `traceparent` header (version 00) carrying both across process
// boundaries. Spans end into a fixed-capacity ring, served as JSON by
// DebugHandler at /debug/traces.
package tracing

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// TraceID identifies one request tree across services.
type TraceID [16]byte

// SpanID identifies one operation within a trace.
type SpanID [8]byte

// String returns the lowercase-hex form used in headers and logs.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String returns the lowercase-hex form used in headers and logs.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// Traceparent renders a version-00 W3C traceparent header value with the
// sampled flag set.
func Traceparent(t TraceID, s SpanID) string {
	return fmt.Sprintf("00-%s-%s-01", t, s)
}

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// version, requires the 00 layout, and rejects all-zero IDs, per the spec.
func ParseTraceparent(h string) (TraceID, SpanID, bool) {
	var t TraceID
	var s SpanID
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return t, s, false
	}
	if h[0] == 'f' && h[1] == 'f' { // version 0xff is forbidden
		return t, s, false
	}
	if _, err := hex.Decode(t[:], []byte(h[3:35])); err != nil {
		return t, s, false
	}
	if _, err := hex.Decode(s[:], []byte(h[36:52])); err != nil {
		return t, s, false
	}
	if t.IsZero() || s.IsZero() {
		return t, s, false
	}
	return t, s, true
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one in-flight operation. Create with Tracer.StartSpan, annotate
// with SetAttr/SetError from the owning goroutine, and End exactly once to
// publish it to the tracer's ring.
type Span struct {
	tracer  *Tracer
	name    string
	traceID TraceID
	spanID  SpanID
	parent  SpanID
	start   time.Time
	attrs   []Attr
	errMsg  string
	ended   bool
}

// TraceID returns the span's trace identifier.
func (s *Span) TraceID() TraceID { return s.traceID }

// SpanID returns the span's own identifier.
func (s *Span) SpanID() SpanID { return s.spanID }

// SetAttr appends a key/value annotation.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetError records a non-nil error on the span.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.errMsg = err.Error()
}

// End finishes the span and publishes it to the tracer's ring buffer.
// A second End is a no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.tracer.publish(s, time.Now())
}

// SpanView is the wire shape of a finished span, as /debug/traces serves it.
type SpanView struct {
	TraceID    string  `json:"trace_id"`
	SpanID     string  `json:"span_id"`
	ParentID   string  `json:"parent_id,omitempty"`
	Name       string  `json:"name"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Attrs      []Attr  `json:"attrs,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// Tracer creates spans and retains the most recent finished ones in a ring
// buffer. The zero value is not usable; construct with NewTracer.
type Tracer struct {
	mu    sync.Mutex
	ring  []SpanView // capacity-bounded, next is the write cursor
	next  int
	total uint64
}

// DefaultCapacity is the span ring size when NewTracer gets 0.
const DefaultCapacity = 1024

// NewTracer returns a tracer retaining the last capacity finished spans
// (0 = DefaultCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{ring: make([]SpanView, 0, capacity)}
}

// ctxKey keys the current span in a context.
type ctxKey struct{}

// remoteParent carries trace context extracted from a carrier (header or
// stored job record) without a live local span.
type remoteParent struct {
	traceID TraceID
	spanID  SpanID
}

type remoteKey struct{}

// ContextWithRemoteParent returns a context carrying an extracted remote
// trace context; the next StartSpan continues that trace.
func ContextWithRemoteParent(ctx context.Context, t TraceID, s SpanID) context.Context {
	return context.WithValue(ctx, remoteKey{}, remoteParent{traceID: t, spanID: s})
}

// RemoteParentFromContext returns the remote trace context installed by
// ContextWithRemoteParent, if any.
func RemoteParentFromContext(ctx context.Context) (TraceID, SpanID, bool) {
	rp, ok := ctx.Value(remoteKey{}).(remoteParent)
	return rp.traceID, rp.spanID, ok
}

// FromContext returns the current span, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan starts a span named name. Its parent is the context's current
// span if any, else a remote parent installed by ContextWithRemoteParent,
// else it roots a new trace. The returned context carries the new span.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{tracer: t, name: name, start: time.Now()}
	if parent := FromContext(ctx); parent != nil {
		s.traceID = parent.traceID
		s.parent = parent.spanID
	} else if rp, ok := ctx.Value(remoteKey{}).(remoteParent); ok {
		s.traceID = rp.traceID
		s.parent = rp.spanID
	} else {
		readRandom(s.traceID[:])
	}
	readRandom(s.spanID[:])
	return context.WithValue(ctx, ctxKey{}, s), s
}

// readRandom fills b from crypto/rand; ID generation must never fail, so a
// broken entropy source panics rather than minting colliding zero IDs.
func readRandom(b []byte) {
	if _, err := rand.Read(b); err != nil {
		panic(fmt.Sprintf("tracing: reading random IDs: %v", err))
	}
}

// publish appends the finished span to the ring, overwriting the oldest
// entry once full.
func (t *Tracer) publish(s *Span, end time.Time) {
	v := SpanView{
		TraceID:    s.traceID.String(),
		SpanID:     s.spanID.String(),
		Name:       s.name,
		Start:      s.start.UTC().Format(time.RFC3339Nano),
		DurationMS: float64(end.Sub(s.start)) / float64(time.Millisecond),
		Attrs:      s.attrs,
		Error:      s.errMsg,
	}
	if !s.parent.IsZero() {
		v.ParentID = s.parent.String()
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, v)
	} else {
		t.ring[t.next] = v
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
	t.mu.Unlock()
}

// Snapshot returns up to limit finished spans, newest first (limit <= 0
// returns everything retained). The optional traceID filter (hex) keeps
// only spans of that trace.
func (t *Tracer) Snapshot(limit int, traceID string) []SpanView {
	t.mu.Lock()
	n := len(t.ring)
	ordered := make([]SpanView, 0, n)
	// Oldest entry is at the write cursor once the ring has wrapped.
	start := 0
	if n == cap(t.ring) {
		start = t.next
	}
	for i := 0; i < n; i++ {
		ordered = append(ordered, t.ring[(start+i)%n])
	}
	t.mu.Unlock()

	// Newest first.
	out := make([]SpanView, 0, n)
	for i := n - 1; i >= 0; i-- {
		v := ordered[i]
		if traceID != "" && v.TraceID != traceID {
			continue
		}
		out = append(out, v)
		if limit > 0 && len(out) == limit {
			break
		}
	}
	return out
}

// Count returns the total number of spans ever finished into the tracer.
func (t *Tracer) Count() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Package memory models the external texture-memory bus of one node.
//
// Following the paper, the bus is characterized by a single number: the
// maximum texel-to-fragment ratio it can sustain, i.e. how many texels it
// delivers per pixel-cycle (the engine scans one pixel per cycle). Memory
// *latency* is not modelled because the paper adopts the Igehy et al. result
// that prefetching with a fragment FIFO fully hides it; only *bandwidth*
// (occupancy) remains. A ratio of 1 corresponds to the paper's example of a
// 400 Mpixel/s engine on a 200 MHz 64-bit SDRAM bus.
//
// A cache miss fetches one 64-byte line (16 texels), occupying the bus for
// LineTexels/ratio cycles. The bus serializes fetches: a fetch starts no
// earlier than its issue time (set by the engine's prefetch fragment FIFO)
// and no earlier than the end of the previous fetch, which is why miss
// *bursts* can saturate a bus whose average demand is below capacity — an
// effect the paper calls out explicitly in section 6.
package memory

import (
	"fmt"
	"math"

	"repro/internal/texture"
)

// BusConfig describes one node's texture memory bus.
type BusConfig struct {
	// TexelsPerCycle is the paper's texel-to-fragment ratio knob: the
	// sustained bandwidth in texels per pixel-cycle. Zero (or +Inf) means an
	// infinite bus, used by the locality-only experiments.
	TexelsPerCycle float64
}

// Infinite reports whether the bus has unlimited bandwidth.
func (c BusConfig) Infinite() bool {
	return c.TexelsPerCycle <= 0 || math.IsInf(c.TexelsPerCycle, 1)
}

// LineCycles returns the bus occupancy of one line fetch in cycles.
func (c BusConfig) LineCycles() float64 {
	if c.Infinite() {
		return 0
	}
	return texture.LineTexels / c.TexelsPerCycle
}

// Validate rejects nonsensical configurations.
func (c BusConfig) Validate() error {
	if c.TexelsPerCycle < 0 {
		return fmt.Errorf("memory: negative bandwidth %v", c.TexelsPerCycle)
	}
	return nil
}

// BusStats accumulates traffic counters for one bus.
type BusStats struct {
	LinesFetched uint64
	BusyCycles   float64
}

// TexelsFetched returns the external-memory texel traffic.
func (s BusStats) TexelsFetched() uint64 { return s.LinesFetched * texture.LineTexels }

// Bus is the occupancy model. Times are in cycles since the node started,
// carried as float64 so that non-integer line costs (ratio 3, say) stay
// exact; the machine layer rounds once at the end.
type Bus struct {
	cfg        BusConfig
	lineCycles float64
	freeAt     float64
	stats      BusStats
}

// NewBus returns an idle bus. It panics on an invalid configuration; callers
// validate user-supplied configs first.
func NewBus(cfg BusConfig) *Bus {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Bus{cfg: cfg, lineCycles: cfg.LineCycles()}
}

// Config returns the bus configuration.
func (b *Bus) Config() BusConfig { return b.cfg }

// Fetch requests lines cache-line fetches issued at issueTime (when the
// fragment enters the prefetch FIFO and its missing lines become known) and
// returns when the data is fully delivered. Fetches queue behind earlier
// traffic.
func (b *Bus) Fetch(issueTime float64, lines int) float64 {
	if lines <= 0 {
		return 0
	}
	b.stats.LinesFetched += uint64(lines)
	if b.cfg.Infinite() {
		return issueTime
	}
	start := issueTime
	if b.freeAt > start {
		start = b.freeAt
	}
	if start < 0 {
		start = 0
	}
	cost := float64(lines) * b.lineCycles
	b.freeAt = start + cost
	b.stats.BusyCycles += cost
	return b.freeAt
}

// FreeAt returns the time the bus drains all queued traffic.
func (b *Bus) FreeAt() float64 { return b.freeAt }

// Stats returns accumulated traffic counters.
func (b *Bus) Stats() BusStats { return b.stats }

// Reset returns the bus to idle and clears counters.
func (b *Bus) Reset() {
	b.freeAt = 0
	b.stats = BusStats{}
}

package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/telemetry/tracing"
)

// Peer-protocol wire surface. Every call injects the caller's trace
// context as a traceparent header (tracing.Inject), so a job's trace ID
// survives forward, steal and completion hops and /debug/traces on any
// node shows its slice of the same trace.

const (
	// RoutedHeader marks a submission that has already been routed once:
	// the receiver must execute it locally — never re-forward, never
	// spill — which is what makes forwarding loop-free.
	RoutedHeader = "X-Texsimd-Routed"
	// PeerHeader carries the calling node's advertised address, so the
	// receiver can attribute steals and leases.
	PeerHeader = "X-Texsimd-Peer"
)

// maxPeerBody bounds any peer response or pushed cache entry we will read.
const maxPeerBody = 64 << 20

// ErrPeerSaturated reports a forward the peer refused for capacity
// reasons (429 queue full or 503 draining) — try the next peer.
var ErrPeerSaturated = errors.New("peer saturated")

// ErrRemoteJobLost reports a job the peer no longer knows (404) — the
// peer restarted and lost its in-memory job table; fail over.
var ErrRemoteJobLost = errors.New("remote job lost")

// StolenJob is the steal-endpoint response: everything the thief needs to
// run the job and hand the result back.
type StolenJob struct {
	// JobID is the job's identity on the origin node; completions quote it.
	JobID string `json:"job_id"`
	// LeaseNonce must round-trip into the completion — the origin discards
	// completions whose nonce no longer matches the live lease.
	LeaseNonce string `json:"lease_nonce"`
	// Key is the result-cache key, so the thief can check caches first.
	Key string `json:"key"`
	// Traceparent carries the job's submit-time trace context.
	Traceparent string `json:"traceparent,omitempty"`
	// Request is the normalized job request document.
	Request json.RawMessage `json:"request"`
}

// Completion is the body a thief posts back to the origin node.
type Completion struct {
	JobID      string          `json:"job_id"`
	LeaseNonce string          `json:"lease_nonce"`
	Error      string          `json:"error,omitempty"`
	Payload    json.RawMessage `json:"payload,omitempty"`
}

// RemoteJob is the subset of a peer's job-status document polled by
// forward supervision.
type RemoteJob struct {
	ID        string `json:"id"`
	Status    string `json:"status"`
	FromCache bool   `json:"from_cache"`
	Error     string `json:"error"`
}

// NewNonce mints a lease nonce (128-bit hex).
func NewNonce() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("cluster: reading random nonce: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// do issues one peer request with the peer and trace headers set and
// returns the response. The caller owns the body.
func (c *Cluster) do(ctx context.Context, method, url string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(PeerHeader, c.Self())
	tracing.Inject(ctx, req.Header)
	return c.client.Do(req)
}

// drainClose reads and closes a response body so the connection is reused.
func drainClose(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxPeerBody))
	resp.Body.Close()
}

// ForwardJob submits body (a normalized request document) to addr as a
// routed job and returns the remote job ID. ErrPeerSaturated means the
// peer had no capacity; other errors mean the peer is unreachable or
// rejected the request outright.
func (c *Cluster) ForwardJob(ctx context.Context, addr string, body []byte) (string, error) {
	fctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodPost, addr+"/api/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RoutedHeader, "1")
	req.Header.Set(PeerHeader, c.Self())
	tracing.Inject(fctx, req.Header)
	resp, err := c.client.Do(req)
	if err != nil {
		return "", err
	}
	defer drainClose(resp)
	switch resp.StatusCode {
	case http.StatusAccepted:
		var v RemoteJob
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxPeerBody)).Decode(&v); err != nil {
			return "", fmt.Errorf("decoding forward response: %w", err)
		}
		if v.ID == "" {
			return "", fmt.Errorf("forward response missing job id")
		}
		return v.ID, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return "", fmt.Errorf("%w: %s returned %d", ErrPeerSaturated, addr, resp.StatusCode)
	default:
		return "", fmt.Errorf("forward to %s returned %d", addr, resp.StatusCode)
	}
}

// JobStatus polls one remote job. ErrRemoteJobLost means the peer no
// longer knows the job.
func (c *Cluster) JobStatus(ctx context.Context, addr, id string) (RemoteJob, error) {
	sctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	resp, err := c.do(sctx, http.MethodGet, addr+"/api/v1/jobs/"+id, nil)
	if err != nil {
		return RemoteJob{}, err
	}
	defer drainClose(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		var v RemoteJob
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxPeerBody)).Decode(&v); err != nil {
			return RemoteJob{}, fmt.Errorf("decoding job status: %w", err)
		}
		return v, nil
	case http.StatusNotFound:
		return RemoteJob{}, fmt.Errorf("%w: %s has no job %s", ErrRemoteJobLost, addr, id)
	default:
		return RemoteJob{}, fmt.Errorf("job status from %s returned %d", addr, resp.StatusCode)
	}
}

// JobResult fetches a done remote job's result payload.
func (c *Cluster) JobResult(ctx context.Context, addr, id string) ([]byte, error) {
	rctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	resp, err := c.do(rctx, http.MethodGet, addr+"/api/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp)
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%w: %s has no job %s", ErrRemoteJobLost, addr, id)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("job result from %s returned %d", addr, resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
}

// CancelJob cancels a remote job, best effort.
func (c *Cluster) CancelJob(ctx context.Context, addr, id string) error {
	cctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	resp, err := c.do(cctx, http.MethodDelete, addr+"/api/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	defer drainClose(resp)
	return nil
}

// FetchCached asks addr (the key's owner) for its cached result — the
// federated read. ok is false on a clean 404 miss; errors mean the peer
// could not be asked at all.
func (c *Cluster) FetchCached(ctx context.Context, addr, key string) ([]byte, bool, error) {
	fctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	resp, err := c.do(fctx, http.MethodGet, addr+"/api/v1/cluster/cache/"+key, nil)
	if err != nil {
		return nil, false, err
	}
	defer drainClose(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		val, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
		if err != nil {
			return nil, false, err
		}
		return val, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("cache fetch from %s returned %d", addr, resp.StatusCode)
	}
}

// PushCached writes a computed result into addr's cache — the ownership
// handoff that keeps results landing in the right cache when a non-owner
// node ends up simulating (failover and stolen runs). Best effort.
func (c *Cluster) PushCached(ctx context.Context, addr, key string, val []byte) error {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	resp, err := c.do(pctx, http.MethodPut, addr+"/api/v1/cluster/cache/"+key, val)
	if err != nil {
		return err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cache push to %s returned %d", addr, resp.StatusCode)
	}
	return nil
}

// Steal asks addr for one queued job. A nil StolenJob with nil error
// means the peer had nothing to give (204).
func (c *Cluster) Steal(ctx context.Context, addr string) (*StolenJob, error) {
	sctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	resp, err := c.do(sctx, http.MethodPost, addr+"/api/v1/cluster/steal", nil)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		var sj StolenJob
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxPeerBody)).Decode(&sj); err != nil {
			return nil, fmt.Errorf("decoding stolen job: %w", err)
		}
		if sj.JobID == "" || sj.LeaseNonce == "" {
			return nil, fmt.Errorf("stolen job from %s missing id or nonce", addr)
		}
		return &sj, nil
	case http.StatusNoContent:
		return nil, nil
	default:
		return nil, fmt.Errorf("steal from %s returned %d", addr, resp.StatusCode)
	}
}

// Complete posts a stolen job's result back to its origin. accepted is
// false when the origin discarded it as stale (the lease moved on).
func (c *Cluster) Complete(ctx context.Context, addr string, comp Completion) (accepted bool, err error) {
	body, err := json.Marshal(comp)
	if err != nil {
		return false, err
	}
	cctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	resp, err := c.do(cctx, http.MethodPost, addr+"/api/v1/cluster/complete", body)
	if err != nil {
		return false, err
	}
	defer drainClose(resp)
	switch resp.StatusCode {
	case http.StatusOK, http.StatusNoContent:
		return true, nil
	case http.StatusConflict:
		return false, nil
	default:
		return false, fmt.Errorf("complete to %s returned %d", addr, resp.StatusCode)
	}
}

package core

import (
	"context"
	"errors"
	"testing"
)

func TestSimulateContextCancelled(t *testing.T) {
	s := testScene(3, 400, 256)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SimulateContext(ctx, s, Config{Procs: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSimulateContextMatchesSimulate(t *testing.T) {
	s := testScene(4, 200, 128)
	cfg := Config{Procs: 8, TileSize: 8}
	plain, err := Simulate(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A cancellable (but never-cancelled) context takes the stepped run
	// path; results must be bit-identical to the drain-the-queue path.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stepped, err := SimulateContext(ctx, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != stepped.Cycles || plain.Fragments != stepped.Fragments ||
		plain.TrianglesRouted != stepped.TrianglesRouted {
		t.Fatalf("stepped run diverged: %+v vs %+v", plain, stepped)
	}
}

func TestSpeedupContextCancelled(t *testing.T) {
	s := testScene(5, 100, 128)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := SpeedupContext(ctx, s, Config{Procs: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Package analysis hosts texlint, the repository's static-analysis suite.
//
// The simulator's results are only cacheable, comparable and reproducible
// because the pipeline model is a pure function of its configuration; the
// service layer is only dependable because its critical sections are short
// and its observability follows conventions. Those are invariants of the
// whole tree, not of any one package — so they are machine-checked here
// rather than trusted to review:
//
//   - determinism: simulator packages must not read the clock, the global
//     random source, or the environment, and must not let map iteration
//     order reach ordered output (the result-cache soundness contract);
//   - ctxfirst: context.Context parameters come first, propagate, and
//     library code never mints roots with context.Background()/TODO();
//   - locksafe: nothing blocking — channel ops, I/O, sleeps, callbacks —
//     runs while a sync.Mutex is held in the service, and every Lock has a
//     reachable Unlock;
//   - metriclint: metric names are constant, follow Prometheus naming,
//     register exactly once, and keep label sets small and bounded.
//
// The subpackage framework is a stdlib-only stand-in for
// golang.org/x/tools/go/analysis (this repository takes no external
// dependencies); cmd/texlint is the multichecker. Run it standalone with
//
//	go run ./cmd/texlint ./...
//
// or hook it into go vet with
//
//	go build -o texlint ./cmd/texlint && go vet -vettool=./texlint ./...
//
// False positives are silenced in place with a justified
// `//texlint:ignore <analyzer> <reason>` comment on or above the line.
package analysis

// Package rpchygiene enforces the cluster's RPC discipline on both sides
// of the wire.
//
// Outbound (the peer-protocol client):
//
//   - every outbound HTTP request must carry a context deadline. A call to
//     http.NewRequestWithContext — or to a package-local function that
//     forwards its own context parameter into one (computed by fixpoint
//     over the intra-package call graph) — must receive a context bound by
//     context.WithTimeout/WithDeadline in the same function, or the
//     function's own context parameter, in which case the obligation moves
//     to its callers. An exported function that ships its caller's raw
//     context is reported: peers outside the package cannot be audited, so
//     the deadline must be applied internally. The deadline-less
//     http.NewRequest/Get/Post/PostForm/Head are always reported.
//   - every *http.Response assigned to a variable must be closed on all
//     paths: a defer mentioning the response (defer resp.Body.Close(),
//     defer drainClose(resp)) or a return transferring ownership. An
//     inline close can be skipped by an early return added later; a defer
//     cannot. A response discarded without any binding is reported.
//
// Inbound (handlers — any function with an http.ResponseWriter parameter):
//
//   - the response header is committed at most once per path. Commits are
//     WriteHeader calls, net/http helpers (Error, NotFound, Redirect,
//     ServeContent, ServeFile), and package-local helpers that transitively
//     commit (writeJSON, writeError — found via the call graph). A Write
//     also commits, implicitly. Path tracking is the same source-order
//     approximation locksafe uses, so `if err { writeError; return }`
//     guard clauses do not poison the fallthrough path.
//   - handlers must not mint root contexts (context.Background/TODO):
//     detaching from r.Context() drops the incoming traceparent and the
//     client's cancellation.
package rpchygiene

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the RPC-hygiene check.
var Analyzer = &framework.Analyzer{
	Name: "rpchygiene",
	Doc: "outbound peer calls carry context deadlines and close resp.Body on all " +
		"paths; handlers commit the response header once and keep the request context",
	Run: run,
}

func run(pass *framework.Pass) error {
	senders := buildSenders(pass)
	committers := buildCommitters(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDeadlines(pass, senders, fd)
			checkBodyClose(pass, fd)
		}
		// Handlers may be declarations or literals (middleware closures).
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil && hasResponseWriterParam(pass, n.Type) {
					checkHandler(pass, committers, n.Type, n.Body)
				}
			case *ast.FuncLit:
				if hasResponseWriterParam(pass, n.Type) {
					checkHandler(pass, committers, n.Type, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

// ---- shared type predicates ----

func isContextType(t types.Type) bool {
	return isNamed(t, "context", "Context")
}

func isNamed(t types.Type, pkg, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkg && obj.Name() == name
}

func isResponsePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && isNamed(p.Elem(), "net/http", "Response")
}

// calleeInfo resolves a call to the *types.Func it statically invokes,
// plus the receiver type name for method calls ("" for plain functions).
func calleeInfo(pass *framework.Pass, call *ast.CallExpr) (fn *types.Func, recv string) {
	var sel *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		sel = f
	case *ast.SelectorExpr:
		sel = f.Sel
	default:
		return nil, ""
	}
	fn, _ = pass.TypesInfo.Uses[sel].(*types.Func)
	if fn == nil {
		return nil, ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recv = named.Obj().Name()
		} else if iface, ok := t.(*types.Interface); ok {
			_ = iface // unnamed interface receiver: no name
		}
	}
	return fn, recv
}

// ---- outbound deadline discipline ----

// buildSenders computes, by fixpoint, the package-local functions that pass
// their own context parameter (transitively) into an outbound request. The
// value is the context argument's position at call sites.
func buildSenders(pass *framework.Pass) map[*types.Func]int {
	senders := make(map[*types.Func]int)
	ctxIndex := func(call *ast.CallExpr) (int, bool) {
		fn, _ := calleeInfo(pass, call)
		if fn == nil {
			return 0, false
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && fn.Name() == "NewRequestWithContext" {
			return 0, true
		}
		if idx, ok := senders[fn]; ok {
			return idx, true
		}
		return 0, false
	}
	for changed := true; changed; {
		changed = false
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if _, done := senders[fn]; done {
					continue
				}
				ctxParams := ctxParamIndex(pass, fd.Type)
				if len(ctxParams) == 0 {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					idx, isSender := ctxIndex(call)
					if !isSender || idx >= len(call.Args) {
						return true
					}
					id, ok := ast.Unparen(call.Args[idx]).(*ast.Ident)
					if !ok {
						return true
					}
					if pIdx, isParam := ctxParams[pass.ObjectOf(id)]; isParam {
						if _, done := senders[fn]; !done {
							senders[fn] = pIdx
							changed = true
						}
					}
					return true
				})
			}
		}
	}
	return senders
}

// ctxParamIndex maps each context.Context parameter object of the function
// type to its position in the parameter list.
func ctxParamIndex(pass *framework.Pass, ft *ast.FuncType) map[types.Object]int {
	out := make(map[types.Object]int)
	if ft.Params == nil {
		return out
	}
	i := 0
	for _, field := range ft.Params.List {
		names := field.Names
		if len(names) == 0 {
			i++
			continue
		}
		for _, name := range names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				out[obj] = i
			}
			i++
		}
	}
	return out
}

// ctxlessHTTPFuncs build requests or issue calls with no context at all.
var ctxlessHTTPFuncs = map[string]bool{
	"NewRequest": true, "Get": true, "Head": true, "Post": true, "PostForm": true,
}

func checkDeadlines(pass *framework.Pass, senders map[*types.Func]int, fd *ast.FuncDecl) {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn != nil && fn.Exported() {
		if _, isSender := senders[fn]; isSender {
			pass.Reportf(fd.Pos(), "exported %s sends peer requests with its caller's raw context; bound the call internally with context.WithTimeout so every outbound hop has a deadline", fd.Name.Name)
		}
	}
	declParams := ctxParamIndex(pass, fd.Type)
	bounded := boundedContexts(pass, fd.Body)
	litParams := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			for obj := range ctxParamIndex(pass, n.Type) {
				litParams[obj] = true
			}
		case *ast.CallExpr:
			callee, recv := calleeInfo(pass, n)
			if callee == nil {
				return true
			}
			if callee.Pkg() != nil && callee.Pkg().Path() == "net/http" && recv == "" && ctxlessHTTPFuncs[callee.Name()] {
				pass.Reportf(n.Pos(), "http.%s sends a request with no context at all; use http.NewRequestWithContext with a deadline-bound context", callee.Name())
				return true
			}
			idx := -1
			if callee.Pkg() != nil && callee.Pkg().Path() == "net/http" && callee.Name() == "NewRequestWithContext" {
				idx = 0
			} else if i, ok := senders[callee]; ok {
				idx = i
			}
			if idx < 0 || idx >= len(n.Args) {
				return true
			}
			arg := ast.Unparen(n.Args[idx])
			id, ok := arg.(*ast.Ident)
			if !ok {
				pass.Reportf(arg.Pos(), "outbound request context is not provably deadline-bound; bind it to a context.WithTimeout result first")
				return true
			}
			obj := pass.ObjectOf(id)
			switch {
			case obj == nil:
			case bounded[obj]:
			case hasIndex(declParams, obj):
				// The obligation moves to this function's callers (and to
				// the exported-sender check above).
			case litParams[obj]:
				// A closure parameter: the dispatcher owns the context.
			default:
				pass.Reportf(arg.Pos(), "outbound request context %s has no deadline in this function; derive it with context.WithTimeout before the call", id.Name)
			}
		}
		return true
	})
}

func hasIndex(m map[types.Object]int, obj types.Object) bool {
	_, ok := m[obj]
	return ok
}

// boundedContexts collects locals assigned from context.WithTimeout or
// context.WithDeadline.
func boundedContexts(pass *framework.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) < 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, _ := calleeInfo(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() != "WithTimeout" && fn.Name() != "WithDeadline" {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// ---- response body discipline ----

func checkBodyClose(pass *framework.Pass, fd *ast.FuncDecl) {
	type acq struct {
		obj types.Object
		pos token.Pos
	}
	var acquired []acq
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			for i, t := range resultTypes(pass, call) {
				if !isResponsePtr(t) || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					pass.Reportf(n.Pos(), "response discarded without closing its body; bind it and defer a close/drain")
					continue
				}
				if obj := pass.ObjectOf(id); obj != nil {
					acquired = append(acquired, acq{obj, n.Pos()})
				}
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				for _, t := range resultTypes(pass, call) {
					if isResponsePtr(t) {
						pass.Reportf(n.Pos(), "response discarded without closing its body; bind it and defer a close/drain")
					}
				}
			}
		}
		return true
	})
	if len(acquired) == 0 {
		return
	}
	released := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			for _, a := range acquired {
				if mentionsObj(pass, n.Call, a.obj) {
					released[a.obj] = true
				}
			}
		case *ast.ReturnStmt:
			// Only returning the response itself transfers ownership;
			// returning an error built from resp.StatusCode does not.
			for _, e := range n.Results {
				id, ok := ast.Unparen(e).(*ast.Ident)
				if !ok {
					continue
				}
				for _, a := range acquired {
					if pass.TypesInfo.Uses[id] == a.obj {
						released[a.obj] = true
					}
				}
			}
		}
		return true
	})
	for _, a := range acquired {
		if !released[a.obj] {
			pass.Reportf(a.pos, "response body %s is not closed on every path; defer a close/drain immediately after the error check (or return the response to transfer ownership)", a.obj.Name())
		}
	}
}

// resultTypes flattens a call's result types.
func resultTypes(pass *framework.Pass, call *ast.CallExpr) []types.Type {
	t := pass.TypeOf(call)
	if t == nil {
		return nil
	}
	if tuple, ok := t.(*types.Tuple); ok {
		out := make([]types.Type, tuple.Len())
		for i := 0; i < tuple.Len(); i++ {
			out[i] = tuple.At(i).Type()
		}
		return out
	}
	return []types.Type{t}
}

func mentionsObj(pass *framework.Pass, root ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// ---- handler-side discipline ----

func hasResponseWriterParam(pass *framework.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t := pass.TypeOf(field.Type); t != nil && isNamed(t, "net/http", "ResponseWriter") {
			return true
		}
	}
	return false
}

// httpCommitFuncs are net/http package functions that write the header.
var httpCommitFuncs = map[string]bool{
	"Error": true, "NotFound": true, "Redirect": true,
	"ServeContent": true, "ServeFile": true, "ServeFileFS": true,
}

// buildCommitters computes, by fixpoint, the package-local functions that
// commit a response header (directly or through a callee).
func buildCommitters(pass *framework.Pass) map[*types.Func]bool {
	committers := make(map[*types.Func]bool)
	commits := func(call *ast.CallExpr) bool {
		fn, recv := calleeInfo(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		if fn.Pkg().Path() == "net/http" {
			if recv == "ResponseWriter" && fn.Name() == "WriteHeader" {
				return true
			}
			if recv == "" && httpCommitFuncs[fn.Name()] {
				return true
			}
		}
		return committers[fn]
	}
	for changed := true; changed; {
		changed = false
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok || committers[fn] {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok && commits(call) {
						committers[fn] = true
						changed = true
						return false
					}
					return true
				})
			}
		}
	}
	return committers
}

// checkHandler walks one handler body in source order tracking whether the
// response header has been committed, and reports a second commit. It also
// reports root-context minting.
func checkHandler(pass *framework.Pass, committers map[*types.Func]bool, ft *ast.FuncType, body *ast.BlockStmt) {
	hw := &handlerWalker{pass: pass, committers: committers}
	hw.stmts(body.List, false)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested handlers are checked on their own
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, _ := calleeInfo(pass, call)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
			(fn.Name() == "Background" || fn.Name() == "TODO") {
			pass.Reportf(call.Pos(), "handler mints a root context with context.%s; derive from r.Context() so the incoming traceparent and cancellation survive", fn.Name())
		}
		return true
	})
}

type handlerWalker struct {
	pass       *framework.Pass
	committers map[*types.Func]bool
}

// commitKind classifies a call: 0 none, 1 explicit header commit, 2
// implicit (a body Write).
func (h *handlerWalker) commitKind(call *ast.CallExpr) int {
	fn, recv := calleeInfo(h.pass, call)
	if fn == nil || fn.Pkg() == nil {
		return 0
	}
	if fn.Pkg().Path() == "net/http" && recv == "ResponseWriter" {
		switch fn.Name() {
		case "WriteHeader":
			return 1
		case "Write":
			return 2
		}
	}
	if fn.Pkg().Path() == "net/http" && recv == "" && httpCommitFuncs[fn.Name()] {
		return 1
	}
	if h.committers[fn] {
		return 1
	}
	return 0
}

func (h *handlerWalker) stmts(list []ast.Stmt, committed bool) bool {
	for _, s := range list {
		committed = h.stmt(s, committed)
	}
	return committed
}

func (h *handlerWalker) stmt(s ast.Stmt, committed bool) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return h.stmts(s.List, committed)
	case *ast.IfStmt:
		if s.Init != nil {
			committed = h.stmt(s.Init, committed)
		}
		committed = h.scan(s.Cond, committed)
		bodyC := h.stmts(s.Body.List, committed)
		elseC := committed
		if s.Else != nil {
			elseC = h.stmt(s.Else, committed)
		}
		after := committed
		if !terminates(s.Body.List) {
			after = after || bodyC
		}
		if s.Else != nil {
			var elseList []ast.Stmt
			if b, ok := s.Else.(*ast.BlockStmt); ok {
				elseList = b.List
			}
			if !terminates(elseList) {
				after = after || elseC
			}
		}
		return after
	case *ast.ForStmt:
		if s.Init != nil {
			committed = h.stmt(s.Init, committed)
		}
		h.stmts(s.Body.List, committed)
		return committed
	case *ast.RangeStmt:
		h.stmts(s.Body.List, committed)
		return committed
	case *ast.SwitchStmt:
		after := committed
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				r := h.stmts(cc.Body, committed)
				if !terminates(cc.Body) {
					after = after || r
				}
			}
		}
		return after
	case *ast.TypeSwitchStmt:
		after := committed
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				r := h.stmts(cc.Body, committed)
				if !terminates(cc.Body) {
					after = after || r
				}
			}
		}
		return after
	case *ast.SelectStmt:
		after := committed
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				r := h.stmts(cc.Body, committed)
				if !terminates(cc.Body) {
					after = after || r
				}
			}
		}
		return after
	case *ast.LabeledStmt:
		return h.stmt(s.Stmt, committed)
	default:
		return h.scan(s, committed)
	}
}

// scan visits a non-control statement (or expression) in source order,
// updating and checking the committed state at each call.
func (h *handlerWalker) scan(n ast.Node, committed bool) bool {
	if n == nil {
		return committed
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // runs elsewhere; checked as its own handler if shaped so
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch h.commitKind(call) {
		case 1:
			if committed {
				h.pass.Reportf(call.Pos(), "handler commits the response header twice on this path; the header was already written above — restructure so each path commits once")
			}
			committed = true
		case 2:
			committed = true
		}
		return true
	})
	return committed
}

// terminates reports whether the statement list ends control flow.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

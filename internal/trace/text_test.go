package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	s := smallScene()
	s.Name = "with space"
	var buf bytes.Buffer
	if err := WriteText(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != s.Name || back.Screen != s.Screen {
		t.Errorf("header mismatch: %q %v", back.Name, back.Screen)
	}
	if len(back.Textures) != len(s.Textures) || len(back.Triangles) != len(s.Triangles) {
		t.Fatal("counts mismatch")
	}
	for i := range s.Triangles {
		if back.Triangles[i] != s.Triangles[i] {
			t.Errorf("triangle %d = %+v, want %+v", i, back.Triangles[i], s.Triangles[i])
		}
	}
}

func TestTextCommentsAndBlanks(t *testing.T) {
	src := `
# a fixture
scene demo

screen 0 0 32 32
texture 16 16
# the one triangle
tri 0 0 0 10 0 0 10 0 0 1 0 0 1
`
	s, err := ReadText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "demo" || len(s.Triangles) != 1 || len(s.Textures) != 1 {
		t.Errorf("parsed scene = %+v", s)
	}
}

func TestTextRejects(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown record", "screen 0 0 8 8\nbogus 1\n"},
		{"short screen", "screen 0 0 8\n"},
		{"bad int", "screen a 0 8 8\n"},
		{"short tri", "screen 0 0 8 8\ntexture 8 8\ntri 0 1 2\n"},
		{"bad float", "screen 0 0 8 8\ntexture 8 8\ntri 0 x 0 1 0 0 1 0 0 1 0 0 1\n"},
		{"no screen", "texture 8 8\n"},
		{"bad texid", "screen 0 0 8 8\ntexture 8 8\ntri 5 0 0 1 0 0 1 0 0 1 0 0 1\n"},
		{"non-pow2 texture", "screen 0 0 8 8\ntexture 9 8\ntri 0 0 0 1 0 0 1 0 0 1 0 0 1\n"},
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestTextEmptyNameRoundTrip(t *testing.T) {
	s := smallScene()
	s.Name = ""
	var buf bytes.Buffer
	if err := WriteText(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "" {
		t.Errorf("empty name became %q", back.Name)
	}
}

func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, smallScene()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("TTRC"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; on success the scene must validate.
		s, err := Read(bytes.NewReader(data))
		if err == nil {
			if vErr := s.Validate(); vErr != nil {
				t.Errorf("Read accepted invalid scene: %v", vErr)
			}
		}
	})
}

func FuzzReadText(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteText(&seed, smallScene()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("scene x\nscreen 0 0 1 1\n")
	f.Fuzz(func(t *testing.T, data string) {
		s, err := ReadText(strings.NewReader(data))
		if err == nil {
			if vErr := s.Validate(); vErr != nil {
				t.Errorf("ReadText accepted invalid scene: %v", vErr)
			}
		}
	})
}

package texsim

import (
	"repro/internal/core"
	"repro/internal/gl"
	"repro/internal/scene"
)

// DynamicOrder selects how the dynamic tile scheduler dispenses tiles.
type DynamicOrder = core.DynamicOrder

// Dynamic scheduling orders.
const (
	// DynamicScreenOrder dispenses tiles in row-major screen order.
	DynamicScreenOrder = core.DynamicScreenOrder
	// DynamicLPT dispenses tiles longest-estimated-work first.
	DynamicLPT = core.DynamicLPT
)

// SimulateDynamic renders the scene with *dynamic* tile assignment instead
// of the static interleave: idle processors pull whole tiles from a shared
// queue (the paper's §9 future-work question). Requires a Block
// distribution; the result is the upper bound a dynamic machine with
// whole-frame buffering could reach.
func SimulateDynamic(s *Scene, cfg Config, order DynamicOrder) (*Result, error) {
	return core.SimulateDynamic(s, cfg, order)
}

// SortLastAssignment selects triangle distribution for SimulateSortLast.
type SortLastAssignment = core.SortLastAssignment

// Sort-last triangle assignments.
const (
	// SortLastRoundRobin deals triangles to nodes one by one.
	SortLastRoundRobin = core.SortLastRoundRobin
	// SortLastChunked deals contiguous mesh-patch runs, preserving
	// per-object texture locality.
	SortLastChunked = core.SortLastChunked
)

// SimulateSortLast renders the scene on a sort-last machine (object
// distribution, full-screen rendering per node, ideal composition) — the
// alternative the paper contrasts sort-middle against. TileSize and
// TriangleBuffer are ignored.
func SimulateSortLast(s *Scene, cfg Config, assign SortLastAssignment) (*Result, error) {
	return core.SimulateSortLast(s, cfg, assign)
}

// Translate returns a copy of the scene panned by (dx, dy) pixels with
// texture coordinates travelling along — the next frame of a camera pan.
func Translate(s *Scene, dx, dy float64) *Scene {
	return scene.Translate(s, dx, dy)
}

// PanSequence builds n frames, each panned stepX/stepY pixels further than
// the last (frame 0 is the scene itself). Feed the frames to
// Machine.RunSequence to study inter-frame texture locality, e.g. with an
// L2 configured (Config.L2Config / Config.MainBus).
func PanSequence(s *Scene, n int, stepX, stepY float64) []*Scene {
	return scene.PanSequence(s, n, stepX, stepY)
}

// RunSequence simulates consecutive frames on m without resetting the
// caches between frames; it is Machine.RunSequence, re-exported for
// discoverability next to PanSequence.
func RunSequence(m *Machine, frames []*Scene) ([]*Result, error) {
	return m.RunSequence(frames)
}

// GLContext records an OpenGL-1.x-style immediate-mode command stream
// (Begin/End, TexCoord2f, Vertex2f) into a Scene, the way the paper's Mesa
// instrumentation captured its triangle traces. See NewGL.
type GLContext = gl.Context

// GL primitive modes.
const (
	GLTriangles     = gl.Triangles
	GLTriangleStrip = gl.TriangleStrip
	GLTriangleFan   = gl.TriangleFan
	GLQuads         = gl.Quads
)

// NewGL opens an immediate-mode recording context for the given screen.
// Draw with GenTexture/BindTexture/Begin/TexCoord2f/Vertex2f/End, then call
// Scene to obtain the trace.
func NewGL(name string, screen Rect) *GLContext {
	return gl.NewContext(name, screen)
}

package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/distrib"
	"repro/internal/scene"
	"repro/internal/trace"
)

// TestArtifactRoundtrip: encode → decode → replay produces the same results
// as replaying the original artifact.
func TestArtifactRoundtrip(t *testing.T) {
	base := benchSceneFor(t, "room3", 0.1)
	frames := scene.PanSequence(base, 4, 2, 1)
	a, err := BuildRasterArtifact(context.Background(), frames, 4,
		distrib.SLIKind, 2, ArtifactOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeRasterArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := DecodeRasterArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	run := func(art *RasterArtifact) []*Result {
		m, err := NewMachine(frames[0], Config{Procs: 4, Distribution: distrib.SLIKind, TileSize: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetRasterArtifact(art); err != nil {
			t.Fatal(err)
		}
		rs, err := m.RunSequence(frames)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	want, got := run(a), run(b)
	for i := range want {
		wantJS, _ := json.Marshal(want[i])
		gotJS, _ := json.Marshal(got[i])
		if string(wantJS) != string(gotJS) {
			t.Errorf("frame %d: decoded artifact diverged\noriginal: %s\ndecoded:  %s",
				i, wantJS, gotJS)
		}
	}
}

// TestArtifactDecodeRejects pins the decode-time guards: bad magic, bad
// version and truncated streams all fail loudly.
func TestArtifactDecodeRejects(t *testing.T) {
	s := testScene(3, 20, 64)
	a, err := BuildRasterArtifact(context.Background(), []*trace.Scene{s}, 2,
		distrib.BlockKind, 16, ArtifactOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeRasterArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := DecodeRasterArtifact(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("bad magic accepted")
	}
	bad := append([]byte(nil), good...)
	bad[4] = 99 // version varint
	if _, err := DecodeRasterArtifact(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := DecodeRasterArtifact(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Error("truncated stream accepted")
	}
}

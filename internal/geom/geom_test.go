package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVec2Ops(t *testing.T) {
	a := Vec2{1, 2}
	b := Vec2{3, -4}
	if got := a.Add(b); got != (Vec2{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec2{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec2{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Cross(b); got != 1*(-4)-2*3 {
		t.Errorf("Cross = %v", got)
	}
	if got := a.Dot(b); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := b.Len(); got != 5 {
		t.Errorf("Len = %v", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{0, 0, 4, 3}
	if r.Empty() {
		t.Fatal("non-empty rect reported empty")
	}
	if r.Width() != 4 || r.Height() != 3 || r.Area() != 12 {
		t.Errorf("dims = %d x %d area %d", r.Width(), r.Height(), r.Area())
	}
	if !r.Contains(0, 0) || !r.Contains(3, 2) {
		t.Error("Contains missed interior corners")
	}
	if r.Contains(4, 0) || r.Contains(0, 3) || r.Contains(-1, 0) {
		t.Error("Contains accepted exterior point")
	}
	var empty Rect
	if !empty.Empty() || empty.Width() != 0 || empty.Area() != 0 {
		t.Error("zero Rect should be empty with zero dims")
	}
	inverted := Rect{5, 5, 2, 2}
	if !inverted.Empty() || inverted.Width() != 0 {
		t.Error("inverted Rect should be empty")
	}
}

func TestRectIntersect(t *testing.T) {
	cases := []struct {
		a, b, want Rect
	}{
		{Rect{0, 0, 10, 10}, Rect{5, 5, 15, 15}, Rect{5, 5, 10, 10}},
		{Rect{0, 0, 10, 10}, Rect{10, 0, 20, 10}, Rect{}}, // touching edges share nothing
		{Rect{0, 0, 10, 10}, Rect{2, 3, 4, 5}, Rect{2, 3, 4, 5}},
		{Rect{0, 0, 4, 4}, Rect{8, 8, 12, 12}, Rect{}},
	}
	for i, c := range cases {
		if got := c.a.Intersect(c.b); got != c.want {
			t.Errorf("case %d: Intersect = %v, want %v", i, got, c.want)
		}
		if got := c.b.Intersect(c.a); got != c.want {
			t.Errorf("case %d: Intersect not symmetric: %v", i, got)
		}
		if c.a.Intersects(c.b) != !c.want.Empty() {
			t.Errorf("case %d: Intersects disagrees with Intersect", i)
		}
	}
}

func TestRectUnion(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{5, 5, 7, 9}
	u := a.Union(b)
	if u != (Rect{0, 0, 7, 9}) {
		t.Errorf("Union = %v", u)
	}
	if got := (Rect{}).Union(b); got != b {
		t.Errorf("empty union b = %v", got)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("a union empty = %v", got)
	}
}

func TestRectIntersectProperty(t *testing.T) {
	// The intersection contains exactly the points contained in both.
	f := func(ax0, ay0, aw, ah, bx0, by0, bw, bh int8, px, py int8) bool {
		a := Rect{int(ax0), int(ay0), int(ax0) + int(aw%16), int(ay0) + int(ah%16)}
		b := Rect{int(bx0), int(by0), int(bx0) + int(bw%16), int(by0) + int(bh%16)}
		x, y := int(px), int(py)
		inBoth := a.Contains(x, y) && b.Contains(x, y)
		return a.Intersect(b).Contains(x, y) == inBoth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTexMapAt(t *testing.T) {
	m := TexMap{U0: 10, V0: 20, DuDx: 2, DuDy: 0.5, DvDx: -1, DvDy: 3}
	got := m.At(4, 2)
	want := Vec2{10 + 8 + 1, 20 - 4 + 6}
	if math.Abs(got.X-want.X) > 1e-12 || math.Abs(got.Y-want.Y) > 1e-12 {
		t.Errorf("At = %v, want %v", got, want)
	}
}

func TestTexMapLOD(t *testing.T) {
	// Identity-scale map: one texel per pixel, LOD 0.
	id := TexMap{DuDx: 1, DvDy: 1}
	if got := id.LOD(); got != 0 {
		t.Errorf("identity LOD = %v", got)
	}
	// Two texels per pixel: LOD 1.
	m2 := TexMap{DuDx: 2, DvDy: 2}
	if got := m2.LOD(); math.Abs(got-1) > 1e-12 {
		t.Errorf("2x LOD = %v", got)
	}
	// Magnified (half texel per pixel): clamped to 0.
	mHalf := TexMap{DuDx: 0.5, DvDy: 0.5}
	if got := mHalf.LOD(); got != 0 {
		t.Errorf("magnified LOD = %v, want 0", got)
	}
	// Anisotropic: LOD follows the worse axis.
	anis := TexMap{DuDx: 4, DvDy: 1}
	if got := anis.LOD(); math.Abs(got-2) > 1e-12 {
		t.Errorf("anisotropic LOD = %v, want 2", got)
	}
}

func TestTriangleArea(t *testing.T) {
	tri := Triangle{V: [3]Vec2{{0, 0}, {10, 0}, {0, 10}}}
	if got := tri.Area(); got != 50 {
		t.Errorf("Area = %v", got)
	}
	// Winding flips the sign but not the magnitude.
	flipped := Triangle{V: [3]Vec2{{0, 0}, {0, 10}, {10, 0}}}
	if tri.SignedArea() != -flipped.SignedArea() {
		t.Error("SignedArea did not flip with winding")
	}
	if flipped.Area() != 50 {
		t.Errorf("flipped Area = %v", flipped.Area())
	}
	deg := Triangle{V: [3]Vec2{{0, 0}, {5, 5}, {10, 10}}}
	if !deg.Degenerate() {
		t.Error("collinear triangle not degenerate")
	}
	if tri.Degenerate() {
		t.Error("real triangle reported degenerate")
	}
}

func TestTriangleBBox(t *testing.T) {
	tri := Triangle{V: [3]Vec2{{1.5, 2.5}, {10.1, 3}, {4, 12.9}}}
	bb := tri.BBox()
	// Every vertex must be strictly inside the half-open box bounds.
	for _, v := range tri.V {
		if v.X < float64(bb.X0) || v.X >= float64(bb.X1) ||
			v.Y < float64(bb.Y0) || v.Y >= float64(bb.Y1) {
			t.Errorf("vertex %v outside bbox %v", v, bb)
		}
	}
}

func TestTriangleBBoxProperty(t *testing.T) {
	f := func(coords [6]float32) bool {
		tri := Triangle{V: [3]Vec2{
			{float64(coords[0]), float64(coords[1])},
			{float64(coords[2]), float64(coords[3])},
			{float64(coords[4]), float64(coords[5])},
		}}
		for _, v := range tri.V {
			if math.IsNaN(v.X) || math.IsInf(v.X, 0) || math.IsNaN(v.Y) || math.IsInf(v.Y, 0) {
				return true // skip non-finite inputs
			}
			if math.Abs(v.X) > 1e6 || math.Abs(v.Y) > 1e6 {
				return true // int conversion overflow range is out of scope
			}
		}
		bb := tri.BBox()
		for _, v := range tri.V {
			if v.X < float64(bb.X0) || v.X > float64(bb.X1) ||
				v.Y < float64(bb.Y0) || v.Y > float64(bb.Y1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFootprintScale(t *testing.T) {
	// A pure rotation of texel space keeps the footprint at 1.
	m := TexMap{DuDx: math.Cos(0.3), DvDx: math.Sin(0.3), DuDy: -math.Sin(0.3), DvDy: math.Cos(0.3)}
	if got := m.FootprintScale(); math.Abs(got-1) > 1e-12 {
		t.Errorf("rotation footprint = %v, want 1", got)
	}
}

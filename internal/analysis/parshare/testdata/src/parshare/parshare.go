// Package parshare exercises the parshare analyzer: worker closures may
// write captured slices/maps only through worker-disjoint indices,
// per-worker buffers, or under a mutex.
package parshare

import (
	"context"
	"sync"
)

// forEach mimics internal/par.ForEach: the last argument is the worker
// closure receiving a worker-disjoint index. Testdata cannot import the
// module, so the dispatcher shape is stubbed locally.
func forEach(ctx context.Context, par, n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

type result struct {
	Value int
	Name  string
}

func disjointWrites(ctx context.Context) ([]result, error) {
	out := make([]result, 64)
	err := forEach(ctx, 4, 64, func(i int) error {
		local := i * 2 // locals are per-invocation, always fine
		out[i] = result{Value: local}
		out[i].Name = "ok" // field write behind a disjoint index
		return nil
	})
	return out, err
}

func derivedIndex(ctx context.Context, chunk int) error {
	out := make([]int, 1024)
	return forEach(ctx, 4, 16, func(c int) error {
		lo := c * chunk
		hi := lo + chunk
		for j := lo; j < hi; j++ {
			out[j] = j // j is derived from the worker index through lo/hi
		}
		return nil
	})
}

func sharedCounter(ctx context.Context) error {
	total := 0
	err := forEach(ctx, 4, 64, func(i int) error {
		total += i // want `writes captured variable total`
		return nil
	})
	_ = total
	return err
}

func sharedAppend(ctx context.Context) error {
	var all []int
	err := forEach(ctx, 4, 64, func(i int) error {
		all = append(all, i) // want `writes captured variable all`
		return nil
	})
	_ = all
	return err
}

func fixedSlot(ctx context.Context) error {
	out := make([]int, 64)
	return forEach(ctx, 4, 64, func(i int) error {
		out[0] = i // want `does not depend on the worker index`
		return nil
	})
}

func mapUnlocked(ctx context.Context, names []string) error {
	out := make(map[string]int)
	return forEach(ctx, 4, len(names), func(i int) error {
		out[names[i]] = i // want `writes captured map out`
		return nil
	})
}

func mapLocked(ctx context.Context, names []string) error {
	out := make(map[string]int)
	var mu sync.Mutex
	return forEach(ctx, 4, len(names), func(i int) error {
		v := i * i
		mu.Lock()
		out[names[i]] = v // mutex-guarded: safe
		mu.Unlock()
		return nil
	})
}

func fieldOnShared(ctx context.Context) error {
	var acc result
	err := forEach(ctx, 4, 64, func(i int) error {
		acc.Value = i // want `writes field Value of captured acc`
		return nil
	})
	_ = acc
	return err
}

func pointerStore(ctx context.Context, target *int) error {
	return forEach(ctx, 4, 64, func(i int) error {
		*target = i // want `stores through captured pointer target`
		return nil
	})
}

// notADispatch: same closure shape, but the callee is not a ForEach-style
// driver — a plain sequential helper may fold into shared state freely.
func apply(n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

func notADispatch() error {
	total := 0
	err := apply(64, func(i int) error {
		total += i
		return nil
	})
	_ = total
	return err
}

func suppressedReduction(ctx context.Context) error {
	sum := 0
	return forEach(ctx, 1, 64, func(i int) error {
		sum += i //texlint:ignore parshare single-worker dispatch, no concurrency
		return nil
	})
}

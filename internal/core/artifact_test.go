package core

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/distrib"
	"repro/internal/memory"
	"repro/internal/scene"
	"repro/internal/trace"
)

// runArtifactPair simulates frames under cfg from scratch and by replaying a
// prebuilt raster artifact, on the given kernel setting, and fails unless the
// per-frame results are byte-identical after JSON encoding. It returns the
// replaying machine.
func runArtifactPair(t *testing.T, frames []*trace.Scene, cfg Config, nodePar int, opts ArtifactOpts) *Machine {
	t.Helper()
	direct, err := NewMachine(frames[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct.SetNodeParallelism(nodePar)
	want, err := direct.RunSequence(frames)
	if err != nil {
		t.Fatal(err)
	}

	cfgd := cfg.withDefaults()
	a, err := BuildRasterArtifact(context.Background(), frames, cfgd.Procs,
		cfgd.Distribution, cfgd.TileSize, opts)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := NewMachine(frames[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	replay.SetNodeParallelism(nodePar)
	if err := replay.SetRasterArtifact(a); err != nil {
		t.Fatal(err)
	}
	got, err := replay.RunSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		wantJS, err := json.Marshal(want[i])
		if err != nil {
			t.Fatal(err)
		}
		gotJS, err := json.Marshal(got[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(wantJS) != string(gotJS) {
			t.Errorf("frame %d: replay diverged\ndirect: %s\nreplay: %s", i, wantJS, gotJS)
		}
	}
	return replay
}

// TestArtifactReplayEquivalenceMatrix pins the replay contract across
// benchmark scenes, every distribution family, every cache kind and both
// kernels: replaying an artifact must be indistinguishable from rasterizing.
func TestArtifactReplayEquivalenceMatrix(t *testing.T) {
	dists := []struct {
		kind distrib.Kind
		tile int
	}{
		{distrib.BlockKind, 16},
		{distrib.SLIKind, 2},
		{distrib.BlockSkewedKind, 8},
	}
	caches := []CacheKind{CacheReal, CachePerfect, CacheNone}
	for _, name := range []string{"massive11255", "room3"} {
		s := benchSceneFor(t, name, 0.1)
		for _, d := range dists {
			for _, ck := range caches {
				for _, nodePar := range []int{1, 4} {
					cfg := Config{
						Procs: 8, Distribution: d.kind, TileSize: d.tile,
						CacheKind: ck,
						Bus:       memory.BusConfig{TexelsPerCycle: 2},
					}
					runArtifactPair(t, []*trace.Scene{s}, cfg, nodePar, ArtifactOpts{})
				}
			}
		}
	}
}

// TestArtifactReplayNoRepeatGuarantee covers cache geometries where the
// repeat-hit fast path must stay off — a single-set 4-way cache can alias an
// entire footprint into one set — so the replay takes the slow per-fragment
// path and must still match exactly.
func TestArtifactReplayNoRepeatGuarantee(t *testing.T) {
	s := testScene(7, 120, 128)
	cfg := Config{
		Procs: 4,
		CacheConfig: cache.Config{
			SizeBytes: 4 * 64, Ways: 4, LineBytes: 64, // 1 set: RepeatHits false
		},
		Bus: memory.BusConfig{TexelsPerCycle: 1},
	}
	runArtifactPair(t, []*trace.Scene{s}, cfg, 1, ArtifactOpts{})
	runArtifactPair(t, []*trace.Scene{s}, cfg, 4, ArtifactOpts{})
}

// TestArtifactReplayL2 checks replay with the two-level hierarchy and a
// finite main-memory bus.
func TestArtifactReplayL2(t *testing.T) {
	s := benchSceneFor(t, "blowout775", 0.15)
	cfg := Config{
		Procs: 4, L2Config: l2Config(),
		Bus:     memory.BusConfig{TexelsPerCycle: 2},
		MainBus: memory.BusConfig{TexelsPerCycle: 1},
	}
	runArtifactPair(t, []*trace.Scene{s}, cfg, 4, ArtifactOpts{})
}

// TestArtifactReplaySequence checks frame sequences: one artifact holds all
// frames and the inter-frame cache state must evolve exactly as in a direct
// run.
func TestArtifactReplaySequence(t *testing.T) {
	base := benchSceneFor(t, "room3", 0.1)
	frames := scene.PanSequence(base, 4, 3, 1)
	m := runArtifactPair(t, frames, Config{Procs: 8, TileSize: 8}, 4, ArtifactOpts{})
	if m.parallelFrames != len(frames) {
		t.Errorf("replay ran %d of %d frames on the parallel kernel", m.parallelFrames, len(frames))
	}
}

// TestArtifactReplayEventKernel forces the coupled event kernel with a small
// triangle buffer: the replay distributor must model the same back-pressure,
// FIFO peaks included.
func TestArtifactReplayEventKernel(t *testing.T) {
	s := testScene(5, 60, 96)
	m := runArtifactPair(t, []*trace.Scene{s}, Config{Procs: 4, TriangleBuffer: 8}, 4, ArtifactOpts{})
	if m.parallelFrames != 0 {
		t.Error("parallel kernel engaged despite a small triangle buffer")
	}
}

// TestArtifactSpansOnly: a spans-only artifact replays on a pure-scan machine
// (perfect cache, infinite bus) and is rejected anywhere addresses matter.
func TestArtifactSpansOnly(t *testing.T) {
	s := testScene(11, 50, 64)
	pure := Config{Procs: 4, CacheKind: CachePerfect}
	runArtifactPair(t, []*trace.Scene{s}, pure, 4, ArtifactOpts{SpansOnly: true})

	a, err := BuildRasterArtifact(context.Background(), []*trace.Scene{s}, 4,
		distrib.BlockKind, 16, ArtifactOpts{SpansOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(s, Config{Procs: 4}) // real cache needs footprints
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetRasterArtifact(a); err == nil {
		t.Error("spans-only artifact accepted by a real-cache machine")
	}
}

// TestArtifactValidation pins the attach- and run-time checks that keep an
// artifact from replaying on a machine it was not built for.
func TestArtifactValidation(t *testing.T) {
	s := testScene(3, 40, 64)
	a, err := BuildRasterArtifact(context.Background(), []*trace.Scene{s}, 4,
		distrib.BlockKind, 16, ArtifactOpts{})
	if err != nil {
		t.Fatal(err)
	}
	newM := func(cfg Config) *Machine {
		t.Helper()
		m, err := NewMachine(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if err := newM(Config{Procs: 8}).SetRasterArtifact(a); err == nil {
		t.Error("artifact accepted by a machine with a different processor count")
	}
	if err := newM(Config{Procs: 4, Distribution: distrib.SLIKind, TileSize: 2}).SetRasterArtifact(a); err == nil {
		t.Error("artifact accepted by a machine with a different distribution")
	}
	if err := newM(Config{Procs: 4, TileSize: 8}).SetRasterArtifact(a); err == nil {
		t.Error("artifact accepted by a machine with a different tile size")
	}

	m := newM(Config{Procs: 4})
	if err := m.SetRasterArtifact(a); err != nil {
		t.Fatal(err)
	}
	other := testScene(4, 40, 64)
	other.Name = "core-test-other"
	if _, err := m.RunSequence([]*trace.Scene{other}); err == nil ||
		!strings.Contains(err.Error(), "artifact") {
		t.Errorf("run on a different scene: err = %v, want artifact mismatch", err)
	}
	if _, err := m.RunSequence([]*trace.Scene{s, s}); err == nil {
		t.Error("run with a different frame count accepted")
	}
	if err := m.SetRasterArtifact(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunSequence([]*trace.Scene{other}); err != nil {
		t.Errorf("detached machine refused a normal run: %v", err)
	}
}

// TestArtifactBuildDeterministic: the artifact bytes are independent of the
// build parallelism.
func TestArtifactBuildDeterministic(t *testing.T) {
	s := testScene(9, 80, 128)
	frames := []*trace.Scene{s}
	enc := func(workers int) []byte {
		a, err := BuildRasterArtifact(context.Background(), frames, 4,
			distrib.BlockKind, 16, ArtifactOpts{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := EncodeRasterArtifact(&buf, a); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(enc(1), enc(8)) {
		t.Error("artifact bytes depend on build parallelism")
	}
}

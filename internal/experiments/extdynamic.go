package experiments

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/scene"
	"repro/internal/stats"
)

// RunExtDynamic answers the paper's §9 question "future performance studies
// should include impact of dynamic load balancing": on a 64-processor block
// machine, how much does a dynamic tile queue gain over the static
// interleave? The dynamic scheduler assumes whole-frame buffering, so its
// numbers are the *upper bound* on what dynamic assignment could buy.
func RunExtDynamic(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	scenes, err := buildAllScenes(ctx, opt)
	if err != nil {
		return nil, err
	}
	names := scene.Names()
	const procs = 64
	const width = 16

	type row struct {
		static, dynScreen, dynLPT float64
	}
	rows := make(map[string]row, len(names))
	var mu sync.Mutex
	err = forEachParallel(ctx, opt.Parallelism, len(names), func(i int) error {
		s := scenes[names[i]]
		cfg := core.Config{
			Procs: procs, Distribution: distrib.BlockKind, TileSize: width,
			CacheKind: core.CachePerfect,
		}
		base := cfg
		base.Procs = 1
		t1, err := simulate(ctx, s, base)
		if err != nil {
			return err
		}
		st, err := simulate(ctx, s, cfg)
		if err != nil {
			return err
		}
		dScreen, err := core.SimulateDynamic(s, cfg, core.DynamicScreenOrder)
		if err != nil {
			return err
		}
		dLPT, err := core.SimulateDynamic(s, cfg, core.DynamicLPT)
		if err != nil {
			return err
		}
		mu.Lock()
		rows[names[i]] = row{
			static:    t1.Cycles / st.Cycles,
			dynScreen: t1.Cycles / dScreen.Cycles,
			dynLPT:    t1.Cycles / dLPT.Cycles,
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	tab := &stats.Table{
		Caption: "64 processors, block-16, perfect cache: speedup with static interleave vs dynamic tile queues",
		Header:  []string{"scene", "static", "dynamic (screen order)", "dynamic (LPT)", "LPT gain"},
	}
	for _, n := range names {
		r := rows[n]
		gain := 0.0
		if r.static > 0 {
			gain = r.dynLPT/r.static - 1
		}
		tab.AddRow(n, stats.F(r.static, 1), stats.F(r.dynScreen, 1),
			stats.F(r.dynLPT, 1), stats.Pct(gain))
	}

	return &Report{
		ID:    "ext-dynamic",
		Title: "Extension (§9 future work): dynamic tile assignment vs static interleave",
		Notes: []string{
			scaleNote(opt),
			"the dynamic scheduler assumes whole-frame buffering: an upper bound a real PC accelerator cannot reach, which is why the paper's machines are static",
		},
		Table: []*stats.Table{tab},
	}, nil
}

// gl-recording draws a small textured scene through the immediate-mode GL
// command stream — the way the paper's traces were captured from real
// applications via an instrumented Mesa — then measures and simulates the
// recorded trace. It renders a floor (a big tiled quad), two walls drawn as
// triangle strips, and a fan-tessellated "column".
package main

import (
	"fmt"
	"log"
	"math"

	"repro/texsim"
)

func main() {
	const w, h = 640, 480
	c := texsim.NewGL("gl-room", texsim.Rect{X1: w, Y1: h})

	floorTex := c.GenTexture(64, 64)
	wallTex := c.GenTexture(128, 64)
	columnTex := c.GenTexture(64, 128)

	// Floor: one big quad tiling a small texture (magnified-Quake style).
	c.BindTexture(floorTex)
	c.Begin(texsim.GLQuads)
	quad := [][2]float64{{0, 200}, {w, 200}, {w, h}, {0, h}}
	for _, p := range quad {
		c.TexCoord2f(p[0]*0.4, p[1]*0.4)
		c.Vertex2f(p[0], p[1])
	}
	c.End()

	// Walls: two triangle strips marching across the screen.
	c.BindTexture(wallTex)
	for wall := 0; wall < 2; wall++ {
		y0 := 40.0 + float64(wall)*80
		c.Begin(texsim.GLTriangleStrip)
		for i := 0; i <= 16; i++ {
			x := float64(i) * w / 16
			c.TexCoord2f(x, 0)
			c.Vertex2f(x, y0)
			c.TexCoord2f(x, 64)
			c.Vertex2f(x, y0+64)
		}
		c.End()
	}

	// Column: a triangle fan disc, each slice mapping a wedge of texture.
	c.BindTexture(columnTex)
	c.Begin(texsim.GLTriangleFan)
	cx, cy, r := 320.0, 280.0, 90.0
	c.TexCoord2f(32, 64)
	c.Vertex2f(cx, cy)
	for i := 0; i <= 24; i++ {
		a := 2 * math.Pi * float64(i) / 24
		c.TexCoord2f(32+28*math.Cos(a), 64+56*math.Sin(a))
		c.Vertex2f(cx+r*math.Cos(a), cy+r*math.Sin(a))
	}
	c.End()

	sc, err := c.Scene()
	if err != nil {
		log.Fatal(err)
	}
	st, err := texsim.Measure(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d triangles on %d textures; %.2f Mpixels, depth complexity %.2f\n",
		st.Triangles, st.Textures, float64(st.PixelsRendered)/1e6, st.DepthComplexity)

	for _, procs := range []int{1, 4, 16} {
		res, err := texsim.Simulate(sc, texsim.Config{
			Procs: procs, Distribution: texsim.Block, TileSize: 16,
			CacheKind: texsim.CacheReal, Bus: texsim.BusConfig{TexelsPerCycle: 1},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2d processors: %8.0f cycles, texel/frag %.2f\n",
			procs, res.Cycles, res.TexelToFragment())
	}
}

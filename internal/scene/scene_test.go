package scene

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/trace"
)

func TestParamsValidate(t *testing.T) {
	good := Params{Name: "x", Width: 100, Height: 100, Triangles: 10,
		DepthComplexity: 2, Textures: 2, TexSize: 64}
	if err := good.Validate(); err != nil {
		t.Fatalf("good params rejected: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Width = 0 },
		func(p *Params) { p.Triangles = 0 },
		func(p *Params) { p.DepthComplexity = -1 },
		func(p *Params) { p.TexelDensity = -0.5 },
		func(p *Params) { p.FreshFraction = 1.5 },
		func(p *Params) { p.HotSpotShare = 1 },
		func(p *Params) { p.Scale = -1 },
		func(p *Params) { p.TexSize = 48 },
	}
	for i, mutate := range bad {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Name: "det", Width: 320, Height: 240, Triangles: 500,
		DepthComplexity: 2, Textures: 10, TexSize: 32, TexelDensity: 0.8,
		FreshFraction: 0.5, HotSpots: 2, HotSpotShare: 0.3, Seed: 42}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Triangles) != len(b.Triangles) || len(a.Textures) != len(b.Textures) {
		t.Fatal("same seed produced different scene sizes")
	}
	for i := range a.Triangles {
		if a.Triangles[i] != b.Triangles[i] {
			t.Fatalf("triangle %d differs between runs", i)
		}
	}
	// A different seed must produce a different scene.
	p.Seed = 43
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Triangles) == len(a.Triangles) && c.Triangles[0] == a.Triangles[0] {
		t.Error("different seeds produced identical scenes")
	}

	// Generate is exactly GenerateWithRand over a stream seeded with
	// Params.Seed — the injected-rand path and the config path must agree.
	p.Seed = 42
	d, err := GenerateWithRand(p, rand.New(rand.NewSource(p.Seed)))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Triangles) != len(a.Triangles) {
		t.Fatalf("GenerateWithRand produced %d triangles, Generate %d", len(d.Triangles), len(a.Triangles))
	}
	for i := range d.Triangles {
		if d.Triangles[i] != a.Triangles[i] {
			t.Fatalf("triangle %d differs between Generate and GenerateWithRand", i)
		}
	}
}

func TestGeneratedSceneIsValid(t *testing.T) {
	for _, b := range Benchmarks(0.35) {
		s, err := b.Build()
		if err != nil {
			t.Fatalf("%s: %v", b.Target.Name, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: invalid scene: %v", b.Target.Name, err)
		}
		if s.Name != b.Target.Name {
			t.Errorf("scene name %q != target %q", s.Name, b.Target.Name)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	names := Names()
	if len(names) != 7 || names[0] != "room3" || names[6] != "truc640" {
		t.Fatalf("Names = %v", names)
	}
	for _, n := range names {
		b, err := ByName(n, 0.5)
		if err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if b.Target.Name != n {
			t.Errorf("ByName(%q) returned %q", n, b.Target.Name)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestTextureCountScalesWithArea(t *testing.T) {
	full, err := ByName("quake", 1)
	if err != nil {
		t.Fatal(err)
	}
	half, err := ByName("quake", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sFull := full.MustBuild()
	sHalf := half.MustBuild()
	if got, want := len(sFull.Textures), full.Target.Textures; got != want {
		t.Errorf("full-scale texture count %d, want %d", got, want)
	}
	ratio := float64(len(sHalf.Textures)) / float64(len(sFull.Textures))
	if math.Abs(ratio-0.25) > 0.02 {
		t.Errorf("half-scale texture count ratio %v, want 0.25", ratio)
	}
}

func TestPatchesShareTexMaps(t *testing.T) {
	// Triangles come in patch runs sharing one texture mapping — the mesh
	// continuity the cache experiments rely on. Verify substantial runs
	// exist: the number of distinct (TexID, TexMap) groups must be far below
	// the triangle count.
	b, err := ByName("massive11255", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s := b.MustBuild()
	type key struct {
		id  int32
		u0  float64
		du  float64
		dv  float64
		v0f float64
	}
	groups := make(map[key]int)
	for _, tr := range s.Triangles {
		groups[key{tr.TexID, tr.Tex.U0, tr.Tex.DuDx, tr.Tex.DvDy, tr.Tex.V0}]++
	}
	if len(groups)*3 > len(s.Triangles) {
		t.Errorf("%d texmap groups for %d triangles: no patch structure",
			len(groups), len(s.Triangles))
	}
}

// Table 1 fidelity: measured characteristics at scale 0.5 must land within
// tolerance of the published targets (scaled by 0.25 where they are
// area-proportional). TextureMB is excluded — see the note on Table1.
func TestTable1Fidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scene measurement")
	}
	const scale = 0.5
	type check struct {
		name      string
		got, want float64
		tol       float64 // relative tolerance
	}
	uniqueByScene := make(map[string]float64)
	for _, b := range Benchmarks(scale) {
		b := b
		t.Run(b.Target.Name, func(t *testing.T) {
			s := b.MustBuild()
			st, err := trace.Measure(s)
			if err != nil {
				t.Fatal(err)
			}
			area := scale * scale
			checks := []check{
				{"Mpixels", float64(st.PixelsRendered) / 1e6, b.Target.MPixels * area, 0.10},
				{"depth complexity", st.DepthComplexity, b.Target.DepthComplexity, 0.05},
				{"triangles", float64(st.Triangles), float64(b.Target.Triangles) * area, 0.40},
				{"textures", float64(st.Textures),
					math.Max(1, math.Round(float64(b.Target.Textures)*area)), 0.05},
				{"unique texel/frag", st.UniqueTexelFrag, b.Target.UniqueTexelFrag, 0.35},
			}
			for _, c := range checks {
				if c.want == 0 {
					continue
				}
				rel := math.Abs(c.got-c.want) / c.want
				if rel > c.tol {
					t.Errorf("%s: got %.4g, want %.4g (±%.0f%%)",
						c.name, c.got, c.want, c.tol*100)
				}
			}
			uniqueByScene[b.Target.Name] = st.UniqueTexelFrag
		})
	}
	// The suite-wide ordering of unique ratios drives Figure 6; it must hold.
	order := []string{"blowout775", "massive11255", "truc640", "room3",
		"32massive11255", "teapot.full", "quake"}
	for i := 1; i < len(order); i++ {
		lo, hi := order[i-1], order[i]
		vLo, okLo := uniqueByScene[lo]
		vHi, okHi := uniqueByScene[hi]
		if !okLo || !okHi {
			t.Skip("subtest failed before recording ratios")
		}
		if vLo >= vHi {
			t.Errorf("unique ratio ordering violated: %s (%.3f) ≥ %s (%.3f)",
				lo, vLo, hi, vHi)
		}
	}
}

func TestSmallScaleStaysUsable(t *testing.T) {
	// Very small scales degrade counts but must still generate valid,
	// drawable scenes for quick tests.
	for _, b := range Benchmarks(0.15) {
		s, err := b.Build()
		if err != nil {
			t.Fatalf("%s at 0.15: %v", b.Target.Name, err)
		}
		st, err := trace.Measure(s)
		if err != nil {
			t.Fatal(err)
		}
		if st.PixelsRendered == 0 || st.Triangles == 0 {
			t.Errorf("%s at 0.15: empty scene", b.Target.Name)
		}
		if math.Abs(st.DepthComplexity-b.Target.DepthComplexity) > 0.3*b.Target.DepthComplexity {
			t.Errorf("%s at 0.15: DC %v, want ≈%v", b.Target.Name,
				st.DepthComplexity, b.Target.DepthComplexity)
		}
	}
}

func TestHotSpotsConcentrateOverdraw(t *testing.T) {
	// With hot spots, per-region depth complexity must vary strongly across
	// the screen (the paper's premise for load imbalance). Compare the
	// busiest and average 64x64 cell of room3.
	b, err := ByName("room3", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s := b.MustBuild()
	const cell = 64
	nx := (s.Screen.Width() + cell - 1) / cell
	ny := (s.Screen.Height() + cell - 1) / cell
	counts := make([]float64, nx*ny)
	for _, tr := range s.Triangles {
		bb := tr.BBox().Intersect(s.Screen)
		if bb.Empty() {
			continue
		}
		// Approximate: attribute the triangle's area to its center cell.
		cx := (bb.X0 + bb.X1) / 2 / cell
		cy := (bb.Y0 + bb.Y1) / 2 / cell
		counts[cy*nx+cx] += tr.Area()
	}
	maxV, sum := 0.0, 0.0
	for _, c := range counts {
		sum += c
		if c > maxV {
			maxV = c
		}
	}
	avg := sum / float64(len(counts))
	if maxV < 2*avg {
		t.Errorf("overdraw too uniform: max cell %.0f vs avg %.0f", maxV, avg)
	}
}

func BenchmarkGenerateMassive(b *testing.B) {
	bench, err := ByName("massive11255", 0.5)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := bench.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

// Package rpc exercises the rpchygiene analyzer: outbound deadlines,
// response-body lifecycles, and handler header discipline.
package rpc

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

type client struct {
	http *http.Client
}

// ---- outbound deadline discipline ----

func (c *client) boundedCall(ctx context.Context, url string) error {
	cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return nil
}

func (c *client) rawContextCall(url string) error {
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, url, nil) // want `not provably deadline-bound`
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return nil
}

func (c *client) unboundedLocal(ctx context.Context, url string) error {
	detached := context.WithoutCancel(ctx)
	req, err := http.NewRequestWithContext(detached, http.MethodGet, url, nil) // want `has no deadline in this function`
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return nil
}

func noContextAtAll(url string) error {
	resp, err := http.Get(url) // want `no context at all`
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return nil
}

// do forwards its context parameter into the request: the deadline
// obligation moves to its callers (it is unexported, so that is fine).
func (c *client) do(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.http.Do(req)
}

// goodCaller bounds the context before handing it to the sender helper.
func (c *client) goodCaller(ctx context.Context, url string) error {
	cctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	resp, err := c.do(cctx, url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return nil
}

// badCaller hands the sender helper an unbounded root context.
func (c *client) badCaller(url string) error {
	ctx := context.Background()
	resp, err := c.do(ctx, url) // want `has no deadline in this function`
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return nil
}

// Fetch is exported and forwards its raw context into the transport
// (transitively, through do): callers outside the package cannot be
// audited, so the deadline must be applied here.
func (c *client) Fetch(ctx context.Context, url string) error { // want `exported Fetch sends peer requests`
	resp, err := c.do(ctx, url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return nil
}

// ---- response body discipline ----

func (c *client) inlineClose(ctx context.Context, url string) error {
	cctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	resp, err := c.do(cctx, url) // want `not closed on every path`
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	resp.Body.Close() // inline: skipped by the early return above
	return nil
}

func (c *client) discarded(ctx context.Context, url string) {
	cctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	c.do(cctx, url) // want `response discarded without closing its body`
}

// transfer returns the response: ownership moves to the caller.
func (c *client) transfer(ctx context.Context, url string) (*http.Response, error) {
	cctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	resp, err := c.do(cctx, url)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

func (c *client) deferredHelper(ctx context.Context, url string) error {
	cctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	resp, err := c.do(cctx, url)
	if err != nil {
		return err
	}
	defer drain(resp)
	_, err = io.ReadAll(resp.Body)
	return err
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// ---- handler-side discipline ----

func writeJSON(w http.ResponseWriter, code int, body string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	io.WriteString(w, body)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, fmt.Sprintf("{\"error\":%q}", err.Error()))
}

func guardedHandler(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("id") == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing id"))
		return
	}
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, "{}")
}

func doubleCommit(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("id") == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing id"))
		// missing return: the fallthrough path commits again
	}
	writeJSON(w, http.StatusOK, "{}") // want `commits the response header twice`
}

func writeThenHeader(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte("hello"))
	w.WriteHeader(http.StatusOK) // want `commits the response header twice`
}

func branchesCommitOnce(w http.ResponseWriter, r *http.Request, ok bool) {
	if ok {
		writeJSON(w, http.StatusOK, "{}")
	} else {
		writeError(w, http.StatusNotFound, fmt.Errorf("missing"))
	}
}

func rootContextHandler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `mints a root context`
	_ = ctx
	writeJSON(w, http.StatusOK, "{}")
}

func requestContextHandler(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	_ = ctx
	writeJSON(w, http.StatusOK, "{}")
}

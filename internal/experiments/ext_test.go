package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

func TestExtRegistryComplete(t *testing.T) {
	for _, id := range []string{"ext-l2", "ext-dynamic", "ext-prefetch", "ext-cache"} {
		if _, ok := ByID(id); !ok {
			t.Errorf("extension %q not registered", id)
		}
	}
}

// pctCell parses a "12.3%" cell at (rowLabel, col).
func pctCell(t *testing.T, tab interface{ String() string }, rowLabel string, col int) float64 {
	t.Helper()
	v := cellValue(t, tab, rowLabel, col)
	return v
}

func TestExtL2Shape(t *testing.T) {
	rep, err := RunExtL2(context.Background(), shapeOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table) != 2 {
		t.Fatalf("want 2 tables, got %d", len(rep.Table))
	}
	small, big := rep.Table[0], rep.Table[1] // block-16, block-64
	// Static camera: warm traffic (col 3 = warm/cold %) is zero.
	if got := pctCell(t, small, "0", 3); got != 0 {
		t.Errorf("static warm/cold = %v%%, want 0", got)
	}
	// Panning beyond the tile size costs more than panning within it.
	tiny := pctCell(t, small, "4", 3)
	bigPan := pctCell(t, small, "32", 3)
	if bigPan <= tiny {
		t.Errorf("block-16: 32-px pan (%v%%) not above 4-px pan (%v%%)", bigPan, tiny)
	}
	// The larger tile tolerates a 16-px pan better than the small tile.
	if pctCell(t, big, "16", 3) >= pctCell(t, small, "16", 3) {
		t.Errorf("block-64 16-px pan (%v%%) not below block-16's (%v%%)",
			pctCell(t, big, "16", 3), pctCell(t, small, "16", 3))
	}
}

func TestExtDynamicShape(t *testing.T) {
	rep, err := RunExtDynamic(context.Background(), shapeOpt)
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.Table[0]
	if len(tab.Rows) != 7 {
		t.Fatalf("want 7 scene rows, got %d", len(tab.Rows))
	}
	// LPT must beat or match static on every scene (it is an upper bound
	// with whole-frame knowledge), and beat it clearly on at least half.
	wins := 0
	for _, row := range tab.Rows {
		static, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		lpt, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if lpt < static*0.98 {
			t.Errorf("%s: dynamic LPT %v below static %v", row[0], lpt, static)
		}
		if lpt > static*1.1 {
			wins++
		}
	}
	if wins < 3 {
		t.Errorf("dynamic LPT clearly better on only %d/7 scenes", wins)
	}
}

func TestExtPrefetchShape(t *testing.T) {
	rep, err := RunExtPrefetch(context.Background(), shapeOpt)
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.Table[0]
	// Cycles must be non-increasing in depth; depth 1 must stall much more
	// than depth 256.
	var prev float64
	for i, row := range tab.Rows {
		c, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && c > prev*1.001 {
			t.Errorf("depth %s cycles %v above shallower depth's %v", row[0], c, prev)
		}
		prev = c
	}
	first := cellValue(t, tab, "1", 3)
	last := cellValue(t, tab, "256", 3)
	if first <= last {
		t.Errorf("depth-1 stalls (%v) not above depth-256 stalls (%v)", first, last)
	}
}

func TestExtCacheShape(t *testing.T) {
	rep, err := RunExtCache(context.Background(), shapeOpt)
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.Table[0]
	// Bigger caches never fetch more (same associativity column), and at
	// 4 KB higher associativity helps.
	col4way := 3
	if cellValue(t, tab, "64KB", col4way) > cellValue(t, tab, "4KB", col4way) {
		t.Error("64 KB cache fetches more than 4 KB cache")
	}
	small1 := cellValue(t, tab, "4KB", 1)
	small4 := cellValue(t, tab, "4KB", col4way)
	if small4 >= small1 {
		t.Errorf("4 KB: 4-way ratio %v not below direct-mapped %v", small4, small1)
	}
	// The knee: going 16→64 KB buys much less than 4→16 KB.
	gainSmall := cellValue(t, tab, "4KB", col4way) - cellValue(t, tab, "16KB", col4way)
	gainBig := cellValue(t, tab, "16KB", col4way) - cellValue(t, tab, "64KB", col4way)
	if gainBig >= gainSmall {
		t.Errorf("no knee at 16 KB: 4→16 gain %v vs 16→64 gain %v", gainSmall, gainBig)
	}
}

func TestReportsMentionScale(t *testing.T) {
	rep, err := RunExtCache(context.Background(), smokeOpt)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "scale") {
			found = true
		}
	}
	if !found {
		t.Error("report notes omit the scene scale")
	}
}

package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sweep"
	"repro/internal/telemetry/progress"
)

// sseEvent is one parsed Server-Sent Event frame.
type sseEvent struct {
	ID    string
	Event string
	Data  progress.Event
}

// readSSEFunc parses SSE frames off r, invoking onFrame per frame until it
// returns false or the stream ends.
func readSSEFunc(t *testing.T, r io.Reader, onFrame func(sseEvent) bool) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.Event != "" || cur.ID != "" {
				out = append(out, cur)
				if !onFrame(cur) {
					return out
				}
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.ID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.Data); err != nil {
				t.Fatalf("malformed SSE data %q: %v", line, err)
			}
		}
	}
	return out
}

// readSSE parses SSE frames off r until the stream ends or max frames have
// arrived (max <= 0 = read to EOF).
func readSSE(t *testing.T, r io.Reader, max int) []sseEvent {
	t.Helper()
	n := 0
	return readSSEFunc(t, r, func(sseEvent) bool {
		n++
		return max <= 0 || n < max
	})
}

// streamEvents opens the job's SSE stream with optional headers and reads
// it to the terminal event.
func streamEvents(t *testing.T, url, jobID string, hdr map[string]string) []sseEvent {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url+"/api/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	return readSSE(t, resp.Body, 0)
}

// checkGapless asserts the frames are a dense seq run ending in a terminal
// event of the wanted type, with one row event per sweep row before it.
func checkGapless(t *testing.T, evs []sseEvent, rows int, terminal string, from int64) {
	t.Helper()
	if len(evs) == 0 {
		t.Fatal("no SSE events")
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("%d", from+int64(i)); ev.ID != want {
			t.Fatalf("frame %d has id %q, want %q (gapless dense sequence)", i, ev.ID, want)
		}
		if ev.Data.Seq != from+int64(i) {
			t.Fatalf("frame %d data seq = %d, want %d", i, ev.Data.Seq, from+int64(i))
		}
	}
	last := evs[len(evs)-1]
	if last.Event != terminal || !last.Data.Terminal() {
		t.Fatalf("stream ended with %q, want terminal %q", last.Event, terminal)
	}
	if got := len(evs) - 1; got != rows {
		t.Fatalf("stream carried %d row events, want %d", got, rows)
	}
	for _, ev := range evs[:len(evs)-1] {
		if ev.Event != "row" {
			t.Fatalf("non-terminal frame has type %q, want row", ev.Event)
		}
		if ev.Data.ConfigHash == "" || ev.Data.Procs == 0 || ev.Data.Size == 0 {
			t.Fatalf("row event missing simulation columns: %+v", ev.Data)
		}
	}
}

func TestSSEStreamEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	v, code := postJob(t, ts, tinySweep())
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}

	// Subscribe while the job runs: the stream replays from 0 and follows
	// the job to its terminal event.
	evs := streamEvents(t, ts.URL, v.ID, nil)
	checkGapless(t, evs, 2, "done", 0)

	// Row wall times are measured on this node (not replayed), so they are
	// positive, and cache_hit is unset.
	for _, ev := range evs[:len(evs)-1] {
		if ev.Data.CacheHit {
			t.Fatalf("freshly simulated row marked cache_hit: %+v", ev.Data)
		}
		if ev.Data.WallSeconds <= 0 {
			t.Fatalf("row wall time = %v, want > 0", ev.Data.WallSeconds)
		}
	}

	// Replay after completion is identical — the log is retained.
	again := streamEvents(t, ts.URL, v.ID, nil)
	if len(again) != len(evs) {
		t.Fatalf("replay returned %d events, want %d", len(again), len(evs))
	}

	// Last-Event-ID resumes after the given sequence, gaplessly.
	resumed := streamEvents(t, ts.URL, v.ID, map[string]string{"Last-Event-ID": "0"})
	checkGapless(t, resumed, 1, "done", 1)
}

func TestSSEFromQueryAndErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	v, _ := postJob(t, ts, tinySweep())
	waitDone(t, ts, v.ID)

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + v.ID + "/events?from=2")
	if err != nil {
		t.Fatal(err)
	}
	evs := readSSE(t, resp.Body, 0)
	resp.Body.Close()
	checkGapless(t, evs, 0, "done", 2)

	if code := getJSON(t, ts.URL+"/api/v1/jobs/nope/events", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job events returned %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/api/v1/jobs/"+v.ID+"/events?from=-1", nil); code != http.StatusBadRequest {
		t.Fatalf("negative from returned %d, want 400", code)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/jobs/"+v.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "bogus")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed Last-Event-ID returned %d, want 400", resp2.StatusCode)
	}
}

func TestSSECacheHitReplay(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	v1, _ := postJob(t, ts, tinySweep())
	waitDone(t, ts, v1.ID)

	// The identical submission is served from the result cache; its stream
	// still carries one event per row, marked cache_hit.
	v2, _ := postJob(t, ts, tinySweep())
	waitDone(t, ts, v2.ID)
	evs := streamEvents(t, ts.URL, v2.ID, nil)
	checkGapless(t, evs, 2, "done", 0)
	for _, ev := range evs[:len(evs)-1] {
		if !ev.Data.CacheHit {
			t.Fatalf("cache-served row not marked cache_hit: %+v", ev.Data)
		}
	}
}

func TestSSEClientDisconnect(t *testing.T) {
	// A sweep that blocks until released keeps the job running while the
	// subscriber connects and then disconnects.
	release := make(chan struct{})
	defer close(release)
	_, ts := newTestServer(t, Config{Workers: 1,
		runOverride: func(ctx context.Context, req *Request) ([]byte, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return []byte(`{"rows":[]}`), nil
		}})

	v, _ := postJob(t, ts, tinySweep())
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/api/v1/jobs/"+v.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}

	// The handler is now blocked in Next; the stream gauge shows it.
	waitFor(t, func() bool { return metricValue(t, ts, "texsimd_progress_streams") == 1 },
		"the SSE stream gauge to reach 1")
	cancel() // client walks away
	resp.Body.Close()
	waitFor(t, func() bool { return metricValue(t, ts, "texsimd_progress_streams") == 0 },
		"the disconnect to release the stream")
}

func TestDrainClosesStreamsWithTerminalEvent(t *testing.T) {
	release := make(chan struct{})
	srv, err := New(context.Background(), Config{Workers: 1, SampleInterval: -1,
		runOverride: func(ctx context.Context, req *Request) ([]byte, error) {
			close(release)
			<-ctx.Done() // runs until drain's cancellation
			return nil, ctx.Err()
		}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	v, _ := postJob(t, ts, tinySweep())
	<-release

	// Subscribe mid-job, then drain the server under the stream with an
	// already-expired context: running work is cancelled, and the broker
	// shutdown must still hand every subscriber a terminal event. The
	// stream body is read raw off the test goroutine and parsed on it.
	got := make(chan []byte, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/api/v1/jobs/" + v.ID + "/events")
		if err != nil {
			got <- nil
			return
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body) // EOF when the server ends the stream
		got <- raw
	}()
	waitFor(t, func() bool { return metricValue(t, ts, "texsimd_progress_streams") == 1 },
		"the subscriber to attach")

	dctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	srv.Drain(dctx) // forced drain cancels the running job

	select {
	case raw := <-got:
		evs := readSSE(t, bytes.NewReader(raw), 0)
		if len(evs) == 0 {
			t.Fatal("stream closed without any event")
		}
		last := evs[len(evs)-1]
		if !last.Data.Terminal() {
			t.Fatalf("stream ended with %q, want a terminal event", last.Event)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not close after drain")
	}
}

func TestMetricsContentType(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("/metrics Content-Type = %q, want %q", ct, metrics.ContentType)
	}
}

func TestBuildInfoMetric(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, "texsimd_build_info{") {
		t.Fatalf("/metrics missing texsimd_build_info:\n%s", text)
	}
	for _, label := range []string{`version="`, `commit="`, `go="`} {
		if !strings.Contains(text, label) {
			t.Fatalf("texsimd_build_info missing %s label:\n%s", label, text)
		}
	}
}

func TestMetricsQueryEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{SampleInterval: 10 * time.Millisecond, SamplePoints: 16})

	v, _ := postJob(t, ts, tinySweep())
	waitDone(t, ts, v.ID)

	// The names listing fills in as the sampler ticks.
	var listing struct {
		Names           []string `json:"names"`
		IntervalSeconds float64  `json:"interval_seconds"`
		Capacity        int      `json:"capacity"`
	}
	waitFor(t, func() bool {
		getJSON(t, ts.URL+"/api/v1/metrics/query", &listing)
		return len(listing.Names) > 0
	}, "the sampler's first tick")
	if listing.Capacity != 16 || listing.IntervalSeconds <= 0 {
		t.Fatalf("listing = %+v, want capacity 16 and a positive interval", listing)
	}
	found := false
	for _, n := range listing.Names {
		if n == "texsimd_progress_events_total" {
			found = true
		}
	}
	if !found {
		t.Fatalf("names %v missing texsimd_progress_events_total", listing.Names)
	}

	// Querying a counter returns its sampled window; the job published 3
	// progress events (2 rows + terminal), so the last point reaches 3.
	var doc struct {
		Name   string           `json:"name"`
		Series []metrics.Series `json:"series"`
	}
	waitFor(t, func() bool {
		getJSON(t, ts.URL+"/api/v1/metrics/query?name=texsimd_progress_events_total", &doc)
		return len(doc.Series) == 1 && len(doc.Series[0].Points) > 0 &&
			doc.Series[0].Points[len(doc.Series[0].Points)-1].V == 3
	}, "the progress-event counter to be sampled at 3")

	// since filters to recent points, accepting a relative duration.
	var recent struct {
		Series []metrics.Series `json:"series"`
	}
	getJSON(t, ts.URL+"/api/v1/metrics/query?name=texsimd_progress_events_total&since=1h", &recent)
	if len(recent.Series) != 1 {
		t.Fatalf("since=1h returned %d series, want 1", len(recent.Series))
	}
	if code := getJSON(t, ts.URL+"/api/v1/metrics/query?name=x&since=bogus", nil); code != http.StatusBadRequest {
		t.Fatalf("malformed since returned %d, want 400", code)
	}

	_ = srv
}

func TestSamplerDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{SampleInterval: -1})
	var listing struct {
		Names []string `json:"names"`
	}
	getJSON(t, ts.URL+"/api/v1/metrics/query", &listing)
	if len(listing.Names) != 0 {
		t.Fatalf("disabled sampler still produced series: %v", listing.Names)
	}
}

func TestDashServed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/debug/dash")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/dash returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("/debug/dash Content-Type = %q, want text/html", ct)
	}
	text := string(body)
	// The page must be self-contained and point at the live endpoints.
	for _, want := range []string{"/cluster/metrics", "/api/v1/metrics/query", "EventSource"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/debug/dash missing %q", want)
		}
	}
	for _, banned := range []string{"src=\"http", "href=\"http", "@import"} {
		if strings.Contains(text, banned) {
			t.Fatalf("/debug/dash references an external asset (%q)", banned)
		}
	}
}

func TestClusterMetricsStandalone(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	v, _ := postJob(t, ts, tinySweep())
	waitDone(t, ts, v.ID)

	var doc struct {
		Nodes []fleetNode `json:"nodes"`
		Fleet fleetTotals `json:"fleet"`
	}
	if code := getJSON(t, ts.URL+"/cluster/metrics", &doc); code != http.StatusOK {
		t.Fatalf("/cluster/metrics returned %d", code)
	}
	if len(doc.Nodes) != 1 || doc.Fleet.Nodes != 1 || doc.Fleet.Live != 1 {
		t.Fatalf("standalone fleet = %+v, want exactly this node", doc)
	}
	n := doc.Nodes[0]
	if n.Stale || n.Workers != 2 {
		t.Fatalf("node = %+v, want live with 2 workers", n)
	}
	if n.SimulatedCycles <= 0 || n.ProgressEvents != 3 {
		t.Fatalf("node = %+v, want simulated cycles > 0 and 3 progress events", n)
	}
	if doc.Fleet.ProgressEvents != 3 || doc.Fleet.SimulatedCycles != n.SimulatedCycles {
		t.Fatalf("fleet totals %+v do not mirror the single node %+v", doc.Fleet, n)
	}
}

// fleetDoc decodes one /cluster/metrics response.
type fleetDoc struct {
	Nodes []fleetNode `json:"nodes"`
	Fleet fleetTotals `json:"fleet"`
}

func TestClusterMetricsThreeNodeMerge(t *testing.T) {
	nodes := newClusterNodes(t, 3, func(i int, cfg *Config) {
		cfg.runOverride = func(ctx context.Context, req *Request) ([]byte, error) {
			return echoPayload(t, req), nil
		}
	})
	// One locally-pinned job per node, so every node has its own counters.
	routed := map[string]string{cluster.RoutedHeader: "1"}
	seen := map[string]bool{}
	for i, nd := range nodes {
		v, code := postJobWith(t, nd.ts, specOwnedBy(t, nodes, i, seen), routed)
		if code != http.StatusAccepted {
			t.Fatalf("node %d submit returned %d", i, code)
		}
		if d := waitDone(t, nd.ts, v.ID); d.Status != StatusDone {
			t.Fatalf("node %d job ended %s: %s", i, d.Status, d.Error)
		}
	}

	var doc fleetDoc
	if code := getJSON(t, nodes[0].ts.URL+"/cluster/metrics", &doc); code != http.StatusOK {
		t.Fatalf("/cluster/metrics returned %d", code)
	}
	if doc.Fleet.Nodes != 3 || doc.Fleet.Live != 3 || doc.Fleet.Stale != 0 {
		t.Fatalf("fleet = %+v, want 3 live nodes", doc.Fleet)
	}
	if doc.Fleet.Workers != 6 {
		t.Fatalf("fleet workers = %d, want 6 (2 per node, summed)", doc.Fleet.Workers)
	}
	// Each job publishes one terminal progress event (runOverride skips the
	// row sink), and the merge must carry every node's count.
	if doc.Fleet.ProgressEvents != 3 {
		t.Fatalf("fleet progress events = %d, want 3", doc.Fleet.ProgressEvents)
	}
	byAddr := map[string]fleetNode{}
	for _, n := range doc.Nodes {
		byAddr[n.Addr] = n
	}
	for i, nd := range nodes {
		n, ok := byAddr[nd.ts.URL]
		if !ok {
			t.Fatalf("node %d (%s) missing from the fleet view", i, nd.ts.URL)
		}
		if n.Stale || n.ProgressEvents != 1 || n.Cluster == nil {
			t.Fatalf("node %d = %+v, want live with 1 progress event and cluster stats", i, n)
		}
	}
}

func TestClusterMetricsMarksKilledPeerStale(t *testing.T) {
	nodes := newClusterNodes(t, 3, func(i int, cfg *Config) {
		cfg.runOverride = func(ctx context.Context, req *Request) ([]byte, error) {
			return echoPayload(t, req), nil
		}
	})
	nodes[2].ts.Close() // the peer dies; its address stays in the member table

	var doc fleetDoc
	if code := getJSON(t, nodes[0].ts.URL+"/cluster/metrics", &doc); code != http.StatusOK {
		t.Fatalf("/cluster/metrics returned %d", code)
	}
	if doc.Fleet.Nodes != 3 || doc.Fleet.Live != 2 || doc.Fleet.Stale != 1 {
		t.Fatalf("fleet = %+v, want 2 live + 1 stale", doc.Fleet)
	}
	var stale *fleetNode
	for i := range doc.Nodes {
		if doc.Nodes[i].Stale {
			stale = &doc.Nodes[i]
		}
	}
	if stale == nil || stale.Addr != nodes[2].ts.URL {
		t.Fatalf("stale node = %+v, want %s marked stale", stale, nodes[2].ts.URL)
	}
	if stale.Error == "" {
		t.Fatal("stale node carries no error")
	}
	// Dead-node numbers must not pollute the merged totals.
	if doc.Fleet.Workers != 4 {
		t.Fatalf("fleet workers = %d, want 4 (the two live nodes)", doc.Fleet.Workers)
	}
}

// TestClusterE2EProgressWithPeerDeath is the acceptance flow: a 3-node
// cluster streams a multi-row sweep's progress over SSE, one non-executing
// peer is killed mid-stream, the surviving node's stream completes
// gaplessly, and /cluster/metrics reports the dead peer stale while
// merging the two live nodes.
func TestClusterE2EProgressWithPeerDeath(t *testing.T) {
	nodes := newClusterNodes(t, 3, nil) // real simulations

	// Four rows, pinned to node 0 by the routed header so forwarding can
	// never hand the job to the peer we kill.
	req := &Request{Type: "sweep", Sweep: &sweep.Spec{
		Scene: "truc640", Scale: 0.25, Procs: []int{1, 4}, Sizes: []int{8, 16},
		Cache: "perfect",
	}}
	v, code := postJobWith(t, nodes[0].ts, req, map[string]string{cluster.RoutedHeader: "1"})
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}

	resp, err := http.Get(nodes[0].ts.URL + "/api/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	killed := false
	evs := readSSEFunc(t, resp.Body, func(ev sseEvent) bool {
		if !killed {
			// First frame arrived while the job streams: kill the bystander.
			nodes[2].ts.Close()
			killed = true
		}
		return true // read to the terminal event
	})
	resp.Body.Close()
	if !killed {
		t.Fatal("stream delivered no frames")
	}
	checkGapless(t, evs, 4, "done", 0)

	if d := waitDone(t, nodes[0].ts, v.ID); d.Status != StatusDone {
		t.Fatalf("job ended %s: %s", d.Status, d.Error)
	}

	var doc fleetDoc
	if code := getJSON(t, nodes[0].ts.URL+"/cluster/metrics", &doc); code != http.StatusOK {
		t.Fatalf("/cluster/metrics returned %d", code)
	}
	if doc.Fleet.Live != 2 || doc.Fleet.Stale != 1 {
		t.Fatalf("fleet = %+v, want 2 live + 1 stale after the kill", doc.Fleet)
	}
	for _, n := range doc.Nodes {
		if n.Stale != (n.Addr == nodes[2].ts.URL) {
			t.Fatalf("node %s stale=%v, want only the killed peer stale", n.Addr, n.Stale)
		}
	}
	// The surviving executor's snapshot reflects the streamed job: 4 row
	// events + the terminal, and real simulated work.
	exec := doc.Nodes[0]
	if exec.Addr != nodes[0].ts.URL || exec.ProgressEvents != 5 || exec.SimulatedCycles <= 0 {
		t.Fatalf("executor = %+v, want 5 progress events and simulated cycles", exec)
	}
}

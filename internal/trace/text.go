package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// Text trace format: a line-oriented, diff-friendly dump of a scene, for
// debugging and for committing small fixture traces. One record per line:
//
//	# comments and blank lines are ignored
//	scene <name>
//	screen <x0> <y0> <x1> <y1>
//	texture <w> <h>
//	tri <texid> <x0> <y0> <x1> <y1> <x2> <y2> <u0> <v0> <dudx> <dudy> <dvdx> <dvdy>
//
// Textures are numbered in order of appearance, starting at 0.

// WriteText dumps the scene in the text trace format.
func WriteText(w io.Writer, s *Scene) error {
	if err := s.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# texsim text trace\nscene %s\n", escapeName(s.Name))
	fmt.Fprintf(bw, "screen %d %d %d %d\n", s.Screen.X0, s.Screen.Y0, s.Screen.X1, s.Screen.Y1)
	for _, ts := range s.Textures {
		fmt.Fprintf(bw, "texture %d %d\n", ts.W, ts.H)
	}
	for i := range s.Triangles {
		t := &s.Triangles[i]
		fmt.Fprintf(bw, "tri %d %g %g %g %g %g %g %g %g %g %g %g %g\n",
			t.TexID,
			t.V[0].X, t.V[0].Y, t.V[1].X, t.V[1].Y, t.V[2].X, t.V[2].Y,
			t.Tex.U0, t.Tex.V0, t.Tex.DuDx, t.Tex.DuDy, t.Tex.DvDx, t.Tex.DvDy)
	}
	return bw.Flush()
}

// ReadText parses the text trace format and validates the scene.
func ReadText(r io.Reader) (*Scene, error) {
	s := &Scene{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	sawScreen := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		bad := func(msg string) error {
			return fmt.Errorf("trace: text line %d: %s: %q", lineNo, msg, line)
		}
		switch fields[0] {
		case "scene":
			if len(fields) != 2 {
				return nil, bad("scene wants 1 field")
			}
			s.Name = unescapeName(fields[1])
		case "screen":
			v, err := parseInts(fields[1:], 4)
			if err != nil {
				return nil, bad(err.Error())
			}
			s.Screen = geom.Rect{X0: v[0], Y0: v[1], X1: v[2], Y1: v[3]}
			sawScreen = true
		case "texture":
			v, err := parseInts(fields[1:], 2)
			if err != nil {
				return nil, bad(err.Error())
			}
			s.Textures = append(s.Textures, TexSize{W: v[0], H: v[1]})
		case "tri":
			if len(fields) != 14 {
				return nil, bad("tri wants 13 fields")
			}
			id, err := strconv.ParseInt(fields[1], 10, 32)
			if err != nil {
				return nil, bad("bad texture id")
			}
			f := make([]float64, 12)
			for i := range f {
				if f[i], err = strconv.ParseFloat(fields[2+i], 64); err != nil {
					return nil, bad("bad number")
				}
			}
			s.Triangles = append(s.Triangles, geom.Triangle{
				TexID: int32(id),
				V: [3]geom.Vec2{
					{X: f[0], Y: f[1]}, {X: f[2], Y: f[3]}, {X: f[4], Y: f[5]},
				},
				Tex: geom.TexMap{U0: f[6], V0: f[7],
					DuDx: f[8], DuDy: f[9], DvDx: f[10], DvDy: f[11]},
			})
		default:
			return nil, bad("unknown record")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading text: %w", err)
	}
	if !sawScreen {
		return nil, fmt.Errorf("trace: text trace has no screen record")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseInts(fields []string, n int) ([]int, error) {
	if len(fields) != n {
		return nil, fmt.Errorf("want %d fields, got %d", n, len(fields))
	}
	out := make([]int, n)
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out[i] = v
	}
	return out, nil
}

// Scene names travel on one whitespace-separated field; spaces are escaped.
func escapeName(n string) string {
	if n == "" {
		return "_"
	}
	return strings.ReplaceAll(n, " ", "\\x20")
}

func unescapeName(n string) string {
	if n == "_" {
		return ""
	}
	return strings.ReplaceAll(n, "\\x20", " ")
}

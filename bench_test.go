package repro

// One benchmark per paper table/figure: each regenerates the corresponding
// experiment end to end (scene synthesis, machine sweep, report assembly) at
// a reduced scale, and reports simulated fragments per second where that is
// the dominant cost. Run a single iteration of everything with:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// For the paper-scale numbers use cmd/texbench with -scale 1.

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/experiments"
	"repro/internal/memory"
	"repro/internal/scene"
	"repro/internal/trace"
)

// benchOpt keeps the per-iteration cost of whole-experiment benchmarks
// manageable; the shapes remain those of the paper.
var benchOpt = experiments.Options{Scale: 0.25}

func benchExperiment(b *testing.B, run func(context.Context, experiments.Options) (*experiments.Report, error)) {
	b.Helper()
	opt := benchOpt
	opt.OutDir = b.TempDir()
	for i := 0; i < b.N; i++ {
		rep, err := run(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Table) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkTable1 regenerates Table 1: scene synthesis plus full-frame
// measurement of all seven benchmarks.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, experiments.RunTable1) }

// BenchmarkFig5Imbalance regenerates Figure 5 (top): the 64-processor load
// imbalance sweep over both distributions and all sizes.
func BenchmarkFig5Imbalance(b *testing.B) { benchExperiment(b, experiments.RunFig5Imbalance) }

// BenchmarkFig5Speedup regenerates Figure 5 (bottom): perfect-cache speedup
// of 32massive11255 versus processor count.
func BenchmarkFig5Speedup(b *testing.B) { benchExperiment(b, experiments.RunFig5Speedup) }

// BenchmarkFig6Locality regenerates Figure 6: texel-to-fragment ratio versus
// processors on 16 KB caches with an infinite bus.
func BenchmarkFig6Locality(b *testing.B) { benchExperiment(b, experiments.RunFig6Locality) }

// BenchmarkFig7 regenerates Figure 7: speedups of all benchmarks on 4/16/64
// processors with a 1 texel/pixel bus.
func BenchmarkFig7(b *testing.B) { benchExperiment(b, experiments.RunFig7) }

// BenchmarkFig7Bus2 regenerates the §7 companion with a 2 texel/pixel bus.
func BenchmarkFig7Bus2(b *testing.B) { benchExperiment(b, experiments.RunFig7Bus2) }

// BenchmarkFig8Buffer regenerates Figure 8: the triangle-buffer sweep on
// truc640 with 64 processors.
func BenchmarkFig8Buffer(b *testing.B) { benchExperiment(b, experiments.RunFig8) }

// BenchmarkFig9Images regenerates Figure 9: depth-complexity renderings of
// teapot.full, room3 and quake.
func BenchmarkFig9Images(b *testing.B) { benchExperiment(b, experiments.RunFig9) }

// BenchmarkExtL2 regenerates the §9 inter-frame L2 locality extension.
func BenchmarkExtL2(b *testing.B) { benchExperiment(b, experiments.RunExtL2) }

// BenchmarkExtDynamic regenerates the §9 dynamic-balancing extension.
func BenchmarkExtDynamic(b *testing.B) { benchExperiment(b, experiments.RunExtDynamic) }

// BenchmarkExtPrefetch regenerates the prefetch-depth ablation.
func BenchmarkExtPrefetch(b *testing.B) { benchExperiment(b, experiments.RunExtPrefetch) }

// BenchmarkExtCache regenerates the cache-geometry ablation.
func BenchmarkExtCache(b *testing.B) { benchExperiment(b, experiments.RunExtCache) }

// BenchmarkExtSortLast regenerates the sort-middle vs sort-last comparison.
func BenchmarkExtSortLast(b *testing.B) { benchExperiment(b, experiments.RunExtSortLast) }

// BenchmarkExtOverlap regenerates the Chen overlap-model validation.
func BenchmarkExtOverlap(b *testing.B) { benchExperiment(b, experiments.RunExtOverlap) }

// BenchmarkExtInterleave regenerates the interleave-pattern ablation.
func BenchmarkExtInterleave(b *testing.B) { benchExperiment(b, experiments.RunExtInterleave) }

// benchMachineThroughput measures the simulator's core speed — simulated
// fragments per wall-clock second on one representative configuration
// (16 processors, block-16, 16 KB caches, ratio-1 bus, truc640) — with the
// node kernel's worker bound fixed at nodePar (1 = event-driven kernel,
// 0 = GOMAXPROCS workers). Both kernels produce byte-identical results, so
// the pair measures pure wall-clock speedup.
func benchMachineThroughput(b *testing.B, nodePar int) {
	bm, err := scene.ByName("truc640", 0.5)
	if err != nil {
		b.Fatal(err)
	}
	s := bm.MustBuild()
	m, err := core.NewMachine(s, core.Config{
		Procs: 16, Distribution: distrib.BlockKind, TileSize: 16,
		CacheKind: core.CacheReal, Bus: memory.BusConfig{TexelsPerCycle: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	m.SetNodeParallelism(nodePar)
	b.ResetTimer()
	var frags uint64
	for i := 0; i < b.N; i++ {
		res := m.Run()
		frags += res.Fragments
	}
	b.ReportMetric(float64(frags)/b.Elapsed().Seconds(), "frags/s")
}

// BenchmarkMachineThroughput is the shipping default: the parallel node
// kernel with a GOMAXPROCS worker bound.
func BenchmarkMachineThroughput(b *testing.B) { benchMachineThroughput(b, 0) }

// BenchmarkMachineThroughputSerial forces the event-driven kernel — the
// before side of the parallel-kernel speedup, and the seed baseline.
func BenchmarkMachineThroughputSerial(b *testing.B) { benchMachineThroughput(b, 1) }

// benchEngineFlight runs the BenchmarkMachineThroughput configuration with
// the flight recorder optionally attached. BenchmarkEngineFlightOff is the
// guard for the recorder's zero-cost-when-disabled contract: compare it
// against BenchmarkMachineThroughput (the seed engine benchmark) — the
// disabled hook is one nil check per triangle and must not move the number.
func benchEngineFlight(b *testing.B, flight bool) {
	bm, err := scene.ByName("truc640", 0.5)
	if err != nil {
		b.Fatal(err)
	}
	s := bm.MustBuild()
	m, err := core.NewMachine(s, core.Config{
		Procs: 16, Distribution: distrib.BlockKind, TileSize: 16,
		CacheKind: core.CacheReal, Bus: memory.BusConfig{TexelsPerCycle: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	if flight {
		m.EnableFlightRecorder(0)
	}
	b.ResetTimer()
	var frags uint64
	for i := 0; i < b.N; i++ {
		res := m.Run()
		frags += res.Fragments
	}
	b.ReportMetric(float64(frags)/b.Elapsed().Seconds(), "frags/s")
}

// BenchmarkEngineFlightOff is BenchmarkMachineThroughput with the recorder
// constructed but never attached — the shipping default.
func BenchmarkEngineFlightOff(b *testing.B) { benchEngineFlight(b, false) }

// BenchmarkEngineFlightOn measures the recording overhead when enabled.
func BenchmarkEngineFlightOn(b *testing.B) { benchEngineFlight(b, true) }

// BenchmarkSceneSynthesis measures procedural scene generation alone.
func BenchmarkSceneSynthesis(b *testing.B) {
	bm, err := scene.ByName("room3", 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bm.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasure measures the Table 1 analysis pass alone.
func BenchmarkMeasure(b *testing.B) {
	bm, err := scene.ByName("massive11255", 0.5)
	if err != nil {
		b.Fatal(err)
	}
	s := bm.MustBuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := trace.Measure(s)
		if err != nil {
			b.Fatal(err)
		}
		if st.PixelsRendered == 0 {
			b.Fatal("no pixels")
		}
	}
}

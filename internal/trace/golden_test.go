package trace

import (
	"bytes"
	"encoding/hex"
	"testing"

	"repro/internal/geom"
)

// TestFormatGolden pins the trace format byte-for-byte: traces written by
// any earlier version of the library must stay readable, so the encoder's
// output for a fixed scene is part of the public contract.
func TestFormatGolden(t *testing.T) {
	s := &Scene{
		Name:     "g",
		Screen:   geom.Rect{X0: 0, Y0: 0, X1: 4, Y1: 2},
		Textures: []TexSize{{W: 8, H: 4}},
		Triangles: []geom.Triangle{{
			V:     [3]geom.Vec2{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 0, Y: 2}},
			TexID: 0,
			Tex:   geom.TexMap{U0: 1, V0: 2, DuDx: 1, DuDy: 0, DvDx: 0, DvDy: 1},
		}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	const golden = "54545243" + // "TTRC"
		"01000000" + // version 1
		"01000000" + "67" + // name "g"
		"00000000" + "00000000" + "04000000" + "02000000" + // screen
		"01000000" + "08000000" + "04000000" + // 1 texture, 8x4
		"01000000" + // 1 triangle
		"00000000" + "00000000" + // v0 (0,0)
		"00000040" + "00000000" + // v1 (2,0)
		"00000000" + "00000040" + // v2 (0,2)
		"00000000" + // texid 0
		"0000803f" + "00000040" + // U0=1 V0=2
		"0000803f" + "00000000" + // DuDx=1 DuDy=0
		"00000000" + "0000803f" // DvDx=0 DvDy=1
	want, err := hex.DecodeString(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("encoding drifted from the v1 format:\n got %x\nwant %x", buf.Bytes(), want)
	}
	// And the golden bytes must decode to the same scene.
	back, err := Read(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "g" || len(back.Triangles) != 1 || back.Triangles[0].Tex.V0 != 2 {
		t.Errorf("golden bytes decoded to %+v", back)
	}
}

package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Health tracking is two-channel. Active: Start's loop probes /healthz on
// every due peer (healthy peers every HealthInterval, down peers on an
// exponential backoff capped at MaxBackoff). Passive: the service reports
// the outcome of real peer traffic — forwards, polls, cache fetches —
// through ReportFailure/ReportSuccess, so a dead peer is routed around
// after FailThreshold failed calls without waiting for the next probe.

// Start launches the health-check loop; it stops when ctx is cancelled.
// Call at most once.
func (c *Cluster) Start(ctx context.Context) {
	go c.healthLoop(ctx)
}

// healthLoop wakes at a quarter of the probe interval and probes whatever
// is due. Probes run outside the peer-table lock.
func (c *Cluster) healthLoop(ctx context.Context) {
	quantum := c.cfg.HealthInterval / 4
	if quantum < 10*time.Millisecond {
		quantum = 10 * time.Millisecond
	}
	t := time.NewTicker(quantum)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.ProbeNow(ctx)
		}
	}
}

// ProbeNow synchronously probes every peer whose next probe is due and
// applies the results. Exposed for tests and for operators who want
// /cluster to reflect a fresh view.
func (c *Cluster) ProbeNow(ctx context.Context) {
	now := time.Now()
	c.mu.RLock()
	var due []string
	for a, p := range c.peers {
		if !p.nextProbe.After(now) {
			due = append(due, a)
		}
	}
	c.mu.RUnlock()

	var wg sync.WaitGroup
	for _, addr := range due {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			start := time.Now()
			err := c.probe(ctx, addr)
			rtt := time.Since(start)
			if err != nil {
				c.mProbeFails.Inc()
				c.reportProbe(addr, rtt, err)
				return
			}
			c.reportProbe(addr, rtt, nil)
		}(addr)
	}
	wg.Wait()
}

// probe checks one peer's liveness: a 200 from /healthz. A draining peer
// answers 503 and is deliberately treated as down — it will not accept
// forwards, so routing should skip it.
func (c *Cluster) probe(ctx context.Context, addr string) error {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %d", resp.StatusCode)
	}
	return nil
}

// reportProbe records one probe outcome, stamping probe time and RTT.
func (c *Cluster) reportProbe(addr string, rtt time.Duration, err error) {
	now := time.Now()
	c.mu.Lock()
	p, ok := c.peers[addr]
	if ok {
		p.lastProbe = now
		p.rttMS = float64(rtt) / float64(time.Millisecond)
	}
	c.mu.Unlock()
	if !ok {
		return
	}
	if err != nil {
		c.ReportFailure(addr, err)
	} else {
		c.ReportSuccess(addr)
	}
}

// ReportFailure records a failed interaction with addr (probe, forward,
// poll or cache fetch). After FailThreshold consecutive failures the peer
// is marked down and reprobed on an exponential backoff.
func (c *Cluster) ReportFailure(addr string, err error) {
	addr = normalizeAddr(addr)
	now := time.Now()
	c.mu.Lock()
	p, ok := c.peers[addr]
	if !ok {
		c.mu.Unlock()
		return
	}
	p.fails++
	if err != nil {
		p.lastErr = err.Error()
	}
	wentDown := false
	lastErr := p.lastErr
	if p.fails >= c.cfg.FailThreshold && p.up {
		p.up = false
		wentDown = true
	}
	if !p.up {
		p.backoff *= 2
		if p.backoff < c.cfg.HealthInterval {
			p.backoff = c.cfg.HealthInterval
		}
		if p.backoff > c.cfg.MaxBackoff {
			p.backoff = c.cfg.MaxBackoff
		}
		p.nextProbe = now.Add(p.backoff)
	}
	c.mu.Unlock()
	if wentDown {
		c.logger.Warn("peer down", "peer", addr, "error", lastErr)
		c.refreshPeersUp()
	}
}

// ReportSuccess records a successful interaction with addr, reviving a
// down peer and resetting its failure streak and backoff.
func (c *Cluster) ReportSuccess(addr string) {
	addr = normalizeAddr(addr)
	now := time.Now()
	c.mu.Lock()
	p, ok := c.peers[addr]
	if !ok {
		c.mu.Unlock()
		return
	}
	cameUp := !p.up
	p.up = true
	p.fails = 0
	p.lastErr = ""
	p.backoff = 0
	p.nextProbe = now.Add(c.cfg.HealthInterval)
	c.mu.Unlock()
	if cameUp {
		c.logger.Info("peer up", "peer", addr)
		c.refreshPeersUp()
	}
}

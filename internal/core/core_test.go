package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/distrib"
	"repro/internal/geom"
	"repro/internal/memory"
	"repro/internal/raster"
	"repro/internal/trace"
)

// testScene builds a deterministic random scene: nTri triangles over a
// screen, mapping regions of a few textures with roughly 1 texel/pixel.
func testScene(seed int64, nTri, size int) *trace.Scene {
	rng := rand.New(rand.NewSource(seed))
	s := &trace.Scene{
		Name:   "core-test",
		Screen: geom.Rect{X0: 0, Y0: 0, X1: size, Y1: size},
		Textures: []trace.TexSize{
			{W: 256, H: 256}, {W: 128, H: 128}, {W: 64, H: 64},
		},
	}
	fs := float64(size)
	for i := 0; i < nTri; i++ {
		cx, cy := rng.Float64()*fs, rng.Float64()*fs
		r := 4 + rng.Float64()*fs/6
		tri := geom.Triangle{
			TexID: int32(rng.Intn(len(s.Textures))),
			Tex: geom.TexMap{
				U0:   rng.Float64() * 64,
				V0:   rng.Float64() * 64,
				DuDx: 1, DvDy: 1,
			},
		}
		for j := 0; j < 3; j++ {
			tri.V[j] = geom.Vec2{
				X: cx + (rng.Float64()-0.5)*2*r,
				Y: cy + (rng.Float64()-0.5)*2*r,
			}
		}
		s.Triangles = append(s.Triangles, tri)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	scene := testScene(1, 10, 64)
	bad := []Config{
		{Procs: 0},
		{Procs: 4, TileSize: -1},
		{Procs: 4, TriangleBuffer: -5},
		{Procs: 4, Bus: memory.BusConfig{TexelsPerCycle: -2}},
	}
	for i, cfg := range bad {
		if _, err := NewMachine(scene, cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewMachine(&trace.Scene{}, Config{Procs: 1}); err == nil {
		t.Error("invalid scene accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{Procs: 2}.withDefaults()
	if cfg.TileSize != 16 || cfg.TriangleBuffer != DefaultTriangleBuffer ||
		cfg.SetupCycles != 25 || cfg.CacheConfig.SizeBytes != 16*1024 {
		t.Errorf("defaults = %+v", cfg)
	}
	if got := (Config{Procs: 64, Distribution: distrib.SLIKind, TileSize: 4}).Name(); got != "sli4/p64" {
		t.Errorf("Name = %q", got)
	}
}

func TestFragmentsMatchMeasure(t *testing.T) {
	// The machine must draw exactly the fragments trace.Measure counts, for
	// any distribution and processor count: fragments are partitioned, never
	// lost or duplicated.
	scene := testScene(7, 60, 128)
	want, err := trace.Measure(scene)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []distrib.Kind{distrib.BlockKind, distrib.SLIKind} {
		for _, procs := range []int{1, 3, 16} {
			for _, tile := range []int{2, 16} {
				res, err := Simulate(scene, Config{
					Procs: procs, Distribution: kind, TileSize: tile,
					CacheKind: CachePerfect,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Fragments != want.PixelsRendered {
					t.Errorf("%s/p%d: fragments %d, want %d",
						kind, procs, res.Fragments, want.PixelsRendered)
				}
			}
		}
	}
}

func TestSingleProcPerfectCacheCycles(t *testing.T) {
	// With one processor and a perfect cache, machine time is exactly the
	// sum over triangles of max(setup, pixels).
	scene := testScene(11, 40, 128)
	r := raster.New(scene.Screen)
	var want float64
	for _, tri := range scene.Triangles {
		px := r.PixelCount(tri, scene.Screen)
		if tri.Degenerate() || tri.BBox().Intersect(scene.Screen).Empty() {
			continue // never routed
		}
		want += math.Max(25, float64(px))
	}
	res, err := Simulate(scene, Config{Procs: 1, CacheKind: CachePerfect})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != want {
		t.Errorf("cycles = %v, want %v", res.Cycles, want)
	}
	if got := res.TexelToFragment(); got != 0 {
		t.Errorf("perfect cache fetched texels: %v", got)
	}
}

func TestDeterminism(t *testing.T) {
	scene := testScene(3, 50, 128)
	cfg := Config{Procs: 8, Distribution: distrib.BlockKind, TileSize: 8,
		Bus: memory.BusConfig{TexelsPerCycle: 1}}
	a, err := Simulate(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Fragments != b.Fragments {
		t.Errorf("non-deterministic: %v/%d vs %v/%d", a.Cycles, a.Fragments, b.Cycles, b.Fragments)
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Errorf("node %d differs between runs", i)
		}
	}
}

func TestMachineReusableAcrossRuns(t *testing.T) {
	scene := testScene(5, 30, 64)
	m, err := NewMachine(scene, Config{Procs: 4, Bus: memory.BusConfig{TexelsPerCycle: 2}})
	if err != nil {
		t.Fatal(err)
	}
	a := m.Run()
	b := m.Run()
	if a.Cycles != b.Cycles || a.Fragments != b.Fragments {
		t.Errorf("machine not reset between runs: %v vs %v", a.Cycles, b.Cycles)
	}
}

func TestSpeedupBounds(t *testing.T) {
	// Perfect cache, plenty of triangles: speedup must be in (1, procs] and
	// grow from 4 to 16 processors on a well-balanced workload.
	scene := testScene(17, 400, 256)
	s4, _, _, err := Speedup(scene, Config{Procs: 4, TileSize: 8, CacheKind: CachePerfect})
	if err != nil {
		t.Fatal(err)
	}
	s16, _, _, err := Speedup(scene, Config{Procs: 16, TileSize: 8, CacheKind: CachePerfect})
	if err != nil {
		t.Fatal(err)
	}
	if s4 <= 1 || s4 > 4.01 {
		t.Errorf("4-proc speedup = %v", s4)
	}
	if s16 <= s4 || s16 > 16.01 {
		t.Errorf("16-proc speedup = %v (4-proc %v)", s16, s4)
	}
}

func TestTrianglesRoutedBySize(t *testing.T) {
	// A triangle smaller than one tile must be routed to few processors; the
	// total routings must be at least the triangle count (every on-screen
	// triangle goes somewhere).
	scene := testScene(23, 100, 128)
	res, err := Simulate(scene, Config{
		Procs: 16, TileSize: 32, CacheKind: CachePerfect,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrianglesRouted < uint64(len(scene.Triangles))/2 {
		t.Errorf("only %d routings for %d triangles", res.TrianglesRouted, len(scene.Triangles))
	}
	// With tiny tiles the same scene must produce strictly more routings
	// (more overlap).
	res1, err := Simulate(scene, Config{
		Procs: 16, TileSize: 1, CacheKind: CachePerfect,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res1.TrianglesRouted <= res.TrianglesRouted {
		t.Errorf("1-px tiles routed %d ≤ 32-px tiles %d",
			res1.TrianglesRouted, res.TrianglesRouted)
	}
}

func TestSmallBufferSlowerThanBig(t *testing.T) {
	// The §8 effect: a 1-entry triangle FIFO must never beat a 10000-entry
	// one, and should be measurably slower on an imbalanced scene.
	scene := testScene(29, 200, 256)
	base := Config{Procs: 8, TileSize: 16, CacheKind: CachePerfect}
	small := base
	small.TriangleBuffer = 1
	big := base
	big.TriangleBuffer = DefaultTriangleBuffer
	rs, err := Simulate(scene, small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Simulate(scene, big)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Cycles < rb.Cycles {
		t.Errorf("1-entry buffer (%v) beat 10000-entry buffer (%v)", rs.Cycles, rb.Cycles)
	}
	for _, n := range rb.Nodes {
		if n.FIFOPeak > DefaultTriangleBuffer {
			t.Errorf("FIFO peak %d exceeds capacity", n.FIFOPeak)
		}
	}
	for _, n := range rs.Nodes {
		if n.FIFOPeak > 1 {
			t.Errorf("1-entry FIFO peaked at %d", n.FIFOPeak)
		}
	}
}

func TestInfiniteBusNeverSlower(t *testing.T) {
	scene := testScene(31, 150, 256)
	base := Config{Procs: 4, TileSize: 16, CacheKind: CacheReal}
	slow := base
	slow.Bus = memory.BusConfig{TexelsPerCycle: 1}
	fast := base // infinite
	rSlow, err := Simulate(scene, slow)
	if err != nil {
		t.Fatal(err)
	}
	rFast, err := Simulate(scene, fast)
	if err != nil {
		t.Fatal(err)
	}
	if rFast.Cycles > rSlow.Cycles {
		t.Errorf("infinite bus (%v) slower than ratio-1 bus (%v)", rFast.Cycles, rSlow.Cycles)
	}
	// Same cache behaviour: identical fetch counts, just different timing.
	if rFast.TexelToFragment() != rSlow.TexelToFragment() {
		t.Errorf("bus speed changed traffic: %v vs %v",
			rFast.TexelToFragment(), rSlow.TexelToFragment())
	}
}

func TestImbalanceMetrics(t *testing.T) {
	// A scene concentrated in one corner must show large pixel imbalance with
	// huge tiles and small imbalance with 1-line SLI.
	s := &trace.Scene{
		Name:     "corner",
		Screen:   geom.Rect{X0: 0, Y0: 0, X1: 256, Y1: 256},
		Textures: []trace.TexSize{{W: 64, H: 64}},
	}
	// A stack of triangles all in the top-left 64x64 corner.
	for i := 0; i < 20; i++ {
		s.Triangles = append(s.Triangles, geom.Triangle{
			V:   [3]geom.Vec2{{X: 0, Y: 0}, {X: 64, Y: 0}, {X: 0, Y: 64}},
			Tex: geom.TexMap{DuDx: 1, DvDy: 1},
		})
	}
	big, err := Simulate(s, Config{Procs: 4, Distribution: distrib.BlockKind,
		TileSize: 128, CacheKind: CachePerfect})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Simulate(s, Config{Procs: 4, Distribution: distrib.SLIKind,
		TileSize: 1, CacheKind: CachePerfect})
	if err != nil {
		t.Fatal(err)
	}
	// 128-px blocks: all pixels land on one of 4 procs → imbalance = 3 (300%).
	if got := big.PixelImbalance(); math.Abs(got-3) > 1e-9 {
		t.Errorf("corner-case big-tile imbalance = %v, want 3", got)
	}
	if got := small.PixelImbalance(); got > 0.05 {
		t.Errorf("1-line SLI imbalance = %v, want ≈0", got)
	}
	if big.WorkImbalance() < 1 {
		t.Errorf("big-tile work imbalance = %v, want large", big.WorkImbalance())
	}
}

func TestOffscreenTrianglesIgnored(t *testing.T) {
	s := &trace.Scene{
		Name:     "offscreen",
		Screen:   geom.Rect{X0: 0, Y0: 0, X1: 64, Y1: 64},
		Textures: []trace.TexSize{{W: 16, H: 16}},
		Triangles: []geom.Triangle{
			{V: [3]geom.Vec2{{X: 100, Y: 100}, {X: 120, Y: 100}, {X: 100, Y: 120}},
				Tex: geom.TexMap{DuDx: 1, DvDy: 1}},
			{V: [3]geom.Vec2{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 0, Y: 5}},
				Tex: geom.TexMap{DuDx: 1, DvDy: 1}},
		},
	}
	res, err := Simulate(s, Config{Procs: 2, CacheKind: CachePerfect})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fragments == 0 {
		t.Error("on-screen triangle not drawn")
	}
	if res.Cycles != 25 {
		t.Errorf("cycles = %v, want 25 (one setup-bound triangle)", res.Cycles)
	}
}

func TestTinyBufferDeadlockFree(t *testing.T) {
	// Stress the back-pressure path: 1-entry FIFOs, many processors, tiny
	// tiles so every triangle fans out widely.
	scene := testScene(37, 80, 96)
	res, err := Simulate(scene, Config{
		Procs: 16, TileSize: 1, TriangleBuffer: 1,
		Bus: memory.BusConfig{TexelsPerCycle: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Error("no cycles simulated")
	}
}

func TestCacheKindString(t *testing.T) {
	if CacheReal.String() != "real" || CachePerfect.String() != "perfect" ||
		CacheNone.String() != "none" {
		t.Error("CacheKind strings wrong")
	}
}

package distrib

import (
	"testing"

	"repro/internal/geom"
)

func TestSkewedIsPartition(t *testing.T) {
	scr := geom.Rect{X0: 0, Y0: 0, X1: 160, Y1: 120}
	for _, procs := range []int{3, 8, 64} {
		for _, size := range []int{1, 7, 16} {
			d, err := NewBlockSkewed(scr, procs, size)
			if err != nil {
				t.Fatal(err)
			}
			for y := 0; y < 120; y += 3 {
				for x := 0; x < 160; x += 3 {
					p := d.Owner(x, y)
					if p < 0 || p >= procs {
						t.Fatalf("skewed owner(%d,%d) = %d out of range", x, y, p)
					}
				}
			}
		}
	}
}

func TestSkewedBreaksColumnAliasing(t *testing.T) {
	// 256-px screen, 16-px tiles → 16 tiles per row. With 8 processors the
	// plain interleave gives every tile of column 0 to processor 0; the
	// skewed one rotates owners down the column.
	scr := geom.Rect{X0: 0, Y0: 0, X1: 256, Y1: 256}
	plain, err := NewBlock(scr, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := NewBlockSkewed(scr, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	plainOwners := make(map[int]bool)
	skewOwners := make(map[int]bool)
	for ty := 0; ty < 16; ty++ {
		plainOwners[plain.Owner(0, ty*16)] = true
		skewOwners[skewed.Owner(0, ty*16)] = true
	}
	if len(plainOwners) != 1 {
		t.Fatalf("test premise broken: plain column owners = %v", plainOwners)
	}
	if len(skewOwners) != 8 {
		t.Errorf("skewed column hits %d owners, want all 8", len(skewOwners))
	}
}

func TestSkewedRouteMatchesOwners(t *testing.T) {
	scr := geom.Rect{X0: 0, Y0: 0, X1: 160, Y1: 120}
	d, err := NewBlockSkewed(scr, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	boxes := []geom.Rect{
		{X0: 0, Y0: 0, X1: 160, Y1: 120},
		{X0: 30, Y0: 40, X1: 95, Y1: 41},
		{X0: 10, Y0: 0, X1: 11, Y1: 120},
	}
	for _, bb := range boxes {
		routed := make(map[int]bool)
		for _, p := range d.Route(bb, nil) {
			routed[p] = true
		}
		clipped := bb.Intersect(scr)
		for y := clipped.Y0; y < clipped.Y1; y++ {
			for x := clipped.X0; x < clipped.X1; x++ {
				if p := d.Owner(x, y); !routed[p] {
					t.Fatalf("pixel (%d,%d) owner %d not routed for %v", x, y, p, bb)
				}
			}
		}
	}
}

func TestSkewedSegmentsMatchOwner(t *testing.T) {
	scr := geom.Rect{X0: 0, Y0: 0, X1: 160, Y1: 120}
	d, err := NewBlockSkewed(scr, 5, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range []int{0, 33, 119} {
		covered := 0
		d.ForEachOwnedSegment(y, 0, 160, func(proc, x0, x1 int) {
			for x := x0; x < x1; x++ {
				if d.Owner(x, y) != proc {
					t.Fatalf("segment owner mismatch at (%d,%d)", x, y)
				}
			}
			covered += x1 - x0
		})
		if covered != 160 {
			t.Fatalf("row %d covered %d of 160", y, covered)
		}
	}
}

func TestSkewedKindAndName(t *testing.T) {
	if BlockSkewedKind.String() != "blockskew" {
		t.Error("kind string wrong")
	}
	scr := geom.Rect{X0: 0, Y0: 0, X1: 64, Y1: 64}
	d, err := New(BlockSkewedKind, scr, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "blockskew16" {
		t.Errorf("name = %q", d.Name())
	}
}

package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 4, 1, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Sum != 14 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Mean-2.8) > 1e-12 {
		t.Errorf("mean = %v", s.Mean)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]float64{10, 10, 10, 10}); got != 0 {
		t.Errorf("balanced imbalance = %v", got)
	}
	// One node does all the work of 4: max=40, mean=10 → 300%.
	if got := Imbalance([]float64{40, 0, 0, 0}); math.Abs(got-3) > 1e-12 {
		t.Errorf("worst-case imbalance = %v, want 3", got)
	}
	if got := Imbalance([]float64{0, 0}); got != 0 {
		t.Errorf("zero-work imbalance = %v", got)
	}
}

func TestImbalanceNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) || x > 1e12 {
				return true // domain: non-negative finite work
			}
		}
		return Imbalance(xs) >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile not NaN")
	}
	// Input must not be mutated (sorted copy).
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestTableFormat(t *testing.T) {
	tab := Table{Caption: "demo", Header: []string{"name", "value"}}
	tab.AddRow("a", "1")
	tab.AddRow("longer-name", "22")
	out := tab.String()
	if !strings.Contains(out, "## demo") {
		t.Error("caption missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // caption, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns must align: "value" column starts at the same offset in all rows.
	idx := strings.Index(lines[1], "value")
	if !strings.HasPrefix(lines[4][idx:], "22") {
		t.Errorf("misaligned table:\n%s", out)
	}
}

func TestF(t *testing.T) {
	cases := []struct {
		v    float64
		prec int
		want string
	}{
		{1.5, 2, "1.5"},
		{1.0, 3, "1"},
		{0.125, 2, "0.12"}, // %f rounds half to even
		{-2.50, 1, "-2.5"},
		{100, 0, "100"},
	}
	for _, c := range cases {
		if got := F(c.v, c.prec); got != c.want {
			t.Errorf("F(%v, %d) = %q, want %q", c.v, c.prec, got, c.want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.347); got != "34.7%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(3); got != "300%" {
		t.Errorf("Pct = %q", got)
	}
}

// Package stats provides the small descriptive-statistics and text-table
// helpers the experiment harness uses to print paper-style tables and
// series.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N    int
	Min  float64
	Max  float64
	Mean float64
	Sum  float64
}

// Summarize computes min/max/mean/sum of xs (zero Summary for empty input).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	return s
}

// Imbalance returns (max − mean)/mean of xs as a fraction; 0 for degenerate
// inputs. It is the paper's Figure 5 load-balancing metric.
func Imbalance(xs []float64) float64 {
	s := Summarize(xs)
	if s.Mean == 0 {
		return 0
	}
	return s.Max/s.Mean - 1
}

// Percentile returns the p-th percentile (0–100) of xs using linear
// interpolation; NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Table is a simple text table with a caption, printed with aligned columns.
type Table struct {
	Caption string
	Header  []string
	Rows    [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Format writes the table to w with padded columns.
func (t *Table) Format(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	if t.Caption != "" {
		fmt.Fprintf(w, "## %s\n", t.Caption)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Format(&b)
	return b.String()
}

func pad(s string, w int) string {
	n := w - len([]rune(s))
	if n <= 0 {
		return s
	}
	return s + strings.Repeat(" ", n)
}

// F formats a float compactly for table cells: fixed precision with
// trailing-zero trimming.
func F(v float64, prec int) string {
	s := fmt.Sprintf("%.*f", prec, v)
	if strings.Contains(s, ".") {
		s = strings.TrimRight(s, "0")
		s = strings.TrimRight(s, ".")
	}
	return s
}

// Pct formats a fraction as a percentage cell, e.g. 0.347 → "34.7%".
func Pct(v float64) string {
	return F(v*100, 1) + "%"
}

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/telemetry/progress"
	"repro/internal/telemetry/tracing"
)

// This file is the service half of cluster mode: job routing to the
// rendezvous owner, spill-forwarding on a full queue, supervision of
// forwarded jobs with failover, cache federation, and both sides of the
// work-stealing protocol. internal/cluster owns the peer table, the
// ownership function and the peer HTTP client; this file owns the job
// lifecycle.
//
// Everything here leans on the determinism contract (DESIGN.md §7): any
// node simulating a config hash produces the byte-identical result
// document, so a result proxied from a peer's cache, computed by a thief,
// or re-run locally after a peer died is interchangeable with a local run.

// lookupCache consults the local result cache and then, in cluster mode,
// the cache of the key's owning peer — the federated read that turns the
// peers' caches into one logical cache. A proxied hit is written back
// locally (PutRemote) so the next lookup is local. A disabled cache stays
// disabled end to end: -no-cache must re-simulate, not fetch.
func (s *Server) lookupCache(ctx context.Context, key string) ([]byte, bool) {
	if v, ok := s.cache.Get(key); ok {
		return v, true
	}
	cl := s.cfg.Cluster
	if cl == nil || s.cache.Disabled() {
		return nil, false
	}
	owner, self := cl.Owner(key)
	if self {
		return nil, false
	}
	v, ok, err := cl.FetchCached(ctx, owner, key)
	if err != nil {
		if ctx.Err() == nil {
			cl.ReportFailure(owner, err)
		}
		return nil, false
	}
	cl.ReportSuccess(owner)
	if !ok {
		cl.CountProxyMiss()
		return nil, false
	}
	cl.CountProxyHit()
	if err := s.cache.PutRemote(key, v); err != nil {
		s.logger.LogAttrs(ctx, slog.LevelWarn, "proxied result cache write failed",
			slog.String("error", err.Error()))
	}
	return v, true
}

// pushToOwner hands a freshly computed result to the key's rendezvous
// owner, best effort, so federated lookups from any node find it there.
// A no-op when there is no cluster or this node is the owner.
func (s *Server) pushToOwner(ctx context.Context, key string, payload []byte) {
	cl := s.cfg.Cluster
	if cl == nil {
		return
	}
	owner, self := cl.Owner(key)
	if self {
		return
	}
	// The job's context may be about to die with the job; the push should
	// still get its own short budget.
	pctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
	defer cancel()
	if err := cl.PushCached(pctx, owner, key, payload); err != nil {
		cl.ReportFailure(owner, err)
		return
	}
	cl.ReportSuccess(owner)
}

// submitRouted registers a job whose cache key a peer owns and hands it
// to a supervisor goroutine that forwards it there and shepherds it to a
// terminal state (including failover back to this node if the owner
// dies). The caller sees an ordinary accepted job.
func (s *Server) submitRouted(ctx context.Context, req *Request, key, owner string) (*job, error) {
	j, _, err := s.register(ctx, req, key, false)
	if err != nil {
		return nil, err
	}
	s.mSubmitted.With(req.Type).Inc()
	s.logger.LogAttrs(j.ctx, slog.LevelInfo, "job routed to owner",
		slog.String("type", req.Type), slog.String("cache_key", key[:12]),
		slog.String("peer", owner))
	s.wg.Add(1)
	go s.superviseForward(j, owner, "route")
	return j, nil
}

// submitSpill is the queue-full escape hatch: before the caller sees a
// 429, try every alive peer and hand the job to the first one with
// capacity. Only when all peers are saturated (or down) does the original
// rejection stand.
func (s *Server) submitSpill(ctx context.Context, req *Request, key string) (*job, error) {
	cl := s.cfg.Cluster
	body, err := json.Marshal(req)
	if err != nil {
		return nil, &submitError{code: 400, err: err}
	}
	for _, addr := range cl.AlivePeers() {
		remoteID, err := cl.ForwardJob(ctx, addr, body)
		if err != nil {
			cl.CountForwardFailure()
			if !errors.Is(err, cluster.ErrPeerSaturated) {
				cl.ReportFailure(addr, err)
			}
			continue
		}
		cl.ReportSuccess(addr)
		j, _, rerr := s.register(ctx, req, key, false)
		if rerr != nil {
			// Drain raced the spill; release the remote job, best effort.
			cctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
			cl.CancelJob(cctx, addr, remoteID)
			cancel()
			return nil, rerr
		}
		s.mu.Lock()
		j.status = StatusRunning
		j.started = time.Now()
		j.remoteAddr = addr
		j.remoteID = remoteID
		s.mu.Unlock()
		cl.CountForward("spill")
		s.mSubmitted.With(req.Type).Inc()
		s.logger.LogAttrs(j.ctx, slog.LevelInfo, "job spilled to peer",
			slog.String("peer", addr), slog.String("remote_id", remoteID))
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.supervisePoll(j, addr, remoteID)
		}()
		return j, nil
	}
	return nil, &submitError{code: 429, err: fmt.Errorf("all peers saturated")}
}

// superviseForward forwards a registered job to target and supervises it.
// An unreachable target (or one that refuses the job) falls back to local
// execution — the origin node always has somewhere to run a job.
func (s *Server) superviseForward(j *job, target, reason string) {
	defer s.wg.Done()
	cl := s.cfg.Cluster
	body, err := json.Marshal(j.req)
	if err != nil {
		s.finalizeRemote(j, nil, false, err)
		return
	}
	ctx := j.ctx
	if !j.traceID.IsZero() {
		ctx = tracing.ContextWithRemoteParent(ctx, j.traceID, j.parentSpan)
	}
	remoteID, err := cl.ForwardJob(ctx, target, body)
	if err != nil {
		cl.CountForwardFailure()
		if !errors.Is(err, cluster.ErrPeerSaturated) {
			cl.ReportFailure(target, err)
		}
		s.logger.LogAttrs(j.ctx, slog.LevelWarn, "forward failed, running locally",
			slog.String("peer", target), slog.String("error", err.Error()))
		s.runLocalFallback(j)
		return
	}
	cl.ReportSuccess(target)
	cl.CountForward(reason)

	s.mu.Lock()
	if j.status != StatusQueued { // canceled before the forward landed
		s.mu.Unlock()
		cctx, cancel := context.WithTimeout(context.WithoutCancel(j.ctx), 2*time.Second)
		cl.CancelJob(cctx, target, remoteID)
		cancel()
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.remoteAddr = target
	j.remoteID = remoteID
	s.mu.Unlock()
	s.supervisePoll(j, target, remoteID)
	// supervisePoll decrements nothing; the single wg slot is released by
	// the deferred Done above.
}

// supervisePoll polls the peer executing job j until it reaches a
// terminal state, the peer is lost (failover to local execution), or the
// job is canceled. It must be called with j marked running and the wg
// slot held by the caller's goroutine.
func (s *Server) supervisePoll(j *job, addr, remoteID string) {
	cl := s.cfg.Cluster
	ctx := j.ctx
	if !j.traceID.IsZero() {
		ctx = tracing.ContextWithRemoteParent(ctx, j.traceID, j.parentSpan)
	}
	t := time.NewTicker(s.cfg.PollInterval)
	defer t.Stop()
	consecFails := 0
	for {
		select {
		case <-j.ctx.Done():
			// Canceled via DELETE, Close, or drain timeout: release the
			// remote job, best effort, and record the cancellation.
			cctx, cancel := context.WithTimeout(context.WithoutCancel(j.ctx), 2*time.Second)
			cl.CancelJob(cctx, addr, remoteID)
			cancel()
			s.finalizeRemote(j, nil, false, fmt.Errorf("job canceled: %w", j.ctx.Err()))
			return
		case <-t.C:
		}
		st, err := cl.JobStatus(ctx, addr, remoteID)
		if err != nil {
			if errors.Is(err, cluster.ErrRemoteJobLost) {
				// The peer restarted and lost its job table.
				s.failover(j, addr, err)
				return
			}
			cl.ReportFailure(addr, err)
			consecFails++
			if !cl.IsAlive(addr) || consecFails >= 3 {
				s.failover(j, addr, err)
				return
			}
			continue
		}
		cl.ReportSuccess(addr)
		consecFails = 0
		switch Status(st.Status) {
		case StatusDone:
			payload, err := cl.JobResult(ctx, addr, remoteID)
			if err != nil {
				s.failover(j, addr, err)
				return
			}
			s.finalizeRemote(j, payload, st.FromCache, nil)
			return
		case StatusFailed:
			s.finalizeRemote(j, nil, false, fmt.Errorf("peer %s: %s", addr, st.Error))
			return
		case StatusCanceled:
			// The peer's job died with the peer's shutdown, not by our
			// request — the work still needs to happen.
			s.failover(j, addr, fmt.Errorf("peer %s canceled the job: %s", addr, st.Error))
			return
		}
	}
}

// failover re-dispatches a remote job after its executing peer was lost:
// it runs locally, the one place the origin can always reach.
func (s *Server) failover(j *job, addr string, cause error) {
	s.cfg.Cluster.CountFailover()
	s.logger.LogAttrs(j.ctx, slog.LevelWarn, "peer lost, failing over to local run",
		slog.String("peer", addr), slog.String("error", cause.Error()))
	s.runLocalFallback(j)
}

// runLocalFallback puts a supervised job back on the local queue. The push
// is forced past the capacity bound — a supervised job must never be
// dropped, and the overshoot is bounded by the number of outstanding
// forwards. The job reaches a terminal state either through a local worker
// or through cancellation.
func (s *Server) runLocalFallback(j *job) {
	s.mu.Lock()
	switch j.status {
	case StatusDone, StatusFailed, StatusCanceled:
		s.mu.Unlock()
		return
	}
	if s.draining {
		s.mu.Unlock()
		s.finalizeRemote(j, nil, false, fmt.Errorf("executing peer lost while draining"))
		return
	}
	j.status = StatusQueued
	j.remoteAddr, j.remoteID = "", ""
	_, closed := s.q.push(j, true)
	if closed {
		// Drain won the race between the draining check and the push.
		j.status = StatusRunning
		s.mu.Unlock()
		s.finalizeRemote(j, nil, false, fmt.Errorf("executing peer lost while draining"))
		return
	}
	s.enqueuedJob(j)
	s.mu.Unlock()
	s.logger.LogAttrs(j.ctx, slog.LevelInfo, "job re-queued locally")
}

// finalizeRemote records the terminal state of a job that did not run
// through a local worker (forwarded, spilled, or stolen-and-completed),
// mirroring runJob's bookkeeping. It is a no-op if the job is already
// terminal (a racing Cancel won).
func (s *Server) finalizeRemote(j *job, payload []byte, fromCache bool, err error) {
	now := time.Now()
	s.mu.Lock()
	switch j.status {
	case StatusDone, StatusFailed, StatusCanceled:
		s.mu.Unlock()
		return
	}
	j.finished = now
	j.fromCache = fromCache
	j.leaseNonce = ""
	switch {
	case err == nil:
		j.status = StatusDone
		j.result = payload
	case j.ctx.Err() != nil:
		j.status = StatusCanceled
		j.errMsg = err.Error()
	default:
		j.status = StatusFailed
		j.errMsg = err.Error()
	}
	final := j.status
	errMsg := j.errMsg
	cancel := j.cancel
	started := j.started
	peer := j.remoteAddr
	s.mu.Unlock()

	if final == StatusDone && payload != nil && j.req.Type == "sweep" {
		// A remotely computed sweep never streamed rows here; replay them so
		// the origin's event stream carries the full row history before the
		// terminal event, exactly like a local run.
		progress.ReplaySweep(s.progress, j.id, payload, fromCache)
	}
	s.progress.End(j.id, string(final), errMsg)

	if final == StatusDone && payload != nil {
		// The origin keeps a local replica: clients fetch the result here,
		// and identical future submissions hit without a hop.
		if cerr := s.cache.Put(j.key, payload); cerr != nil {
			s.logger.LogAttrs(j.ctx, slog.LevelWarn, "result cache write failed",
				slog.String("error", cerr.Error()))
		}
	}
	wallFrom := started
	if wallFrom.IsZero() {
		wallFrom = j.submitted
	}
	s.mDuration.With(j.req.scene()).Observe(now.Sub(wallFrom).Seconds())
	s.mCompleted.With(string(final)).Inc()
	cancel()
	level := slog.LevelInfo
	if final == StatusFailed {
		level = slog.LevelError
	}
	attrs := []slog.Attr{
		slog.String("status", string(final)),
		slog.Bool("cache_hit", fromCache),
		slog.String("peer", peer),
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	s.logger.LogAttrs(j.ctx, level, "job finished", attrs...)
}

// --- work stealing: giving side ---------------------------------------

// handleSteal hands one queued job to an idle peer. The job is popped off
// the worker queue — exactly one consumer ever receives it, which is the
// no-double-simulation guarantee — and leased under a nonce; if the thief
// never completes it, the lease watchdog re-queues it here and any late
// completion is discarded as stale.
func (s *Server) handleSteal(w http.ResponseWriter, r *http.Request) {
	cl := s.cfg.Cluster
	thief := r.Header.Get(cluster.PeerHeader)
	if thief == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing %s header", cluster.PeerHeader))
		return
	}
	// Only an overloaded node gives work away: every worker busy and jobs
	// still waiting. Otherwise a local worker is about to pick the job up
	// anyway, and the steal would just add a network hop.
	if int(s.mRunning.Value()) < s.cfg.Workers {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	j := s.q.steal()
	if j == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	s.dequeuedJob(j)
	s.mu.Lock()
	if j.status != StatusQueued {
		// Canceled while queued; its terminal state is already recorded.
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.remoteAddr = thief
	j.stolenBy = thief
	j.leaseNonce = cluster.NewNonce()
	nonce := j.leaseNonce
	s.mu.Unlock()
	s.mQueueWait.With(j.req.Type).Observe(j.started.Sub(j.submitted).Seconds())
	cl.CountStealGiven()
	s.logger.LogAttrs(j.ctx, slog.LevelInfo, "job stolen by peer",
		slog.String("peer", thief))
	s.wg.Add(1)
	go s.watchLease(j, nonce)

	resp := cluster.StolenJob{JobID: j.id, LeaseNonce: nonce, Key: j.key}
	if !j.traceID.IsZero() {
		resp.Traceparent = tracing.Traceparent(j.traceID, j.parentSpan)
	}
	body, err := json.Marshal(j.req)
	if err != nil {
		// Unmarshalable requests cannot be submitted; defensive only.
		s.finalizeRemote(j, nil, false, err)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp.Request = body
	writeJSON(w, http.StatusOK, resp)
}

// watchLease re-queues a stolen job whose thief went quiet. Invalidating
// the nonce first makes the handoff race-free: either the completion
// arrives while the nonce is live and wins, or the watchdog fires, the
// nonce dies, and the late completion is stale.
func (s *Server) watchLease(j *job, nonce string) {
	defer s.wg.Done()
	t := time.NewTimer(s.cfg.LeaseTimeout)
	defer t.Stop()
	select {
	case <-j.ctx.Done():
		// Completed (finalize cancels the job context) or canceled.
		return
	case <-t.C:
	}
	s.mu.Lock()
	if j.status != StatusRunning || j.leaseNonce != nonce {
		s.mu.Unlock()
		return
	}
	j.leaseNonce = ""
	j.stolenBy = ""
	j.remoteAddr = ""
	s.mu.Unlock()
	s.logger.LogAttrs(j.ctx, slog.LevelWarn, "steal lease expired, re-queueing")
	s.runLocalFallback(j)
}

// handleComplete accepts a thief's result for a leased job. A completion
// whose nonce no longer matches — the lease expired and the job moved on
// — is discarded with a 409 so the job cannot finish twice.
func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	cl := s.cfg.Cluster
	var comp cluster.Completion
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(&comp); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding completion: %w", err))
		return
	}
	s.mu.Lock()
	j, ok := s.jobs[comp.JobID]
	if !ok || j.status != StatusRunning || j.stolenBy == "" || j.leaseNonce == "" ||
		j.leaseNonce != comp.LeaseNonce {
		s.mu.Unlock()
		cl.CountStaleCompletion()
		writeAPIError(w, http.StatusConflict, "stale_completion", 0,
			fmt.Errorf("no live lease matches completion for job %s", comp.JobID))
		return
	}
	// Claim the lease under the lock: once the nonce is cleared, the lease
	// watchdog can no longer re-queue the job, so this completion owns it.
	j.leaseNonce = ""
	thief := j.stolenBy
	s.mu.Unlock()

	var err error
	if comp.Error != "" {
		err = fmt.Errorf("thief %s: %s", thief, comp.Error)
	} else if len(comp.Payload) == 0 {
		err = fmt.Errorf("thief %s posted an empty completion", thief)
	}
	s.finalizeRemote(j, comp.Payload, false, err)
	writeJSON(w, http.StatusOK, map[string]any{"accepted": true})
}

// --- work stealing: taking side ---------------------------------------

// stealLoop runs on idle nodes: when no local work is queued and workers
// sit idle, pull one queued job from an overloaded peer per tick.
func (s *Server) stealLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.StealInterval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
		}
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return
		}
		if s.q.len() > 0 || int(s.mRunning.Value()) >= s.cfg.Workers {
			continue // not idle; local work first
		}
		s.stealOnce(s.baseCtx)
	}
}

// stealOnce asks each alive peer in turn for one queued job and runs the
// first one given. It reports whether a job was stolen and run.
func (s *Server) stealOnce(ctx context.Context) bool {
	cl := s.cfg.Cluster
	for _, addr := range cl.AlivePeers() {
		sj, err := cl.Steal(ctx, addr)
		if err != nil {
			if ctx.Err() != nil {
				return false
			}
			cl.ReportFailure(addr, err)
			continue
		}
		cl.ReportSuccess(addr)
		if sj == nil {
			continue
		}
		cl.CountStealTaken()
		s.runStolen(ctx, addr, sj)
		return true
	}
	return false
}

// runStolen executes one stolen job and posts the result back to its
// origin (which still owns the client-facing record), then lands the
// result in the key owner's cache — the ownership handoff.
func (s *Server) runStolen(ctx context.Context, origin string, sj *cluster.StolenJob) {
	cl := s.cfg.Cluster
	if tid, sid, ok := tracing.ParseTraceparent(sj.Traceparent); ok {
		ctx = tracing.ContextWithRemoteParent(ctx, tid, sid)
	}
	ctx, span := s.tracer.StartSpan(ctx, "job stolen")
	defer span.End()
	span.SetAttr("peer", origin)
	span.SetAttr("origin_job_id", sj.JobID)

	var req Request
	err := json.Unmarshal(sj.Request, &req)
	if err == nil {
		err = req.normalize()
	}
	var payload []byte
	if err == nil {
		s.mRunning.Add(1)
		payload, err = func() (p []byte, err error) {
			defer func() {
				if r := recover(); r != nil {
					s.mPanics.Inc()
					err = fmt.Errorf("stolen job panicked: %v", r)
				}
			}()
			if v, ok := s.lookupCache(ctx, sj.Key); ok {
				return v, nil
			}
			rctx := ctx
			if s.cfg.JobTimeout > 0 {
				var cancel context.CancelFunc
				rctx, cancel = context.WithTimeout(rctx, s.cfg.JobTimeout)
				defer cancel()
			}
			return s.execute(rctx, &req, nil)
		}()
		s.mRunning.Add(-1)
	}

	comp := cluster.Completion{JobID: sj.JobID, LeaseNonce: sj.LeaseNonce}
	if err != nil {
		comp.Error = err.Error()
		span.SetError(err)
	} else {
		comp.Payload = payload
	}
	accepted, cerr := cl.Complete(ctx, origin, comp)
	switch {
	case cerr != nil:
		// The origin is unreachable; its lease watchdog will re-queue the
		// job there. Our run is wasted work, not a correctness problem.
		cl.ReportFailure(origin, cerr)
		span.SetError(cerr)
	case !accepted:
		span.SetAttr("stale", "true")
	}
	if err == nil {
		if cerr := s.cache.Put(sj.Key, payload); cerr != nil {
			s.logger.LogAttrs(ctx, slog.LevelWarn, "result cache write failed",
				slog.String("error", cerr.Error()))
		}
		if owner, self := cl.Owner(sj.Key); !self && owner != origin {
			pctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
			cl.PushCached(pctx, owner, sj.Key, payload)
			cancel()
		}
	}
}

// --- cluster HTTP surface ---------------------------------------------

// validCacheKey reports whether key looks like a resultcache key (64
// lowercase hex); anything else never names a cache entry and must not
// reach the disk tier as a path component.
func validCacheKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleCacheGet serves a federated cache read: the local cache only,
// via Peek so a peer's probe does not skew this node's hit ratio.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validCacheKey(key) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed cache key"))
		return
	}
	val, ok := s.cache.Peek(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no cached result for %s", key[:12]))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(val)
}

// handleCachePut accepts an ownership-handoff write from a peer that
// computed a result for a key this node owns.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validCacheKey(key) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed cache key"))
		return
	}
	val, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading entry: %w", err))
		return
	}
	if !json.Valid(val) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("entry is not JSON"))
		return
	}
	if err := s.cache.Put(key, val); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleClusterStatus serves GET /cluster: the peer health table,
// ownership shares, the steal/proxy/forward counters and the cache stats
// — every number read from its single authoritative source.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	s.syncMirroredMetrics()
	cl := s.cfg.Cluster
	st := s.cache.Stats()
	queued := s.q.len()
	doc := map[string]any{
		"enabled": cl != nil,
		"cache": map[string]any{
			"hits":        st.Hits,
			"misses":      st.Misses,
			"remote_hits": st.RemoteHits,
			"evictions":   st.Evictions,
			"entries":     s.cache.Len(),
		},
		"queue": map[string]any{
			"queued":  queued,
			"running": int(s.mRunning.Value()),
			"workers": s.cfg.Workers,
			"depth":   s.q.depth(),
		},
	}
	if cl != nil {
		doc["self"] = cl.Self()
		doc["members"] = cl.Members()
		doc["peers"] = cl.Peers()
		doc["ownership"] = cl.Ownership(0)
		doc["counters"] = cl.Stats()
	}
	writeJSON(w, http.StatusOK, doc)
}

// syncMirroredMetrics raises the exported mirror counters to their
// authoritative sources — the result cache's cumulative stats and the
// progress broker's event count. One source of truth per number, mirrored
// monotonically before every scrape and sample.
func (s *Server) syncMirroredMetrics() {
	st := s.cache.Stats()
	s.mCacheHit.SyncTo(int64(st.Hits))
	s.mCacheMiss.SyncTo(int64(st.Misses))
	s.mCacheRem.SyncTo(int64(st.RemoteHits))
	s.mCacheEvict.SyncTo(int64(st.Evictions))
	s.mProgEvents.SyncTo(s.progress.TotalEvents())
}

package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/stats"
	"repro/internal/trace"
)

// fig6Procs is the x-axis of Figure 6.
var fig6Procs = []int{1, 2, 4, 8, 16, 32, 64}

// fig6BlockWidths drops widths 1 and 2, which the paper removed "for they
// often have ratios bigger than 8, the ratio of a cacheless machine".
var fig6BlockWidths = []int{4, 8, 16, 32, 64, 128}

// fig6Scenes are the two scenes plotted (the paper notes room3, blowout775
// and truc640 behave like 32massive11255, and quake like teapot.full).
var fig6Scenes = []string{"32massive11255", "teapot.full"}

// RunFig6Locality reproduces Figure 6: the average external texel-to-
// fragment bandwidth each node's 16 KB cache demands, versus processor
// count, for every distribution parameter, on an infinite bus.
func RunFig6Locality(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()

	type cellKey struct {
		scene string
		kind  distrib.Kind
		size  int
		procs int
	}
	type job struct {
		key cellKey
		cfg core.Config
	}
	var jobs []job
	for _, sceneName := range fig6Scenes {
		for _, procs := range fig6Procs {
			for _, w := range fig6BlockWidths {
				jobs = append(jobs, job{cellKey{sceneName, distrib.BlockKind, w, procs}, core.Config{
					Procs: procs, Distribution: distrib.BlockKind, TileSize: w,
					CacheKind: core.CacheReal,
				}})
			}
			for _, l := range sliLines {
				jobs = append(jobs, job{cellKey{sceneName, distrib.SLIKind, l, procs}, core.Config{
					Procs: procs, Distribution: distrib.SLIKind, TileSize: l,
					CacheKind: core.CacheReal,
				}})
			}
		}
	}

	builtScenes := make(map[string]*trace.Scene, len(fig6Scenes))
	for _, n := range fig6Scenes {
		s, err := buildScene(ctx, n, opt)
		if err != nil {
			return nil, err
		}
		builtScenes[n] = s
	}

	cells := make(map[cellKey]float64, len(jobs))
	var mu sync.Mutex
	err := forEachParallel(ctx, opt.Parallelism, len(jobs), func(i int) error {
		j := jobs[i]
		res, err := simulate(ctx, builtScenes[j.key.scene], j.cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		cells[j.key] = res.TexelToFragment()
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	var tables []*stats.Table
	for _, sceneName := range fig6Scenes {
		for _, spec := range []struct {
			kind  distrib.Kind
			sizes []int
			label string
		}{
			{distrib.BlockKind, fig6BlockWidths, "w"},
			{distrib.SLIKind, sliLines, "l"},
		} {
			header := []string{"procs"}
			for _, sz := range spec.sizes {
				header = append(header, fmt.Sprintf("%s%d", spec.label, sz))
			}
			t := &stats.Table{
				Caption: fmt.Sprintf("%s / %s distribution: texel-to-fragment ratio (16 KB caches, infinite bus)",
					sceneName, spec.kind),
				Header: header,
			}
			for _, procs := range fig6Procs {
				row := []string{fmt.Sprintf("%d", procs)}
				for _, sz := range spec.sizes {
					row = append(row, stats.F(cells[cellKey{sceneName, spec.kind, sz, procs}], 2))
				}
				t.AddRow(row...)
			}
			tables = append(tables, t)
		}
	}

	var charts []*stats.Chart
	for _, sceneName := range fig6Scenes {
		ch := &stats.Chart{
			Title:  fmt.Sprintf("%s: texel-to-fragment ratio vs processors", sceneName),
			XLabel: "processors",
			YLabel: "texels/fragment",
		}
		for _, pick := range []struct {
			kind  distrib.Kind
			size  int
			label string
		}{
			{distrib.BlockKind, 4, "block4"},
			{distrib.BlockKind, 16, "block16"},
			{distrib.SLIKind, 1, "sli1"},
			{distrib.SLIKind, 2, "sli2"},
		} {
			s := stats.Series{Name: pick.label}
			for _, procs := range fig6Procs {
				s.X = append(s.X, float64(procs))
				s.Y = append(s.Y, cells[cellKey{sceneName, pick.kind, pick.size, procs}])
			}
			ch.Series = append(ch.Series, s)
		}
		charts = append(charts, ch)
	}

	return &Report{
		ID:    "fig6-locality",
		Title: "Impact of the distribution scheme on texel locality",
		Notes: []string{
			scaleNote(opt),
			"expect: ratio rises as tiles shrink and as processors multiply; SLI-2 markedly worse than block-16; teapot.full's ratios dwarf 32massive11255's",
		},
		Table: tables,
		Chart: charts,
	}, nil
}

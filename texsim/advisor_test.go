package texsim_test

import (
	"testing"

	"repro/texsim"
)

func TestRecommendRanksAndAgreesWithPaper(t *testing.T) {
	sc := texsim.Benchmark("32massive11255", 0.3)
	rec, err := texsim.Recommend(sc, texsim.Config{
		Procs:     64,
		CacheKind: texsim.CacheReal,
		Bus:       texsim.BusConfig{TexelsPerCycle: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Ranked) != 10 {
		t.Fatalf("got %d candidates, want 10", len(rec.Ranked))
	}
	// Ranked is sorted best first and Best matches.
	for i := 1; i < len(rec.Ranked); i++ {
		if rec.Ranked[i].Speedup > rec.Ranked[i-1].Speedup {
			t.Fatalf("ranking not sorted at %d", i)
		}
	}
	if rec.Best != rec.Ranked[0] {
		t.Error("Best is not Ranked[0]")
	}
	// At 64 processors the paper's answer is a mid-size square block; the
	// winner must not be an extreme candidate.
	best := rec.Best.Config
	if best.Distribution == texsim.Block && (best.TileSize <= 4 || best.TileSize >= 64) {
		t.Errorf("implausible best block width %d", best.TileSize)
	}
	if rec.Best.Speedup < 5 {
		t.Errorf("best 64-proc speedup %v suspiciously low", rec.Best.Speedup)
	}
	if rec.SingleProcCycles <= 0 {
		t.Error("missing baseline")
	}
}

func TestRecommendValidation(t *testing.T) {
	sc := texsim.Benchmark("blowout775", 0.2)
	if _, err := texsim.Recommend(sc, texsim.Config{Procs: 1}); err == nil {
		t.Error("Procs=1 accepted")
	}
}

package sweep

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// recordingSink captures the progress callbacks RunWith makes, so the test
// can check the hook contract without the real broker.
type recordingSink struct {
	mu       sync.Mutex
	started  map[int]string // row index -> config hash
	done     map[int]Row
	doneHash map[int]string
	total    int
}

func newRecordingSink() *recordingSink {
	return &recordingSink{
		started:  make(map[int]string),
		done:     make(map[int]Row),
		doneHash: make(map[int]string),
	}
}

func (r *recordingSink) RowStarted(index, total, procs, size int, configHash string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.started[index] = configHash
	r.total = total
}

func (r *recordingSink) RowDone(index, total int, row Row, configHash string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done[index] = row
	r.doneHash[index] = configHash
}

func TestRunWithProgressHooks(t *testing.T) {
	sink := newRecordingSink()
	res, err := RunWith(context.Background(), tinySpec, RunOpts{
		Parallelism: 2,
		Progress:    sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sink.total != len(res.Rows) {
		t.Fatalf("total = %d, want %d", sink.total, len(res.Rows))
	}
	if len(sink.started) != len(res.Rows) || len(sink.done) != len(res.Rows) {
		t.Fatalf("started/done = %d/%d callbacks, want one pair per row (%d)",
			len(sink.started), len(sink.done), len(res.Rows))
	}
	for i, want := range res.Rows {
		got, ok := sink.done[i]
		if !ok {
			t.Fatalf("row %d never reported done", i)
		}
		if got.Procs != want.Procs || got.Size != want.Size || got.Cycles != want.Cycles ||
			got.Frags != want.Frags {
			t.Fatalf("row %d callback = %+v, want the result row %+v", i, got, want)
		}
		if want.Frags == 0 {
			t.Fatalf("row %d has zero fragments; Frags must be populated", i)
		}
		if sink.started[i] == "" || sink.started[i] != sink.doneHash[i] {
			t.Fatalf("row %d hashes: started %q vs done %q — must match and be non-empty",
				i, sink.started[i], sink.doneHash[i])
		}
	}
}

func TestRowHashStableAndDistinct(t *testing.T) {
	h1 := tinySpec.RowHash(4, 16)
	h2 := tinySpec.RowHash(4, 16)
	if h1 == "" || h1 != h2 {
		t.Fatalf("RowHash not stable: %q vs %q", h1, h2)
	}
	if h3 := tinySpec.RowHash(1, 16); h3 == h1 {
		t.Fatal("different procs must hash differently")
	}
	if h4 := tinySpec.RowHash(4, 8); h4 == h1 {
		t.Fatal("different sizes must hash differently")
	}
	// The hash identifies the (procs, size) point, not the sweep's full
	// axis lists: a service job and a texsweep run with different axes but
	// the same point agree.
	narrow := tinySpec
	narrow.Procs = []int{4}
	narrow.Sizes = []int{16}
	if narrow.RowHash(4, 16) != h1 {
		t.Fatal("RowHash must be independent of the surrounding axis lists")
	}
}

func TestNilProgressSinkIsFree(t *testing.T) {
	// The zero-cost-when-off contract: a nil sink must not change results.
	withSink := newRecordingSink()
	a, err := RunWith(context.Background(), tinySpec, RunOpts{Progress: withSink})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWith(context.Background(), tinySpec, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d differs with/without sink: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}

func TestCSVCarriesFrags(t *testing.T) {
	res, err := RunWith(context.Background(), tinySpec, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, res.Rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	header := strings.Split(lines[0], ",")
	col := -1
	for i, h := range header {
		if h == "frags" {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("CSV header %v missing frags column", header)
	}
	for i, line := range lines[1:] {
		fields := strings.Split(line, ",")
		got, err := strconv.ParseUint(fields[col], 10, 64)
		if err != nil {
			t.Fatalf("row %d frags %q: %v", i, fields[col], err)
		}
		if got != res.Rows[i].Frags {
			t.Fatalf("row %d CSV frags = %d, want %d", i, got, res.Rows[i].Frags)
		}
	}
}

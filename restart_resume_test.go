package repro

// End-to-end durability test: SIGKILL a texsimd mid-sweep, restart it on
// the same checkpoint directory, and verify the journal replays the job,
// the sweep completes from row checkpoints with strictly fewer rows
// re-simulated, and the final CSV is byte-identical to a clean in-process
// run of the same spec.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/sweep"
)

// resumeSpec is big enough (~140ms/row, 24 rows) that the kill lands
// mid-flight, and uses the real cache so rows carry non-trivial float
// columns whose byte-identity actually exercises the JSON round trip.
var resumeSpec = sweep.Spec{
	Scene: "truc640", Scale: 0.4,
	Procs: []int{1, 2, 4, 8, 16, 32},
	Sizes: []int{4, 8, 16, 32},
	Cache: "real",
}

func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startTexsimd launches the daemon and waits for /healthz.
func startTexsimd(t *testing.T, bin, addr, ckptDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-workers", "1",
		"-job-par", "1",
		"-checkpoint-dir", ckptDir,
		"-log-format", "text", "-log-level", "warn",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatalf("texsimd on %s never became healthy", addr)
	return nil
}

// checkpointFiles counts row/baseline checkpoint entries: top-level .json
// files in the checkpoint dir, excluding the jobs/ journal subdirectory.
func checkpointFiles(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0
		}
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}

func TestRestartResumeAfterSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("process-spawning e2e test; skipped in -short")
	}

	tmp := t.TempDir()
	bin := filepath.Join(tmp, "texsimd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/texsimd").CombinedOutput(); err != nil {
		t.Fatalf("building texsimd: %v\n%s", err, out)
	}
	ckpt := filepath.Join(tmp, "ckpt")
	addr := freePort(t)
	base := "http://" + addr

	// First life: accept the sweep, checkpoint rows as they finish.
	first := startTexsimd(t, bin, addr, ckpt)
	body, err := json.Marshal(map[string]any{"type": "sweep", "sweep": resumeSpec})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		first.Process.Kill()
		t.Fatal(err)
	}
	var accepted struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		first.Process.Kill()
		t.Fatalf("submit returned %d", resp.StatusCode)
	}

	// Wait until well past half the work is durably checkpointed (24 rows
	// plus 1 speedup baseline = 25 entries), then kill -9: no drain, no
	// defers, no journal cleanup.
	totalRows := resumeSpec.Points()
	killAt := totalRows/2 + 2 // ≥50% of rows even if one entry is the baseline
	waitDeadline := time.Now().Add(2 * time.Minute)
	for checkpointFiles(t, ckpt) < killAt {
		if time.Now().After(waitDeadline) {
			first.Process.Kill()
			t.Fatalf("only %d checkpoint files after 2m, want %d", checkpointFiles(t, ckpt), killAt)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := first.Process.Kill(); err != nil { // SIGKILL
		t.Fatal(err)
	}
	first.Wait()
	banked := checkpointFiles(t, ckpt)
	if banked >= totalRows+1 {
		t.Fatalf("sweep finished (%d checkpoint entries) before the kill; spec too small", banked)
	}
	if entries, err := os.ReadDir(filepath.Join(ckpt, "jobs")); err != nil || len(entries) != 1 {
		t.Fatalf("journal entries after kill = %v, %v; want exactly 1", len(entries), err)
	}

	// Second life: the journal replays the job under a fresh ID and the
	// sweep completes from the banked rows.
	second := startTexsimd(t, bin, addr, ckpt)
	defer func() {
		second.Process.Kill()
		second.Wait()
	}()

	var done struct {
		ID        string `json:"id"`
		ResultURL string `json:"result_url"`
	}
	finishDeadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(finishDeadline) {
			t.Fatal("recovered job did not finish within 2m")
		}
		resp, err := http.Get(base + "/api/v1/jobs")
		if err != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		var list struct {
			Jobs []struct {
				ID        string `json:"id"`
				Status    string `json:"status"`
				Error     string `json:"error"`
				ResultURL string `json:"result_url"`
			} `json:"jobs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(list.Jobs) == 0 {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		j := list.Jobs[0]
		if j.Status == "failed" || j.Status == "canceled" {
			t.Fatalf("recovered job %s ended %s: %s", j.ID, j.Status, j.Error)
		}
		if j.Status == "done" {
			done.ID, done.ResultURL = j.ID, j.ResultURL
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The resumed result must be byte-identical to a clean run.
	resp, err = http.Get(base + done.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	var got sweep.Result
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sweep.RunWith(context.Background(), resumeSpec, sweep.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var gotCSV, wantCSV bytes.Buffer
	if err := sweep.WriteCSV(&gotCSV, got.Rows); err != nil {
		t.Fatal(err)
	}
	if err := sweep.WriteCSV(&wantCSV, want.Rows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
		t.Fatalf("resumed CSV differs from clean run:\n--- resumed ---\n%s--- clean ---\n%s",
			gotCSV.String(), wantCSV.String())
	}

	// Strictly fewer rows re-simulated: the progress stream (replayed from
	// seq 0) marks restored rows cache_hit. At least killAt-1 rows were
	// banked, so at most totalRows-(killAt-1) were simulated again.
	restored, simulated := countRowEvents(t, base, done.ID)
	if restored+simulated != totalRows {
		t.Fatalf("progress stream carried %d+%d row events, want %d", restored, simulated, totalRows)
	}
	if restored < killAt-1 {
		t.Errorf("only %d rows restored from checkpoints, want >= %d", restored, killAt-1)
	}
	if simulated >= totalRows {
		t.Errorf("second life simulated all %d rows; resume did nothing", simulated)
	}
	t.Logf("banked=%d checkpoint entries, restored=%d rows, re-simulated=%d of %d",
		banked, restored, simulated, totalRows)
}

// countRowEvents reads the job's SSE stream from seq 0 until the terminal
// event and splits row events into restored (cache_hit) vs simulated.
func countRowEvents(t *testing.T, base, id string) (restored, simulated int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/api/v1/jobs/%s/events", base, id), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev struct {
			Type     string `json:"type"`
			CacheHit bool   `json:"cache_hit"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		if ev.Type != "row" {
			return restored, simulated
		}
		if ev.CacheHit {
			restored++
		} else {
			simulated++
		}
	}
	t.Fatalf("SSE stream ended without a terminal event: %v", sc.Err())
	return 0, 0
}

package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
)

// memRows is an in-memory RowStore that counts hits and writes.
type memRows struct {
	mu   sync.Mutex
	m    map[string][]byte
	gets int
	hits int
	puts int
}

func newMemRows() *memRows { return &memRows{m: make(map[string][]byte)} }

func (r *memRows) Get(key string) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gets++
	v, ok := r.m[key]
	if ok {
		r.hits++
	}
	return v, ok
}

func (r *memRows) Put(key string, val []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.puts++
	r.m[key] = val
	return nil
}

func marshalResult(t *testing.T, res *Result) []byte {
	t.Helper()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// A rerun against a populated checkpoint store must simulate nothing and
// return a byte-identical result document.
func TestResumeFullRestoreIsByteIdentical(t *testing.T) {
	spec := Spec{Scene: "truc640", Scale: 0.2, Procs: []int{1, 4}, Sizes: []int{8, 16}}
	store := newMemRows()

	first, err := RunWith(context.Background(), spec, RunOpts{Rows: store})
	if err != nil {
		t.Fatal(err)
	}
	if store.puts == 0 {
		t.Fatal("first run checkpointed nothing")
	}

	var plan PlanStats
	second, err := RunWith(context.Background(), spec, RunOpts{Rows: store, Plan: &plan})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rasterizations != 0 {
		t.Fatalf("second run rasterized %d times; want 0 (fully checkpointed)", plan.Rasterizations)
	}
	// All rows; the baseline is not even consulted — no surviving point
	// needs its denominator.
	if want := len(first.Rows); plan.Checkpointed != want {
		t.Fatalf("Checkpointed = %d; want %d", plan.Checkpointed, want)
	}
	if a, b := marshalResult(t, first), marshalResult(t, second); !bytes.Equal(a, b) {
		t.Fatalf("resumed result differs from original:\n%s\n%s", a, b)
	}
}

// A partial checkpoint (a prior narrower sweep sharing points and the same
// leading tile size) must restore the shared rows and simulate only the
// rest — and still match an uncheckpointed run byte for byte.
func TestResumePartialRestore(t *testing.T) {
	full := Spec{Scene: "truc640", Scale: 0.2, Procs: []int{1, 4}, Sizes: []int{8, 16}}
	narrow := Spec{Scene: "truc640", Scale: 0.2, Procs: []int{1}, Sizes: []int{8, 16}}
	store := newMemRows()

	if _, err := RunWith(context.Background(), narrow, RunOpts{Rows: store}); err != nil {
		t.Fatal(err)
	}

	clean, err := RunWith(context.Background(), full, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var plan PlanStats
	resumed, err := RunWith(context.Background(), full, RunOpts{Rows: store, Plan: &plan})
	if err != nil {
		t.Fatal(err)
	}
	// The narrow sweep shares its 2 rows and the baseline with the full one.
	if plan.Checkpointed != 3 {
		t.Fatalf("Checkpointed = %d; want 3 (2 rows + baseline)", plan.Checkpointed)
	}
	if plan.Rasterizations >= len(clean.Rows) {
		t.Fatalf("resumed run rasterized %d times; want fewer than %d rows", plan.Rasterizations, len(clean.Rows))
	}
	if a, b := marshalResult(t, clean), marshalResult(t, resumed); !bytes.Equal(a, b) {
		t.Fatalf("resumed result differs from clean run:\n%s\n%s", a, b)
	}
}

// Speedup divides by the (1 proc, Sizes[0]) baseline, so the same point in
// sweeps leading with different tile sizes yields different row bytes. The
// checkpoint key must keep those apart.
func TestResumeKeyIncludesBaselineIdentity(t *testing.T) {
	a := Spec{Scene: "truc640", Scale: 0.2, Procs: []int{4}, Sizes: []int{8, 16}}
	b := Spec{Scene: "truc640", Scale: 0.2, Procs: []int{4}, Sizes: []int{16, 8}}
	store := newMemRows()

	if _, err := RunWith(context.Background(), a, RunOpts{Rows: store}); err != nil {
		t.Fatal(err)
	}
	clean, err := RunWith(context.Background(), b, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := RunWith(context.Background(), b, RunOpts{Rows: store})
	if err != nil {
		t.Fatal(err)
	}
	if x, y := marshalResult(t, clean), marshalResult(t, resumed); !bytes.Equal(x, y) {
		t.Fatalf("sweep with different leading size was poisoned by checkpoints:\n%s\n%s", x, y)
	}
}

// resumeSink captures the progress callbacks, distinguishing restored
// rows (RowCached) from simulated ones.
type resumeSink struct {
	mu      sync.Mutex
	started []int
	done    []int
	cached  []int
}

func (s *resumeSink) RowStarted(index, total, procs, size int, configHash string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.started = append(s.started, index)
}

func (s *resumeSink) RowDone(index, total int, row Row, configHash string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done = append(s.done, index)
}

func (s *resumeSink) RowCached(index, total int, row Row, configHash string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cached = append(s.cached, index)
}

// Restored rows must reach the sink as RowCached, not as RowStarted/RowDone.
func TestResumeReportsRowsCached(t *testing.T) {
	spec := Spec{Scene: "truc640", Scale: 0.2, Procs: []int{1, 4}, Sizes: []int{8}}
	store := newMemRows()
	if _, err := RunWith(context.Background(), spec, RunOpts{Rows: store}); err != nil {
		t.Fatal(err)
	}

	sink := &resumeSink{}
	if _, err := RunWith(context.Background(), spec, RunOpts{Rows: store, Progress: sink}); err != nil {
		t.Fatal(err)
	}
	if len(sink.cached) != 2 {
		t.Fatalf("RowCached fired %d times; want 2", len(sink.cached))
	}
	if len(sink.started) != 0 || len(sink.done) != 0 {
		t.Fatalf("restored rows also fired RowStarted/RowDone (%d/%d); want none",
			len(sink.started), len(sink.done))
	}
}

// A flight sweep must ignore the store entirely: recordings are not
// checkpointed, and a partial restore would desynchronize rows and flights.
func TestResumeIgnoredForFlightSweeps(t *testing.T) {
	spec := Spec{Scene: "truc640", Scale: 0.2, Procs: []int{1}, Sizes: []int{8}, Flight: true}
	store := newMemRows()
	if _, err := RunWith(context.Background(), spec, RunOpts{Rows: store}); err != nil {
		t.Fatal(err)
	}
	if store.gets != 0 || store.puts != 0 {
		t.Fatalf("flight sweep touched the row store (gets=%d puts=%d); want untouched",
			store.gets, store.puts)
	}
}

// Corrupt checkpoint bytes must be ignored, not crash or poison the result.
func TestResumeCorruptEntryResimulates(t *testing.T) {
	spec := Spec{Scene: "truc640", Scale: 0.2, Procs: []int{1}, Sizes: []int{8}}
	store := newMemRows()
	if _, err := RunWith(context.Background(), spec, RunOpts{Rows: store}); err != nil {
		t.Fatal(err)
	}
	clean, err := RunWith(context.Background(), spec, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	store.mu.Lock()
	for k := range store.m {
		store.m[k] = []byte("not json")
	}
	store.mu.Unlock()

	var plan PlanStats
	res, err := RunWith(context.Background(), spec, RunOpts{Rows: store, Plan: &plan})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Checkpointed != 0 {
		t.Fatalf("Checkpointed = %d with corrupt store; want 0", plan.Checkpointed)
	}
	if a, b := marshalResult(t, clean), marshalResult(t, res); !bytes.Equal(a, b) {
		t.Fatalf("corrupt store changed the result:\n%s\n%s", a, b)
	}
}

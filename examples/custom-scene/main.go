// custom-scene builds a frame with the scene synthesizer's public knobs —
// the way a user would model their own workload rather than the paper's
// benchmarks — measures its Table 1 characteristics, saves it as a trace,
// and simulates it on two candidate machines to pick a distribution.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/texsim"
)

func main() {
	// A hypothetical CAD-viewer frame: moderate overdraw, one detailed
	// object cluster, mid-size textures mapped near 1 texel/pixel.
	sc, err := texsim.GenerateScene(texsim.SceneParams{
		Name:            "cad-viewer",
		Width:           1024,
		Height:          768,
		Triangles:       20000,
		DepthComplexity: 2.5,
		Textures:        64,
		TexSize:         128,
		TexelDensity:    1.0,
		FreshFraction:   0.85,
		HotSpots:        1,
		HotSpotShare:    0.5,
		Seed:            2026,
	})
	if err != nil {
		log.Fatal(err)
	}

	st, err := texsim.Measure(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %s: %.2f Mpixels, depth complexity %.2f, %d triangles,\n",
		st.Name, float64(st.PixelsRendered)/1e6, st.DepthComplexity, st.Triangles)
	fmt.Printf("  %d textures (%.1f MB), unique texel/fragment %.3f\n\n",
		st.Textures, float64(st.TextureBytes)/1e6, st.UniqueTexelFrag)

	// The trace can be persisted and reloaded — here through a buffer.
	var buf bytes.Buffer
	if err := texsim.WriteTrace(&buf, sc); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace size: %d KB\n\n", buf.Len()/1024)

	// Which machine draws this frame faster: 16 nodes with blocks, or SLI?
	for _, cand := range []texsim.Config{
		{Procs: 16, Distribution: texsim.Block, TileSize: 16,
			CacheKind: texsim.CacheReal, Bus: texsim.BusConfig{TexelsPerCycle: 1}},
		{Procs: 16, Distribution: texsim.SLI, TileSize: 8,
			CacheKind: texsim.CacheReal, Bus: texsim.BusConfig{TexelsPerCycle: 1}},
	} {
		sp, _, res, err := texsim.Speedup(sc, cand)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s speedup %.1fx  cycles %.0f  texel/frag %.2f  imbalance %.0f%%\n",
			cand.Name(), sp, res.Cycles, res.TexelToFragment(), res.PixelImbalance()*100)
	}
}

package framework_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
)

// checkSource type-checks one synthetic file and wraps it as a Package.
func checkSource(t *testing.T, src string) *framework.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := framework.NewInfo()
	conf := types.Config{}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &framework.Package{
		ImportPath: "p",
		Fset:       fset,
		Files:      []*ast.File{f},
		Types:      tpkg,
		Info:       info,
	}
}

func TestCallGraphReachable(t *testing.T) {
	pkg := checkSource(t, `package p

type T struct{}

func (T) m() { c() }

func a() { b() }
func b() { var t T; t.m() }
func c() {}
func unrelated() {}
`)
	pass := &framework.Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, TypesInfo: pkg.Info}
	g := framework.NewCallGraph(pass)

	var aDecl *ast.FuncDecl
	for _, d := range pkg.Files[0].Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "a" {
			aDecl = fd
		}
	}
	if aDecl == nil {
		t.Fatal("func a not found")
	}
	var got []string
	for _, d := range g.Reachable(aDecl.Body) {
		got = append(got, d.Name.Name)
	}
	want := map[string]bool{"b": true, "m": true, "c": true}
	if len(got) != len(want) {
		t.Fatalf("Reachable(a) = %v, want b, m, c", got)
	}
	for _, n := range got {
		if !want[n] {
			t.Fatalf("Reachable(a) = %v, want b, m, c", got)
		}
	}
}

func TestFreeVars(t *testing.T) {
	pkg := checkSource(t, `package p

var global int

type S struct{ field int }

func f(s S) func(i int) {
	captured := 0
	_ = captured
	return func(i int) {
		local := i
		captured = local
		global++
		_ = s.field
	}
}
`)
	var lit *ast.FuncLit
	ast.Inspect(pkg.Files[0], func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok {
			lit = l
		}
		return true
	})
	if lit == nil {
		t.Fatal("no func literal found")
	}
	free := framework.FreeVars(pkg.Info, lit)
	names := make(map[string]bool)
	for v := range free {
		names[v.Name()] = true
	}
	for _, want := range []string{"captured", "global", "s"} {
		if !names[want] {
			t.Errorf("FreeVars missing %q (got %v)", want, names)
		}
	}
	for _, banned := range []string{"i", "local", "field"} {
		if names[banned] {
			t.Errorf("FreeVars wrongly captured %q", banned)
		}
	}
}

// TestStaleSuppression verifies the directive hygiene pass: a directive that
// absorbs a diagnostic survives, a stale one is reported, one naming only an
// analyzer outside the run set is left alone, and a missing justification is
// reported regardless.
func TestStaleSuppression(t *testing.T) {
	pkg := checkSource(t, `package p

//texlint:ignore everyline fires on the next line, so this one is used
func used() {}

//texlint:ignore everyline stale: nothing fires here

//texlint:ignore otherlint out of scope for this run, must not be reported
var x = 1

//texlint:ignore everyline
func noReason() {}
`)
	everyline := &framework.Analyzer{
		Name: "everyline",
		Doc:  "reports every function declaration (test helper)",
		Run: func(pass *framework.Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fn, ok := d.(*ast.FuncDecl); ok {
						pass.Reportf(fn.Pos(), "func %s", fn.Name.Name)
					}
				}
			}
			return nil
		},
	}
	diags, err := framework.RunAnalyzers(pkg, []*framework.Analyzer{everyline})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.String())
	}
	joined := strings.Join(got, "\n")
	if strings.Contains(joined, "func used") {
		t.Errorf("suppressed diagnostic leaked:\n%s", joined)
	}
	if !strings.Contains(joined, "unused //texlint:ignore everyline") {
		t.Errorf("stale directive not reported:\n%s", joined)
	}
	if strings.Contains(joined, "otherlint") {
		t.Errorf("out-of-run-set directive wrongly reported:\n%s", joined)
	}
	if !strings.Contains(joined, "needs a justification") {
		t.Errorf("justification-less directive not reported:\n%s", joined)
	}
	// The no-reason directive still suppresses; only its missing reason is
	// reported.
	if strings.Contains(joined, "func noReason") {
		t.Errorf("no-reason directive failed to suppress:\n%s", joined)
	}
}

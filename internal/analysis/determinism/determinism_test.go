package determinism_test

import (
	"testing"

	"repro/internal/analysis/determinism"
	"repro/internal/analysis/framework"
)

func TestDeterminism(t *testing.T) {
	framework.RunTest(t, ".", determinism.Analyzer, "det")
}

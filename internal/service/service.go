// Package service implements texsimd's simulation service: a REST API over
// a bounded job queue and worker pool, fronted by a content-addressed result
// cache and instrumented with Prometheus-style metrics.
//
// Lifecycle of a job: POST /api/v1/jobs validates the request and enqueues
// it (429 when the queue is full, 503 while draining); a worker picks it up,
// serves it from the result cache when an identical request has already been
// simulated, and otherwise runs the simulation under a per-job
// (cancellable, optionally timed-out) context. Clients poll
// GET /api/v1/jobs/{id} and fetch GET /api/v1/jobs/{id}/result.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/resultcache"
	"repro/internal/sweep"
	"repro/internal/telemetry/logging"
	"repro/internal/telemetry/progress"
	"repro/internal/telemetry/tracing"
)

// Config tunes the service. Zero values mean the documented defaults.
type Config struct {
	// Workers is the worker-pool size (0 = NumCPU).
	Workers int
	// QueueDepth bounds jobs accepted but not yet running (0 = 64).
	QueueDepth int
	// JobTimeout caps one job's run time (0 = unlimited).
	JobTimeout time.Duration
	// Parallelism bounds concurrent simulations inside one job (0 = 1:
	// cross-job parallelism comes from the worker pool).
	Parallelism int
	// NodeParallelism bounds each simulation's parallel node kernel
	// (0 = share the job's Parallelism budget, 1 = force the event-driven
	// kernel; see sweep.RunOpts). Results are identical at every setting.
	NodeParallelism int
	// NoMemo disables the sweep planner's raster-artifact memoization for
	// every sweep job (see sweep.RunOpts.NoMemo). Results are identical
	// either way; this is an escape hatch for debugging.
	NoMemo bool
	// Cache, when nil, is replaced by an in-memory cache with default
	// capacity.
	Cache *resultcache.Cache
	// Metrics, when nil, is replaced by a fresh registry. The registry is
	// what GET /metrics renders.
	Metrics *metrics.Registry
	// OutDir is where image-producing experiment jobs write files
	// (default "out").
	OutDir string
	// Logger receives structured job/request logs. When nil, log lines are
	// bridged to Logf if that is set, and dropped otherwise.
	Logger *slog.Logger
	// Logf, when non-nil and Logger is nil, receives one rendered line per
	// log record — the legacy test hook.
	Logf func(format string, args ...any)
	// Tracer records request and job spans (nil = a fresh tracer with
	// default capacity). Handler serves its ring at /debug/traces.
	Tracer *tracing.Tracer
	// Progress is the job-progress broker behind GET /api/v1/jobs/{id}/events
	// (nil = a fresh broker). Pass a shared broker to observe events from
	// outside the server too — texsweep's -progress works this way.
	Progress *progress.Broker
	// SampleInterval is the metrics time-series sampling period behind
	// /api/v1/metrics/query (0 = 5s, negative = sampling disabled).
	SampleInterval time.Duration
	// SamplePoints bounds retained history per series (0 = 512). Sampler
	// memory is O(series × SamplePoints), independent of uptime.
	SamplePoints int

	// Cluster, when non-nil, makes the server peer-aware: submissions are
	// routed to the rendezvous owner of their cache key, cache misses ask
	// the owning peer before simulating, a full queue spills to peers
	// before answering 429, and the peer-protocol endpoints (steal,
	// complete, cache federation) plus GET /cluster are served. Share the
	// cluster's metrics registry with Metrics so /metrics exposes both.
	Cluster *cluster.Cluster
	// PollInterval is how often a forwarded job's supervisor polls the
	// executing peer (0 = 250ms).
	PollInterval time.Duration
	// LeaseTimeout bounds a stolen job's lease: if the thief has not
	// posted a completion by then, the job is re-queued locally and a
	// late completion is discarded as stale (0 = 60s).
	LeaseTimeout time.Duration
	// StealInterval is the idle-node work-stealing poll period
	// (0 = stealing disabled; health checking and routing still work).
	StealInterval time.Duration

	// CheckpointDir, when non-empty, makes jobs durable: sweep rows
	// checkpoint to a disk-backed row store under it (resumed sweeps
	// re-simulate only missing rows), and accepted jobs journal under
	// <CheckpointDir>/jobs so a restarted server can pick them back up.
	CheckpointDir string
	// Resume replays the job journal on boot (requires CheckpointDir):
	// queued and running jobs of the previous process are resubmitted under
	// fresh IDs. Row checkpoints are always honored regardless of Resume.
	Resume bool

	// TenantRate, when positive, enables per-tenant admission control:
	// each tenant's submissions are limited to TenantRate jobs/second with
	// bursts of TenantBurst. Refusals answer 429 with Retry-After.
	TenantRate float64
	// TenantBurst is the token-bucket burst size (0 = 8).
	TenantBurst int
	// TenantWeights sets per-tenant weighted-fair dequeue shares (unlisted
	// tenants weigh 1). A weight-3 tenant dequeues three jobs per
	// round-robin turn within its scheduling band.
	TenantWeights map[string]int
	// InteractiveMaxPoints is the largest sweep (in rows) still scheduled
	// on the interactive band (0 = 4). Bigger sweeps are bulk: they never
	// delay interactive jobs, which dequeue with strict priority.
	InteractiveMaxPoints int

	// runOverride replaces job execution in tests.
	runOverride func(ctx context.Context, req *Request) ([]byte, error)
}

// Request is the submit-endpoint body: exactly one of Sweep or Experiment
// must be set, matching Type.
type Request struct {
	// Type is "sweep" or "experiment".
	Type string `json:"type"`
	// Sweep runs a parameter sweep (see sweep.Spec for defaults).
	Sweep *sweep.Spec `json:"sweep,omitempty"`
	// Experiment reproduces one paper table/figure by ID.
	Experiment *ExperimentSpec `json:"experiment,omitempty"`
	// Tenant attributes the job for admission control, fair scheduling and
	// the texsimd_tenant_* metrics ("" = "default"). The X-Tenant request
	// header overrides it. Deliberately excluded from the result-cache key:
	// identical requests from different tenants share one cached result.
	Tenant string `json:"tenant,omitempty"`
}

// ExperimentSpec names a paper experiment.
type ExperimentSpec struct {
	// ID is an experiment identifier (texbench -list).
	ID string `json:"id"`
	// Scale is the scene resolution scale (0 = 0.5).
	Scale float64 `json:"scale,omitempty"`
}

// normalize defaults the request in place so that equivalent submissions
// share one cache key, and validates it.
func (r *Request) normalize() error {
	if len(r.Tenant) > 64 {
		return fmt.Errorf("tenant name longer than 64 bytes")
	}
	switch r.Type {
	case "sweep":
		if r.Sweep == nil || r.Experiment != nil {
			return fmt.Errorf("type %q requires exactly the sweep field", r.Type)
		}
		*r.Sweep = r.Sweep.WithDefaults()
		return r.Sweep.Validate()
	case "experiment":
		if r.Experiment == nil || r.Sweep != nil {
			return fmt.Errorf("type %q requires exactly the experiment field", r.Type)
		}
		if r.Experiment.Scale == 0 {
			r.Experiment.Scale = 0.5
		}
		if r.Experiment.Scale < 0 || r.Experiment.Scale > 1 {
			return fmt.Errorf("experiment scale %v out of (0, 1]", r.Experiment.Scale)
		}
		if _, ok := experiments.ByID(r.Experiment.ID); !ok {
			return fmt.Errorf("unknown experiment %q", r.Experiment.ID)
		}
		return nil
	default:
		return fmt.Errorf("unknown job type %q (sweep or experiment)", r.Type)
	}
}

// scene labels the request for the per-scene latency metric.
func (r *Request) scene() string {
	switch r.Type {
	case "sweep":
		return r.Sweep.Scene
	case "experiment":
		return "exp:" + r.Experiment.ID
	}
	return "unknown"
}

// Status is a job's lifecycle state.
type Status string

// Job states, in order.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// job is the internal record; jobView is its wire shape.
type job struct {
	id        string
	req       *Request
	tenant    string          // normalized tenant (never empty)
	class     jobClass        // scheduling band
	key       string          // result-cache key
	ctx       context.Context // cancelled by Cancel/Close; basis of the run context
	status    Status
	errMsg    string
	result    []byte // JSON payload once done
	fromCache bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc // non-nil from submission until finish

	// requestID correlates the job's log lines and spans with the HTTP
	// request that submitted it (the submit span's ID, or the job ID for
	// direct Submit callers).
	requestID string
	// traceID/parentSpan carry the submit-time trace context so the job's
	// run span joins the same trace, however much later a worker picks the
	// job up.
	traceID    tracing.TraceID
	parentSpan tracing.SpanID

	// Cluster-mode fields. remoteAddr/remoteID identify the peer executing
	// a forwarded job (and the job's identity there); stolenBy/leaseNonce
	// track an outstanding steal lease — a completion must quote the live
	// nonce or it is discarded as stale.
	remoteAddr string
	remoteID   string
	stolenBy   string
	leaseNonce string
}

// Server is the simulation service. Create with New, expose with Handler,
// stop with Drain (graceful) or Close (immediate).
type Server struct {
	cfg      Config
	reg      *metrics.Registry
	cache    *resultcache.Cache
	logger   *slog.Logger
	tracer   *tracing.Tracer
	progress *progress.Broker
	sampler  *metrics.Sampler

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// stop ends the sampler loop on Drain's clean path, which never cancels
	// baseCtx; closed exactly once via stopOnce.
	stop     chan struct{}
	stopOnce sync.Once

	wg sync.WaitGroup

	// q is the worker queue: class-banded, weighted-fair across tenants.
	// rows/journalDir/quota are the durability and admission-control
	// plumbing, nil/empty unless configured.
	q          *fairQueue
	rows       sweep.RowStore
	journalDir string
	quota      *tenantQuotas

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for listing
	seq      uint64
	draining bool

	mSubmitted  *metrics.CounterVec // by type
	mCompleted  *metrics.CounterVec // by final status
	mRejected   *metrics.Counter
	mPanics     *metrics.Counter
	mQueued     *metrics.Gauge
	mRunning    *metrics.Gauge
	mCacheHit   *metrics.Counter
	mCacheMiss  *metrics.Counter
	mCacheRem   *metrics.Counter
	mCacheEvict *metrics.Counter
	mSimCycles  *metrics.Counter
	mCPS        *metrics.Gauge
	mDuration   *metrics.HistogramVec // by scene
	mQueueWait  *metrics.HistogramVec // by type
	mHTTPReqs   *metrics.CounterVec   // by route, code
	mHTTPDur    *metrics.HistogramVec // by route
	mProgStream *metrics.Gauge
	mProgEvents *metrics.Counter

	mTenantQueued   *metrics.GaugeVec   // by tenant
	mTenantRunning  *metrics.GaugeVec   // by tenant
	mTenantRejected *metrics.CounterVec // by tenant, reason
}

// New builds the server and starts its worker pool. ctx is the root of
// every job's context: cancelling it aborts all queued and running work
// immediately (Close does the same). Pass context.Background() for a server
// that should drain gracefully on shutdown instead — as cmd/texsimd does —
// so that SIGTERM stops intake without killing in-flight jobs.
func New(ctx context.Context, cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	if cfg.OutDir == "" {
		cfg.OutDir = "out"
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Cache == nil {
		var err error
		cfg.Cache, err = resultcache.New(resultcache.Config{})
		if err != nil {
			return nil, err
		}
	}
	if cfg.Tracer == nil {
		cfg.Tracer = tracing.NewTracer(0)
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 60 * time.Second
	}
	if cfg.Progress == nil {
		cfg.Progress = progress.NewBroker()
	}
	if cfg.SampleInterval == 0 {
		cfg.SampleInterval = 5 * time.Second
	}
	if cfg.SamplePoints <= 0 {
		cfg.SamplePoints = 512
	}
	if cfg.TenantBurst <= 0 {
		cfg.TenantBurst = 8
	}
	if cfg.InteractiveMaxPoints <= 0 {
		cfg.InteractiveMaxPoints = 4
	}
	logger := cfg.Logger
	if logger == nil && cfg.Logf != nil {
		// Legacy bridge: render records as text lines into the Logf hook.
		logger = logging.New(logfWriter{cfg.Logf}, slog.LevelDebug, "text")
	}
	if logger == nil {
		logger = logging.Discard()
	}
	baseCtx, baseCancel := context.WithCancel(ctx)
	s := &Server{
		cfg:        cfg,
		reg:        cfg.Metrics,
		cache:      cfg.Cache,
		logger:     logger,
		tracer:     cfg.Tracer,
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		progress:   cfg.Progress,
		stop:       make(chan struct{}),
		q:          newFairQueue(cfg.QueueDepth, cfg.TenantWeights),
		jobs:       make(map[string]*job),
	}
	if cfg.TenantRate > 0 {
		s.quota = newTenantQuotas(cfg.TenantRate, cfg.TenantBurst)
	}
	if cfg.CheckpointDir != "" {
		// Row checkpoints live in their own disk-backed cache (namespaced so
		// keys cannot collide with anything else sharing the directory), and
		// the job journal in a subdirectory beside them.
		rc, err := resultcache.New(resultcache.Config{
			Dir: cfg.CheckpointDir, MaxEntries: 4096,
		})
		if err != nil {
			baseCancel()
			return nil, err
		}
		s.rows = rc.Namespace("sweeprow")
		dir := filepath.Join(cfg.CheckpointDir, "jobs")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			baseCancel()
			return nil, fmt.Errorf("service: job journal: %w", err)
		}
		s.journalDir = dir
	}
	s.sampler = metrics.NewSampler(cfg.Metrics, cfg.SamplePoints)
	r := s.reg
	s.mSubmitted = r.CounterVec("texsimd_jobs_submitted_total", "Jobs accepted into the queue.", "type")
	s.mCompleted = r.CounterVec("texsimd_jobs_completed_total", "Jobs finished, by final status.", "status")
	s.mRejected = r.Counter("texsimd_jobs_rejected_total", "Submissions rejected because the queue was full.")
	s.mPanics = r.Counter("texsimd_worker_panics_total", "Worker panics isolated (job marked failed).")
	s.mQueued = r.Gauge("texsimd_jobs_queued", "Jobs waiting in the queue.")
	s.mRunning = r.Gauge("texsimd_jobs_running", "Jobs currently simulating.")
	// The cache counters mirror resultcache.Stats — the cache is the single
	// source of truth; syncCacheMetrics raises these before every scrape.
	s.mCacheHit = r.Counter("texsimd_result_cache_hits_total", "Result-cache lookups served locally (memory or disk).")
	s.mCacheMiss = r.Counter("texsimd_result_cache_misses_total", "Result-cache lookups that found nothing locally.")
	s.mCacheRem = r.Counter("texsimd_result_cache_remote_hits_total", "Result-cache lookups served from the owning peer's cache.")
	s.mCacheEvict = r.Counter("texsimd_result_cache_evictions_total", "In-memory result-cache LRU evictions.")
	s.mSimCycles = r.Counter("texsimd_simulated_cycles_total", "Simulated machine cycles across completed sweep jobs.")
	s.mCPS = r.Gauge("texsimd_simulated_cycles_per_second", "Simulated cycles per wall-second of the most recent uncached sweep job.")
	s.mDuration = r.HistogramVec("texsimd_job_duration_seconds", "Job wall time from start to finish.", nil, "scene")
	s.mQueueWait = r.HistogramVec("texsimd_job_queue_wait_seconds", "Job wall time from submission to a worker picking it up.", nil, "type")
	s.mHTTPReqs = r.CounterVec("texsimd_http_requests_total", "HTTP requests served, by route and status code.", "route", "code")
	s.mHTTPDur = r.HistogramVec("texsimd_http_request_duration_seconds", "HTTP request wall time, by route.", nil, "route")
	s.mProgStream = r.Gauge("texsimd_progress_streams", "Open job-progress event streams (SSE subscribers).")
	// The broker's own count stays authoritative; syncMirroredMetrics
	// raises this mirror before every scrape and sample.
	s.mProgEvents = r.Counter("texsimd_progress_events_total", "Progress events published across all jobs.")
	s.mTenantQueued = r.GaugeVec("texsimd_tenant_queued", "Jobs waiting in the queue, by tenant.", "tenant")
	s.mTenantRunning = r.GaugeVec("texsimd_tenant_running", "Jobs currently simulating, by tenant.", "tenant")
	s.mTenantRejected = r.CounterVec("texsimd_tenant_rejected_total", "Submissions rejected, by tenant and reason (queue_full or quota).", "tenant", "reason")
	bi := buildinfo.Read()
	r.GaugeVec("texsimd_build_info", "Build metadata carried as labels; the value is always 1.",
		"version", "commit", "go").With(bi.Version, bi.Commit, bi.Go).Set(1)

	if cfg.SampleInterval > 0 {
		s.wg.Add(1)
		go s.sampleLoop()
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.Cluster != nil && cfg.StealInterval > 0 {
		s.wg.Add(1)
		go s.stealLoop()
	}
	if cfg.Resume && s.journalDir != "" {
		s.recoverJournal()
	}
	return s, nil
}

// logfWriter bridges rendered log lines into the legacy Logf test hook.
type logfWriter struct {
	f func(format string, args ...any)
}

func (w logfWriter) Write(p []byte) (int, error) {
	w.f("%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

// Tracer returns the server's span tracer — its ring backs /debug/traces.
func (s *Server) Tracer() *tracing.Tracer { return s.tracer }

// Submit validates, registers and enqueues a request. It returns the job
// record, or an error classified by errSubmit. ctx is only the carrier of
// the submitter's trace context and request ID (from the HTTP middleware);
// the job's own lifetime is governed by the server's root context, not by
// ctx, so a closed client connection never cancels an accepted job.
//
// In cluster mode the request may not run here at all: a job whose cache
// key is owned by a peer is forwarded to that peer (and supervised until
// its result lands back), and a job that finds the local queue full spills
// to any peer with capacity before the caller sees a 429.
func (s *Server) Submit(ctx context.Context, req *Request) (*job, error) {
	return s.submit(ctx, req, false, false)
}

// submit is Submit with the routing and admission decisions exposed: routed
// submissions (already forwarded once by a peer) always run locally — which
// keeps forwarding loop-free — and are quota-exempt, having been charged at
// their ingress node. exempt additionally bypasses the tenant quota for
// journal recovery, whose work was admitted by a previous process.
func (s *Server) submit(ctx context.Context, req *Request, routed, exempt bool) (*job, error) {
	if err := req.normalize(); err != nil {
		return nil, &submitError{code: 400, err: err}
	}
	tenant := tenantOrDefault(req.Tenant)
	if s.quota != nil && !routed && !exempt {
		if ok, retry := s.quota.allow(tenant, time.Now()); !ok {
			s.mTenantRejected.With(tenant, "quota").Inc()
			return nil, &submitError{code: 429, apiCode: "quota_exhausted", retryAfter: retry,
				err: fmt.Errorf("tenant %q quota exhausted, retry in %ds", tenant, retry)}
		}
	}
	// The cache key deliberately ignores the tenant: identical requests
	// share one cached result whoever submits them.
	keyReq := *req
	keyReq.Tenant = ""
	key, err := resultcache.Key(&keyReq)
	if err != nil {
		return nil, &submitError{code: 400, err: err}
	}

	cl := s.cfg.Cluster
	if cl != nil && !routed {
		if owner, self := cl.Owner(key); !self {
			return s.submitRouted(ctx, req, key, owner)
		}
	}

	j, enqueued, err := s.register(ctx, req, key, true)
	if err != nil {
		return nil, err
	}
	if !enqueued {
		if cl != nil && !routed {
			if j, err := s.submitSpill(ctx, req, key); err == nil {
				return j, nil
			}
		}
		s.mRejected.Inc()
		s.mTenantRejected.With(tenant, "queue_full").Inc()
		return nil, &submitError{code: 429, err: fmt.Errorf("job queue full (%d queued, capacity %d)", s.q.len(), s.q.depth())}
	}

	s.mSubmitted.With(req.Type).Inc()
	s.journalAdd(j)
	s.logger.LogAttrs(j.ctx, slog.LevelInfo, "job queued",
		slog.String("type", req.Type), slog.String("tenant", tenant),
		slog.String("class", j.class.String()), slog.String("cache_key", key[:12]))
	return j, nil
}

// register creates and records a job for a normalized request. With
// enqueue it also pushes the job onto the worker queue, reporting a full
// queue through enqueued=false (in which case the job is NOT registered
// and its ID is reused). Without enqueue the job is registered but owned
// by the caller — the cluster forwarding paths, which supervise it
// instead of a local worker.
func (s *Server) register(ctx context.Context, req *Request, key string, enqueue bool) (j *job, enqueued bool, err error) {
	jctx, cancel := context.WithCancel(s.baseCtx)
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		return nil, false, &submitError{code: 503, err: fmt.Errorf("service is draining")}
	}
	s.seq++
	j = &job{
		id:        fmt.Sprintf("job-%06d", s.seq),
		req:       req,
		tenant:    tenantOrDefault(req.Tenant),
		class:     classify(req, s.cfg.InteractiveMaxPoints),
		key:       key,
		status:    StatusQueued,
		submitted: time.Now(),
		cancel:    cancel,
	}
	j.requestID = j.id
	if span := tracing.FromContext(ctx); span != nil {
		j.requestID = span.SpanID().String()
		j.traceID = span.TraceID()
		j.parentSpan = span.SpanID()
		span.SetAttr("job_id", j.id)
	}
	// Every log line of this job carries its correlation IDs.
	attrs := []slog.Attr{
		slog.String("job_id", j.id),
		slog.String("request_id", j.requestID),
	}
	if !j.traceID.IsZero() {
		attrs = append(attrs, slog.String("trace_id", j.traceID.String()))
	}
	j.ctx = logging.WithAttrs(jctx, attrs...)
	if enqueue {
		// The push happens under s.mu so it cannot race with Drain flipping
		// the draining flag; it is non-blocking, so the lock is never held
		// for long. (A push after close is answered with closed=true rather
		// than panicking, unlike the old channel queue.)
		ok, closed := s.q.push(j, false)
		if closed {
			s.mu.Unlock()
			cancel()
			return nil, false, &submitError{code: 503, err: fmt.Errorf("service is draining")}
		}
		if !ok {
			s.seq-- // unused ID
			s.mu.Unlock()
			cancel()
			return nil, false, nil
		}
		s.enqueuedJob(j)
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	return j, true, nil
}

// enqueuedJob/dequeuedJob maintain the queue-occupancy gauges as exact
// counters: +1 on every successful queue push, -1 on every pop, wherever
// either happens (submit, cluster fallback re-queue, worker, steal). The
// old len(queue) sampling raced with concurrent submit+dequeue and drifted.
func (s *Server) enqueuedJob(j *job) {
	s.mQueued.Add(1)
	s.mTenantQueued.With(j.tenant).Add(1)
}

func (s *Server) dequeuedJob(j *job) {
	s.mQueued.Add(-1)
	s.mTenantQueued.With(j.tenant).Add(-1)
}

// submitError couples a submit failure with its HTTP status code, plus an
// optional API error code and Retry-After override for the error envelope
// (zero values fall back to the code-derived defaults).
type submitError struct {
	code       int
	apiCode    string
	retryAfter int
	err        error
}

func (e *submitError) Error() string { return e.err.Error() }
func (e *submitError) Unwrap() error { return e.err }

// worker consumes jobs until the queue closes (Drain/Close) and drains
// empty.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.q.pop()
		if !ok {
			return
		}
		s.dequeuedJob(j)
		s.runJob(j)
	}
}

// runJob executes one job with panic isolation.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.status != StatusQueued { // canceled while queued
		s.mu.Unlock()
		s.journalRemove(j.id)
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	s.mu.Unlock()
	s.mRunning.Add(1)
	s.mTenantRunning.With(j.tenant).Add(1)
	defer func() {
		s.mRunning.Add(-1)
		s.mTenantRunning.With(j.tenant).Add(-1)
	}()
	s.mQueueWait.With(j.req.Type).Observe(j.started.Sub(j.submitted).Seconds())

	// The run span joins the submitter's trace (stored on the job record at
	// submit time), so /debug/traces shows the HTTP submit span and the
	// worker-side run span under one trace ID however long the queue wait.
	spanCtx := j.ctx
	if !j.traceID.IsZero() {
		spanCtx = tracing.ContextWithRemoteParent(spanCtx, j.traceID, j.parentSpan)
	}
	_, span := s.tracer.StartSpan(spanCtx, "job "+j.req.Type)
	span.SetAttr("job_id", j.id)
	span.SetAttr("request_id", j.requestID)
	span.SetAttr("scene", j.req.scene())

	ctx := j.ctx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}

	payload, fromCache, err := func() (payload []byte, fromCache bool, err error) {
		defer func() {
			if r := recover(); r != nil {
				s.mPanics.Inc()
				err = fmt.Errorf("job panicked: %v", r)
			}
		}()
		if cached, ok := s.lookupCache(ctx, j.key); ok {
			if j.req.Type == "sweep" {
				// The stream still shows per-row completion — instant, and
				// marked as cache hits.
				progress.ReplaySweep(s.progress, j.id, cached, true)
			}
			return cached, true, nil
		}
		var sink sweep.ProgressSink
		if j.req.Type == "sweep" {
			sink = progress.NewSink(s.progress, j.id)
		}
		payload, err = s.execute(ctx, j.req, sink)
		if err != nil {
			return nil, false, err
		}
		if cerr := s.cache.Put(j.key, payload); cerr != nil {
			// A cold disk tier is an availability loss, not a job failure.
			s.logger.LogAttrs(j.ctx, slog.LevelWarn, "result cache write failed",
				slog.String("error", cerr.Error()))
		}
		// Ownership handoff: a result computed on a non-owner node (spill,
		// failover, or a shrunken alive set) is pushed to the key's owner so
		// future federated lookups from any node find it there.
		s.pushToOwner(ctx, j.key, payload)
		return payload, false, nil
	}()

	now := time.Now()
	wall := now.Sub(j.started).Seconds()
	s.mDuration.With(j.req.scene()).Observe(wall)

	s.mu.Lock()
	j.finished = now
	j.fromCache = fromCache
	switch {
	case err == nil:
		j.status = StatusDone
		j.result = payload
	case ctx.Err() != nil:
		// Cancelled via DELETE, shutdown, or the per-job timeout.
		j.status = StatusCanceled
		j.errMsg = err.Error()
	default:
		j.status = StatusFailed
		j.errMsg = err.Error()
	}
	final := j.status
	errMsg := j.errMsg
	j.cancel()
	s.mu.Unlock()

	s.journalRemove(j.id)
	s.progress.End(j.id, string(final), errMsg)
	s.mCompleted.With(string(final)).Inc()
	if err == nil && !fromCache && j.req.Type == "sweep" {
		var res sweep.Result
		if json.Unmarshal(payload, &res) == nil {
			s.mSimCycles.Add(int64(res.SimulatedCycles))
			if wall > 0 {
				s.mCPS.Set(res.SimulatedCycles / wall)
			}
		}
	}
	span.SetAttr("status", string(final))
	span.SetAttr("cache_hit", strconv.FormatBool(fromCache))
	if err != nil {
		span.SetError(err)
	}
	span.End()
	level := slog.LevelInfo
	if final == StatusFailed {
		level = slog.LevelError
	}
	logAttrs := []slog.Attr{
		slog.String("status", string(final)),
		slog.Float64("wall_seconds", wall),
		slog.Bool("cache_hit", fromCache),
	}
	if err != nil {
		logAttrs = append(logAttrs, slog.String("error", err.Error()))
	}
	s.logger.LogAttrs(j.ctx, level, "job finished", logAttrs...)
}

// execute runs the actual simulation work and returns the result payload.
// ps, when non-nil, observes a sweep's per-row progress (nil for job types
// without row structure and for stolen runs, whose origin owns the stream).
func (s *Server) execute(ctx context.Context, req *Request, ps sweep.ProgressSink) ([]byte, error) {
	if s.cfg.runOverride != nil {
		return s.cfg.runOverride(ctx, req)
	}
	switch req.Type {
	case "sweep":
		res, err := sweep.RunWith(ctx, *req.Sweep, sweep.RunOpts{
			Parallelism:     s.cfg.Parallelism,
			NodeParallelism: s.cfg.NodeParallelism,
			NoMemo:          s.cfg.NoMemo,
			Progress:        ps,
			Rows:            s.rows,
		})
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	case "experiment":
		e, _ := experiments.ByID(req.Experiment.ID)
		rep, err := e.Run(ctx, experiments.Options{
			Scale:       req.Experiment.Scale,
			Parallelism: s.cfg.Parallelism,
			OutDir:      s.cfg.OutDir,
		})
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	return nil, fmt.Errorf("unknown job type %q", req.Type)
}

// Cancel cancels a job: queued jobs never run, running jobs have their
// context cancelled. Finished jobs are left untouched (reported by the
// returned status).
func (s *Server) Cancel(id string) (Status, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return "", false
	}
	st := j.status
	if st == StatusQueued {
		j.status = StatusCanceled
		j.finished = time.Now()
		j.errMsg = "canceled before start"
	}
	cancel := j.cancel
	s.mu.Unlock()

	if st == StatusQueued {
		s.journalRemove(id)
		s.mCompleted.With(string(StatusCanceled)).Inc()
		s.progress.End(id, string(StatusCanceled), "canceled before start")
		return StatusCanceled, true
	}
	if st == StatusRunning {
		cancel() // runJob records the terminal state
	}
	return st, true
}

// Drain stops accepting jobs, lets queued and running jobs finish, and
// returns when the pool is idle. If ctx expires first, running jobs are
// cancelled and Drain waits for them to acknowledge before returning
// ctx.Err().
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("service: already draining")
	}
	s.draining = true
	s.q.close()
	s.mu.Unlock()
	// The sampler loop is part of s.wg but outlives jobs by design; on the
	// clean path baseCtx never dies, so it needs its own stop signal before
	// the Wait below can finish.
	s.stopSampler()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Every job is terminal now; any stream still open belongs to a job
		// that never published one (defensive) — close it so SSE readers see
		// a terminal event instead of a silent hang.
		s.progress.Shutdown()
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		s.progress.Shutdown()
		return ctx.Err()
	}
}

// Close cancels everything immediately and waits for workers to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.q.close()
	}
	s.mu.Unlock()
	s.baseCancel()
	s.stopSampler()
	s.wg.Wait()
	s.progress.Shutdown()
}

// stopSampler ends the sampler loop; safe to call from both Drain and
// Close in either order.
func (s *Server) stopSampler() {
	s.stopOnce.Do(func() { close(s.stop) })
}

// sampleLoop snapshots every registered metric into the ring sampler on
// the configured interval, mirroring externally-counted sources first so
// sampled series match what a scrape at the same instant would say.
func (s *Server) sampleLoop() {
	defer s.wg.Done()
	// An immediate first sample, so queries right after boot have a point.
	s.syncMirroredMetrics()
	s.sampler.Sample()
	t := time.NewTicker(s.cfg.SampleInterval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-s.stop:
			return
		case <-t.C:
			s.syncMirroredMetrics()
			s.sampler.Sample()
		}
	}
}

// snapshot returns a copy of the job record for rendering.
func (s *Server) snapshot(id string) (job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return job{}, false
	}
	return *j, true
}

// list returns snapshots of all jobs in submission order.
func (s *Server) list() []job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id])
	}
	return out
}

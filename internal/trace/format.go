package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/geom"
)

// Binary trace format (little-endian):
//
//	magic   [4]byte  "TTRC"
//	version uint32   1
//	nameLen uint32, name bytes
//	screen  4 × int32 (X0, Y0, X1, Y1)
//	nTex    uint32, then per texture: w, h uint32
//	nTri    uint32, then per triangle:
//	    6 × float32 vertex coords (x0 y0 x1 y1 x2 y2)
//	    texID int32
//	    6 × float32 texmap (U0 V0 DuDx DuDy DvDx DvDy)

var magic = [4]byte{'T', 'T', 'R', 'C'}

const formatVersion = 1

// Write serializes the scene to w in the binary trace format.
func Write(w io.Writer, s *Scene) error {
	if err := s.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	le := binary.LittleEndian
	var scratch [8]byte

	writeU32 := func(v uint32) {
		le.PutUint32(scratch[:4], v)
		bw.Write(scratch[:4])
	}
	writeI32 := func(v int32) { writeU32(uint32(v)) }
	writeF32 := func(v float64) { writeU32(math.Float32bits(float32(v))) }

	writeU32(formatVersion)
	writeU32(uint32(len(s.Name)))
	bw.WriteString(s.Name)
	writeI32(int32(s.Screen.X0))
	writeI32(int32(s.Screen.Y0))
	writeI32(int32(s.Screen.X1))
	writeI32(int32(s.Screen.Y1))
	writeU32(uint32(len(s.Textures)))
	for _, ts := range s.Textures {
		writeU32(uint32(ts.W))
		writeU32(uint32(ts.H))
	}
	writeU32(uint32(len(s.Triangles)))
	for i := range s.Triangles {
		t := &s.Triangles[i]
		for _, v := range t.V {
			writeF32(v.X)
			writeF32(v.Y)
		}
		writeI32(t.TexID)
		writeF32(t.Tex.U0)
		writeF32(t.Tex.V0)
		writeF32(t.Tex.DuDx)
		writeF32(t.Tex.DuDy)
		writeF32(t.Tex.DvDx)
		writeF32(t.Tex.DvDy)
	}
	return bw.Flush()
}

// Read parses a binary trace and validates it.
func Read(r io.Reader) (*Scene, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	le := binary.LittleEndian
	var scratch [4]byte
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return le.Uint32(scratch[:]), nil
	}
	readI32 := func() (int32, error) {
		v, err := readU32()
		return int32(v), err
	}
	readF32 := func() (float64, error) {
		v, err := readU32()
		return float64(math.Float32frombits(v)), err
	}

	version, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if version != formatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	nameLen, err := readU32()
	if err != nil {
		return nil, err
	}
	const maxName = 1 << 16
	if nameLen > maxName {
		return nil, fmt.Errorf("trace: name length %d too large", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, err
	}
	s := &Scene{Name: string(nameBuf)}

	coords := make([]int32, 4)
	for i := range coords {
		if coords[i], err = readI32(); err != nil {
			return nil, err
		}
	}
	s.Screen = geom.Rect{X0: int(coords[0]), Y0: int(coords[1]), X1: int(coords[2]), Y1: int(coords[3])}

	nTex, err := readU32()
	if err != nil {
		return nil, err
	}
	const maxTextures = 1 << 20
	if nTex > maxTextures {
		return nil, fmt.Errorf("trace: texture count %d too large", nTex)
	}
	// Grow incrementally rather than trusting the declared count: a
	// corrupt or hostile header must not drive a huge allocation before the
	// stream proves it actually carries the records.
	s.Textures = make([]TexSize, 0, min(int(nTex), 4096))
	for i := 0; i < int(nTex); i++ {
		w, err := readU32()
		if err != nil {
			return nil, err
		}
		h, err := readU32()
		if err != nil {
			return nil, err
		}
		s.Textures = append(s.Textures, TexSize{W: int(w), H: int(h)})
	}

	nTri, err := readU32()
	if err != nil {
		return nil, err
	}
	const maxTriangles = 1 << 26
	if nTri > maxTriangles {
		return nil, fmt.Errorf("trace: triangle count %d too large", nTri)
	}
	s.Triangles = make([]geom.Triangle, 0, min(int(nTri), 4096))
	for i := 0; i < int(nTri); i++ {
		s.Triangles = append(s.Triangles, geom.Triangle{})
		t := &s.Triangles[len(s.Triangles)-1]
		for j := 0; j < 3; j++ {
			if t.V[j].X, err = readF32(); err != nil {
				return nil, fmt.Errorf("trace: triangle %d: %w", i, err)
			}
			if t.V[j].Y, err = readF32(); err != nil {
				return nil, fmt.Errorf("trace: triangle %d: %w", i, err)
			}
		}
		if t.TexID, err = readI32(); err != nil {
			return nil, err
		}
		fields := []*float64{&t.Tex.U0, &t.Tex.V0, &t.Tex.DuDx, &t.Tex.DuDy, &t.Tex.DvDx, &t.Tex.DvDy}
		for _, f := range fields {
			if *f, err = readF32(); err != nil {
				return nil, err
			}
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

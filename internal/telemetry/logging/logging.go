// Package logging configures the structured log/slog output of the texsim
// services and threads per-request attributes through contexts: a handler
// wrapper appends attributes (request ID, trace ID, job ID) stored in the
// context by WithAttrs to every record logged through a *Context method, so
// each log line of a request or job is correlated with its spans without
// every call site repeating the IDs.
package logging

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel parses a -log-level flag value (debug, info, warn, error,
// case-insensitive).
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (debug, info, warn or error)", s)
	}
}

// New returns a logger writing to w at the given level. format is "json"
// (the service default: one object per line, machine-ingestable) or "text"
// (logfmt-style, for humans); anything else falls back to JSON. The logger
// threads context attributes installed by WithAttrs into every record.
func New(w io.Writer, level slog.Level, format string) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if format == "text" {
		h = slog.NewTextHandler(w, opts)
	} else {
		h = slog.NewJSONHandler(w, opts)
	}
	return slog.New(contextHandler{h})
}

// Discard returns a logger that drops every record — the default for
// libraries whose caller configured no logging.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// attrsKey keys the attribute slice in a context.
type attrsKey struct{}

// WithAttrs returns a context carrying attrs; every record logged with that
// context through a contextHandler-backed logger includes them. Repeated
// calls accumulate.
func WithAttrs(ctx context.Context, attrs ...slog.Attr) context.Context {
	if len(attrs) == 0 {
		return ctx
	}
	prev, _ := ctx.Value(attrsKey{}).([]slog.Attr)
	// Copy-on-write: contexts are shared across goroutines.
	merged := make([]slog.Attr, 0, len(prev)+len(attrs))
	merged = append(merged, prev...)
	merged = append(merged, attrs...)
	return context.WithValue(ctx, attrsKey{}, merged)
}

// ContextAttrs returns the attributes installed by WithAttrs, if any.
func ContextAttrs(ctx context.Context) []slog.Attr {
	attrs, _ := ctx.Value(attrsKey{}).([]slog.Attr)
	return attrs
}

// contextHandler appends context-carried attributes to every record.
type contextHandler struct {
	slog.Handler
}

func (h contextHandler) Handle(ctx context.Context, r slog.Record) error {
	if attrs := ContextAttrs(ctx); len(attrs) > 0 {
		r = r.Clone()
		r.AddAttrs(attrs...)
	}
	return h.Handler.Handle(ctx, r)
}

func (h contextHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return contextHandler{h.Handler.WithAttrs(attrs)}
}

func (h contextHandler) WithGroup(name string) slog.Handler {
	return contextHandler{h.Handler.WithGroup(name)}
}

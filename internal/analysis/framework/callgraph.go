package framework

import (
	"go/ast"
	"go/types"
)

// CallGraph is a lightweight intra-package call graph: it maps each
// function or method declared in the package to its declaration, resolves
// static call sites to those declarations, and computes the set of
// package-local bodies transitively reachable from any AST node. It is the
// shared substrate for analyzers that must reason across function
// boundaries (goroutine lifecycles, header-commit helpers, context
// plumbing) without the cost or dependency weight of a whole-program SSA
// graph. Calls through function values, interfaces with out-of-package
// implementations, and other packages resolve to nothing and are simply
// edges the graph does not have; analyzers decide whether an unresolved
// edge is benign or reportable.
type CallGraph struct {
	info  *types.Info
	decls map[*types.Func]*ast.FuncDecl
}

// NewCallGraph indexes every function and method declaration in the pass's
// files.
func NewCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		info:  pass.TypesInfo,
		decls: make(map[*types.Func]*ast.FuncDecl),
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				g.decls[fn] = fd
			}
		}
	}
	return g
}

// Decl returns the package-local declaration of fn, or nil when fn is
// declared elsewhere (another package, an interface method, a func value).
func (g *CallGraph) Decl(fn *types.Func) *ast.FuncDecl {
	if fn == nil {
		return nil
	}
	return g.decls[fn]
}

// StaticCallee resolves a call expression to the *types.Func it statically
// invokes: a plain function, a method on a concrete receiver, or an
// interface method (which has a *types.Func too, just never a local Decl
// unless the package defines it). Calls through bare function values
// return nil.
func (g *CallGraph) StaticCallee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := g.info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := g.info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// Reachable returns the declarations of every package-local function
// transitively callable from root (root's own calls, their local callees'
// calls, and so on). root itself is not included unless it is called back
// into.
func (g *CallGraph) Reachable(root ast.Node) []*ast.FuncDecl {
	seen := make(map[*ast.FuncDecl]bool)
	var out []*ast.FuncDecl
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			decl := g.Decl(g.StaticCallee(call))
			if decl == nil || seen[decl] {
				return true
			}
			seen[decl] = true
			out = append(out, decl)
			visit(decl.Body)
			return true
		})
	}
	visit(root)
	return out
}

// FreeVars returns the variables a function literal captures from its
// environment: every *types.Var used inside lit that is declared outside it
// (enclosing locals, receiver and parameters of the enclosing function, and
// package-level variables — all of which are shared when the literal runs
// on several goroutines). Struct fields are excluded; a field access is
// attributed to the captured root variable instead. The map value is the
// first use site, for positioning diagnostics.
func FreeVars(info *types.Info, lit *ast.FuncLit) map[*types.Var]*ast.Ident {
	defined := make(map[types.Object]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				defined[obj] = true
			}
		}
		return true
	})
	free := make(map[*types.Var]*ast.Ident)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || defined[v] {
			return true
		}
		if _, dup := free[v]; !dup {
			free[v] = id
		}
		return true
	})
	return free
}

package buildinfo

import (
	"strings"
	"testing"
)

func TestReadNeverEmpty(t *testing.T) {
	// Fields degrade to "unknown" rather than empty strings, so metric
	// labels and -version output always carry a value.
	bi := Read()
	if bi.Version == "" || bi.Commit == "" || bi.Go == "" {
		t.Fatalf("Read() = %+v; no field may be empty", bi)
	}
	// The test binary is built by the go tool, so the Go version is real.
	if !strings.HasPrefix(bi.Go, "go") {
		t.Fatalf("Go = %q, want a goX.Y version string", bi.Go)
	}
}

package service

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/resultcache"
	"repro/internal/sweep"
)

// soundnessSweep is the fixed config the cache-soundness contract is checked
// against: small enough to simulate three times in a test, big enough to
// exercise multiple processor counts.
func soundnessSweep() *Request {
	return &Request{Type: "sweep", Sweep: &sweep.Spec{
		Scene: "quake", Scale: 0.1, Procs: []int{1, 2}, Sizes: []int{8},
		Cache: "perfect",
	}}
}

// rawResult fetches the result document bytes exactly as served, with no
// JSON round-trip that could mask encoding differences.
func rawResult(t *testing.T, ts *httptest.Server, resultURL string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + resultURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result returned %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestCacheSoundness is the regression test for the result-cache contract
// that the determinism analyzer (internal/analysis/determinism) exists to
// protect: a simulation result is a pure function of its config, so a cached
// document must be bit-identical to what a fresh simulation of the same
// config would produce. It runs the same sweep three times — cold, cache-hit,
// and with the cache disabled — and compares the raw documents.
func TestCacheSoundness(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Cold run: simulated, then stored in the cache.
	cold, code := postJob(t, ts, soundnessSweep())
	if code != http.StatusAccepted {
		t.Fatalf("cold submit returned %d", code)
	}
	coldView := waitDone(t, ts, cold.ID)
	if coldView.Status != StatusDone {
		t.Fatalf("cold run finished %s (%s)", coldView.Status, coldView.Error)
	}
	if coldView.FromCache {
		t.Fatal("cold run claims a cache hit")
	}
	coldDoc := rawResult(t, ts, coldView.ResultURL)

	// Identical resubmission: must be served from the cache, byte-for-byte.
	hit, _ := postJob(t, ts, soundnessSweep())
	hitView := waitDone(t, ts, hit.ID)
	if hitView.Status != StatusDone {
		t.Fatalf("cached run finished %s (%s)", hitView.Status, hitView.Error)
	}
	if !hitView.FromCache {
		t.Fatal("identical resubmission was not served from the cache")
	}
	hitDoc := rawResult(t, ts, hitView.ResultURL)
	if !bytes.Equal(coldDoc, hitDoc) {
		t.Errorf("cached document differs from the cold run:\ncold: %s\nhit:  %s",
			coldDoc, hitDoc)
	}

	// Third run on a server with the cache disabled: a genuinely fresh
	// simulation of the same config must reproduce the cold document exactly.
	// If it doesn't, the simulator is nondeterministic and every cache hit
	// above was returning stale-by-construction data.
	disabled, err := resultcache.New(resultcache.Config{Disabled: true})
	if err != nil {
		t.Fatal(err)
	}
	_, tsFresh := newTestServer(t, Config{Cache: disabled})
	fresh, _ := postJob(t, tsFresh, soundnessSweep())
	freshView := waitDone(t, tsFresh, fresh.ID)
	if freshView.Status != StatusDone {
		t.Fatalf("fresh run finished %s (%s)", freshView.Status, freshView.Error)
	}
	if freshView.FromCache {
		t.Fatal("run with a disabled cache claims a cache hit")
	}
	freshDoc := rawResult(t, tsFresh, freshView.ResultURL)
	if !bytes.Equal(coldDoc, freshDoc) {
		t.Errorf("re-simulating the same config produced a different document — "+
			"the simulator is not a pure function of its config:\ncold:  %s\nfresh: %s",
			coldDoc, freshDoc)
	}

	// And the disabled cache really did stay out of the way.
	resub, _ := postJob(t, tsFresh, soundnessSweep())
	resubView := waitDone(t, tsFresh, resub.ID)
	if resubView.FromCache {
		t.Fatal("disabled cache served a hit on resubmission")
	}
}

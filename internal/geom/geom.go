// Package geom provides the screen-space geometry primitives used by the
// texture-mapping simulator: 2-D vectors, triangles with affine texture
// mappings, bounding boxes and mipmap level-of-detail computation.
//
// All coordinates are in pixels with the origin at the top-left corner of the
// screen, x growing rightwards and y growing downwards, matching the scan
// order of the simulated rasterizer. Texture coordinates are in texels (not
// normalized), because the simulator addresses texel blocks directly.
package geom

import (
	"fmt"
	"math"
)

// Vec2 is a 2-D point or vector in pixel or texel space.
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Cross returns the z component of the cross product v × w.
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// Dot returns the dot product v · w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Len returns the Euclidean length of v.
func (v Vec2) Len() float64 { return math.Hypot(v.X, v.Y) }

// Rect is a half-open axis-aligned pixel rectangle [X0,X1) × [Y0,Y1).
type Rect struct {
	X0, Y0, X1, Y1 int
}

// Empty reports whether the rectangle contains no pixels.
func (r Rect) Empty() bool { return r.X0 >= r.X1 || r.Y0 >= r.Y1 }

// Width returns the number of pixel columns in r (0 if empty).
func (r Rect) Width() int {
	if r.Empty() {
		return 0
	}
	return r.X1 - r.X0
}

// Height returns the number of pixel rows in r (0 if empty).
func (r Rect) Height() int {
	if r.Empty() {
		return 0
	}
	return r.Y1 - r.Y0
}

// Area returns the number of pixels in r.
func (r Rect) Area() int { return r.Width() * r.Height() }

// Contains reports whether pixel (x, y) lies inside r.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		X0: max(r.X0, s.X0),
		Y0: max(r.Y0, s.Y0),
		X1: min(r.X1, s.X1),
		Y1: min(r.Y1, s.Y1),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Intersects reports whether r and s share at least one pixel.
func (r Rect) Intersects(s Rect) bool { return !r.Intersect(s).Empty() }

// Union returns the smallest rectangle containing both r and s. The union of
// an empty rectangle with s is s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		X0: min(r.X0, s.X0),
		Y0: min(r.Y0, s.Y0),
		X1: max(r.X1, s.X1),
		Y1: max(r.Y1, s.Y1),
	}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", r.X0, r.X1, r.Y0, r.Y1)
}

// TexMap is an affine mapping from screen space to texel space:
//
//	u(x, y) = U0 + DuDx*x + DuDy*y
//	v(x, y) = V0 + DvDx*x + DvDy*y
//
// The simulated hardware interpolates texture coordinates linearly across a
// triangle, so an affine map per triangle captures exactly the information the
// paper's Mesa-derived triangle traces carried.
type TexMap struct {
	U0, V0     float64
	DuDx, DuDy float64
	DvDx, DvDy float64
}

// At returns the texel coordinate for screen position (x, y).
func (m TexMap) At(x, y float64) Vec2 {
	return Vec2{
		X: m.U0 + m.DuDx*x + m.DuDy*y,
		Y: m.V0 + m.DvDx*x + m.DvDy*y,
	}
}

// FootprintScale returns the larger of the two screen-axis texel footprints,
// i.e. how many texels one pixel step covers in the worst direction. It is the
// quantity mipmap LOD selection is based on.
func (m TexMap) FootprintScale() float64 {
	du := math.Hypot(m.DuDx, m.DvDx)
	dv := math.Hypot(m.DuDy, m.DvDy)
	return math.Max(du, dv)
}

// LOD returns the mipmap level-of-detail λ = log2(FootprintScale), clamped to
// be non-negative (magnified textures sample the base level).
func (m TexMap) LOD() float64 {
	s := m.FootprintScale()
	if s <= 1 {
		return 0
	}
	return math.Log2(s)
}

// Triangle is a screen-space triangle carrying a texture binding. Vertices
// are in pixel coordinates; Tex maps pixels to texels on texture TexID.
type Triangle struct {
	V     [3]Vec2
	TexID int32
	Tex   TexMap
}

// BBox returns the integer pixel bounding box of the triangle: the smallest
// half-open rectangle containing every pixel center the triangle can cover.
func (t Triangle) BBox() Rect {
	minX, minY := t.V[0].X, t.V[0].Y
	maxX, maxY := minX, minY
	for _, v := range t.V[1:] {
		minX = math.Min(minX, v.X)
		minY = math.Min(minY, v.Y)
		maxX = math.Max(maxX, v.X)
		maxY = math.Max(maxY, v.Y)
	}
	r := Rect{
		X0: int(math.Floor(minX)),
		Y0: int(math.Floor(minY)),
		X1: int(math.Ceil(maxX)) + 1,
		Y1: int(math.Ceil(maxY)) + 1,
	}
	return r
}

// SignedArea returns the signed area of the triangle in pixels: positive for
// counter-clockwise winding in the screen's y-down coordinate system.
func (t Triangle) SignedArea() float64 {
	return 0.5 * t.V[1].Sub(t.V[0]).Cross(t.V[2].Sub(t.V[0]))
}

// Area returns the absolute area of the triangle in pixels.
func (t Triangle) Area() float64 { return math.Abs(t.SignedArea()) }

// Degenerate reports whether the triangle has (near) zero area and therefore
// covers no pixel centers reliably.
func (t Triangle) Degenerate() bool { return t.Area() < 1e-12 }

// Package sweep runs parameter sweeps over the simulator: the cross product
// of processor counts and tile sizes for one scene and distribution, each
// configuration reported as one Row. It is the shared engine behind the
// texsweep CLI (CSV/JSON output) and the texsimd service (sweep jobs), so
// both produce identical rows for identical specs.
package sweep

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/memory"
	"repro/internal/par"
	"repro/internal/resultcache"
	"repro/internal/scene"
	"repro/internal/telemetry/flight"
)

// Spec describes one sweep: a scene plus the machine axes. The zero values
// of optional fields mean paper defaults (see WithDefaults). Spec is the
// canonical cache identity of a sweep — every field participates in the
// result-cache key, so any change re-simulates.
type Spec struct {
	// Scene is a paper benchmark name (see texsim.BenchmarkNames).
	Scene string `json:"scene"`
	// Scale is the scene resolution scale (0 = 0.5, the experiments default).
	Scale float64 `json:"scale,omitempty"`
	// Dist is "block", "sli" or "blockskewed" ("" = "block").
	Dist string `json:"dist,omitempty"`
	// Procs are the processor counts to sweep (empty = 1,4,16,64).
	Procs []int `json:"procs,omitempty"`
	// Sizes are the tile sizes to sweep (empty = 4,8,16,32,64).
	Sizes []int `json:"sizes,omitempty"`
	// Bus is the texture-bus bandwidth in texels per pixel-cycle (0 keeps
	// the zero meaning of BusConfig: infinite).
	Bus float64 `json:"bus,omitempty"`
	// Cache is "real", "perfect" or "none" ("" = "real").
	Cache string `json:"cache,omitempty"`
	// Buffer is the triangle-buffer depth (0 = paper default).
	Buffer int `json:"buffer,omitempty"`
	// Flight enables the simulation flight recorder: every configuration's
	// run is recorded as per-node setup/scan/stall/idle phase timelines and
	// the Result gains one Flight entry (summary + Chrome trace-event JSON)
	// per row. Part of the cache key: a flight sweep is a different result
	// document than a plain one.
	Flight bool `json:"flight,omitempty"`
	// FlightInterval is the recorder bucket width in cycles (0 = auto).
	FlightInterval float64 `json:"flight_interval,omitempty"`
}

// WithDefaults returns the spec with unset axes replaced by the defaults
// documented on Spec.
func (s Spec) WithDefaults() Spec {
	if s.Scale == 0 {
		s.Scale = 0.5
	}
	if s.Dist == "" {
		s.Dist = "block"
	}
	if len(s.Procs) == 0 {
		s.Procs = []int{1, 4, 16, 64}
	}
	if len(s.Sizes) == 0 {
		s.Sizes = []int{4, 8, 16, 32, 64}
	}
	if s.Cache == "" {
		s.Cache = "real"
	}
	return s
}

// Validate rejects specs the simulator would reject, with CLI/API-friendly
// messages. It validates the defaulted form.
func (s Spec) Validate() error {
	s = s.WithDefaults()
	if _, err := scene.ByName(s.Scene, s.Scale); err != nil {
		return fmt.Errorf("%w (known: %v)", err, scene.Names())
	}
	if _, err := distKind(s.Dist); err != nil {
		return err
	}
	if _, err := cacheKind(s.Cache); err != nil {
		return err
	}
	for _, p := range s.Procs {
		if p <= 0 {
			return fmt.Errorf("procs: %d must be positive", p)
		}
	}
	for _, w := range s.Sizes {
		if w <= 0 {
			return fmt.Errorf("sizes: %d must be positive", w)
		}
	}
	if s.Bus < 0 {
		return fmt.Errorf("bus: %v must be non-negative", s.Bus)
	}
	if s.Buffer < 0 {
		return fmt.Errorf("buffer: %d must be non-negative", s.Buffer)
	}
	if s.FlightInterval < 0 {
		return fmt.Errorf("flight_interval: %v must be non-negative", s.FlightInterval)
	}
	if s.FlightInterval > 0 && !s.Flight {
		return fmt.Errorf("flight_interval set without flight")
	}
	return nil
}

func distKind(name string) (distrib.Kind, error) {
	switch name {
	case "block":
		return distrib.BlockKind, nil
	case "sli":
		return distrib.SLIKind, nil
	case "blockskewed":
		return distrib.BlockSkewedKind, nil
	default:
		return 0, fmt.Errorf("unknown distribution %q (block, sli or blockskewed)", name)
	}
}

// RowHash is the content hash identifying one (procs, size) configuration
// point of this sweep: the result-cache hash (sha256 of canonical JSON) of
// the defaulted spec narrowed to that single point. Progress events carry
// it so a consumer can correlate a streamed row with the cached result the
// equivalent single-point sweep would produce.
func (s Spec) RowHash(procs, size int) string {
	p := s.WithDefaults()
	p.Procs = []int{procs}
	p.Sizes = []int{size}
	key, err := resultcache.Key(p)
	if err != nil {
		return "" // unreachable for a Spec: plain struct, always encodable
	}
	return key
}

func cacheKind(name string) (core.CacheKind, error) {
	switch name {
	case "real":
		return core.CacheReal, nil
	case "perfect":
		return core.CachePerfect, nil
	case "none":
		return core.CacheNone, nil
	default:
		return 0, fmt.Errorf("unknown cache model %q (real, perfect or none)", name)
	}
}

// Row is one configuration's results: the texsweep CSV columns, and the row
// shape texsimd sweep jobs return as JSON.
type Row struct {
	Scene          string  `json:"scene"`
	Dist           string  `json:"dist"`
	Procs          int     `json:"procs"`
	Size           int     `json:"size"`
	Cycles         float64 `json:"cycles"`
	Speedup        float64 `json:"speedup"`
	TexelPerFrag   float64 `json:"texel_per_frag"`
	PixelImbalance float64 `json:"pixel_imbalance"`
	StallCycles    float64 `json:"stall_cycles"`
	// Frags is the total fragments (pixels) drawn across nodes.
	Frags uint64 `json:"frags"`
}

// Flight is one configuration's flight recording: the per-node phase
// summary and the Chrome trace-event JSON document (Perfetto-loadable),
// in the same order as the Rows it parallels.
type Flight struct {
	Procs   int                  `json:"procs"`
	Size    int                  `json:"size"`
	Summary []flight.NodeSummary `json:"summary"`
	Trace   json.RawMessage      `json:"trace"`
}

// Result is a completed sweep: the defaulted spec it ran plus its rows in
// deterministic (procs-major, then size) order.
type Result struct {
	Spec Spec  `json:"spec"`
	Rows []Row `json:"rows"`
	// Flights holds one flight recording per row when Spec.Flight is set,
	// in row order.
	Flights []Flight `json:"flights,omitempty"`
	// SimulatedCycles is the total simulated time across all
	// configurations, the numerator of the service's cycles-per-wall-second
	// throughput metric.
	SimulatedCycles float64 `json:"simulated_cycles"`
}

// RunOpts tunes how a sweep executes without changing what it computes:
// rows are byte-identical at every setting, so none of these fields
// participate in Spec's result-cache identity.
type RunOpts struct {
	// Parallelism bounds how many configurations simulate concurrently
	// (<=0 = sequential). It is also the sweep's total worker budget.
	Parallelism int
	// NodeParallelism bounds each simulation's parallel node kernel (see
	// core.Machine.SetNodeParallelism): 1 forces the event-driven kernel,
	// 0 shares the worker budget — when fewer configurations than budget
	// run concurrently, the spare workers go to each machine's node kernel
	// (budget / concurrent configurations, at least 1). A sweep of many
	// configurations therefore parallelizes across configurations; a sweep
	// of one big configuration parallelizes across its nodes.
	NodeParallelism int
	// Progress, when non-nil, observes each configuration's lifecycle (see
	// ProgressSink). Off costs one nil check per row; rows and results are
	// byte-identical either way.
	Progress ProgressSink
}

// ProgressSink observes a sweep's per-row lifecycle. Rows complete on
// parallel workers, so implementations must be safe for concurrent use.
// Callbacks run on the simulation hot path's row granularity — they should
// not block.
type ProgressSink interface {
	// RowStarted fires when row `index` of `total` begins simulating.
	RowStarted(index, total, procs, size int, configHash string)
	// RowDone fires when the row's results are final.
	RowDone(index, total int, row Row, configHash string)
}

// nodeParallelism resolves the per-machine worker bound for a sweep of
// nJobs configurations under the shared-budget rule documented on RunOpts.
func (o RunOpts) nodeParallelism(nJobs int) int {
	if o.NodeParallelism != 0 {
		return o.NodeParallelism
	}
	budget := o.Parallelism
	if budget <= 1 {
		// Sequential sweep: the whole budget concept is moot; let each
		// machine use its own default (GOMAXPROCS).
		return 0
	}
	configPar := budget
	if nJobs < configPar {
		configPar = nJobs
	}
	if configPar < 1 {
		configPar = 1
	}
	nodePar := budget / configPar
	if nodePar < 1 {
		nodePar = 1
	}
	return nodePar
}

// Run executes the sweep on up to parallelism concurrent simulations
// (<=0 = sequential). Row order is independent of parallelism; cancelling
// ctx abandons unstarted configurations and returns ctx.Err().
func Run(ctx context.Context, spec Spec, parallelism int) (*Result, error) {
	return RunWith(ctx, spec, RunOpts{Parallelism: parallelism})
}

// RunWith is Run with explicit execution options.
func RunWith(ctx context.Context, spec Spec, opts RunOpts) (*Result, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	dk, _ := distKind(spec.Dist)
	ck, _ := cacheKind(spec.Cache)

	b, err := scene.ByName(spec.Scene, spec.Scale)
	if err != nil {
		return nil, err
	}
	sc, err := b.Build()
	if err != nil {
		return nil, err
	}

	mkConfig := func(procs, size int) core.Config {
		return core.Config{
			Procs:          procs,
			Distribution:   dk,
			TileSize:       size,
			CacheKind:      ck,
			Bus:            memory.BusConfig{TexelsPerCycle: spec.Bus},
			TriangleBuffer: spec.Buffer,
		}
	}

	type job struct{ procs, size int }
	var jobs []job
	for _, p := range spec.Procs {
		for _, w := range spec.Sizes {
			jobs = append(jobs, job{p, w})
		}
	}
	nodePar := opts.nodeParallelism(len(jobs))

	// One-processor baseline for the speedup column; with one processor
	// every tile maps to node 0, so the tile size is irrelevant and one
	// baseline serves all rows. Nothing else runs yet, so the baseline may
	// use the whole worker budget.
	baseM, err := core.NewMachine(sc, mkConfig(1, spec.Sizes[0]))
	if err != nil {
		return nil, err
	}
	if opts.Parallelism > 1 {
		baseM.SetNodeParallelism(opts.Parallelism)
	}
	baseRes, err := baseM.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	rows := make([]Row, len(jobs))
	var flights []Flight
	if spec.Flight {
		flights = make([]Flight, len(jobs))
	}
	err = par.ForEach(ctx, opts.Parallelism, len(jobs), func(i int) error {
		var rowHash string
		if opts.Progress != nil {
			rowHash = spec.RowHash(jobs[i].procs, jobs[i].size)
			opts.Progress.RowStarted(i, len(jobs), jobs[i].procs, jobs[i].size, rowHash)
		}
		cfg := mkConfig(jobs[i].procs, jobs[i].size)
		m, err := core.NewMachine(sc, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", cfg.Name(), err)
		}
		m.SetNodeParallelism(nodePar)
		var rec *flight.Recorder
		if spec.Flight {
			rec = m.EnableFlightRecorder(spec.FlightInterval)
		}
		res, err := m.RunContext(ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", cfg.Name(), err)
		}
		if rec != nil {
			tr, err := rec.Trace()
			if err != nil {
				return fmt.Errorf("%s: rendering flight trace: %w", cfg.Name(), err)
			}
			flights[i] = Flight{Procs: jobs[i].procs, Size: jobs[i].size,
				Summary: rec.Summary(), Trace: tr}
		}
		var stall float64
		for n := range res.Nodes {
			stall += res.Nodes[n].StallCycles
		}
		rows[i] = Row{
			Scene:          sc.Name,
			Dist:           spec.Dist,
			Procs:          jobs[i].procs,
			Size:           jobs[i].size,
			Cycles:         res.Cycles,
			Speedup:        baseRes.Cycles / res.Cycles,
			TexelPerFrag:   res.TexelToFragment(),
			PixelImbalance: res.PixelImbalance(),
			StallCycles:    stall,
			Frags:          res.Fragments,
		}
		if opts.Progress != nil {
			opts.Progress.RowDone(i, len(jobs), rows[i], rowHash)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &Result{Spec: spec, Rows: rows, Flights: flights}
	for i := range rows {
		out.SimulatedCycles += rows[i].Cycles
	}
	return out, nil
}

// CSVHeader is the column order of WriteCSV, matching Row's fields.
var CSVHeader = []string{"scene", "dist", "procs", "size", "cycles",
	"speedup", "texel_per_frag", "pixel_imbalance", "stall_cycles", "frags"}

// WriteCSV writes the rows as RFC-4180 CSV with a header line — the
// texsweep output format.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Scene, r.Dist,
			strconv.Itoa(r.Procs), strconv.Itoa(r.Size),
			strconv.FormatFloat(r.Cycles, 'f', 0, 64),
			strconv.FormatFloat(r.Speedup, 'f', 2, 64),
			strconv.FormatFloat(r.TexelPerFrag, 'f', 3, 64),
			strconv.FormatFloat(r.PixelImbalance, 'f', 4, 64),
			strconv.FormatFloat(r.StallCycles, 'f', 0, 64),
			strconv.FormatUint(r.Frags, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the full result (spec + rows) as one indented JSON
// document, byte-identical to what the texsimd result endpoint serves.
func WriteJSON(w io.Writer, res *Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

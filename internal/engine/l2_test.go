package engine

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/memory"
	"repro/internal/raster"
	"repro/internal/texture"
)

func TestL2ZeroValueAccessors(t *testing.T) {
	e, _ := newTestEngine(cache.New(cache.PaperConfig()), memory.BusConfig{})
	if s := e.L2Stats(); s.Accesses != 0 || s.Misses != 0 {
		t.Errorf("L2 stats without L2 = %+v", s)
	}
	if s := e.MainBusStats(); s.LinesFetched != 0 {
		t.Errorf("main bus stats without L2 = %+v", s)
	}
}

func TestL2FiltersMainTraffic(t *testing.T) {
	mgr := texture.NewManager()
	tex := mgr.MustAdd(128, 128)
	l1 := cache.New(cache.Config{SizeBytes: 4096, Ways: 4, LineBytes: 64})
	l2 := cache.New(cache.Config{SizeBytes: 1 << 20, Ways: 8, LineBytes: 64})
	e := New(0, DefaultSetupCycles, l1, memory.NewBus(memory.BusConfig{}))
	e.AttachL2(l2, memory.NewBus(memory.BusConfig{}))

	// 16 rows × 128 px at identity density touch ~10 KB of texels: well
	// beyond the 4 KB L1, comfortably inside the 1 MB L2.
	var spans []raster.Span
	for y := 0; y < 16; y++ {
		spans = append(spans, raster.Span{Y: y, X0: 0, X1: 128})
	}
	e.ProcessTriangle(0, identityWork(tex, spans...))
	// Cold pass: every L1 miss probes L2; L2 misses all (compulsory), so
	// main lines equal L2 misses equal L1 misses.
	if e.L2Stats().Accesses != e.CacheStats().Misses {
		t.Errorf("L2 accesses %d != L1 misses %d",
			e.L2Stats().Accesses, e.CacheStats().Misses)
	}
	if e.MainBusStats().LinesFetched != e.L2Stats().Misses {
		t.Errorf("main lines %d != L2 misses %d",
			e.MainBusStats().LinesFetched, e.L2Stats().Misses)
	}
	coldMain := e.MainBusStats().LinesFetched

	// Second pass over the same texels: the tiny L1 re-misses (its 4 KB
	// cannot hold the 128x128 footprint) but the large L2 holds everything,
	// so no new main traffic.
	e.ProcessTriangle(e.Time(), identityWork(tex, spans...))
	if e.CacheStats().Misses == coldMain {
		t.Error("L1 did not re-miss on the second pass (test premise broken)")
	}
	if e.MainBusStats().LinesFetched != coldMain {
		t.Errorf("warm pass fetched %d more main lines",
			e.MainBusStats().LinesFetched-coldMain)
	}
}

func TestL2SlowMainBusDelays(t *testing.T) {
	mgr := texture.NewManager()
	tex := mgr.MustAdd(128, 128)
	mk := func(mainRatio float64) float64 {
		l1 := cache.New(cache.PaperConfig())
		l2 := cache.New(cache.Config{SizeBytes: 1 << 20, Ways: 8, LineBytes: 64})
		e := New(0, DefaultSetupCycles, l1, memory.NewBus(memory.BusConfig{TexelsPerCycle: 2}))
		e.AttachL2(l2, memory.NewBus(memory.BusConfig{TexelsPerCycle: mainRatio}))
		var spans []raster.Span
		for y := 0; y < 32; y++ {
			spans = append(spans, raster.Span{Y: y, X0: 0, X1: 128})
		}
		return e.ProcessTriangle(0, identityWork(tex, spans...))
	}
	fast := mk(0)    // infinite main bus
	slow := mk(0.25) // quarter-texel-per-cycle main bus
	if slow <= fast {
		t.Errorf("slow main bus (%v) not slower than infinite (%v)", slow, fast)
	}
}

func TestL2Reset(t *testing.T) {
	mgr := texture.NewManager()
	tex := mgr.MustAdd(64, 64)
	l1 := cache.New(cache.PaperConfig())
	l2 := cache.New(cache.Config{SizeBytes: 1 << 18, Ways: 4, LineBytes: 64})
	e := New(0, DefaultSetupCycles, l1, memory.NewBus(memory.BusConfig{}))
	e.AttachL2(l2, memory.NewBus(memory.BusConfig{TexelsPerCycle: 1}))
	e.ProcessTriangle(0, identityWork(tex, raster.Span{Y: 0, X0: 0, X1: 64}))
	e.Reset()
	if e.L2Stats().Accesses != 0 || e.MainBusStats().LinesFetched != 0 {
		t.Error("L2/main bus not reset")
	}
}

func TestAdvanceTo(t *testing.T) {
	e, tex := newTestEngine(cache.NewPerfect(), memory.BusConfig{})
	e.ProcessTriangle(0, identityWork(tex, raster.Span{Y: 0, X0: 0, X1: 50}))
	e.AdvanceTo(200)
	if e.Time() != 200 {
		t.Errorf("AdvanceTo forward failed: %v", e.Time())
	}
	e.AdvanceTo(100) // never moves backwards
	if e.Time() != 200 {
		t.Errorf("AdvanceTo moved clock backwards: %v", e.Time())
	}
	// Next triangle starts at the barrier.
	done := e.ProcessTriangle(0, identityWork(tex, raster.Span{Y: 1, X0: 0, X1: 50}))
	if done != 250 {
		t.Errorf("post-barrier triangle finished at %v, want 250", done)
	}
}

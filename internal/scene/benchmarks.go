package scene

import (
	"fmt"

	"repro/internal/trace"
)

// Target is one row of the paper's Table 1: the published characteristics a
// synthesized scene is tuned to reproduce.
type Target struct {
	Name            string
	Width, Height   int
	MPixels         float64 // pixels rendered, millions
	DepthComplexity float64
	Triangles       int
	Textures        int
	TextureMB       float64 // paper's value; see note on texel size below
	UniqueTexelFrag float64
}

// Table1 holds the published benchmark characteristics verbatim.
//
// Note on TextureMB: the paper's texture sizes are only mutually consistent
// with its unique-texel ratios if its traces stored ~16-bit texels (e.g.
// quake: 5.2 MB of textures cannot contain the 2.6 M unique 4-byte texels a
// 1.3 ratio over 2 M fragments requires). Our textures always hold the
// 4-byte texels the cache specification uses, so our footprints in bytes run
// ~2-4× the paper's MB column while matching its *texel counts*; the ratio
// column — what the cache experiments depend on — is matched directly.
var Table1 = []Target{
	{"room3", 1280, 1024, 13, 9.9, 163000, 24, 1.5, 0.28},
	{"teapot.full", 1280, 1024, 2.8, 2.1, 10000, 1, 6, 1.13},
	{"quake", 1152, 870, 2, 1.9, 7400, 954, 5.2, 1.3},
	{"massive11255", 1600, 1200, 8, 4.1, 13000, 1055, 1, 0.13},
	{"32massive11255", 1600, 1200, 8, 4.1, 13000, 1055, 3.4, 0.42},
	{"blowout775", 1600, 1200, 5.9, 3, 5947, 1778, 0.8, 0.1},
	{"truc640", 1600, 1200, 8.3, 4.3, 12195, 1530, 1.2, 0.15},
}

// Benchmark couples a Table 1 target with the synthesizer parameters tuned
// to hit it.
type Benchmark struct {
	Target Target
	Params Params
}

// Benchmarks returns the seven paper scenes in Table 1 order, parameterized
// at the given resolution scale (1 = the paper's full frames; benchmarks and
// quick tests use 0.25–0.5).
func Benchmarks(scale float64) []Benchmark {
	mk := func(t Target, p Params) Benchmark {
		p.Name = t.Name
		p.Width = t.Width
		p.Height = t.Height
		p.Triangles = t.Triangles
		p.DepthComplexity = t.DepthComplexity
		p.Textures = t.Textures
		p.Scale = scale
		return Benchmark{Target: t, Params: p}
	}
	return []Benchmark{
		// room3: architectural micro-benchmark from [Vartanian et al. 98] —
		// extreme overdraw (DC 9.9), very fine tessellation (80 px/triangle),
		// few large wall textures tiled heavily (unique 0.28).
		mk(Table1[0], Params{
			Seed: 1003, TexSize: 512, TexelDensity: 0.66, FreshFraction: 0.50,
			HotSpots: 6, HotSpotShare: 0.35, PatchSide: 110,
		}),
		// teapot.full: a single tessellated object with one huge texture
		// mapped almost entirely uniquely (unique 1.13) — the cache-hostile
		// extreme of Figure 6.
		mk(Table1[1], Params{
			Seed: 1013, TexSize: 2048, TexelDensity: 1.03, FreshFraction: 0.97,
			HotSpots: 1, HotSpotShare: 0.45,
		}),
		// quake: Quake1 bigass1 demo frame, magnified ×4 — many small
		// textures sampled near 1 texel/pixel, little reuse (unique 1.3).
		mk(Table1[2], Params{
			Seed: 1023, TexSize: 64, TexelDensity: 1.55, FreshFraction: 0.92,
			HotSpots: 4, HotSpotShare: 0.25, PatchSide: 60,
		}),
		// massive11255: the SPEC Quake2 network demo's most complex frame,
		// magnified ×2 only — textures still mostly magnified (density ≪ 1),
		// hence the lowest unique ratios of the suite.
		mk(Table1[3], Params{
			Seed: 1033, TexSize: 32, TexelDensity: 0.44, FreshFraction: 0.80,
			HotSpots: 8, HotSpotShare: 0.40, PatchSide: 75,
		}),
		// 32massive11255: the same frame magnified ×32 — the "future
		// texture detail" variant; density and texture sizes roughly double.
		mk(Table1[4], Params{
			Seed: 1033, TexSize: 64, TexelDensity: 0.80, FreshFraction: 0.80,
			HotSpots: 8, HotSpotShare: 0.40, PatchSide: 75,
		}),
		// blowout775: Half-Life demo frame — the smallest texture working
		// set (unique 0.1); the scene whose aggregate-cache effect the paper
		// notes at high processor counts.
		mk(Table1[5], Params{
			Seed: 1043, TexSize: 16, TexelDensity: 0.50, FreshFraction: 0.78,
			HotSpots: 6, HotSpotShare: 0.20, PatchSide: 58,
		}),
		// truc640: Half-Life demo frame, heavier than blowout775.
		mk(Table1[6], Params{
			Seed: 1053, TexSize: 32, TexelDensity: 0.48, FreshFraction: 0.80,
			HotSpots: 8, HotSpotShare: 0.40, PatchSide: 70,
		}),
	}
}

// ByName returns the named benchmark at the given scale.
func ByName(name string, scale float64) (Benchmark, error) {
	for _, b := range Benchmarks(scale) {
		if b.Target.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("scene: unknown benchmark %q", name)
}

// Names returns the benchmark names in Table 1 order.
func Names() []string {
	names := make([]string, len(Table1))
	for i, t := range Table1 {
		names[i] = t.Name
	}
	return names
}

// Build generates the benchmark's scene.
func (b Benchmark) Build() (*trace.Scene, error) {
	return Generate(b.Params)
}

// MustBuild generates the scene and panics on error; for tests and examples
// with known-good parameters.
func (b Benchmark) MustBuild() *trace.Scene {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}

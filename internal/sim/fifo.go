package sim

import "fmt"

// FIFO is a bounded single-producer single-consumer queue between two
// simulated components. It models the hardware FIFOs of the paper's node
// diagram (the triangle FIFO in front of the setup engine): a full FIFO
// back-pressures the producer, an empty FIFO starves the consumer.
//
// Producer and consumer register at most one wake-up callback each; the FIFO
// schedules the callback on the simulator as soon as the blocking condition
// clears. Callbacks run as fresh events at the current time, never
// synchronously, so components cannot re-enter each other.
type FIFO[T any] struct {
	sim   *Simulator
	buf   []T
	head  int // index of the oldest element
	count int

	onSpace Event // producer waiting for room
	onItem  Event // consumer waiting for data

	// Peak tracks the maximum occupancy ever observed, useful for sizing
	// studies.
	Peak int
}

// NewFIFO returns a FIFO with the given capacity registered on s.
func NewFIFO[T any](s *Simulator, capacity int) *FIFO[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: FIFO capacity must be positive, got %d", capacity))
	}
	return &FIFO[T]{sim: s, buf: make([]T, capacity)}
}

// Cap returns the FIFO capacity.
func (f *FIFO[T]) Cap() int { return len(f.buf) }

// Len returns the current occupancy.
func (f *FIFO[T]) Len() int { return f.count }

// Full reports whether a push would fail.
func (f *FIFO[T]) Full() bool { return f.count == len(f.buf) }

// Empty reports whether a pop would fail.
func (f *FIFO[T]) Empty() bool { return f.count == 0 }

// TryPush appends v if there is room and reports whether it did. A waiting
// consumer is woken.
func (f *FIFO[T]) TryPush(v T) bool {
	if f.Full() {
		return false
	}
	tail := (f.head + f.count) % len(f.buf)
	f.buf[tail] = v
	f.count++
	if f.count > f.Peak {
		f.Peak = f.count
	}
	if f.onItem != nil {
		fn := f.onItem
		f.onItem = nil
		f.sim.After(0, fn)
	}
	return true
}

// TryPop removes and returns the oldest element. A waiting producer is woken.
func (f *FIFO[T]) TryPop() (T, bool) {
	var zero T
	if f.Empty() {
		return zero, false
	}
	v := f.buf[f.head]
	f.buf[f.head] = zero
	f.head = (f.head + 1) % len(f.buf)
	f.count--
	if f.onSpace != nil {
		fn := f.onSpace
		f.onSpace = nil
		f.sim.After(0, fn)
	}
	return v, true
}

// WaitSpace registers the producer's wake-up. If the FIFO already has room
// the callback fires immediately (as a zero-delay event). Only one producer
// callback may be outstanding.
func (f *FIFO[T]) WaitSpace(fn Event) {
	if f.onSpace != nil {
		panic("sim: FIFO already has a waiting producer")
	}
	if !f.Full() {
		f.sim.After(0, fn)
		return
	}
	f.onSpace = fn
}

// WaitItem registers the consumer's wake-up. If the FIFO already has data the
// callback fires immediately (as a zero-delay event). Only one consumer
// callback may be outstanding.
func (f *FIFO[T]) WaitItem(fn Event) {
	if f.onItem != nil {
		panic("sim: FIFO already has a waiting consumer")
	}
	if !f.Empty() {
		f.sim.After(0, fn)
		return
	}
	f.onItem = fn
}

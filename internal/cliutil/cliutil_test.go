package cliutil

import (
	"reflect"
	"testing"
)

func TestParseIntList(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{"1,4,16", []int{1, 4, 16}, false},
		{" 8 , 2 ", []int{8, 2}, false},
		{"7", []int{7}, false},
		{"1,,2", []int{1, 2}, false},
		{"", nil, true},
		{" , ", nil, true},
		{"1,x", nil, true},
		{"3.5", nil, true},
	}
	for _, c := range cases {
		got, err := ParseIntList(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseIntList(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseIntList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParsePositiveIntList(t *testing.T) {
	got, err := ParsePositiveIntList("1, 4,16")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 16 {
		t.Errorf("ParsePositiveIntList = %v, %v", got, err)
	}
	for _, bad := range []string{"", " , ", "1,x", "1,0,4", "1,-4"} {
		if _, err := ParsePositiveIntList(bad); err == nil {
			t.Errorf("ParsePositiveIntList(%q) accepted", bad)
		}
	}
}

func TestParseNonNegativeFloatList(t *testing.T) {
	got, err := ParseNonNegativeFloatList("0, 0.5 ,2")
	if err != nil || !reflect.DeepEqual(got, []float64{0, 0.5, 2}) {
		t.Errorf("ParseNonNegativeFloatList = %v, %v", got, err)
	}
	for _, bad := range []string{"", " , ", "1,x", "0.5,-1"} {
		if _, err := ParseNonNegativeFloatList(bad); err == nil {
			t.Errorf("ParseNonNegativeFloatList(%q) accepted", bad)
		}
	}
}

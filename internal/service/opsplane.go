package service

// The live ops plane's HTTP surface: the SSE job-progress stream, the
// time-series query endpoint over the ring sampler, and the fleet-wide
// metrics view that fans out to every cluster peer. The dashboard at
// /debug/dash (dash.go) is a client of all three.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/par"
)

// handleEvents streams one job's progress events as Server-Sent Events.
// The stream replays from event 0 by default; a reconnecting client sends
// the standard Last-Event-ID header (or ?from=N) to resume after the last
// event it saw — sequence numbers are dense, so the replay is gapless. The
// stream ends with the job's terminal event ("done", "failed", "canceled",
// or "shutdown" when the server drains under it), or when the client
// disconnects, which cancels the subscription via the request context.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.snapshot(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", id))
		return
	}
	from := int64(0)
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("malformed Last-Event-ID %q", v))
			return
		}
		from = n + 1 // resume after the last event the client saw
	} else if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("malformed from %q", v))
			return
		}
		from = n
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	rc.Flush()

	s.mProgStream.Add(1)
	defer s.mProgStream.Add(-1)

	sub := s.progress.Subscribe(id, from)
	ctx := r.Context()
	for {
		ev, ok := sub.Next(ctx)
		if !ok {
			return // client gone, or the log drained past its terminal event
		}
		data, err := json.Marshal(ev)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return
		}
		rc.Flush()
		if ev.Terminal() {
			return
		}
	}
}

// parseSince accepts an RFC3339 timestamp, unix seconds, or a relative
// duration meaning "that long ago" ("5m" = the last five minutes).
func parseSince(v string) (time.Time, error) {
	if t, err := time.Parse(time.RFC3339, v); err == nil {
		return t, nil
	}
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
		return time.Unix(secs, 0), nil
	}
	if d, err := time.ParseDuration(v); err == nil && d > 0 {
		return time.Now().Add(-d), nil
	}
	return time.Time{}, fmt.Errorf("want RFC3339, unix seconds or a relative duration")
}

// handleMetricsQuery serves the sampled time series: ?name=<series> with
// an optional since=<RFC3339|unix-seconds|duration>. Without a name it
// lists the sampled series names — the dashboard's discovery call.
func (s *Server) handleMetricsQuery(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeJSON(w, http.StatusOK, map[string]any{
			"names":            s.sampler.Names(),
			"interval_seconds": s.cfg.SampleInterval.Seconds(),
			"capacity":         s.sampler.Capacity(),
		})
		return
	}
	var since time.Time
	if v := r.URL.Query().Get("since"); v != "" {
		t, err := parseSince(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("malformed since %q: %w", v, err))
			return
		}
		since = t
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":             name,
		"interval_seconds": s.cfg.SampleInterval.Seconds(),
		"series":           s.sampler.Query(name, since),
	})
}

// localNodeMetrics builds this node's operational snapshot — the same
// numbers /metrics exports, shaped for fleet merging.
func (s *Server) localNodeMetrics() cluster.NodeMetrics {
	s.syncMirroredMetrics()
	st := s.cache.Stats()
	nm := cluster.NodeMetrics{
		Queued:          s.q.len(),
		Running:         int(s.mRunning.Value()),
		Workers:         s.cfg.Workers,
		QueueDepth:      s.q.depth(),
		CacheHits:       st.Hits,
		CacheMisses:     st.Misses,
		CacheRemoteHits: st.RemoteHits,
		CacheEvictions:  st.Evictions,
		CacheEntries:    s.cache.Len(),
		SimulatedCycles: float64(s.mSimCycles.Value()),
		CyclesPerSecond: s.mCPS.Value(),
		ProgressEvents:  s.progress.TotalEvents(),
	}
	if lookups := st.Hits + st.RemoteHits + st.Misses; lookups > 0 {
		nm.CacheHitRatio = float64(st.Hits+st.RemoteHits) / float64(lookups)
	}
	if cl := s.cfg.Cluster; cl != nil {
		nm.Addr = cl.Self()
		cs := cl.Stats()
		nm.Cluster = &cs
	}
	return nm
}

// handleNodeMetrics serves this node's snapshot to peers — the per-node
// half of the /cluster/metrics fan-out.
func (s *Server) handleNodeMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.localNodeMetrics())
}

// fleetNode is one row of the /cluster/metrics fleet table: a node's
// snapshot, or its address with a stale marker when the node could not be
// asked live.
type fleetNode struct {
	cluster.NodeMetrics
	Stale bool   `json:"stale,omitempty"`
	Error string `json:"error,omitempty"`
}

// fleetTotals is the merged roll-up over the nodes that answered.
type fleetTotals struct {
	Nodes           int     `json:"nodes"`
	Live            int     `json:"live"`
	Stale           int     `json:"stale"`
	Queued          int     `json:"queued"`
	Running         int     `json:"running"`
	Workers         int     `json:"workers"`
	CacheHits       uint64  `json:"cache_hits"`
	CacheMisses     uint64  `json:"cache_misses"`
	CacheRemoteHits uint64  `json:"cache_remote_hits"`
	CacheHitRatio   float64 `json:"cache_hit_ratio"`
	SimulatedCycles float64 `json:"simulated_cycles"`
	CyclesPerSecond float64 `json:"cycles_per_second"`
	ProgressEvents  int64   `json:"progress_events"`
	Forwards        int64   `json:"forwards"`
	StealsTaken     int64   `json:"steals_taken"`
	Failovers       int64   `json:"failovers"`
}

// handleClusterMetrics serves the fleet view: this node's snapshot plus a
// concurrent fan-out to every configured peer (each fetch bounded by the
// cluster's CallTimeout), merged into one document. A peer that fails to
// answer appears with stale=true and its error — partial results beat no
// results when a node is down, which is exactly when an operator is
// looking. Standalone servers get a one-node fleet.
func (s *Server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	nodes := []fleetNode{{NodeMetrics: s.localNodeMetrics()}}
	if cl := s.cfg.Cluster; cl != nil {
		self := cl.Self()
		var peers []string
		for _, m := range cl.Members() {
			if m != self {
				peers = append(peers, m)
			}
		}
		results := make([]fleetNode, len(peers))
		// Index-disjoint writes; the whole fan-out costs at most one
		// CallTimeout even with several dead peers.
		par.ForEach(r.Context(), len(peers), len(peers), func(i int) error {
			nm, err := cl.FetchNodeMetrics(r.Context(), peers[i])
			if err != nil {
				results[i] = fleetNode{
					NodeMetrics: cluster.NodeMetrics{Addr: peers[i]},
					Stale:       true,
					Error:       err.Error(),
				}
				return nil
			}
			nm.Addr = peers[i] // our peer table names the node, not its own view
			results[i] = fleetNode{NodeMetrics: nm}
			return nil
		})
		nodes = append(nodes, results...)
	}

	var tot fleetTotals
	tot.Nodes = len(nodes)
	var lookups, served uint64
	for _, n := range nodes {
		if n.Stale {
			tot.Stale++
			continue
		}
		tot.Live++
		tot.Queued += n.Queued
		tot.Running += n.Running
		tot.Workers += n.Workers
		tot.CacheHits += n.CacheHits
		tot.CacheMisses += n.CacheMisses
		tot.CacheRemoteHits += n.CacheRemoteHits
		served += n.CacheHits + n.CacheRemoteHits
		lookups += n.CacheHits + n.CacheRemoteHits + n.CacheMisses
		tot.SimulatedCycles += n.SimulatedCycles
		tot.CyclesPerSecond += n.CyclesPerSecond
		tot.ProgressEvents += n.ProgressEvents
		if n.Cluster != nil {
			tot.Forwards += n.Cluster.ForwardsRoute + n.Cluster.ForwardsSpill + n.Cluster.ForwardsFailover
			tot.StealsTaken += n.Cluster.StealsTaken
			tot.Failovers += n.Cluster.Failovers
		}
	}
	if lookups > 0 {
		tot.CacheHitRatio = float64(served) / float64(lookups)
	}
	writeJSON(w, http.StatusOK, map[string]any{"nodes": nodes, "fleet": tot})
}

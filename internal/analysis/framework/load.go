package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load enumerates and type-checks the packages matching patterns (relative
// to dir), excluding test files. It shells out to `go list -export -deps`
// so dependencies — the standard library included — are imported from
// compiled export data rather than re-type-checked from source, which keeps
// a whole-module run fast and fully offline.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exportFiles := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exportFiles[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			cp := p
			targets = append(targets, &cp)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exportFiles)
	var out []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// exportImporter imports dependencies from gc export data via the lookup
// hook, so no dependency source is ever re-type-checked.
func exportImporter(fset *token.FileSet, exportFiles map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exportFiles[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// checkPackage parses and type-checks one package from explicit file names.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// LoadFromFiles type-checks one package given explicit Go files and an
// importer lookup from import path to gc export data — the shape of the
// information `go vet` hands a -vettool (see cmd/texlint's unitchecker
// mode).
func LoadFromFiles(importPath string, goFiles []string, exportFiles map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	imp := exportImporter(fset, exportFiles)
	return checkPackage(fset, imp, importPath, "", goFiles)
}

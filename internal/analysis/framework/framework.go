// Package framework is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough driver machinery to run
// AST+types analyzers over this module's packages. It exists because the
// repository is stdlib-only by policy — the real analysis framework would be
// the first external dependency — and because the four texlint analyzers
// (determinism, ctxfirst, locksafe, metriclint) need nothing beyond parsed
// files, type information and a diagnostic sink.
//
// The moving parts mirror x/tools deliberately so the analyzers could be
// ported to the real framework later with mechanical edits: an Analyzer has
// a Name, Doc and Run func; Run receives a *Pass carrying the package's
// files, *types.Package and *types.Info and reports through Pass.Reportf.
//
// Suppression: a diagnostic is dropped when the line it lands on, or the
// line above it, carries a comment of the form
//
//	//texlint:ignore name1,name2 reason...
//	//texlint:ignore all reason...
//
// naming the analyzer. The reason is mandatory: a directive without one is
// itself a diagnostic, and so is a stale directive — one that names an
// analyzer in the run set yet suppresses nothing. Both are reported under
// the reserved analyzer name "suppression" and cannot themselves be
// suppressed, which keeps the suppression inventory honest over time.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore comments.
	Name string
	// Doc is a one-paragraph description, shown by texlint -help.
	Doc string
	// Run executes the check and reports findings through the pass.
	Run func(*Pass) error
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when the type checker recorded none.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// ObjectOf resolves an identifier to its object (definition or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return p.TypesInfo.Uses[id]
}

// Diagnostic is one finding, positioned in the file set it came from.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// ignoreRe matches texlint suppression comments. The directive must open
// the comment: `//texlint:ignore determinism reason...`. The trailing text
// is the justification, required by the suppression checker.
var ignoreRe = regexp.MustCompile(`^//\s*texlint:ignore\s+([a-zA-Z0-9_,]+)[ \t]*(.*)$`)

// SuppressionName is the reserved analyzer name under which directive
// hygiene findings (missing justification, stale directive) are reported.
// Those findings bypass the suppression filter by construction, so a stale
// directive cannot hide itself behind another directive.
const SuppressionName = "suppression"

// ignoreDirective is one parsed suppression comment. used flips when it
// absorbs at least one diagnostic during a run.
type ignoreDirective struct {
	pos    token.Position
	names  map[string]bool
	reason string
	used   bool
}

// ignoreIndex records, per file and line, which directives cover the line.
type ignoreIndex struct {
	directives []*ignoreDirective
	byLine     map[string]map[int][]*ignoreDirective
}

func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) *ignoreIndex {
	idx := &ignoreIndex{byLine: make(map[string]map[int][]*ignoreDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				dir := &ignoreDirective{
					pos:    pos,
					names:  make(map[string]bool),
					reason: strings.TrimSpace(m[2]),
				}
				for _, n := range strings.Split(m[1], ",") {
					dir.names[strings.TrimSpace(n)] = true
				}
				idx.directives = append(idx.directives, dir)
				byLine := idx.byLine[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*ignoreDirective)
					idx.byLine[pos.Filename] = byLine
				}
				// The comment covers its own line and the next, so both
				// trailing (`stmt //texlint:ignore x`) and standalone
				// (`//texlint:ignore x` above the stmt) placements work.
				for _, line := range []int{pos.Line, pos.Line + 1} {
					byLine[line] = append(byLine[line], dir)
				}
			}
		}
	}
	return idx
}

func (idx *ignoreIndex) suppressed(d Diagnostic) bool {
	hit := false
	for _, dir := range idx.byLine[d.Pos.Filename][d.Pos.Line] {
		if dir.names[d.Analyzer] || dir.names["all"] {
			dir.used = true
			hit = true
		}
	}
	return hit
}

// staleDiagnostics reports directive hygiene after a run: directives with no
// justification, and directives that name an analyzer that ran (or "all")
// yet suppressed nothing. Directives aimed only at analyzers outside the run
// set are left alone — texlint runs scoped subsets per package, and a
// directive for an out-of-scope analyzer is not evidence of staleness.
func (idx *ignoreIndex) staleDiagnostics(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, dir := range idx.directives {
		var names []string
		for n := range dir.names {
			names = append(names, n)
		}
		sort.Strings(names)
		label := strings.Join(names, ",")
		if dir.reason == "" {
			out = append(out, Diagnostic{
				Analyzer: SuppressionName,
				Pos:      dir.pos,
				Message:  fmt.Sprintf("//texlint:ignore %s needs a justification after the analyzer name(s)", label),
			})
		}
		if dir.used {
			continue
		}
		relevant := dir.names["all"]
		for n := range ran {
			if dir.names[n] {
				relevant = true
			}
		}
		if relevant {
			out = append(out, Diagnostic{
				Analyzer: SuppressionName,
				Pos:      dir.pos,
				Message:  fmt.Sprintf("unused //texlint:ignore %s: nothing fires on this or the next line; remove the stale directive", label),
			})
		}
	}
	return out
}

// RunAnalyzers applies each analyzer to the package and returns the
// surviving (non-suppressed) diagnostics sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	idx := buildIgnoreIndex(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report: func(d Diagnostic) {
				if !idx.suppressed(d) {
					out = append(out, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzing %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	out = append(out, idx.staleDiagnostics(ran)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// NewInfo returns a fully-populated types.Info ready for Check.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

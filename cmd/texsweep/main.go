// Command texsweep runs custom parameter sweeps over the simulator and
// emits one CSV row per configuration — the open-ended counterpart of
// texbench's fixed paper experiments.
//
// Example: reproduce the spirit of Figure 7 for one scene:
//
//	texsweep -scene truc640 -scale 0.5 -procs 4,16,64 \
//	         -dist block -sizes 4,8,16,32,64 -bus 1 -o sweep.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/texsim"
)

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad list element %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func main() {
	var (
		sceneName = flag.String("scene", "truc640", "benchmark scene")
		scale     = flag.Float64("scale", 0.5, "resolution scale")
		procsList = flag.String("procs", "1,4,16,64", "processor counts (comma-separated)")
		dist      = flag.String("dist", "block", "distribution: block or sli")
		sizesList = flag.String("sizes", "4,8,16,32,64", "tile sizes (comma-separated)")
		busRatio  = flag.Float64("bus", 1, "bus texels per pixel-cycle (0 = infinite)")
		cacheKind = flag.String("cache", "real", "cache model: real, perfect or none")
		buffer    = flag.Int("buffer", 0, "triangle buffer entries (0 = paper default)")
		outPath   = flag.String("o", "", "output CSV file (default stdout)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "texsweep: %v\n", err)
		os.Exit(1)
	}

	procs, err := parseIntList(*procsList)
	if err != nil {
		fail(fmt.Errorf("-procs: %w", err))
	}
	sizes, err := parseIntList(*sizesList)
	if err != nil {
		fail(fmt.Errorf("-sizes: %w", err))
	}
	var kind texsim.Config
	switch *dist {
	case "block":
		kind.Distribution = texsim.Block
	case "sli":
		kind.Distribution = texsim.SLI
	default:
		fail(fmt.Errorf("unknown distribution %q", *dist))
	}
	switch *cacheKind {
	case "real":
		kind.CacheKind = texsim.CacheReal
	case "perfect":
		kind.CacheKind = texsim.CachePerfect
	case "none":
		kind.CacheKind = texsim.CacheNone
	default:
		fail(fmt.Errorf("unknown cache model %q", *cacheKind))
	}

	b, err := texsim.LookupBenchmark(*sceneName, *scale)
	if err != nil {
		fail(err)
	}
	sc, err := b.Build()
	if err != nil {
		fail(err)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		out = f
	}
	w := csv.NewWriter(out)
	defer w.Flush()
	if err := w.Write([]string{"scene", "dist", "procs", "size", "cycles",
		"speedup", "texel_per_frag", "pixel_imbalance", "stall_cycles"}); err != nil {
		fail(err)
	}

	// One-processor baselines per size are identical; compute once.
	base := kind
	base.Procs = 1
	base.TileSize = sizes[0]
	base.Bus = texsim.BusConfig{TexelsPerCycle: *busRatio}
	base.TriangleBuffer = *buffer
	baseRes, err := texsim.Simulate(sc, base)
	if err != nil {
		fail(err)
	}

	for _, p := range procs {
		for _, size := range sizes {
			cfg := kind
			cfg.Procs = p
			cfg.TileSize = size
			cfg.Bus = texsim.BusConfig{TexelsPerCycle: *busRatio}
			cfg.TriangleBuffer = *buffer
			res, err := texsim.Simulate(sc, cfg)
			if err != nil {
				fail(fmt.Errorf("%s: %w", cfg.Name(), err))
			}
			var stall float64
			for i := range res.Nodes {
				stall += res.Nodes[i].StallCycles
			}
			rec := []string{
				sc.Name, *dist,
				strconv.Itoa(p), strconv.Itoa(size),
				strconv.FormatFloat(res.Cycles, 'f', 0, 64),
				strconv.FormatFloat(baseRes.Cycles/res.Cycles, 'f', 2, 64),
				strconv.FormatFloat(res.TexelToFragment(), 'f', 3, 64),
				strconv.FormatFloat(res.PixelImbalance(), 'f', 4, 64),
				strconv.FormatFloat(stall, 'f', 0, 64),
			}
			if err := w.Write(rec); err != nil {
				fail(err)
			}
		}
	}
}

package texsim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// ScoredConfig is one candidate machine configuration with its measured
// outcome on a scene.
type ScoredConfig struct {
	Config          Config
	Speedup         float64
	Cycles          float64
	TexelToFragment float64
	PixelImbalance  float64
}

// Recommendation ranks candidate distributions and sizes for one scene on
// one machine substrate (processor count, cache, bus, buffer).
type Recommendation struct {
	// Best is the highest-speedup candidate.
	Best ScoredConfig
	// Ranked lists every candidate, best first.
	Ranked []ScoredConfig
	// SingleProcCycles is the baseline the speedups are relative to.
	SingleProcCycles float64
}

// defaultCandidateSizes mirrors the paper's sweeps.
var (
	advisorBlockWidths = []int{4, 8, 16, 32, 64}
	advisorSLILines    = []int{1, 2, 4, 8, 16}
)

// Recommend sweeps block and SLI distributions across the paper's size
// ranges on the given scene, holding the rest of base (Procs, CacheKind,
// Bus, TriangleBuffer, ...) fixed, and returns the ranked outcomes — the
// decision the paper's designer has to make before taping out. base.Procs
// must be set; base.Distribution and base.TileSize are ignored.
func Recommend(s *Scene, base Config) (*Recommendation, error) {
	if base.Procs <= 1 {
		return nil, fmt.Errorf("texsim: Recommend needs base.Procs > 1, got %d", base.Procs)
	}
	single := base
	single.Procs = 1
	single.TileSize = 16
	single.Distribution = Block
	baseRes, err := Simulate(s, single)
	if err != nil {
		return nil, err
	}

	var candidates []Config
	for _, w := range advisorBlockWidths {
		c := base
		c.Distribution = Block
		c.TileSize = w
		candidates = append(candidates, c)
	}
	for _, l := range advisorSLILines {
		c := base
		c.Distribution = SLI
		c.TileSize = l
		candidates = append(candidates, c)
	}

	scored := make([]ScoredConfig, len(candidates))
	var firstErr error
	var mu sync.Mutex
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	for i, cfg := range candidates {
		wg.Add(1)
		go func(i int, cfg Config) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := Simulate(s, cfg)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			scored[i] = ScoredConfig{
				Config:          cfg,
				Speedup:         baseRes.Cycles / res.Cycles,
				Cycles:          res.Cycles,
				TexelToFragment: res.TexelToFragment(),
				PixelImbalance:  res.PixelImbalance(),
			}
		}(i, cfg)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	sort.SliceStable(scored, func(i, j int) bool { return scored[i].Speedup > scored[j].Speedup })
	return &Recommendation{
		Best:             scored[0],
		Ranked:           scored,
		SingleProcCycles: baseRes.Cycles,
	}, nil
}

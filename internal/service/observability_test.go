package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/sweep"
	"repro/internal/telemetry/logging"
	"repro/internal/telemetry/tracing"
)

// syncBuffer collects log output from worker goroutines safely.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) lines(t *testing.T) []map[string]any {
	t.Helper()
	b.mu.Lock()
	raw := b.buf.String()
	b.mu.Unlock()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(raw), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		out = append(out, rec)
	}
	return out
}

const testTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

// TestTracePropagationEndToEnd follows one request from its traceparent
// header through the queue into the worker: the HTTP span and the job span
// share the caller's trace ID, /debug/traces serves both, and the job's
// structured log lines carry the same request ID and trace ID — the
// correlation contract the observability layer exists for.
func TestTracePropagationEndToEnd(t *testing.T) {
	logs := &syncBuffer{}
	_, ts := newTestServer(t, Config{
		Logger: logging.New(logs, 0 /* info */, "json"),
	})

	body, _ := json.Marshal(tinySweep())
	req, err := http.NewRequest("POST", ts.URL+"/api/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(tracing.TraceparentHeader, testTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d", resp.StatusCode)
	}
	wantTrace := strings.Split(testTraceparent, "-")[1]
	// The response carries the continuation header back.
	if got := resp.Header.Get(tracing.TraceparentHeader); !strings.Contains(got, wantTrace) {
		t.Errorf("response traceparent = %q, want trace %s", got, wantTrace)
	}
	waitDone(t, ts, v.ID)

	// Both the server span and the worker-side job span are in the debug
	// view, on the caller's trace.
	var traces struct {
		Spans []tracing.SpanView `json:"spans"`
	}
	if code := getJSON(t, ts.URL+"/debug/traces?trace="+wantTrace, &traces); code != http.StatusOK {
		t.Fatalf("/debug/traces returned %d", code)
	}
	var httpSpan, jobSpan *tracing.SpanView
	for i := range traces.Spans {
		switch traces.Spans[i].Name {
		case "POST /api/v1/jobs":
			httpSpan = &traces.Spans[i]
		case "job sweep":
			jobSpan = &traces.Spans[i]
		}
	}
	if httpSpan == nil || jobSpan == nil {
		t.Fatalf("missing spans on trace %s: %+v", wantTrace, traces.Spans)
	}
	if httpSpan.ParentID != strings.Split(testTraceparent, "-")[2] {
		t.Errorf("http span parent = %q, want the caller's span ID", httpSpan.ParentID)
	}

	attrs := map[string]string{}
	for _, a := range jobSpan.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["job_id"] != v.ID {
		t.Errorf("job span job_id = %q, want %q", attrs["job_id"], v.ID)
	}
	if attrs["status"] != string(StatusDone) {
		t.Errorf("job span status = %q", attrs["status"])
	}
	requestID := attrs["request_id"]
	if requestID == "" {
		t.Fatal("job span has no request_id")
	}

	// The job's log lines carry the same correlation IDs.
	var finished map[string]any
	for _, rec := range logs.lines(t) {
		if rec["msg"] == "job finished" && rec["job_id"] == v.ID {
			finished = rec
		}
	}
	if finished == nil {
		t.Fatal("no 'job finished' log line for the job")
	}
	if finished["request_id"] != requestID {
		t.Errorf("log request_id = %v, span says %q", finished["request_id"], requestID)
	}
	if finished["trace_id"] != wantTrace {
		t.Errorf("log trace_id = %v, want %s", finished["trace_id"], wantTrace)
	}

	// Queue-wait and per-route latency metrics exist for the flow.
	if n := metricValue(t, ts, `texsimd_http_requests_total{route="submit",code="202"}`); n != 1 {
		t.Errorf("submit request counter = %v", n)
	}
	if n := metricValue(t, ts, `texsimd_job_queue_wait_seconds_count{type="sweep"}`); n != 1 {
		t.Errorf("queue wait count = %v", n)
	}
}

// TestSubmitWithoutTraceparentRootsTrace: requests without a header still
// get spans, on a fresh trace.
func TestSubmitWithoutTraceparentRootsTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	v, code := postJob(t, ts, tinySweep())
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	waitDone(t, ts, v.ID)
	var traces struct {
		Spans []tracing.SpanView `json:"spans"`
	}
	getJSON(t, ts.URL+"/debug/traces", &traces)
	for _, s := range traces.Spans {
		if s.Name == "job sweep" && s.TraceID != "" {
			return
		}
	}
	t.Fatalf("no job span found: %+v", traces.Spans)
}

// TestFlightJobOption submits a sweep with the flight recorder enabled and
// checks the result embeds one recording per configuration, with exact
// phase decompositions and a loadable Chrome trace.
func TestFlightJobOption(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := tinySweep()
	req.Sweep.Flight = true
	v, code := postJob(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	if got := waitDone(t, ts, v.ID); got.Status != StatusDone {
		t.Fatalf("job ended %s: %s", got.Status, got.Error)
	}

	var res sweep.Result
	if code := getJSON(t, ts.URL+"/api/v1/jobs/"+v.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result returned %d", code)
	}
	if len(res.Flights) != len(res.Rows) {
		t.Fatalf("%d flight recordings for %d rows", len(res.Flights), len(res.Rows))
	}
	for i, f := range res.Flights {
		if len(f.Summary) != f.Procs {
			t.Errorf("flight %d: %d node summaries for %d procs", i, len(f.Summary), f.Procs)
		}
		for _, s := range f.Summary {
			sum := s.SetupCycles + s.ScanCycles + s.StallCycles + s.IdleCycles
			if diff := sum - s.TotalCycles; diff > 1e-6 || diff < -1e-6 {
				t.Errorf("flight %d node %d: phases sum to %v, total %v", i, s.Node, sum, s.TotalCycles)
			}
		}
		var doc struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(f.Trace, &doc); err != nil {
			t.Errorf("flight %d trace is not valid JSON: %v", i, err)
		} else if len(doc.TraceEvents) == 0 {
			t.Errorf("flight %d trace has no events", i)
		}
	}

	// The flight flag is part of the cache key: the same sweep without
	// flight must not be answered from this job's cached result.
	plain, code := postJob(t, ts, tinySweep())
	if code != http.StatusAccepted {
		t.Fatal("plain resubmit rejected")
	}
	if got := waitDone(t, ts, plain.ID); got.FromCache {
		t.Error("flight and non-flight sweeps shared a cache entry")
	}
}

package rpchygiene_test

import (
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/rpchygiene"
)

func TestRPCHygiene(t *testing.T) {
	framework.RunTest(t, ".", rpchygiene.Analyzer, "rpc")
}

package trace

import (
	"math/bits"

	"repro/internal/raster"
	"repro/internal/texture"
)

// SceneStats are the per-scene characteristics of the paper's Table 1.
type SceneStats struct {
	Name            string
	ScreenW         int
	ScreenH         int
	PixelsRendered  uint64  // total fragments textured (all depth layers)
	DepthComplexity float64 // PixelsRendered / screen area
	Triangles       int
	Textures        int
	TextureBytes    int     // total texture memory, mip levels included
	UniqueTexels    uint64  // distinct texels touched by trilinear filtering
	UniqueTexelFrag float64 // UniqueTexels / PixelsRendered
}

// Measure rasterizes the whole scene once and returns its Table 1 row:
// fragment count, depth complexity, and the unique texel-to-fragment ratio
// (the bandwidth floor of an ideal cache with compulsory misses only).
func Measure(s *Scene) (SceneStats, error) {
	if err := s.Validate(); err != nil {
		return SceneStats{}, err
	}
	mgr, err := s.BuildTextures()
	if err != nil {
		return SceneStats{}, err
	}
	st := SceneStats{
		Name:         s.Name,
		ScreenW:      s.Screen.Width(),
		ScreenH:      s.Screen.Height(),
		Triangles:    len(s.Triangles),
		Textures:     len(s.Textures),
		TextureBytes: mgr.TotalBytes(),
	}
	seen := newBitset(mgr.TotalTexels())
	r := raster.New(s.Screen)
	var foot [8]texture.Addr
	for i := range s.Triangles {
		t := &s.Triangles[i]
		tex := mgr.Texture(t.TexID)
		lod := t.Tex.LOD()
		r.ForEachSpan(*t, s.Screen, func(sp raster.Span) {
			st.PixelsRendered += uint64(sp.Width())
			xc := float64(sp.X0) + 0.5
			yc := float64(sp.Y) + 0.5
			u := t.Tex.U0 + t.Tex.DuDx*xc + t.Tex.DuDy*yc
			v := t.Tex.V0 + t.Tex.DvDx*xc + t.Tex.DvDy*yc
			for x := sp.X0; x < sp.X1; x++ {
				tex.TrilinearFootprint(u, v, lod, &foot)
				for _, a := range foot {
					seen.set(uint(a) / texture.TexelBytes)
				}
				u += t.Tex.DuDx
				v += t.Tex.DvDx
			}
		})
	}
	st.UniqueTexels = seen.count()
	if st.PixelsRendered > 0 {
		st.UniqueTexelFrag = float64(st.UniqueTexels) / float64(st.PixelsRendered)
	}
	area := s.Screen.Area()
	if area > 0 {
		st.DepthComplexity = float64(st.PixelsRendered) / float64(area)
	}
	return st, nil
}

type bitset struct {
	words []uint64
}

func newBitset(n int) *bitset {
	return &bitset{words: make([]uint64, (n+63)/64)}
}

func (b *bitset) set(i uint) {
	b.words[i>>6] |= 1 << (i & 63)
}

func (b *bitset) count() uint64 {
	var n uint64
	for _, w := range b.words {
		n += uint64(bits.OnesCount64(w))
	}
	return n
}

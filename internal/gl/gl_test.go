package gl

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/trace"
)

var screen = geom.Rect{X0: 0, Y0: 0, X1: 256, Y1: 256}

func newCtx(t *testing.T) (*Context, int32) {
	t.Helper()
	c := NewContext("gltest", screen)
	tex := c.GenTexture(64, 64)
	c.BindTexture(tex)
	return c, tex
}

func TestTrianglesAssembly(t *testing.T) {
	c, _ := newCtx(t)
	c.Begin(Triangles)
	c.TexCoord2f(0, 0)
	c.Vertex2f(0, 0)
	c.TexCoord2f(32, 0)
	c.Vertex2f(32, 0)
	c.TexCoord2f(0, 32)
	c.Vertex2f(0, 32)
	// A trailing incomplete pair must be dropped.
	c.TexCoord2f(0, 0)
	c.Vertex2f(100, 100)
	c.Vertex2f(120, 100)
	c.End()
	s, err := c.Scene()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Triangles) != 1 {
		t.Fatalf("got %d triangles, want 1", len(s.Triangles))
	}
}

func TestStripAssemblyAndWinding(t *testing.T) {
	c, _ := newCtx(t)
	c.Begin(TriangleStrip)
	pts := [][2]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {0, 20}, {10, 20}}
	for _, p := range pts {
		c.TexCoord2f(p[0], p[1])
		c.Vertex2f(p[0], p[1])
	}
	c.End()
	s, err := c.Scene()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Triangles) != 4 {
		t.Fatalf("strip of 6 vertices gave %d triangles, want 4", len(s.Triangles))
	}
	// Total area must equal the swept rectangle 10x20.
	var area float64
	for _, tr := range s.Triangles {
		area += tr.Area()
	}
	if math.Abs(area-200) > 1e-9 {
		t.Errorf("strip area = %v, want 200", area)
	}
}

func TestFanAssembly(t *testing.T) {
	c, _ := newCtx(t)
	c.Begin(TriangleFan)
	c.TexCoord2f(0, 0)
	c.Vertex2f(50, 50) // hub
	for _, p := range [][2]float64{{100, 50}, {100, 100}, {50, 100}, {0, 100}} {
		c.TexCoord2f(p[0], p[1])
		c.Vertex2f(p[0], p[1])
	}
	c.End()
	s, err := c.Scene()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Triangles) != 3 {
		t.Fatalf("fan of 5 vertices gave %d triangles, want 3", len(s.Triangles))
	}
	for _, tr := range s.Triangles {
		if tr.V[0] != (geom.Vec2{X: 50, Y: 50}) {
			t.Error("fan hub not shared")
		}
	}
}

func TestQuadAssembly(t *testing.T) {
	c, _ := newCtx(t)
	c.Begin(Quads)
	for _, p := range [][2]float64{{0, 0}, {16, 0}, {16, 16}, {0, 16}} {
		c.TexCoord2f(p[0], p[1])
		c.Vertex2f(p[0], p[1])
	}
	c.End()
	s, err := c.Scene()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Triangles) != 2 {
		t.Fatalf("quad gave %d triangles, want 2", len(s.Triangles))
	}
	if s.Triangles[0].Area()+s.Triangles[1].Area() != 256 {
		t.Error("quad area wrong")
	}
}

func TestAffineSolveRoundTrip(t *testing.T) {
	// The solved TexMap must reproduce the submitted per-vertex coordinates
	// exactly, for a non-trivial (rotated, scaled, offset) mapping.
	c, _ := newCtx(t)
	verts := [][4]float64{ // x, y, u, v
		{10, 20, 5, 7},
		{90, 35, 37, 12},
		{40, 110, 14, 55},
	}
	c.Begin(Triangles)
	for _, v := range verts {
		c.TexCoord2f(v[2], v[3])
		c.Vertex2f(v[0], v[1])
	}
	c.End()
	s, err := c.Scene()
	if err != nil {
		t.Fatal(err)
	}
	m := s.Triangles[0].Tex
	for _, v := range verts {
		got := m.At(v[0], v[1])
		if math.Abs(got.X-v[2]) > 1e-9 || math.Abs(got.Y-v[3]) > 1e-9 {
			t.Errorf("texmap at (%v,%v) = %v, want (%v,%v)", v[0], v[1], got, v[2], v[3])
		}
	}
}

func TestDegenerateTriangleDropped(t *testing.T) {
	c, _ := newCtx(t)
	c.Begin(Triangles)
	for _, p := range [][2]float64{{0, 0}, {10, 10}, {20, 20}} { // collinear
		c.TexCoord2f(p[0], p[1])
		c.Vertex2f(p[0], p[1])
	}
	c.End()
	s, err := c.Scene()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Triangles) != 0 {
		t.Errorf("degenerate triangle recorded")
	}
}

func TestMisuseErrors(t *testing.T) {
	cases := []struct {
		name string
		do   func(c *Context, tex int32)
		want string
	}{
		{"begin-in-begin", func(c *Context, _ int32) { c.Begin(Triangles); c.Begin(Quads) }, "Begin inside"},
		{"vertex-outside", func(c *Context, _ int32) { c.TexCoord2f(0, 0); c.Vertex2f(1, 1) }, "outside Begin"},
		{"bind-in-begin", func(c *Context, tex int32) { c.Begin(Triangles); c.BindTexture(tex) }, "BindTexture inside"},
		{"bad-texture", func(c *Context, _ int32) { c.BindTexture(99) }, "unknown texture"},
		{"end-outside", func(c *Context, _ int32) { c.End() }, "End outside"},
		{"vertex-before-texcoord", func(c *Context, _ int32) { c.Begin(Triangles); c.Vertex2f(1, 1) }, "before any TexCoord"},
		{"bad-mode", func(c *Context, _ int32) { c.Begin(Primitive(42)) }, "invalid mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, tex := newCtx(t)
			tc.do(c, tex)
			_, err := c.Scene()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestBeginWithoutTexture(t *testing.T) {
	c := NewContext("x", screen)
	c.Begin(Triangles)
	if _, err := c.Scene(); err == nil {
		t.Error("Begin without bound texture accepted")
	}
}

func TestSceneInsideBegin(t *testing.T) {
	c, _ := newCtx(t)
	c.Begin(Triangles)
	if _, err := c.Scene(); err == nil {
		t.Error("Scene inside Begin/End accepted")
	}
}

func TestStickyErrorSuppressesLater(t *testing.T) {
	c, _ := newCtx(t)
	c.End() // error
	c.Begin(Triangles)
	c.TexCoord2f(0, 0)
	c.Vertex2f(0, 0)
	c.Vertex2f(10, 0)
	c.Vertex2f(0, 10)
	c.End()
	if _, err := c.Scene(); err == nil {
		t.Error("sticky error cleared")
	}
}

func TestGenTextureValidation(t *testing.T) {
	c := NewContext("x", screen)
	if id := c.GenTexture(48, 64); id != -1 || c.Err() == nil {
		t.Error("non-pow2 texture accepted")
	}
}

func TestRecordedSceneSimulatable(t *testing.T) {
	// End-to-end: a recorded strip must measure and draw like a hand-built
	// scene.
	c, _ := newCtx(t)
	c.Begin(TriangleStrip)
	for i := 0; i <= 16; i++ {
		x := float64(i) * 8
		c.TexCoord2f(x, 0)
		c.Vertex2f(x, 0)
		c.TexCoord2f(x, 32)
		c.Vertex2f(x, 32)
	}
	c.End()
	s, err := c.Scene()
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.Measure(s)
	if err != nil {
		t.Fatal(err)
	}
	if st.PixelsRendered != 128*32 {
		t.Errorf("recorded strip rendered %d pixels, want %d", st.PixelsRendered, 128*32)
	}
}

func TestPrimitiveString(t *testing.T) {
	if Triangles.String() != "GL_TRIANGLES" || Quads.String() != "GL_QUADS" {
		t.Error("primitive names wrong")
	}
	if !strings.Contains(Primitive(9).String(), "9") {
		t.Error("unknown primitive name wrong")
	}
}

// Package texsim is the public API of the parallel-texture-cache simulator,
// a reproduction of "The Best Distribution for a Parallel OpenGL 3D Engine
// with Texture Caches" (Vartanian, Béchennec, Drach-Temam — HPCA 2000).
//
// The simulator models a sort-middle parallel rendering machine built from
// commodity 3D accelerators: N texture-mapping nodes, each with a private
// 16 KB texture cache and a bandwidth-limited texture bus, drawing a
// statically interleaved partition of the screen (square blocks or SLI
// line groups) from triangle traces delivered in strict OpenGL order.
//
// Typical use:
//
//	sc := texsim.Benchmark("truc640", 0.5)   // a synthesized paper scene
//	res, err := texsim.Simulate(sc, texsim.Config{
//	    Procs:        16,
//	    Distribution: texsim.Block,
//	    TileSize:     16,
//	    CacheKind:    texsim.CacheReal,
//	    Bus:          texsim.BusConfig{TexelsPerCycle: 1},
//	})
//	fmt.Println(res.Cycles, res.TexelToFragment(), res.PixelImbalance())
//
// Scenes can also be generated from custom parameters (GenerateScene),
// loaded from trace files (ReadTrace), or built triangle by triangle.
package texsim

import (
	"context"
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/geom"
	"repro/internal/memory"
	"repro/internal/scene"
	"repro/internal/trace"
)

// Re-exported model types. These are aliases, so values flow freely between
// the public API and any future extension points.
type (
	// Scene is one frame's triangle trace: screen, texture table and
	// textured triangles in submission order.
	Scene = trace.Scene
	// TexSize is a texture-table entry (power-of-two dimensions in texels).
	TexSize = trace.TexSize
	// SceneStats are the Table 1 characteristics of a scene.
	SceneStats = trace.SceneStats
	// Triangle is a screen-space triangle with its texture binding.
	Triangle = geom.Triangle
	// Vec2 is a 2-D point in pixel or texel space.
	Vec2 = geom.Vec2
	// TexMap is a triangle's affine screen→texel mapping.
	TexMap = geom.TexMap
	// Rect is a half-open pixel rectangle.
	Rect = geom.Rect
	// Config describes a machine: processor count, distribution, cache,
	// bus, triangle buffer.
	Config = core.Config
	// Result reports a simulation: completion cycles and per-node counters.
	Result = core.Result
	// NodeResult is one node's share of a Result.
	NodeResult = core.NodeResult
	// Machine is a configured simulator instance, reusable across runs.
	Machine = core.Machine
	// BusConfig sets a node's texture-bus bandwidth as the paper's
	// texel-to-fragment ratio (0 = infinite).
	BusConfig = memory.BusConfig
	// CacheConfig is the set-associative texture-cache geometry.
	CacheConfig = cache.Config
	// SceneParams drive the procedural scene synthesizer.
	SceneParams = scene.Params
	// BenchmarkInfo couples a paper benchmark's Table 1 target with its
	// synthesizer parameters.
	BenchmarkInfo = scene.Benchmark
	// Table1Target is one row of the paper's Table 1.
	Table1Target = scene.Target
)

// Distribution kinds.
const (
	// Block partitions the screen into interleaved square tiles; TileSize
	// is the tile width in pixels.
	Block = distrib.BlockKind
	// SLI partitions the screen into interleaved groups of adjacent scan
	// lines; TileSize is the group height in lines.
	SLI = distrib.SLIKind
	// BlockSkewed is Block with each tile row's assignment rotated by one
	// processor, avoiding the row-major pattern's column aliasing.
	BlockSkewed = distrib.BlockSkewedKind
)

// Cache models.
const (
	// CacheReal simulates the configured set-associative cache (the paper's
	// 16 KB 4-way by default).
	CacheReal = core.CacheReal
	// CachePerfect always hits: isolates load balancing from locality.
	CachePerfect = core.CachePerfect
	// CacheNone always misses.
	CacheNone = core.CacheNone
)

// PaperCache returns the 16 KB 4-way 64-byte-line configuration used
// throughout the paper.
func PaperCache() CacheConfig { return cache.PaperConfig() }

// Simulate renders the scene once on a machine built from cfg and returns
// the result. It is deterministic.
func Simulate(s *Scene, cfg Config) (*Result, error) {
	return core.Simulate(s, cfg)
}

// SimulateContext is Simulate with cancellation: a long simulation returns
// ctx.Err() mid-run when the context is cancelled or times out. Machine
// exposes the same via RunContext/RunSequenceContext.
func SimulateContext(ctx context.Context, s *Scene, cfg Config) (*Result, error) {
	return core.SimulateContext(ctx, s, cfg)
}

// NewMachine builds a reusable machine for repeated runs of one scene.
func NewMachine(s *Scene, cfg Config) (*Machine, error) {
	return core.NewMachine(s, cfg)
}

// Speedup simulates the scene on one processor and on cfg.Procs processors
// (all other parameters equal) and returns T1/TN with both results.
func Speedup(s *Scene, cfg Config) (speedup float64, single, parallel *Result, err error) {
	return core.Speedup(s, cfg)
}

// SpeedupContext is Speedup with cancellation; see SimulateContext.
func SpeedupContext(ctx context.Context, s *Scene, cfg Config) (speedup float64, single, parallel *Result, err error) {
	return core.SpeedupContext(ctx, s, cfg)
}

// Measure rasterizes the scene once and returns its Table 1 row: fragments,
// depth complexity, and the unique texel-to-fragment ratio.
func Measure(s *Scene) (SceneStats, error) {
	return trace.Measure(s)
}

// GenerateScene synthesizes a deterministic procedural scene from the given
// parameters (see SceneParams for the knobs).
func GenerateScene(p SceneParams) (*Scene, error) {
	return scene.Generate(p)
}

// Benchmark returns the named paper benchmark scene synthesized at the given
// resolution scale (1 = the paper's full frame). It panics on an unknown
// name; use LookupBenchmark to probe.
func Benchmark(name string, scale float64) *Scene {
	b, err := scene.ByName(name, scale)
	if err != nil {
		panic(fmt.Sprintf("texsim: %v (known: %v)", err, scene.Names()))
	}
	return b.MustBuild()
}

// LookupBenchmark returns the benchmark definition (target characteristics
// and synthesizer parameters) for one of the paper's scenes.
func LookupBenchmark(name string, scale float64) (BenchmarkInfo, error) {
	return scene.ByName(name, scale)
}

// BenchmarkNames lists the paper's seven scenes in Table 1 order.
func BenchmarkNames() []string { return scene.Names() }

// Table1 returns the paper's published benchmark characteristics.
func Table1() []Table1Target { return scene.Table1 }

// WriteTrace serializes a scene in the binary trace format.
func WriteTrace(w io.Writer, s *Scene) error { return trace.Write(w, s) }

// ReadTrace parses a binary trace and validates it.
func ReadTrace(r io.Reader) (*Scene, error) { return trace.Read(r) }

package resultcache

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type demoSpec struct {
	Scene string  `json:"scene"`
	Scale float64 `json:"scale"`
	Procs []int   `json:"procs"`
}

func TestKeyDeterministic(t *testing.T) {
	a := demoSpec{Scene: "truc640", Scale: 0.5, Procs: []int{1, 4}}
	b := demoSpec{Scene: "truc640", Scale: 0.5, Procs: []int{1, 4}}
	ka, err := Key(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := Key(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("equal specs hash differently: %s vs %s", ka, kb)
	}
	if len(ka) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", ka)
	}
}

func TestKeySensitiveToEveryField(t *testing.T) {
	base := demoSpec{Scene: "truc640", Scale: 0.5, Procs: []int{1, 4}}
	kBase, _ := Key(base)
	variants := []demoSpec{
		{Scene: "quake", Scale: 0.5, Procs: []int{1, 4}},
		{Scene: "truc640", Scale: 0.25, Procs: []int{1, 4}},
		{Scene: "truc640", Scale: 0.5, Procs: []int{1, 4, 16}},
		{Scene: "truc640", Scale: 0.5, Procs: []int{4, 1}},
	}
	for i, v := range variants {
		k, err := Key(v)
		if err != nil {
			t.Fatal(err)
		}
		if k == kBase {
			t.Errorf("variant %d collides with base: %+v", i, v)
		}
	}
}

func TestGetPutAndStats(t *testing.T) {
	c, err := New(Config{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("k")
	if !ok || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c, err := New(Config{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Get("a") // refresh a; b is now the LRU tail
	c.Put("c", []byte("3"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry not evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Config{MaxEntries: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	key, _ := Key(demoSpec{Scene: "room3"})
	if err := c1.Put(key, []byte(`{"rows":[]}`)); err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the same directory serves the entry from disk.
	c2, err := New(Config{MaxEntries: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key)
	if !ok || string(got) != `{"rows":[]}` {
		t.Fatalf("disk tier miss: %q, %v", got, ok)
	}
	if c2.Len() != 1 {
		t.Fatal("disk hit not promoted to memory")
	}
	// No stray temp files left behind.
	tmps, _ := filepath.Glob(filepath.Join(dir, "put-*"))
	if len(tmps) != 0 {
		t.Fatalf("leftover temp files: %v", tmps)
	}
}

func TestDisabledCacheNeverHits(t *testing.T) {
	c, err := New(Config{MaxEntries: 8, Disabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatalf("disabled cache holds %d entries", c.Len())
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 0 hits 1 miss", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, err := New(Config{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%32)
				c.Put(k, []byte(k))
				if v, ok := c.Get(k); ok && string(v) != k {
					t.Errorf("corrupt value %q for key %q", v, k)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestDiskCorruptionCountsAsMiss(t *testing.T) {
	// A corrupted on-disk entry — truncated write, bit rot, an operator's
	// stray edit — must never be served as a hit or surface as an error:
	// the cache treats it as a miss and deletes the file so the slot heals
	// on the next Put.
	for _, scribble := range map[string][]byte{
		"truncated": []byte(`{"rows":[{"cycles":12`),
		"garbage":   []byte("\x00\xffnot json at all"),
		"empty":     nil,
	} {
		dir := t.TempDir()
		c, err := New(Config{MaxEntries: 4, Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Put("k1", []byte(`{"rows":[]}`)); err != nil {
			t.Fatal(err)
		}

		// Scribble over the entry and evict it from memory by restarting.
		if err := os.WriteFile(filepath.Join(dir, "k1.json"), scribble, 0o644); err != nil {
			t.Fatal(err)
		}
		c2, err := New(Config{MaxEntries: 4, Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if val, ok := c2.Get("k1"); ok {
			t.Fatalf("corrupt entry served as hit: %q", val)
		}
		if s := c2.Stats(); s.Misses != 1 || s.Hits != 0 {
			t.Errorf("stats after corrupt read = %+v, want 1 miss", s)
		}
		if _, err := os.Stat(filepath.Join(dir, "k1.json")); !os.IsNotExist(err) {
			t.Error("corrupt entry file not deleted")
		}

		// The slot works again after the next Put.
		if err := c2.Put("k1", []byte(`{"rows":[1]}`)); err != nil {
			t.Fatal(err)
		}
		c3, err := New(Config{MaxEntries: 4, Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if val, ok := c3.Get("k1"); !ok || string(val) != `{"rows":[1]}` {
			t.Errorf("healed entry = %q, %v", val, ok)
		}
	}
}

func TestDiskUnreadableEntryCountsAsMiss(t *testing.T) {
	// An entry file that cannot be read at all behaves like a miss too.
	dir := t.TempDir()
	c, err := New(Config{MaxEntries: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k1", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	// Replace the entry with a directory: ReadFile fails with a non-IsNotExist error.
	path := filepath.Join(dir, "k1.json")
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(path, 0o755); err != nil {
		t.Fatal(err)
	}
	c2, err := New(Config{MaxEntries: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("k1"); ok {
		t.Error("unreadable entry served as hit")
	}
}

func TestPutRemoteCountsRemoteHit(t *testing.T) {
	c, err := New(Config{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PutRemote("k", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.RemoteHits != 1 {
		t.Fatalf("remote hits = %d, want 1", st.RemoteHits)
	}
	// The proxied result is served locally from now on.
	got, ok := c.Get("k")
	if !ok || string(got) != `{"v":1}` {
		t.Fatalf("Get after PutRemote = %q, %v", got, ok)
	}
	if st := c.Stats(); st.Hits != 1 || st.RemoteHits != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 remote hit", st)
	}
}

func TestPeekDoesNotTouchStats(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{MaxEntries: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Peek("missing"); ok {
		t.Fatal("peek hit on empty cache")
	}
	c.Put("k", []byte(`{"v":1}`))
	got, ok := c.Peek("k")
	if !ok || string(got) != `{"v":1}` {
		t.Fatalf("Peek = %q, %v", got, ok)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Peek moved the stats: %+v", st)
	}

	// Peek consults the disk tier like Get.
	c2, err := New(Config{MaxEntries: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Peek("k"); !ok {
		t.Fatal("Peek missed the disk tier")
	}
	if st := c2.Stats(); st != (Stats{}) {
		t.Fatalf("disk Peek moved the stats: %+v", st)
	}
}

func TestDisabledAccessor(t *testing.T) {
	on, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	off, err := New(Config{Disabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.Disabled() {
		t.Fatal("enabled cache reports disabled")
	}
	if !off.Disabled() {
		t.Fatal("disabled cache reports enabled")
	}
	if _, ok := off.Peek("k"); ok {
		t.Fatal("disabled cache peeked a value")
	}
	if err := off.PutRemote("k", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := off.Get("k"); ok {
		t.Fatal("disabled cache stored a remote value")
	}
}

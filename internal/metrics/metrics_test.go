package metrics

import (
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs accepted.")
	c.Inc()
	c.Add(4)
	g := r.Gauge("queue_depth", "Jobs waiting.")
	g.Set(3)
	g.Add(-1)

	out := render(t, r)
	for _, want := range []string{
		"# HELP jobs_total Jobs accepted.",
		"# TYPE jobs_total counter",
		"jobs_total 5",
		"# TYPE queue_depth gauge",
		"queue_depth 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCounterSameInstance(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Fatal("same name returned different counters")
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("jobs_total", "Jobs by state.", "state")
	v.With("done").Add(2)
	v.With("failed").Inc()
	v.With("done").Inc()

	out := render(t, r)
	if !strings.Contains(out, `jobs_total{state="done"} 3`) {
		t.Errorf("missing done series:\n%s", out)
	}
	if !strings.Contains(out, `jobs_total{state="failed"} 1`) {
		t.Errorf("missing failed series:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 2`, // 0.05 and the exactly-equal 0.1
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_count 5",
		"latency_seconds_sum 105.65",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("odd_total", "", "name")
	v.With(`a"b\c`).Inc()
	out := render(t, r)
	if !strings.Contains(out, `odd_total{name="a\"b\\c"} 1`) {
		t.Errorf("labels not escaped:\n%s", out)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", []float64{1})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Errorf("counter = %d, want 16000", c.Value())
	}
	if g.Value() != 16000 {
		t.Errorf("gauge = %v, want 16000", g.Value())
	}
	if h.Count() != 16000 || h.Sum() != 8000 {
		t.Errorf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("x", "")
}

func TestCounterSyncTo(t *testing.T) {
	var c Counter
	c.SyncTo(5)
	if c.Value() != 5 {
		t.Fatalf("after SyncTo(5): %d", c.Value())
	}
	// Mirroring never moves the counter backwards.
	c.SyncTo(3)
	if c.Value() != 5 {
		t.Fatalf("SyncTo(3) lowered the counter to %d", c.Value())
	}
	c.SyncTo(9)
	if c.Value() != 9 {
		t.Fatalf("after SyncTo(9): %d", c.Value())
	}
	// Concurrent mirrors settle on the maximum.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(v int64) {
			defer wg.Done()
			for j := int64(0); j <= v; j++ {
				c.SyncTo(j * 10)
			}
		}(int64(i + 1))
	}
	wg.Wait()
	if c.Value() != 80 {
		t.Fatalf("after concurrent SyncTo: %d, want 80", c.Value())
	}
}

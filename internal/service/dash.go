package service

import (
	_ "embed"
	"net/http"
)

// dashHTML is the whole dashboard: one self-contained page, no external
// assets, embedded at build time — it works air-gapped and adds no
// dependencies.
//
//go:embed dash.html
var dashHTML []byte

// handleDash serves the live ops dashboard. All data comes from the same
// public endpoints an operator could curl: /cluster/metrics for the fleet
// table, /api/v1/jobs + /api/v1/jobs/{id}/events for live progress, and
// /api/v1/metrics/query for the sparklines.
func (s *Server) handleDash(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(dashHTML)
}

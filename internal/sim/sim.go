// Package sim is a small discrete-event simulation kernel. It plays the role
// of ASF, the C++ simulator framework the paper's cycle-accurate simulations
// were built on: components are processes that are woken at scheduled cycle
// times, exchange work through bounded FIFOs with producer back-pressure, and
// advance a shared simulated clock.
//
// The kernel is deliberately minimal: a binary-heap event queue keyed on
// (time, sequence) so that simultaneous events fire in schedule order, which
// keeps runs fully deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a simulated clock value in cycles.
type Time int64

// Forever is a sentinel time later than any reachable cycle count.
const Forever Time = math.MaxInt64

// Event is a callback scheduled to run at a simulated time.
type Event func(now Time)

type scheduledEvent struct {
	at  Time
	seq uint64
	fn  Event
}

type eventHeap []scheduledEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(scheduledEvent)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Simulator owns the event queue and the simulated clock.
type Simulator struct {
	now    Time
	seq    uint64
	events eventHeap
}

// New returns a simulator with the clock at cycle 0 and no pending events.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Pending returns the number of scheduled events not yet fired.
func (s *Simulator) Pending() int { return len(s.events) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently corrupt causality.
func (s *Simulator) At(t Time, fn Event) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before current time %d", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, scheduledEvent{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (s *Simulator) After(delay Time, fn Event) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	s.At(s.now+delay, fn)
}

// Step fires the earliest pending event, advancing the clock to its time.
// It reports whether an event was fired.
func (s *Simulator) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	ev := heap.Pop(&s.events).(scheduledEvent)
	s.now = ev.at
	ev.fn(s.now)
	return true
}

// Run fires events until the queue drains and returns the final time.
func (s *Simulator) Run() Time {
	for s.Step() {
	}
	return s.now
}

// RunUntil fires events with time ≤ limit. It returns the current time and
// whether the queue drained (false means events remain beyond the limit).
func (s *Simulator) RunUntil(limit Time) (Time, bool) {
	for len(s.events) > 0 && s.events[0].at <= limit {
		s.Step()
	}
	return s.now, len(s.events) == 0
}

package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/memory"
	"repro/internal/scene"
	"repro/internal/trace"
)

func l2Config() cache.Config {
	// A 1 MB 8-way L2: small enough to test at reduced scale, big enough to
	// hold a reduced scene's working set.
	return cache.Config{SizeBytes: 1 << 20, Ways: 8, LineBytes: 64}
}

func benchSceneFor(t *testing.T, name string, scale float64) *trace.Scene {
	t.Helper()
	b, err := scene.ByName(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	return b.MustBuild()
}

func TestL2ValidationAndDefaults(t *testing.T) {
	s := benchSceneFor(t, "blowout775", 0.2)
	bad := Config{Procs: 2, L2Config: cache.Config{SizeBytes: 100, Ways: 3, LineBytes: 64}}
	if _, err := NewMachine(s, bad); err == nil {
		t.Error("invalid L2 geometry accepted")
	}
	cfg := Config{Procs: 2, L2Config: l2Config()}
	if !cfg.HasL2() {
		t.Error("HasL2 false with L2 configured")
	}
	if (Config{Procs: 2}).HasL2() {
		t.Error("HasL2 true without L2")
	}
}

func TestL2ReducesMainTraffic(t *testing.T) {
	// Rendering the same frame twice: with an L2 big enough for the working
	// set, the second frame's main-memory traffic must collapse while L1
	// traffic stays steady (the L1 is far too small for inter-frame reuse —
	// exactly the Cox result the paper cites).
	s := benchSceneFor(t, "blowout775", 0.25)
	cfg := Config{
		Procs: 4, TileSize: 16, CacheKind: CacheReal,
		L2Config: l2Config(),
	}
	m, err := NewMachine(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := m.RunSequence([]*trace.Scene{s, s})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	var main1, main2, l1a, l1b uint64
	for i := range results[0].Nodes {
		main1 += results[0].Nodes[i].MainBus.LinesFetched
		main2 += results[1].Nodes[i].MainBus.LinesFetched
		l1a += results[0].Nodes[i].Bus.LinesFetched
		l1b += results[1].Nodes[i].Bus.LinesFetched
	}
	if main1 == 0 {
		t.Fatal("no main-memory traffic in frame 1 (cold L2)")
	}
	if main2*5 > main1 {
		t.Errorf("frame 2 main traffic %d not well below frame 1's %d", main2, main1)
	}
	if l1b*2 < l1a {
		t.Errorf("L1 traffic collapsed across frames (%d → %d): 16 KB cannot hold a frame", l1a, l1b)
	}
}

func TestL2MissesBoundedByL1Misses(t *testing.T) {
	s := benchSceneFor(t, "quake", 0.2)
	res, err := Simulate(s, Config{
		Procs: 2, TileSize: 16, CacheKind: CacheReal,
		L2Config: l2Config(), MainBus: memory.BusConfig{TexelsPerCycle: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range res.Nodes {
		if n.L2.Accesses != n.Cache.Misses {
			t.Errorf("node %d: L2 accesses %d != L1 misses %d", i, n.L2.Accesses, n.Cache.Misses)
		}
		if n.L2.Misses > n.L2.Accesses {
			t.Errorf("node %d: L2 misses exceed accesses", i)
		}
		if n.MainBus.LinesFetched != n.L2.Misses {
			t.Errorf("node %d: main lines %d != L2 misses %d", i, n.MainBus.LinesFetched, n.L2.Misses)
		}
	}
}

func TestSlowMainBusSlowsMachine(t *testing.T) {
	s := benchSceneFor(t, "teapot.full", 0.2)
	fast := Config{Procs: 2, TileSize: 16, CacheKind: CacheReal, L2Config: l2Config()}
	slow := fast
	slow.MainBus = memory.BusConfig{TexelsPerCycle: 0.25}
	rFast, err := Simulate(s, fast)
	if err != nil {
		t.Fatal(err)
	}
	rSlow, err := Simulate(s, slow)
	if err != nil {
		t.Fatal(err)
	}
	if rSlow.Cycles <= rFast.Cycles {
		t.Errorf("quarter-speed main bus (%v) not slower than infinite (%v)",
			rSlow.Cycles, rFast.Cycles)
	}
}

func TestRunSequenceFrameAccounting(t *testing.T) {
	// Per-frame cycles must sum to the total completion time, and frame
	// fragment counts must each equal the single-frame count.
	s := benchSceneFor(t, "blowout775", 0.2)
	cfg := Config{Procs: 4, TileSize: 16, CacheKind: CacheReal}
	single, err := Simulate(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames := []*trace.Scene{s, s, s}
	results, err := m.RunSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Fragments != single.Fragments {
			t.Errorf("frame %d fragments %d != %d", i, r.Fragments, single.Fragments)
		}
		if r.Cycles <= 0 {
			t.Errorf("frame %d has nonpositive cycles", i)
		}
	}
	// Frame 1 is cold; later frames are warmer (or equal): never slower by
	// more than noise.
	if results[1].Cycles > results[0].Cycles*1.01 {
		t.Errorf("warm frame 2 (%v) slower than cold frame 1 (%v)",
			results[1].Cycles, results[0].Cycles)
	}
}

func TestRunSequenceRejectsMismatchedTextures(t *testing.T) {
	s := benchSceneFor(t, "blowout775", 0.2)
	other := *s
	other.Textures = append([]trace.TexSize(nil), s.Textures...)
	other.Textures[0] = trace.TexSize{W: s.Textures[0].W * 2, H: s.Textures[0].H}
	m, err := NewMachine(s, Config{Procs: 2, CacheKind: CachePerfect})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunSequence([]*trace.Scene{s, &other}); err == nil {
		t.Error("mismatched texture table accepted")
	}
}

func TestPanSequenceInterFrameLocality(t *testing.T) {
	// The paper's §9 conjecture, testable end to end: with per-node L2s, a
	// small pan keeps frame-2 main traffic low, while a pan larger than the
	// tile size forces nodes to reload texels that last frame belonged to
	// other nodes' tiles.
	s := benchSceneFor(t, "massive11255", 0.25)
	run := func(pan float64) (frame2Main uint64) {
		m, err := NewMachine(s, Config{
			Procs: 8, TileSize: 16, CacheKind: CacheReal, L2Config: l2Config(),
		})
		if err != nil {
			t.Fatal(err)
		}
		frames := scene.PanSequence(s, 2, pan, 0)
		results, err := m.RunSequence(frames)
		if err != nil {
			t.Fatal(err)
		}
		for i := range results[1].Nodes {
			frame2Main += results[1].Nodes[i].MainBus.LinesFetched
		}
		return frame2Main
	}
	still := run(0)
	smallPan := run(4)
	bigPan := run(64)
	if !(still <= smallPan) {
		t.Errorf("static frame 2 traffic %d above small-pan %d", still, smallPan)
	}
	if bigPan <= smallPan {
		t.Errorf("64-px pan main traffic %d not above 4-px pan %d (tile-size effect missing)",
			bigPan, smallPan)
	}
}

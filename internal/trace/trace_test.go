package trace

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func smallScene() *Scene {
	return &Scene{
		Name:     "unit",
		Screen:   geom.Rect{X0: 0, Y0: 0, X1: 64, Y1: 64},
		Textures: []TexSize{{W: 32, H: 32}, {W: 64, H: 16}},
		Triangles: []geom.Triangle{
			{
				V:     [3]geom.Vec2{{X: 0, Y: 0}, {X: 40, Y: 0}, {X: 0, Y: 40}},
				TexID: 0,
				Tex:   geom.TexMap{DuDx: 1, DvDy: 1},
			},
			{
				V:     [3]geom.Vec2{{X: 10, Y: 10}, {X: 50, Y: 12}, {X: 30, Y: 55}},
				TexID: 1,
				Tex:   geom.TexMap{U0: 5, V0: 7, DuDx: 0.5, DuDy: 0.25, DvDx: -0.5, DvDy: 1.5},
			},
		},
	}
}

func TestValidate(t *testing.T) {
	s := smallScene()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid scene rejected: %v", err)
	}
	bad := smallScene()
	bad.Triangles[0].TexID = 5
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range TexID accepted")
	}
	bad2 := smallScene()
	bad2.Textures[0] = TexSize{W: 33, H: 32}
	if err := bad2.Validate(); err == nil {
		t.Error("non-pow2 texture accepted")
	}
	bad3 := smallScene()
	bad3.Screen = geom.Rect{}
	if err := bad3.Validate(); err == nil {
		t.Error("empty screen accepted")
	}
	bad4 := smallScene()
	bad4.Textures = nil
	if err := bad4.Validate(); err == nil {
		t.Error("textureless scene accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	s := smallScene()
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != s.Name || got.Screen != s.Screen {
		t.Errorf("header mismatch: %q %v", got.Name, got.Screen)
	}
	if len(got.Textures) != len(s.Textures) || len(got.Triangles) != len(s.Triangles) {
		t.Fatalf("counts mismatch: %d textures, %d triangles", len(got.Textures), len(got.Triangles))
	}
	for i := range s.Textures {
		if got.Textures[i] != s.Textures[i] {
			t.Errorf("texture %d = %v, want %v", i, got.Textures[i], s.Textures[i])
		}
	}
	for i := range s.Triangles {
		a, b := got.Triangles[i], s.Triangles[i]
		if a.TexID != b.TexID {
			t.Errorf("triangle %d texid %d != %d", i, a.TexID, b.TexID)
		}
		for j := 0; j < 3; j++ {
			if math.Abs(a.V[j].X-b.V[j].X) > 1e-4 || math.Abs(a.V[j].Y-b.V[j].Y) > 1e-4 {
				t.Errorf("triangle %d vertex %d = %v, want %v", i, j, a.V[j], b.V[j])
			}
		}
		if math.Abs(a.Tex.DuDy-b.Tex.DuDy) > 1e-6 {
			t.Errorf("triangle %d texmap mismatch", i)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, nTri uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := &Scene{
			Name:     "prop",
			Screen:   geom.Rect{X0: 0, Y0: 0, X1: 128, Y1: 128},
			Textures: []TexSize{{W: 16, H: 16}},
		}
		for i := 0; i < int(nTri%32)+1; i++ {
			s.Triangles = append(s.Triangles, geom.Triangle{
				V: [3]geom.Vec2{
					{X: float64(rng.Intn(128)), Y: float64(rng.Intn(128))},
					{X: float64(rng.Intn(128)), Y: float64(rng.Intn(128))},
					{X: float64(rng.Intn(128)), Y: float64(rng.Intn(128))},
				},
				TexID: 0,
				Tex:   geom.TexMap{DuDx: 1, DvDy: 1, U0: float64(rng.Intn(16))},
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Triangles) != len(s.Triangles) {
			return false
		}
		for i := range s.Triangles {
			if got.Triangles[i].V != s.Triangles[i].V { // integral coords: exact in float32
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("nope"),
		[]byte("TTRC"),                           // truncated after magic
		append([]byte("TTRC"), 9, 0, 0, 0),       // wrong version
		append([]byte("TTRC"), 1, 0, 0, 0, 0xff), // truncated name length
	}
	for i, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestWriteRejectsInvalidScene(t *testing.T) {
	s := smallScene()
	s.Triangles[0].TexID = 99
	var buf bytes.Buffer
	if err := Write(&buf, s); err == nil {
		t.Error("Write accepted invalid scene")
	}
}

func TestBuildTexturesAndBytes(t *testing.T) {
	s := smallScene()
	m, err := s.BuildTextures()
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 2 {
		t.Fatalf("manager count = %d", m.Count())
	}
	if m.Texture(0).Width() != 32 || m.Texture(1).Width() != 64 {
		t.Error("texture table order lost")
	}
	total, err := s.TextureBytes()
	if err != nil {
		t.Fatal(err)
	}
	if total != m.TotalBytes() || total <= 0 {
		t.Errorf("TextureBytes = %d", total)
	}
}

func TestMeasureSimpleScene(t *testing.T) {
	// One axis-aligned square (two triangles) covering a 32x32 region with an
	// identity texture map over a 64x64 texture: 1024 fragments, depth
	// complexity 1024/(64*64) = 0.25.
	s := &Scene{
		Name:     "square",
		Screen:   geom.Rect{X0: 0, Y0: 0, X1: 64, Y1: 64},
		Textures: []TexSize{{W: 64, H: 64}},
		Triangles: []geom.Triangle{
			{V: [3]geom.Vec2{{X: 0, Y: 0}, {X: 32, Y: 0}, {X: 0, Y: 32}}, TexID: 0, Tex: geom.TexMap{DuDx: 1, DvDy: 1}},
			{V: [3]geom.Vec2{{X: 32, Y: 0}, {X: 32, Y: 32}, {X: 0, Y: 32}}, TexID: 0, Tex: geom.TexMap{DuDx: 1, DvDy: 1}},
		},
	}
	st, err := Measure(s)
	if err != nil {
		t.Fatal(err)
	}
	if st.PixelsRendered != 1024 {
		t.Errorf("PixelsRendered = %d, want 1024", st.PixelsRendered)
	}
	if math.Abs(st.DepthComplexity-0.25) > 1e-9 {
		t.Errorf("DepthComplexity = %v, want 0.25", st.DepthComplexity)
	}
	if st.Triangles != 2 || st.Textures != 1 {
		t.Errorf("counts = %d triangles %d textures", st.Triangles, st.Textures)
	}
	// Identity map with trilinear touches both level 0 and level 1 texels;
	// unique texels must be positive and bounded by 8 per fragment.
	if st.UniqueTexels == 0 || st.UniqueTexels > 8*st.PixelsRendered {
		t.Errorf("UniqueTexels = %d", st.UniqueTexels)
	}
	if st.UniqueTexelFrag <= 0 || st.UniqueTexelFrag > 8 {
		t.Errorf("UniqueTexelFrag = %v", st.UniqueTexelFrag)
	}
}

func TestMeasureDepthComplexityAdds(t *testing.T) {
	// Two identical overlapping squares double the fragment count.
	base := &Scene{
		Name:     "overlap",
		Screen:   geom.Rect{X0: 0, Y0: 0, X1: 64, Y1: 64},
		Textures: []TexSize{{W: 32, H: 32}},
	}
	quad := []geom.Triangle{
		{V: [3]geom.Vec2{{X: 0, Y: 0}, {X: 32, Y: 0}, {X: 0, Y: 32}}, Tex: geom.TexMap{DuDx: 1, DvDy: 1}},
		{V: [3]geom.Vec2{{X: 32, Y: 0}, {X: 32, Y: 32}, {X: 0, Y: 32}}, Tex: geom.TexMap{DuDx: 1, DvDy: 1}},
	}
	base.Triangles = append(base.Triangles, quad...)
	one, err := Measure(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Triangles = append(base.Triangles, quad...)
	two, err := Measure(base)
	if err != nil {
		t.Fatal(err)
	}
	if two.PixelsRendered != 2*one.PixelsRendered {
		t.Errorf("overlap pixels = %d, want %d", two.PixelsRendered, 2*one.PixelsRendered)
	}
	// Unique texels must NOT double: the second layer reuses the same texels.
	if two.UniqueTexels != one.UniqueTexels {
		t.Errorf("unique texels changed with overlap: %d vs %d", two.UniqueTexels, one.UniqueTexels)
	}
}

func TestMeasureTextureReuseLowersUniqueRatio(t *testing.T) {
	// A scene where every triangle maps the same small texture region must
	// have a much lower unique ratio than one where each triangle maps a
	// fresh region.
	mk := func(fresh bool) *Scene {
		s := &Scene{
			Name:     "reuse",
			Screen:   geom.Rect{X0: 0, Y0: 0, X1: 256, Y1: 256},
			Textures: []TexSize{{W: 512, H: 512}},
		}
		for i := 0; i < 8; i++ {
			u0 := 0.0
			if fresh {
				u0 = float64(i * 64)
			}
			y := float64(i * 32)
			// V0 = -y so every triangle maps texel rows [0, 32) regardless of
			// its screen position; only U0 distinguishes fresh regions.
			s.Triangles = append(s.Triangles,
				geom.Triangle{
					V:   [3]geom.Vec2{{X: 0, Y: y}, {X: 64, Y: y}, {X: 0, Y: y + 32}},
					Tex: geom.TexMap{U0: u0, V0: -y, DuDx: 1, DvDy: 1},
				})
		}
		return s
	}
	reused, err := Measure(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Measure(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	if reused.UniqueTexelFrag*2 > fresh.UniqueTexelFrag {
		t.Errorf("reuse ratio %v not well below fresh ratio %v",
			reused.UniqueTexelFrag, fresh.UniqueTexelFrag)
	}
}

func TestBitset(t *testing.T) {
	b := newBitset(130)
	b.set(0)
	b.set(64)
	b.set(129)
	b.set(129) // idempotent
	if got := b.count(); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
}

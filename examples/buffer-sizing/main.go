// buffer-sizing reproduces the paper's §8 design question: how deep must
// the triangle FIFO in front of each texture-mapping engine be? It sweeps
// the buffer depth on a 64-processor block machine and prints the speedup
// and the peak FIFO occupancy actually reached, with and without a real
// texture cache — showing that the cache makes buffering matter more.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/texsim"
)

func main() {
	sceneName := flag.String("scene", "truc640", "benchmark scene")
	scale := flag.Float64("scale", 0.5, "resolution scale")
	procs := flag.Int("procs", 64, "processors")
	width := flag.Int("width", 16, "block width")
	flag.Parse()

	sc := texsim.Benchmark(*sceneName, *scale)
	buffers := []int{1, 5, 10, 20, 50, 100, 500, 10000}

	variants := []struct {
		name  string
		cache texsim.Config
	}{
		{"perfect cache", texsim.Config{CacheKind: texsim.CachePerfect}},
		{"16KB cache + 2x bus", texsim.Config{
			CacheKind: texsim.CacheReal,
			Bus:       texsim.BusConfig{TexelsPerCycle: 2},
		}},
	}

	fmt.Printf("scene %s, %d processors, block width %d\n\n", sc.Name, *procs, *width)
	for _, v := range variants {
		baseCfg := v.cache
		baseCfg.Procs = 1
		base, err := texsim.Simulate(sc, baseCfg)
		if err != nil {
			log.Fatal(err)
		}

		type row struct {
			buffer, peak int
			speedup      float64
		}
		rows := make([]row, len(buffers))
		for i, buf := range buffers {
			cfg := v.cache
			cfg.Procs = *procs
			cfg.Distribution = texsim.Block
			cfg.TileSize = *width
			cfg.TriangleBuffer = buf
			res, err := texsim.Simulate(sc, cfg)
			if err != nil {
				log.Fatal(err)
			}
			peak := 0
			for _, n := range res.Nodes {
				if n.FIFOPeak > peak {
					peak = n.FIFOPeak
				}
			}
			rows[i] = row{buf, peak, base.Cycles / res.Cycles}
		}
		ideal := rows[len(rows)-1].speedup

		fmt.Printf("--- %s ---\n", v.name)
		fmt.Printf("%8s  %8s  %9s  %s\n", "buffer", "speedup", "FIFO peak", "of ideal")
		for _, r := range rows {
			fmt.Printf("%8d  %8.1f  %9d  %5.1f%%\n", r.buffer, r.speedup, r.peak, 100*r.speedup/ideal)
		}
		fmt.Println()
	}
}

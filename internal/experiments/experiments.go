// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment builds the benchmark scenes at a chosen
// resolution scale, sweeps the machine configurations the paper sweeps, and
// prints the same rows/series the paper plots, so shapes can be compared
// directly (who wins, by what factor, where the crossovers fall).
package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/scene"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options configure an experiment run.
type Options struct {
	// Scale is the scene resolution scale (1 = the paper's full frames).
	// Defaults to 0.5, which preserves all Table 1 shape properties at a
	// quarter of the simulation cost. Scales below ~0.4 degrade scene
	// fidelity and are only for smoke tests.
	Scale float64
	// Parallelism bounds concurrent machine simulations (default: NumCPU).
	Parallelism int
	// OutDir is where image-producing experiments write files (default
	// "out").
	OutDir string
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 0.5
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
	if o.OutDir == "" {
		o.OutDir = "out"
	}
	return o
}

// Report is an experiment's printable result.
type Report struct {
	ID    string
	Title string
	Notes []string
	Table []*stats.Table
	// Chart holds ASCII renderings of the figure's curves (text output
	// only; CSV/JSON carry the tables).
	Chart []*stats.Chart
}

// Format writes the report to w.
func (r *Report) Format(w io.Writer) {
	fmt.Fprintf(w, "=== %s — %s ===\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  %s\n", n)
	}
	for _, t := range r.Table {
		fmt.Fprintln(w)
		t.Format(w)
	}
	for _, c := range r.Chart {
		fmt.Fprintln(w)
		fmt.Fprint(w, c.String())
	}
}

// Experiment couples an identifier with its runner. Runners honour ctx:
// cancelling it abandons in-flight simulations and returns ctx.Err().
type Experiment struct {
	ID    string
	Title string
	Run   func(context.Context, Options) (*Report, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Benchmark scene characteristics (Table 1)", RunTable1},
		{"fig5-imbalance", "Load imbalance vs distribution parameters, 64 processors (Fig. 5 top)", RunFig5Imbalance},
		{"fig5-speedup", "Perfect-cache speedup vs processors, 32massive11255 (Fig. 5 bottom)", RunFig5Speedup},
		{"fig6-locality", "Texel-to-fragment ratio vs processors (Fig. 6)", RunFig6Locality},
		{"fig7", "Speedups with a 1 texel/pixel bus (Fig. 7)", RunFig7},
		{"fig7-bus2", "Speedups with a 2 texel/pixel bus (§7, TR [15])", RunFig7Bus2},
		{"fig8-buffer", "Speedup vs block width and triangle-buffer size, truc640 (Fig. 8)", RunFig8},
		{"fig9-images", "Benchmark depth-complexity images (Fig. 9)", RunFig9},
		{"ext-l2", "Extension: inter-frame L2 texture locality vs viewpoint panning (§9)", RunExtL2},
		{"ext-dynamic", "Extension: dynamic tile assignment vs static interleave (§9)", RunExtDynamic},
		{"ext-prefetch", "Ablation: prefetch fragment-FIFO depth", RunExtPrefetch},
		{"ext-cache", "Ablation: texture-cache size and associativity", RunExtCache},
		{"ext-sortlast", "Extension: sort-middle vs sort-last locality and balance", RunExtSortLast},
		{"ext-overlap", "Validation: Chen et al. overlap model vs measured routing", RunExtOverlap},
		{"ext-interleave", "Ablation: tile-to-processor interleave pattern", RunExtInterleave},
	}
}

// ByID finds an experiment by identifier.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// The parameter sweeps the paper uses.
var (
	blockWidths = []int{1, 2, 4, 8, 16, 32, 64, 128}
	sliLines    = []int{1, 2, 4, 8, 16, 32}
)

// buildScene constructs one benchmark scene at the option scale.
func buildScene(ctx context.Context, name string, opt Options) (*trace.Scene, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b, err := scene.ByName(name, opt.Scale)
	if err != nil {
		return nil, err
	}
	return b.Build()
}

// buildAllScenes constructs the full suite in parallel.
func buildAllScenes(ctx context.Context, opt Options) (map[string]*trace.Scene, error) {
	names := scene.Names()
	out := make(map[string]*trace.Scene, len(names))
	var mu sync.Mutex
	err := forEachParallel(ctx, opt.Parallelism, len(names), func(i int) error {
		s, err := buildScene(ctx, names[i], opt)
		if err != nil {
			return err
		}
		mu.Lock()
		out[names[i]] = s
		mu.Unlock()
		return nil
	})
	return out, err
}

// forEachParallel runs fn(0..n-1) on up to p goroutines and returns the
// first error (shared with the sweep runner and texsimd worker pool via
// internal/par).
func forEachParallel(ctx context.Context, p, n int, fn func(i int) error) error {
	return par.ForEach(ctx, p, n, fn)
}

// simulate runs one configuration, wrapping errors with simulation context.
func simulate(ctx context.Context, s *trace.Scene, cfg core.Config) (*core.Result, error) {
	res, err := core.SimulateContext(ctx, s, cfg)
	if err != nil {
		return nil, fmt.Errorf("simulating %s on %s: %w", s.Name, cfg.Name(), err)
	}
	return res, nil
}

// scaleNote is attached to reports so printed absolute numbers are read in
// context.
func scaleNote(opt Options) string {
	return fmt.Sprintf("scene scale %.2f (screen and workload cropped; tile sizes and cache geometry as in the paper)", opt.Scale)
}

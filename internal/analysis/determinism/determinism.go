// Package determinism checks the result-cache soundness contract: simulator
// packages must be pure functions of their configuration. The service's
// content-addressed result cache (internal/resultcache) keys on a SHA-256 of
// the canonical config JSON and serves cached documents as if freshly
// simulated — which is only sound when the same config always produces the
// same bytes. Three classes of hidden inputs break that:
//
//   - wall-clock reads (time.Now, time.Since, timers),
//   - ambient randomness (the global math/rand source, seeded per-process)
//     and process environment (os.Getenv),
//   - map iteration order feeding ordered output (Go randomizes it per run).
//
// The analyzer forbids the first two outright and flags range-over-map loops
// that append to an outer slice never subsequently sorted, or that write
// output directly from the loop body.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the determinism check.
var Analyzer = &framework.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock, ambient randomness, environment reads and " +
		"unordered map iteration feeding ordered output in simulator packages " +
		"(the result-cache soundness contract)",
	Run: run,
}

// forbiddenCalls maps package path -> function name -> explanation.
var forbiddenCalls = map[string]map[string]string{
	"time": {
		"Now":       "reads the wall clock",
		"Since":     "reads the wall clock",
		"Until":     "reads the wall clock",
		"Tick":      "creates a wall-clock ticker",
		"After":     "creates a wall-clock timer",
		"AfterFunc": "creates a wall-clock timer",
		"NewTicker": "creates a wall-clock ticker",
		"NewTimer":  "creates a wall-clock timer",
	},
	"os": {
		"Getenv":    "reads the process environment",
		"LookupEnv": "reads the process environment",
		"Environ":   "reads the process environment",
	},
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

// calleeFunc resolves a call to the *types.Func it invokes, if any.
func calleeFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.ObjectOf(id).(*types.Func)
	return fn
}

func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn) are injected state: fine
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	if why, ok := forbiddenCalls[pkg][name]; ok {
		pass.Reportf(call.Pos(), "%s.%s %s; simulator results must be a pure function of the config (result-cache soundness)", pkg, name, why)
		return
	}
	if (pkg == "math/rand" || pkg == "math/rand/v2") && !strings.HasPrefix(name, "New") {
		pass.Reportf(call.Pos(), "%s.%s uses the global random source; inject a seeded *rand.Rand carried in the config instead (result-cache soundness)", pkg, name)
	}
}

// checkMapRanges flags range-over-map loops whose iteration order can leak
// into ordered output: either the body writes output directly, or it
// appends to a slice declared outside the loop that is never sorted
// afterwards in the same function.
func checkMapRanges(pass *framework.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, body, rng)
		return true
	})
}

// writerCalls are fmt functions and io-style method names that emit output.
var writerNames = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func checkMapRangeBody(pass *framework.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	appended := map[types.Object]ast.Node{} // outer slice -> first append site
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pass, n); fn != nil {
				name := fn.Name()
				if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && writerNames[name] {
					pass.Reportf(n.Pos(), "output written inside range over map: iteration order is nondeterministic (sort the keys first)")
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
					strings.HasPrefix(name, "Write") {
					pass.Reportf(n.Pos(), "%s called inside range over map: iteration order is nondeterministic (sort the keys first)", name)
				}
			}
		case *ast.AssignStmt:
			// x = append(x, ...) where x is declared outside the loop.
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || len(n.Lhs) <= i {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				lhs, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.ObjectOf(lhs)
				if obj == nil || obj.Pos() == token.NoPos {
					continue
				}
				if obj.Pos() < rng.Pos() { // declared before the loop
					if _, seen := appended[obj]; !seen {
						appended[obj] = n
					}
				}
			}
		}
		return true
	})
	for obj, site := range appended {
		if !sortedAfter(pass, fnBody, rng, obj) {
			pass.Reportf(site.Pos(),
				"%s accumulates values in map iteration order and is never sorted; map range order is nondeterministic (result-cache soundness)",
				obj.Name())
		}
	}
}

// sortedAfter reports whether obj is passed to a sort/slices ordering
// function after the range loop, in the same function body.
func sortedAfter(pass *framework.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
					found = true
					return false
				}
				return true
			})
		}
		return true
	})
	return found
}

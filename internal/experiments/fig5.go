package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/scene"
	"repro/internal/stats"
)

// fig5Procs is the machine size of the paper's Figure 5 imbalance graphs.
const fig5Procs = 64

// RunFig5Imbalance reproduces the top half of Figure 5: the percent
// difference between the busiest and the average processor's pixel work, on
// a 64-processor machine with a perfect cache, for every distribution
// parameter and benchmark.
func RunFig5Imbalance(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	scenes, err := buildAllScenes(ctx, opt)
	if err != nil {
		return nil, err
	}
	names := scene.Names()

	type cellKey struct {
		scene string
		kind  distrib.Kind
		size  int
	}
	type job struct {
		key  cellKey
		cfg  core.Config
		name string
	}
	var jobs []job
	for _, n := range names {
		for _, w := range blockWidths {
			jobs = append(jobs, job{cellKey{n, distrib.BlockKind, w}, core.Config{
				Procs: fig5Procs, Distribution: distrib.BlockKind, TileSize: w,
				CacheKind: core.CachePerfect,
			}, n})
		}
		for _, l := range sliLines {
			jobs = append(jobs, job{cellKey{n, distrib.SLIKind, l}, core.Config{
				Procs: fig5Procs, Distribution: distrib.SLIKind, TileSize: l,
				CacheKind: core.CachePerfect,
			}, n})
		}
	}
	cells := make(map[cellKey]float64, len(jobs))
	var mu sync.Mutex
	err = forEachParallel(ctx, opt.Parallelism, len(jobs), func(i int) error {
		j := jobs[i]
		res, err := simulate(ctx, scenes[j.name], j.cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		cells[j.key] = res.PixelImbalance()
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	mkTable := func(kind distrib.Kind, sizes []int, sizeLabel string) *stats.Table {
		t := &stats.Table{
			Caption: fmt.Sprintf("%d processors / %s: busiest-vs-average pixel work (%%)", fig5Procs, kind),
			Header:  append([]string{sizeLabel}, names...),
		}
		for _, sz := range sizes {
			row := []string{fmt.Sprintf("%d", sz)}
			for _, n := range names {
				row = append(row, stats.Pct(cells[cellKey{n, kind, sz}]))
			}
			t.AddRow(row...)
		}
		return t
	}

	return &Report{
		ID:    "fig5-imbalance",
		Title: "Impact of the distribution scheme on load balancing",
		Notes: []string{
			scaleNote(opt),
			"perfect texture cache, infinite bus: pure pixel-work balance",
			"expect: imbalance grows with block size; worst cases reach hundreds of %; block-16 stays modest",
		},
		Table: []*stats.Table{
			mkTable(distrib.BlockKind, blockWidths, "width"),
			mkTable(distrib.SLIKind, sliLines, "lines"),
		},
	}, nil
}

// fig5SpeedupProcs are the x-axis machine sizes of Figure 5's speedup plots.
var fig5SpeedupProcs = []int{1, 2, 4, 8, 16, 32, 48, 64}

// RunFig5Speedup reproduces the bottom half of Figure 5: perfect-cache
// speedup of 32massive11255 versus processor count for every distribution
// parameter, exposing the small-triangle setup overhead of tiny tiles.
func RunFig5Speedup(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	const sceneName = "32massive11255"
	s, err := buildScene(ctx, sceneName, opt)
	if err != nil {
		return nil, err
	}

	base, err := simulate(ctx, s, core.Config{Procs: 1, CacheKind: core.CachePerfect})
	if err != nil {
		return nil, err
	}
	t1 := base.Cycles

	type cellKey struct {
		kind  distrib.Kind
		size  int
		procs int
	}
	type job struct {
		key cellKey
		cfg core.Config
	}
	var jobs []job
	for _, procs := range fig5SpeedupProcs {
		if procs == 1 {
			continue
		}
		for _, w := range blockWidths {
			jobs = append(jobs, job{cellKey{distrib.BlockKind, w, procs}, core.Config{
				Procs: procs, Distribution: distrib.BlockKind, TileSize: w,
				CacheKind: core.CachePerfect,
			}})
		}
		for _, l := range sliLines {
			jobs = append(jobs, job{cellKey{distrib.SLIKind, l, procs}, core.Config{
				Procs: procs, Distribution: distrib.SLIKind, TileSize: l,
				CacheKind: core.CachePerfect,
			}})
		}
	}
	cells := make(map[cellKey]float64, len(jobs))
	var mu sync.Mutex
	err = forEachParallel(ctx, opt.Parallelism, len(jobs), func(i int) error {
		j := jobs[i]
		res, err := simulate(ctx, s, j.cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		cells[j.key] = t1 / res.Cycles
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, w := range blockWidths {
		cells[cellKey{distrib.BlockKind, w, 1}] = 1
	}
	for _, l := range sliLines {
		cells[cellKey{distrib.SLIKind, l, 1}] = 1
	}

	mkTable := func(kind distrib.Kind, sizes []int, sizeLabel string) *stats.Table {
		header := []string{"procs"}
		for _, sz := range sizes {
			header = append(header, fmt.Sprintf("%s%d", sizeLabel, sz))
		}
		t := &stats.Table{
			Caption: fmt.Sprintf("%s distribution: speedup of %s (perfect cache)", kind, sceneName),
			Header:  header,
		}
		for _, procs := range fig5SpeedupProcs {
			row := []string{fmt.Sprintf("%d", procs)}
			for _, sz := range sizes {
				row = append(row, stats.F(cells[cellKey{kind, sz, procs}], 1))
			}
			t.AddRow(row...)
		}
		return t
	}

	mkChart := func(kind distrib.Kind, sizes []int, sizeLabel string) *stats.Chart {
		ch := &stats.Chart{
			Title:  fmt.Sprintf("%s distribution: speedup vs processors (perfect cache)", kind),
			XLabel: "processors",
			YLabel: "speedup",
		}
		for _, sz := range sizes {
			s := stats.Series{Name: fmt.Sprintf("%s%d", sizeLabel, sz)}
			for _, procs := range fig5SpeedupProcs {
				s.X = append(s.X, float64(procs))
				s.Y = append(s.Y, cells[cellKey{kind, sz, procs}])
			}
			ch.Series = append(ch.Series, s)
		}
		return ch
	}

	return &Report{
		ID:    "fig5-speedup",
		Title: "Perfect-cache speedup vs processors (32massive11255)",
		Notes: []string{
			scaleNote(opt),
			"expect: 1-line SLI and block widths < 8 collapse from the 25-pixel setup overhead; large sizes flatten from load imbalance",
		},
		Table: []*stats.Table{
			mkTable(distrib.BlockKind, blockWidths, "w"),
			mkTable(distrib.SLIKind, sliLines, "l"),
		},
		Chart: []*stats.Chart{
			mkChart(distrib.BlockKind, []int{1, 8, 16, 128}, "w"),
			mkChart(distrib.SLIKind, []int{1, 4, 32}, "l"),
		},
	}, nil
}

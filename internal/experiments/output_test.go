package experiments

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/stats"
)

func sampleReport() *Report {
	t1 := &stats.Table{Caption: "first", Header: []string{"a", "b"}}
	t1.AddRow("1", "2")
	t1.AddRow("3", "4")
	t2 := &stats.Table{Caption: "second", Header: []string{"x"}}
	t2.AddRow("y")
	return &Report{
		ID:    "sample",
		Title: "Sample report",
		Notes: []string{"a note"},
		Table: []*stats.Table{t1, t2},
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	r.FieldsPerRecord = -1
	records, err := r.ReadAll()
	if err != nil {
		t.Fatalf("output not valid CSV: %v", err)
	}
	// caption, header, 2 rows, caption, header, 1 row = 7 records (the
	// blank separator line is skipped by csv.Reader).
	if len(records) != 7 {
		t.Fatalf("got %d records: %v", len(records), records)
	}
	if !strings.HasPrefix(records[0][0], "# sample — first") {
		t.Errorf("caption record = %v", records[0])
	}
	if records[1][0] != "a" || records[2][1] != "2" || records[3][0] != "3" {
		t.Errorf("data records wrong: %v", records[1:4])
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got jsonReport
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output not valid JSON: %v", err)
	}
	if got.ID != "sample" || got.Title != "Sample report" || len(got.Notes) != 1 {
		t.Errorf("header fields wrong: %+v", got)
	}
	if len(got.Tables) != 2 || got.Tables[0].Caption != "first" ||
		len(got.Tables[0].Rows) != 2 || got.Tables[1].Rows[0][0] != "y" {
		t.Errorf("tables wrong: %+v", got.Tables)
	}
}

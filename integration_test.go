package repro

// End-to-end integration tests across the whole stack: scene synthesis →
// trace serialization → machine simulation → invariants, driven through the
// public texsim API exactly as a downstream user would.

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/texsim"
)

// TestPipelineEndToEnd exercises generate → save → load → simulate →
// cross-check on one benchmark scene.
func TestPipelineEndToEnd(t *testing.T) {
	sc := texsim.Benchmark("truc640", 0.25)

	var buf bytes.Buffer
	if err := texsim.WriteTrace(&buf, sc); err != nil {
		t.Fatal(err)
	}
	loaded, err := texsim.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	st, err := texsim.Measure(loaded)
	if err != nil {
		t.Fatal(err)
	}
	res, err := texsim.Simulate(loaded, texsim.Config{
		Procs: 16, Distribution: texsim.Block, TileSize: 16,
		CacheKind: texsim.CacheReal, Bus: texsim.BusConfig{TexelsPerCycle: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The machine must draw exactly what the analyzer counted. (The trace
	// stores float32 vertex coordinates, so this also pins down that the
	// serialization round trip does not perturb rasterization: Measure ran
	// on the loaded scene.)
	if res.Fragments != st.PixelsRendered {
		t.Errorf("machine drew %d fragments, analyzer counted %d",
			res.Fragments, st.PixelsRendered)
	}
	if res.Cycles <= 0 || res.TexelToFragment() <= 0 {
		t.Errorf("degenerate result: %v cycles, ratio %v", res.Cycles, res.TexelToFragment())
	}
}

// TestFragmentConservationProperty: for random small scenes and random
// machine configurations, every distribution (and both alternative
// architectures) draws exactly the same fragments — work is partitioned,
// never lost or duplicated — and completion time is bounded below by the
// busiest node's work.
func TestFragmentConservationProperty(t *testing.T) {
	f := func(seed int64, procs8, size6, kind2 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sc, err := texsim.GenerateScene(texsim.SceneParams{
			Name: "prop", Width: 200, Height: 150,
			Triangles:       100 + rng.Intn(200),
			DepthComplexity: 1 + 3*rng.Float64(),
			Textures:        1 + rng.Intn(20),
			TexSize:         32,
			TexelDensity:    0.3 + rng.Float64(),
			FreshFraction:   rng.Float64(),
			HotSpots:        rng.Intn(3),
			HotSpotShare:    0.4 * rng.Float64(),
			Seed:            seed,
		})
		if err != nil {
			return false
		}
		procs := int(procs8%16) + 1
		size := 1 << (size6 % 6) // 1..32
		kind := texsim.Block
		if kind2%2 == 1 {
			kind = texsim.SLI
		}

		ref, err := texsim.Simulate(sc, texsim.Config{Procs: 1, CacheKind: texsim.CachePerfect})
		if err != nil {
			return false
		}
		cfg := texsim.Config{Procs: procs, Distribution: kind, TileSize: size,
			CacheKind: texsim.CachePerfect}
		res, err := texsim.Simulate(sc, cfg)
		if err != nil || res.Fragments != ref.Fragments {
			return false
		}
		var maxBusy float64
		for _, n := range res.Nodes {
			if n.BusyCycles > maxBusy {
				maxBusy = n.BusyCycles
			}
		}
		if res.Cycles+1e-9 < maxBusy {
			return false
		}
		// The two alternative architectures conserve fragments too.
		if kind == texsim.Block {
			dyn, err := texsim.SimulateDynamic(sc, cfg, texsim.DynamicLPT)
			if err != nil || dyn.Fragments != ref.Fragments {
				return false
			}
		}
		last, err := texsim.SimulateSortLast(sc, cfg, texsim.SortLastChunked)
		if err != nil || last.Fragments != ref.Fragments {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestSpeedupNeverExceedsProcs: parallel hardware cannot beat N× on any
// configuration (the distributor and composition are ideal but add no work).
func TestSpeedupNeverExceedsProcs(t *testing.T) {
	sc := texsim.Benchmark("blowout775", 0.2)
	for _, procs := range []int{2, 8, 32} {
		for _, kind := range []struct {
			d    texsim.Config
			name string
		}{
			{texsim.Config{Distribution: texsim.Block, TileSize: 8}, "block8"},
			{texsim.Config{Distribution: texsim.SLI, TileSize: 2}, "sli2"},
			{texsim.Config{Distribution: texsim.BlockSkewed, TileSize: 8}, "skew8"},
		} {
			cfg := kind.d
			cfg.Procs = procs
			cfg.CacheKind = texsim.CachePerfect
			sp, _, _, err := texsim.Speedup(sc, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if sp > float64(procs)*1.001 {
				t.Errorf("%s/p%d: speedup %v exceeds processor count", kind.name, procs, sp)
			}
		}
	}
}

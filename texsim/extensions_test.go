package texsim_test

import (
	"testing"

	"repro/texsim"
)

func TestDynamicFacade(t *testing.T) {
	sc := texsim.Benchmark("blowout775", 0.2)
	cfg := texsim.Config{Procs: 8, Distribution: texsim.Block, TileSize: 16,
		CacheKind: texsim.CachePerfect}
	static, err := texsim.Simulate(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := texsim.SimulateDynamic(sc, cfg, texsim.DynamicLPT)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Fragments != static.Fragments {
		t.Errorf("dynamic drew %d fragments, static %d", dyn.Fragments, static.Fragments)
	}
	if _, err := texsim.SimulateDynamic(sc, texsim.Config{
		Procs: 4, Distribution: texsim.SLI, TileSize: 2, CacheKind: texsim.CachePerfect,
	}, texsim.DynamicScreenOrder); err == nil {
		t.Error("dynamic SLI accepted")
	}
}

func TestPanAndSequenceFacade(t *testing.T) {
	sc := texsim.Benchmark("massive11255", 0.2)
	frames := texsim.PanSequence(sc, 3, 8, 0)
	if len(frames) != 3 || frames[0] != sc {
		t.Fatal("PanSequence shape wrong")
	}
	m, err := texsim.NewMachine(sc, texsim.Config{
		Procs: 4, TileSize: 16, CacheKind: texsim.CacheReal,
		L2Config: texsim.CacheConfig{SizeBytes: 1 << 20, Ways: 8, LineBytes: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := texsim.RunSequence(m, frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d frame results", len(results))
	}
	// Warm frames must fetch less from main memory than the cold one.
	mainLines := func(r *texsim.Result) (n uint64) {
		for i := range r.Nodes {
			n += r.Nodes[i].MainBus.LinesFetched
		}
		return
	}
	if mainLines(results[1]) >= mainLines(results[0]) {
		t.Errorf("warm frame main traffic %d not below cold %d",
			mainLines(results[1]), mainLines(results[0]))
	}
}

func TestGLFacade(t *testing.T) {
	c := texsim.NewGL("gl-facade", texsim.Rect{X1: 128, Y1: 128})
	tex := c.GenTexture(64, 64)
	c.BindTexture(tex)
	c.Begin(texsim.GLQuads)
	for _, p := range [][2]float64{{0, 0}, {64, 0}, {64, 64}, {0, 64}} {
		c.TexCoord2f(p[0], p[1])
		c.Vertex2f(p[0], p[1])
	}
	c.End()
	sc, err := c.Scene()
	if err != nil {
		t.Fatal(err)
	}
	res, err := texsim.Simulate(sc, texsim.Config{Procs: 2, CacheKind: texsim.CacheReal})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fragments != 64*64 {
		t.Errorf("GL quad drew %d fragments, want 4096", res.Fragments)
	}
}

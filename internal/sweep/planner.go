// The sweep planner: rasterization depends only on (scene, resolution,
// distribution, processors, tile size), so sweep points that differ only in
// cache geometry, bus bandwidth or buffer depth share their raster work. The
// planner partitions a sweep's simulations — baselines included — into
// raster-equivalence classes keyed by Spec.RasterClassKey, rasterizes once
// per multi-member class into a core.RasterArtifact, and fans the artifact
// out to every member simulation. Replay is byte-identical to rasterizing
// (core's artifact contract), so memoization changes wall-clock only; the
// RunOpts.NoMemo escape hatch exists for benchmarking and distrust, never
// for correctness.
package sweep

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/trace"
)

// PlanStats reports what the planner did with one sweep. texsweep prints
// them as a stderr stat line and embeds them in -json output; they are NOT
// part of RunWith's Result (plan shape depends on RunOpts.NoMemo, which is
// outside the spec's cache identity, so cacheable result documents must not
// carry it).
type PlanStats struct {
	// Points is the number of sweep points (rows).
	Points int `json:"points"`
	// Baselines is the number of one-processor speedup baselines (one per
	// distinct cache/bus/buffer combination).
	Baselines int `json:"baselines"`
	// Classes is the number of raster-equivalence classes across points and
	// baselines.
	Classes int `json:"classes"`
	// Rasterizations is how many times a frame was actually rasterized: one
	// per memoized class, one per member everywhere else.
	Rasterizations int `json:"rasterizations"`
	// Saved is Points+Baselines-Rasterizations. Checkpoint-restored work
	// counts toward it: a restored simulation is a rasterization avoided.
	Saved int `json:"saved"`
	// Checkpointed is how many simulations (rows plus speedup baselines)
	// were restored from the checkpoint store (RunOpts.Rows) instead of
	// running. Always 0 without a store.
	Checkpointed int `json:"checkpointed"`
	// Memoized reports whether memoization was enabled for the run.
	Memoized bool `json:"memoized"`
}

// classState is one raster-equivalence class: its identity, whether it is
// worth memoizing, and the lazily built shared artifact. The mutex guards
// build-once and the member refcount; members acquire before simulating and
// release after, so the artifact is dropped as soon as its last member is
// done.
type classState struct {
	procs, size int
	// spansOnly is true when every member is a pure-scan machine (perfect
	// cache, infinite bus), which never consults texel addresses — the
	// artifact then skips footprint generation entirely.
	spansOnly bool
	// memoized is decided once membership is complete (seal): only classes
	// with at least two members pay for an artifact.
	memoized bool

	mu        sync.Mutex
	remaining int
	built     bool
	art       *core.RasterArtifact
	err       error
}

// acquire returns the class artifact, building it on first use. Concurrent
// members block until the build completes; a build failure is remembered and
// returned to every member.
func (cs *classState) acquire(ctx context.Context, sc *trace.Scene, dk distrib.Kind, workers int) (*core.RasterArtifact, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if !cs.built {
		cs.art, cs.err = core.BuildRasterArtifact(ctx, []*trace.Scene{sc}, cs.procs, dk,
			cs.size, core.ArtifactOpts{Workers: workers, SpansOnly: cs.spansOnly})
		cs.built = true
	}
	return cs.art, cs.err
}

// release drops one member's reference; the last release frees the artifact.
func (cs *classState) release() {
	cs.mu.Lock()
	cs.remaining--
	if cs.remaining == 0 {
		cs.art = nil
	}
	cs.mu.Unlock()
}

// plan is the class partition of one sweep. Classes are kept in first-seen
// order so every derived output is deterministic.
type plan struct {
	byKey map[string]*classState
	order []*classState
	memo  bool
	stats PlanStats
}

func newPlan(memo bool) *plan {
	return &plan{byKey: make(map[string]*classState), memo: memo}
}

// add registers one simulation (a sweep point or a baseline) with the class
// it belongs to and returns that class. ck and bus narrow the class's
// spans-only eligibility: one member that consults addresses forces full
// footprints for the whole class.
func (p *plan) add(spec Spec, procs, size int, ck core.CacheKind, bus float64) *classState {
	key := spec.RasterClassKey(procs, size)
	cs := p.byKey[key]
	if cs == nil {
		cs = &classState{procs: procs, size: size, spansOnly: true}
		p.byKey[key] = cs
		p.order = append(p.order, cs)
	}
	cs.remaining++
	if ck != core.CachePerfect || bus != 0 {
		cs.spansOnly = false
	}
	return cs
}

// seal closes membership: decides which classes memoize and fills the
// statistics. Must be called before any member simulates.
func (p *plan) seal(points, baselines int) {
	p.stats = PlanStats{Points: points, Baselines: baselines, Memoized: p.memo}
	for _, cs := range p.order {
		cs.memoized = p.memo && cs.remaining >= 2
		p.stats.Classes++
		if cs.memoized {
			p.stats.Rasterizations++
		} else {
			p.stats.Rasterizations += cs.remaining
		}
	}
	p.stats.Saved = points + baselines - p.stats.Rasterizations
}

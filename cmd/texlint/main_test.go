package main

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// buildTexlint compiles the texlint binary once into a temp dir and
// returns its path.
func buildTexlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "texlint")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building texlint: %v\n%s", err, out)
	}
	return bin
}

// repoRoot walks up from the working directory to the directory holding
// go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

// TestVetToolCleanTree drives the full go vet -vettool protocol (version
// probe, flag probe, per-package .cfg invocations) over real repository
// packages and expects a clean exit: the tree must hold its own contracts.
func TestVetToolCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	bin := buildTexlint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin,
		"./internal/cluster/...", "./internal/service/...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over a clean tree failed: %v\n%s", err, out)
	}
}

// TestVetToolReportsViolation builds a throwaway module that reuses this
// repository's module path (so the suite's import-path scoping applies),
// plants a locksafe violation in its internal/cluster package, and expects
// go vet -vettool to fail with the diagnostic.
func TestVetToolReportsViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	bin := buildTexlint(t)

	mod := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module repro\n\ngo 1.22\n")
	write("internal/cluster/bad.go", `package cluster

import "sync"

type table struct {
	mu    sync.Mutex
	peers map[string]bool
}

func (t *table) add(addr string) {
	t.mu.Lock()
	t.peers[addr] = true
}
`)

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = mod
	// An isolated GOFLAGS keeps a caller's -mod=vendor from leaking in.
	cmd.Env = append(os.Environ(), "GOFLAGS=")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed over a planted lock leak; output:\n%s", out)
	}
	var exit *exec.ExitError
	if !errors.As(err, &exit) {
		t.Fatalf("go vet did not exit with a status error: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "no corresponding Unlock") {
		t.Fatalf("diagnostic missing from go vet output:\n%s", out)
	}
}

// TestListFlag keeps the -list inventory in sync with the suite.
func TestListFlag(t *testing.T) {
	bin := buildTexlint(t)
	var out bytes.Buffer
	cmd := exec.Command(bin, "-list")
	cmd.Stdout = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("texlint -list: %v", err)
	}
	for _, name := range []string{"determinism", "ctxfirst", "locksafe", "metriclint", "goleak", "parshare", "rpchygiene"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("texlint -list missing analyzer %q:\n%s", name, out.String())
		}
	}
}

// Package parshare guards the invariant behind the byte-identical
// equivalence matrix: closures dispatched across workers by internal/par
// (and wrappers like internal/experiments' forEachParallel) may only write
// captured state in ways that cannot race.
//
// A dispatch site is a call whose callee name contains "foreach" (any
// case) and whose final argument is a function literal of shape
// func(i int) error — the worker-index signature par.ForEach hands each
// worker. Inside that literal, writes to variables captured from the
// enclosing scope are checked:
//
//   - a plain assignment to a captured variable always races;
//   - a captured map write races unless a captured sync.Mutex is held at
//     the write (maps are never index-disjoint);
//   - a captured slice/array element write is allowed only when the index
//     depends on the worker index (directly or through locals derived from
//     it) or a mutex is held — anything else lets two workers collide on
//     one slot;
//   - field writes and pointer stores into captured values race unless an
//     index on the access path is worker-disjoint or a mutex is held.
//
// Locals declared inside the literal are per-invocation and always fine;
// so is everything under a held mutex (lock tracking is the same
// source-order approximation locksafe uses).
package parshare

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the parallel-dispatch write-disjointness check.
var Analyzer = &framework.Analyzer{
	Name: "parshare",
	Doc: "closures dispatched by par.ForEach-style drivers may write captured " +
		"slices/maps only through worker-disjoint indices, per-worker buffers, or a mutex",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			lit := dispatchedLit(pass, call)
			if lit == nil {
				return true
			}
			checkLit(pass, lit)
			return true
		})
	}
	return nil
}

// dispatchedLit returns the worker closure when call is a parallel
// dispatch: callee named like ForEach and a trailing func(i int) error
// literal.
func dispatchedLit(pass *framework.Pass, call *ast.CallExpr) *ast.FuncLit {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return nil
	}
	if !strings.Contains(strings.ToLower(name), "foreach") {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
	if !ok {
		return nil
	}
	sig, ok := pass.TypeOf(lit).(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		return nil
	}
	basic, ok := sig.Params().At(0).Type().(*types.Basic)
	if !ok || basic.Kind() != types.Int {
		return nil
	}
	return lit
}

func checkLit(pass *framework.Pass, lit *ast.FuncLit) {
	free := framework.FreeVars(pass.TypesInfo, lit)
	captured := make(map[types.Object]bool, len(free))
	for v := range free {
		captured[v] = true
	}
	w := &walker{
		pass:     pass,
		captured: captured,
		derived:  derivedFromIndex(pass, lit),
	}
	w.stmts(lit.Body.List, make(map[string]bool))
}

// derivedFromIndex returns the worker-index parameter plus every local
// whose initializer mentions it (transitively): the set of expressions that
// make a slice index worker-disjoint.
func derivedFromIndex(pass *framework.Pass, lit *ast.FuncLit) map[types.Object]bool {
	derived := make(map[types.Object]bool)
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				derived[obj] = true
			}
		}
	}
	mentions := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && derived[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.ObjectOf(id)
					if obj == nil || derived[obj] {
						continue
					}
					// Both forms: x := f(i) (one rhs for all lhs) and
					// positional x, y := i, j.
					rhs := n.Rhs[0]
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					if mentions(rhs) {
						derived[obj] = true
						changed = true
					}
				}
			case *ast.RangeStmt:
				if n.X == nil || !mentions(n.X) {
					return true
				}
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok {
						if obj := pass.ObjectOf(id); obj != nil && !derived[obj] {
							derived[obj] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}
	return derived
}

type walker struct {
	pass     *framework.Pass
	captured map[types.Object]bool
	derived  map[types.Object]bool
}

// mutexOp classifies a sync.Mutex/RWMutex lock or unlock call.
func (w *walker) mutexOp(call *ast.CallExpr) (key string, lock, unlock bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	fn, ok := w.pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false, false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false, false
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return "", false, false
	}
	key = types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		return key, true, false
	case "Unlock", "RUnlock":
		return key, false, true
	}
	return "", false, false
}

// stmts threads the held-lock set through a statement list in source order
// (the locksafe approximation: good enough for lock/unlock bracketing).
func (w *walker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *walker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, lock, unlock := w.mutexOp(call); lock || unlock {
				if lock {
					held[key] = true
				} else {
					delete(held, key)
				}
				return
			}
		}
	case *ast.DeferStmt:
		// A deferred unlock keeps the section open to function end; a
		// deferred closure is checked under the current held set.
		if _, _, unlock := w.mutexOp(s.Call); unlock {
			return
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, copyHeld(held))
		}
	case *ast.AssignStmt:
		if len(held) == 0 {
			for _, lhs := range s.Lhs {
				w.checkWrite(lhs, held)
			}
		}
	case *ast.IncDecStmt:
		if len(held) == 0 {
			w.checkWrite(s.X, held)
		}
	case *ast.BlockStmt:
		w.stmts(s.List, held)
		return
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
		return
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.stmts(s.Body.List, copyHeld(held))
		return
	case *ast.RangeStmt:
		w.stmts(s.Body.List, copyHeld(held))
		return
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
		return
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// A goroutine spawned inside the worker shares nothing with the
			// held set (it runs concurrently with the unlock).
			w.stmts(lit.Body.List, make(map[string]bool))
		}
		return
	}
	switch s := s.(type) {
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

// checkWrite classifies one assignment target reached with no lock held.
func (w *walker) checkWrite(lhs ast.Expr, held map[string]bool) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if w.isCaptured(e) {
			w.pass.Reportf(e.Pos(), "worker closure writes captured variable %s; every worker shares it — use a local, an indexed slot, or a mutex", e.Name)
		}
	case *ast.IndexExpr:
		root := rootIdent(e.X)
		if root == nil || !w.isCaptured(root) {
			return
		}
		baseType := w.pass.TypeOf(e.X)
		if baseType != nil {
			if _, isMap := baseType.Underlying().(*types.Map); isMap {
				w.pass.Reportf(e.Pos(), "worker closure writes captured map %s without a lock; map writes are never index-disjoint", root.Name)
				return
			}
		}
		if !w.indexIsDisjoint(e.Index) {
			w.pass.Reportf(e.Pos(), "worker closure writes captured slice %s at an index that does not depend on the worker index; workers may collide — index by the worker index or use per-worker buffers", root.Name)
		}
	case *ast.SelectorExpr:
		switch x := ast.Unparen(e.X).(type) {
		case *ast.Ident:
			if w.isCaptured(x) {
				w.pass.Reportf(e.Pos(), "worker closure writes field %s of captured %s; every worker shares it — guard it with a mutex or write into an indexed slot", e.Sel.Name, x.Name)
			}
		default:
			w.checkWrite(x, held)
		}
	case *ast.StarExpr:
		if root := rootIdent(e.X); root != nil && w.isCaptured(root) {
			w.pass.Reportf(e.Pos(), "worker closure stores through captured pointer %s; every worker shares the target", root.Name)
		}
	}
}

func (w *walker) isCaptured(id *ast.Ident) bool {
	obj := w.pass.ObjectOf(id)
	return obj != nil && w.captured[obj]
}

// indexIsDisjoint reports whether the index expression mentions the worker
// index or a local derived from it.
func (w *walker) indexIsDisjoint(idx ast.Expr) bool {
	found := false
	ast.Inspect(idx, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := w.pass.TypesInfo.Uses[id]; obj != nil && w.derived[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// rootIdent peels selectors, indexes and derefs down to the base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

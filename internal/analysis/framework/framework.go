// Package framework is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough driver machinery to run
// AST+types analyzers over this module's packages. It exists because the
// repository is stdlib-only by policy — the real analysis framework would be
// the first external dependency — and because the four texlint analyzers
// (determinism, ctxfirst, locksafe, metriclint) need nothing beyond parsed
// files, type information and a diagnostic sink.
//
// The moving parts mirror x/tools deliberately so the analyzers could be
// ported to the real framework later with mechanical edits: an Analyzer has
// a Name, Doc and Run func; Run receives a *Pass carrying the package's
// files, *types.Package and *types.Info and reports through Pass.Reportf.
//
// Suppression: a diagnostic is dropped when the line it lands on, or the
// line above it, carries a comment of the form
//
//	//texlint:ignore name1,name2 reason...
//	//texlint:ignore all reason...
//
// naming the analyzer. The reason is mandatory in spirit (reviewers should
// see why) but not enforced.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore comments.
	Name string
	// Doc is a one-paragraph description, shown by texlint -help.
	Doc string
	// Run executes the check and reports findings through the pass.
	Run func(*Pass) error
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when the type checker recorded none.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// ObjectOf resolves an identifier to its object (definition or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return p.TypesInfo.Uses[id]
}

// Diagnostic is one finding, positioned in the file set it came from.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// ignoreRe matches texlint suppression comments. The directive must open
// the comment: `//texlint:ignore determinism reason...`.
var ignoreRe = regexp.MustCompile(`^//\s*texlint:ignore\s+([a-zA-Z0-9_,]+)`)

// ignoreIndex records, per file and line, which analyzers are suppressed.
type ignoreIndex map[string]map[int]map[string]bool

func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) ignoreIndex {
	idx := make(ignoreIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					idx[pos.Filename] = byLine
				}
				names := make(map[string]bool)
				for _, n := range strings.Split(m[1], ",") {
					names[strings.TrimSpace(n)] = true
				}
				// The comment covers its own line and the next, so both
				// trailing (`stmt //texlint:ignore x`) and standalone
				// (`//texlint:ignore x` above the stmt) placements work.
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = make(map[string]bool)
					}
					for n := range names {
						byLine[line][n] = true
					}
				}
			}
		}
	}
	return idx
}

func (idx ignoreIndex) suppressed(d Diagnostic) bool {
	byLine := idx[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	names := byLine[d.Pos.Line]
	return names != nil && (names[d.Analyzer] || names["all"])
}

// RunAnalyzers applies each analyzer to the package and returns the
// surviving (non-suppressed) diagnostics sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	idx := buildIgnoreIndex(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report: func(d Diagnostic) {
				if !idx.suppressed(d) {
					out = append(out, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzing %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// NewInfo returns a fully-populated types.Info ready for Check.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

func TestExtSortLastShape(t *testing.T) {
	rep, err := RunExtSortLast(context.Background(), shapeOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table) != 2 {
		t.Fatalf("want 2 tables, got %d", len(rep.Table))
	}
	speed, routed := rep.Table[0], rep.Table[1]
	// Sort-last must fetch fewer texels per fragment than block-16
	// sort-middle on every scene (cols: 3 = middle ratio, 4 = last ratio).
	for _, row := range speed.Rows {
		middle, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		last, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if last >= middle {
			t.Errorf("%s: sort-last ratio %v not below sort-middle %v", row[0], last, middle)
		}
	}
	// Sort-last routes each triangle exactly once; sort-middle more.
	for _, row := range routed.Rows {
		tris, _ := strconv.ParseFloat(row[1], 64)
		mid, _ := strconv.ParseFloat(row[2], 64)
		last, _ := strconv.ParseFloat(row[3], 64)
		if last > tris {
			t.Errorf("%s: sort-last routed %v > %v triangles", row[0], last, tris)
		}
		if mid <= last {
			t.Errorf("%s: sort-middle routed %v not above sort-last %v", row[0], mid, last)
		}
	}
}

func TestExtOverlapShape(t *testing.T) {
	rep, err := RunExtOverlap(context.Background(), shapeOpt)
	if err != nil {
		t.Fatal(err)
	}
	routedTab := rep.Table[0]
	// Cells are "measured (predicted)": prediction within 40 % of measured
	// everywhere, and measured shrinks as width grows.
	parse := func(cell string) (measured, predicted float64) {
		parts := strings.SplitN(cell, " (", 2)
		m, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			t.Fatalf("bad cell %q", cell)
		}
		p, err := strconv.ParseFloat(strings.TrimSuffix(parts[1], ")"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", cell)
		}
		return m, p
	}
	prev := make([]float64, len(routedTab.Header))
	for ri, row := range routedTab.Rows {
		for ci := 1; ci < len(row); ci++ {
			m, p := parse(row[ci])
			if m <= 0 || p <= 0 {
				t.Fatalf("row %s col %d: nonpositive cell", row[0], ci)
			}
			rel := (p - m) / m
			if rel < -0.4 || rel > 0.6 {
				t.Errorf("width %s scene col %d: prediction %v vs measured %v", row[0], ci, p, m)
			}
			if ri > 0 && m >= prev[ci] {
				t.Errorf("col %d: measured overlap did not shrink with width (row %s)", ci, row[0])
			}
			prev[ci] = m
		}
	}
	// Setup share shrinks with width for every scene.
	setupTab := rep.Table[1]
	first, lastRow := setupTab.Rows[0], setupTab.Rows[len(setupTab.Rows)-1]
	for ci := 1; ci < len(first); ci++ {
		f, _ := strconv.ParseFloat(strings.TrimSuffix(first[ci], "%"), 64)
		l, _ := strconv.ParseFloat(strings.TrimSuffix(lastRow[ci], "%"), 64)
		if l >= f {
			t.Errorf("col %d: setup share grew with width (%v%% → %v%%)", ci, f, l)
		}
	}
}

// Command texlint runs the repository's static-analysis suite (see
// internal/analysis): determinism, ctxfirst, locksafe and metriclint, each
// scoped to the packages whose invariants it guards.
//
// Standalone (the CI entry point):
//
//	go run ./cmd/texlint ./...
//
// As a go vet tool (diagnostics integrate with vet's output and caching):
//
//	go build -o texlint ./cmd/texlint
//	go vet -vettool=./texlint ./...
//
// Exit status is non-zero when any diagnostic is reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis/ctxfirst"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/goleak"
	"repro/internal/analysis/locksafe"
	"repro/internal/analysis/metriclint"
	"repro/internal/analysis/parshare"
	"repro/internal/analysis/rpchygiene"
)

// scoped pairs an analyzer with the import paths it applies to.
type scoped struct {
	analyzer *framework.Analyzer
	inScope  func(importPath string) bool
}

// determinismScope lists the simulator packages under the result-cache
// soundness contract: everything between a config and a result document.
// internal/scene is included because synthetic scenes feed cache-keyed
// sweeps — a nondeterministic generator poisons every downstream result.
var determinismScope = map[string]bool{
	"repro/internal/core":    true,
	"repro/internal/cache":   true,
	"repro/internal/distrib": true,
	"repro/internal/engine":  true,
	"repro/internal/geom":    true,
	"repro/internal/memory":  true,
	"repro/internal/overlap": true,
	"repro/internal/raster":  true,
	"repro/internal/scene":   true,
	"repro/internal/sim":     true,
	"repro/internal/stats":   true,
	"repro/internal/sweep":   true,
	"repro/internal/texture": true,
	"repro/internal/trace":   true,
	// The flight recorder sits inside the simulation loop and its output is
	// embedded in cache-keyed result documents: pure cycle arithmetic only.
	"repro/internal/telemetry/flight": true,
}

func suite() []scoped {
	return []scoped{
		{determinism.Analyzer, func(p string) bool { return determinismScope[p] }},
		{ctxfirst.Analyzer, func(p string) bool { return strings.HasPrefix(p, "repro/internal/") }},
		{locksafe.Analyzer, func(p string) bool {
			// The packages that hold mutexes around shared service state:
			// blocking under those locks stalls every request.
			return p == "repro/internal/service" || p == "repro/internal/cluster"
		}},
		{metriclint.Analyzer, func(p string) bool { return strings.HasPrefix(p, "repro/") }},
		{goleak.Analyzer, func(p string) bool {
			// The layers whose goroutines must drain on SIGTERM or peer
			// death: the job service, the cluster plane, the sweep engine
			// that fans work out under them, and the ops plane (progress
			// broker subscribers, metrics sampler loop).
			return p == "repro/internal/service" || p == "repro/internal/cluster" ||
				p == "repro/internal/sweep" || p == "repro/internal/telemetry/progress" ||
				p == "repro/internal/metrics"
		}},
		{parshare.Analyzer, func(p string) bool { return strings.HasPrefix(p, "repro/") }},
		{rpchygiene.Analyzer, func(p string) bool {
			// The two packages on the cluster wire: the peer-protocol
			// client and the HTTP handlers.
			return p == "repro/internal/service" || p == "repro/internal/cluster"
		}},
	}
}

func main() {
	// go vet protocol: version and flag probes, then one .cfg invocation
	// per package.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		fmt.Println("texlint version texlint-1.0")
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]") // no tool-specific flags to hand to go vet
		return
	}
	if len(os.Args) >= 2 && strings.HasSuffix(os.Args[len(os.Args)-1], ".cfg") {
		runVet(os.Args[len(os.Args)-1])
		return
	}

	list := flag.Bool("list", false, "list the analyzers and their scopes, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: texlint [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the texlint analyzers over the given package patterns (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, s := range suite() {
			fmt.Printf("%-12s %s\n", s.analyzer.Name, s.analyzer.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := framework.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "texlint:", err)
		os.Exit(1)
	}
	total := 0
	for _, pkg := range pkgs {
		total += reportPackage(pkg, false)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "texlint: %d diagnostic(s)\n", total)
		os.Exit(1)
	}
}

// reportPackage runs the in-scope analyzers and prints the diagnostics,
// returning how many were reported. With skipTests set, diagnostics landing
// in _test.go files are dropped (tests legitimately read clocks and mint
// root contexts).
func reportPackage(pkg *framework.Package, skipTests bool) int {
	var analyzers []*framework.Analyzer
	for _, s := range suite() {
		if s.inScope(pkg.ImportPath) {
			analyzers = append(analyzers, s.analyzer)
		}
	}
	if len(analyzers) == 0 {
		return 0
	}
	diags, err := framework.RunAnalyzers(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "texlint:", err)
		os.Exit(1)
	}
	n := 0
	for _, d := range diags {
		if skipTests && strings.HasSuffix(d.Pos.Filename, "_test.go") {
			continue
		}
		fmt.Fprintln(os.Stderr, d)
		n++
	}
	return n
}

// vetConfig is the package description go vet hands a -vettool, one JSON
// file per package (the x/tools unitchecker wire format).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet analyzes one package under the go vet protocol.
func runVet(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalVet(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalVet(fmt.Errorf("parsing %s: %w", cfgPath, err))
	}
	// texlint exports no facts, but vet expects the facts file to exist.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fatalVet(err)
			}
		}
	}
	// Skip facts-only invocations and test variants: test code legitimately
	// reads clocks and mints root contexts, and the plain package variant is
	// analyzed on its own.
	if cfg.VetxOnly || strings.HasSuffix(cfg.ImportPath, ".test") ||
		strings.HasSuffix(cfg.ImportPath, "_test") {
		writeVetx()
		return
	}

	exportFiles := make(map[string]string, len(cfg.PackageFile)+len(cfg.ImportMap))
	for path, file := range cfg.PackageFile {
		exportFiles[path] = file
	}
	for src, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok {
			exportFiles[src] = file
		}
	}
	var goFiles []string
	for _, f := range cfg.GoFiles {
		// In-package test variants arrive with _test.go files merged in;
		// analyze only the library sources.
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	if len(goFiles) == 0 {
		writeVetx()
		return
	}
	pkg, err := framework.LoadFromFiles(cfg.ImportPath, goFiles, exportFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return
		}
		fatalVet(err)
	}
	n := reportPackage(pkg, true)
	writeVetx()
	if n > 0 {
		os.Exit(2)
	}
}

func fatalVet(err error) {
	fmt.Fprintln(os.Stderr, "texlint:", err)
	os.Exit(1)
}

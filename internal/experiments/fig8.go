package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/memory"
	"repro/internal/stats"
)

// fig8Buffers is the triangle-FIFO sweep of Figure 8.
var fig8Buffers = []int{1, 5, 10, 20, 50, 100, 500, 10000}

// fig8Procs is the machine size of Figure 8.
const fig8Procs = 64

// RunFig8 reproduces Figure 8: speedup of truc640 on a 64-processor block
// machine versus block width and triangle-buffer size, with a perfect cache
// and with the 16 KB cache on a 2 texel/pixel bus.
func RunFig8(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	const sceneName = "truc640"
	s, err := buildScene(ctx, sceneName, opt)
	if err != nil {
		return nil, err
	}

	type variant struct {
		name  string
		cache core.CacheKind
		bus   memory.BusConfig
	}
	variants := []variant{
		{"perfect cache", core.CachePerfect, memory.BusConfig{}},
		{"16 KB cache, 2 texels/pixel bus", core.CacheReal, memory.BusConfig{TexelsPerCycle: 2}},
	}

	// One single-processor baseline per variant (buffer size is immaterial
	// with a single consumer fed by an instantaneous distributor).
	t1 := make([]float64, len(variants))
	for i, v := range variants {
		res, err := simulate(ctx, s, core.Config{Procs: 1, CacheKind: v.cache, Bus: v.bus})
		if err != nil {
			return nil, err
		}
		t1[i] = res.Cycles
	}

	type cellKey struct {
		variant int
		buffer  int
		width   int
	}
	type job struct {
		key cellKey
		cfg core.Config
	}
	var jobs []job
	for vi, v := range variants {
		for _, buf := range fig8Buffers {
			for _, w := range blockWidths {
				jobs = append(jobs, job{cellKey{vi, buf, w}, core.Config{
					Procs: fig8Procs, Distribution: distrib.BlockKind, TileSize: w,
					CacheKind: v.cache, Bus: v.bus, TriangleBuffer: buf,
				}})
			}
		}
	}
	cells := make(map[cellKey]float64, len(jobs))
	var mu sync.Mutex
	err = forEachParallel(ctx, opt.Parallelism, len(jobs), func(i int) error {
		j := jobs[i]
		res, err := simulate(ctx, s, j.cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		cells[j.key] = t1[j.key.variant] / res.Cycles
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	var tables []*stats.Table
	for vi, v := range variants {
		header := []string{"buffer"}
		for _, w := range blockWidths {
			header = append(header, fmt.Sprintf("w%d", w))
		}
		header = append(header, "best")
		t := &stats.Table{
			Caption: fmt.Sprintf("%s, %d processors, block distribution: speedup vs block width and buffer size (%s)",
				sceneName, fig8Procs, v.name),
			Header: header,
		}
		for _, buf := range fig8Buffers {
			row := []string{fmt.Sprintf("%d", buf)}
			bestW, bestV := 0, 0.0
			for _, w := range blockWidths {
				val := cells[cellKey{vi, buf, w}]
				row = append(row, stats.F(val, 1))
				if val > bestV {
					bestV, bestW = val, w
				}
			}
			row = append(row, fmt.Sprintf("w%d", bestW))
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}

	return &Report{
		ID:    "fig8-buffer",
		Title: "Effect of triangle buffering",
		Notes: []string{
			scaleNote(opt),
			"expect: ≈500 entries needed to approach the ideal; small buffers reduce peak speedup and shift the best width smaller; the loss is larger with the real cache than with the perfect one",
		},
		Table: tables,
	}, nil
}

// Package telemetry groups the repository's observability layers:
//
//   - telemetry/flight is the simulation flight recorder: an opt-in,
//     zero-cost-when-disabled hook in the engine hot path that buckets each
//     node's cycles into phases (setup, scan, texture-stall, idle) over
//     fixed simulated-time intervals and renders them as Chrome trace-event
//     JSON, viewable in Perfetto or chrome://tracing. It answers the
//     question the paper's Figures 5–9 answer — where do the cycles go? —
//     for any single run.
//
//   - telemetry/tracing is span-based request tracing for the texsimd
//     service: W3C traceparent propagation, an in-memory ring of finished
//     spans served at /debug/traces, and HTTP middleware tying HTTP
//     requests to the simulation jobs they spawn.
//
//   - telemetry/logging configures structured log/slog output and threads
//     per-request attributes (request ID, trace ID) through contexts so
//     every log line of a job is correlated with its spans.
//
// The flight recorder is deterministic (pure cycle arithmetic, under the
// determinism analyzer's result-cache soundness contract); the tracing and
// logging layers read the wall clock and live outside the simulator scope.
package telemetry

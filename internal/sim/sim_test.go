package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSimulatorOrdering(t *testing.T) {
	s := New()
	var fired []int
	s.At(10, func(Time) { fired = append(fired, 2) })
	s.At(5, func(Time) { fired = append(fired, 1) })
	s.At(10, func(Time) { fired = append(fired, 3) }) // same time: schedule order
	end := s.Run()
	if end != 10 {
		t.Errorf("end time = %d, want 10", end)
	}
	want := []int{1, 2, 3}
	if len(fired) != 3 || fired[0] != want[0] || fired[1] != want[1] || fired[2] != want[2] {
		t.Errorf("fire order = %v, want %v", fired, want)
	}
}

func TestSimulatorAfterChaining(t *testing.T) {
	s := New()
	var times []Time
	var step func(Time)
	n := 0
	step = func(now Time) {
		times = append(times, now)
		n++
		if n < 5 {
			s.After(3, step)
		}
	}
	s.After(3, step)
	s.Run()
	for i, at := range times {
		if at != Time(3*(i+1)) {
			t.Errorf("event %d at %d, want %d", i, at, 3*(i+1))
		}
	}
}

func TestSimulatorRandomOrderDrain(t *testing.T) {
	// Events inserted in random time order must fire in sorted time order.
	s := New()
	rng := rand.New(rand.NewSource(42))
	var want []Time
	var got []Time
	for i := 0; i < 500; i++ {
		at := Time(rng.Intn(10000))
		want = append(want, at)
		s.At(at, func(now Time) { got = append(got, now) })
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	s.Run()
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d fired at %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func(Time) {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(5, func(Time) {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	s.After(-1, func(Time) {})
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i*10), func(Time) { count++ })
	}
	now, drained := s.RunUntil(55)
	if drained {
		t.Error("RunUntil reported drained with events pending")
	}
	if count != 5 {
		t.Errorf("fired %d events by t=55, want 5", count)
	}
	if now != 50 {
		t.Errorf("now = %d, want 50", now)
	}
	_, drained = s.RunUntil(Forever)
	if !drained || count != 10 {
		t.Errorf("final drain: drained=%v count=%d", drained, count)
	}
}

func TestFIFOBasicOrder(t *testing.T) {
	s := New()
	f := NewFIFO[int](s, 4)
	for i := 0; i < 4; i++ {
		if !f.TryPush(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if !f.Full() {
		t.Error("FIFO should be full")
	}
	if f.TryPush(99) {
		t.Error("push into full FIFO succeeded")
	}
	for i := 0; i < 4; i++ {
		v, ok := f.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d = (%d, %v)", i, v, ok)
		}
	}
	if _, ok := f.TryPop(); ok {
		t.Error("pop from empty FIFO succeeded")
	}
	if f.Peak != 4 {
		t.Errorf("Peak = %d, want 4", f.Peak)
	}
}

func TestFIFOWrapAround(t *testing.T) {
	s := New()
	f := NewFIFO[int](s, 3)
	next := 0
	popped := 0
	for round := 0; round < 10; round++ {
		for !f.Full() {
			f.TryPush(next)
			next++
		}
		v, _ := f.TryPop()
		if v != popped {
			t.Fatalf("round %d: popped %d, want %d", round, v, popped)
		}
		popped++
	}
}

func TestFIFOBackPressure(t *testing.T) {
	// A producer pushing 10 items through a 2-entry FIFO to a consumer that
	// takes 5 cycles per item: producer must stall and total time must be
	// dominated by the consumer (~50 cycles).
	s := New()
	f := NewFIFO[int](s, 2)
	const total = 10
	produced, consumed := 0, 0

	var produce Event
	produce = func(now Time) {
		for produced < total && f.TryPush(produced) {
			produced++
		}
		if produced < total {
			f.WaitSpace(produce)
		}
	}
	var consume Event
	consume = func(now Time) {
		if _, ok := f.TryPop(); ok {
			consumed++
			if consumed < total {
				s.After(5, consume)
			}
			return
		}
		f.WaitItem(consume)
	}
	s.At(0, produce)
	s.At(0, consume)
	end := s.Run()
	if produced != total || consumed != total {
		t.Fatalf("produced=%d consumed=%d", produced, consumed)
	}
	if end < 45 || end > 55 {
		t.Errorf("end = %d, want ~50 (consumer-bound)", end)
	}
}

func TestFIFOConsumerWakesOnPush(t *testing.T) {
	s := New()
	f := NewFIFO[string](s, 1)
	gotAt := Time(-1)
	f.WaitItem(func(now Time) {
		if v, ok := f.TryPop(); !ok || v != "hello" {
			t.Errorf("pop = (%q, %v)", v, ok)
		}
		gotAt = now
	})
	s.At(7, func(Time) { f.TryPush("hello") })
	s.Run()
	if gotAt != 7 {
		t.Errorf("consumer woke at %d, want 7", gotAt)
	}
}

func TestFIFODoubleWaitPanics(t *testing.T) {
	s := New()
	f := NewFIFO[int](s, 1)
	f.TryPush(1) // full, so WaitSpace registers
	f.WaitSpace(func(Time) {})
	defer func() {
		if recover() == nil {
			t.Error("second WaitSpace did not panic")
		}
	}()
	f.WaitSpace(func(Time) {})
}

func TestFIFOZeroCapacityPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("zero-capacity FIFO did not panic")
		}
	}()
	NewFIFO[int](s, 0)
}

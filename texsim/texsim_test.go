package texsim_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/texsim"
)

func TestQuickstartFlow(t *testing.T) {
	// The README's five-line flow must work end to end.
	sc := texsim.Benchmark("blowout775", 0.25)
	res, err := texsim.Simulate(sc, texsim.Config{
		Procs:        16,
		Distribution: texsim.Block,
		TileSize:     16,
		CacheKind:    texsim.CacheReal,
		Bus:          texsim.BusConfig{TexelsPerCycle: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Fragments == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if r := res.TexelToFragment(); r <= 0 || r > 128 {
		t.Errorf("texel-to-fragment ratio %v out of range", r)
	}
}

func TestBenchmarkNamesAndTable1(t *testing.T) {
	names := texsim.BenchmarkNames()
	if len(names) != 7 {
		t.Fatalf("want 7 benchmarks, got %v", names)
	}
	if len(texsim.Table1()) != 7 {
		t.Fatal("Table1 rows missing")
	}
	for _, n := range names {
		if _, err := texsim.LookupBenchmark(n, 0.5); err != nil {
			t.Errorf("LookupBenchmark(%q): %v", n, err)
		}
	}
	if _, err := texsim.LookupBenchmark("nope", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestBenchmarkPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Benchmark(unknown) did not panic")
		}
	}()
	texsim.Benchmark("not-a-scene", 1)
}

func TestSpeedupAPI(t *testing.T) {
	sc := texsim.Benchmark("massive11255", 0.2)
	sp, single, parallel, err := texsim.Speedup(sc, texsim.Config{
		Procs: 4, Distribution: texsim.SLI, TileSize: 4, CacheKind: texsim.CachePerfect,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 1 || sp > 4.01 {
		t.Errorf("speedup %v out of (1, 4]", sp)
	}
	if single.Cycles <= parallel.Cycles {
		t.Error("parallel run not faster than single")
	}
}

func TestCustomSceneAndTraceRoundTrip(t *testing.T) {
	sc, err := texsim.GenerateScene(texsim.SceneParams{
		Name: "custom", Width: 256, Height: 192, Triangles: 300,
		DepthComplexity: 2.5, Textures: 12, TexSize: 64,
		TexelDensity: 0.9, FreshFraction: 0.7, HotSpots: 2, HotSpotShare: 0.3,
		Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := texsim.Measure(sc)
	if err != nil {
		t.Fatal(err)
	}
	if st.DepthComplexity < 2 || st.DepthComplexity > 3 {
		t.Errorf("custom scene DC %v, want ≈2.5", st.DepthComplexity)
	}
	var buf bytes.Buffer
	if err := texsim.WriteTrace(&buf, sc); err != nil {
		t.Fatal(err)
	}
	back, err := texsim.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Triangles) != len(sc.Triangles) || back.Name != sc.Name {
		t.Error("trace round trip lost data")
	}
	// The machine must accept the deserialized scene.
	if _, err := texsim.Simulate(back, texsim.Config{Procs: 2, CacheKind: texsim.CachePerfect}); err != nil {
		t.Fatal(err)
	}
}

func TestReusableMachine(t *testing.T) {
	sc := texsim.Benchmark("quake", 0.2)
	m, err := texsim.NewMachine(sc, texsim.Config{
		Procs: 8, Distribution: texsim.Block, TileSize: 16,
		CacheKind: texsim.CacheReal, CacheConfig: texsim.PaperCache(),
		Bus: texsim.BusConfig{TexelsPerCycle: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := m.Run()
	b := m.Run()
	if a.Cycles != b.Cycles {
		t.Errorf("machine runs differ: %v vs %v", a.Cycles, b.Cycles)
	}
}

func ExampleSimulate() {
	sc := texsim.Benchmark("blowout775", 0.25)
	res, err := texsim.Simulate(sc, texsim.Config{
		Procs:        4,
		Distribution: texsim.Block,
		TileSize:     16,
		CacheKind:    texsim.CachePerfect,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Fragments > 0, res.Cycles > 0)
	// Output: true true
}

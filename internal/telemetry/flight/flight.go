// Package flight is the simulation flight recorder: it attributes every
// cycle of every node of the parallel machine to one of four phases and
// buckets the attributions over fixed intervals of simulated time, so a run
// can be replayed as a timeline instead of a single end-of-run aggregate.
//
// The phases mirror the cycle taxonomy of the paper's result sections:
//
//   - setup: cycles where the triangle setup floor (25 cycles/triangle)
//     exceeds the scan work — the small-triangle overhead of §2.3 that
//     dominates tiny tiles;
//   - scan: cycles retiring fragments at one per cycle;
//   - stall: scanner cycles lost waiting on the texture bus (split 4×4
//     cache lines, bandwidth saturation);
//   - idle: cycles with no triangle to work on — load imbalance, FIFO
//     starvation, and the end-of-frame barrier.
//
// Attribution is exact: for every node, setup+scan+stall+idle equals the
// node's total simulated time, so the recorder is a lossless decomposition
// of the machine's cycle count. The recorder is pure cycle arithmetic —
// no wall clock, no randomness — and therefore safe inside the simulator's
// determinism contract (result-cache soundness).
//
// Rendering: WriteTrace emits Chrome trace-event JSON loadable in Perfetto
// or chrome://tracing (one thread per node, one slice per phase segment,
// plus a per-node busy-fraction counter track), and Summary returns the
// per-node totals for programmatic use.
package flight

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Phase classifies where a node's cycles went.
type Phase int

// The four phases, in trace rendering order.
const (
	PhaseSetup Phase = iota
	PhaseScan
	PhaseStall
	PhaseIdle
	NumPhases
)

// String returns the phase name used in trace events and summaries.
func (p Phase) String() string {
	switch p {
	case PhaseSetup:
		return "setup"
	case PhaseScan:
		return "scan"
	case PhaseStall:
		return "stall"
	case PhaseIdle:
		return "idle"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// autoInitialInterval is the starting bucket width (cycles) in auto mode.
const autoInitialInterval = 256

// maxAutoBuckets bounds the per-node bucket count in auto mode: when a run
// outgrows it, the interval doubles and adjacent buckets merge, so any run
// ends with between maxAutoBuckets/2 and maxAutoBuckets buckets — enough
// resolution to see imbalance, small enough to embed in a result document.
const maxAutoBuckets = 256

// bucket accumulates cycles per phase within one interval.
type bucket [NumPhases]float64

// Node is one engine's recorder. It implements the engine's PhaseRecorder
// hook: the engine reports each triangle's phase cycles and the node tracks
// its own time cursor, deriving idle time from the gaps.
type Node struct {
	rec     *Recorder
	id      int
	cursor  float64 // simulated time accounted for so far
	totals  bucket
	buckets []bucket
}

// Recorder records one machine run: one Node per engine sharing a common
// bucket interval, so all nodes' timelines stay aligned after rescaling.
type Recorder struct {
	initial  float64 // configured interval (0 = auto)
	interval float64
	auto     bool
	nodes    []*Node
}

// New returns a recorder for the given node count. interval is the bucket
// width in cycles; 0 selects auto mode, which starts fine and doubles the
// width whenever a run outgrows maxAutoBuckets buckets.
func New(nodes int, interval float64) *Recorder {
	if nodes <= 0 {
		panic(fmt.Sprintf("flight: node count %d must be positive", nodes))
	}
	if interval < 0 {
		panic(fmt.Sprintf("flight: interval %v must be non-negative", interval))
	}
	r := &Recorder{initial: interval}
	r.reset()
	for i := 0; i < nodes; i++ {
		r.nodes = append(r.nodes, &Node{rec: r, id: i})
	}
	return r
}

func (r *Recorder) reset() {
	r.interval = r.initial
	r.auto = r.initial == 0
	if r.auto {
		r.interval = autoInitialInterval
	}
}

// Reset clears all recorded data, returning the recorder to its initial
// interval; the machine calls it alongside the engines' own resets.
func (r *Recorder) Reset() {
	r.reset()
	for _, n := range r.nodes {
		n.cursor = 0
		n.totals = bucket{}
		n.buckets = n.buckets[:0]
	}
}

// Nodes returns the node count.
func (r *Recorder) Nodes() int { return len(r.nodes) }

// Interval returns the current bucket width in cycles (it grows in auto
// mode as the run lengthens).
func (r *Recorder) Interval() float64 { return r.interval }

// Node returns node i's recorder, the object handed to engine i.
func (r *Recorder) Node(i int) *Node { return r.nodes[i] }

// RecordTriangle attributes one triangle's cycles: the node idled from the
// end of its previous work until start, then spent scan, stall and setup
// cycles (in that within-triangle order — exact in total, approximate in
// sub-triangle ordering, which is finer than any bucket).
func (n *Node) RecordTriangle(start, scan, stall, setup float64) {
	if start > n.cursor {
		n.rec.add(n, PhaseIdle, n.cursor, start)
		n.cursor = start
	}
	n.span(PhaseScan, scan)
	n.span(PhaseStall, stall)
	n.span(PhaseSetup, setup)
}

// AdvanceIdle pads the node with idle time up to t — the end-of-frame
// barrier, where every node waits for the slowest before the buffer swap.
func (n *Node) AdvanceIdle(t float64) {
	if t > n.cursor {
		n.rec.add(n, PhaseIdle, n.cursor, t)
		n.cursor = t
	}
}

func (n *Node) span(p Phase, d float64) {
	if d > 0 {
		n.rec.add(n, p, n.cursor, n.cursor+d)
		n.cursor += d
	}
}

// add accumulates [t0, t1) cycles of phase p, splitting across bucket
// boundaries so each bucket holds exactly the cycles spent inside it.
func (r *Recorder) add(n *Node, p Phase, t0, t1 float64) {
	if t1 <= t0 {
		return
	}
	n.totals[p] += t1 - t0
	if r.auto {
		for t1 > r.interval*maxAutoBuckets {
			r.rescale()
		}
	}
	for t0 < t1 {
		b := int(t0 / r.interval)
		for len(n.buckets) <= b {
			n.buckets = append(n.buckets, bucket{})
		}
		end := r.interval * float64(b+1)
		if end > t1 {
			end = t1
		}
		if end <= t0 { // float-boundary guard: never loop in place
			end = t1
		}
		n.buckets[b][p] += end - t0
		t0 = end
	}
}

// rescale doubles the interval and merges adjacent bucket pairs on every
// node, keeping all timelines aligned on the shared grid.
func (r *Recorder) rescale() {
	r.interval *= 2
	for _, n := range r.nodes {
		half := (len(n.buckets) + 1) / 2
		for i := 0; i < half; i++ {
			merged := n.buckets[2*i]
			if 2*i+1 < len(n.buckets) {
				for p := range merged {
					merged[p] += n.buckets[2*i+1][p]
				}
			}
			n.buckets[i] = merged
		}
		n.buckets = n.buckets[:half]
	}
}

// NodeSummary is one node's cycle decomposition over a whole run.
type NodeSummary struct {
	Node        int     `json:"node"`
	SetupCycles float64 `json:"setup_cycles"`
	ScanCycles  float64 `json:"scan_cycles"`
	StallCycles float64 `json:"stall_cycles"`
	IdleCycles  float64 `json:"idle_cycles"`
	TotalCycles float64 `json:"total_cycles"`
	// Utilization is the busy fraction: (total − idle) / total.
	Utilization float64 `json:"utilization"`
}

// Summary returns the per-node phase totals in node order.
func (r *Recorder) Summary() []NodeSummary {
	out := make([]NodeSummary, len(r.nodes))
	for i, n := range r.nodes {
		s := NodeSummary{
			Node:        i,
			SetupCycles: n.totals[PhaseSetup],
			ScanCycles:  n.totals[PhaseScan],
			StallCycles: n.totals[PhaseStall],
			IdleCycles:  n.totals[PhaseIdle],
			TotalCycles: n.cursor,
		}
		if s.TotalCycles > 0 {
			s.Utilization = (s.TotalCycles - s.IdleCycles) / s.TotalCycles
		}
		out[i] = s
	}
	return out
}

// traceEvent is one Chrome trace-event object. Ts and Dur are microseconds
// in the Chrome format; the recorder maps one simulated cycle to one
// microsecond, so Perfetto's "1 ms" is 1000 cycles.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteTrace renders the recording as Chrome trace-event JSON: one thread
// per node carrying its phase slices, plus one counter track per node with
// the per-bucket busy fraction. The output loads directly in Perfetto
// (ui.perfetto.dev) and chrome://tracing.
func (r *Recorder) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(e traceEvent) error {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}

	if err := emit(traceEvent{Name: "process_name", Ph: "M",
		Args: map[string]any{"name": "texsim machine"}}); err != nil {
		return err
	}
	for i := range r.nodes {
		if err := emit(traceEvent{Name: "thread_name", Ph: "M", Tid: i,
			Args: map[string]any{"name": fmt.Sprintf("node %02d", i)}}); err != nil {
			return err
		}
	}
	for i, n := range r.nodes {
		for b, cycles := range n.buckets {
			ts := r.interval * float64(b)
			span := 0.0
			for p := Phase(0); p < NumPhases; p++ {
				span += cycles[p]
			}
			// Phase slices laid out back to back inside the bucket: exact
			// in area, sub-bucket ordering is presentational.
			off := ts
			for p := Phase(0); p < NumPhases; p++ {
				if cycles[p] <= 0 {
					continue
				}
				d := cycles[p]
				if err := emit(traceEvent{Name: p.String(), Cat: "phase", Ph: "X",
					Ts: off, Dur: &d, Tid: i}); err != nil {
					return err
				}
				off += cycles[p]
			}
			if span > 0 {
				busy := (span - cycles[PhaseIdle]) / span
				if err := emit(traceEvent{Name: fmt.Sprintf("busy node %02d", i),
					Ph: "C", Ts: ts, Tid: i,
					Args: map[string]any{"busy": busy}}); err != nil {
					return err
				}
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// Trace returns WriteTrace's output as bytes, for embedding in result
// documents.
func (r *Recorder) Trace() ([]byte, error) {
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

package tracing

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
)

// TraceparentHeader is the W3C Trace Context carrier header.
const TraceparentHeader = "traceparent"

// Inject writes ctx's trace context into h as a traceparent header, so an
// outgoing peer request continues the current trace across the process hop.
// The context's live span wins; a remote parent installed by
// ContextWithRemoteParent is used otherwise; with neither, h is untouched.
func Inject(ctx context.Context, h http.Header) {
	if span := FromContext(ctx); span != nil {
		h.Set(TraceparentHeader, Traceparent(span.TraceID(), span.SpanID()))
		return
	}
	if t, s, ok := RemoteParentFromContext(ctx); ok {
		h.Set(TraceparentHeader, Traceparent(t, s))
	}
}

// statusWriter captures the response status for the server span.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying connection's
// Flusher, so streaming handlers (SSE) can flush through the middleware.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Middleware wraps next so every request runs inside a server span: an
// incoming traceparent header continues the caller's trace, the response
// carries the new span's traceparent, and the span records method, path
// and status. The request context carries the span for handlers to
// annotate and for child spans to parent on.
func Middleware(t *Tracer, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		if tid, sid, ok := ParseTraceparent(r.Header.Get(TraceparentHeader)); ok {
			ctx = ContextWithRemoteParent(ctx, tid, sid)
		}
		ctx, span := t.StartSpan(ctx, r.Method+" "+r.URL.Path)
		span.SetAttr("http.method", r.Method)
		span.SetAttr("http.path", r.URL.Path)
		w.Header().Set(TraceparentHeader, Traceparent(span.TraceID(), span.SpanID()))

		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(ctx))
		span.SetAttr("http.status", strconv.Itoa(sw.code))
		span.End()
	})
}

// DebugHandler serves the span ring as JSON — mount at /debug/traces.
// Query parameters: trace=<hex trace id> filters to one trace, limit=<n>
// bounds the span count (default 100).
func (t *Tracer) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		limit := 100
		if s := r.URL.Query().Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n <= 0 {
				http.Error(w, "limit must be a positive integer", http.StatusBadRequest)
				return
			}
			limit = n
		}
		spans := t.Snapshot(limit, r.URL.Query().Get("trace"))
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Nothing useful to do with a write error mid-response.
		enc.Encode(map[string]any{
			"total_finished": t.Count(),
			"returned":       len(spans),
			"spans":          spans,
		})
	})
}

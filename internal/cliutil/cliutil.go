// Package cliutil holds the small flag-parsing and error-exit helpers that
// were previously duplicated across the cmd/ tools.
package cliutil

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// ParseIntList parses a comma-separated list of integers ("1,4, 16"),
// ignoring empty elements. An empty or all-blank list is an error: every
// caller uses the result as a sweep axis, which must be non-empty.
func ParseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad list element %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// ParsePositiveIntList is ParseIntList restricted to positive values — the
// form every sweep axis (processor counts, tile sizes) actually requires.
// Zero and negative elements are rejected with the offending value named.
func ParsePositiveIntList(s string) ([]int, error) {
	out, err := ParseIntList(s)
	if err != nil {
		return nil, err
	}
	for _, v := range out {
		if v <= 0 {
			return nil, fmt.Errorf("list element %d must be positive", v)
		}
	}
	return out, nil
}

// ParseNonNegativeFloatList parses a comma-separated list of floats
// ("0, 0.5, 2"), ignoring empty elements, rejecting negative ones. Sweep
// bus ratios use this: zero is a meaningful value (infinite bus), negatives
// never are. An empty or all-blank list is an error.
func ParseNonNegativeFloatList(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad list element %q", part)
		}
		if v < 0 {
			return nil, fmt.Errorf("list element %v must be non-negative", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// Fail prints "tool: err" to stderr and exits with status 1.
func Fail(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}

// Check is Fail when err is non-nil and a no-op otherwise.
func Check(tool string, err error) {
	if err != nil {
		Fail(tool, err)
	}
}

// Usage prints "tool: msg" to stderr and exits with status 2 (flag-error
// convention).
func Usage(tool, msg string) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", tool, msg)
	os.Exit(2)
}

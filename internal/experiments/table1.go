package experiments

import (
	"context"
	"fmt"

	"repro/internal/scene"
	"repro/internal/stats"
	"repro/internal/trace"
)

// RunTable1 measures every synthesized benchmark and prints it against the
// paper's published characteristics.
func RunTable1(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	scenes, err := buildAllScenes(ctx, opt)
	if err != nil {
		return nil, err
	}
	area := opt.Scale * opt.Scale

	measured := make([]trace.SceneStats, len(scene.Table1))
	err = forEachParallel(ctx, opt.Parallelism, len(scene.Table1), func(i int) error {
		st, err := trace.Measure(scenes[scene.Table1[i].Name])
		if err != nil {
			return err
		}
		measured[i] = st
		return nil
	})
	if err != nil {
		return nil, err
	}

	tab := &stats.Table{
		Caption: "Scene characteristics: measured (paper target scaled to this run)",
		Header: []string{"scene", "screen", "Mpixels", "depth cmplx", "triangles",
			"textures", "texture MB", "unique texel/frag"},
	}
	for i, t := range scene.Table1 {
		st := measured[i]
		tab.AddRow(
			t.Name,
			fmt.Sprintf("%dx%d", st.ScreenW, st.ScreenH),
			fmt.Sprintf("%s (%s)", stats.F(float64(st.PixelsRendered)/1e6, 2), stats.F(t.MPixels*area, 2)),
			fmt.Sprintf("%s (%s)", stats.F(st.DepthComplexity, 1), stats.F(t.DepthComplexity, 1)),
			fmt.Sprintf("%d (%d)", st.Triangles, int(float64(t.Triangles)*area)),
			fmt.Sprintf("%d (%d)", st.Textures, maxInt(1, int(float64(t.Textures)*area+0.5))),
			fmt.Sprintf("%s (%s)", stats.F(float64(st.TextureBytes)/1e6, 1), stats.F(t.TextureMB*area, 1)),
			fmt.Sprintf("%s (%s)", stats.F(st.UniqueTexelFrag, 2), stats.F(t.UniqueTexelFrag, 2)),
		)
	}
	return &Report{
		ID:    "table1",
		Title: "Benchmark scene characteristics",
		Notes: []string{
			scaleNote(opt),
			"texture MB runs above the paper's column: our texels are the 4-byte RGBA the cache spec uses, while the paper's texture sizes imply ~16-bit storage (see internal/scene.Table1).",
		},
		Table: []*stats.Table{tab},
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

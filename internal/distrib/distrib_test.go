package distrib

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

var screen = geom.Rect{X0: 0, Y0: 0, X1: 160, Y1: 120}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewBlock(screen, 4, 0); err == nil {
		t.Error("zero block width accepted")
	}
	if _, err := NewBlock(screen, 0, 16); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := NewBlock(geom.Rect{}, 4, 16); err == nil {
		t.Error("empty screen accepted")
	}
	if _, err := NewSLI(screen, 4, 0); err == nil {
		t.Error("zero SLI lines accepted")
	}
	if _, err := New(Kind(99), screen, 4, 16); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestNames(t *testing.T) {
	b, _ := NewBlock(screen, 4, 16)
	s, _ := NewSLI(screen, 4, 2)
	if b.Name() != "block16" || s.Name() != "sli2" {
		t.Errorf("names = %q, %q", b.Name(), s.Name())
	}
	if BlockKind.String() != "block" || SLIKind.String() != "sli" {
		t.Error("kind strings wrong")
	}
}

func allDistributions(t *testing.T, procs, size int) []Distribution {
	t.Helper()
	b, err := NewBlock(screen, procs, size)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSLI(screen, procs, size)
	if err != nil {
		t.Fatal(err)
	}
	return []Distribution{b, s}
}

func TestOwnerIsPartition(t *testing.T) {
	for _, procs := range []int{1, 3, 4, 16, 64} {
		for _, size := range []int{1, 2, 7, 16, 128} {
			for _, d := range allDistributions(t, procs, size) {
				counts := make([]int, procs)
				for y := screen.Y0; y < screen.Y1; y++ {
					for x := screen.X0; x < screen.X1; x++ {
						p := d.Owner(x, y)
						if p < 0 || p >= procs {
							t.Fatalf("%s procs=%d: owner(%d,%d)=%d out of range",
								d.Name(), procs, x, y, p)
						}
						counts[p]++
					}
				}
				total := 0
				for _, c := range counts {
					total += c
				}
				if total != screen.Area() {
					t.Fatalf("%s: partition total %d != %d", d.Name(), total, screen.Area())
				}
			}
		}
	}
}

func TestBlockOwnerGeometry(t *testing.T) {
	b, _ := NewBlock(screen, 4, 16)
	// Tiles along row 0: owners 0,1,2,3,0,1,... (tilesX = 10).
	for tx := 0; tx < 10; tx++ {
		if got := b.Owner(tx*16, 0); got != tx%4 {
			t.Errorf("tile (%d,0) owner = %d, want %d", tx, got, tx%4)
		}
	}
	// Row of tiles 1 starts at tile index 10 → owner 10%4 = 2.
	if got := b.Owner(0, 16); got != 2 {
		t.Errorf("tile (0,1) owner = %d, want 2", got)
	}
	// All pixels of one tile share an owner.
	want := b.Owner(32, 32)
	for dy := 0; dy < 16; dy++ {
		for dx := 0; dx < 16; dx++ {
			if b.Owner(32+dx, 32+dy) != want {
				t.Fatalf("tile not uniform at +(%d,%d)", dx, dy)
			}
		}
	}
}

func TestSLIOwnerGeometry(t *testing.T) {
	s, _ := NewSLI(screen, 4, 2)
	wantOwners := []int{0, 0, 1, 1, 2, 2, 3, 3, 0, 0}
	for y, want := range wantOwners {
		if got := s.Owner(77, y); got != want {
			t.Errorf("row %d owner = %d, want %d", y, got, want)
		}
	}
	// Owner must not depend on x.
	for x := 0; x < 160; x += 13 {
		if s.Owner(x, 5) != s.Owner(0, 5) {
			t.Fatal("SLI owner depends on x")
		}
	}
}

func TestRouteMatchesOwners(t *testing.T) {
	// Route must return exactly the set of owners of tiles intersecting the
	// bbox — a superset of the owners of pixels in the bbox, and for
	// tile-aligned boxes exactly equal.
	boxes := []geom.Rect{
		{X0: 0, Y0: 0, X1: 160, Y1: 120},     // whole screen
		{X0: 5, Y0: 5, X1: 6, Y1: 6},         // single pixel
		{X0: 30, Y0: 40, X1: 95, Y1: 41},     // thin horizontal
		{X0: 10, Y0: 0, X1: 11, Y1: 120},     // thin vertical
		{X0: 150, Y0: 110, X1: 300, Y1: 300}, // overhangs the screen
	}
	for _, procs := range []int{1, 4, 16, 64} {
		for _, size := range []int{1, 4, 16, 32} {
			for _, d := range allDistributions(t, procs, size) {
				for _, bb := range boxes {
					routed := make(map[int]bool)
					for _, p := range d.Route(bb, nil) {
						if routed[p] {
							t.Fatalf("%s: Route returned duplicate proc %d", d.Name(), p)
						}
						routed[p] = true
					}
					clipped := bb.Intersect(d.Screen())
					for y := clipped.Y0; y < clipped.Y1; y++ {
						for x := clipped.X0; x < clipped.X1; x++ {
							if p := d.Owner(x, y); !routed[p] {
								t.Fatalf("%s procs=%d size=%d: pixel (%d,%d) owner %d not routed for %v",
									d.Name(), procs, size, x, y, p, bb)
							}
						}
					}
				}
			}
		}
	}
}

func TestRouteOffscreenIsEmpty(t *testing.T) {
	for _, d := range allDistributions(t, 4, 16) {
		if got := d.Route(geom.Rect{X0: 500, Y0: 500, X1: 600, Y1: 600}, nil); len(got) != 0 {
			t.Errorf("%s: offscreen bbox routed to %v", d.Name(), got)
		}
	}
}

func TestRouteAppendsToDst(t *testing.T) {
	b, _ := NewBlock(screen, 4, 16)
	dst := []int{-1}
	out := b.Route(geom.Rect{X0: 0, Y0: 0, X1: 8, Y1: 8}, dst)
	if len(out) != 2 || out[0] != -1 {
		t.Errorf("Route did not append: %v", out)
	}
}

func TestForEachOwnedSegmentCoversRow(t *testing.T) {
	for _, procs := range []int{1, 4, 16} {
		for _, size := range []int{1, 5, 16} {
			for _, d := range allDistributions(t, procs, size) {
				for _, y := range []int{0, 17, 119} {
					next := 3 // start of the segment under test
					d.ForEachOwnedSegment(y, 3, 157, func(proc, x0, x1 int) {
						if x0 != next {
							t.Fatalf("%s: segment gap at row %d: got x0=%d want %d",
								d.Name(), y, x0, next)
						}
						if x1 <= x0 {
							t.Fatalf("%s: empty segment", d.Name())
						}
						for x := x0; x < x1; x++ {
							if d.Owner(x, y) != proc {
								t.Fatalf("%s: segment [%d,%d) row %d labeled %d but owner(%d)=%d",
									d.Name(), x0, x1, y, proc, x, d.Owner(x, y))
							}
						}
						next = x1
					})
					if next != 157 {
						t.Fatalf("%s: row %d segments ended at %d, want 157", d.Name(), y, next)
					}
				}
			}
		}
	}
}

func TestForEachOwnedSegmentEmpty(t *testing.T) {
	for _, d := range allDistributions(t, 4, 8) {
		called := false
		d.ForEachOwnedSegment(10, 50, 50, func(int, int, int) { called = true })
		if called {
			t.Errorf("%s: empty segment invoked callback", d.Name())
		}
	}
}

func TestPartitionProperty(t *testing.T) {
	// For random geometry parameters, Owner is always in range and segments
	// reconstruct Owner exactly.
	f := func(pk uint8, procs, size uint8, y, x0, w uint8) bool {
		p := int(procs%64) + 1
		sz := int(size%48) + 1
		var d Distribution
		var err error
		if pk%2 == 0 {
			d, err = NewBlock(screen, p, sz)
		} else {
			d, err = NewSLI(screen, p, sz)
		}
		if err != nil {
			return false
		}
		yy := int(y) % 120
		xa := int(x0) % 160
		xb := xa + int(w)%(160-xa) + 1
		if xb > 160 {
			xb = 160
		}
		ok := true
		covered := xa
		d.ForEachOwnedSegment(yy, xa, xb, func(proc, sx0, sx1 int) {
			if sx0 != covered || proc != d.Owner(sx0, yy) || proc >= p || proc < 0 {
				ok = false
			}
			covered = sx1
		})
		return ok && covered == xb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInterleavingSpreadsTiles(t *testing.T) {
	// With many more tiles than processors, per-processor pixel counts must
	// be within a few tiles of each other (static interleave fairness).
	b, _ := NewBlock(screen, 4, 8) // 20x15 = 300 tiles over 4 procs
	counts := make([]int, 4)
	for y := 0; y < 120; y++ {
		for x := 0; x < 160; x++ {
			counts[b.Owner(x, y)]++
		}
	}
	for p, c := range counts {
		if c < screen.Area()/4-8*8*2 || c > screen.Area()/4+8*8*2 {
			t.Errorf("proc %d owns %d pixels, want ≈%d", p, c, screen.Area()/4)
		}
	}
}

func BenchmarkBlockSegments(b *testing.B) {
	d, _ := NewBlock(geom.Rect{X1: 1600, Y1: 1200}, 16, 16)
	n := 0
	for i := 0; i < b.N; i++ {
		d.ForEachOwnedSegment(i%1200, 0, 1600, func(proc, x0, x1 int) { n += x1 - x0 })
	}
	_ = n
}

func BenchmarkRoute(b *testing.B) {
	d, _ := NewBlock(geom.Rect{X1: 1600, Y1: 1200}, 64, 16)
	bb := geom.Rect{X0: 100, Y0: 100, X1: 180, Y1: 230}
	dst := make([]int, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = d.Route(bb, dst[:0])
	}
}

func TestRouteReuseAllocFree(t *testing.T) {
	// Triangle routing with a reused destination slice must not allocate for
	// machine sizes up to 64 processors (the stack-bitmask dedup path).
	b, _ := NewBlock(screen, 8, 16)
	bs, _ := NewBlockSkewed(screen, 8, 16)
	s, _ := NewSLI(screen, 8, 4)
	for _, d := range []Distribution{b, bs, s} {
		bb := geom.Rect{X0: 10, Y0: 10, X1: 50, Y1: 40}
		dst := d.Route(bb, nil)
		if n := testing.AllocsPerRun(100, func() {
			dst = d.Route(bb, dst[:0])
		}); n != 0 {
			t.Errorf("%s: Route with a warm slice allocates %.1f per call", d.Name(), n)
		}
	}
}

package sweep

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// runMemoPair runs the spec with and without memoization and fails unless
// the rows (and flights) are byte-identical after JSON encoding. It returns
// both plan stats.
func runMemoPair(t *testing.T, spec Spec, opts RunOpts) (memo, plain PlanStats) {
	t.Helper()
	o := opts
	o.NoMemo = false
	o.Plan = &memo
	withMemo, err := RunWith(context.Background(), spec, o)
	if err != nil {
		t.Fatal(err)
	}
	o.NoMemo = true
	o.Plan = &plain
	without, err := RunWith(context.Background(), spec, o)
	if err != nil {
		t.Fatal(err)
	}
	wantJS, err := json.Marshal(without)
	if err != nil {
		t.Fatal(err)
	}
	gotJS, err := json.Marshal(withMemo)
	if err != nil {
		t.Fatal(err)
	}
	if string(wantJS) != string(gotJS) {
		t.Errorf("memoized sweep diverged\nplain: %s\nmemo:  %s", wantJS, gotJS)
	}
	return memo, plain
}

// TestPlannerEquivalenceMatrix pins the memoization contract over two scenes,
// all three distributions and a dense cache axis: the planner must change
// wall-clock only, never a byte of output.
func TestPlannerEquivalenceMatrix(t *testing.T) {
	for _, sceneName := range []string{"truc640", "room3"} {
		for _, dist := range []string{"block", "sli", "blockskewed"} {
			spec := Spec{
				Scene:  sceneName,
				Scale:  0.1,
				Dist:   dist,
				Procs:  []int{1, 4},
				Sizes:  []int{8},
				Caches: []int{1, 2, 4, 8, 16},
				Bus:    2,
			}
			memo, plain := runMemoPair(t, spec, RunOpts{Parallelism: 4})
			// 10 points + 5 baselines in 2 classes: (1,8) and (4,8).
			if memo.Points != 10 || memo.Baselines != 5 || memo.Classes != 2 {
				t.Errorf("%s/%s: plan = %+v", sceneName, dist, memo)
			}
			if memo.Rasterizations != 2 || memo.Saved != 13 || !memo.Memoized {
				t.Errorf("%s/%s: memoized plan = %+v", sceneName, dist, memo)
			}
			if plain.Rasterizations != 15 || plain.Saved != 0 || plain.Memoized {
				t.Errorf("%s/%s: plain plan = %+v", sceneName, dist, plain)
			}
			if memo.Rasterizations >= plain.Rasterizations {
				t.Errorf("%s/%s: memoization saved nothing: %d vs %d",
					sceneName, dist, memo.Rasterizations, plain.Rasterizations)
			}
		}
	}
}

// TestPlannerBusBufferAxes covers the other two dense axes (and their
// combination) on the memoization contract.
func TestPlannerBusBufferAxes(t *testing.T) {
	spec := Spec{
		Scene:   "truc640",
		Scale:   0.1,
		Procs:   []int{4},
		Sizes:   []int{8, 16},
		Buses:   []float64{0, 1, 2},
		Buffers: []int{16, 20000},
	}
	memo, _ := runMemoPair(t, spec, RunOpts{Parallelism: 4})
	// 12 points + 6 baselines in 3 classes: (1,8), (4,8), (4,16).
	if memo.Points != 12 || memo.Baselines != 6 || memo.Classes != 3 || memo.Rasterizations != 3 {
		t.Errorf("plan = %+v", memo)
	}
}

// TestPlannerPerfectCacheSpansOnly: a pure-scan sweep (perfect cache,
// infinite bus) memoizes through the cheaper spans-only artifact and still
// matches the unmemoized run byte for byte.
func TestPlannerPerfectCacheSpansOnly(t *testing.T) {
	spec := Spec{
		Scene:   "truc640",
		Scale:   0.2,
		Procs:   []int{4},
		Sizes:   []int{8},
		Cache:   "perfect",
		Buffers: []int{16, 64, 20000},
	}
	memo, _ := runMemoPair(t, spec, RunOpts{Parallelism: 2})
	if memo.Rasterizations != 2 { // classes (1,8) and (4,8)
		t.Errorf("plan = %+v", memo)
	}
}

// TestPlannerFlightSweepMemoizes: the flight recorder forces the event
// kernel, whose replay path must also be byte-identical, recordings
// included.
func TestPlannerFlightSweepMemoizes(t *testing.T) {
	spec := Spec{
		Scene:  "truc640",
		Scale:  0.1,
		Procs:  []int{2},
		Sizes:  []int{8},
		Caches: []int{4, 16},
		Flight: true,
	}
	runMemoPair(t, spec, RunOpts{Parallelism: 2})
}

// TestRasterClassKeySeparation: classing must never group configurations
// that differ in any raster-relevant field, and must group ones that differ
// only in cache, bus, buffer or flight settings.
func TestRasterClassKeySeparation(t *testing.T) {
	base := Spec{Scene: "truc640", Scale: 0.2, Dist: "block"}
	key := base.RasterClassKey(4, 8)
	if key == "" {
		t.Fatal("empty class key")
	}
	distinct := map[string]string{
		"scene":      Spec{Scene: "room3", Scale: 0.2, Dist: "block"}.RasterClassKey(4, 8),
		"resolution": Spec{Scene: "truc640", Scale: 0.4, Dist: "block"}.RasterClassKey(4, 8),
		"dist":       Spec{Scene: "truc640", Scale: 0.2, Dist: "sli"}.RasterClassKey(4, 8),
		"procs":      base.RasterClassKey(8, 8),
		"size":       base.RasterClassKey(4, 16),
	}
	for field, got := range distinct {
		if got == key {
			t.Errorf("configs differing in %s share a raster class", field)
		}
	}
	same := base
	same.Cache = "none"
	same.Bus = 2
	same.Buffer = 64
	same.Flight = true
	same.Caches = nil
	if got := same.RasterClassKey(4, 8); got != key {
		t.Error("configs differing only in non-raster fields split classes")
	}
}

// TestAxisValidation pins the new axis rules: positive cache sizes with a
// valid geometry, the real cache model, and mutual exclusion with the
// scalar fields.
func TestAxisValidation(t *testing.T) {
	bad := []Spec{
		{Scene: "truc640", Caches: []int{0}},
		{Scene: "truc640", Caches: []int{3}}, // 12 sets: not a power of two
		{Scene: "truc640", Cache: "perfect", Caches: []int{16}},
		{Scene: "truc640", Bus: 1, Buses: []float64{2}},
		{Scene: "truc640", Buses: []float64{-1}},
		{Scene: "truc640", Buffer: 16, Buffers: []int{32}},
		{Scene: "truc640", Buffers: []int{0}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
	good := Spec{Scene: "truc640", Caches: []int{1, 4, 64}, Buses: []float64{0, 2}, Buffers: []int{8}}
	if err := good.Validate(); err != nil {
		t.Errorf("axis spec rejected: %v", err)
	}
}

// TestAxisRowShape: axis sweeps carry the echo columns in row JSON and CSV;
// axis-free sweeps keep their historical bytes.
func TestAxisRowShape(t *testing.T) {
	spec := Spec{
		Scene:  "truc640",
		Scale:  0.2,
		Procs:  []int{2},
		Sizes:  []int{8},
		Caches: []int{4, 16},
		Bus:    0.5, // finite: cache size must show up in cycles
	}
	res, err := RunWith(context.Background(), spec, RunOpts{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	if res.Rows[0].CacheKB != 4 || res.Rows[1].CacheKB != 16 {
		t.Errorf("cache axis not echoed: %+v", res.Rows)
	}
	if res.Rows[0].Cycles <= res.Rows[1].Cycles {
		t.Errorf("bigger cache not faster: %+v", res.Rows)
	}
	js, err := json.Marshal(res.Rows[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), `"cache_kb":4`) {
		t.Errorf("row JSON lacks cache_kb: %s", js)
	}

	var buf strings.Builder
	if err := WriteCSV(&buf, res.Rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasSuffix(lines[0], ",cache_kb,bus,buffer") {
		t.Errorf("axis CSV header = %q", lines[0])
	}
	if !strings.HasSuffix(lines[1], ",4,0,0") {
		t.Errorf("axis CSV row = %q", lines[1])
	}

	// Axis-free rows: no echo fields in JSON, base CSV header.
	plain, err := RunWith(context.Background(), tinySpec, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	js, err = json.Marshal(plain.Rows[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"cache_kb", `"bus"`, `"buffer"`} {
		if strings.Contains(string(js), field) {
			t.Errorf("axis-free row JSON contains %s: %s", field, js)
		}
	}
}

// TestPointHashDistinguishesAxes: progress hashes must differ for points
// sharing (procs, size) but differing on an axis, and RowHash must keep its
// historical value for axis-free specs.
func TestPointHashDistinguishesAxes(t *testing.T) {
	spec := Spec{Scene: "truc640", Caches: []int{4, 16}}
	a := spec.pointHash(point{procs: 4, size: 8, cacheKB: 4})
	b := spec.pointHash(point{procs: 4, size: 8, cacheKB: 16})
	if a == b {
		t.Error("points differing in cache size share a hash")
	}
	plain := Spec{Scene: "truc640"}
	if plain.pointHash(point{procs: 4, size: 8}) != plain.RowHash(4, 8) {
		t.Error("pointHash diverges from RowHash on an axis-free spec")
	}
}

// TestRunWithPlanStatsOptional: a nil Plan out-param stays nil-safe, and
// Result.Plan is never set by RunWith itself.
func TestRunWithPlanStatsOptional(t *testing.T) {
	res, err := RunWith(context.Background(), tinySpec, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != nil {
		t.Error("RunWith set Result.Plan; plan stats must stay out of cacheable results")
	}
	var stats PlanStats
	res2, err := RunWith(context.Background(), tinySpec, RunOpts{Plan: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Points != len(res2.Rows) || stats.Classes == 0 {
		t.Errorf("plan stats not populated: %+v", stats)
	}
	if !reflect.DeepEqual(res.Rows, res2.Rows) {
		t.Error("requesting plan stats changed the rows")
	}
}

package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsAll(t *testing.T) {
	n := 100
	seen := make([]atomic.Bool, n)
	err := ForEach(context.Background(), 8, n, func(i int) error {
		seen[i].Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("index %d not visited", i)
		}
	}
}

func TestForEachFirstError(t *testing.T) {
	want := errors.New("boom")
	err := ForEach(context.Background(), 4, 50, func(i int) error {
		if i == 7 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	err := ForEach(ctx, 2, 1000, func(i int) error {
		if started.Add(1) == 4 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := started.Load(); got >= 1000 {
		t.Fatalf("cancellation did not stop dispatch (ran %d items)", got)
	}
}

package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/texture"
)

func TestConfigValidate(t *testing.T) {
	if err := PaperConfig().Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
	bad := []Config{
		{SizeBytes: 0, Ways: 4, LineBytes: 64},
		{SizeBytes: 16384, Ways: 0, LineBytes: 64},
		{SizeBytes: 16384, Ways: 4, LineBytes: 0},
		{SizeBytes: 16384 + 1, Ways: 4, LineBytes: 64}, // not multiple of line
		{SizeBytes: 64 * 12, Ways: 4, LineBytes: 64},   // 3 sets: not pow2
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated: %+v", i, c)
		}
	}
	if got := PaperConfig().Sets(); got != 64 {
		t.Errorf("paper config sets = %d, want 64", got)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(PaperConfig())
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("warm access missed")
	}
	// Same line, different texel offset: still a hit.
	if !c.Access(0x1000 + 60) {
		t.Error("same-line access missed")
	}
	// Different line.
	if c.Access(0x1000 + 64) {
		t.Error("next-line cold access hit")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Misses != 2 {
		t.Errorf("stats = %+v, want 4 accesses / 2 misses", s)
	}
	if s.MissRate() != 0.5 {
		t.Errorf("miss rate = %v", s.MissRate())
	}
}

func TestLRUEviction(t *testing.T) {
	// 4-way cache: fill one set with 4 lines, touch line 0 again to make it
	// MRU, insert a 5th line into the same set; the victim must be line 1.
	cfg := PaperConfig()
	c := New(cfg)
	sets := uint32(cfg.Sets())
	lineStride := uint32(cfg.LineBytes) * sets // same set, different tags
	addr := func(i uint32) texture.Addr { return texture.Addr(i * lineStride) }

	for i := uint32(0); i < 4; i++ {
		if c.Access(addr(i)) {
			t.Fatalf("cold fill %d hit", i)
		}
	}
	if !c.Access(addr(0)) {
		t.Fatal("line 0 evicted prematurely")
	}
	if c.Access(addr(4)) {
		t.Fatal("5th line hit")
	}
	// Line 1 was LRU and must be gone; 0, 2, 3, 4 must remain.
	if c.Access(addr(1)) {
		t.Error("LRU line 1 still resident")
	}
	// Accessing 1 evicted the then-LRU line 2.
	for _, i := range []uint32{0, 3, 4, 1} {
		if !c.Access(addr(i)) {
			t.Errorf("line %d unexpectedly evicted", i)
		}
	}
}

func TestResetClears(t *testing.T) {
	c := New(PaperConfig())
	c.Access(0)
	c.Access(0)
	c.Reset()
	if s := c.Stats(); s.Accesses != 0 || s.Misses != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
	if c.Access(0) {
		t.Error("line survived reset")
	}
}

// refLRU is an obviously-correct map-based LRU used to cross-check SetAssoc.
type refLRU struct {
	cfg  Config
	sets map[uint32][]uint32 // set → lines, MRU first
}

func newRefLRU(cfg Config) *refLRU {
	return &refLRU{cfg: cfg, sets: make(map[uint32][]uint32)}
}

func (r *refLRU) access(addr texture.Addr) bool {
	line := uint32(addr) / uint32(r.cfg.LineBytes)
	set := line % uint32(r.cfg.Sets())
	lines := r.sets[set]
	for i, l := range lines {
		if l == line {
			copy(lines[1:i+1], lines[:i])
			lines[0] = line
			return true
		}
	}
	lines = append([]uint32{line}, lines...)
	if len(lines) > r.cfg.Ways {
		lines = lines[:r.cfg.Ways]
	}
	r.sets[set] = lines
	return false
}

func TestAgainstReferenceModel(t *testing.T) {
	cfg := Config{SizeBytes: 2048, Ways: 4, LineBytes: 64} // small: lots of conflicts
	c := New(cfg)
	ref := newRefLRU(cfg)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200000; i++ {
		// Zipf-ish reuse pattern: small working set plus occasional far jumps.
		var addr texture.Addr
		if rng.Intn(4) == 0 {
			addr = texture.Addr(rng.Intn(1 << 20))
		} else {
			addr = texture.Addr(rng.Intn(4096))
		}
		got := c.Access(addr)
		want := ref.access(addr)
		if got != want {
			t.Fatalf("access %d addr %d: got hit=%v, reference hit=%v", i, addr, got, want)
		}
	}
}

func TestStatsInvariantProperty(t *testing.T) {
	// Misses never exceed accesses; replaying any trace twice in a row on a
	// cache bigger than the trace footprint yields all hits on the replay.
	f := func(seed int64, n uint16) bool {
		cfg := PaperConfig()
		c := New(cfg)
		rng := rand.New(rand.NewSource(seed))
		trace := make([]texture.Addr, int(n%256)+1)
		for i := range trace {
			trace[i] = texture.Addr(rng.Intn(8192)) // 8 KB < 16 KB capacity
		}
		for _, a := range trace {
			c.Access(a)
		}
		s := c.Stats()
		if s.Misses > s.Accesses {
			return false
		}
		// Footprint fits: replay must be 100% hits. (8 KB spans at most 128
		// lines over 64 sets = ≤2 per set on average; with 4 ways a set can
		// overflow only if >4 of the ≤128 lines collide — impossible since a
		// set has exactly 2 candidate lines in an 8 KB range: 8192/64/64 = 2.)
		before := c.Stats().Misses
		for _, a := range trace {
			c.Access(a)
		}
		return c.Stats().Misses == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPerfectAndNone(t *testing.T) {
	p := NewPerfect()
	n := NewNone()
	for i := 0; i < 10; i++ {
		if !p.Access(texture.Addr(i * 64)) {
			t.Fatal("perfect cache missed")
		}
		if n.Access(texture.Addr(i * 64)) {
			t.Fatal("cacheless model hit")
		}
	}
	if s := p.Stats(); s.Accesses != 10 || s.Misses != 0 {
		t.Errorf("perfect stats = %+v", s)
	}
	if s := n.Stats(); s.Accesses != 10 || s.Misses != 10 {
		t.Errorf("none stats = %+v", s)
	}
	p.Reset()
	n.Reset()
	if p.Stats().Accesses != 0 || n.Stats().Accesses != 0 {
		t.Error("reset did not clear counters")
	}
}

func TestSequentialScanMissRate(t *testing.T) {
	// A pure sequential texel scan touches each line 16 times: miss rate must
	// be exactly 1/16 (compulsory only).
	c := New(PaperConfig())
	for a := 0; a < 1<<20; a += texture.TexelBytes {
		c.Access(texture.Addr(a))
	}
	s := c.Stats()
	want := 1.0 / float64(texture.LineTexels)
	if got := s.MissRate(); got != want {
		t.Errorf("sequential miss rate = %v, want %v", got, want)
	}
}

func BenchmarkSetAssocAccess(b *testing.B) {
	c := New(PaperConfig())
	rng := rand.New(rand.NewSource(1))
	addrs := make([]texture.Addr, 4096)
	for i := range addrs {
		addrs[i] = texture.Addr(rng.Intn(1 << 22))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095])
	}
}

package logging

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"testing"
)

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "Error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestContextAttrsAppearInOutput(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, slog.LevelInfo, "json")

	ctx := WithAttrs(context.Background(),
		slog.String("request_id", "req-1"))
	ctx = WithAttrs(ctx, slog.String("job_id", "job-7")) // accumulates

	log.InfoContext(ctx, "working", "step", 2)

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not one JSON object: %v\n%s", err, buf.Bytes())
	}
	if rec["request_id"] != "req-1" || rec["job_id"] != "job-7" {
		t.Errorf("context attrs missing: %v", rec)
	}
	if rec["msg"] != "working" || rec["step"] != 2.0 {
		t.Errorf("record fields wrong: %v", rec)
	}
}

func TestContextAttrsDoNotLeakAcrossContexts(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, slog.LevelInfo, "json")
	_ = WithAttrs(context.Background(), slog.String("request_id", "req-1"))
	log.InfoContext(context.Background(), "other")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if _, leaked := rec["request_id"]; leaked {
		t.Errorf("attr leaked into unrelated context: %v", rec)
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, slog.LevelWarn, "json")
	log.Info("dropped")
	log.Warn("kept")
	if bytes.Contains(buf.Bytes(), []byte("dropped")) || !bytes.Contains(buf.Bytes(), []byte("kept")) {
		t.Errorf("level filter broken:\n%s", buf.Bytes())
	}
}

func TestTextFormat(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, slog.LevelInfo, "text")
	log.InfoContext(WithAttrs(context.Background(), slog.String("k", "v")), "hello")
	out := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("msg=hello")) || !bytes.Contains(buf.Bytes(), []byte("k=v")) {
		t.Errorf("text output = %q", out)
	}
}

func TestDiscard(t *testing.T) {
	log := Discard()
	if log.Enabled(context.Background(), slog.LevelError) {
		t.Error("discard logger claims to be enabled")
	}
	log.Error("nothing happens") // must not panic
	// Derived loggers stay discarding.
	log.With("k", "v").WithGroup("g").Info("still nothing")
}

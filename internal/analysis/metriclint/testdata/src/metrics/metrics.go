// Package metricspkg exercises the metriclint analyzer against a local
// stub with the shape of internal/metrics.Registry — the analyzer matches
// registration methods on any type named Registry, so testdata needs no
// module imports.
package metricspkg

type Counter struct{}
type Gauge struct{}
type Histogram struct{}
type CounterVec struct{}
type GaugeVec struct{}
type HistogramVec struct{}

type Registry struct{}

func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }
func (r *Registry) Gauge(name, help string) *Gauge     { return &Gauge{} }
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return &Histogram{}
}
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{}
}
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{}
}
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{}
}

const constName = "const_named_total"

func register(r *Registry, dynamic string) {
	r.Counter("jobs_total", "fine")
	r.Counter(constName, "fine: constant expression")
	r.Counter("Jobs-Total", "bad name")         // want `metric name "Jobs-Total" does not match`
	r.Counter("9starts_with_digit", "bad name") // want `metric name "9starts_with_digit" does not match`
	r.Counter(dynamic, "not a constant")        // want `metric name must be a compile-time string constant`
	r.Gauge("jobs_total", "duplicate site")     // want `metric "jobs_total" already registered`
	r.Histogram("latency_seconds", "fine", nil)
	r.CounterVec("requests_total", "fine", "status")
	r.CounterVec("bad_label_total", "bad label", "Status")     // want `label name "Status" of metric "bad_label_total" does not match`
	r.CounterVec("dup_label_total", "dup label", "a", "a")     // want `duplicate label "a" on metric "dup_label_total"`
	r.CounterVec("wide_total", "too many", "a", "b", "c", "d") // want `metric "wide_total" declares 4 label dimensions`
	r.CounterVec("dyn_label_total", "dynamic label", dynamic)  // want `label name of metric "dyn_label_total" must be a compile-time string constant`
	r.HistogramVec("duration_seconds", "fine", nil, "scene")
	r.GaugeVec("build_info", "fine", "version", "commit", "go")
	r.GaugeVec("Build-Info", "bad name")                     // want `metric name "Build-Info" does not match`
	r.GaugeVec("bad_gauge_label", "bad label", "Version")    // want `label name "Version" of metric "bad_gauge_label" does not match`
	r.GaugeVec("wide_gauge", "too many", "a", "b", "c", "d") // want `metric "wide_gauge" declares 4 label dimensions`
	r.GaugeVec("dyn_gauge_label", "dynamic label", dynamic)  // want `label name of metric "dyn_gauge_label" must be a compile-time string constant`

	// Kind suffixes: counters end _total; histogram base names stay clear
	// of the suffixes the renderer appends.
	r.Counter("jobs_done", "bad suffix")                            // want `counter "jobs_done" must end in _total`
	r.CounterVec("forwards", "bad suffix", "peer")                  // want `counter "forwards" must end in _total`
	r.Histogram("flush_count", "bad suffix", nil)                   // want `histogram "flush_count" must not end in _count`
	r.HistogramVec("size_bucket", "bad suffix", nil, "scene")       // want `histogram "size_bucket" must not end in _bucket`
	r.HistogramVec("wait_sum", "bad suffix", nil)                   // want `histogram "wait_sum" must not end in _sum`
	r.HistogramVec("hops_total", "bad suffix", nil)                 // want `histogram "hops_total" must not end in _total`
	r.HistogramVec("wide_seconds", "wide", nil, "a", "b", "c", "d") // want `metric "wide_seconds" declares 4 label dimensions`
}

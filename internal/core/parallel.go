// The parallel kernel: when triangle FIFOs are provably big enough to never
// back-pressure the distributor, the machine's nodes are fully independent —
// the distributor pushes every triangle at simulated time zero and each node
// drains its own queue with no cross-node coupling. In that regime (the
// paper's "big enough" buffer assumption, used by every experiment except the
// §8 buffering study) the event-driven kernel's global heap is pure overhead:
// this file rasterizes and demultiplexes triangles across worker goroutines,
// then simulates all N node pipelines concurrently via internal/par.
//
// Equivalence contract: the parallel kernel produces byte-identical results
// (cycles, counters, cache statistics, FIFO peaks) to the event-driven
// kernel. That holds because, with no backpressure, a node's k-th triangle
// arrival in the event kernel is exactly ceil(completion of triangle k−1)
// (the node re-arms its step event at that cycle), and the engine's timing is
// a deterministic function of its own arrival sequence only. The kernel
// therefore refuses to run — and falls back to the event kernel — whenever
// coupling could matter:
//
//   - the configured TriangleBuffer is below the paper default (§8 regime);
//   - some node is routed more triangles than its FIFO holds, so the
//     distributor would actually block (checked by a cheap routing pre-pass);
//   - a flight recorder is attached (its shared auto-rescaling bucket grid is
//     written by every node and is deliberately not synchronized).
package core

import (
	"context"
	"math"
	"runtime"

	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/par"
	"repro/internal/raster"
	"repro/internal/sim"
	"repro/internal/trace"
)

// SetNodeParallelism bounds how many concurrent workers the machine may use
// to simulate independent node pipelines (the parallel kernel). n == 1
// forces the coupled event-driven kernel; n <= 0 restores the default,
// runtime.GOMAXPROCS(0). Results are byte-identical at every setting — the
// knob trades wall-clock for cores, never accuracy.
func (m *Machine) SetNodeParallelism(n int) {
	m.nodePar = n
}

// nodeParallelism resolves the configured worker bound.
func (m *Machine) nodeParallelism() int {
	if m.nodePar > 0 {
		return m.nodePar
	}
	return runtime.GOMAXPROCS(0)
}

// parallelEligible reports whether the frame may even attempt the parallel
// kernel. The per-node FIFO occupancy check needs the routing pre-pass and
// lives in runFrameParallel.
func (m *Machine) parallelEligible() bool {
	return m.nodeParallelism() > 1 &&
		m.cfg.TriangleBuffer >= DefaultTriangleBuffer &&
		m.flight == nil
}

// ctxPollTriangles is how many triangles a worker processes between context
// polls, mirroring the event kernel's cancelCheckEvents granularity.
const ctxPollTriangles = 1 << 10

// runFrameParallel simulates one frame on the parallel kernel. It returns
// ran=false (and no error) when the routing pre-pass finds a node whose FIFO
// would overflow, in which case the caller must run the event kernel instead.
func (m *Machine) runFrameParallel(ctx context.Context, f *trace.Scene) (ran bool, err error) {
	procs := m.cfg.Procs
	tris := f.Triangles
	if len(tris) == 0 {
		m.lastFIFOPeaks = append(m.lastFIFOPeaks[:0], make([]int, procs)...)
		m.parallelFrames++
		return true, nil
	}

	workers := m.nodeParallelism()
	if workers > len(tris) {
		workers = len(tris)
	}
	// Finer-than-worker chunks smooth out uneven per-triangle cost; chunk
	// boundaries are fixed up front so the slot layout below is deterministic.
	nChunks := workers * 4
	if nChunks > len(tris) {
		nChunks = len(tris)
	}
	chunkBounds := func(c int) (int, int) {
		return c * len(tris) / nChunks, (c + 1) * len(tris) / nChunks
	}

	// Routing pre-pass: count each node's routed triangles (its FIFO
	// occupancy at time zero in the event kernel) per chunk. Any node over
	// its FIFO capacity means the distributor would block — fall back.
	counts := make([]int, procs)
	chunkCounts := make([]int, nChunks*procs)
	routeScratch := make([]int, 0, procs)
	for c := 0; c < nChunks; c++ {
		row := chunkCounts[c*procs : (c+1)*procs]
		lo, hi := chunkBounds(c)
		for i := lo; i < hi; i++ {
			dests := m.dist.Route(tris[i].BBox(), routeScratch[:0])
			for _, p := range dests {
				counts[p]++
				row[p]++
			}
			routeScratch = dests[:0]
		}
	}
	for _, n := range counts {
		if n > m.cfg.TriangleBuffer {
			return false, nil
		}
	}

	// Slot layout: node p's work list holds its triangles in submission
	// order; chunk c writes the contiguous slot range carved out by the
	// prefix sums, so phase 1 workers never touch the same slot.
	chunkStart := make([]int, nChunks*procs)
	running := make([]int, procs)
	for c := 0; c < nChunks; c++ {
		copy(chunkStart[c*procs:(c+1)*procs], running)
		for p := 0; p < procs; p++ {
			running[p] += chunkCounts[c*procs+p]
		}
	}
	nodeWork := make([][]engine.TriangleWork, procs)
	for p := range nodeWork {
		nodeWork[p] = make([]engine.TriangleWork, counts[p])
	}

	// Phase 1: rasterize each triangle once and demultiplex its spans to the
	// owning nodes' work lists, chunks in parallel.
	err = par.ForEach(ctx, workers, nChunks, func(c int) error {
		w := demuxScratch{
			route: make([]int, 0, procs),
			spans: make([][]raster.Span, procs),
		}
		cursors := make([]int, procs)
		copy(cursors, chunkStart[c*procs:(c+1)*procs])
		lo, hi := chunkBounds(c)
		for i := lo; i < hi; i++ {
			if (i-lo)%ctxPollTriangles == 0 && i > lo {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			m.demuxTriangle(&w, f, &tris[i], cursors, nodeWork)
		}
		return nil
	})
	if err != nil {
		return true, err
	}

	// Phase 2: simulate every node pipeline independently. The arrival
	// arithmetic replicates the event kernel exactly: the first pop happens
	// at cycle 0, each later pop at the integer cycle the node re-arms on.
	err = par.ForEach(ctx, workers, procs, func(p int) error {
		e := m.engines[p]
		work := nodeWork[p]
		arrival := 0.0
		for k := range work {
			if k%ctxPollTriangles == 0 && k > 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			done := e.ProcessTriangle(arrival, &work[k])
			arrival = float64(sim.Time(math.Ceil(done)))
		}
		return nil
	})
	if err != nil {
		return true, err
	}
	m.lastFIFOPeaks = append(m.lastFIFOPeaks[:0], counts...)
	m.parallelFrames++
	return true, nil
}

// demuxScratch is one phase-1 worker's reusable buffers: the per-triangle
// hot path allocates only each triangle's backing span array, exactly like
// the event kernel's distributor.
type demuxScratch struct {
	route   []int
	spanBuf []raster.Span
	spans   [][]raster.Span // per-proc demux scratch
}

// demuxTriangle rasterizes t once and writes one TriangleWork per routed
// node into the node's pre-assigned slot. The segment demultiplexing is the
// same code path as the event kernel's distributor.prepare, so the spans —
// and therefore the engine timing — are identical.
func (m *Machine) demuxTriangle(w *demuxScratch, f *trace.Scene, t *geom.Triangle, cursors []int, nodeWork [][]engine.TriangleWork) {
	tex := m.mgr.Texture(t.TexID)
	lod := t.Tex.LOD()

	dests := m.dist.Route(t.BBox(), w.route[:0])
	for _, p := range dests {
		w.spans[p] = w.spans[p][:0]
	}
	w.spanBuf = m.rast.AppendSpans(*t, f.Screen, w.spanBuf[:0])
	for _, sp := range w.spanBuf {
		m.dist.ForEachOwnedSegment(sp.Y, sp.X0, sp.X1, func(proc, x0, x1 int) {
			w.spans[proc] = append(w.spans[proc], raster.Span{Y: sp.Y, X0: x0, X1: x1})
		})
	}
	total := 0
	for _, p := range dests {
		total += len(w.spans[p])
	}
	var backing []raster.Span
	if total > 0 {
		backing = make([]raster.Span, 0, total)
	}
	for _, p := range dests {
		segs := w.spans[p]
		var owned []raster.Span
		if len(segs) > 0 {
			start := len(backing)
			backing = append(backing, segs...)
			owned = backing[start:len(backing):len(backing)]
		}
		nodeWork[p][cursors[p]] = engine.TriangleWork{Tex: tex, Map: t.Tex, LOD: lod, Segments: owned}
		cursors[p]++
	}
	w.route = dests[:0]
}

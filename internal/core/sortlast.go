package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/memory"
	"repro/internal/raster"
	"repro/internal/trace"
)

// SortLastAssignment selects how triangles are distributed over the nodes
// of a sort-last machine.
type SortLastAssignment int

const (
	// SortLastRoundRobin deals triangles to nodes one by one.
	SortLastRoundRobin SortLastAssignment = iota
	// SortLastChunked deals contiguous runs of triangles (whole objects or
	// mesh patches, which share textures) to nodes — the assignment that
	// preserves per-object texture locality.
	SortLastChunked
)

// String names the assignment.
func (a SortLastAssignment) String() string {
	switch a {
	case SortLastRoundRobin:
		return "round-robin"
	case SortLastChunked:
		return "chunked"
	default:
		return fmt.Sprintf("SortLastAssignment(%d)", int(a))
	}
}

// SortLastChunkSize is the triangle run length of SortLastChunked, sized to
// a typical mesh patch.
const SortLastChunkSize = 32

// SimulateSortLast renders the scene on the *sort-last* alternative the
// paper contrasts sort-middle against (its references [13] and [14]):
// triangles are distributed over the nodes by object, every node rasterizes
// its own triangles across the whole screen, and an ideal composition
// network merges the full-screen images afterwards. Texture mapping happens
// where the object lives, so a node sees only its own objects' textures —
// the texture-locality advantage of sort-last — but pixel work follows the
// objects, not the screen, and strict OpenGL ordering is lost (the paper's
// §1 reason for preferring sort-middle).
//
// TileSize and TriangleBuffer in cfg are ignored; the composition network
// and frame buffer are ideal, as the paper's geometry network is.
func SimulateSortLast(scene *trace.Scene, cfg Config, assign SortLastAssignment) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := scene.Validate(); err != nil {
		return nil, err
	}
	mgr, err := scene.BuildTextures()
	if err != nil {
		return nil, err
	}

	engines := make([]*engine.Engine, cfg.Procs)
	for i := range engines {
		var c cache.Model
		switch cfg.CacheKind {
		case CachePerfect:
			c = cache.NewPerfect()
		case CacheNone:
			c = cache.NewNone()
		default:
			c = cache.New(cfg.CacheConfig)
		}
		e := engine.NewWithPrefetch(i, cfg.SetupCycles, cfg.PrefetchDepth, c, memory.NewBus(cfg.Bus))
		if cfg.HasL2() {
			e.AttachL2(cache.New(cfg.L2Config), memory.NewBus(cfg.MainBus))
		}
		engines[i] = e
	}

	rast := raster.New(scene.Screen)
	var spans []raster.Span
	for ti := range scene.Triangles {
		t := &scene.Triangles[ti]
		if t.BBox().Intersect(scene.Screen).Empty() || t.Degenerate() {
			continue
		}
		var node int
		switch assign {
		case SortLastChunked:
			node = (ti / SortLastChunkSize) % cfg.Procs
		default:
			node = ti % cfg.Procs
		}
		spans = spans[:0]
		rast.ForEachSpan(*t, scene.Screen, func(sp raster.Span) {
			spans = append(spans, sp)
		})
		w := engine.TriangleWork{
			Tex:      mgr.Texture(t.TexID),
			Map:      t.Tex,
			LOD:      t.Tex.LOD(),
			Segments: spans,
		}
		e := engines[node]
		e.ProcessTriangle(e.Time(), &w)
	}

	res := &Result{Config: cfg, Scene: scene.Name}
	for _, e := range engines {
		st := e.Stats()
		nr := NodeResult{
			Fragments:   st.Fragments,
			Triangles:   st.Triangles,
			SetupBound:  st.SetupBound,
			StallCycles: st.StallCycles,
			BusyCycles:  st.BusyCycles,
			FinishTime:  e.Time(),
			Cache:       e.CacheStats(),
			Bus:         e.BusStats(),
			L2:          e.L2Stats(),
			MainBus:     e.MainBusStats(),
		}
		res.Nodes = append(res.Nodes, nr)
		res.Fragments += st.Fragments
		res.TrianglesRouted += st.Triangles
		if e.Time() > res.Cycles {
			res.Cycles = e.Time()
		}
	}
	return res, nil
}

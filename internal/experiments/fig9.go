package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/raster"
	"repro/internal/stats"
	"repro/internal/trace"
)

// fig9Scenes are the three benchmark images the paper shows.
var fig9Scenes = []string{"teapot.full", "room3", "quake"}

// RunFig9 renders depth-complexity images of the Figure 9 scenes as PGM
// files (bright = high overdraw) — the closest reproducible analogue of the
// paper's benchmark screenshots — and reports per-scene overdraw statistics.
func RunFig9(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(opt.OutDir, 0o755); err != nil {
		return nil, err
	}

	tab := &stats.Table{
		Caption: "Depth-complexity maps",
		Header:  []string{"scene", "file", "mean DC", "max DC", "P99 DC"},
	}
	var notes []string
	for _, name := range fig9Scenes {
		s, err := buildScene(ctx, name, opt)
		if err != nil {
			return nil, err
		}
		dc := DepthComplexityMap(s)
		path := filepath.Join(opt.OutDir, fmt.Sprintf("%s_dc.pgm", s.Name))
		if err := writePGM(path, dc, s.Screen.Width(), s.Screen.Height()); err != nil {
			return nil, err
		}
		flat := make([]float64, len(dc))
		for i, v := range dc {
			flat[i] = float64(v)
		}
		sum := stats.Summarize(flat)
		tab.AddRow(name, path, stats.F(sum.Mean, 2), stats.F(sum.Max, 0),
			stats.F(stats.Percentile(flat, 99), 0))
	}
	notes = append(notes, scaleNote(opt),
		"PGM brightness is proportional to per-pixel overdraw; hot spots appear as bright clusters")

	return &Report{
		ID:    "fig9-images",
		Title: "Benchmark images (depth-complexity rendering)",
		Notes: notes,
		Table: []*stats.Table{tab},
	}, nil
}

// WriteDepthPGM renders the scene's depth-complexity map to a binary PGM
// file, brightness proportional to overdraw.
func WriteDepthPGM(path string, s *trace.Scene) error {
	return writePGM(path, DepthComplexityMap(s), s.Screen.Width(), s.Screen.Height())
}

// DepthComplexityMap rasterizes the scene once and returns the per-pixel
// overdraw counts in row-major order.
func DepthComplexityMap(s *trace.Scene) []uint16 {
	w := s.Screen.Width()
	counts := make([]uint16, w*s.Screen.Height())
	r := raster.New(s.Screen)
	for i := range s.Triangles {
		r.ForEachSpan(s.Triangles[i], s.Screen, func(sp raster.Span) {
			row := (sp.Y - s.Screen.Y0) * w
			for x := sp.X0; x < sp.X1; x++ {
				idx := row + x - s.Screen.X0
				if counts[idx] < ^uint16(0) {
					counts[idx]++
				}
			}
		})
	}
	return counts
}

// writePGM writes an 8-bit binary PGM, normalizing counts to the full gray
// range.
func writePGM(path string, counts []uint16, w, h int) error {
	var maxV uint16 = 1
	for _, c := range counts {
		if c > maxV {
			maxV = c
		}
	}
	buf := make([]byte, 0, len(counts)+32)
	buf = append(buf, []byte(fmt.Sprintf("P5\n%d %d\n255\n", w, h))...)
	for _, c := range counts {
		buf = append(buf, byte(int(c)*255/int(maxV)))
	}
	return os.WriteFile(path, buf, 0o644)
}

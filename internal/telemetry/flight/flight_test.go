package flight

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPhaseAttributionExact(t *testing.T) {
	r := New(2, 100)
	n := r.Node(0)

	// Triangle at t=0: 30 scan, 10 stall, no setup pad.
	n.RecordTriangle(0, 30, 10, 0)
	// Gap 40..70 is idle; then 5 scan with a 20-cycle setup pad.
	n.RecordTriangle(70, 5, 0, 20)
	// Frame barrier pads to 150.
	n.AdvanceIdle(150)

	s := r.Summary()[0]
	if !almost(s.ScanCycles, 35) || !almost(s.StallCycles, 10) ||
		!almost(s.SetupCycles, 20) || !almost(s.IdleCycles, 85) {
		t.Errorf("phase totals = %+v", s)
	}
	if !almost(s.TotalCycles, 150) {
		t.Errorf("TotalCycles = %v, want 150", s.TotalCycles)
	}
	sum := s.SetupCycles + s.ScanCycles + s.StallCycles + s.IdleCycles
	if !almost(sum, s.TotalCycles) {
		t.Errorf("phases sum to %v, total is %v", sum, s.TotalCycles)
	}
	if !almost(s.Utilization, 65.0/150) {
		t.Errorf("Utilization = %v", s.Utilization)
	}

	// Node 1 never ran: everything zero, no NaN utilization.
	s1 := r.Summary()[1]
	if s1.TotalCycles != 0 || s1.Utilization != 0 {
		t.Errorf("untouched node summary = %+v", s1)
	}
}

func TestBucketSplitting(t *testing.T) {
	r := New(1, 100)
	n := r.Node(0)
	// One 250-cycle scan burst spans buckets [0,100), [100,200), [200,250).
	n.RecordTriangle(0, 250, 0, 0)

	want := []float64{100, 100, 50}
	if len(n.buckets) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(n.buckets), len(want))
	}
	for i, w := range want {
		if !almost(n.buckets[i][PhaseScan], w) {
			t.Errorf("bucket %d scan = %v, want %v", i, n.buckets[i][PhaseScan], w)
		}
	}
}

func TestAutoRescaleSharedGrid(t *testing.T) {
	r := New(2, 0) // auto mode
	n0, n1 := r.Node(0), r.Node(1)
	n0.RecordTriangle(0, 100, 0, 0)
	n1.RecordTriangle(0, 50, 0, 0)

	// Push node 0 far past the initial grid; the shared interval must grow
	// and node 1's buckets must merge on the same grid.
	long := autoInitialInterval * maxAutoBuckets * 4.0
	n0.AdvanceIdle(long)
	if r.Interval() <= autoInitialInterval {
		t.Fatalf("interval did not grow: %v", r.Interval())
	}
	if got := float64(len(n0.buckets)) * r.Interval(); got < long {
		t.Errorf("node 0 buckets cover %v cycles, want >= %v", got, long)
	}
	// Totals survive rescaling exactly.
	var b1 float64
	for _, b := range n1.buckets {
		b1 += b[PhaseScan]
	}
	if !almost(b1, 50) {
		t.Errorf("node 1 bucketed scan = %v after rescale, want 50", b1)
	}
}

func TestBucketsSumToTotals(t *testing.T) {
	r := New(1, 0)
	n := r.Node(0)
	// Irregular pattern with gaps and fractional cycles.
	t0 := 0.0
	for i := 0; i < 500; i++ {
		t0 += 3.7
		n.RecordTriangle(t0, 11.3, 2.1, 0.4)
		t0 = n.cursor
	}
	var fromBuckets bucket
	for _, b := range n.buckets {
		for p := range fromBuckets {
			fromBuckets[p] += b[p]
		}
	}
	for p := Phase(0); p < NumPhases; p++ {
		if math.Abs(fromBuckets[p]-n.totals[p]) > 1e-6 {
			t.Errorf("%s: buckets sum to %v, totals say %v", p, fromBuckets[p], n.totals[p])
		}
	}
}

func TestReset(t *testing.T) {
	r := New(1, 0)
	n := r.Node(0)
	n.AdvanceIdle(autoInitialInterval * maxAutoBuckets * 8)
	r.Reset()
	if r.Interval() != autoInitialInterval {
		t.Errorf("interval after reset = %v", r.Interval())
	}
	if s := r.Summary()[0]; s.TotalCycles != 0 {
		t.Errorf("summary after reset = %+v", s)
	}
}

func TestTraceIsValidChromeJSON(t *testing.T) {
	r := New(2, 50)
	r.Node(0).RecordTriangle(0, 80, 20, 0)
	r.Node(1).RecordTriangle(10, 30, 0, 5)
	r.Node(0).AdvanceIdle(120)
	r.Node(1).AdvanceIdle(120)

	raw, err := r.Trace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, raw)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// The X slices on each thread must tile the run exactly: per-tid dur
	// sums equal the node's total cycles.
	durs := map[int]float64{}
	var sawMeta, sawCounter bool
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			sawMeta = true
		case "C":
			sawCounter = true
		case "X":
			durs[e.Tid] += e.Dur
			if !strings.Contains("setup scan stall idle", e.Name) {
				t.Errorf("unknown phase slice %q", e.Name)
			}
		default:
			t.Errorf("unexpected event phase %q", e.Ph)
		}
	}
	if !sawMeta || !sawCounter {
		t.Errorf("missing metadata (%v) or counter (%v) events", sawMeta, sawCounter)
	}
	for tid, d := range durs {
		if !almost(d, 120) {
			t.Errorf("tid %d slices cover %v cycles, want 120", tid, d)
		}
	}
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 0) },
		func() { New(2, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad New call did not panic")
				}
			}()
			f()
		}()
	}
}

package engine

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/geom"
	"repro/internal/memory"
	"repro/internal/raster"
	"repro/internal/texture"
)

func newTestEngine(c cache.Model, bus memory.BusConfig) (*Engine, *texture.Texture) {
	mgr := texture.NewManager()
	tex := mgr.MustAdd(256, 256)
	return New(0, DefaultSetupCycles, c, memory.NewBus(bus)), tex
}

func identityWork(tex *texture.Texture, spans ...raster.Span) *TriangleWork {
	return &TriangleWork{
		Tex:      tex,
		Map:      geom.TexMap{DuDx: 1, DvDy: 1},
		LOD:      0,
		Segments: spans,
	}
}

func TestSetupBoundTriangle(t *testing.T) {
	e, tex := newTestEngine(cache.NewPerfect(), memory.BusConfig{})
	// 5 pixels < 25: triangle is setup-bound and costs exactly 25 cycles.
	done := e.ProcessTriangle(0, identityWork(tex, raster.Span{Y: 0, X0: 0, X1: 5}))
	if done != 25 {
		t.Errorf("setup-bound triangle finished at %v, want 25", done)
	}
	st := e.Stats()
	if st.SetupBound != 1 || st.Fragments != 5 || st.Triangles != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestZeroPixelTriangleStillPaysSetup(t *testing.T) {
	e, tex := newTestEngine(cache.NewPerfect(), memory.BusConfig{})
	done := e.ProcessTriangle(10, identityWork(tex))
	if done != 35 {
		t.Errorf("empty routed triangle finished at %v, want 35", done)
	}
}

func TestScanBoundTriangle(t *testing.T) {
	e, tex := newTestEngine(cache.NewPerfect(), memory.BusConfig{})
	// 100 pixels with a perfect cache: 100 cycles, one per pixel.
	done := e.ProcessTriangle(0, identityWork(tex, raster.Span{Y: 0, X0: 0, X1: 100}))
	if done != 100 {
		t.Errorf("scan-bound triangle finished at %v, want 100", done)
	}
	if e.Stats().SetupBound != 0 {
		t.Error("scan-bound triangle counted as setup-bound")
	}
}

func TestArrivalAfterIdle(t *testing.T) {
	e, tex := newTestEngine(cache.NewPerfect(), memory.BusConfig{})
	e.ProcessTriangle(0, identityWork(tex, raster.Span{Y: 0, X0: 0, X1: 30}))
	// Node idle at 30; triangle arriving at 100 starts at 100.
	done := e.ProcessTriangle(100, identityWork(tex, raster.Span{Y: 1, X0: 0, X1: 30}))
	if done != 130 {
		t.Errorf("second triangle finished at %v, want 130", done)
	}
	// Triangle arriving while busy queues behind.
	done = e.ProcessTriangle(90, identityWork(tex, raster.Span{Y: 2, X0: 0, X1: 30}))
	if done != 160 {
		t.Errorf("third triangle finished at %v, want 160", done)
	}
}

func TestPerfectCacheNeverStalls(t *testing.T) {
	e, tex := newTestEngine(cache.NewPerfect(), memory.BusConfig{TexelsPerCycle: 1})
	e.ProcessTriangle(0, identityWork(tex,
		raster.Span{Y: 0, X0: 0, X1: 200}, raster.Span{Y: 1, X0: 0, X1: 200}))
	if e.Stats().StallCycles != 0 {
		t.Errorf("perfect cache stalled %v cycles", e.Stats().StallCycles)
	}
	if e.TexelToFragment() != 0 {
		t.Errorf("perfect cache fetched texels: ratio %v", e.TexelToFragment())
	}
}

func TestCachelessRatioIsEight(t *testing.T) {
	// With no cache every fragment misses all 8 texel lookups and each miss
	// fetches a full 16-texel line, so the line-granularity traffic ratio is
	// exactly 8 × 16 texels per fragment. (The paper's "ratio 8 for a
	// cacheless machine" counts only consumed texels — a cacheless design
	// would fetch single texels, not lines.)
	e, tex := newTestEngine(cache.NewNone(), memory.BusConfig{})
	e.ProcessTriangle(0, identityWork(tex, raster.Span{Y: 0, X0: 0, X1: 100}))
	want := 8.0 * texture.LineTexels
	if got := e.TexelToFragment(); got != want {
		t.Errorf("cacheless ratio = %v, want %v", got, want)
	}
}

func TestBusStallsSlowScan(t *testing.T) {
	// Real cache, identity mapping, ratio-1 bus: a long scan across a cold
	// texture misses 2 lines per 4 pixels (two mip levels), i.e. demand
	// ≈ 16·2/4 = 8 texels/pixel > 1, so the node must stall heavily and run
	// several times slower than the scanner.
	e, tex := newTestEngine(cache.New(cache.PaperConfig()),
		memory.BusConfig{TexelsPerCycle: 1})
	var spans []raster.Span
	for y := 0; y < 16; y++ {
		spans = append(spans, raster.Span{Y: y, X0: 0, X1: 256})
	}
	done := e.ProcessTriangle(0, identityWork(tex, spans...))
	frags := float64(e.Stats().Fragments)
	if frags != 16*256 {
		t.Fatalf("fragments = %v", frags)
	}
	if done < 2*frags {
		t.Errorf("cold ratio-1 scan finished at %v, want ≫ %v (stall-bound)", done, frags)
	}
	if e.Stats().StallCycles <= 0 {
		t.Error("no stalls recorded")
	}
	// Completion is bounded below by the bus occupancy and above by fully
	// serialized scan+fetch. It lands strictly between the two because the
	// miss bursts (one heavy row per texel-block row, then light rows) exceed
	// the prefetch FIFO depth — the burst-saturation effect of paper §6.
	busy := e.BusStats().BusyCycles
	if done < busy {
		t.Errorf("completion %v below bus occupancy %v", done, busy)
	}
	if done >= frags+busy {
		t.Errorf("completion %v not better than fully serialized %v", done, frags+busy)
	}
}

func TestWarmCacheFasterThanCold(t *testing.T) {
	cfg := memory.BusConfig{TexelsPerCycle: 1}
	e, tex := newTestEngine(cache.New(cache.PaperConfig()), cfg)
	spans := []raster.Span{{Y: 0, X0: 0, X1: 64}, {Y: 1, X0: 0, X1: 64}}
	coldDone := e.ProcessTriangle(0, identityWork(tex, spans...))
	coldElapsed := coldDone
	// Re-draw the same pixels: texels are resident, no new fetches.
	warmDone := e.ProcessTriangle(coldDone, identityWork(tex, spans...))
	warmElapsed := warmDone - coldDone
	if warmElapsed >= coldElapsed {
		t.Errorf("warm pass (%v) not faster than cold pass (%v)", warmElapsed, coldElapsed)
	}
	if warmElapsed != 128 {
		t.Errorf("warm pass = %v cycles, want 128 (pure scan)", warmElapsed)
	}
}

func TestTexelToFragmentAccounting(t *testing.T) {
	e, tex := newTestEngine(cache.New(cache.PaperConfig()), memory.BusConfig{})
	e.ProcessTriangle(0, identityWork(tex,
		raster.Span{Y: 0, X0: 0, X1: 128}, raster.Span{Y: 1, X0: 0, X1: 128}))
	frags := e.Stats().Fragments
	lines := e.BusStats().LinesFetched
	want := float64(lines*texture.LineTexels) / float64(frags)
	if got := e.TexelToFragment(); got != want {
		t.Errorf("ratio = %v, want %v", got, want)
	}
	if got := e.TexelToFragment(); got <= 0 || got >= 8 {
		t.Errorf("identity-scan ratio = %v, want in (0, 8)", got)
	}
}

func TestReset(t *testing.T) {
	e, tex := newTestEngine(cache.New(cache.PaperConfig()), memory.BusConfig{TexelsPerCycle: 2})
	e.ProcessTriangle(0, identityWork(tex, raster.Span{Y: 0, X0: 0, X1: 64}))
	e.Reset()
	if e.Time() != 0 {
		t.Error("time not reset")
	}
	s := e.Stats()
	if s.Triangles != 0 || s.Fragments != 0 || s.BusyCycles != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
	if e.CacheStats().Accesses != 0 || e.BusStats().LinesFetched != 0 {
		t.Error("cache/bus not reset")
	}
}

func TestBusyCyclesAccumulate(t *testing.T) {
	e, tex := newTestEngine(cache.NewPerfect(), memory.BusConfig{})
	e.ProcessTriangle(0, identityWork(tex, raster.Span{Y: 0, X0: 0, X1: 10})) // setup-bound: 25
	e.ProcessTriangle(0, identityWork(tex, raster.Span{Y: 0, X0: 0, X1: 50})) // scan-bound: 50
	if got := e.Stats().BusyCycles; got != 75 {
		t.Errorf("busy cycles = %v, want 75", got)
	}
	if e.Time() != 75 {
		t.Errorf("time = %v, want 75", e.Time())
	}
}

func BenchmarkProcessTriangle(b *testing.B) {
	mgr := texture.NewManager()
	tex := mgr.MustAdd(512, 512)
	e := New(0, DefaultSetupCycles, cache.New(cache.PaperConfig()),
		memory.NewBus(memory.BusConfig{TexelsPerCycle: 2}))
	var spans []raster.Span
	for y := 0; y < 32; y++ {
		spans = append(spans, raster.Span{Y: y, X0: 0, X1: 128})
	}
	w := identityWork(tex, spans...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ProcessTriangle(e.Time(), w)
	}
	b.ReportMetric(float64(e.Stats().Fragments)/b.Elapsed().Seconds(), "frags/s")
}

func TestProcessTriangleAllocFree(t *testing.T) {
	// The per-triangle fast path must not allocate: the texel-footprint
	// scratch lives on the engine and spans are caller-owned.
	e, tex := newTestEngine(cache.New(cache.Config{SizeBytes: 16 * 1024, Ways: 4, LineBytes: 64}), memory.BusConfig{TexelsPerCycle: 2})
	w := identityWork(tex, raster.Span{Y: 0, X0: 0, X1: 64}, raster.Span{Y: 1, X0: 0, X1: 64})
	arrival := 0.0
	if n := testing.AllocsPerRun(100, func() {
		arrival = e.ProcessTriangle(arrival, w)
	}); n != 0 {
		t.Errorf("ProcessTriangle allocates %.1f per call", n)
	}
}

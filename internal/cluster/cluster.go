// Package cluster turns a set of texsimd processes into a peer-aware
// cluster: a static peer list, job routing by rendezvous hash of the
// result-cache key, cache federation (ask the owning peer before
// simulating), and work stealing (idle nodes pull queued jobs from
// overloaded peers).
//
// The package owns the cluster-wide bookkeeping — the peer health table,
// the ownership function, the peer-protocol HTTP client, and the
// steal/proxy/forward counters (registered on the shared metrics
// registry) — while internal/service owns the job lifecycle and decides
// when to route, proxy or steal. Determinism is what makes the whole
// design safe: two nodes simulating the same config hash produce
// byte-identical documents, so a result proxied from a peer, or computed
// by a thief and handed back, is indistinguishable from a local run.
package cluster

import (
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/telemetry/logging"
)

// Config tunes the cluster. Zero values mean the documented defaults.
type Config struct {
	// Metrics is the registry the cluster counters are registered on —
	// share it with the service so /metrics exposes both (nil = fresh).
	Metrics *metrics.Registry
	// Client performs all peer HTTP calls (nil = a client with a 30s
	// overall timeout; individual probes use ProbeTimeout contexts).
	Client *http.Client
	// ProbeTimeout bounds one health probe or federated cache fetch
	// (0 = 2s).
	ProbeTimeout time.Duration
	// CallTimeout bounds every other peer call — forwards, status polls,
	// result fetches, completions, cache pushes (0 = 10s). Every outbound
	// hop carries a deadline so a hung peer can never pin a supervision
	// goroutine past it.
	CallTimeout time.Duration
	// HealthInterval is the steady-state probe period for healthy peers
	// (0 = 5s).
	HealthInterval time.Duration
	// FailThreshold is how many consecutive failures — probes or passive
	// reports from forwards and polls — mark a peer down (0 = 2).
	FailThreshold int
	// MaxBackoff caps the down-peer reprobe backoff (0 = 30s).
	MaxBackoff time.Duration
	// Logger receives peer state-transition logs (nil = discard).
	Logger *slog.Logger
}

// peer is one remote member's health record.
type peer struct {
	addr      string // normalized base URL, the rendezvous identity
	up        bool
	fails     int // consecutive failures
	lastProbe time.Time
	lastErr   string
	backoff   time.Duration
	nextProbe time.Time
	rttMS     float64
}

// Cluster is the peer table plus the peer-protocol client. Create with
// New, then SetPeers with the advertised self address and the static peer
// list; Start launches the active health checker.
type Cluster struct {
	cfg    Config
	client *http.Client
	logger *slog.Logger

	// mu is a read/write lock: the peer table is read on every routing
	// decision (Alive, IsAlive, Owner lookups) and written only by probes,
	// reports and SetPeers, so readers take RLock and never block each
	// other.
	mu    sync.RWMutex
	self  string
	peers map[string]*peer

	mForwards     *metrics.CounterVec // by reason: route, spill, failover
	mForwardFails *metrics.Counter
	mProxyHits    *metrics.Counter
	mProxyMisses  *metrics.Counter
	mStealsGiven  *metrics.Counter
	mStealsTaken  *metrics.Counter
	mStale        *metrics.Counter
	mFailovers    *metrics.Counter
	mProbeFails   *metrics.Counter
	mPeersUp      *metrics.Gauge
}

// New builds a cluster with an empty peer table; SetPeers installs the
// membership.
func New(cfg Config) *Cluster {
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 10 * time.Second
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 5 * time.Second
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 2
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = logging.Discard()
	}
	c := &Cluster{
		cfg:    cfg,
		client: client,
		logger: logger,
		peers:  make(map[string]*peer),
	}
	r := cfg.Metrics
	c.mForwards = r.CounterVec("texsimd_cluster_forwards_total", "Jobs forwarded to a peer, by reason (route, spill, failover).", "reason")
	c.mForwardFails = r.Counter("texsimd_cluster_forward_failures_total", "Forward attempts that failed or were rejected by the peer.")
	c.mProxyHits = r.Counter("texsimd_cluster_proxy_cache_hits_total", "Jobs served from the owning peer's result cache without simulating.")
	c.mProxyMisses = r.Counter("texsimd_cluster_proxy_cache_misses_total", "Federated cache lookups the owning peer could not answer.")
	c.mStealsGiven = r.Counter("texsimd_cluster_steals_given_total", "Queued jobs handed to an idle peer.")
	c.mStealsTaken = r.Counter("texsimd_cluster_steals_taken_total", "Queued jobs pulled from an overloaded peer and run here.")
	c.mStale = r.Counter("texsimd_cluster_stale_completions_total", "Stolen-job completions discarded because the lease had moved on.")
	c.mFailovers = r.Counter("texsimd_cluster_failovers_total", "Remote jobs re-dispatched after their executing peer was lost.")
	c.mProbeFails = r.Counter("texsimd_cluster_probe_failures_total", "Health probes that failed.")
	c.mPeersUp = r.Gauge("texsimd_cluster_peers_up", "Remote peers currently considered healthy.")
	return c
}

// normalizeAddr turns "host:port" or a URL into the canonical base URL
// used as the peer's rendezvous identity. All nodes must list a given
// member under the same address for the hash to agree.
func normalizeAddr(addr string) string {
	addr = strings.TrimRight(strings.TrimSpace(addr), "/")
	if addr == "" {
		return ""
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return addr
}

// SetPeers installs the advertised self address and the remote peer list,
// replacing any previous membership. Unknown new peers start healthy —
// optimistic routing, corrected within FailThreshold failed calls.
func (c *Cluster) SetPeers(self string, peers []string) {
	self = normalizeAddr(self)
	c.mu.Lock()
	c.self = self
	seen := make(map[string]bool, len(peers))
	for _, a := range peers {
		a = normalizeAddr(a)
		if a == "" || a == self || seen[a] {
			continue
		}
		seen[a] = true
		if _, ok := c.peers[a]; !ok {
			c.peers[a] = &peer{addr: a, up: true}
		}
	}
	for a := range c.peers {
		if !seen[a] {
			delete(c.peers, a)
		}
	}
	c.mu.Unlock()
	c.refreshPeersUp()
}

// Self returns the advertised address of this node.
func (c *Cluster) Self() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.self
}

// Members returns every configured member (self included), sorted.
func (c *Cluster) Members() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.peers)+1)
	if c.self != "" {
		out = append(out, c.self)
	}
	for a := range c.peers {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Alive returns the members currently routable (self plus healthy peers),
// sorted. Self is always alive from its own point of view.
func (c *Cluster) Alive() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.peers)+1)
	if c.self != "" {
		out = append(out, c.self)
	}
	for a, p := range c.peers {
		if p.up {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// AlivePeers returns the healthy remote peers (self excluded), sorted.
func (c *Cluster) AlivePeers() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.peers))
	for a, p := range c.peers {
		if p.up {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// IsAlive reports whether addr is currently considered healthy. Self is
// always alive.
func (c *Cluster) IsAlive(addr string) bool {
	addr = normalizeAddr(addr)
	c.mu.RLock()
	defer c.mu.RUnlock()
	if addr == c.self {
		return true
	}
	p, ok := c.peers[addr]
	return ok && p.up
}

// PeerStatus is one remote member's health, as /cluster reports it.
type PeerStatus struct {
	Addr                string  `json:"addr"`
	Up                  bool    `json:"up"`
	ConsecutiveFailures int     `json:"consecutive_failures,omitempty"`
	LastProbe           string  `json:"last_probe,omitempty"`
	LastError           string  `json:"last_error,omitempty"`
	RTTMS               float64 `json:"rtt_ms,omitempty"`
}

// Peers returns a snapshot of every remote member's health, sorted by
// address.
func (c *Cluster) Peers() []PeerStatus {
	c.mu.RLock()
	out := make([]PeerStatus, 0, len(c.peers))
	for _, p := range c.peers {
		st := PeerStatus{
			Addr:                p.addr,
			Up:                  p.up,
			ConsecutiveFailures: p.fails,
			LastError:           p.lastErr,
			RTTMS:               p.rttMS,
		}
		if !p.lastProbe.IsZero() {
			st.LastProbe = p.lastProbe.UTC().Format(time.RFC3339Nano)
		}
		out = append(out, st)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Stats is the cluster counter snapshot — the same values the metrics
// registry exports, read back so /cluster and /metrics cannot disagree.
type Stats struct {
	ForwardsRoute    int64 `json:"forwards_route"`
	ForwardsSpill    int64 `json:"forwards_spill"`
	ForwardsFailover int64 `json:"forwards_failover"`
	ForwardFailures  int64 `json:"forward_failures"`
	ProxyCacheHits   int64 `json:"proxy_cache_hits"`
	ProxyCacheMisses int64 `json:"proxy_cache_misses"`
	StealsGiven      int64 `json:"steals_given"`
	StealsTaken      int64 `json:"steals_taken"`
	StaleCompletions int64 `json:"stale_completions"`
	Failovers        int64 `json:"failovers"`
	ProbeFailures    int64 `json:"probe_failures"`
	PeersUp          int   `json:"peers_up"`
}

// Stats returns the counter snapshot.
func (c *Cluster) Stats() Stats {
	return Stats{
		ForwardsRoute:    c.mForwards.With("route").Value(),
		ForwardsSpill:    c.mForwards.With("spill").Value(),
		ForwardsFailover: c.mForwards.With("failover").Value(),
		ForwardFailures:  c.mForwardFails.Value(),
		ProxyCacheHits:   c.mProxyHits.Value(),
		ProxyCacheMisses: c.mProxyMisses.Value(),
		StealsGiven:      c.mStealsGiven.Value(),
		StealsTaken:      c.mStealsTaken.Value(),
		StaleCompletions: c.mStale.Value(),
		Failovers:        c.mFailovers.Value(),
		ProbeFailures:    c.mProbeFails.Value(),
		PeersUp:          int(c.mPeersUp.Value()),
	}
}

// Counter hooks for the service's routing decisions. Keeping the storage
// in the metrics registry means there is exactly one copy of each number.

// CountForward records a job handed to a peer for the given reason
// ("route", "spill" or "failover").
func (c *Cluster) CountForward(reason string) { c.mForwards.With(reason).Inc() }

// CountForwardFailure records a forward attempt a peer refused or failed.
func (c *Cluster) CountForwardFailure() { c.mForwardFails.Inc() }

// CountProxyHit records a job served from the owning peer's cache.
func (c *Cluster) CountProxyHit() { c.mProxyHits.Inc() }

// CountProxyMiss records a federated lookup the owner could not answer.
func (c *Cluster) CountProxyMiss() { c.mProxyMisses.Inc() }

// CountStealGiven records a queued job handed to an idle peer.
func (c *Cluster) CountStealGiven() { c.mStealsGiven.Inc() }

// CountStealTaken records a queued job pulled from a peer and run here.
func (c *Cluster) CountStealTaken() { c.mStealsTaken.Inc() }

// CountStaleCompletion records a completion discarded as out of lease.
func (c *Cluster) CountStaleCompletion() { c.mStale.Inc() }

// CountFailover records a remote job re-dispatched after peer loss.
func (c *Cluster) CountFailover() { c.mFailovers.Inc() }

// refreshPeersUp recomputes the peers-up gauge.
func (c *Cluster) refreshPeersUp() {
	c.mu.RLock()
	n := 0
	for _, p := range c.peers {
		if p.up {
			n++
		}
	}
	c.mu.RUnlock()
	c.mPeersUp.Set(float64(n))
}

package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

func newTestCluster(t *testing.T, self string, peers []string) *Cluster {
	t.Helper()
	c := New(Config{Metrics: metrics.NewRegistry()})
	c.SetPeers(self, peers)
	return c
}

func TestOwnerOfDeterministicAndOrderInvariant(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	shuffled := []string{"http://c:1", "http://a:1", "http://b:1"}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		o1 := OwnerOf(key, members)
		o2 := OwnerOf(key, shuffled)
		if o1 != o2 {
			t.Fatalf("owner of %q depends on member order: %q vs %q", key, o1, o2)
		}
		if o1 != OwnerOf(key, members) {
			t.Fatalf("owner of %q is not deterministic", key)
		}
	}
	if OwnerOf("x", nil) != "" {
		t.Fatal("owner of empty member set should be empty")
	}
}

func TestOwnerOfDistributesEvenly(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[OwnerOf(fmt.Sprintf("key-%d", i), members)]++
	}
	for _, m := range members {
		share := float64(counts[m]) / n
		// A fair hash gives each of 3 members ~1/3; anything under 20%
		// would break the load-spreading the routing design assumes.
		if share < 0.2 || share > 0.5 {
			t.Fatalf("member %s owns %.1f%% of keys, want roughly a third", m, 100*share)
		}
	}
}

func TestOwnerOfMinimalMovementOnMemberDeath(t *testing.T) {
	full := []string{"http://a:1", "http://b:1", "http://c:1"}
	without := []string{"http://a:1", "http://c:1"}
	const n = 2000
	moved := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := OwnerOf(key, full)
		after := OwnerOf(key, without)
		if before == "http://b:1" {
			// Orphaned keys must land on a surviving member.
			if after != "http://a:1" && after != "http://c:1" {
				t.Fatalf("orphaned key %q got owner %q", key, after)
			}
			continue
		}
		if after != before {
			moved++
		}
	}
	// The rendezvous property: keys owned by survivors do not move at all.
	if moved != 0 {
		t.Fatalf("%d keys owned by surviving members moved on a peer death", moved)
	}
}

func TestSetPeersNormalizesAndDropsSelf(t *testing.T) {
	c := newTestCluster(t, "host1:8080", []string{
		"host2:8080", "http://host3:8080/", "host1:8080", "", "host2:8080",
	})
	if got := c.Self(); got != "http://host1:8080" {
		t.Fatalf("Self() = %q", got)
	}
	want := []string{"http://host1:8080", "http://host2:8080", "http://host3:8080"}
	got := c.Members()
	if len(got) != len(want) {
		t.Fatalf("Members() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members() = %v, want %v", got, want)
		}
	}
	// Replacing the membership drops absent peers and keeps known ones.
	c.SetPeers("host1:8080", []string{"host2:8080"})
	if got := c.Members(); len(got) != 2 {
		t.Fatalf("after shrink Members() = %v", got)
	}
}

func TestHealthTransitions(t *testing.T) {
	c := newTestCluster(t, "http://self:1", []string{"http://peer:1"})
	if !c.IsAlive("http://peer:1") {
		t.Fatal("new peer should start optimistic-up")
	}
	// One failure is below the default threshold of 2.
	c.ReportFailure("http://peer:1", fmt.Errorf("boom"))
	if !c.IsAlive("http://peer:1") {
		t.Fatal("one failure should not mark the peer down")
	}
	c.ReportFailure("http://peer:1", fmt.Errorf("boom"))
	if c.IsAlive("http://peer:1") {
		t.Fatal("two failures should mark the peer down")
	}
	if got := c.Alive(); len(got) != 1 || got[0] != "http://self:1" {
		t.Fatalf("Alive() with peer down = %v", got)
	}
	if got := c.AlivePeers(); len(got) != 0 {
		t.Fatalf("AlivePeers() with peer down = %v", got)
	}
	// Ownership must route around the dead peer: self owns everything.
	if owner, self := c.Owner("any-key"); !self || owner != "http://self:1" {
		t.Fatalf("Owner with all peers down = %q self=%v", owner, self)
	}
	c.ReportSuccess("http://peer:1")
	if !c.IsAlive("http://peer:1") {
		t.Fatal("a success should revive the peer")
	}
	if !c.IsAlive("http://self:1") {
		t.Fatal("self is always alive")
	}
	if c.IsAlive("http://unknown:1") {
		t.Fatal("unknown addresses are not alive")
	}
}

func TestProbeMarksDeadPeerDown(t *testing.T) {
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer healthy.Close()
	var draining atomic.Bool
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer sick.Close()

	c := New(Config{
		Metrics:        metrics.NewRegistry(),
		ProbeTimeout:   time.Second,
		HealthInterval: 10 * time.Millisecond,
		FailThreshold:  2,
	})
	c.SetPeers("http://self:1", []string{healthy.URL, sick.URL})

	ctx := context.Background()
	c.ProbeNow(ctx)
	if !c.IsAlive(healthy.URL) || !c.IsAlive(sick.URL) {
		t.Fatal("both peers should probe healthy")
	}

	// A draining peer answers 503 and must be treated as down: it will not
	// accept forwards.
	draining.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for c.IsAlive(sick.URL) && time.Now().Before(deadline) {
		c.ProbeNow(ctx)
		time.Sleep(5 * time.Millisecond)
	}
	if c.IsAlive(sick.URL) {
		t.Fatal("draining peer never went down")
	}
	if !c.IsAlive(healthy.URL) {
		t.Fatal("healthy peer should stay up")
	}
	st := c.Stats()
	if st.ProbeFailures == 0 {
		t.Fatal("probe failures should be counted")
	}
	if st.PeersUp != 1 {
		t.Fatalf("peers_up = %d, want 1", st.PeersUp)
	}

	// Recovery: the peer starts answering again and a probe revives it
	// (backoff is capped, but ProbeNow after nextProbe fires).
	draining.Store(false)
	deadline = time.Now().Add(10 * time.Second)
	for !c.IsAlive(sick.URL) && time.Now().Before(deadline) {
		c.ProbeNow(ctx)
		time.Sleep(20 * time.Millisecond)
	}
	if !c.IsAlive(sick.URL) {
		t.Fatal("recovered peer never came back up")
	}
}

func TestStatsCounters(t *testing.T) {
	c := newTestCluster(t, "http://self:1", nil)
	c.CountForward("route")
	c.CountForward("spill")
	c.CountForward("spill")
	c.CountForwardFailure()
	c.CountProxyHit()
	c.CountProxyMiss()
	c.CountStealGiven()
	c.CountStealTaken()
	c.CountStaleCompletion()
	c.CountFailover()
	st := c.Stats()
	want := Stats{
		ForwardsRoute: 1, ForwardsSpill: 2, ForwardFailures: 1,
		ProxyCacheHits: 1, ProxyCacheMisses: 1,
		StealsGiven: 1, StealsTaken: 1, StaleCompletions: 1, Failovers: 1,
	}
	if st != want {
		t.Fatalf("Stats() = %+v, want %+v", st, want)
	}
}

func TestOwnershipSharesSumToOne(t *testing.T) {
	c := newTestCluster(t, "http://a:1", []string{"http://b:1", "http://c:1"})
	shares := c.Ownership(512)
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("ownership shares sum to %v, want 1", sum)
	}
	if len(shares) != 3 {
		t.Fatalf("ownership covers %d members, want 3", len(shares))
	}
}

// A hung peer must not hang the caller: every non-probe peer call is
// bounded by Config.CallTimeout even when the caller's context has no
// deadline of its own. Regression test for the rpchygiene finding that
// exported client methods forwarded the caller's raw context.
func TestCallTimeoutBoundsHungPeer(t *testing.T) {
	stall := make(chan struct{})
	defer close(stall)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-stall:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()

	c := New(Config{Metrics: metrics.NewRegistry(), CallTimeout: 50 * time.Millisecond})
	c.SetPeers("http://self:1", []string{ts.URL})

	start := time.Now()
	_, err := c.JobStatus(context.Background(), ts.URL, "job-1")
	if err == nil {
		t.Fatal("JobStatus against a hung peer returned nil error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("JobStatus took %v against a hung peer, want ~CallTimeout (50ms)", elapsed)
	}
}

// probe must drain and close the response body so the keep-alive
// connection is reused; a leaked body forces a new TCP connection per
// probe. Regression test for the rpchygiene finding that probe closed
// the body without draining it (and not via defer).
func TestProbeReusesConnection(t *testing.T) {
	var conns atomic.Int64
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A non-empty body: without a drain before Close, the transport
		// cannot return this connection to the idle pool.
		fmt.Fprintln(w, `{"status":"ok","padding":"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"}`)
	}))
	ts.Config.ConnState = func(_ net.Conn, state http.ConnState) {
		if state == http.StateNew {
			conns.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()

	c := New(Config{Metrics: metrics.NewRegistry()})
	c.SetPeers("http://self:1", []string{ts.URL})

	for i := 0; i < 3; i++ {
		if err := c.probe(context.Background(), ts.URL); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
	}
	if got := conns.Load(); got != 1 {
		t.Fatalf("3 probes opened %d connections, want 1 (body not drained/closed?)", got)
	}
}

package service

import "sync"

// jobClass is a job's scheduling band. Bands are strict priorities:
// interactive jobs always dequeue before bulk ones, which is what keeps a
// small single-config job from waiting behind a tenant's 10k-point sweep.
type jobClass int

const (
	classInteractive jobClass = iota
	classBulk
	numClasses
)

func (c jobClass) String() string {
	switch c {
	case classInteractive:
		return "interactive"
	case classBulk:
		return "bulk"
	}
	return "unknown"
}

// fairQueue replaces the plain buffered channel as the worker queue: a
// two-band (interactive over bulk) weighted-fair queue across tenants, FIFO
// within one tenant's band. Capacity bounds total occupancy like the old
// channel's buffer did; push is non-blocking, pop blocks on a condition
// variable until work arrives or the queue closes.
//
// Fairness within a band is weighted round-robin over the tenants that have
// queued jobs: each tenant in turn dequeues up to weight(tenant) jobs before
// the cursor advances. Tenants arrive and leave the ring as their per-band
// FIFOs fill and drain.
type fairQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int
	weights  map[string]int
	closed   bool
	n        int
	bands    [numClasses]band
}

// band is one priority level: per-tenant FIFOs plus the round-robin ring of
// tenants that currently have jobs here.
type band struct {
	tenants map[string]*tenantFIFO
	ring    []string
	cursor  int
	credit  int // dequeues left for ring[cursor] before the cursor advances
}

type tenantFIFO struct {
	jobs []*job
}

func newFairQueue(capacity int, weights map[string]int) *fairQueue {
	q := &fairQueue{capacity: capacity, weights: weights}
	q.cond = sync.NewCond(&q.mu)
	for c := range q.bands {
		q.bands[c].tenants = make(map[string]*tenantFIFO)
	}
	return q
}

// weight is a tenant's round-robin share (default 1).
func (q *fairQueue) weight(tenant string) int {
	if w := q.weights[tenant]; w > 0 {
		return w
	}
	return 1
}

// push enqueues j. force bypasses the capacity bound — used when a
// supervised cluster job falls back to the local queue, which must never be
// dropped (bounded overshoot: at most one job per supervised forward).
// Returns ok=false when full, closed=true when the queue has been closed
// (in which case the job was not enqueued).
func (q *fairQueue) push(j *job, force bool) (ok, closed bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false, true
	}
	if !force && q.n >= q.capacity {
		return false, false
	}
	b := &q.bands[j.class]
	f := b.tenants[j.tenant]
	if f == nil {
		f = &tenantFIFO{}
		b.tenants[j.tenant] = f
	}
	if len(f.jobs) == 0 {
		b.ring = append(b.ring, j.tenant)
	}
	f.jobs = append(f.jobs, j)
	q.n++
	q.cond.Signal()
	return true, false
}

// popBandLocked dequeues the next job of band c under the weighted
// round-robin discipline, or nil when the band is empty. Caller holds q.mu.
func (q *fairQueue) popBandLocked(c jobClass) *job {
	b := &q.bands[c]
	if len(b.ring) == 0 {
		return nil
	}
	if b.cursor >= len(b.ring) {
		b.cursor = 0
	}
	t := b.ring[b.cursor]
	if b.credit <= 0 {
		b.credit = q.weight(t)
	}
	f := b.tenants[t]
	j := f.jobs[0]
	f.jobs = f.jobs[1:]
	q.n--
	b.credit--
	if len(f.jobs) == 0 {
		// Tenant drained: leave the ring; the cursor now points at the next
		// tenant, whose credit starts fresh.
		b.ring = append(b.ring[:b.cursor], b.ring[b.cursor+1:]...)
		b.credit = 0
	} else if b.credit <= 0 {
		b.cursor++
		if b.cursor >= len(b.ring) {
			b.cursor = 0
		}
	}
	return j
}

func (q *fairQueue) popLocked() *job {
	for c := jobClass(0); c < numClasses; c++ {
		if j := q.popBandLocked(c); j != nil {
			return j
		}
	}
	return nil
}

// pop blocks until a job is available (returned in fairness order) or the
// queue closes after draining empty — the channel-receive contract workers
// had before.
func (q *fairQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if j := q.popLocked(); j != nil {
			return j, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// steal dequeues one job for a remote thief without blocking, preferring
// the LOWEST band (bulk first): giving away long jobs helps local
// interactive latency the most. Returns nil when empty.
func (q *fairQueue) steal() *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for c := numClasses - 1; c >= 0; c-- {
		if j := q.popBandLocked(c); j != nil {
			return j
		}
	}
	return nil
}

// close stops intake and wakes every blocked pop; queued jobs still drain.
// Idempotent.
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// len is the current occupancy.
func (q *fairQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// depth is the configured capacity bound.
func (q *fairQueue) depth() int { return q.capacity }

// Package par is the shared bounded-parallelism helper used by the
// experiments layer, the sweep runner and the texsimd service: a
// context-aware parallel for-loop with first-error semantics.
package par

import (
	"context"
	"sync"
)

// ForEach runs fn(0..n-1) on up to par goroutines and returns the first
// error. Once an error occurs (or ctx is cancelled) no further indices are
// started; in-flight calls run to completion. A cancelled context returns
// ctx.Err() unless fn already failed first.
func ForEach(ctx context.Context, par, n int, fn func(i int) error) error {
	if par > n {
		par = n
	}
	if par < 1 {
		par = 1
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if firstErr != nil || next >= n {
					mu.Unlock()
					return
				}
				if err := ctx.Err(); err != nil {
					firstErr = err
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

package service

import (
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// The job journal makes accepted-but-unfinished jobs survive a process
// death: every registered job writes one JSON file under
// CheckpointDir/jobs, removed when the job reaches a terminal state. On
// boot with Config.Resume, recoverJournal resubmits every journaled request
// (under fresh job IDs — clients polling the old IDs are pointed at a dead
// process anyway). Combined with the sweep row checkpoints in the same
// directory, a resubmitted sweep re-simulates only the rows the dead
// process had not finished.
//
// The replay discipline is at-most-once: an entry's file is removed before
// its request is resubmitted, so a crash mid-recovery loses that one job
// rather than ever duplicating it.

// journalEntry is one journaled job. The full Request is embedded, so
// tenant and spec survive verbatim.
type journalEntry struct {
	ID        string    `json:"id"`
	Request   *Request  `json:"request"`
	Submitted time.Time `json:"submitted"`
}

// journalAdd persists j's request; best-effort (a failed write costs the
// job its restart durability, nothing else). Never called under s.mu.
func (s *Server) journalAdd(j *job) {
	if s.journalDir == "" {
		return
	}
	data, err := json.Marshal(journalEntry{ID: j.id, Request: j.req, Submitted: j.submitted})
	if err != nil {
		return
	}
	path := filepath.Join(s.journalDir, j.id+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		s.logger.LogAttrs(j.ctx, slog.LevelWarn, "job journal write failed",
			slog.String("error", err.Error()))
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		s.logger.LogAttrs(j.ctx, slog.LevelWarn, "job journal write failed",
			slog.String("error", err.Error()))
	}
}

// journalRemove drops a terminal job's entry; removing a job that was never
// journaled (or already removed) is a no-op.
func (s *Server) journalRemove(id string) {
	if s.journalDir == "" {
		return
	}
	os.Remove(filepath.Join(s.journalDir, id+".json"))
}

// recoverJournal resubmits every journaled job from a previous process, in
// journal-file order (job IDs sort by submission order). Entries are
// removed before resubmission (at-most-once), and the resubmissions bypass
// tenant quotas — the work was admitted once already.
func (s *Server) recoverJournal() {
	entries, err := os.ReadDir(s.journalDir)
	if err != nil {
		return
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	recovered := 0
	for _, name := range names {
		path := filepath.Join(s.journalDir, name)
		data, err := os.ReadFile(path)
		os.Remove(path) // at-most-once: never resubmit the same entry twice
		if err != nil {
			continue
		}
		var je journalEntry
		if json.Unmarshal(data, &je) != nil || je.Request == nil {
			continue
		}
		if _, err := s.submit(s.baseCtx, je.Request, false, true); err != nil {
			s.logger.LogAttrs(s.baseCtx, slog.LevelWarn, "journaled job not recovered",
				slog.String("old_job_id", je.ID), slog.String("error", err.Error()))
			continue
		}
		recovered++
	}
	if recovered > 0 {
		s.logger.LogAttrs(s.baseCtx, slog.LevelInfo, "journaled jobs recovered",
			slog.Int("count", recovered))
	}
}

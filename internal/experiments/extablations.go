package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/memory"
	"repro/internal/stats"
)

// extPrefetchDepths sweeps the Igehy fragment-FIFO depth around the default
// of 32.
var extPrefetchDepths = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

// RunExtPrefetch ablates the prefetch fragment FIFO: with depth 1 every
// miss's fetch serializes behind the scan (no latency hiding); deep FIFOs
// approach the pure-throughput bound. The paper adopts the Igehy result
// that prefetching reaches zero-latency performance — this experiment shows
// how much of the machine's speed that assumption carries.
func RunExtPrefetch(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	const sceneName = "truc640"
	s, err := buildScene(ctx, sceneName, opt)
	if err != nil {
		return nil, err
	}

	type res struct {
		cycles float64
		stall  float64
	}
	cells := make(map[int]res, len(extPrefetchDepths))
	var mu sync.Mutex
	err = forEachParallel(ctx, opt.Parallelism, len(extPrefetchDepths), func(i int) error {
		depth := extPrefetchDepths[i]
		r, err := simulate(ctx, s, core.Config{
			Procs: 16, Distribution: distrib.BlockKind, TileSize: 16,
			CacheKind:     core.CacheReal,
			Bus:           memory.BusConfig{TexelsPerCycle: 1},
			PrefetchDepth: depth,
		})
		if err != nil {
			return err
		}
		var stall float64
		for _, n := range r.Nodes {
			stall += n.StallCycles
		}
		mu.Lock()
		cells[depth] = res{cycles: r.Cycles, stall: stall}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	best := cells[extPrefetchDepths[len(extPrefetchDepths)-1]].cycles
	tab := &stats.Table{
		Caption: fmt.Sprintf("%s, 16 processors, block-16, 1 texel/pixel bus: prefetch fragment-FIFO depth", sceneName),
		Header:  []string{"depth", "cycles", "vs deepest", "total stall cycles"},
	}
	for _, d := range extPrefetchDepths {
		c := cells[d]
		tab.AddRow(fmt.Sprintf("%d", d), stats.F(c.cycles, 0),
			stats.Pct(c.cycles/best-1), stats.F(c.stall, 0))
	}
	return &Report{
		ID:    "ext-prefetch",
		Title: "Ablation: prefetch fragment-FIFO depth (the zero-latency assumption)",
		Notes: []string{
			scaleNote(opt),
			"expect: shallow FIFOs pay heavy stalls; returns diminish past the default depth of 32",
		},
		Table: []*stats.Table{tab},
	}, nil
}

// Cache-geometry ablation grids.
var (
	extCacheSizesKB = []int{4, 8, 16, 32, 64}
	extCacheWays    = []int{1, 2, 4, 8}
)

// RunExtCache ablates the node cache geometry on a single processor with an
// infinite bus, measuring the texel-to-fragment ratio — re-examining the
// Hakura–Gupta 16 KB/4-way operating point inside our framework.
func RunExtCache(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	const sceneName = "32massive11255"
	s, err := buildScene(ctx, sceneName, opt)
	if err != nil {
		return nil, err
	}

	type key struct{ kb, ways int }
	cells := make(map[key]float64)
	var jobs []key
	for _, kb := range extCacheSizesKB {
		for _, w := range extCacheWays {
			jobs = append(jobs, key{kb, w})
		}
	}
	var mu sync.Mutex
	err = forEachParallel(ctx, opt.Parallelism, len(jobs), func(i int) error {
		k := jobs[i]
		r, err := simulate(ctx, s, core.Config{
			Procs: 1, CacheKind: core.CacheReal,
			CacheConfig: cache.Config{SizeBytes: k.kb * 1024, Ways: k.ways, LineBytes: 64},
		})
		if err != nil {
			return err
		}
		mu.Lock()
		cells[k] = r.TexelToFragment()
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	header := []string{"size"}
	for _, w := range extCacheWays {
		header = append(header, fmt.Sprintf("%d-way", w))
	}
	tab := &stats.Table{
		Caption: fmt.Sprintf("%s, 1 processor, infinite bus: texel-to-fragment ratio by cache geometry", sceneName),
		Header:  header,
	}
	for _, kb := range extCacheSizesKB {
		row := []string{fmt.Sprintf("%dKB", kb)}
		for _, w := range extCacheWays {
			row = append(row, stats.F(cells[key{kb, w}], 2))
		}
		tab.AddRow(row...)
	}
	return &Report{
		ID:    "ext-cache",
		Title: "Ablation: texture-cache size and associativity (the Hakura–Gupta operating point)",
		Notes: []string{
			scaleNote(opt),
			"expect: strong returns up to ~16 KB, diminishing beyond; associativity matters most for small caches",
		},
		Table: []*stats.Table{tab},
	}, nil
}

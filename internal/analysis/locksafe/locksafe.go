// Package locksafe enforces the service's lock discipline: internal/service
// serializes job state under sync.Mutex, and the latency of every request
// rides on those critical sections staying short and non-blocking. The
// analyzer flags, for code executed while a sync.Mutex/RWMutex is held:
//
//   - blocking channel operations (sends, receives, and selects without a
//     default clause) — a send under the job lock deadlocks the pool the
//     moment the queue fills; non-blocking selects with a default are fine;
//   - file and network I/O (os file calls, net, net/http) and time.Sleep;
//   - sync.WaitGroup.Wait — waiting for workers that may need the lock;
//   - calls to function-typed parameters (user callbacks run with the lock
//     held can re-enter and deadlock).
//
// It also reports a Lock with no corresponding Unlock — direct or
// deferred — anywhere in the same function. Read and write modes pair
// separately: an RLock is only discharged by an RUnlock, and the blocking
// checks above apply under read locks too (a blocked reader still stalls
// any writer queued behind it, and every later reader behind that writer).
//
// The tracking is a source-order approximation, not a CFG: a guard clause
// that unlocks and returns (`if bad { mu.Unlock(); return }`) is recognized
// and does not end the critical section on the fallthrough path.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the lock-discipline check.
var Analyzer = &framework.Analyzer{
	Name: "locksafe",
	Doc: "no blocking channel ops, I/O, sleeps or user callbacks while a " +
		"sync mutex is held; every Lock needs a reachable Unlock",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w := &walker{
				pass:       pass,
				params:     paramObjs(pass, fn),
				unlockSeen: make(map[string]bool),
			}
			held := w.stmts(fn.Body.List, map[string]token.Pos{})
			_ = held
			for _, ev := range w.lockEvents {
				if w.unlockSeen[heldKey(ev.key, ev.op)] {
					continue
				}
				if ev.op == "RLock" {
					pass.Reportf(ev.pos, "%s.RLock with no corresponding RUnlock in this function", ev.key)
				} else {
					pass.Reportf(ev.pos, "%s.Lock with no corresponding Unlock in this function", ev.key)
				}
			}
		}
	}
	return nil
}

// paramObjs collects the function's parameter objects, for the
// callback-under-lock check.
func paramObjs(pass *framework.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fn.Type.Params == nil {
		return out
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.ObjectOf(name); obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

type lockEvent struct {
	key string
	op  string // "Lock" or "RLock"
	pos token.Pos
}

// heldKey is the held-set entry for a lock key and mode. Read-mode holds
// are labelled so an RUnlock never discharges a Lock (or vice versa) and
// diagnostics name the mode that was held.
func heldKey(key, op string) string {
	if op == "RLock" || op == "RUnlock" {
		return key + " (read)"
	}
	return key
}

type walker struct {
	pass       *framework.Pass
	params     map[types.Object]bool
	lockEvents []lockEvent
	unlockSeen map[string]bool
}

// mutexOp classifies a call as a sync.Mutex/RWMutex lock or unlock on a
// receiver expression, returning its rendered key and the method name
// (Lock, Unlock, RLock or RUnlock; "" for anything else).
func (w *walker) mutexOp(call *ast.CallExpr) (key, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := w.pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", ""
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name()
	}
	return "", ""
}

// stmts walks a statement list in source order, threading the held-lock set.
func (w *walker) stmts(list []ast.Stmt, held map[string]token.Pos) map[string]token.Pos {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// terminates reports whether the statement list ends control flow
// (return, panic, or an unconditional branch).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (w *walker) stmt(s ast.Stmt, held map[string]token.Pos) map[string]token.Pos {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, op := w.mutexOp(call); op != "" {
				hk := heldKey(key, op)
				switch op {
				case "Lock", "RLock":
					w.lockEvents = append(w.lockEvents, lockEvent{key, op, call.Pos()})
					held[hk] = call.Pos()
				default:
					w.unlockSeen[hk] = true
					delete(held, hk)
				}
				return held
			}
		}
		w.scan(s, held)
	case *ast.DeferStmt:
		if key, op := w.mutexOp(s.Call); op == "Unlock" || op == "RUnlock" {
			// The lock stays held to the end of the function, but the
			// unlock is guaranteed.
			w.unlockSeen[heldKey(key, op)] = true
			return held
		}
		// The deferred call itself runs after the critical section; only
		// its argument expressions evaluate now, and those are benign.
	case *ast.BlockStmt:
		held = w.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		bodyHeld := w.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
		// Guard clauses that end control flow don't affect the
		// fallthrough path; a non-terminating body's lock changes are
		// adopted only when there is no else (best-effort without a CFG).
		if !terminates(s.Body.List) && s.Else == nil {
			held = bodyHeld
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, held)
		}
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		w.scanExpr(s.X, held)
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		w.selectStmt(s, held)
	case *ast.LabeledStmt:
		held = w.stmt(s.Stmt, held)
	default:
		w.scan(s, held)
	}
	return held
}

// selectStmt handles the one sanctioned channel pattern under a lock: a
// select with a default clause is non-blocking and allowed.
func (w *walker) selectStmt(s *ast.SelectStmt, held map[string]token.Pos) {
	hasDefault := false
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if len(held) > 0 && !hasDefault {
		pass := w.pass
		pass.Reportf(s.Pos(), "select without default blocks on channel operations while %s is held", anyKey(held))
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		w.stmts(cc.Body, copyHeld(held))
	}
}

func anyKey(held map[string]token.Pos) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// scan inspects a whole statement for violations when a lock is held.
func (w *walker) scan(s ast.Stmt, held map[string]token.Pos) {
	if len(held) == 0 {
		return
	}
	w.scanNode(s, held)
}

func (w *walker) scanExpr(e ast.Expr, held map[string]token.Pos) {
	if len(held) == 0 || e == nil {
		return
	}
	w.scanNode(e, held)
}

// osIOFuncs are os package calls that hit the filesystem.
var osIOFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Remove": true, "RemoveAll": true, "Rename": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Stat": true, "Lstat": true, "Chmod": true, "Chown": true,
	"Symlink": true, "Link": true, "Truncate": true,
}

func (w *walker) scanNode(root ast.Node, held map[string]token.Pos) {
	key := anyKey(held)
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closure bodies run later, outside the section
		case *ast.SendStmt:
			w.pass.Reportf(n.Pos(), "channel send while %s is held can block the critical section", key)
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.pass.Reportf(n.Pos(), "channel receive while %s is held can block the critical section", key)
			}
		case *ast.CallExpr:
			w.scanCall(n, key)
		}
		return true
	})
}

func (w *walker) scanCall(call *ast.CallExpr, key string) {
	// Calls through function-typed parameters: user callbacks must not run
	// under the lock.
	if id, ok := call.Fun.(*ast.Ident); ok {
		obj := w.pass.ObjectOf(id)
		if obj != nil && w.params[obj] {
			if _, isFunc := obj.Type().Underlying().(*types.Signature); isFunc {
				w.pass.Reportf(call.Pos(), "callback %s invoked while %s is held can re-enter and deadlock", id.Name, key)
				return
			}
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := w.pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	switch pkg := fn.Pkg().Path(); {
	case pkg == "net" || pkg == "net/http":
		w.pass.Reportf(call.Pos(), "%s.%s while %s is held performs network I/O in the critical section", pkg, fn.Name(), key)
	case pkg == "os" && sig != nil && sig.Recv() == nil && osIOFuncs[fn.Name()]:
		w.pass.Reportf(call.Pos(), "os.%s while %s is held performs file I/O in the critical section", fn.Name(), key)
	case pkg == "time" && fn.Name() == "Sleep":
		w.pass.Reportf(call.Pos(), "time.Sleep while %s is held stalls every waiter", key)
	case pkg == "sync" && fn.Name() == "Wait" && recvNamed(sig) == "WaitGroup":
		// sync.Cond.Wait is excluded: it is designed to run under the lock.
		w.pass.Reportf(call.Pos(), "WaitGroup.Wait while %s is held can deadlock against workers that need the lock", key)
	}
}

// recvNamed returns the name of a method's receiver type, or "".
func recvNamed(sig *types.Signature) string {
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

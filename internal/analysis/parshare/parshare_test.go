package parshare_test

import (
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/parshare"
)

func TestParshare(t *testing.T) {
	framework.RunTest(t, ".", parshare.Analyzer, "parshare")
}

// Package overlap implements the analytical primitive-overlap model of Chen
// et al. ("Models of the impact of overlap in bucket rendering", Graphics
// Hardware 1998), which the paper cites as the way to reason about its
// small-triangle setup cost: when the screen is bucketed into tiles, a
// triangle whose bounding box measures w×h pixels lands, in expectation over
// placements, in
//
//	(w/Tw + 1) · (h/Th + 1)
//
// tiles of size Tw×Th. Every touched tile's owner must set the triangle up
// (≥25 cycles in the paper's engine), so the total setup work of a frame
// grows with this overlap factor as tiles shrink — the analytical
// counterpart of the simulated speedup collapse at tiny tile sizes.
package overlap

import (
	"fmt"

	"repro/internal/distrib"
	"repro/internal/trace"
)

// TilesTouched returns the Chen et al. expected tile-overlap factor for a
// bounding box of bw×bh pixels on a grid of tw×th tiles.
func TilesTouched(bw, bh, tw, th float64) float64 {
	if bw <= 0 || bh <= 0 || tw <= 0 || th <= 0 {
		return 0
	}
	return (bw/tw + 1) * (bh/th + 1)
}

// Prediction summarizes the analytical overlap estimate for one scene and
// distribution geometry.
type Prediction struct {
	// MeanOverlap is the expected tiles (block) or line groups (SLI) a
	// triangle touches.
	MeanOverlap float64
	// MeanRouted is the expected processors a triangle is delivered to:
	// overlap clamped at the processor count per triangle.
	MeanRouted float64
	// TotalRouted is MeanRouted summed over drawable triangles.
	TotalRouted float64
	// SetupFraction estimates the share of total machine work that is
	// triangle setup: routed × setup cycles over that plus one cycle per
	// fragment.
	SetupFraction float64
}

// Predict evaluates the model for a scene on a distribution of the given
// kind, size and processor count, with the paper's setup cost.
func Predict(s *trace.Scene, kind distrib.Kind, procs, size, setupCycles int) (Prediction, error) {
	if procs <= 0 || size <= 0 {
		return Prediction{}, fmt.Errorf("overlap: bad geometry procs=%d size=%d", procs, size)
	}
	var p Prediction
	n := 0
	var fragments float64
	for i := range s.Triangles {
		t := &s.Triangles[i]
		bb := t.BBox().Intersect(s.Screen)
		if bb.Empty() || t.Degenerate() {
			continue
		}
		n++
		bw, bh := float64(bb.Width()), float64(bb.Height())
		var ov float64
		switch kind {
		case distrib.BlockKind:
			ov = TilesTouched(bw, bh, float64(size), float64(size))
		case distrib.SLIKind:
			ov = bh/float64(size) + 1
		default:
			return Prediction{}, fmt.Errorf("overlap: unknown kind %v", kind)
		}
		p.MeanOverlap += ov
		routed := ov
		if routed > float64(procs) {
			routed = float64(procs)
		}
		p.TotalRouted += routed
		fragments += t.Area()
	}
	if n == 0 {
		return Prediction{}, fmt.Errorf("overlap: scene has no drawable triangles")
	}
	p.MeanOverlap /= float64(n)
	p.MeanRouted = p.TotalRouted / float64(n)
	setup := p.TotalRouted * float64(setupCycles)
	if denom := setup + fragments; denom > 0 {
		p.SetupFraction = setup / denom
	}
	return p, nil
}

// MeasureRouted counts the actual triangle deliveries of a distribution by
// bounding-box routing — the quantity Predict estimates analytically, and
// exactly what the sort-middle machine's distributor does.
func MeasureRouted(s *trace.Scene, d distrib.Distribution) (total uint64, mean float64) {
	n := 0
	scratch := make([]int, 0, d.NumProcs())
	for i := range s.Triangles {
		scratch = d.Route(s.Triangles[i].BBox(), scratch[:0])
		if len(scratch) == 0 {
			continue
		}
		n++
		total += uint64(len(scratch))
	}
	if n > 0 {
		mean = float64(total) / float64(n)
	}
	return total, mean
}

package experiments

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// smokeOpt keeps experiment tests fast; shape-sensitive tests use shapeOpt.
var (
	smokeOpt = Options{Scale: 0.2}
	shapeOpt = Options{Scale: 0.35}
)

func TestRegistry(t *testing.T) {
	all := All()
	wantIDs := []string{"table1", "fig5-imbalance", "fig5-speedup", "fig6-locality",
		"fig7", "fig7-bus2", "fig8-buffer", "fig9-images",
		"ext-l2", "ext-dynamic", "ext-prefetch", "ext-cache",
		"ext-sortlast", "ext-overlap", "ext-interleave"}
	if len(all) != len(wantIDs) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(wantIDs))
	}
	for i, want := range wantIDs {
		if all[i].ID != want {
			t.Errorf("experiment %d = %q, want %q", i, all[i].ID, want)
		}
		e, ok := ByID(want)
		if !ok || e.ID != want {
			t.Errorf("ByID(%q) failed", want)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
}

func TestReportFormat(t *testing.T) {
	rep, err := RunTable1(context.Background(), smokeOpt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep.Format(&buf)
	out := buf.String()
	for _, want := range []string{"table1", "room3", "truc640", "unique texel/frag"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// cellValue extracts the numeric cell at (rowLabel, colIdx) from a table.
func cellValue(t *testing.T, tab interface {
	String() string
}, rowLabel string, colIdx int) float64 {
	t.Helper()
	for _, line := range strings.Split(tab.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) > colIdx && fields[0] == rowLabel {
			v := strings.TrimSuffix(fields[colIdx], "%")
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				t.Fatalf("cell (%s, %d) = %q not numeric", rowLabel, colIdx, fields[colIdx])
			}
			return f
		}
	}
	t.Fatalf("row %q not found in table:\n%s", rowLabel, tab.String())
	return 0
}

func TestFig5ImbalanceShape(t *testing.T) {
	rep, err := RunFig5Imbalance(context.Background(), shapeOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table) != 2 {
		t.Fatalf("want 2 tables, got %d", len(rep.Table))
	}
	// For every scene column, the 128-px block imbalance must exceed the
	// 4-px one, and SLI-32 must exceed SLI-1 (imbalance grows with size).
	block, sli := rep.Table[0], rep.Table[1]
	for col := 1; col <= 7; col++ {
		small := cellValue(t, block, "4", col)
		big := cellValue(t, block, "128", col)
		if big <= small {
			t.Errorf("block col %d: imbalance(128)=%v ≤ imbalance(4)=%v", col, big, small)
		}
		s1 := cellValue(t, sli, "1", col)
		s32 := cellValue(t, sli, "32", col)
		if s32 <= s1 {
			t.Errorf("sli col %d: imbalance(32)=%v ≤ imbalance(1)=%v", col, s32, s1)
		}
	}
}

func TestFig5SpeedupShape(t *testing.T) {
	rep, err := RunFig5Speedup(context.Background(), shapeOpt)
	if err != nil {
		t.Fatal(err)
	}
	block := rep.Table[0]
	// Setup overhead: with 64 processors, 1-px blocks must be slower than
	// 16-px blocks (col 1 = w1, col 5 = w16 after the procs column).
	w1 := cellValue(t, block, "64", 1)
	w16 := cellValue(t, block, "64", 5)
	if w1 >= w16 {
		t.Errorf("64p: w1 speedup %v not below w16 %v (setup overhead missing)", w1, w16)
	}
	// Load imbalance: 128-px blocks must also be below 16-px.
	w128 := cellValue(t, block, "64", 8)
	if w128 >= w16 {
		t.Errorf("64p: w128 speedup %v not below w16 %v (imbalance missing)", w128, w16)
	}
	// Speedup grows with processors at the sweet spot.
	if cellValue(t, block, "4", 5) >= cellValue(t, block, "64", 5) {
		t.Error("w16 speedup does not grow from 4 to 64 processors")
	}
}

func TestFig6LocalityShape(t *testing.T) {
	rep, err := RunFig6Locality(context.Background(), shapeOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table) != 4 {
		t.Fatalf("want 4 tables, got %d", len(rep.Table))
	}
	massiveBlock, massiveSLI := rep.Table[0], rep.Table[1]
	teapotBlock := rep.Table[2]
	// Ratio grows with processor count at small tiles (col 1 = w4 / l1).
	if cellValue(t, massiveBlock, "64", 1) <= cellValue(t, massiveBlock, "1", 1) {
		t.Error("32massive block w4: ratio does not grow with processors")
	}
	// Ratio shrinks as tiles grow (w4 vs w128 at 64 procs).
	if cellValue(t, massiveBlock, "64", 1) <= cellValue(t, massiveBlock, "64", 6) {
		t.Error("32massive block: small tiles not worse than large tiles")
	}
	// SLI-2 is worse than block-16 at 64 processors (paper's comparison).
	sli2 := cellValue(t, massiveSLI, "64", 2)
	block16 := cellValue(t, massiveBlock, "64", 3)
	if sli2 <= block16 {
		t.Errorf("SLI-2 ratio %v not above block-16 ratio %v", sli2, block16)
	}
	// teapot.full demands far more bandwidth than 32massive11255.
	if cellValue(t, teapotBlock, "64", 3) <= cellValue(t, massiveBlock, "64", 3) {
		t.Error("teapot.full not more bandwidth-hungry than 32massive11255")
	}
}

func TestFig8BufferShape(t *testing.T) {
	rep, err := RunFig8(context.Background(), shapeOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range rep.Table {
		// Speedup at the paper's best width (w16, col 5) must be
		// non-decreasing in buffer size, and buffer 1 clearly worse than
		// buffer 10000.
		small := cellValue(t, tab, "1", 5)
		mid := cellValue(t, tab, "50", 5)
		big := cellValue(t, tab, "10000", 5)
		if small >= big {
			t.Errorf("%s: buffer 1 speedup %v not below buffer 10000 %v",
				tab.Caption, small, big)
		}
		if mid > big+0.05*big {
			t.Errorf("%s: buffer 50 speedup %v above buffer 10000 %v",
				tab.Caption, mid, big)
		}
	}
}

func TestFig9WritesImages(t *testing.T) {
	dir := t.TempDir()
	opt := smokeOpt
	opt.OutDir = dir
	rep, err := RunFig9(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table) != 1 || len(rep.Table[0].Rows) != 3 {
		t.Fatalf("unexpected report shape: %+v", rep.Table)
	}
	for _, name := range fig9Scenes {
		path := filepath.Join(dir, name+"_dc.pgm")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing image: %v", err)
		}
		if !bytes.HasPrefix(data, []byte("P5\n")) {
			t.Errorf("%s: not a binary PGM", path)
		}
		// The image must not be all-black or all-white.
		body := data[bytes.LastIndexByte(data[:32], '\n')+1:]
		minV, maxV := byte(255), byte(0)
		for _, b := range body {
			if b < minV {
				minV = b
			}
			if b > maxV {
				maxV = b
			}
		}
		if maxV != 255 || minV == 255 {
			t.Errorf("%s: degenerate image (min %d max %d)", path, minV, maxV)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig7 sweep is expensive")
	}
	rep, err := RunFig7(context.Background(), shapeOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table) != 6 {
		t.Fatalf("want 6 tables, got %d", len(rep.Table))
	}
	// Tables: block ×{4,16,64}, then sli ×{4,16,64}.
	block64, sli64 := rep.Table[2], rep.Table[5]
	// At 64 processors, block's best speedup must beat SLI's best for a
	// majority of scenes.
	wins := 0
	for _, sceneRow := range []string{"room3", "teapot.full", "quake",
		"massive11255", "32massive11255", "blowout775", "truc640"} {
		bestOf := func(tab *stringerTable, n int) float64 {
			best := 0.0
			for c := 1; c <= n; c++ {
				if v := cellValue(t, tab, sceneRow, c); v > best {
					best = v
				}
			}
			return best
		}
		b := bestOf(&stringerTable{block64}, len(blockWidths))
		s := bestOf(&stringerTable{sli64}, len(sliLines))
		if b >= s {
			wins++
		}
	}
	if wins < 4 {
		t.Errorf("block best ≥ SLI best for only %d/7 scenes at 64 processors", wins)
	}
}

// stringerTable adapts *stats.Table to the cellValue helper's constraint.
type stringerTable struct {
	t interface{ String() string }
}

func (s *stringerTable) String() string { return s.t.String() }

func TestForEachParallel(t *testing.T) {
	n := 100
	seen := make([]bool, n)
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	err := forEachParallel(context.Background(), 8, n, func(i int) error {
		<-mu
		seen[i] = true
		mu <- struct{}{}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d not visited", i)
		}
	}
}

func TestForEachParallelError(t *testing.T) {
	err := forEachParallel(context.Background(), 4, 50, func(i int) error {
		if i == 7 {
			return os.ErrInvalid
		}
		return nil
	})
	if err == nil {
		t.Error("error not propagated")
	}
}

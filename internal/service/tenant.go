package service

import (
	"math"
	"sync"
	"time"
)

// DefaultTenant is the tenant jobs without an explicit tenant belong to.
const DefaultTenant = "default"

// tenantOrDefault normalizes an empty tenant to DefaultTenant, so metrics
// labels, quota buckets and fairness FIFOs always have a concrete name.
func tenantOrDefault(t string) string {
	if t == "" {
		return DefaultTenant
	}
	return t
}

// classify assigns a request to a scheduling band: sweeps up to
// maxInteractivePoints rows — and every experiment — count as interactive;
// larger sweeps are bulk.
func classify(req *Request, maxInteractivePoints int) jobClass {
	if req.Type == "sweep" && req.Sweep.Points() > maxInteractivePoints {
		return classBulk
	}
	return classInteractive
}

// tenantQuotas is a per-tenant token bucket: every tenant refills at rate
// jobs/second up to burst tokens, and each admitted submission spends one.
// Buckets are created on first use and refilled lazily on the next allow.
type tenantQuotas struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newTenantQuotas(rate float64, burst int) *tenantQuotas {
	if burst <= 0 {
		burst = 1
	}
	return &tenantQuotas{rate: rate, burst: float64(burst),
		buckets: make(map[string]*tokenBucket)}
}

// allow spends one token of tenant's bucket if available. On refusal it
// returns the whole seconds until a token accrues — the Retry-After value.
func (q *tenantQuotas) allow(tenant string, now time.Time) (ok bool, retryAfter int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[tenant]
	if b == nil {
		b = &tokenBucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	if el := now.Sub(b.last).Seconds(); el > 0 {
		b.tokens = math.Min(q.burst, b.tokens+el*q.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := (1 - b.tokens) / q.rate
	retry := int(math.Ceil(wait))
	if retry < 1 {
		retry = 1
	}
	return false, retry
}

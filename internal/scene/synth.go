// Package scene synthesizes the paper's seven virtual-reality benchmark
// frames. The originals are triangle traces captured from Quake, Quake2 and
// Half-Life demos plus two micro-benchmarks — none of which are available —
// so this package generates deterministic procedural scenes tuned to the
// published Table 1 characteristics: screen size, pixels rendered, depth
// complexity, triangle count, texture count, texture footprint and the
// unique texel-to-fragment ratio.
//
// The generator works in *patches*: a patch is a screen-space quad
// subdivided into a grid of triangles that share one continuous affine
// texture mapping, the way a wall, floor or character skin does in a real
// game mesh. Patches give the synthetic scenes the two properties every
// result in the paper depends on:
//
//   - spatial texture locality: adjacent pixels of a surface map adjacent
//     texels, so a 4×4-texel cache line corresponds to a small contiguous
//     screen area — the thing tile boundaries cut through;
//   - clustered depth complexity: hot spots (characters, detailed objects)
//     concentrate overdraw in small screen regions, which is what makes big
//     tiles load-imbalanced.
package scene

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/trace"
)

// Params drives the synthesizer. The benchmark constructors in
// benchmarks.go fill these from the Table 1 targets.
type Params struct {
	Name   string
	Seed   int64
	Width  int // screen width at Scale 1
	Height int // screen height at Scale 1

	// Triangles is the target triangle count; DepthComplexity is the target
	// average overdraw (fragments / screen area). Together they set the
	// average triangle area.
	Triangles       int
	DepthComplexity float64

	// Textures is the exact texture count; TexSize is the base-level size
	// (square, power of two) of an average texture. Individual textures
	// jitter one power of two around it.
	Textures int
	TexSize  int

	// TexelDensity is the linear texel-per-pixel density of surface texture
	// mappings (1 = one texel per pixel; <1 = magnified textures, the
	// pre-magnification Quake look; >1 = minified).
	TexelDensity float64

	// FreshFraction is the probability that a patch maps a previously
	// untouched texture region rather than re-tiling an already-used one.
	// Higher values raise the unique texel-to-fragment ratio.
	FreshFraction float64

	// HotSpots is the number of high-overdraw screen clusters;
	// HotSpotShare is the fraction of all fragments concentrated in them.
	// Hot-spot patches are smaller and more finely subdivided (characters).
	HotSpots     int
	HotSpotShare float64

	// PatchSide is the mean side length in pixels (at Scale 1) of a
	// background surface patch. Zero picks large patches (~a quarter of the
	// screen); game scenes with many per-surface textures use values near
	// the textures' natural screen size.
	PatchSide float64

	// Scale crops the frame for fast runs: screen dimensions scale by Scale
	// and triangle, fragment and texture-count budgets by Scale², while
	// texture sizes, patch sizes and texel densities stay fixed — so all
	// cache-local structure (line sharing at tile boundaries, LOD, texture
	// working-set density) is identical to the full frame. 0 means 1.
	Scale float64
}

func (p Params) withDefaults() Params {
	if p.Scale == 0 {
		p.Scale = 1
	}
	if p.TexelDensity == 0 {
		p.TexelDensity = 1
	}
	if p.TexSize == 0 {
		p.TexSize = 64
	}
	if p.Textures == 0 {
		p.Textures = 1
	}
	return p
}

// Validate rejects unusable parameter sets.
func (p Params) Validate() error {
	p = p.withDefaults()
	switch {
	case p.Width <= 0 || p.Height <= 0:
		return fmt.Errorf("scene: bad screen %dx%d", p.Width, p.Height)
	case p.Triangles <= 0:
		return fmt.Errorf("scene: triangle target %d must be positive", p.Triangles)
	case p.DepthComplexity <= 0:
		return fmt.Errorf("scene: depth complexity %v must be positive", p.DepthComplexity)
	case p.TexelDensity <= 0:
		return fmt.Errorf("scene: texel density %v must be positive", p.TexelDensity)
	case p.FreshFraction < 0 || p.FreshFraction > 1:
		return fmt.Errorf("scene: fresh fraction %v outside [0,1]", p.FreshFraction)
	case p.HotSpotShare < 0 || p.HotSpotShare >= 1:
		return fmt.Errorf("scene: hot-spot share %v outside [0,1)", p.HotSpotShare)
	case p.Scale <= 0 || p.Scale > 4:
		return fmt.Errorf("scene: scale %v outside (0,4]", p.Scale)
	case p.TexSize < 4 || p.TexSize&(p.TexSize-1) != 0:
		return fmt.Errorf("scene: texture size %d not a power of two ≥ 4", p.TexSize)
	}
	return nil
}

// texCursor tracks fresh-region allocation and reuse anchors per texture.
type texCursor struct {
	w, h      int
	curU      float64
	curV      float64
	rowH      float64
	exhausted bool
	anchors   []geom.Vec2
}

// allocFresh reserves an untouched (tw × th)-texel region, returning its
// origin, or reports failure once the texture is fully allocated.
func (c *texCursor) allocFresh(tw, th float64) (u0, v0 float64, ok bool) {
	if c.exhausted {
		return 0, 0, false
	}
	if tw > float64(c.w) {
		tw = float64(c.w)
	}
	if th > float64(c.h) {
		th = float64(c.h)
	}
	if c.curU+tw > float64(c.w) {
		c.curU = 0
		c.curV += c.rowH
		c.rowH = 0
	}
	if c.curV+th > float64(c.h) {
		c.exhausted = true
		return 0, 0, false
	}
	u0, v0 = c.curU, c.curV
	c.curU += tw
	if th > c.rowH {
		c.rowH = th
	}
	return u0, v0, true
}

// Generate synthesizes the scene. The generator's only sources of
// variation are the Params fields — randomness comes exclusively from a
// *rand.Rand seeded with the config-recorded Seed, never from the global
// math/rand source (texlint's determinism analyzer enforces this) — so the
// same Params always produce the same scene. That purity is what makes
// scenes cache-keyable: the service's result cache keys on the config JSON,
// Seed included, and replays cached documents as if freshly simulated.
func Generate(p Params) (*trace.Scene, error) {
	return GenerateWithRand(p, rand.New(rand.NewSource(p.Seed)))
}

// GenerateWithRand is Generate with the random stream injected, for callers
// composing scenes from a shared deterministic stream (multi-frame
// synthesis, parameter searches). The caller owns reproducibility: results
// depend on the stream's state, so anything cache-keyed must go through
// Generate, where the stream is pinned to Params.Seed.
func GenerateWithRand(p Params, rng *rand.Rand) (*trace.Scene, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}

	sw := scaleInt(p.Width, p.Scale)
	sh := scaleInt(p.Height, p.Scale)
	s := &trace.Scene{
		Name:   p.Name,
		Screen: geom.Rect{X0: 0, Y0: 0, X1: sw, Y1: sh},
	}

	// Texture table: the texture count scales with the cropped frame area;
	// sizes jitter around TexSize by one power of two but do not scale.
	nTex := int(math.Round(float64(p.Textures) * p.Scale * p.Scale))
	if nTex < 1 {
		nTex = 1
	}
	cursors := make([]*texCursor, nTex)
	for i := 0; i < nTex; i++ {
		w := p.TexSize
		if nTex > 1 {
			// Jitter sizes one power of two around the average; a scene
			// with a single texture (teapot) uses the exact size.
			switch rng.Intn(4) {
			case 0:
				w /= 2
			case 1:
				w *= 2
			}
		}
		h := w
		if nTex > 1 && rng.Intn(3) == 0 && w >= 8 {
			h = w / 2 // some non-square textures
		}
		s.Textures = append(s.Textures, trace.TexSize{W: w, H: h})
		cursors[i] = &texCursor{w: w, h: h}
	}

	targetTris := int(float64(p.Triangles) * p.Scale * p.Scale)
	if targetTris < 8 {
		targetTris = 8
	}
	targetFrags := p.DepthComplexity * float64(sw) * float64(sh)
	avgTriArea := targetFrags / float64(targetTris)

	// Hot-spot centers.
	type hotspot struct{ cx, cy, r float64 }
	var spots []hotspot
	for i := 0; i < p.HotSpots; i++ {
		spots = append(spots, hotspot{
			cx: rng.Float64() * float64(sw),
			cy: rng.Float64() * float64(sh),
			r:  (0.05 + 0.07*rng.Float64()) * float64(sw),
		})
	}

	// Hot-spot patches are subdivided ~3× finer than background patches;
	// inflate the average so the *mixture* hits the triangle target.
	triMult := (1 - p.HotSpotShare) + p.HotSpotShare/hotSpotAreaScale
	g := generator{p: p, rng: rng, scene: s, cursors: cursors,
		avgTriArea: avgTriArea * triMult}

	emittedFrags := 0.0
	hotFrags := p.HotSpotShare * targetFrags
	baseFrags := targetFrags - hotFrags

	// Background patches: surface quads spread over the whole screen
	// (walls/floor/ceiling layers).
	meanSide := p.PatchSide
	if meanSide == 0 {
		meanSide = 0.33 * float64(min(sw, sh))
	}
	for emittedFrags < baseFrags && len(s.Triangles) < 4*targetTris {
		side := meanSide * (0.5 + rng.Float64())
		cx := rng.Float64() * float64(sw)
		cy := rng.Float64() * float64(sh)
		emittedFrags += g.emitPatch(cx, cy, side, 1.0)
	}
	// Hot-spot patches: small, finely subdivided (characters and props).
	for len(spots) > 0 && emittedFrags < targetFrags && len(s.Triangles) < 4*targetTris {
		sp := spots[rng.Intn(len(spots))]
		side := (0.2 + 0.6*rng.Float64()) * sp.r
		ang := rng.Float64() * 2 * math.Pi
		d := rng.Float64() * sp.r
		emittedFrags += g.emitPatch(sp.cx+math.Cos(ang)*d, sp.cy+math.Sin(ang)*d, side, hotSpotAreaScale)
	}
	if len(s.Triangles) == 0 {
		return nil, fmt.Errorf("scene %q: generator produced no triangles", p.Name)
	}
	return s, nil
}

// hotSpotAreaScale is how much finer hot-spot (character) patches are
// tessellated relative to background patches.
const hotSpotAreaScale = 0.35

type generator struct {
	p          Params
	rng        *rand.Rand
	scene      *trace.Scene
	cursors    []*texCursor
	avgTriArea float64
	freshPtr   int // round-robin start for fresh texture allocation
	usedTex    []int
}

// emitPatch adds one textured quad patch centered at (cx, cy) with the given
// side length, subdivided so its triangles have roughly
// areaScale×avgTriArea pixels each, and returns the (clipped, approximate)
// fragment area emitted.
func (g *generator) emitPatch(cx, cy, side float64, areaScale float64) float64 {
	rng := g.rng
	s := g.scene
	screen := s.Screen

	// Texture binding first: the texture's natural screen size (its texel
	// extent divided by the sampling density) bounds the patch, the way a
	// game wall section is sized to its texture. A patch may tile its
	// texture slightly (factor up to ~1.3) but not wrap it wholesale.
	d := g.p.TexelDensity * (0.8 + 0.4*rng.Float64())
	fresh := rng.Float64() < g.p.FreshFraction

	var texID int
	var u0, v0 float64
	found := false
	if fresh {
		for try := 0; try < len(g.cursors); try++ {
			id := (g.freshPtr + try) % len(g.cursors)
			cur := g.cursors[id]
			if cur.exhausted {
				continue
			}
			texID = id
			g.freshPtr = id
			found = true
			break
		}
	}
	if !found {
		if len(g.usedTex) == 0 {
			// Nothing placed yet: force the first texture.
			texID = 0
		} else {
			texID = g.usedTex[rng.Intn(len(g.usedTex))]
		}
	}
	cur := g.cursors[texID]

	// The texture's natural screen extent at this density. A patch much
	// larger than it re-tiles the texture wholesale (GL_REPEAT), the way
	// game walls stretch small magnified textures; a smaller patch maps a
	// sub-region allocated from the texture.
	natW := float64(cur.w) / d * (0.8 + 0.5*rng.Float64())
	natH := float64(cur.h) / d * (0.8 + 0.5*rng.Float64())
	tiled := side > 1.5*natW

	x0 := cx - side/2
	y0 := cy - side*(0.3+0.7*rng.Float64())/2 // patches vary in aspect
	var x1, y1 float64
	if tiled {
		x1 = x0 + side
		y1 = y0 + side*(0.4+0.8*rng.Float64())
	} else {
		x1 = x0 + math.Min(side, natW)
		y1 = y0 + math.Min(side*(0.4+0.8*rng.Float64()), natH)
	}
	// Clip the patch rectangle to the screen so off-screen area doesn't count
	// toward the fragment budget.
	cx0 := math.Max(x0, float64(screen.X0))
	cy0 := math.Max(y0, float64(screen.Y0))
	cx1 := math.Min(x1, float64(screen.X1))
	cy1 := math.Min(y1, float64(screen.Y1))
	if cx1-cx0 < 2 || cy1-cy0 < 2 {
		return 0
	}
	w := cx1 - cx0
	h := cy1 - cy0
	area := w * h

	// Subdivision: pick the grid so each cell's two triangles have about
	// areaScale × avgTriArea pixels.
	cellArea := 2 * g.avgTriArea * areaScale
	cells := math.Max(1, area/cellArea)
	nx := int(math.Max(1, math.Round(math.Sqrt(cells*w/h))))
	ny := int(math.Max(1, math.Round(cells/float64(nx))))

	texW := d * w
	texH := d * h
	switch {
	case tiled:
		// The patch sweeps the whole texture (likely several times over):
		// every texel becomes used, so no fresh area remains.
		u0, v0 = 0, 0
		cur.exhausted = true
	default:
		allocated := false
		if fresh {
			u0, v0, allocated = cur.allocFresh(texW, texH)
		}
		if !allocated {
			// Reuse: re-map a previously used region of this texture, or
			// its origin if it has never been touched.
			if len(cur.anchors) > 0 {
				a := cur.anchors[rng.Intn(len(cur.anchors))]
				u0, v0 = a.X, a.Y
			} else {
				u0, v0 = 0, 0
			}
		}
	}
	if len(cur.anchors) == 0 {
		g.usedTex = append(g.usedTex, texID)
	}
	if len(cur.anchors) < 16 {
		cur.anchors = append(cur.anchors, geom.Vec2{X: u0, Y: v0})
	}

	// The patch's affine mapping: texel (u0, v0) at patch corner (cx0, cy0).
	tm := geom.TexMap{
		U0:   u0 - d*cx0,
		V0:   v0 - d*cy0,
		DuDx: d,
		DvDy: d,
	}

	// Emit the grid with slight vertex jitter so triangle edges are not all
	// axis-aligned (jitter is per-vertex-column/row so cells still tile
	// without cracks).
	xs := make([]float64, nx+1)
	ys := make([]float64, ny+1)
	for i := 0; i <= nx; i++ {
		xs[i] = cx0 + w*float64(i)/float64(nx)
		if i > 0 && i < nx {
			xs[i] += (rng.Float64() - 0.5) * w / float64(nx) * 0.5
		}
	}
	for j := 0; j <= ny; j++ {
		ys[j] = cy0 + h*float64(j)/float64(ny)
		if j > 0 && j < ny {
			ys[j] += (rng.Float64() - 0.5) * h / float64(ny) * 0.5
		}
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			a := geom.Vec2{X: xs[i], Y: ys[j]}
			b := geom.Vec2{X: xs[i+1], Y: ys[j]}
			c := geom.Vec2{X: xs[i+1], Y: ys[j+1]}
			e := geom.Vec2{X: xs[i], Y: ys[j+1]}
			s.Triangles = append(s.Triangles,
				geom.Triangle{V: [3]geom.Vec2{a, b, e}, TexID: int32(texID), Tex: tm},
				geom.Triangle{V: [3]geom.Vec2{b, c, e}, TexID: int32(texID), Tex: tm},
			)
		}
	}
	return area
}

func scaleInt(v int, s float64) int {
	out := int(math.Round(float64(v) * s))
	if out < 16 {
		out = 16
	}
	return out
}
